(** Benchmark harness: regenerates every table and figure of the
    paper's evaluation (Section 5), then times the pipeline stages with
    Bechamel.

    Sections:
    - {b Table 1} — StateAlyzer variable categorization of the Figure-1
      load balancer.
    - {b Figure 6} — the NFactor output for [balance] (both configs).
    - {b Table 2} — LoC / slicing time / execution paths / symbolic-
      execution time, original vs slice, for the paper's two NFs and
      the extended corpus.
    - {b Accuracy} — 1000 random packets through program and model.
    - {b Path equivalence} — symbolic path sets of slice vs model.
    - {b Bechamel micro-benchmarks} — per-stage timings plus ablations
      (loop bound, slicing on/off).

    Absolute numbers differ from the paper (different machine, a
    reimplemented toolchain instead of LLVM/KLEE); the shapes are the
    reproduction target: slices are a few percent of the original,
    path counts collapse, symbolic execution on the slice is orders of
    magnitude faster than on the original. *)

open Bechamel
open Toolkit

let section title =
  Fmt.pr "@.%s@.%s@.@." title (String.make (String.length title) '=')

let corpus_entry name = Option.get (Nfs.Corpus.find name)

(* One pass manager for the whole harness: sections that need the same
   NF's extraction (accuracy, applications, micro-bench setup, ...)
   share it through the in-memory artifact table instead of re-running
   Algorithm 1, and every exploration feeds one solver memo. *)
let mgr = Pipeline.Manager.create ()

let extract name =
  let e = corpus_entry name in
  Pipeline.Manager.extract mgr ~name (e.Nfs.Corpus.program ())

(* ------------------------------------------------------------------ *)
(* Table 1                                                            *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1: NFactor variable categorization (load balancer)";
  let p = Nfl.Transform.canonicalize (Nfs.Lb.program ()) in
  let t = Statealyzer.Varclass.analyze p in
  Fmt.pr "%-12s | %-10s | per-feature@." "variable" "category";
  Fmt.pr "-------------+------------+----------------------------------------@.";
  List.iter
    (fun (v, c) ->
      match c with
      | Statealyzer.Varclass.Local -> ()
      | _ ->
          let f = List.assoc v t.Statealyzer.Varclass.features in
          Fmt.pr "%-12s | %-10s | persistent=%b top-level=%b updateable=%b output-impacting=%b@." v
            (Statealyzer.Varclass.category_to_string c)
            f.Statealyzer.Varclass.persistent f.Statealyzer.Varclass.top_level
            f.Statealyzer.Varclass.updateable f.Statealyzer.Varclass.output_impacting)
    t.Statealyzer.Varclass.categories

(* ------------------------------------------------------------------ *)
(* Figure 6                                                           *)
(* ------------------------------------------------------------------ *)

let figure6 () =
  section "Figure 6: NFactor output for balance";
  let ex = extract "balance" in
  Fmt.pr "%a" Nfactor.Model.pp ex.Nfactor.Extract.model

(* ------------------------------------------------------------------ *)
(* Table 2                                                            *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table 2: NFactor on the corpus (snort & balance are the paper's subjects)";
  print_endline Nfactor.Report.header;
  List.iter
    (fun (e : Nfs.Corpus.entry) ->
      let _, row =
        Nfactor.Report.measure ~se_budget:1000 ~ex:(extract e.Nfs.Corpus.name)
          ~name:e.Nfs.Corpus.name ~source:(e.Nfs.Corpus.source ()) (e.Nfs.Corpus.program ())
      in
      print_endline (Nfactor.Report.row_to_string row))
    Nfs.Corpus.all;
  Fmt.pr "@.(LoC = non-comment source lines; slice/path = statement counts;@.";
  Fmt.pr " EP = execution paths; '>N' = budget exhausted, as the paper's '>1000'.)@."

(* ------------------------------------------------------------------ *)
(* Accuracy                                                           *)
(* ------------------------------------------------------------------ *)

let accuracy () =
  section "Accuracy: 1000 random packets, program vs model (paper Section 5)";
  Fmt.pr "%-12s %-8s %-10s %s@." "NF" "trials" "mismatches" "verdict";
  List.iter
    (fun name ->
      let ex = extract name in
      let v = Nfactor.Equiv.random_testing ~seed:2016 ~trials:1000 ex in
      Fmt.pr "%-12s %-8d %-10d %s@." name v.Nfactor.Equiv.trials
        (List.length v.Nfactor.Equiv.mismatches)
        (if Nfactor.Equiv.ok v then "outputs identical" else "MISMATCH"))
    Nfs.Corpus.names;
  Fmt.pr "@.flow-structured traffic (stateful entries):@.";
  List.iter
    (fun name ->
      let ex = extract name in
      let v = Nfactor.Equiv.flow_testing ~seed:7 ~flows:40 ~data_pkts:3 ex in
      Fmt.pr "%-12s %-8d %-10d %s@." name v.Nfactor.Equiv.trials
        (List.length v.Nfactor.Equiv.mismatches)
        (if Nfactor.Equiv.ok v then "outputs identical" else "MISMATCH"))
    Nfs.Corpus.names

let path_equivalence () =
  section "Path-set equivalence: slice paths vs model entries";
  List.iter
    (fun name ->
      let ex = extract name in
      Fmt.pr "%-12s %d path(s) — %s@." name
        (List.length ex.Nfactor.Extract.paths)
        (if Nfactor.Equiv.paths_match ex then "path sets identical" else "DIFFER"))
    Nfs.Corpus.names

(* ------------------------------------------------------------------ *)
(* Section-4 applications                                             *)
(* ------------------------------------------------------------------ *)

let applications () =
  section "Applications (paper Section 4): composition, testing, FSMs, reachability";
  (* Service-chain composition: the paper's {FW, IDS} x {LB}. *)
  let model name = (extract name).Nfactor.Extract.model in
  Fmt.pr "composition {FW, IDS} x {LB}:@.";
  List.iter
    (fun r -> Fmt.pr "  %a@." Verify.Chain.pp_ranking r)
    (Verify.Chain.compose_chains
       [ ("fw", model "firewall"); ("ids", model "snort") ]
       [ ("lb", model "lb") ]);
  (* Model-driven test generation coverage. *)
  Fmt.pr "@.test generation (entries fired / total, compliance replay):@.";
  List.iter
    (fun name ->
      let ex = extract name in
      let c = Verify.Testgen.cover ex in
      let v = Verify.Testgen.compliance ex c in
      Fmt.pr "  %-12s %d/%d entries, %d packet(s), replay %s@." name
        (List.length c.Verify.Testgen.covered)
        (Nfactor.Model.entry_count ex.Nfactor.Extract.model)
        (List.length c.Verify.Testgen.pkts)
        (if Nfactor.Equiv.ok v then "ok" else "MISMATCH"))
    Nfs.Corpus.names;
  (* Per-flow FSMs. *)
  Fmt.pr "@.per-flow FSMs (abstract states / transitions):@.";
  List.iter
    (fun name ->
      let fsm = Nfactor.Fsm.of_extraction (extract name) in
      Fmt.pr "  %-12s %d state(s), %d transition(s)@." name (Nfactor.Fsm.state_count fsm)
        (Nfactor.Fsm.transition_count fsm))
    Nfs.Corpus.names;
  (* Symbolic end-to-end classes. *)
  Fmt.pr "@.header-space classes (symbolic reachability, initial state):@.";
  List.iter
    (fun name ->
      let ex = extract name in
      let classes =
        Verify.Symreach.classes
          [ (name, ex.Nfactor.Extract.model, Nfactor.Model_interp.initial_store ex) ]
      in
      Fmt.pr "  %-12s %d forwarding class(es)@." name (List.length classes))
    Nfs.Corpus.names

(* ------------------------------------------------------------------ *)
(* Scaling ablation                                                   *)
(* ------------------------------------------------------------------ *)

(* The cause behind the paper's snort row: original-program path
   explosion scales with the ruleset, the forwarding slice does not.
   This sweep regenerates the effect as a curve. *)
let scaling () =
  section "Scaling ablation: snort ruleset size vs path explosion (slice is flat)";
  Fmt.pr "%8s | %10s %12s | %8s %12s@." "rules" "EP orig" "SE orig (ms)" "EP slice" "SE slice (ms)";
  List.iter
    (fun rules ->
      let p = Nfs.Snort_lite.program_with ~rules () in
      let ex = Nfactor.Extract.run ~name:"snort" p in
      let budget = { Symexec.Explore.default_config with Symexec.Explore.max_paths = 1000 } in
      let (_, orig_stats), orig_t =
        Nfactor.Report.time (fun () -> Nfactor.Report.explore_original ~config:budget ex)
      in
      let (_, slice_stats), slice_t =
        Nfactor.Report.time (fun () -> Nfactor.Report.explore_slice ex)
      in
      let ep_orig =
        if orig_stats.Symexec.Explore.overflowed then
          Printf.sprintf ">%d" orig_stats.Symexec.Explore.paths
        else string_of_int orig_stats.Symexec.Explore.paths
      in
      Fmt.pr "%8d | %10s %12.2f | %8d %12.2f@." rules ep_orig (orig_t *. 1e3)
        slice_stats.Symexec.Explore.paths (slice_t *. 1e3))
    [ 0; 1; 2; 4; 8; 16; 64; 300 ]

(* ------------------------------------------------------------------ *)
(* Solver telemetry                                                   *)
(* ------------------------------------------------------------------ *)

(* The incremental/memoizing solver layer, measured on its own terms:
   each NF is extracted (slice exploration, manager-shared verdict
   cache), then the unsliced original is explored *sharing* that cache
   — the original re-decides the slice's branch conditions, so its
   checks hit. "baseline" is the pre-memoization accounting: two fresh
   full-pc solver calls per undecided branch. *)
type telemetry_row = {
  tr_name : string;
  tr_slice_paths : int;
  tr_orig_paths : int;
  tr_decides : int;
  tr_calls : int;
  tr_hits : int;
  tr_misses : int;
  tr_hit_rate : float;
  tr_solver_ms : float;
  tr_depth : int;
  tr_explore_slice_ms : float;  (** extraction's explore-stage wall-clock *)
  tr_explore_orig_ms : float;  (** shared-cache original exploration wall-clock *)
  tr_stage_ms : (string * float) list;
}

let solver_telemetry () =
  section "Solver telemetry: incremental context + memoized path-condition checks";
  Fmt.pr "%-12s | %7s %8s %7s | %6s %6s | %8s | %9s %5s@." "NF" "decides" "baseline" "calls"
    "hits" "misses" "hit-rate" "time(ms)" "depth";
  let rows =
    List.map
      (fun (e : Nfs.Corpus.entry) ->
        let name = e.Nfs.Corpus.name in
        let ex = extract name in
        let budget =
          { Symexec.Explore.default_config with Symexec.Explore.max_paths = 1000 }
        in
        let (_, o), orig_wall =
          Nfactor.Report.time (fun () ->
              Nfactor.Report.explore_original ~config:budget
                ~memo:ex.Nfactor.Extract.solver_memo ex)
        in
        let s = ex.Nfactor.Extract.stats in
        let open Symexec.Explore in
        let decides = s.decides + o.decides in
        let calls = s.solver_calls + o.solver_calls in
        let hits = s.solver_cache_hits + o.solver_cache_hits in
        let misses = s.solver_cache_misses + o.solver_cache_misses in
        let checks = hits + misses in
        let rate = if checks = 0 then 0. else 100. *. float_of_int hits /. float_of_int checks in
        let solver_ms = (s.solver_time_s +. o.solver_time_s) *. 1e3 in
        let depth = max s.max_fork_depth o.max_fork_depth in
        Fmt.pr "%-12s | %7d %8d %7d | %6d %6d | %7.1f%% | %9.2f %5d@." name decides (2 * decides)
          calls hits misses rate solver_ms depth;
        if name = "balance" || name = "snort" then
          Fmt.pr "%14s fork depth histogram (slice): %s@." ""
            (String.concat " "
               (List.map
                  (fun (d, n) -> Printf.sprintf "%d:%d" d n)
                  (Imap.bindings s.fork_depths)));
        let stage_ms =
          List.map (fun (st, t) -> (st, t *. 1e3)) ex.Nfactor.Extract.stage_times
        in
        {
          tr_name = name;
          tr_slice_paths = s.paths;
          tr_orig_paths = o.paths;
          tr_decides = decides;
          tr_calls = calls;
          tr_hits = hits;
          tr_misses = misses;
          tr_hit_rate = rate;
          tr_solver_ms = solver_ms;
          tr_depth = depth;
          tr_explore_slice_ms =
            (try List.assoc "explore" stage_ms with Not_found -> 0.);
          tr_explore_orig_ms = orig_wall *. 1e3;
          tr_stage_ms = stage_ms;
        })
      Nfs.Corpus.all
  in
  Fmt.pr "@.(decides = undecided branches; baseline = pre-memoization cost of 2 fresh@.";
  Fmt.pr " full-pc checks per branch; calls = actual decision-procedure runs after@.";
  Fmt.pr " the ¬sat_t ⇒ sat_f short-circuit and cache; slice + shared-cache original.)@.";
  rows

(* ------------------------------------------------------------------ *)
(* Runtime dataplane throughput                                        *)
(* ------------------------------------------------------------------ *)

(* Interpreter vs compiled engine on identical seeded traffic. Both
   sides run over a pre-materialized packet array/list so generation
   cost stays out of the measurement; each side takes the best of
   three runs. The replay asserts output equality in-bench — a timing
   number for a wrong dataplane is worthless. *)
type rt_row = {
  rt_name : string;
  rt_n : int;
  rt_interp_ms : float;
  rt_engine_ms : float;
  rt_speedup : float;
  rt_equal : bool;
  rt_fsm_hits : int;
  rt_index_hits : int;
  rt_tree_hits : int;
  rt_scan_hits : int;
  rt_evictions : int;
}

let best_of_3 f =
  let one () =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  min (one ()) (min (one ()) (one ()))

let runtime_throughput ~smoke () =
  section "Runtime dataplane: interpreter vs compiled engine, same seeded traffic";
  Fmt.pr "%-12s %8s | %12s %12s %8s | %9s %9s %9s %9s | %s@." "NF" "pkts" "interp(ms)"
    "engine(ms)" "speedup" "fsm-hit" "index-hit" "tree-hit" "scan-hit" "equal";
  (* Per-NF packet budgets: the paper's subjects get the full 100k;
     NFs whose *interpreter* is quadratic in flow-table size (every
     random packet inserts a flow, every lookup rescans the sorted
     assoc list) get smaller counts so the reference side finishes —
     which is itself the point of the compiled engine. *)
  let budget = [ ("snort", 100_000); ("balance", 100_000); ("portknock", 100_000); ("lb", 20_000); ("nat", 10_000) ] in
  let rows =
    List.map
      (fun (name, n_full) ->
        let n = if smoke then min 20_000 (n_full / 5) else n_full in
        let ex = extract name in
        let model = ex.Nfactor.Extract.model in
        let store = Nfactor.Model_interp.initial_store ex in
        let pkts = Packet.Traffic.random_stream ~seed:2016 ~n () in
        let arr = Array.of_list pkts in
        let plan = Nfactor_runtime.Compile.compile model ~config:store in
        let interp_s =
          best_of_3 (fun () -> ignore (Nfactor.Model_interp.run model ~store ~pkts))
        in
        let engine_s =
          best_of_3 (fun () ->
              let eng = Nfactor_runtime.Engine.create plan ~store in
              ignore (Nfactor_runtime.Engine.run_batch eng arr))
        in
        (* correctness of the measured artifact, on the same traffic *)
        let ref_store, ref_out = Nfactor.Model_interp.run model ~store ~pkts in
        let eng = Nfactor_runtime.Engine.create plan ~store in
        let outs = Nfactor_runtime.Engine.run_batch eng arr in
        let equal =
          List.for_all2
            (fun r (o : Nfactor_runtime.Engine.outcome) ->
              List.length r = List.length o.Nfactor_runtime.Engine.outputs
              && List.for_all2 Packet.Pkt.equal r o.Nfactor_runtime.Engine.outputs)
            ref_out (Array.to_list outs)
          && Nfactor.Model_interp.Smap.equal Symexec.Value.equal ref_store
               (Nfactor_runtime.Engine.snapshot eng)
        in
        let s = eng.Nfactor_runtime.Engine.stats in
        let row =
          {
            rt_name = name;
            rt_n = n;
            rt_interp_ms = interp_s *. 1e3;
            rt_engine_ms = engine_s *. 1e3;
            rt_speedup = (if engine_s > 0. then interp_s /. engine_s else 0.);
            rt_equal = equal;
            rt_fsm_hits = s.Nfactor_runtime.Engine.fsm_hits;
            rt_index_hits = s.Nfactor_runtime.Engine.index_hits;
            rt_tree_hits = s.Nfactor_runtime.Engine.tree_hits;
            rt_scan_hits = s.Nfactor_runtime.Engine.scan_hits;
            rt_evictions = Nfactor_runtime.Flowstate.evictions eng.Nfactor_runtime.Engine.state;
          }
        in
        Fmt.pr "%-12s %8d | %12.2f %12.2f %7.1fx | %9d %9d %9d %9d | %s@." name n
          row.rt_interp_ms row.rt_engine_ms row.rt_speedup row.rt_fsm_hits
          row.rt_index_hits row.rt_tree_hits row.rt_scan_hits
          (if equal then "yes" else "NO — MISMATCH");
        row)
      budget
  in
  Fmt.pr "@.(speedup = Model_interp.run / Engine.run_batch on the same seeded traffic;@.";
  Fmt.pr " equality covers per-packet outputs and the final state store.)@.";
  rows

(* ------------------------------------------------------------------ *)
(* Sharded dataplane scaling                                           *)
(* ------------------------------------------------------------------ *)

(* Flow-key domain sharding under the churn workload (a constant pool
   of concurrent conversations with unbounded turnover). Exactness is
   asserted unconditionally — a 2-shard run must reproduce the single
   engine packet-for-packet (outputs, merged store, merged counters) —
   while the timed scaling points only run when the machine actually
   has the cores: speedups measured by timesharing domains on fewer
   cores say nothing about the dataplane, so they are recorded as
   skipped instead. The gate is machine-normalized by construction:
   the baseline engine and the sharded runs time identical churn
   streams in the same process, so machine speed cancels out of the
   speedup ratio. *)
type scale_point = {
  sp_shards : int;
  sp_ms : float;
  sp_speedup : float;
  sp_deferred_pct : float;
  sp_gate : float;
  sp_gate_ok : bool;
}

type scale_row = {
  sc_name : string;
  sc_exact : bool;
  sc_base_ms : float;
  sc_base_mpps : float;
  sc_points : scale_point list;
  sc_skipped : string option;
}

type scale_result = {
  sr_cores : int;
  sr_concurrent : int;
  sr_n : int;
  sr_rows : scale_row list;
}

let scale_gates = [ (2, 1.6); (4, 2.5) ]

(* The scaling subjects: the paper's IDS (stateless matching, sharded
   by the default 4-tuple) and the NAT (per-flow tables plus a global
   reverse map — the hard case for the serial phase). *)
let scale_nfs = [ "snort"; "nat" ]

let shard_scaling ~smoke () =
  section "Sharded dataplane: flow-key domain scaling under churn";
  let cores = Domain.recommended_domain_count () in
  let concurrent = if smoke then 20_000 else 1_000_000 in
  let n = if smoke then 100_000 else 2_000_000 in
  Fmt.pr "cores %d; %d concurrent flow(s), %d packet(s) per point@.@." cores concurrent n;
  Fmt.pr "%-12s %7s | %12s %8s | %8s %9s | %s@." "NF" "shards" "time(ms)" "Mpps"
    "speedup" "deferred" "verdicts";
  let rows =
    List.map
      (fun name ->
        let ex = extract name in
        let model = ex.Nfactor.Extract.model in
        let store = Nfactor.Model_interp.initial_store ex in
        let plan = Nfactor_runtime.Compile.compile model ~config:store in
        (* Exactness first, at verification scale (run_batch keeps every
           outcome, so this stays off the million-flow budget). *)
        let exact =
          let ch = Packet.Traffic.churn_gen ~concurrent:5_000 ~seed:11 () in
          let pkts = Array.init 30_000 (fun _ -> Packet.Traffic.churn_next ch) in
          let eng = Nfactor_runtime.Engine.create plan ~store in
          let expected = Nfactor_runtime.Engine.run_batch eng pkts in
          let sh = Nfactor_runtime.Shard.create ~nshards:2 model ~config:store in
          Fun.protect
            ~finally:(fun () -> Nfactor_runtime.Shard.shutdown sh)
            (fun () ->
              let got = Nfactor_runtime.Shard.run_batch sh pkts in
              let ok = ref true in
              Array.iteri
                (fun i (e : Nfactor_runtime.Engine.outcome) ->
                  let g = got.(i) in
                  if
                    e.fired <> g.fired
                    || List.length e.outputs <> List.length g.outputs
                    || not (List.for_all2 Packet.Pkt.equal e.outputs g.outputs)
                  then ok := false)
                expected;
              !ok
              && Nfactor.Model_interp.Smap.equal Symexec.Value.equal
                   (Nfactor_runtime.Engine.snapshot eng)
                   (Nfactor_runtime.Shard.snapshot sh)
              && Nfactor_runtime.Engine.stats_json_of ~nf:name ~plan ~evictions:0
                   (Nfactor_runtime.Shard.merged_stats sh)
                 = Nfactor_runtime.Engine.stats_json eng)
        in
        (* Baseline: the single-threaded engine on the same stream. *)
        let base_s =
          let ch = Packet.Traffic.churn_gen ~concurrent ~seed:2016 () in
          let eng = Nfactor_runtime.Engine.create plan ~store in
          Nfactor_runtime.Engine.replay_churn eng ~churn:ch ~n
        in
        let base_mpps = if base_s > 0. then float_of_int n /. base_s /. 1e6 else 0. in
        Fmt.pr "%-12s %7d | %12.2f %8.2f | %8s %9s | exact: %s@." name 1 (base_s *. 1e3)
          base_mpps "1.00x" "-"
          (if exact then "yes" else "NO — MISMATCH");
        let points =
          List.filter_map
            (fun (k, gate) ->
              if cores < k then None
              else
                let ch = Packet.Traffic.churn_gen ~concurrent ~seed:2016 () in
                let sh = Nfactor_runtime.Shard.create ~nshards:k model ~config:store in
                Fun.protect
                  ~finally:(fun () -> Nfactor_runtime.Shard.shutdown sh)
                  (fun () ->
                    let s = Nfactor_runtime.Shard.replay_churn sh ~churn:ch ~n in
                    let speedup = if s > 0. then base_s /. s else 0. in
                    let deferred_pct =
                      100.
                      *. float_of_int (Nfactor_runtime.Shard.deferred sh)
                      /. float_of_int n
                    in
                    let p =
                      {
                        sp_shards = k;
                        sp_ms = s *. 1e3;
                        sp_speedup = speedup;
                        sp_deferred_pct = deferred_pct;
                        sp_gate = gate;
                        sp_gate_ok = speedup >= gate;
                      }
                    in
                    Fmt.pr "%-12s %7d | %12.2f %8.2f | %7.2fx %8.1f%% | gate >= %.1fx: %s@."
                      name k p.sp_ms
                      (if s > 0. then float_of_int n /. s /. 1e6 else 0.)
                      speedup deferred_pct gate
                      (if p.sp_gate_ok then "ok" else "FAIL");
                    Some p))
            scale_gates
        in
        let skipped =
          match List.filter (fun (k, _) -> cores < k) scale_gates with
          | [] -> None
          | missing ->
              let s =
                Printf.sprintf "skipped insufficient cores (have %d, need %s)" cores
                  (String.concat "/" (List.map (fun (k, _) -> string_of_int k) missing))
              in
              Fmt.pr "%-12s %7s | scaling gate %s@." name "-" s;
              Some s
        in
        {
          sc_name = name;
          sc_exact = exact;
          sc_base_ms = base_s *. 1e3;
          sc_base_mpps = base_mpps;
          sc_points = points;
          sc_skipped = skipped;
        })
      scale_nfs
  in
  Fmt.pr "@.(baseline = single engine on the same churn stream; exactness compares a@.";
  Fmt.pr " 2-shard run against it packet-for-packet: outputs, merged store, counters.)@.";
  { sr_cores = cores; sr_concurrent = concurrent; sr_n = n; sr_rows = rows }

let add_scale_sections buf sr =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "  \"scale\": {\n";
  add "    \"cores\": %d, \"concurrent_flows\": %d, \"packets\": %d,\n" sr.sr_cores
    sr.sr_concurrent sr.sr_n;
  add "    \"gates\": { %s },\n"
    (String.concat ", "
       (List.map (fun (k, g) -> Printf.sprintf "\"%d\": %.1f" k g) scale_gates));
  add "    \"nfs\": [\n";
  List.iteri
    (fun i r ->
      add "      { \"name\": %S, \"exact\": %b, \"base_ms\": %.3f, \"base_mpps\": %.3f,\n"
        r.sc_name r.sc_exact r.sc_base_ms r.sc_base_mpps;
      (match r.sc_skipped with
      | Some s -> add "        \"gate_status\": %S,\n" s
      | None -> add "        \"gate_status\": \"measured\",\n");
      add "        \"points\": [%s] }%s\n"
        (String.concat ", "
           (List.map
              (fun p ->
                Printf.sprintf
                  "{ \"shards\": %d, \"ms\": %.3f, \"speedup\": %.2f, \
                   \"deferred_pct\": %.1f, \"gate\": %.1f, \"gate_ok\": %b }"
                  p.sp_shards p.sp_ms p.sp_speedup p.sp_deferred_pct p.sp_gate
                  p.sp_gate_ok)
              r.sc_points))
        (if i = List.length sr.sr_rows - 1 then "" else ","))
    sr.sr_rows;
  add "    ],\n";
  let exact_ok = List.for_all (fun r -> r.sc_exact) sr.sr_rows in
  let gates_ok =
    List.for_all (fun r -> List.for_all (fun p -> p.sp_gate_ok) r.sc_points) sr.sr_rows
  in
  add "    \"shard_exact_ok\": %b,\n" exact_ok;
  add "    \"scale_ok\": %b\n" (exact_ok && gates_ok);
  add "  }"

(* ------------------------------------------------------------------ *)
(* Compiled service chains                                             *)
(* ------------------------------------------------------------------ *)

(* The linked chain dataplane (Chainplan/Chainengine) vs the reference
   interpreter chain (Verify.Network.run) on identical seeded traffic.
   The compiled side takes the best of three runs; the interpreter side
   runs ONCE and that same run doubles as the exactness reference —
   per-hop assoc-list stores make it quadratic in flow count (minutes
   at 100k packets), which is precisely the gap this subsystem closes.
   The ≥5x gate is machine-normalized by construction: both sides time
   the same pre-materialized stream on this machine. *)
type chain_row = {
  ch_chain : string;
  ch_n : int;
  ch_interp_ms : float;
  ch_fused_ms : float;
  ch_speedup : float;
  ch_exact : bool;
  ch_fused_entries : int;
  ch_fused_walks : int;
  ch_handoffs : int;
}

type chain_inv_row = {
  ci_chain : string;
  ci_invariant : string;
  ci_status : string;
  ci_reproduces : bool option;
      (* counterexample replayed through the compiled chain *)
}

let chain_gate = 5.0

let chain_nodes names =
  List.map
    (fun name ->
      let ex = extract name in
      (name, ex.Nfactor.Extract.model, Nfactor.Model_interp.initial_store ex))
    names

let chain_bench ~smoke () =
  section "Compiled service chains: linked dataplane vs interpreter chain";
  Fmt.pr "%-22s %8s | %12s %12s %9s | %7s %11s %9s | %s@." "chain" "pkts" "interp(ms)"
    "fused(ms)" "speedup" "fusedE" "fused-walks" "handoffs" "exact";
  let budget =
    [
      (* acceptance chain: full 100k unless smoke *)
      ([ "firewall"; "nat"; "snort" ], 100_000);
      (* fusion showcase: nat's static ip_src rewrite pre-decides the
         firewall dispatch. nat in front sees the whole stream, so the
         interpreter side gets the quadratic-budget treatment. *)
      ([ "nat"; "firewall" ], 20_000);
      ([ "mirror"; "lb" ], 20_000);
    ]
  in
  let rows =
    List.map
      (fun (names, n_full) ->
        let n = if smoke then min 20_000 (n_full / 5) else n_full in
        let nodes = chain_nodes names in
        let cp = Nfactor_runtime.Chainplan.link nodes in
        let pkts = Packet.Traffic.random_stream ~seed:2016 ~n () in
        let arr = Array.of_list pkts in
        let fused_s =
          best_of_3 (fun () ->
              let eng = Nfactor_runtime.Chainengine.create cp in
              ignore (Nfactor_runtime.Chainengine.run_batch eng arr))
        in
        (* One interpreter pass: the timing sample and the exactness
           reference are the same run. *)
        let ref_chain =
          Verify.Network.chain
            (List.map (fun (id, m, s) -> Verify.Network.node id m s) nodes)
        in
        let t0 = Unix.gettimeofday () in
        let ref_results = Verify.Network.run ref_chain pkts in
        let interp_s = Unix.gettimeofday () -. t0 in
        let eng = Nfactor_runtime.Chainengine.create cp in
        let outs = Nfactor_runtime.Chainengine.run_batch eng arr in
        let exact =
          List.for_all2
            (fun (ref_pkts, _) got ->
              List.length ref_pkts = List.length got
              && List.for_all2 Packet.Pkt.equal ref_pkts got)
            ref_results (Array.to_list outs)
          && List.for_all2
               (fun (node : Verify.Network.node) (_, got) ->
                 Nfactor.Model_interp.Smap.equal Symexec.Value.equal
                   node.Verify.Network.store got)
               ref_chain.Verify.Network.nodes
               (Nfactor_runtime.Chainengine.snapshot_hops eng)
        in
        let row =
          {
            ch_chain = String.concat "," names;
            ch_n = n;
            ch_interp_ms = interp_s *. 1e3;
            ch_fused_ms = fused_s *. 1e3;
            ch_speedup = (if fused_s > 0. then interp_s /. fused_s else 0.);
            ch_exact = exact;
            ch_fused_entries = cp.Nfactor_runtime.Chainplan.fused_entries;
            ch_fused_walks = eng.Nfactor_runtime.Chainengine.fused_walks;
            ch_handoffs = eng.Nfactor_runtime.Chainengine.handoffs;
          }
        in
        Fmt.pr "%-22s %8d | %12.1f %12.1f %8.1fx | %7d %11d %9d | %s@." row.ch_chain n
          row.ch_interp_ms row.ch_fused_ms row.ch_speedup row.ch_fused_entries
          row.ch_fused_walks row.ch_handoffs
          (if exact then "yes" else "NO — MISMATCH");
        row)
      budget
  in
  (* Invariant smoke: one proven, one violated whose counterexample
     must reproduce through the compiled chain. *)
  let invariants =
    [
      ([ "snort"; "firewall" ], "never-reaches:ip_ttl<=0", "proven");
      ([ "snort"; "firewall" ], "never-reaches:dport=80", "violated");
    ]
  in
  let inv_rows =
    List.map
      (fun (names, spec, _expected) ->
        let nodes = chain_nodes names in
        let prop =
          match String.index_opt spec ':' with
          | Some i ->
              Result.get_ok
                (Verify.Invariant.parse_prop
                   (String.sub spec (i + 1) (String.length spec - i - 1)))
          | None -> assert false
        in
        let o = Verify.Invariant.never_reaches nodes prop in
        let reproduces =
          match o.Verify.Invariant.counterexample with
          | None -> None
          | Some cex ->
              let eng =
                Nfactor_runtime.Chainengine.create (Nfactor_runtime.Chainplan.link nodes)
              in
              Some
                (List.exists (Verify.Invariant.holds_on prop)
                   (Nfactor_runtime.Chainengine.step eng cex))
        in
        let row =
          {
            ci_chain = String.concat "," names;
            ci_invariant = spec;
            ci_status = Verify.Invariant.status_string o.Verify.Invariant.status;
            ci_reproduces = reproduces;
          }
        in
        Fmt.pr "@.invariant %-28s on %-16s: %s%s@." spec row.ci_chain row.ci_status
          (match reproduces with
          | Some true -> " (counterexample reproduces through the compiled chain)"
          | Some false -> " (counterexample does NOT reproduce — BUG)"
          | None -> "");
        row)
      invariants
  in
  Fmt.pr "@.(speedup = Network.run / Chainengine.run_batch on the same stream; gate: the@.";
  Fmt.pr " 3-NF chain must be exact and >=%.0fx; exactness covers outputs + per-hop stores.)@."
    chain_gate;
  (rows, inv_rows)

let add_chain_sections buf (rows, inv_rows) =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "  \"chain\": {\n";
  add "    \"gate\": %.1f,\n" chain_gate;
  add "    \"chains\": [\n";
  List.iteri
    (fun i r ->
      add
        "      { \"chain\": %S, \"packets\": %d, \"interp_ms\": %.3f, \"fused_ms\": \
         %.3f, \"speedup\": %.2f, \"exact\": %b, \"fused_entries\": %d, \
         \"fused_walks\": %d, \"handoffs\": %d }%s\n"
        r.ch_chain r.ch_n r.ch_interp_ms r.ch_fused_ms r.ch_speedup r.ch_exact
        r.ch_fused_entries r.ch_fused_walks r.ch_handoffs
        (if i = List.length rows - 1 then "" else ","))
    rows;
  add "    ],\n";
  add "    \"invariants\": [\n";
  List.iteri
    (fun i r ->
      add "      { \"chain\": %S, \"invariant\": %S, \"status\": %S, \"reproduces\": %s }%s\n"
        r.ci_chain r.ci_invariant r.ci_status
        (match r.ci_reproduces with
        | Some b -> string_of_bool b
        | None -> "null")
        (if i = List.length inv_rows - 1 then "" else ","))
    inv_rows;
  add "    ],\n";
  let acceptance =
    List.exists
      (fun r -> r.ch_chain = "firewall,nat,snort" && r.ch_exact && r.ch_speedup >= chain_gate)
      rows
  in
  let fusion_live = List.exists (fun r -> r.ch_fused_walks > 0) rows in
  let invariants_ok =
    List.for_all
      (fun r ->
        match r.ci_status with
        | "proven" -> r.ci_reproduces = None
        | "violated" -> r.ci_reproduces = Some true
        | _ -> false)
      inv_rows
  in
  add "    \"exact_ok\": %b,\n" (List.for_all (fun r -> r.ch_exact) rows);
  add "    \"fusion_live\": %b,\n" fusion_live;
  add "    \"invariants_ok\": %b,\n" invariants_ok;
  add "    \"chain_ok\": %b\n"
    (acceptance && fusion_live && invariants_ok
    && List.for_all (fun r -> r.ch_exact) rows);
  add "  }"

(* ------------------------------------------------------------------ *)
(* Pass pipeline: cold synthesis vs warm cache replay                  *)
(* ------------------------------------------------------------------ *)

(* The content-addressed pipeline measured end-to-end: a cold pass
   synthesizes the whole corpus into an empty artifact store, then a
   warm pass replays it through a *fresh* manager (the stand-in for a
   new process) over the populated store. Sources are materialized
   outside the timed regions; warm takes the best of three runs, and
   correctness is asserted in-bench: every warm pass must be a disk
   hit and every warm model byte-identical to its cold counterpart. *)
type pipeline_row = {
  pc_nfs : int;
  pc_passes : int;
  pc_cold_ms : float;
  pc_warm_ms : float;
  pc_speedup : float;
  pc_warm_misses : int;
  pc_warm_hit_rate : float;
  pc_models_identical : bool;
  pc_stage_cold_ms : (string * float) list;
  pc_stage_warm_ms : (string * float) list;
}

let rec rm_rf p =
  if Sys.file_exists p then
    if Sys.is_directory p then begin
      Array.iter (fun entry -> rm_rf (Filename.concat p entry)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p

let pipeline_cache () =
  section "Pass pipeline: cold synthesis vs warm cache replay (--cache-dir)";
  (* Flush floating garbage so earlier sections' major-GC debt is not
     collected inside the timed regions. *)
  Gc.full_major ();
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nfactor-bench-cache.%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let sources =
    List.map (fun (e : Nfs.Corpus.entry) -> (e.Nfs.Corpus.name, e.Nfs.Corpus.source ())) Nfs.Corpus.all
  in
  let run_all m =
    List.map (fun (name, src) -> (name, Pipeline.Manager.extract_source m ~name src)) sources
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let synth_passes = List.filter (fun p -> p <> "compile") Pipeline.Manager.passes in
  let stage_ms traces =
    List.map
      (fun pass ->
        ( pass,
          1e3
          *. List.fold_left
               (fun acc (tr : Pipeline.Trace.t) ->
                 if tr.Pipeline.Trace.pass = pass then acc +. tr.Pipeline.Trace.wall_s else acc)
               0. traces ))
      synth_passes
  in
  let count_misses traces =
    List.length
      (List.filter (fun (tr : Pipeline.Trace.t) -> tr.Pipeline.Trace.status = Pipeline.Trace.Miss) traces)
  in
  (* cold: populate the empty store *)
  let cold_m = Pipeline.Manager.create ~cache_dir:dir () in
  let cold_exs, cold_s = timed (fun () -> run_all cold_m) in
  let cold_traces = Pipeline.Manager.traces cold_m in
  (* warm: fresh manager over the populated store, best of 3 *)
  let warm_once () =
    let m = Pipeline.Manager.create ~cache_dir:dir () in
    let exs, w = timed (fun () -> run_all m) in
    (Pipeline.Manager.traces m, exs, w)
  in
  let w1 = warm_once () and w2 = warm_once () and w3 = warm_once () in
  let warm_traces, warm_exs, _ = w1 in
  let warm_s = List.fold_left (fun acc (_, _, w) -> min acc w) infinity [ w1; w2; w3 ] in
  rm_rf dir;
  let model_str (_, ex) = Nfactor.Model_io.to_string ex.Nfactor.Extract.model in
  let models_identical =
    List.for_all2 (fun c w -> fst c = fst w && model_str c = model_str w) cold_exs warm_exs
  in
  let row =
    {
      pc_nfs = List.length sources;
      pc_passes = List.length cold_traces;
      pc_cold_ms = cold_s *. 1e3;
      pc_warm_ms = warm_s *. 1e3;
      pc_speedup = (if warm_s > 0. then cold_s /. warm_s else 0.);
      pc_warm_misses = count_misses warm_traces;
      pc_warm_hit_rate = Pipeline.Trace.hit_rate warm_traces;
      pc_models_identical = models_identical;
      pc_stage_cold_ms = stage_ms cold_traces;
      pc_stage_warm_ms = stage_ms warm_traces;
    }
  in
  Fmt.pr "%-14s | %10s %10s@." "stage" "cold (ms)" "warm (ms)";
  List.iter2
    (fun (pass, c) (_, w) -> Fmt.pr "%-14s | %10.3f %10.3f@." pass c w)
    row.pc_stage_cold_ms row.pc_stage_warm_ms;
  Fmt.pr "%-14s | %10.3f %10.3f@." "end-to-end" row.pc_cold_ms row.pc_warm_ms;
  Fmt.pr "@.%d NFs, %d passes; warm replay %.1fx faster; warm hit rate %.0f%% (%d misses); \
          models byte-identical: %b@."
    row.pc_nfs row.pc_passes row.pc_speedup row.pc_warm_hit_rate row.pc_warm_misses
    row.pc_models_identical;
  row

(* ------------------------------------------------------------------ *)
(* Machine-readable telemetry (BENCH_pr5.json)                         *)
(* ------------------------------------------------------------------ *)

(* PR-2 telemetry on the same harness and budgets (BENCH_pr2.json as
   recorded when PR 2 landed): the reference the interpreter-side
   numbers are held against — this PR adds a compiled dataplane, it
   must not regress extraction or solving. *)
let pr2_baseline =
  [
    (* name, (decides, calls, hits, rate, recorded solver ms, recorded SE-orig ms) *)
    ("snort", (33496, 3420, 54415, 94.1, 13.403, 227.717));
    ("balance", (53, 80, 18, 18.4, 0.079, 0.227));
  ]

(* PR-3 runtime telemetry as recorded when PR 3 landed (BENCH_pr3.json):
   the dataplane reference this PR's runtime section is read against —
   the pipeline refactor must not regress the compiled engine. *)
let pr3_baseline =
  [
    (* name, (packets, engine ms recorded, speedup recorded) *)
    ("snort", (100_000, 64.337, 7.17));
    ("balance", (100_000, 47.736, 224.39));
    ("portknock", (100_000, 65.902, 13.39));
    ("lb", (20_000, 26.077, 221.61));
    ("nat", (10_000, 21.442, 537.12));
  ]

(* PR-5 runtime telemetry as recorded when PR 5 landed (BENCH_pr5.json):
   the engine this PR's dispatch rewrite replaces. The dispatch gate
   compares *speedup ratios* (engine-vs-interpreter from the same run,
   divided by the recorded speedup) so machine speed cancels and the
   gate is meaningful on other hardware. *)
let pr5_baseline =
  [
    (* name, (packets, engine ms recorded, speedup recorded) *)
    ("snort", (100_000, 72.501, 6.64));
    ("balance", (100_000, 54.230, 148.48));
    ("portknock", (100_000, 82.237, 11.70));
    ("lb", (20_000, 30.733, 127.35));
    ("nat", (10_000, 17.437, 547.19));
  ]

(* PR-6 runtime telemetry as recorded when PR 6 landed (BENCH_pr6.json):
   carried forward for the record — the sharded dataplane reuses the
   single-threaded engine per shard, so its single-engine numbers are
   read against this recording (the gate itself stays on the PR-5
   ratios, whose noise rationale still applies). *)
let pr6_baseline =
  [
    (* name, (packets, engine ms recorded, speedup recorded) *)
    ("snort", (100_000, 30.250, 19.85));
    ("balance", (100_000, 51.973, 161.61));
    ("portknock", (100_000, 23.596, 46.67));
    ("lb", (20_000, 14.955, 284.60));
    ("nat", (10_000, 7.922, 990.76));
  ]

(* NFs whose per-packet work goes through flow state — where the old
   ordered scan actually cost something and the FSM/tree dispatch is
   the fix. [snort]'s matching is stateless, so it is reported but not
   gated. *)
let stateful_nfs = [ "portknock"; "balance"; "lb"; "nat" ]

(* Runtime telemetry sections shared by the full-bench JSON and the
   [--rt --json] runtime-only JSON (the CI dispatch gate runs the
   latter: gate verdicts are only meaningful at full packet budgets,
   which the smoke bench does not use). No trailing comma after the
   last section — callers continue or close the object. *)
let add_rt_sections buf rt_rows =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "  \"baseline_pr5_runtime\": {\n";
  List.iteri
    (fun i (name, (pkts, engine_rec, speedup_rec)) ->
      add "    %S: { \"packets\": %d, \"engine_ms_recorded\": %.3f, \"speedup_recorded\": %.2f }%s\n"
        name pkts engine_rec speedup_rec
        (if i = List.length pr5_baseline - 1 then "" else ","))
    pr5_baseline;
  add "  },\n";
  add "  \"baseline_pr6_runtime\": {\n";
  List.iteri
    (fun i (name, (pkts, engine_rec, speedup_rec)) ->
      add "    %S: { \"packets\": %d, \"engine_ms_recorded\": %.3f, \"speedup_recorded\": %.2f }%s\n"
        name pkts engine_rec speedup_rec
        (if i = List.length pr6_baseline - 1 then "" else ","))
    pr6_baseline;
  add "  },\n";
  add "  \"runtime\": [\n";
  List.iteri
    (fun i r ->
      add
        "    { \"name\": %S, \"packets\": %d, \"interp_ms\": %.3f, \"engine_ms\": %.3f,\n"
        r.rt_name r.rt_n r.rt_interp_ms r.rt_engine_ms;
      add
        "      \"speedup\": %.2f, \"speedup_ok\": %b, \"outputs_and_state_equal\": %b,\n"
        r.rt_speedup (r.rt_speedup >= 5.) r.rt_equal;
      add
        "      \"fsm_hits\": %d, \"index_hits\": %d, \"tree_hits\": %d, \"scan_hits\": %d, \
         \"scan_ok\": %b, \"evictions\": %d }%s\n"
        r.rt_fsm_hits r.rt_index_hits r.rt_tree_hits r.rt_scan_hits
        (r.rt_scan_hits = 0) r.rt_evictions
        (if i = List.length rt_rows - 1 then "" else ","))
    rt_rows;
  add "  ],\n";
  (* Dispatch gate. Compares machine-normalized speedup ratios: this
     run's engine-vs-interpreter speedup over the PR-5 recording, per
     stateful NF (interpreter and engine time the same traffic in the
     same process, so machine speed cancels out of each ratio). The
     measured geomean when this gate was recorded was ~2.0x; the gate
     holds the geomean at >= 1.25 with a per-NF floor of 0.7 because
     single-run timing noise on both sides of a ratio is +/-25% in
     isolation and worse on a contended CI runner (a loaded run was
     observed at geomean 1.49 with balance at 0.84) — a gate pinned
     near the measured value would flake, while 1.25 still fails any
     real dispatch regression: reverting to the ordered scan drops
     portknock's ratio alone to ~0.3. *)
  add "  \"dispatch_vs_pr5\": {\n";
  let ratios =
    List.filter_map
      (fun r ->
        if not (List.mem r.rt_name stateful_nfs) then None
        else
          match List.assoc_opt r.rt_name pr5_baseline with
          | Some (_, _, speedup_rec) when speedup_rec > 0. ->
              Some (r.rt_name, r.rt_speedup /. speedup_rec)
          | _ -> None)
      rt_rows
  in
  List.iter
    (fun (name, ratio) ->
      add "    %S: { \"speedup_ratio\": %.2f, \"ratio_ok\": %b },\n" name ratio
        (ratio >= 0.7))
    ratios;
  let geomean =
    match ratios with
    | [] -> 0.
    | _ ->
        exp
          (List.fold_left (fun acc (_, r) -> acc +. log r) 0. ratios
          /. float_of_int (List.length ratios))
  in
  let dispatch_ok =
    geomean >= 1.25 && List.for_all (fun (_, r) -> r >= 0.7) ratios
  in
  add "    \"geomean\": %.2f, \"dispatch_ok\": %b\n" geomean dispatch_ok;
  add "  }"

(* ------------------------------------------------------------------ *)
(* Static analyzer: lint + proof-validated table minimization         *)
(* ------------------------------------------------------------------ *)

type an_row = {
  an_name : string;
  an_before : int;
  an_after : int;
  an_reduction_pct : float;
  an_dead : int;
  an_shadowed : int;
  an_merged : int;
  an_widened : int;
  an_errors : int;
  an_warnings : int;
  an_infos : int;
  an_post_clean : bool;
  an_verified : bool;
  an_n : int;
  an_orig_ms : float;
  an_min_ms : float;
  an_speedup : float;  (** original-plan time / minimized-plan time *)
  an_equal : bool;  (** compiled replay: outputs + final store identical *)
}

(* Whole-corpus analyzer pass: lint, minimize, then compile BOTH the
   original and the minimized model and replay the same seeded traffic
   through each compiled engine. [an_equal] is the strongest runtime
   check in the harness — the minimizer's rewrites survive compilation
   to the FSM/decision-tree dispatch plans, packet-for-packet and
   store-exact. The speedup gate is machine-normalized by construction
   (both engines time identical traffic in the same process). *)
let analysis_bench ~smoke () =
  section "Static analyzer: lints + Equiv-gated table minimization, compiled replay";
  Fmt.pr "%-18s %7s %5s %6s | %13s | %5s | %10s %10s %8s | %s@." "NF" "entries" "min"
    "red%" "lint(E/W/I)" "gate" "orig(ms)" "min(ms)" "speedup" "equal";
  let rows =
    List.map
      (fun (e : Nfs.Corpus.entry) ->
        let name = e.Nfs.Corpus.name in
        let ex = extract name in
        let store = Nfactor.Model_interp.initial_store ex in
        let pre, (o : Analysis.Minimize.outcome), post = Pipeline.Manager.analyze mgr ex in
        let errors, warnings, infos = Analysis.Lint.counts pre in
        let before = Nfactor.Model.entry_count o.Analysis.Minimize.original in
        let after = Nfactor.Model.entry_count o.Analysis.Minimize.minimized in
        (* Engine-only replay, so the budget can be generous: at 20k
           packets a run is ~5ms and best-of-3 still jitters past the
           throughput gate; 100k puts every NF in the tens of
           milliseconds where the ratio is stable. *)
        let n = if smoke then 20_000 else 100_000 in
        let arr = Array.of_list (Packet.Traffic.random_stream ~seed:909 ~n ()) in
        let orig_plan =
          Nfactor_runtime.Compile.compile o.Analysis.Minimize.original ~config:store
        in
        let min_plan =
          Nfactor_runtime.Compile.compile o.Analysis.Minimize.minimized ~config:store
        in
        (* Interleaved best-of-5: alternating the two plans inside each
           round means GC phase and cache state drift hits both sides
           equally, instead of whichever plan happens to run second. *)
        let one plan =
          Gc.minor ();
          let t0 = Unix.gettimeofday () in
          let eng = Nfactor_runtime.Engine.create plan ~store in
          ignore (Nfactor_runtime.Engine.run_batch eng arr);
          Unix.gettimeofday () -. t0
        in
        let orig_s = ref infinity and min_s = ref infinity in
        for _ = 1 to 5 do
          orig_s := Float.min !orig_s (one orig_plan);
          min_s := Float.min !min_s (one min_plan)
        done;
        let orig_s = !orig_s and min_s = !min_s in
        let eng_a = Nfactor_runtime.Engine.create orig_plan ~store in
        let eng_b = Nfactor_runtime.Engine.create min_plan ~store in
        let outs_a = Nfactor_runtime.Engine.run_batch eng_a arr in
        let outs_b = Nfactor_runtime.Engine.run_batch eng_b arr in
        let equal =
          Array.length outs_a = Array.length outs_b
          && Array.for_all2
               (fun (a : Nfactor_runtime.Engine.outcome)
                    (b : Nfactor_runtime.Engine.outcome) ->
                 List.length a.Nfactor_runtime.Engine.outputs
                 = List.length b.Nfactor_runtime.Engine.outputs
                 && List.for_all2 Packet.Pkt.equal a.Nfactor_runtime.Engine.outputs
                      b.Nfactor_runtime.Engine.outputs)
               outs_a outs_b
          && Nfactor.Model_interp.Smap.equal Symexec.Value.equal
               (Nfactor_runtime.Engine.snapshot eng_a)
               (Nfactor_runtime.Engine.snapshot eng_b)
        in
        let row =
          {
            an_name = name;
            an_before = before;
            an_after = after;
            an_reduction_pct = 100. *. Analysis.Minimize.reduction o;
            an_dead = o.Analysis.Minimize.deleted_dead;
            an_shadowed = o.Analysis.Minimize.deleted_shadowed;
            an_merged = o.Analysis.Minimize.merged;
            an_widened = o.Analysis.Minimize.widened_literals;
            an_errors = errors;
            an_warnings = warnings;
            an_infos = infos;
            an_post_clean = Analysis.Lint.is_clean post;
            an_verified = o.Analysis.Minimize.verified;
            an_n = n;
            an_orig_ms = orig_s *. 1e3;
            an_min_ms = min_s *. 1e3;
            an_speedup = (if min_s > 0. then orig_s /. min_s else 0.);
            an_equal = equal;
          }
        in
        Fmt.pr "%-18s %7d %5d %5.1f%% | %5d/%d/%d     | %5s | %10.2f %10.2f %7.2fx | %s@."
          name before after row.an_reduction_pct errors warnings infos
          (if row.an_verified then "exact" else "FAIL")
          row.an_orig_ms row.an_min_ms row.an_speedup
          (if equal then "yes" else "NO — MISMATCH");
        row)
      Nfs.Corpus.all
  in
  Fmt.pr "@.(speedup = original-plan / minimized-plan Engine.run_batch on the same seeded@.";
  Fmt.pr " traffic; equality covers per-packet outputs and the final state store; gate =@.";
  Fmt.pr " the minimizer's Equiv differential replay.)@.";
  rows

(* Analyzer telemetry: per-NF reduction and lint counts plus the PR-9
   gates — the deliberately-redundant NF must shrink by at least 20%,
   every minimization must pass its differential gate and its compiled
   replay, and the minimized plan must not regress throughput (0.85
   floor absorbs timer noise on the small tables; the expectation is
   >= 1). *)
let add_analysis_sections buf (rows : an_row list) =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "  \"analysis\": {\n";
  List.iter
    (fun r ->
      add
        "    %S: { \"entries\": %d, \"min_entries\": %d, \"reduction_pct\": %.1f, \
         \"deleted_dead\": %d, \"deleted_shadowed\": %d, \"merged\": %d, \
         \"widened_literals\": %d, \"lint_errors\": %d, \"lint_warnings\": %d, \
         \"lint_infos\": %d, \"post_clean\": %b, \"verified\": %b, \"packets\": %d, \
         \"orig_ms\": %.3f, \"min_ms\": %.3f, \"speedup\": %.2f, \"replay_equal\": %b \
         },\n"
        r.an_name r.an_before r.an_after r.an_reduction_pct r.an_dead r.an_shadowed
        r.an_merged r.an_widened r.an_errors r.an_warnings r.an_infos r.an_post_clean
        r.an_verified r.an_n r.an_orig_ms r.an_min_ms r.an_speedup r.an_equal)
    rows;
  let redundant = List.find_opt (fun r -> r.an_name = "firewall_redundant") rows in
  let red_pct = match redundant with Some r -> r.an_reduction_pct | None -> 0. in
  let all_verified = List.for_all (fun r -> r.an_verified) rows in
  let all_equal = List.for_all (fun r -> r.an_equal) rows in
  let all_post_clean = List.for_all (fun r -> r.an_post_clean) rows in
  let geomean =
    match rows with
    | [] -> 0.
    | _ ->
        exp
          (List.fold_left (fun acc r -> acc +. log r.an_speedup) 0. rows
          /. float_of_int (List.length rows))
  in
  (* "Zero throughput regression", measured: the corpus geomean must
     not dip below parity minus timer noise, and no single NF may lose
     more than 25% — the dispatch counters are identical pre/post
     minimization, so anything past that is a real plan pessimization,
     not jitter. *)
  let throughput_ok =
    geomean >= 0.93 && List.for_all (fun r -> r.an_speedup >= 0.75) rows
  in
  add
    "    \"gates\": { \"redundant_reduction_pct\": %.1f, \"redundant_reduction_ok\": %b, \
     \"all_verified\": %b, \"all_replays_equal\": %b, \"all_post_clean\": %b, \
     \"speedup_geomean\": %.2f, \"throughput_ok\": %b, \"analysis_ok\": %b }\n"
    red_pct (red_pct >= 20.) all_verified all_equal all_post_clean geomean throughput_ok
    (red_pct >= 20. && all_verified && all_equal && all_post_clean && throughput_ok);
  add "  }"

(* ------------------------------------------------------------------ *)
(* Worklist explorer: join-point merging vs naive enumeration (PR 10)  *)
(* ------------------------------------------------------------------ *)

type ex_row = {
  ex_name : string;
  ex_paths : int;  (** merged exploration: completed paths *)
  ex_merges : int;
  ex_prunes : int;
  ex_calls : int;  (** merged exploration: solver calls *)
  ex_decides : int;
  ex_merged_ms : float;  (** merged explore-stage wall clock *)
  ex_naive_paths : int;  (** unmerged enumeration (raised budget for dpi) *)
  ex_naive_calls : int;
  ex_naive_ms : float;
  ex_model_equal : bool;  (** merged model == unmerged model *)
  ex_byte_identical : bool;  (** equality shown byte-for-byte (vs differentially) *)
}

(* PR-9 recordings of the recursive forker on the pre-merge corpus:
   (paths, solver calls) per NF. Counters are machine-independent, so
   the worklist engine is gated on reproducing them exactly — same
   path census, no extra solver traffic — with no normalization
   needed; wall-clock is gated separately on the same-process
   merged/naive ratio. *)
let pr9_explore_recorded =
  [
    ("lb", (5, 8));
    ("balance", (11, 20));
    ("snort", (6, 10));
    ("nat", (5, 8));
    ("firewall", (6, 10));
    ("firewall_redundant", (8, 14));
    ("ratelimiter", (5, 8));
    ("ips", (10, 18));
    ("synguard", (10, 18));
    ("acl", (5, 8));
    ("mirror", (3, 4));
    ("portknock", (11, 20));
  ]

let explore_bench ~smoke () =
  section "Worklist explorer: join-point path merging + eager UNSAT pruning";
  Fmt.pr "%-18s %6s %6s %6s %6s %8s | %6s %6s %8s | %s@." "NF" "paths" "merges" "prunes"
    "calls" "expl(ms)" "naive" "calls" "naive(ms)" "model";
  let explore_ms (ex : Nfactor.Extract.result) =
    try List.assoc "explore" ex.Nfactor.Extract.stage_times *. 1e3 with Not_found -> 0.
  in
  let rows =
    List.map
      (fun (e : Nfs.Corpus.entry) ->
        let name = e.Nfs.Corpus.name in
        let p () = e.Nfs.Corpus.program () in
        let merged = Nfactor.Extract.run ~merge:true ~name (p ()) in
        (* The naive enumeration needs room for dpi's 2^13 paths. *)
        let naive_config =
          if name = Nfs.Dpi.name then
            { Symexec.Explore.default_config with Symexec.Explore.max_paths = 20_000 }
          else Symexec.Explore.default_config
        in
        let naive = Nfactor.Extract.run ~config:naive_config ~merge:false ~name (p ()) in
        let ms = merged.Nfactor.Extract.stats and ns = naive.Nfactor.Extract.stats in
        (* Below the profitability threshold the engines must agree
           byte-for-byte; where merging fired, observational equality
           is checked differentially (palette-free: seeded random +
           flow churn). *)
        let byte_identical = ms.Symexec.Explore.merges = 0 in
        let model_equal =
          if byte_identical then
            String.equal
              (Nfactor.Model_io.to_string naive.Nfactor.Extract.model)
              (Nfactor.Model_io.to_string merged.Nfactor.Extract.model)
          else begin
            let n = if smoke then 100 else 300 in
            let ch = Packet.Traffic.churn_gen ~concurrent:24 ~seed:1010 () in
            let pkts =
              Packet.Traffic.random_stream ~seed:1011 ~n ()
              @ List.init (n / 3) (fun _ -> Packet.Traffic.churn_next ch)
            in
            let store = Nfactor.Model_interp.initial_store merged in
            let v, stores_equal =
              Nfactor.Equiv.model_differential ~store ~pkts naive.Nfactor.Extract.model
                merged.Nfactor.Extract.model
            in
            v.Nfactor.Equiv.mismatches = [] && stores_equal
          end
        in
        let row =
          {
            ex_name = name;
            ex_paths = ms.Symexec.Explore.paths;
            ex_merges = ms.Symexec.Explore.merges;
            ex_prunes = ms.Symexec.Explore.prunes;
            ex_calls = ms.Symexec.Explore.solver_calls;
            ex_decides = ms.Symexec.Explore.decides;
            ex_merged_ms = explore_ms merged;
            ex_naive_paths = ns.Symexec.Explore.paths;
            ex_naive_calls = ns.Symexec.Explore.solver_calls;
            ex_naive_ms = explore_ms naive;
            ex_model_equal = model_equal;
            ex_byte_identical = byte_identical;
          }
        in
        Fmt.pr "%-18s %6d %6d %6d %6d %8.2f | %6d %6d %8.2f | %s@." name row.ex_paths
          row.ex_merges row.ex_prunes row.ex_calls row.ex_merged_ms row.ex_naive_paths
          row.ex_naive_calls row.ex_naive_ms
          (if not model_equal then "NO — MISMATCH"
           else if byte_identical then "identical"
           else "diff-equal");
        row)
      Nfs.Corpus.all
  in
  Fmt.pr "@.(naive = the unmerged enumeration in the same process; dpi's naive run uses a@.";
  Fmt.pr " raised 20k-path budget — under the default 4096 budget it overflows, so join-@.";
  Fmt.pr " point merging is what makes that NF synthesizable at all.)@.";
  rows

(* Explorer telemetry and the PR-10 gates: every NF the PR-9 forker
   explored must reproduce its recorded path census and solver-call
   count exactly (counters, so machine-independent); the exponential
   NF must collapse from >= 2^12 naive paths to at most 4x its branch
   count; merged and naive models must agree corpus-wide; and the
   merged exploration must not cost wall-clock vs the naive one in the
   same process (the only timing gate, normalized by construction). *)
let add_explore_sections buf (rows : ex_row list) =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "  \"explore\": {\n";
  List.iter
    (fun r ->
      let recorded = List.assoc_opt r.ex_name pr9_explore_recorded in
      let rec_json =
        match recorded with
        | Some (p, c) ->
            Printf.sprintf "\"pr9_paths\": %d, \"pr9_solver_calls\": %d, " p c
        | None -> ""
      in
      add
        "    %S: { \"paths\": %d, \"merges\": %d, \"prunes\": %d, \"solver_calls\": %d, \
         \"decides\": %d, \"explore_ms\": %.3f, \"naive_paths\": %d, \
         \"naive_solver_calls\": %d, \"naive_explore_ms\": %.3f, %s\"model_equal\": %b, \
         \"byte_identical\": %b },\n"
        r.ex_name r.ex_paths r.ex_merges r.ex_prunes r.ex_calls r.ex_decides
        r.ex_merged_ms r.ex_naive_paths r.ex_naive_calls r.ex_naive_ms rec_json
        r.ex_model_equal r.ex_byte_identical)
    rows;
  let recorded_ok =
    List.for_all
      (fun (name, (paths, calls)) ->
        match List.find_opt (fun r -> r.ex_name = name) rows with
        | Some r ->
            r.ex_paths = paths && r.ex_calls <= calls && r.ex_merges = 0
            && r.ex_byte_identical && r.ex_model_equal
        | None -> false)
      pr9_explore_recorded
  in
  let all_equal = List.for_all (fun r -> r.ex_model_equal) rows in
  let dpi = List.find_opt (fun r -> r.ex_name = Nfs.Dpi.name) rows in
  let exponential_ok =
    match dpi with
    | Some r ->
        r.ex_naive_paths >= 4096
        && r.ex_paths <= 4 * r.ex_decides
        && r.ex_merges > 0
    | None -> false
  in
  let merged_total = List.fold_left (fun a r -> a +. r.ex_merged_ms) 0. rows in
  let naive_total = List.fold_left (fun a r -> a +. r.ex_naive_ms) 0. rows in
  (* Same-process ratio: merging must not cost wall-clock corpus-wide
     (1.10 absorbs timer noise on the sub-millisecond legacy runs). *)
  let wall_ok = merged_total <= (naive_total *. 1.10) +. 1. in
  add
    "    \"gates\": { \"pr9_counters_reproduced\": %b, \"all_models_equal\": %b, \
     \"exponential_nf_ok\": %b, \"merged_explore_ms\": %.3f, \"naive_explore_ms\": %.3f, \
     \"wall_ok\": %b, \"explore_ok\": %b }\n"
    recorded_ok all_equal exponential_ok merged_total naive_total wall_ok
    (recorded_ok && all_equal && exponential_ok && wall_ok);
  add "  }"

(* The section-only JSON behind [--rt]/[--scale]/[--chain]/[--analysis]/
   [--explore]: any subset of the sections, same shape as the
   corresponding pieces of the full-bench JSON (BENCH_pr7.json is
   rt+scale at full budgets; BENCH_pr8.json is the chain section at
   full budgets; BENCH_pr9.json is the analysis section at full
   budgets; BENCH_pr10.json is the explore section). *)
let emit_sections_json path ?rt_rows ?scale ?chain ?analysis ?explore () =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  if explore <> None then begin
    add "  \"pr\": 10,\n";
    add "  \"subject\": \"worklist symbolic explorer: join-point path merging + eager UNSAT pruning\",\n"
  end
  else if analysis <> None then begin
    add "  \"pr\": 9,\n";
    add "  \"subject\": \"static model analyzer: shadowing/reachability lints + Equiv-gated table minimization\",\n"
  end
  else if chain <> None then begin
    add "  \"pr\": 8,\n";
    add "  \"subject\": \"compiled service-chain dataplane: static linking, hop fusion, chain invariants\",\n"
  end
  else begin
    add "  \"pr\": 7,\n";
    add "  \"subject\": \"sharded multicore dataplane: flow-key domain sharding with RCU plan swap\",\n"
  end;
  (match rt_rows with
  | Some rt ->
      add_rt_sections buf rt;
      if scale <> None || chain <> None || analysis <> None || explore <> None then
        add ",\n"
  | None -> ());
  (match scale with
  | Some sr ->
      add_scale_sections buf sr;
      if chain <> None || analysis <> None || explore <> None then add ",\n"
  | None -> ());
  (match chain with
  | Some c ->
      add_chain_sections buf c;
      if analysis <> None || explore <> None then add ",\n"
  | None -> ());
  (match analysis with
  | Some rows ->
      add_analysis_sections buf rows;
      if explore <> None then add ",\n"
  | None -> ());
  (match explore with Some rows -> add_explore_sections buf rows | None -> ());
  add "\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "@.telemetry written to %s@." path

let emit_json path rows rt_rows sr pc =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"pr\": 7,\n";
  add "  \"subject\": \"sharded multicore dataplane: flow-key domain sharding with RCU plan swap\",\n";
  add "  \"budgets\": { \"se_orig_max_paths\": 1000 },\n";
  add "  \"pipeline\": {\n";
  add "    \"nfs\": %d, \"passes\": %d,\n" pc.pc_nfs pc.pc_passes;
  add "    \"cold_ms\": %.3f, \"warm_ms\": %.3f, \"speedup\": %.2f, \"speedup_ok\": %b,\n"
    pc.pc_cold_ms pc.pc_warm_ms pc.pc_speedup (pc.pc_speedup >= 5.);
  add "    \"warm_hit_rate_pct\": %.1f, \"warm_misses\": %d, \"models_byte_identical\": %b,\n"
    pc.pc_warm_hit_rate pc.pc_warm_misses pc.pc_models_identical;
  let stage_obj stages =
    String.concat ", " (List.map (fun (st, t) -> Printf.sprintf "%S: %.3f" st t) stages)
  in
  add "    \"stage_cold_ms\": { %s },\n" (stage_obj pc.pc_stage_cold_ms);
  add "    \"stage_warm_ms\": { %s }\n" (stage_obj pc.pc_stage_warm_ms);
  add "  },\n";
  add "  \"baseline_pr2\": {\n";
  List.iteri
    (fun i (name, (decides, calls, hits, rate, solver_rec, orig_rec)) ->
      add
        "    %S: { \"decides\": %d, \"solver_calls\": %d, \"memo_hits\": %d, \
         \"hit_rate_pct\": %.1f,\n"
        name decides calls hits rate;
      add
        "           \"solver_time_ms_recorded\": %.3f, \"explore_orig_ms_recorded\": %.3f }%s\n"
        solver_rec orig_rec
        (if i = List.length pr2_baseline - 1 then "" else ","))
    pr2_baseline;
  add "  },\n";
  add "  \"baseline_pr3_runtime\": {\n";
  List.iteri
    (fun i (name, (pkts, engine_rec, speedup_rec)) ->
      add "    %S: { \"packets\": %d, \"engine_ms_recorded\": %.3f, \"speedup_recorded\": %.2f }%s\n"
        name pkts engine_rec speedup_rec
        (if i = List.length pr3_baseline - 1 then "" else ","))
    pr3_baseline;
  add "  },\n";
  add_rt_sections buf rt_rows;
  add ",\n";
  add_scale_sections buf sr;
  add ",\n";
  add "  \"nfs\": [\n";
  List.iteri
    (fun i r ->
      add "    { \"name\": %S, \"paths_slice\": %d, \"paths_orig\": %d,\n" r.tr_name
        r.tr_slice_paths r.tr_orig_paths;
      add
        "      \"decides\": %d, \"solver_calls\": %d, \"memo_hits\": %d, \"memo_misses\": %d, \
         \"hit_rate_pct\": %.1f,\n"
        r.tr_decides r.tr_calls r.tr_hits r.tr_misses r.tr_hit_rate;
      add
        "      \"solver_time_ms\": %.3f, \"max_fork_depth\": %d, \"explore_slice_ms\": %.3f, \
         \"explore_orig_ms\": %.3f,\n"
        r.tr_solver_ms r.tr_depth r.tr_explore_slice_ms r.tr_explore_orig_ms;
      add "      \"stage_ms\": { %s } }%s\n"
        (String.concat ", "
           (List.map (fun (st, t) -> Printf.sprintf "%S: %.3f" st t) r.tr_stage_ms))
        (if i = List.length rows - 1 then "" else ","))
    rows;
  add "  ],\n";
  (* Acceptance comparison: interpreter-side numbers (solver time,
     SE-on-original wall-clock) no worse than the PR-2 recording on the
     paper's two subjects, with 15% headroom for machine noise. *)
  add "  \"comparison_vs_pr2\": {\n";
  List.iteri
    (fun i (name, (_, _, _, _, base_solver_ms, base_orig_ms)) ->
      match List.find_opt (fun r -> r.tr_name = name) rows with
      | None -> ()
      | Some r ->
          add
            "    %S: { \"solver_time_ms\": %.3f, \"baseline_ms\": %.3f, \"solver_ok\": %b,\n"
            name r.tr_solver_ms base_solver_ms
            (r.tr_solver_ms <= base_solver_ms *. 1.15);
          add
            "           \"explore_orig_ms\": %.3f, \"baseline_orig_ms\": %.3f, \
             \"explore_ok\": %b }%s\n"
            r.tr_explore_orig_ms base_orig_ms
            (r.tr_explore_orig_ms <= base_orig_ms *. 1.15)
            (if i = List.length pr2_baseline - 1 then "" else ","))
    pr2_baseline;
  add "  }\n";
  add "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "@.machine-readable telemetry written to %s@." path

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                          *)
(* ------------------------------------------------------------------ *)

let slice_only program () =
  let p = Nfl.Transform.canonicalize program in
  ignore (Statealyzer.Varclass.analyze p)

let explore_orig ex config () = ignore (Nfactor.Report.explore_original ~config ex)

let micro_tests () =
  let lb = corpus_entry "lb" and snort = corpus_entry "snort" and balance = corpus_entry "balance" in
  let lb_p = lb.Nfs.Corpus.program () in
  let snort_p = snort.Nfs.Corpus.program () in
  let balance_p = balance.Nfs.Corpus.program () in
  let lb_ex = extract "lb" in
  let small_budget b = { Symexec.Explore.default_config with Symexec.Explore.max_paths = b } in
  (* Pre-extract for the exploration benches so only the measured stage
     runs inside the staged closure. *)
  let balance_ex = extract "balance" in
  let snort_ex = extract "snort" in
  let differential_100 =
    let pkts = Packet.Traffic.random_stream ~seed:9 ~n:100 () in
    fun () -> ignore (Nfactor.Equiv.differential lb_ex ~pkts)
  in
  Test.make_grouped ~name:"nfactor"
    [
      (* Table 1 *)
      Test.make ~name:"table1/statealyzer:lb" (Staged.stage (fun () -> slice_only lb_p ()));
      (* Table 2, slicing column *)
      Test.make ~name:"table2/slicing:snort" (Staged.stage (fun () -> slice_only snort_p ()));
      Test.make ~name:"table2/slicing:balance" (Staged.stage (fun () -> slice_only balance_p ()));
      (* Table 2, SE-on-slice column (full extraction includes it) *)
      Test.make ~name:"table2/extract:snort"
        (Staged.stage (fun () -> ignore (Nfactor.Extract.run ~name:"snort" snort_p)));
      Test.make ~name:"table2/extract:balance"
        (Staged.stage (fun () -> ignore (Nfactor.Extract.run ~name:"balance" balance_p)));
      (* Table 2, SE-on-original column (budget-capped, like ">1000") *)
      Test.make ~name:"table2/se-orig:balance"
        (Staged.stage (explore_orig balance_ex (small_budget 1000)));
      Test.make ~name:"table2/se-orig:snort-capped64"
        (Staged.stage (explore_orig snort_ex (small_budget 64)));
      (* Figure 6 *)
      Test.make ~name:"fig6/extract+render:balance"
        (Staged.stage (fun () ->
             ignore
               (Nfactor.Model.to_string
                  (Nfactor.Extract.run ~name:"balance" balance_p).Nfactor.Extract.model)));
      (* Accuracy *)
      Test.make ~name:"accuracy/differential-100:lb" (Staged.stage differential_100);
      (* Section-4 applications *)
      Test.make ~name:"apps/fsm:balance"
        (Staged.stage (fun () -> ignore (Nfactor.Fsm.of_extraction balance_ex)));
      Test.make ~name:"apps/export+import:lb"
        (Staged.stage (fun () ->
             ignore
               (Nfactor.Model_io.of_string
                  (Nfactor.Model_io.to_string lb_ex.Nfactor.Extract.model))));
      Test.make ~name:"apps/symreach-classes:snort+firewall"
        (Staged.stage
           (let nodes =
              List.map
                (fun name ->
                  let ex = extract name in
                  (name, ex.Nfactor.Extract.model, Nfactor.Model_interp.initial_store ex))
                [ "snort"; "firewall" ]
            in
            fun () -> ignore (Verify.Symreach.classes nodes)));
      Test.make ~name:"apps/testgen:firewall"
        (Staged.stage
           (let fw_ex = extract "firewall" in
            fun () -> ignore (Verify.Testgen.cover fw_ex)));
      (* Ablations: loop bound sensitivity of the slice exploration. *)
      Test.make ~name:"ablation/loop-bound-1:balance"
        (Staged.stage (fun () ->
             ignore
               (Nfactor.Extract.run
                  ~config:{ Symexec.Explore.default_config with Symexec.Explore.loop_bound = 1 }
                  ~name:"balance" balance_p)));
      Test.make ~name:"ablation/loop-bound-4:balance"
        (Staged.stage (fun () ->
             ignore
               (Nfactor.Extract.run
                  ~config:{ Symexec.Explore.default_config with Symexec.Explore.loop_bound = 4 }
                  ~name:"balance" balance_p)));
    ]

let run_micro () =
  section "Bechamel micro-benchmarks (per-stage timings and ablations)";
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est = match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> Float.nan in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  Fmt.pr "%-48s %14s@." "benchmark" "time/run";
  List.iter
    (fun (name, ns) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Fmt.pr "%-48s %14s@." name human)
    rows

(* ------------------------------------------------------------------ *)
(* Entry point                                                        *)
(* ------------------------------------------------------------------ *)

(* [--smoke] runs the fast sections only (CI gate); [--rt] runs just
   the runtime-dataplane table (fast iteration on engine changes);
   [--scale] runs just the sharded-dataplane scaling section (the CI
   shard gate); [--json PATH] writes the machine-readable telemetry
   next to the printed tables. *)
let () =
  (* Same batch-tool GC tuning as the CLI: synthesis and cache replay
     are allocation-rate-bound; the default nursery halves warm-replay
     throughput with minor collections. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 4 * 1024 * 1024 };
  let smoke = ref false in
  let rt_only = ref false in
  let scale_only = ref false in
  let chain_only = ref false in
  let analysis_only = ref false in
  let explore_only = ref false in
  let json_path = ref None in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--rt" :: rest ->
        rt_only := true;
        parse rest
    | "--scale" :: rest ->
        scale_only := true;
        parse rest
    | "--chain" :: rest ->
        chain_only := true;
        parse rest
    | "--analysis" :: rest ->
        analysis_only := true;
        parse rest
    | "--explore" :: rest ->
        explore_only := true;
        parse rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse rest
    | arg :: _ ->
        prerr_endline
          ("usage: bench [--smoke] [--rt] [--scale] [--chain] [--analysis] [--explore] \
            [--json PATH]; unknown argument "
         ^ arg);
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !rt_only || !scale_only || !chain_only || !analysis_only || !explore_only then begin
    let rt_rows = if !rt_only then Some (runtime_throughput ~smoke:!smoke ()) else None in
    let sr = if !scale_only then Some (shard_scaling ~smoke:!smoke ()) else None in
    let ch = if !chain_only then Some (chain_bench ~smoke:!smoke ()) else None in
    let an = if !analysis_only then Some (analysis_bench ~smoke:!smoke ()) else None in
    let ex = if !explore_only then Some (explore_bench ~smoke:!smoke ()) else None in
    Option.iter
      (fun path ->
        emit_sections_json path ?rt_rows ?scale:sr ?chain:ch ?analysis:an ?explore:ex ())
      !json_path;
    Fmt.pr "@.done.@.";
    exit 0
  end;
  (* First, on a quiet heap: the pipeline cold/warm comparison. *)
  let pc = pipeline_cache () in
  table1 ();
  figure6 ();
  if not !smoke then begin
    table2 ();
    accuracy ()
  end;
  path_equivalence ();
  if not !smoke then begin
    applications ();
    scaling ()
  end;
  let rt_rows = runtime_throughput ~smoke:!smoke () in
  let sr = shard_scaling ~smoke:!smoke () in
  let rows = solver_telemetry () in
  Option.iter (fun path -> emit_json path rows rt_rows sr pc) !json_path;
  if not !smoke then run_micro ();
  Fmt.pr "@.done.@."
