#!/bin/sh
# Local mirror of .github/workflows/ci.yml: tier-1 gate + bench smoke.
set -eux

dune build
dune runtest
dune exec bench/main.exe -- --smoke --json BENCH_smoke.json
