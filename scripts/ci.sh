#!/bin/sh
# Local mirror of .github/workflows/ci.yml: tier-1 gate + bench smoke.
set -eux

dune build
dune runtest
dune exec bench/main.exe -- --smoke --json BENCH_smoke.json

# Runtime dataplane gates: the smoke telemetry must show the compiled
# engine agreeing with the interpreter and beating it >= 5x, and the
# engine's counter JSON must be well-formed.
grep -q '"runtime":' BENCH_smoke.json
if grep -q '"speedup_ok": false' BENCH_smoke.json; then
  echo "runtime engine below the 5x speedup gate" >&2
  exit 1
fi
if grep -q '"outputs_and_state_equal": false' BENCH_smoke.json; then
  echo "runtime engine diverged from the interpreter" >&2
  exit 1
fi
if grep -q '"scan_ok": false' BENCH_smoke.json; then
  echo "ordered scan resolved packets on a fully-classified NF" >&2
  exit 1
fi
dune exec bin/nfactor_cli.exe -- run -n 5000 --check snort
dune exec bin/nfactor_cli.exe -- run -n 5000 --json snort | grep -q '"index_hits"'
dune exec bin/nfactor_cli.exe -- run -n 5000 --json portknock | grep -q '"fsm_hits"'

# Sharded dataplane smoke gate: a 2-domain run must reproduce the
# single engine exactly (outputs, merged store, merged counters) on
# both random and churn traffic, and must stay fully dispatched
# (scan_hits 0 on classified NFs).
dune exec bin/nfactor_cli.exe -- run -n 5000 --shards 2 --check nat
dune exec bin/nfactor_cli.exe -- run -n 5000 --shards 2 --churn 500 --check portknock
dune exec bin/nfactor_cli.exe -- run -n 5000 --shards 2 --json nat | grep -q '"scan_hits": 0'

# Dispatch gate, at full packet budgets (speedups are budget-dependent,
# so the smoke run cannot judge them): every stateful NF's
# engine-vs-interpreter speedup, relative to the PR-5 recording, must
# clear the per-NF floor and the geomean threshold (see bench/main.ml
# for the thresholds and their noise rationale).
dune exec bench/main.exe -- --rt --json BENCH_rt.json
if grep -q '"scan_ok": false' BENCH_rt.json; then
  echo "ordered scan resolved packets at full budgets" >&2
  exit 1
fi
if grep -q '"ratio_ok": false' BENCH_rt.json || grep -q '"dispatch_ok": false' BENCH_rt.json; then
  echo "dispatch speedup regressed vs the PR-5 recording" >&2
  exit 1
fi
rm -f BENCH_rt.json

# Shard scaling gate (machine-normalized, core-conditional — see
# bench/main.ml): 2-shard exactness is asserted unconditionally; the
# >= 1.6x @ 2 shards / >= 2.5x @ 4 shards speedup gates only judge
# machines with the cores to run them, and are recorded as skipped
# otherwise.
dune exec bench/main.exe -- --scale --smoke --json BENCH_scale.json
if grep -q '"exact": false' BENCH_scale.json; then
  echo "sharded dataplane diverged from the single engine" >&2
  exit 1
fi
if grep -q '"scale_ok": false' BENCH_scale.json; then
  echo "shard scaling below the speedup gate" >&2
  exit 1
fi
rm -f BENCH_scale.json

# Pass-pipeline cache gate: synthesize the corpus twice through one
# on-disk artifact store. The second run must be a pure replay (zero
# recomputed passes) and must reproduce byte-identical models.
CACHE_DIR=$(mktemp -d)
trap 'rm -rf "$CACHE_DIR"' EXIT
dune exec bin/nfactor_cli.exe -- synth-all --cache-dir "$CACHE_DIR" --json > synth_cold.json
dune exec bin/nfactor_cli.exe -- synth-all --cache-dir "$CACHE_DIR" --json > synth_warm.json
grep -q '"misses": 0' synth_warm.json
grep -q '"hit_rate_pct": 100.0' synth_warm.json
# model_md5 lines must agree between the cold and the warm run
grep '"model_md5"' synth_cold.json > cold_models.txt
grep '"model_md5"' synth_warm.json > warm_models.txt
cmp cold_models.txt warm_models.txt
rm -f synth_cold.json synth_warm.json cold_models.txt warm_models.txt

# Compiled service-chain gates: the linked 3-NF chain must reproduce
# the interpreter chain exactly (outputs, per-hop final stores) on
# random and churn traffic, a sharded chain must reproduce the single
# linked engine, and the invariant verifier must prove a true
# invariant and refute a false one with a counterexample that replays
# through the compiled chain.
dune exec bin/nfactor_cli.exe -- chain run firewall,nat,snort -n 20000 --check
dune exec bin/nfactor_cli.exe -- chain run firewall,nat,snort -n 20000 --churn 2000 --check
dune exec bin/nfactor_cli.exe -- chain run snort,synguard,ips -n 20000 --shards 2 --check
dune exec bin/nfactor_cli.exe -- chain verify snort,firewall --invariant "never-reaches:ip_ttl<=0" --expect proven
dune exec bin/nfactor_cli.exe -- chain verify snort,firewall --invariant "never-reaches:dport=80" --expect violated
dune exec bench/main.exe -- --chain --smoke --json BENCH_chain.json
if grep -q '"chain_ok": false' BENCH_chain.json; then
  echo "chain dataplane gate failed (exactness, fusion, speedup, or invariants)" >&2
  exit 1
fi
rm -f BENCH_chain.json

# Static analyzer gates. Pre-minimization, the deliberately-redundant
# firewall must lint dirty (its dead audit branch is only visible to
# the bit-level implication lattice) and the minimizer must verify and
# shrink it; post-minimization, every corpus NF must lint clean (no
# errors or warnings) and the whole analysis section's gates —
# >= 20% reduction on the redundant NF, every rewrite Equiv-verified,
# compiled original-vs-minimized replays exact, no throughput
# regression — must hold at full budgets.
dune exec bin/nfactor_cli.exe -- lint firewall_redundant --expect dirty
dune exec bin/nfactor_cli.exe -- minimize firewall_redundant --check --json | grep -q '"verified": true'
for nf in $(dune exec bin/nfactor_cli.exe -- list | awk 'NR>1 {print $1}'); do
  dune exec bin/nfactor_cli.exe -- lint "$nf" --fix --expect clean > /dev/null
done
dune exec bench/main.exe -- --analysis --json BENCH_pr9.json
grep -q '"analysis_ok": true' BENCH_pr9.json
grep -q '"redundant_reduction_ok": true' BENCH_pr9.json

# Worklist-explorer gates. With merging on, every NF the PR-9 forker
# explored must reproduce its recorded path census and solver-call
# count exactly and synthesize a byte-identical model; the exponential
# DPI member must collapse from >= 2^12 naive paths to at most 4x its
# branch count while staying differentially equal to the unmerged
# enumeration; and the merged exploration must not cost wall-clock
# against the naive one in the same process.
dune exec bench/main.exe -- --explore --json BENCH_pr10.json
grep -q '"explore_ok": true' BENCH_pr10.json
grep -q '"pr9_counters_reproduced": true' BENCH_pr10.json
grep -q '"exponential_nf_ok": true' BENCH_pr10.json
