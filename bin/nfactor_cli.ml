(** [nfactor] — command-line front end.

    Subcommands mirror the pipeline stages: [list]/[show] browse the
    corpus, [classify] prints the StateAlyzer table, [slice] renders
    the packet+state slice over the source, [extract] prints the
    synthesized model, [paths] the exploration statistics, [report]
    the Table-2 metrics, [accuracy] runs the differential experiment
    and [testgen] emits a model-covering packet sequence. NF arguments
    are corpus names or paths to [.nfl] source files. *)

open Cmdliner

let load_nf arg =
  match Nfs.Corpus.find arg with
  | Some e -> Ok (arg, e.Nfs.Corpus.source (), e.Nfs.Corpus.program ())
  | None -> (
      if Sys.file_exists arg then
        let ic = open_in arg in
        let n = in_channel_length ic in
        let src = really_input_string ic n in
        close_in ic;
        match Nfl.Parser.program src with
        | p -> Ok (Filename.remove_extension (Filename.basename arg), src, p)
        | exception Nfl.Parser.Error (m, pos) ->
            Error (Printf.sprintf "%s:%d:%d: %s" arg pos.Nfl.Ast.line pos.Nfl.Ast.col m)
        | exception Nfl.Lexer.Error (m, pos) ->
            Error (Printf.sprintf "%s:%d:%d: %s" arg pos.Nfl.Ast.line pos.Nfl.Ast.col m)
      else
        Error
          (Printf.sprintf "unknown NF %S (corpus: %s)" arg
             (String.concat ", " Nfs.Corpus.names)))

let nf_arg =
  let doc = "NF to analyze: a corpus name or a path to an .nfl file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"NF" ~doc)

(* Every synthesizing command funnels through one pass manager per
   invocation: repeated extractions of the same NF dedup in memory, and
   --cache-dir persists stage artifacts so later invocations replay
   unchanged stages instead of recomputing them. *)
let cache_dir_arg =
  let doc =
    "Persist pipeline artifacts (canonical program, classification, slices, paths, model) \
     in $(docv); subsequent runs replay unchanged stages from the cache."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let manager ?cache_dir () = Pipeline.Manager.create ?cache_dir ()

let with_nf f arg =
  match load_nf arg with
  | Ok (name, src, p) -> f name src p
  | Error msg ->
      Fmt.epr "error: %s@." msg;
      exit 1

(* ------------------------------------------------------------------ *)
(* Commands                                                           *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Fmt.pr "%-12s %-18s %-8s %s@." "NAME" "STRUCTURE" "IN-PAPER" "DESCRIPTION";
    List.iter
      (fun (e : Nfs.Corpus.entry) ->
        Fmt.pr "%-12s %-18s %-8s %s@." e.Nfs.Corpus.name e.Nfs.Corpus.structure
          (if e.Nfs.Corpus.in_paper then "yes" else "no")
          e.Nfs.Corpus.description)
      Nfs.Corpus.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the NF corpus.") Term.(const run $ const ())

let show_cmd =
  let run = with_nf (fun _ src _ -> print_string src) in
  Cmd.v (Cmd.info "show" ~doc:"Print an NF's NFL source.") Term.(const run $ nf_arg)

let classify_cmd =
  let run =
    with_nf (fun name _ p ->
        let p = Nfl.Transform.canonicalize p in
        let t = Statealyzer.Varclass.analyze p in
        Fmt.pr "StateAlyzer classification for %s:@.%a" name Statealyzer.Varclass.pp t)
  in
  Cmd.v (Cmd.info "classify" ~doc:"Print the StateAlyzer variable classification (Table 1).")
    Term.(const run $ nf_arg)

let slice_cmd =
  let run cache_dir =
    with_nf (fun name _ p ->
        let m = manager ?cache_dir () in
        let ex = Pipeline.Manager.extract m ~name p in
        Fmt.pr "# packet+state slice of %s (pruned statements commented)@." name;
        print_string (Nfl.Pretty.program ~slice:ex.Nfactor.Extract.union_slice ex.Nfactor.Extract.program))
  in
  Cmd.v
    (Cmd.info "slice" ~doc:"Render the canonical source with non-slice statements pruned.")
    Term.(const run $ cache_dir_arg $ nf_arg)

(* Exploration + solver telemetry, shared by `extract --stats` and
   `paths --stats`. The baseline is the historical 2-calls-per-branch
   accounting (every undecided branch checked both sides afresh). *)
let pp_traces m =
  let traces = Pipeline.Manager.traces m in
  Fmt.pr "@.pass pipeline%s:@."
    (match Pipeline.Manager.cache_dir m with
    | Some d -> Printf.sprintf " (cache: %s)" d
    | None -> "");
  List.iter (fun t -> Fmt.pr "  %a@." Pipeline.Trace.pp t) traces;
  Fmt.pr "  hit rate %.0f%%, total %.2fms@."
    (Pipeline.Trace.hit_rate traces)
    (Pipeline.Trace.total_wall_s traces *. 1e3)

let pp_telemetry ?m name (ex : Nfactor.Extract.result) =
  let s = ex.Nfactor.Extract.stats in
  let open Symexec.Explore in
  Fmt.pr "@.solver telemetry for %s:@." name;
  Fmt.pr "  branch decisions    %d (%d fork(s), max pc depth %d)@." s.decides s.forks
    s.max_fork_depth;
  Fmt.pr "  merges/prunes       %d state(s) folded at join points, %d side(s) pruned UNSAT@."
    s.merges s.prunes;
  Fmt.pr "  solver calls        %d (baseline 2 per branch: %d)@." s.solver_calls
    (2 * s.decides);
  Fmt.pr "  cache hits/misses   %d/%d@." s.solver_cache_hits s.solver_cache_misses;
  let per_branch =
    if s.decides = 0 then 0. else s.solver_time_s *. 1e6 /. float_of_int s.decides
  in
  Fmt.pr "  solver time         %.3f ms (%.1f us per branch)@." (s.solver_time_s *. 1e3)
    per_branch;
  Fmt.pr "  fork depth histogram %s@."
    (if Imap.is_empty s.fork_depths then "-"
     else
       String.concat " "
         (List.map
            (fun (d, n) -> Printf.sprintf "%d:%d" d n)
            (Imap.bindings s.fork_depths)));
  Fmt.pr "  stage wall-clock    %s@."
    (String.concat ", "
       (List.map
          (fun (stage, t) -> Printf.sprintf "%s %.2fms" stage (t *. 1e3))
          ex.Nfactor.Extract.stage_times));
  Option.iter pp_traces m

let stats_flag =
  Arg.(value & flag & info [ "stats" ] ~doc:"Also print exploration and solver telemetry.")

let extract_cmd =
  let run stats cache_dir =
    with_nf (fun name _ p ->
        let m = manager ?cache_dir () in
        let ex = Pipeline.Manager.extract m ~name p in
        Fmt.pr "%a" Nfactor.Model.pp ex.Nfactor.Extract.model;
        if stats then pp_telemetry ~m name ex)
  in
  Cmd.v (Cmd.info "extract" ~doc:"Synthesize and print the forwarding model (Figure 6).")
    Term.(const run $ stats_flag $ cache_dir_arg $ nf_arg)

let paths_cmd =
  let run stats cache_dir =
    with_nf (fun name _ p ->
        let m = manager ?cache_dir () in
        let ex = Pipeline.Manager.extract m ~name p in
        let s = ex.Nfactor.Extract.stats in
        Fmt.pr "%s: %d path(s), %d truncated, %d fork(s), %d solver call(s)%s@." name
          s.Symexec.Explore.paths s.Symexec.Explore.truncated_paths s.Symexec.Explore.forks
          s.Symexec.Explore.solver_calls
          (if s.Symexec.Explore.overflowed then " [budget exceeded]" else "");
        List.iteri
          (fun i (path : Symexec.Explore.path) ->
            Fmt.pr "path %d: %d stmt(s), %d literal(s), %s@." i
              (List.length (List.sort_uniq compare path.Symexec.Explore.trace))
              (List.length path.Symexec.Explore.pc)
              (match path.Symexec.Explore.sends with
              | [] -> "drop"
              | l -> Printf.sprintf "%d send(s)" (List.length l)))
          ex.Nfactor.Extract.paths;
        if stats then pp_telemetry ~m name ex)
  in
  Cmd.v (Cmd.info "paths" ~doc:"Show execution paths of the slice union.")
    Term.(const run $ stats_flag $ cache_dir_arg $ nf_arg)

let report_cmd =
  let budget =
    Arg.(value & opt int 1000 & info [ "se-budget" ] ~doc:"Path budget for the original program.")
  in
  let run budget cache_dir =
    let m = manager ?cache_dir () in
    print_endline Nfactor.Report.header;
    List.iter
      (fun (e : Nfs.Corpus.entry) ->
        let name = e.Nfs.Corpus.name in
        let ex = Pipeline.Manager.extract_source m ~name (e.Nfs.Corpus.source ()) in
        let _, row =
          Nfactor.Report.measure ~se_budget:budget ~ex ~name
            ~source:(e.Nfs.Corpus.source ()) (e.Nfs.Corpus.program ())
        in
        print_endline (Nfactor.Report.row_to_string row))
      Nfs.Corpus.all
  in
  Cmd.v (Cmd.info "report" ~doc:"Table-2 metrics for the whole corpus.")
    Term.(const run $ budget $ cache_dir_arg)

let accuracy_cmd =
  let trials = Arg.(value & opt int 1000 & info [ "trials" ] ~doc:"Random packets per NF.") in
  let seed = Arg.(value & opt int 2016 & info [ "seed" ] ~doc:"Traffic seed.") in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~doc:"Replay a packet trace FILE instead of random traffic.")
  in
  let run trials seed trace cache_dir arg =
    with_nf
      (fun name _ p ->
        let ex = Pipeline.Manager.extract (manager ?cache_dir ()) ~name p in
        let v =
          match trace with
          | Some file -> Nfactor.Equiv.differential ex ~pkts:(Packet.Codec.load ~file)
          | None -> Nfactor.Equiv.random_testing ~seed ~trials ex
        in
        if Nfactor.Equiv.ok v then
          Fmt.pr "%s: %d/%d random packets agree (program == model)@." name v.Nfactor.Equiv.trials
            v.Nfactor.Equiv.trials
        else begin
          Fmt.pr "%s: %d mismatch(es) out of %d:@." name
            (List.length v.Nfactor.Equiv.mismatches)
            v.Nfactor.Equiv.trials;
          List.iter (Fmt.pr "%a" Nfactor.Equiv.pp_mismatch) v.Nfactor.Equiv.mismatches;
          exit 1
        end)
      arg
  in
  Cmd.v
    (Cmd.info "accuracy"
       ~doc:"Differential testing: program vs model on random or replayed traffic.")
    Term.(const run $ trials $ seed $ trace $ cache_dir_arg $ nf_arg)

let gen_trace_cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  let n = Arg.(value & opt int 100 & info [ "n" ] ~doc:"Random packets (ignored with --flows).") in
  let flows =
    Arg.(value & opt (some int) None & info [ "flows" ] ~doc:"Generate N full TCP conversations instead.")
  in
  let out = Arg.(required & opt (some string) None & info [ "o"; "output" ] ~doc:"Output FILE.") in
  let run seed n flows out =
    let pkts =
      match flows with
      | Some f -> Packet.Traffic.flow_stream ~seed ~flows:f ~data_pkts:3 ()
      | None -> Packet.Traffic.random_stream ~seed ~n ()
    in
    Packet.Codec.save ~file:out pkts;
    Fmt.pr "%d packet(s) written to %s@." (List.length pkts) out
  in
  Cmd.v (Cmd.info "gen-trace" ~doc:"Generate a reproducible packet trace file.")
    Term.(const run $ seed $ n $ flows $ out)

let testgen_cmd =
  let run cache_dir =
    with_nf (fun name _ p ->
        let ex = Pipeline.Manager.extract (manager ?cache_dir ()) ~name p in
        let c = Verify.Testgen.cover ex in
        Fmt.pr "%s: %a@." name Verify.Testgen.pp_coverage c;
        List.iteri (fun i pk -> Fmt.pr "  #%d %a@." i Packet.Pkt.pp pk) c.Verify.Testgen.pkts;
        let v = Verify.Testgen.compliance ex c in
        Fmt.pr "compliance replay: %s@."
          (if Nfactor.Equiv.ok v then "program matches model on all generated packets" else "MISMATCH"))
  in
  Cmd.v (Cmd.info "testgen" ~doc:"Generate model-covering test packets (BUZZ-style).")
    Term.(const run $ cache_dir_arg $ nf_arg)

let run_cmd =
  let n = Arg.(value & opt int 100_000 & info [ "n" ] ~doc:"Packets to replay.") in
  let seed = Arg.(value & opt int 2016 & info [ "seed" ] ~doc:"Traffic seed.") in
  let capacity =
    Arg.(value & opt (some int) None & info [ "capacity" ] ~doc:"Per-flow-table capacity bound (LRU eviction). Unbounded by default.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Print engine counters as JSON.") in
  let check =
    Arg.(value & flag & info [ "check" ] ~doc:"Compare against a reference on the same traffic: the interpreter for a single engine, a single engine for a sharded run (outputs, final state, counters).")
  in
  let shards =
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc:"Drive the sharded multicore dataplane with N shard domains; 1 (default) runs the single-threaded engine.")
  in
  let churn =
    Arg.(value & opt (some int) None & info [ "churn" ] ~docv:"FLOWS" ~doc:"Replace uniform random traffic with the churn workload: a constant pool of FLOWS concurrent conversations with unbounded turnover.")
  in
  let run n seed capacity json check shards churn cache_dir arg =
    with_nf
      (fun name _ p ->
        if shards < 1 then begin
          Fmt.epr "error: --shards must be >= 1@.";
          exit 1
        end;
        let m = manager ?cache_dir () in
        let ex = Pipeline.Manager.extract m ~name p in
        let model = ex.Nfactor.Extract.model in
        let store = Nfactor.Model_interp.initial_store ex in
        let plan = Pipeline.Manager.plan m ex in
        let mpps secs = if secs > 0. then float_of_int n /. secs /. 1e6 else 0. in
        (* The same stream for the timed run and for --check: random by
           default, churn when asked. *)
        let stream () =
          match churn with
          | Some concurrent ->
              let ch = Packet.Traffic.churn_gen ~concurrent ~seed () in
              Array.init n (fun _ -> Packet.Traffic.churn_next ch)
          | None -> Array.of_list (Packet.Traffic.random_stream ~seed ~n ())
        in
        if shards = 1 then begin
          let eng = Nfactor_runtime.Engine.create ?capacity plan ~store in
          let secs =
            match churn with
            | Some concurrent ->
                let ch = Packet.Traffic.churn_gen ~concurrent ~seed () in
                Nfactor_runtime.Engine.replay_churn eng ~churn:ch ~n
            | None -> Nfactor_runtime.Engine.replay eng ~seed ~n
          in
          if json then print_endline (Nfactor_runtime.Engine.stats_json eng)
          else begin
            Fmt.pr "plan: %a@." Nfactor_runtime.Compile.pp_plan plan;
            Fmt.pr "%a@." Nfactor_runtime.Engine.pp_stats eng;
            Fmt.pr "%d packets in %.3f ms (%.2f Mpps)@." n (secs *. 1e3) (mpps secs)
          end;
          if check then begin
            if capacity <> None then begin
              Fmt.epr "error: --check requires an unbounded store (LRU eviction diverges from the reference interpreter by design)@.";
              exit 1
            end;
            let pkts = Array.to_list (stream ()) in
            let ref_store, ref_out = Nfactor.Model_interp.run model ~store ~pkts in
            let eng2 = Nfactor_runtime.Engine.create plan ~store in
            let outcomes = Nfactor_runtime.Engine.run_batch eng2 (Array.of_list pkts) in
            let out_ok =
              List.for_all2
                (fun ref_pkts (o : Nfactor_runtime.Engine.outcome) ->
                  List.length ref_pkts = List.length o.Nfactor_runtime.Engine.outputs
                  && List.for_all2 Packet.Pkt.equal ref_pkts o.Nfactor_runtime.Engine.outputs)
                ref_out (Array.to_list outcomes)
            in
            let store_ok =
              Nfactor.Model_interp.Smap.equal Symexec.Value.equal ref_store
                (Nfactor_runtime.Engine.snapshot eng2)
            in
            if out_ok && store_ok then
              Fmt.pr "check: engine == interpreter on %d packets (outputs and final state)@." n
            else begin
              Fmt.epr "check FAILED: outputs %s, final state %s@."
                (if out_ok then "agree" else "DIFFER")
                (if store_ok then "agrees" else "DIFFERS");
              exit 1
            end
          end
        end
        else begin
          let sh =
            Nfactor_runtime.Shard.create ?capacity ~nshards:shards model ~config:store
          in
          Fun.protect
            ~finally:(fun () -> Nfactor_runtime.Shard.shutdown sh)
            (fun () ->
              let secs =
                match churn with
                | Some concurrent ->
                    let ch = Packet.Traffic.churn_gen ~concurrent ~seed () in
                    Nfactor_runtime.Shard.replay_churn sh ~churn:ch ~n
                | None -> Nfactor_runtime.Shard.replay sh ~seed ~n
              in
              if json then print_endline (Nfactor_runtime.Shard.stats_json sh ~nf:name)
              else begin
                Fmt.pr "sharding: %a@." Nfactor_runtime.Shardplan.pp
                  (Nfactor_runtime.Shard.spec sh);
                Fmt.pr "%a@."
                  (Nfactor_runtime.Engine.pp_stats_of
                     ~evictions:(Nfactor_runtime.Shard.evictions sh))
                  (Nfactor_runtime.Shard.merged_stats sh);
                Fmt.pr "deferred %d packet(s) to the serial phase over %d batch(es)@."
                  (Nfactor_runtime.Shard.deferred sh)
                  (Nfactor_runtime.Shard.batches sh);
                Fmt.pr "%d packets in %.3f ms (%.2f Mpps, %d shards)@." n (secs *. 1e3)
                  (mpps secs) shards
              end;
              if check then begin
                if capacity <> None then begin
                  Fmt.epr "error: --check requires an unbounded store (eviction order differs across shard clocks by design)@.";
                  exit 1
                end;
                let pkts = stream () in
                let eng = Nfactor_runtime.Engine.create plan ~store in
                let expected = Nfactor_runtime.Engine.run_batch eng pkts in
                let sh2 =
                  Nfactor_runtime.Shard.create ~nshards:shards model ~config:store
                in
                Fun.protect
                  ~finally:(fun () -> Nfactor_runtime.Shard.shutdown sh2)
                  (fun () ->
                    let got = Nfactor_runtime.Shard.run_batch sh2 pkts in
                    let out_ok = ref true in
                    Array.iteri
                      (fun i (e : Nfactor_runtime.Engine.outcome) ->
                        let g = got.(i) in
                        if
                          e.Nfactor_runtime.Engine.fired
                            <> g.Nfactor_runtime.Engine.fired
                          || List.length e.Nfactor_runtime.Engine.outputs
                             <> List.length g.Nfactor_runtime.Engine.outputs
                          || not
                               (List.for_all2 Packet.Pkt.equal
                                  e.Nfactor_runtime.Engine.outputs
                                  g.Nfactor_runtime.Engine.outputs)
                        then out_ok := false)
                      expected;
                    let store_ok =
                      Nfactor.Model_interp.Smap.equal Symexec.Value.equal
                        (Nfactor_runtime.Engine.snapshot eng)
                        (Nfactor_runtime.Shard.snapshot sh2)
                    in
                    (* Same nf, same plan, unbounded stores: the JSON
                       rendering compares every counter at once. *)
                    let stats_ok =
                      Nfactor_runtime.Engine.stats_json_of ~nf:name ~plan ~evictions:0
                        (Nfactor_runtime.Shard.merged_stats sh2)
                      = Nfactor_runtime.Engine.stats_json eng
                    in
                    if !out_ok && store_ok && stats_ok then
                      Fmt.pr
                        "check: %d shards == single engine on %d packets (outputs, merged state, merged counters)@."
                        shards n
                    else begin
                      Fmt.epr "check FAILED: outputs %s, merged state %s, merged counters %s@."
                        (if !out_ok then "agree" else "DIFFER")
                        (if store_ok then "agrees" else "DIFFERS")
                        (if stats_ok then "agree" else "DIFFER");
                      exit 1
                    end)
              end)
        end)
      arg
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Compile the model into the runtime dataplane and replay seeded traffic through it, optionally sharded across domains.")
    Term.(const run $ n $ seed $ capacity $ json $ check $ shards $ churn $ cache_dir_arg $ nf_arg)

let fsm_cmd =
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of text.") in
  let run dot cache_dir arg =
    with_nf
      (fun name _ p ->
        let ex = Pipeline.Manager.extract (manager ?cache_dir ()) ~name p in
        let fsm = Nfactor.Fsm.of_extraction ex in
        if dot then print_string (Nfactor.Fsm.to_dot ~name fsm)
        else Fmt.pr "per-flow FSM for %s:@.%a" name Nfactor.Fsm.pp fsm)
      arg
  in
  Cmd.v (Cmd.info "fsm" ~doc:"Derive the per-flow finite state machine from the model.")
    Term.(const run $ dot $ cache_dir_arg $ nf_arg)

let export_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Write to FILE.")
  in
  let run out cache_dir arg =
    with_nf
      (fun name _ p ->
        let ex = Pipeline.Manager.extract (manager ?cache_dir ()) ~name p in
        let text = Nfactor.Model_io.to_string ex.Nfactor.Extract.model in
        match out with
        | None -> print_endline text
        | Some file ->
            let oc = open_out file in
            output_string oc text;
            output_char oc '\n';
            close_out oc;
            Fmt.pr "model written to %s@." file)
      arg
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Serialize the model to the interchange format (what a vendor ships an operator).")
    Term.(const run $ out $ cache_dir_arg $ nf_arg)

let import_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Model file.") in
  let run file =
    if not (Sys.file_exists file) then begin
      Fmt.epr "error: no such file %s@." file;
      exit 1
    end;
    let ic = open_in file in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Nfactor.Model_io.of_string (String.trim text) with
    | m -> Fmt.pr "%a" Nfactor.Model.pp m
    | exception Nfactor.Model_io.Parse_error msg ->
        Fmt.epr "error: %s@." msg;
        exit 1
  in
  Cmd.v (Cmd.info "import" ~doc:"Parse and display a serialized model.") Term.(const run $ file)

let classes_cmd =
  let nfs =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"NF..." ~doc:"Chain of NFs, in order.")
  in
  let run cache_dir names =
    (* One manager for the whole chain: an NF appearing twice is
       synthesized once. *)
    let m = manager ?cache_dir () in
    let nodes =
      List.map
        (fun n ->
          match load_nf n with
          | Ok (name, _, p) ->
              let ex = Pipeline.Manager.extract m ~name p in
              (name, ex.Nfactor.Extract.model, Nfactor.Model_interp.initial_store ex)
          | Error msg ->
              Fmt.epr "error: %s@." msg;
              exit 1)
        names
    in
    let classes = Verify.Symreach.classes nodes in
    Fmt.pr "%d end-to-end forwarding class(es) through [%a]:@.@." (List.length classes)
      Fmt.(list ~sep:(any " -> ") string)
      names;
    List.iteri
      (fun i c ->
        Fmt.pr "-- class %d --@.%a@." i Verify.Symreach.pp_cls c)
      classes
  in
  Cmd.v
    (Cmd.info "classes"
       ~doc:"Header-space style end-to-end forwarding classes of an NF chain.")
    Term.(const run $ cache_dir_arg $ nfs)

let compose_cmd =
  let nfs =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"NF..." ~doc:"NFs to order.")
  in
  let run cache_dir names =
    let m = manager ?cache_dir () in
    let models =
      List.map
        (fun n ->
          match load_nf n with
          | Ok (name, _, p) ->
              (name, (Pipeline.Manager.extract m ~name p).Nfactor.Extract.model)
          | Error msg ->
              Fmt.epr "error: %s@." msg;
              exit 1)
        names
    in
    Fmt.pr "orders ranked by model-derived interference:@.";
    List.iter
      (fun r -> Fmt.pr "  %a@." Verify.Chain.pp_ranking r)
      (Verify.Chain.rank_orders models)
  in
  Cmd.v
    (Cmd.info "compose" ~doc:"Rank service-chain orders by interference (PGA-style).")
    Term.(const run $ cache_dir_arg $ nfs)

(* ------------------------------------------------------------------ *)
(* chain — compiled service-chain dataplane + invariant verifier      *)
(* ------------------------------------------------------------------ *)

let chain_nodes ?cache_dir spec =
  let names =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if names = [] then begin
    Fmt.epr "error: empty chain (expected NF,NF,...)@.";
    exit 1
  end;
  let m = manager ?cache_dir () in
  List.map
    (fun n ->
      match load_nf n with
      | Ok (name, _, p) ->
          let ex = Pipeline.Manager.extract m ~name p in
          (name, ex.Nfactor.Extract.model, Nfactor.Model_interp.initial_store ex)
      | Error msg ->
          Fmt.epr "error: %s@." msg;
          exit 1)
    names

let chain_arg =
  let doc = "Service chain as comma-separated NFs in traversal order, e.g. firewall,nat,snort." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CHAIN" ~doc)

(* Differential check of a chain engine against the reference
   interpreter chain on a concrete stream: per-packet outputs and
   per-hop final stores. *)
let chain_check_interp nodes (eng : Nfactor_runtime.Chainengine.t) pkts =
  let ref_chain =
    Verify.Network.chain
      (List.map (fun (id, m, s) -> Verify.Network.node id m s) nodes)
  in
  let ref_results = Verify.Network.run ref_chain (Array.to_list pkts) in
  let outs = Nfactor_runtime.Chainengine.run_batch eng pkts in
  let out_ok =
    List.for_all2
      (fun (ref_pkts, _) got ->
        List.length ref_pkts = List.length got
        && List.for_all2 Packet.Pkt.equal ref_pkts got)
      ref_results (Array.to_list outs)
  in
  let store_ok =
    List.for_all2
      (fun (n : Verify.Network.node) (_, got) ->
        Nfactor.Model_interp.Smap.equal Symexec.Value.equal n.Verify.Network.store got)
      ref_chain.Verify.Network.nodes
      (Nfactor_runtime.Chainengine.snapshot_hops eng)
  in
  (out_ok, store_ok)

let chain_run_cmd =
  let n = Arg.(value & opt int 100_000 & info [ "n" ] ~doc:"Packets to replay.") in
  let seed = Arg.(value & opt int 2016 & info [ "seed" ] ~doc:"Traffic seed.") in
  let capacity =
    Arg.(value & opt (some int) None & info [ "capacity" ] ~doc:"Per-flow-table capacity bound (LRU eviction). Unbounded by default.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Print chain counters as JSON.") in
  let check =
    Arg.(value & flag & info [ "check" ] ~doc:"Differential check on the same traffic: the interpreter chain (Verify.Network.run) for a single engine, a single chain engine for a sharded run (outputs and per-hop final stores).")
  in
  let shards =
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc:"Run the chain across N shard domains, when the fused plan's shard spec allows it; 1 (default) runs the single-threaded chain engine.")
  in
  let churn =
    Arg.(value & opt (some int) None & info [ "churn" ] ~docv:"FLOWS" ~doc:"Replace uniform random traffic with the churn workload: FLOWS concurrent conversations with unbounded turnover.")
  in
  let run n seed capacity json check shards churn cache_dir spec =
    if shards < 1 then begin
      Fmt.epr "error: --shards must be >= 1@.";
      exit 1
    end;
    if check && capacity <> None then begin
      Fmt.epr "error: --check requires an unbounded store (LRU eviction diverges from the reference interpreter by design)@.";
      exit 1
    end;
    let nodes = chain_nodes ?cache_dir spec in
    let cp = Nfactor_runtime.Chainplan.link nodes in
    let mpps secs = if secs > 0. then float_of_int n /. secs /. 1e6 else 0. in
    let stream () =
      match churn with
      | Some concurrent ->
          let ch = Packet.Traffic.churn_gen ~concurrent ~seed () in
          Array.init n (fun _ -> Packet.Traffic.churn_next ch)
      | None -> Array.of_list (Packet.Traffic.random_stream ~seed ~n ())
    in
    if shards = 1 then begin
      let eng = Nfactor_runtime.Chainengine.create ?capacity cp in
      let secs =
        match churn with
        | Some concurrent ->
            let ch = Packet.Traffic.churn_gen ~concurrent ~seed () in
            Nfactor_runtime.Chainengine.replay_churn eng ~churn:ch ~n
        | None -> Nfactor_runtime.Chainengine.replay eng ~seed ~n
      in
      if json then print_endline (Nfactor_runtime.Chainengine.stats_json eng)
      else begin
        Fmt.pr "%a@." Nfactor_runtime.Chainplan.pp cp;
        Fmt.pr "%a@." Nfactor_runtime.Chainengine.pp_stats eng;
        Fmt.pr "%d packets in %.3f ms (%.2f Mpps)@." n (secs *. 1e3) (mpps secs)
      end;
      if check then begin
        let eng2 = Nfactor_runtime.Chainengine.create cp in
        let out_ok, store_ok = chain_check_interp nodes eng2 (stream ()) in
        if out_ok && store_ok then
          Fmt.pr "check: fused chain == interpreter chain on %d packets (outputs and per-hop final stores)@." n
        else begin
          Fmt.epr "check FAILED: outputs %s, stores %s@."
            (if out_ok then "ok" else "DIFFER")
            (if store_ok then "ok" else "DIFFER");
          exit 1
        end
      end
    end
    else begin
      match Nfactor_runtime.Chainengine.shard ?capacity cp ~nshards:shards with
      | Error e ->
          Fmt.epr "error: chain does not shard: %s@." e;
          exit 1
      | Ok sh ->
          let secs = Nfactor_runtime.Chainengine.shard_replay sh ~pkts:(stream ()) in
          if json then
            Printf.printf
              "{\"chain\": %S, \"nshards\": %d, \"injected\": %d, \"fused_walks\": %d, \"wall_ms\": %.3f}\n"
              spec shards
              (Nfactor_runtime.Chainengine.shard_injected sh)
              (Nfactor_runtime.Chainengine.shard_fused_walks sh)
              (secs *. 1e3)
          else
            Fmt.pr "%d packets in %.3f ms (%.2f Mpps, %d shards)@." n (secs *. 1e3)
              (mpps secs) shards;
          if check then begin
            match Nfactor_runtime.Chainengine.shard cp ~nshards:shards with
            | Error e ->
                Fmt.epr "error: %s@." e;
                exit 1
            | Ok sh2 ->
                let pkts = stream () in
                let eng = Nfactor_runtime.Chainengine.create cp in
                let single = Nfactor_runtime.Chainengine.run_batch eng pkts in
                let shard_outs = Nfactor_runtime.Chainengine.shard_run_batch sh2 pkts in
                let out_ok =
                  Array.for_all2
                    (fun a b ->
                      List.length a = List.length b
                      && List.for_all2 Packet.Pkt.equal a b)
                    single shard_outs
                in
                let store_ok =
                  List.for_all2
                    (fun (_, a) (_, b) ->
                      Nfactor.Model_interp.Smap.equal Symexec.Value.equal a b)
                    (Nfactor_runtime.Chainengine.snapshot_hops eng)
                    (Nfactor_runtime.Chainengine.shard_snapshot_hops sh2)
                in
                if out_ok && store_ok then
                  Fmt.pr "check: %d shards == single chain engine on %d packets (outputs and per-hop stores)@."
                    shards n
                else begin
                  Fmt.epr "check FAILED: outputs %s, stores %s@."
                    (if out_ok then "ok" else "DIFFER")
                    (if store_ok then "ok" else "DIFFER");
                  exit 1
                end
          end
    end
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Link the chain's compiled plans into one dataplane and replay seeded traffic through it.")
    Term.(const run $ n $ seed $ capacity $ json $ check $ shards $ churn $ cache_dir_arg $ chain_arg)

type chain_invariant =
  | Inv_never of Verify.Invariant.prop
  | Inv_drop of Verify.Invariant.prop * string * string
  | Inv_order of string

let parse_invariant s =
  let strip prefix =
    if String.starts_with ~prefix s then
      Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
    else None
  in
  match strip "never-reaches:" with
  | Some body -> (
      match Verify.Invariant.parse_prop body with
      | Ok p -> Ok (Inv_never p)
      | Error e -> Error e)
  | None -> (
      match strip "state-implies-drop:" with
      | Some body -> (
          match String.index_opt body '@' with
          | None -> Error "state-implies-drop needs PROP@FROM..TO"
          | Some i -> (
              let prop = String.sub body 0 i in
              let range = String.sub body (i + 1) (String.length body - i - 1) in
              match
                ( Verify.Invariant.parse_prop prop,
                  String.split_on_char '.' range |> List.filter (fun s -> s <> "") )
              with
              | Ok p, [ from_; to_ ] -> Ok (Inv_drop (p, from_, to_))
              | Error e, _ -> Error e
              | _, _ -> Error "state-implies-drop needs PROP@FROM..TO"))
      | None -> (
          match strip "order-equiv:" with
          | Some other -> Ok (Inv_order other)
          | None ->
              Error
                (Printf.sprintf
                   "unknown invariant %S (expected never-reaches:..., state-implies-drop:..., order-equiv:...)"
                   s)))

(* Does the counterexample reproduce through the *compiled* chain?
   [other] is the alternate order's nodes, for order-equiv. *)
let compiled_reproduces ?(other = []) inv nodes (o : Verify.Invariant.outcome) =
  match o.Verify.Invariant.counterexample with
  | None -> None
  | Some p ->
      let run ns pkt =
        Nfactor_runtime.Chainengine.step
          (Nfactor_runtime.Chainengine.create (Nfactor_runtime.Chainplan.link ns))
          pkt
      in
      Some
        (match inv with
        | Inv_never prop -> List.exists (Verify.Invariant.holds_on prop) (run nodes p)
        | Inv_drop (prop, from_, to_) ->
            let ids = List.map (fun (id, _, _) -> id) nodes in
            let pos name =
              match List.find_index (String.equal name) ids with
              | Some i -> i
              | None -> -1
            in
            let i = pos from_ and j = pos to_ in
            let sub = List.filteri (fun k _ -> k >= i && k <= j) nodes in
            Verify.Invariant.holds_on prop p && run sub p <> []
        | Inv_order _ ->
            let sort = List.sort Packet.Pkt.compare in
            not (List.equal Packet.Pkt.equal (sort (run nodes p)) (sort (run other p))))

let chain_verify_cmd =
  let invariant =
    Arg.(required & opt (some string) None
         & info [ "invariant" ] ~docv:"SPEC"
             ~doc:"Invariant to check: never-reaches:PROP, state-implies-drop:PROP@FROM..TO, or order-equiv:NF,NF,... (the alternate order). PROP is a conjunction field OP value [& ...] with OP one of = != < <= > >=.")
  in
  let expect =
    Arg.(value & opt (some (enum [ ("proven", `Proven); ("violated", `Violated) ])) None
         & info [ "expect" ] ~docv:"VERDICT"
             ~doc:"Exit non-zero unless the verdict is VERDICT (proven|violated); violated also requires the counterexample to reproduce through the compiled chain.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Print the outcome as JSON.") in
  let run invariant expect json cache_dir spec =
    let nodes = chain_nodes ?cache_dir spec in
    match parse_invariant invariant with
    | Error e ->
        Fmt.epr "error: %s@." e;
        exit 1
    | Ok inv ->
        let other =
          match inv with
          | Inv_order other -> chain_nodes ?cache_dir other
          | _ -> []
        in
        let o =
          match inv with
          | Inv_never prop -> Verify.Invariant.never_reaches nodes prop
          | Inv_drop (prop, from_, to_) ->
              Verify.Invariant.state_implies_drop nodes ~from_ ~to_ ~cls:prop
          | Inv_order _ -> Verify.Invariant.order_equiv nodes other
        in
        let repro = compiled_reproduces ~other inv nodes o in
        if json then
          Printf.printf "{\"chain\": %S, \"invariant\": %S, \"compiled_reproduces\": %s, \"outcome\": %s}\n"
            spec invariant
            (match repro with
            | Some true -> "true"
            | Some false -> "false"
            | None -> "null")
            (Verify.Invariant.json_of_outcome o)
        else begin
          Fmt.pr "%s | %s@." spec invariant;
          Fmt.pr "%a@." Verify.Invariant.pp_outcome o;
          match repro with
          | Some r -> Fmt.pr "compiled chain reproduces: %s@." (if r then "yes" else "NO")
          | None -> ()
        end;
        let status = o.Verify.Invariant.status in
        (match expect with
        | Some `Proven when status <> Verify.Invariant.Proven -> exit 1
        | Some `Violated
          when status <> Verify.Invariant.Violated || repro <> Some true ->
            exit 1
        | _ -> ())
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Check a named chain invariant symbolically; violations ship a concrete counterexample packet validated through the reference interpreter and replayed through the compiled chain.")
    Term.(const run $ invariant $ expect $ json $ cache_dir_arg $ chain_arg)

let chain_lint_cmd =
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Print findings as JSON.") in
  let run json cache_dir spec =
    let nodes = chain_nodes ?cache_dir spec in
    let findings =
      Analysis.Lint.chain_dead_writes (List.map (fun (n, m, _) -> (n, m)) nodes)
    in
    if json then
      Printf.printf "{\"chain\": %S, \"findings\": [%s]}\n" spec
        (String.concat ", " (List.map Analysis.Lint.finding_to_json findings))
    else if findings = [] then
      Fmt.pr "%s: no cross-hop dead writes@." spec
    else
      List.iter (fun f -> Fmt.pr "%a@." Analysis.Lint.pp_finding f) findings
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Cross-hop dead-store analysis: flag header rewrites that the immediate next hop \
          provably masks (never reads the field, and every forwarding entry re-binds it).")
    Term.(const run $ json $ cache_dir_arg $ chain_arg)

let chain_cmd =
  Cmd.group
    (Cmd.info "chain"
       ~doc:"Compiled service-chain dataplane (statically linked plans, hop fusion) and network-wide invariant verifier.")
    [ chain_run_cmd; chain_verify_cmd; chain_lint_cmd ]

(* ------------------------------------------------------------------ *)
(* lint / minimize — the static model analyzer                        *)
(* ------------------------------------------------------------------ *)

let lint_cmd =
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Print the report as JSON.") in
  let fix =
    Arg.(value & flag
         & info [ "fix" ]
             ~doc:"Run the minimizer first and lint the $(i,minimized) table — the report \
                   a deployment of the fixed model would see.")
  in
  let expect =
    Arg.(value & opt (some (enum [ ("clean", `Clean); ("dirty", `Dirty) ])) None
         & info [ "expect" ] ~docv:"VERDICT"
             ~doc:"Exit non-zero unless the report is VERDICT: clean (no errors or \
                   warnings) or dirty (at least one).")
  in
  let run json fix expect cache_dir =
    with_nf (fun name _src p ->
        let m = manager ?cache_dir () in
        let ex = Pipeline.Manager.extract m ~name p in
        let report =
          if fix then
            let _pre, outcome, post = Pipeline.Manager.analyze m ex in
            if not outcome.Analysis.Minimize.verified then begin
              Fmt.epr "error: minimizer differential gate failed for %s@." name;
              exit 1
            end;
            post
          else Analysis.Lint.run ex
        in
        if json then print_endline (Analysis.Lint.report_to_json report)
        else Fmt.pr "%a@." Analysis.Lint.pp_report report;
        match expect with
        | Some `Clean when not (Analysis.Lint.is_clean report) -> exit 1
        | Some `Dirty when Analysis.Lint.is_clean report -> exit 1
        | _ -> ())
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically lint the synthesized model: dead and shadowed entries, action \
          overlaps, unreachable FSM states, unwritable state guards and dead state \
          writes. Dead/Shadowed findings are emitted only when the implication lattice \
          proves them; witnesses are pre-validated against the interpreter.")
    Term.(const run $ json $ fix $ expect $ cache_dir_arg $ nf_arg)

let minimize_cmd =
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Print the outcome as JSON.") in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the minimized model (Model_io s-expression) to FILE.")
  in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Widen the differential gate to 10k random packets plus flow and churn \
                   workloads; exit non-zero if any rewrite fails to verify.")
  in
  let run json output check cache_dir =
    with_nf (fun name _src p ->
        let m = manager ?cache_dir () in
        let ex = Pipeline.Manager.extract m ~name p in
        let store = Nfactor.Model_interp.initial_store ex in
        let model = ex.Nfactor.Extract.model in
        let pkts =
          if check then
            let ch = Packet.Traffic.churn_gen ~concurrent:64 ~seed:4244 () in
            Verify.Testgen.base_palette
            @ Packet.Traffic.random_stream ~seed:4242 ~n:10_000 ()
            @ Packet.Traffic.flow_stream ~seed:4243 ~flows:200 ~data_pkts:5 ()
            @ List.init 2_000 (fun _ -> Packet.Traffic.churn_next ch)
          else Analysis.Minimize.default_pkts ()
        in
        let o = Analysis.Minimize.run ~pkts ~store model in
        let before = Nfactor.Model.entry_count o.Analysis.Minimize.original in
        let after = Nfactor.Model.entry_count o.Analysis.Minimize.minimized in
        if json then
          Printf.printf
            "{\"nf\": %S, \"entries_before\": %d, \"entries_after\": %d, \
             \"reduction_pct\": %.1f, \"deleted_dead\": %d, \"deleted_shadowed\": %d, \
             \"merged\": %d, \"widened_literals\": %d, \"iterations\": %d, \
             \"verified\": %s, \"trials\": %d}\n"
            name before after
            (100. *. Analysis.Minimize.reduction o)
            o.Analysis.Minimize.deleted_dead o.Analysis.Minimize.deleted_shadowed
            o.Analysis.Minimize.merged o.Analysis.Minimize.widened_literals
            o.Analysis.Minimize.iterations
            (if o.Analysis.Minimize.verified then "true" else "false")
            o.Analysis.Minimize.trials
        else begin
          Fmt.pr "%s: %d -> %d entries (%.1f%% reduction) in %d iteration(s)@." name
            before after
            (100. *. Analysis.Minimize.reduction o)
            o.Analysis.Minimize.iterations;
          Fmt.pr
            "  dead deleted: %d, shadowed deleted: %d, merged: %d, literals widened: %d@."
            o.Analysis.Minimize.deleted_dead o.Analysis.Minimize.deleted_shadowed
            o.Analysis.Minimize.merged o.Analysis.Minimize.widened_literals;
          Fmt.pr "  differential gate: %s (%d packets)@."
            (if o.Analysis.Minimize.verified then "exact" else "FAILED — original returned")
            o.Analysis.Minimize.trials
        end;
        (match output with
        | Some file ->
            let oc = open_out file in
            output_string oc (Nfactor.Model_io.to_string o.Analysis.Minimize.minimized);
            close_out oc;
            if not json then Fmt.pr "  minimized model written to %s@." file
        | None -> ());
        if check && not o.Analysis.Minimize.verified then exit 1)
  in
  Cmd.v
    (Cmd.info "minimize"
       ~doc:
         "Superoptimize the model's entry table: delete dead and shadowed entries, merge \
          adjacent same-action entries, widen matches. Every rewrite is proof-validated \
          and the result is gated by a store-exact differential replay; on any failure \
          the original model is returned unchanged.")
    Term.(const run $ json $ output $ check $ cache_dir_arg $ nf_arg)

let synth_all_cmd =
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the run as JSON (for CI gates).") in
  let stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Also run the analyzer pass per NF: lint severity counts, minimized \
                   entry counts and analyzer cache hits.")
  in
  let run json stats cache_dir =
    let m = manager ?cache_dir () in
    let t0 = Unix.gettimeofday () in
    let results =
      List.map
        (fun (e : Nfs.Corpus.entry) ->
          let name = e.Nfs.Corpus.name in
          let ex = Pipeline.Manager.extract_source m ~name (e.Nfs.Corpus.source ()) in
          let text = Nfactor.Model_io.to_string ex.Nfactor.Extract.model in
          let analysis = if stats then Some (Pipeline.Manager.analyze m ex) else None in
          (name, Digest.to_hex (Digest.string text), ex, analysis))
        Nfs.Corpus.all
    in
    let wall_s = Unix.gettimeofday () -. t0 in
    let traces = Pipeline.Manager.traces m in
    let misses = List.length (List.filter (fun t -> not (Pipeline.Trace.is_hit t)) traces) in
    if json then begin
      let nf_json =
        List.map
          (fun (name, digest, ex, analysis) ->
            let extra =
              match analysis with
              | None -> ""
              | Some (pre, (o : Analysis.Minimize.outcome), _post) ->
                  let e, w, i = Analysis.Lint.counts pre in
                  Printf.sprintf
                    ", \"lint\": { \"errors\": %d, \"warnings\": %d, \"infos\": %d }, \
                     \"min_entries\": %d, \"min_verified\": %s"
                    e w i
                    (Nfactor.Model.entry_count o.Analysis.Minimize.minimized)
                    (if o.Analysis.Minimize.verified then "true" else "false")
            in
            Printf.sprintf
              "    { \"name\": %S, \"model_md5\": %S, \"entries\": %d, \"paths\": %d%s }"
              name digest
              (List.length ex.Nfactor.Extract.model.Nfactor.Model.entries)
              ex.Nfactor.Extract.stats.Symexec.Explore.paths extra)
          results
      in
      let trace_json = List.map (fun t -> "    " ^ Pipeline.Trace.to_json t) traces in
      Printf.printf
        "{\n\
        \  \"cache_dir\": %s,\n\
        \  \"nfs\": [\n%s\n  ],\n\
        \  \"traces\": [\n%s\n  ],\n\
        \  \"passes\": %d,\n\
        \  \"misses\": %d,\n\
        \  \"hit_rate_pct\": %.1f,\n\
        \  \"wall_ms\": %.3f\n\
         }\n"
        (match Pipeline.Manager.cache_dir m with
        | Some d -> Printf.sprintf "%S" d
        | None -> "null")
        (String.concat ",\n" nf_json)
        (String.concat ",\n" trace_json)
        (List.length traces) misses
        (Pipeline.Trace.hit_rate traces)
        (wall_s *. 1e3)
    end
    else begin
      if stats then
        Fmt.pr "%-18s %-34s %7s %5s  %-11s %4s@." "NF" "MODEL-MD5" "ENTRIES" "PATHS"
          "LINT(E/W/I)" "MIN"
      else Fmt.pr "%-18s %-34s %7s %5s@." "NF" "MODEL-MD5" "ENTRIES" "PATHS";
      List.iter
        (fun (name, digest, ex, analysis) ->
          let entries = List.length ex.Nfactor.Extract.model.Nfactor.Model.entries in
          let paths = ex.Nfactor.Extract.stats.Symexec.Explore.paths in
          match analysis with
          | Some (pre, (o : Analysis.Minimize.outcome), _post) ->
              let e, w, i = Analysis.Lint.counts pre in
              Fmt.pr "%-18s %-34s %7d %5d  %3d/%d/%d     %4d@." name digest entries paths
                e w i
                (Nfactor.Model.entry_count o.Analysis.Minimize.minimized)
          | None -> Fmt.pr "%-18s %-34s %7d %5d@." name digest entries paths)
        results;
      pp_traces m;
      if stats then begin
        let analyze_traces =
          List.filter (fun t -> t.Pipeline.Trace.pass = "analyze") traces
        in
        let hits = List.length (List.filter Pipeline.Trace.is_hit analyze_traces) in
        Fmt.pr "@.analyzer: %d run(s), %d cache hit(s)@." (List.length analyze_traces) hits
      end;
      Fmt.pr "@.%d NF(s) synthesized in %.1fms (%d pass(es), %d recomputed)@."
        (List.length results) (wall_s *. 1e3) (List.length traces) misses
    end
  in
  Cmd.v
    (Cmd.info "synth-all"
       ~doc:
         "Synthesize the whole corpus through one pass manager, printing per-pass cache \
          traces and model digests. With --cache-dir, a second run replays every stage \
          from the cache.")
    Term.(const run $ json $ stats $ cache_dir_arg)

let main =
  let doc = "Automatic synthesis of NF forwarding models by program analysis (HotNets'16)." in
  Cmd.group (Cmd.info "nfactor" ~version:"1.0.0" ~doc)
    [
      list_cmd; show_cmd; classify_cmd; slice_cmd; extract_cmd; paths_cmd; report_cmd;
      accuracy_cmd; run_cmd; gen_trace_cmd; testgen_cmd; fsm_cmd; export_cmd; import_cmd;
      classes_cmd; compose_cmd; chain_cmd; lint_cmd; minimize_cmd; synth_all_cmd;
    ]

(* Batch-tool GC tuning: synthesis (solver terms, path envs) and cache
   replay (artifact decoding) are allocation-rate-bound, and the
   default 256k-word minor heap spends half the warm-path time in
   collections. A 4M-word nursery is the knee of the curve here. *)
let () = Gc.set { (Gc.get ()) with Gc.minor_heap_size = 4 * 1024 * 1024 }
let () = exit (Cmd.eval main)
