(** Model serving: ship an extracted model and run it fast.

    The paper's pitch is that a vendor synthesizes the model once and
    an operator consumes it without the source. This example walks that
    hand-off end to end: extract a model, export it to the interchange
    format, re-import it in a "fresh" process, compile it into the
    runtime dataplane and replay seeded traffic — checking along the
    way that the compiled engine's outputs and final state are
    identical to the reference interpreter's.

    Run with: [dune exec examples/model_serving.exe] *)

open Nfactor
open Nfactor_runtime

let section title = Fmt.pr "@.=== %s ===@.@." title

let () =
  section "1. Vendor side: synthesize and export the model";
  let ex = Pipeline.Manager.extract (Pipeline.Manager.create ()) ~name:"lb" (Nfs.Lb.program ()) in
  let wire = Model_io.to_string ex.Extract.model in
  Fmt.pr "%d entries serialized to %d bytes of interchange format@."
    (Model.entry_count ex.Extract.model)
    (String.length wire);

  section "2. Operator side: import the shipped model";
  let model = Model_io.of_string wire in
  Fmt.pr "re-imported %s: %d entries, pkt var %S@." model.Model.nf_name
    (Model.entry_count model) model.Model.pkt_var;

  (* The interchange format carries no store; the extraction-time
     initial values stand in for the operator's deployment config. *)
  let store = Model_interp.initial_store ex in

  section "3. Compile into the runtime dataplane";
  let plan = Compile.compile model ~config:store in
  Fmt.pr "%a@." Compile.pp_plan plan;

  section "4. Replay seeded traffic through the engine";
  let n = 20_000 in
  let eng = Engine.create plan ~store in
  let secs = Engine.replay eng ~seed:2016 ~n in
  Fmt.pr "%a@." Engine.pp_stats eng;
  Fmt.pr "%d packets in %.2f ms (%.2f Mpps)@." n (secs *. 1e3)
    (float_of_int n /. secs /. 1e6);

  section "5. Differential check against the reference interpreter";
  let pkts = Packet.Traffic.random_stream ~seed:2016 ~n () in
  let ref_store, ref_out = Model_interp.run model ~store ~pkts in
  let eng2 = Engine.create plan ~store in
  let outcomes = Engine.run_batch eng2 (Array.of_list pkts) in
  let out_ok =
    List.for_all2
      (fun ref_pkts (o : Engine.outcome) ->
        List.length ref_pkts = List.length o.Engine.outputs
        && List.for_all2 Packet.Pkt.equal ref_pkts o.Engine.outputs)
      ref_out (Array.to_list outcomes)
  in
  let store_ok =
    Model_interp.Smap.equal Symexec.Value.equal ref_store (Engine.snapshot eng2)
  in
  Fmt.pr "outputs identical: %b, final state identical: %b@." out_ok store_ok;
  if not (out_ok && store_ok) then exit 1;

  section "6. Bounded flow tables (LRU eviction)";
  let eng3 = Engine.create ~capacity:64 plan ~store in
  ignore (Engine.replay eng3 ~seed:2016 ~n);
  Fmt.pr "with 64-entry tables: %d eviction(s), table sizes bounded@."
    (Flowstate.evictions eng3.Engine.state)
