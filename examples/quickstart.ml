(** Quickstart: the paper's running example, end to end.

    Takes the Figure-1 load balancer source, walks every pipeline stage
    — structure normalization, StateAlyzer classification, packet/state
    slicing, symbolic path exploration, model synthesis — and finishes
    with the paper's accuracy experiment (1000 random packets through
    program and model).

    Run with: [dune exec examples/quickstart.exe] *)

open Nfactor

let section title = Fmt.pr "@.=== %s ===@.@." title

let () =
  section "1. The NF under analysis (Figure 1)";
  Fmt.pr "%d non-comment source lines; callback code structure@."
    (Nfs.Corpus.loc_of_source Nfs.Lb.source);

  let program = Nfs.Lb.program () in

  section "2. StateAlyzer classification (Table 1)";
  let canonical = Nfl.Transform.canonicalize program in
  let classes = Statealyzer.Varclass.analyze canonical in
  List.iter
    (fun (v, c) ->
      match c with
      | Statealyzer.Varclass.Local -> ()
      | _ -> Fmt.pr "%-12s %s@." v (Statealyzer.Varclass.category_to_string c))
    classes.Statealyzer.Varclass.categories;

  section "3. Packet + state slice";
  let mgr = Pipeline.Manager.create () in
  let ex = Pipeline.Manager.extract mgr ~name:"lb" program in
  Fmt.pr "%d of %d statements are in the slice union@."
    (List.length ex.Extract.union_slice)
    (Nfl.Ast.stmt_count ex.Extract.program);

  section "4. Execution paths of the slice";
  Fmt.pr "%d paths (forks: %d, solver calls: %d)@." ex.Extract.stats.Symexec.Explore.paths
    ex.Extract.stats.Symexec.Explore.forks ex.Extract.stats.Symexec.Explore.solver_calls;

  section "5. Synthesized forwarding model (Figure 6 format)";
  Fmt.pr "%a" Model.pp ex.Extract.model;

  section "6. Accuracy: 1000 random packets, program vs model";
  let v = Equiv.random_testing ~seed:2016 ~trials:1000 ex in
  if Equiv.ok v then Fmt.pr "all %d outputs identical — model is faithful@." v.Equiv.trials
  else begin
    Fmt.pr "%d mismatches!@." (List.length v.Equiv.mismatches);
    List.iter (Fmt.pr "%a" Equiv.pp_mismatch) v.Equiv.mismatches;
    exit 1
  end;

  section "7. Path-set equivalence";
  Fmt.pr "slice paths == model entries: %b@." (Equiv.paths_match ex)
