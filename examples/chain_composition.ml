(** Service-chain composition (paper Section 4).

    The paper's question: composing policies [{FW, IDS}] and [{LB}] —
    is the right order [{FW, IDS, LB}] or [{FW, LB, IDS}]? PGA answers
    with NF models; here the models come from NFactor instead of being
    written by hand.

    Run with: [dune exec examples/chain_composition.exe] *)

open Nfactor
open Verify

(* One pass manager for the whole example: the chain demo below
   re-extracts the same NFs, which the in-memory artifact table turns
   into cache hits. *)
let mgr = Pipeline.Manager.create ()

let extract name =
  let entry = Option.get (Nfs.Corpus.find name) in
  Pipeline.Manager.extract mgr ~name (entry.Nfs.Corpus.program ())

let model name = (extract name).Extract.model

let () =
  let fw = ("FW", model "firewall") in
  let ids = ("IDS", model "snort") in
  let lb = ("LB", model "lb") in

  Fmt.pr "Per-NF field footprints (from the extracted models):@.";
  List.iter
    (fun (name, m) ->
      Fmt.pr "  %-4s matches {%a}  modifies {%a}@." name
        Fmt.(list ~sep:(any ", ") string)
        (Model.matched_fields m)
        Fmt.(list ~sep:(any ", ") string)
        (Model.modified_fields m))
    [ fw; ids; lb ];

  Fmt.pr "@.Composing {FW, IDS} with {LB} — all valid interleavings, ranked:@.";
  let rankings = Chain.compose_chains [ fw; ids ] [ lb ] in
  List.iter (fun r -> Fmt.pr "  %a@." Chain.pp_ranking r) rankings;

  let best = List.hd rankings in
  Fmt.pr "@.Chosen order: %a@." Fmt.(list ~sep:(any " -> ") string) best.Chain.order;

  (* Demonstrate the interference the ranking avoids: behind the LB,
     the firewall sees rewritten addresses. *)
  Fmt.pr "@.Why LB-before-FW is wrong, concretely:@.";
  let mk_chain order =
    Network.chain
      (List.map (fun name -> Network.node_of_extraction name (extract name)) order)
  in
  let client =
    Packet.Pkt.make
      ~ip_src:(Packet.Addr.of_string "10.0.0.7")
      ~ip_dst:(Packet.Addr.of_string "3.3.3.3")
      ~sport:1234 ~dport:80 ()
  in
  List.iter
    (fun order ->
      let c = mk_chain order in
      let outs, trace = Network.push c client in
      Fmt.pr "  [%a]: %d packet(s) delivered (%a)@."
        Fmt.(list ~sep:(any " -> ") string)
        order (List.length outs) Network.pp_trace trace)
    [ [ "firewall"; "lb" ]; [ "lb"; "firewall" ] ]

(* New in PR 8: link the chosen order into one compiled chain
   dataplane and prove/refute invariants over it. *)
let () =
  let nodes =
    List.map
      (fun name -> (name, model name, Model_interp.initial_store (extract name)))
      [ "firewall"; "lb" ]
  in
  let plan = Nfactor_runtime.Chainplan.link nodes in
  Fmt.pr "@.Linked chain plan:@.  %a@." Nfactor_runtime.Chainplan.pp plan;
  let eng = Nfactor_runtime.Chainengine.create plan in
  let client =
    Packet.Pkt.make
      ~ip_src:(Packet.Addr.of_string "10.0.0.7")
      ~ip_dst:(Packet.Addr.of_string "3.3.3.3")
      ~sport:1234 ~dport:80 ()
  in
  let outs = Nfactor_runtime.Chainengine.step eng client in
  Fmt.pr "  compiled chain delivers %d packet(s)@." (List.length outs);

  let prop s =
    match Invariant.parse_prop s with Ok p -> p | Error e -> failwith e
  in
  let report label o =
    Fmt.pr "  %-28s %s@." label (Invariant.status_string o.Invariant.status)
  in
  Fmt.pr "@.Chain invariants:@.";
  (* An outside source to a closed port dies at the firewall, no
     matter what the LB rewrites downstream... *)
  report "outside -> closed port:"
    (Invariant.never_reaches nodes (prop "ip_src=8.8.8.8&dport=9999"));
  (* ...whereas web traffic is supposed to get through — refuted with
     a concrete counterexample packet. *)
  let o = Invariant.never_reaches nodes (prop "dport=80") in
  report "never-reaches dport=80:" o;
  Option.iter
    (fun cex -> Fmt.pr "    counterexample: %a@." Packet.Pkt.pp cex)
    o.Invariant.counterexample
