(** Symbolic (header-space style) reachability with state (paper
    Section 4: "each rule is modeled as a network transfer function
    T(h, p, s) ... with the extended transfer function, we can handle
    stateful verification").

    Instead of probing with concrete packets, this example pushes a
    fully symbolic header through model chains and prints the
    end-to-end forwarding classes — then shows the stateful twist: the
    same question answered under two different state snapshots.

    Run with: [dune exec examples/symbolic_reachability.exe] *)

open Nfactor
open Verify
open Symexec

let mgr = Pipeline.Manager.create ()

let extract name =
  let e = Option.get (Nfs.Corpus.find name) in
  Pipeline.Manager.extract mgr ~name (e.Nfs.Corpus.program ())

let node name =
  let ex = extract name in
  (name, ex.Extract.model, Model_interp.initial_store ex)

let () =
  Fmt.pr "=== Forwarding classes of the snort -> firewall chain ===@.@.";
  let classes = Symreach.classes [ node "snort"; node "firewall" ] in
  List.iteri (fun i c -> Fmt.pr "-- class %d --@.%a@." i Symreach.pp_cls c) classes;

  Fmt.pr "@.=== State-dependent reachability through the firewall ===@.@.";
  let ex = extract "firewall" in
  let m = ex.Extract.model in
  let empty = Model_interp.initial_store ex in
  let pinhole =
    Value.Tuple
      [
        Value.Int (Packet.Addr.of_string "192.168.1.5");
        Value.Int 7777;
        Value.Int (Packet.Addr.of_string "8.8.8.8");
        Value.Int 9999;
      ]
  in
  let with_pinhole =
    Model_interp.Smap.add "conn_table" (Value.Dict [ (pinhole, Value.Int 1) ]) empty
  in
  (* "Can 8.8.8.8:9999 reach 192.168.1.5:7777?" — a non-service port. *)
  let property (pkt : Symreach.sym_pkt) =
    [
      Solver.lit
        (Sexpr.mk_bin Nfl.Ast.Eq (List.assoc "ip_src" pkt)
           (Sexpr.int (Packet.Addr.of_string "8.8.8.8")))
        true;
      Solver.lit (Sexpr.mk_bin Nfl.Ast.Eq (List.assoc "sport" pkt) (Sexpr.int 9999)) true;
      Solver.lit
        (Sexpr.mk_bin Nfl.Ast.Eq (List.assoc "ip_dst" pkt)
           (Sexpr.int (Packet.Addr.of_string "192.168.1.5")))
        true;
      Solver.lit (Sexpr.mk_bin Nfl.Ast.Eq (List.assoc "dport" pkt) (Sexpr.int 7777)) true;
    ]
  in
  List.iter
    (fun (label, store) ->
      let witnesses = Symreach.reachable [ ("fw", m, store) ] ~property in
      Fmt.pr "%-28s : %s@." label
        (if witnesses = [] then "UNREACHABLE" else "reachable");
      List.iter (fun c -> Fmt.pr "%a" Symreach.pp_cls c) witnesses)
    [ ("before any outbound traffic", empty); ("after 192.168.1.5 opened a pinhole", with_pinhole) ];

  Fmt.pr "@.=== The LB's classes: destination rewrite made explicit ===@.@.";
  List.iteri
    (fun i c -> Fmt.pr "-- class %d --@.%a@." i Symreach.pp_cls c)
    (Symreach.classes [ node "lb" ])
