(** Stateful network verification (paper Section 4, "Network
    Verification", extended-transfer-function style).

    Builds a NAT -> firewall-protected pipeline from extracted models
    and checks stateful invariants that stateless header-space analysis
    cannot express:

    - unsolicited inbound traffic never reaches the inside;
    - the *same* probe succeeds once internal traffic opened state;
    - NAT translations are consistent end-to-end.

    Run with: [dune exec examples/verify_pipeline.exe] *)

open Nfactor
open Verify

let mgr = Pipeline.Manager.create ()

let extract name =
  let e = Option.get (Nfs.Corpus.find name) in
  Pipeline.Manager.extract mgr ~name (e.Nfs.Corpus.program ())

let pkt ?(flags = Packet.Headers.ack) ~src ~sport ~dst ~dport () =
  Packet.Pkt.make ~ip_src:(Packet.Addr.of_string src) ~ip_dst:(Packet.Addr.of_string dst) ~sport
    ~dport ~tcp_flags:flags ()

let () =
  Fmt.pr "=== Invariant 1: the firewall admits no unsolicited inbound ===@.";
  let fw = extract "firewall" in
  let chain1 = Network.chain [ Network.node_of_extraction "fw" fw ] in
  let probes =
    List.concat_map
      (fun dport ->
        List.map
          (fun src -> pkt ~src ~sport:9999 ~dst:"192.168.1.10" ~dport ())
          [ "8.8.8.8"; "1.2.3.4"; "5.5.5.5" ])
      [ 22; 23; 445; 3389; 8080 ]
  in
  let inside = Packet.Addr.of_string "192.168.0.0" in
  let leaks =
    Network.survey chain1 ~pkts:probes ~violates:(fun ~input:_ ~output ->
        Packet.Addr.in_prefix output.Packet.Pkt.ip_dst ~network:inside ~prefix:16)
  in
  Fmt.pr "%d probes, %d leak(s) — %s@." (List.length probes) (List.length leaks)
    (if leaks = [] then "invariant holds" else "INVARIANT VIOLATED");

  Fmt.pr "@.=== Invariant 2: pinholes are flow-specific ===@.";
  (* Open a pinhole from inside, then check only the exact reverse flow
     passes. *)
  let opener = pkt ~src:"192.168.1.10" ~sport:5555 ~dst:"8.8.8.8" ~dport:443 () in
  let _ = Network.push chain1 opener in
  let exact = pkt ~src:"8.8.8.8" ~sport:443 ~dst:"192.168.1.10" ~dport:5555 () in
  let other_port = pkt ~src:"8.8.8.8" ~sport:444 ~dst:"192.168.1.10" ~dport:5555 () in
  let other_host = pkt ~src:"9.9.9.9" ~sport:443 ~dst:"192.168.1.10" ~dport:5555 () in
  List.iter
    (fun (label, probe, expect) ->
      let outs, _ = Network.push chain1 probe in
      let passed = outs <> [] in
      Fmt.pr "  %-28s -> %s (expected %s)%s@." label
        (if passed then "pass" else "drop")
        (if expect then "pass" else "drop")
        (if passed = expect then "" else "  *** UNEXPECTED ***"))
    [ ("exact reverse flow", exact, true);
      ("same host, wrong port", other_port, false);
      ("wrong host", other_host, false) ];

  Fmt.pr "@.=== Invariant 3: NAT end-to-end translation consistency ===@.";
  let nat = extract "nat" in
  let chain2 = Network.chain [ Network.node_of_extraction "nat" nat ] in
  let egress = pkt ~src:"10.1.1.1" ~sport:7777 ~dst:"8.8.8.8" ~dport:53 () in
  let outs, _ = Network.push chain2 egress in
  (match outs with
  | [ translated ] ->
      Fmt.pr "  egress translated to %a@." Packet.Pkt.pp translated;
      (* The reply to the translated source must come back to the
         original host. *)
      let reply =
        Packet.Pkt.make ~ip_src:translated.Packet.Pkt.ip_dst
          ~ip_dst:translated.Packet.Pkt.ip_src ~sport:translated.Packet.Pkt.dport
          ~dport:translated.Packet.Pkt.sport ()
      in
      let back, _ = Network.push chain2 reply in
      (match back with
      | [ final ] ->
          let ok =
            Packet.Addr.to_string final.Packet.Pkt.ip_dst = "10.1.1.1"
            && final.Packet.Pkt.dport = 7777
          in
          Fmt.pr "  reply delivered to %a — %s@." Packet.Pkt.pp final
            (if ok then "consistent" else "INCONSISTENT")
      | _ -> Fmt.pr "  reply dropped — INCONSISTENT@.")
  | _ -> Fmt.pr "  egress dropped — INCONSISTENT@.");

  Fmt.pr "@.=== Bonus: the LB's two Figure-6 tables, side by side ===@.";
  let lb = extract "lb" in
  Fmt.pr "%a" Model.pp lb.Extract.model
