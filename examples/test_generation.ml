(** BUZZ-style model-driven test generation (paper Section 4,
    "Testing").

    For each stateful NF in the corpus: extract the model, generate a
    packet sequence that fires every reachable entry (stateful entries
    need earlier packets to install their state — the generator
    sequences that automatically), then replay the sequence against the
    original program as a compliance test.

    Run with: [dune exec examples/test_generation.exe] *)

open Nfactor
open Verify

let mgr = Pipeline.Manager.create ()

let () =
  List.iter
    (fun name ->
      let entry = Option.get (Nfs.Corpus.find name) in
      let ex = Pipeline.Manager.extract mgr ~name (entry.Nfs.Corpus.program ()) in
      Fmt.pr "@.== %s (%d model entries) ==@." name (Model.entry_count ex.Extract.model);
      let c = Testgen.cover ex in
      Fmt.pr "%a@." Testgen.pp_coverage c;
      List.iteri
        (fun i p ->
          let fired =
            match List.nth_opt c.Testgen.covered i with
            | Some e -> Printf.sprintf "fires entry %d" e
            | None -> ""
          in
          Fmt.pr "  #%d %a  %s@." i Packet.Pkt.pp p fired)
        c.Testgen.pkts;
      let v = Testgen.compliance ex c in
      if Equiv.ok v then Fmt.pr "compliance: program agrees on all %d packets@." v.Equiv.trials
      else begin
        Fmt.pr "compliance FAILED:@.";
        List.iter (Fmt.pr "%a" Equiv.pp_mismatch) v.Equiv.mismatches;
        exit 1
      end)
    [ "firewall"; "nat"; "lb"; "ratelimiter"; "balance" ]
