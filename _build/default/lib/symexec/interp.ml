(** Concrete interpreter for canonical (function-free) NFL programs.

    This is the ground truth both evaluation experiments compare
    against: the accuracy experiment runs random packets through the
    original program here and through the extracted model, and dynamic
    slicing consumes the execution traces recorded here.

    Packet I/O: [recv()] pops the next input packet and ends the run
    cleanly when the input is exhausted; [send(p)] appends to the
    output. Every executed statement id is appended to the trace. *)

module Smap = Map.Make (String)

exception Runtime_error of string * Nfl.Ast.pos

type outcome = Finished | Input_exhausted | Step_limit

type result = {
  outputs : Packet.Pkt.t list;  (** packets sent, in order *)
  per_input : Packet.Pkt.t list list;  (** outputs grouped by the input packet that caused them *)
  state : Value.t Smap.t;  (** final variable store (globals and locals) *)
  trace : int list;  (** executed statement ids, in order *)
  steps : int;
  outcome : outcome;
}

type state = {
  mutable env : Value.t Smap.t;
  mutable inputs : Packet.Pkt.t list;
  mutable outputs_rev : Packet.Pkt.t list;
  mutable current_burst_rev : Packet.Pkt.t list;  (** outputs since last recv *)
  mutable bursts_rev : Packet.Pkt.t list list;
  mutable trace_rev : int list;
  mutable steps : int;
  max_steps : int;
}

exception Stop of outcome

let fresh ~inputs ~max_steps =
  {
    env = Smap.empty;
    inputs;
    outputs_rev = [];
    current_burst_rev = [];
    bursts_rev = [];
    trace_rev = [];
    steps = 0;
    max_steps;
  }

let err pos fmt = Printf.ksprintf (fun m -> raise (Runtime_error (m, pos))) fmt

let tick st (s : Nfl.Ast.stmt) =
  st.trace_rev <- s.Nfl.Ast.sid :: st.trace_rev;
  st.steps <- st.steps + 1;
  if st.steps > st.max_steps then raise (Stop Step_limit)

let lookup st pos x =
  match Smap.find_opt x st.env with
  | Some v -> v
  | None -> err pos "unbound variable %s" x

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)
(* ------------------------------------------------------------------ *)

let rec eval st pos (e : Nfl.Ast.expr) : Value.t =
  match e with
  | Nfl.Ast.Int n -> Value.Int n
  | Nfl.Ast.Bool b -> Value.Bool b
  | Nfl.Ast.Str s -> Value.Str s
  | Nfl.Ast.Var x -> lookup st pos x
  | Nfl.Ast.Tuple es -> Value.Tuple (List.map (eval st pos) es)
  | Nfl.Ast.List_lit es -> Value.List (List.map (eval st pos) es)
  | Nfl.Ast.Dict_lit -> Value.dict_empty
  | Nfl.Ast.Binop (Nfl.Ast.And, a, b) ->
      (* short-circuit *)
      if Value.as_bool (eval st pos a) then Value.Bool (Value.as_bool (eval st pos b))
      else Value.Bool false
  | Nfl.Ast.Binop (Nfl.Ast.Or, a, b) ->
      if Value.as_bool (eval st pos a) then Value.Bool true
      else Value.Bool (Value.as_bool (eval st pos b))
  | Nfl.Ast.Binop (op, a, b) -> (
      let va = eval st pos a in
      let vb = eval st pos b in
      try Value.binop op va vb with Value.Type_error m -> err pos "%s" m)
  | Nfl.Ast.Unop (op, a) -> (
      try Value.unop op (eval st pos a) with Value.Type_error m -> err pos "%s" m)
  | Nfl.Ast.Index (c, k) -> (
      let vc = eval st pos c in
      let vk = eval st pos k in
      try Value.index vc vk with Value.Type_error m -> err pos "%s" m)
  | Nfl.Ast.Field (pe, f) -> (
      match eval st pos pe with
      | Value.Pkt p ->
          if Packet.Headers.is_int_field f then Value.Int (Packet.Pkt.get_int p f)
          else if Packet.Headers.is_str_field f then Value.Str (Packet.Pkt.get_str p f)
          else err pos "unknown packet field %s" f
      | v -> err pos "field access on %s" (Value.type_name v))
  | Nfl.Ast.Mem (k, d) -> (
      let vk = eval st pos k in
      let vd = eval st pos d in
      try Value.mem vk vd with Value.Type_error m -> err pos "%s" m)
  | Nfl.Ast.Call (f, args) -> eval_call st pos f args

and eval_call st pos f args =
  if f = Nfl.Builtins.pkt_input then begin
    if args <> [] then err pos "recv() takes no arguments";
    match st.inputs with
    | [] -> raise (Stop Input_exhausted)
    | p :: rest ->
        st.inputs <- rest;
        (* Close the burst attributed to the previous packet. *)
        st.bursts_rev <- List.rev st.current_burst_rev :: st.bursts_rev;
        st.current_burst_rev <- [];
        Value.Pkt p
  end
  else if Nfl.Builtins.is_pure f then
    let vs = List.map (eval st pos) args in
    try Value.apply_pure f vs with Value.Type_error m -> err pos "%s" m
  else err pos "call to %s not allowed in expression position" f

(* ------------------------------------------------------------------ *)
(* Statements                                                         *)
(* ------------------------------------------------------------------ *)

let rec exec_block st (block : Nfl.Ast.block) = List.iter (exec_stmt st) block

and exec_stmt st (s : Nfl.Ast.stmt) =
  let pos = s.Nfl.Ast.pos in
  tick st s;
  match s.Nfl.Ast.kind with
  | Nfl.Ast.Pass -> ()
  | Nfl.Ast.Assign (lv, e) -> (
      let v = eval st pos e in
      match lv with
      | Nfl.Ast.L_var x -> st.env <- Smap.add x v st.env
      | Nfl.Ast.L_index (d, ke) -> (
          let k = eval st pos ke in
          match lookup st pos d with
          | Value.Dict kvs -> st.env <- Smap.add d (Value.Dict (Value.dict_set kvs k v)) st.env
          | Value.List vs ->
              let i = Value.as_int k in
              if i < 0 || i >= List.length vs then err pos "list index out of range"
              else
                st.env <-
                  Smap.add d (Value.List (List.mapi (fun j x -> if j = i then v else x) vs)) st.env
          | w -> err pos "index assignment on %s" (Value.type_name w))
      | Nfl.Ast.L_field (pv, f) -> (
          match lookup st pos pv with
          | Value.Pkt p ->
              let p' =
                if Packet.Headers.is_int_field f then Packet.Pkt.set_int p f (Value.as_int v)
                else if Packet.Headers.is_str_field f then
                  Packet.Pkt.set_str p f (match v with Value.Str s -> s | _ -> err pos "payload must be a string")
                else err pos "unknown packet field %s" f
              in
              st.env <- Smap.add pv (Value.Pkt p') st.env
          | w -> err pos "field assignment on %s" (Value.type_name w)))
  | Nfl.Ast.If (c, b1, b2) ->
      if Value.as_bool (eval st pos c) then exec_block st b1 else exec_block st b2
  | Nfl.Ast.While (c, b) ->
      (* The header re-ticks on every re-test so traces reflect loop
         frequency; the step limit bounds runaway loops. *)
      let rec loop () =
        if Value.as_bool (eval st pos c) then begin
          exec_block st b;
          tick st s;
          loop ()
        end
      in
      loop ()
  | Nfl.Ast.For_in (x, e, b) -> (
      match eval st pos e with
      | Value.List vs | Value.Tuple vs ->
          List.iter
            (fun v ->
              st.env <- Smap.add x v st.env;
              exec_block st b)
            vs
      | v -> err pos "for-in over %s" (Value.type_name v))
  | Nfl.Ast.Return _ -> raise (Stop Finished)
  | Nfl.Ast.Delete (d, ke) -> (
      let k = eval st pos ke in
      match lookup st pos d with
      | Value.Dict kvs -> st.env <- Smap.add d (Value.Dict (Value.dict_remove kvs k)) st.env
      | w -> err pos "del on %s" (Value.type_name w))
  | Nfl.Ast.Expr (Nfl.Ast.Call (f, args)) ->
      if f = Nfl.Builtins.pkt_output then begin
        match List.map (eval st pos) args with
        | [ Value.Pkt p ] ->
            st.outputs_rev <- p :: st.outputs_rev;
            st.current_burst_rev <- p :: st.current_burst_rev
        | _ -> err pos "send() takes one packet"
      end
      else if f = Nfl.Builtins.pkt_drop then ()
      else if Nfl.Builtins.is_log_sink f then
        (* Evaluate arguments for effect-free faithfulness, discard. *)
        List.iter (fun a -> ignore (eval st pos a)) args
      else if Nfl.Builtins.is_pure f then List.iter (fun a -> ignore (eval st pos a)) args
      else err pos "cannot execute call to %s" f
  | Nfl.Ast.Expr e -> ignore (eval st pos e)

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)
(* ------------------------------------------------------------------ *)

let finish st outcome =
  (* Flush the last burst. *)
  st.bursts_rev <- List.rev st.current_burst_rev :: st.bursts_rev;
  let bursts = List.rev st.bursts_rev in
  (* The first burst predates any recv(); drop it (it is empty for
     canonical programs, which receive before sending). *)
  let per_input = match bursts with [] -> [] | _ :: rest -> rest in
  {
    outputs = List.rev st.outputs_rev;
    per_input;
    state = st.env;
    trace = List.rev st.trace_rev;
    steps = st.steps;
    outcome;
  }

(** Run a canonical program over an input packet list. The program must
    be function-free (apply {!Nfl.Transform.canonicalize} first). *)
let run ?(max_steps = 1_000_000) (p : Nfl.Ast.program) ~inputs =
  if p.Nfl.Ast.funcs <> [] then
    invalid_arg "Interp.run: program has functions; canonicalize first";
  let st = fresh ~inputs ~max_steps in
  match
    exec_block st p.Nfl.Ast.globals;
    exec_block st p.Nfl.Ast.main
  with
  | () -> finish st Finished
  | exception Stop o -> finish st o

(** Run only the globals, returning the initial persistent store. *)
let initial_state (p : Nfl.Ast.program) =
  let st = fresh ~inputs:[] ~max_steps:100_000 in
  exec_block st p.Nfl.Ast.globals;
  st.env

(** Execute one packet-loop iteration from an explicit store: used for
    lock-step differential testing against the model interpreter.
    Returns the sent packets and the updated store. *)
let step_loop_body ?(max_steps = 100_000) ~(body : Nfl.Ast.block) ~store ~pkt_var ~pkt () =
  let st = fresh ~inputs:[] ~max_steps in
  st.env <- Smap.add pkt_var (Value.Pkt pkt) store;
  let body_without_recv =
    List.filter (fun s -> not (Nfl.Builtins.is_pkt_input_stmt s)) body
  in
  match exec_block st body_without_recv with
  | () -> (List.rev st.outputs_rev, st.env, List.rev st.trace_rev)
  | exception Stop _ -> (List.rev st.outputs_rev, st.env, List.rev st.trace_rev)
