(** Path-condition feasibility checking.

    Decides the fragment NF programs generate: linear integer
    arithmetic (interval propagation + equality union-find),
    componentwise tuple (dis)equalities, bounded case-splitting over
    top-level disjunctions, and opaque atoms (dictionary membership,
    uninterpreted functions) as free booleans with per-path
    consistency. [Unsat] answers are trusted; anything
    not refuted is [Sat] — a sound over-approximation for path
    enumeration. *)

type literal = { atom : Sexpr.t; positive : bool }

val lit : Sexpr.t -> bool -> literal
(** Build a literal; negations fold into the polarity. *)

val pp_literal : Format.formatter -> literal -> unit

type verdict = Sat | Unsat

module Smap : Map.S with type key = string

val check : literal list -> verdict
(** Feasibility of the conjunction. *)

val concretize : ?default:int -> literal list -> Value.t Smap.t option
(** Best-effort satisfying assignment for the solver-constrained named
    symbols (fixed terms, bound endpoints, disequality-avoiding
    values). Symbols seen only inside opaque atoms are absent — callers
    supply those from domain candidate pools. [None] when refutable. *)
