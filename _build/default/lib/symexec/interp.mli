(** Concrete interpreter for canonical (function-free) NFL programs —
    the ground truth the accuracy experiments compare against, and the
    producer of the execution traces dynamic slicing consumes. *)

module Smap : Map.S with type key = string

exception Runtime_error of string * Nfl.Ast.pos

type outcome =
  | Finished  (** main returned or fell off the end *)
  | Input_exhausted  (** [recv()] found no more packets — the normal end *)
  | Step_limit  (** runaway loop stopped by the budget *)

type result = {
  outputs : Packet.Pkt.t list;  (** packets sent, in order *)
  per_input : Packet.Pkt.t list list;  (** outputs grouped by causing input *)
  state : Value.t Smap.t;  (** final variable store *)
  trace : int list;  (** executed statement ids, in order *)
  steps : int;
  outcome : outcome;
}

val run : ?max_steps:int -> Nfl.Ast.program -> inputs:Packet.Pkt.t list -> result
(** Run a canonical program over an input packet list.
    @raise Invalid_argument if the program still has functions
    (canonicalize first).
    @raise Runtime_error on dynamic errors, with source position. *)

val initial_state : Nfl.Ast.program -> Value.t Smap.t
(** Execute only the globals: the initial persistent store. *)

val step_loop_body :
  ?max_steps:int ->
  body:Nfl.Ast.block ->
  store:Value.t Smap.t ->
  pkt_var:string ->
  pkt:Packet.Pkt.t ->
  unit ->
  Packet.Pkt.t list * Value.t Smap.t * int list
(** One packet-loop iteration from an explicit store: [(sent packets,
    updated store, trace)]. Used for lock-step differential testing
    against the model interpreter. *)
