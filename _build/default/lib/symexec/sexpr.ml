(** Symbolic expressions.

    Terms over concrete {!Value.t} constants, named symbolic variables
    (packet fields, state at loop entry, configuration knobs),
    uninterpreted functions ([hash]), symbolic container reads and
    dictionary-membership atoms. Smart constructors constant-fold so
    that fully concrete programs symbolically evaluate to constants —
    that property is what the path/model equivalence tests rely on. *)

type t =
  | Const of Value.t
  | Sym of string  (** free symbolic variable, e.g. ["pkt.dport"], ["rr_idx"] *)
  | Bin of Nfl.Ast.binop * t * t
  | Not of t
  | Neg of t
  | Tup of t list
  | Lst of t list
  | Get of t * t  (** container read with symbolic index *)
  | Ufun of string * t list  (** uninterpreted function, e.g. [hash] *)
  | Mem of dict_state * t  (** membership atom: key in dictionary snapshot *)
  | Dget of dict_state * t  (** dictionary read against a snapshot *)

(** A symbolic dictionary: the unknown contents at loop entry ([base])
    plus the strong updates performed on this path, newest first.
    [Some v] is an insert, [None] a delete. *)
and dict_state = { base : string; writes : (t * t option) list }

let dict_base name = { base = name; writes = [] }

(** Base marking a dictionary known to start empty (created by [{}]
    on the current path): membership against it resolves to [false]
    instead of producing an atom. *)
let empty_base = "<empty>"

let dict_empty = { base = empty_base; writes = [] }

let equal (a : t) (b : t) = Stdlib.compare a b = 0
let compare (a : t) (b : t) = Stdlib.compare a b

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Sym s -> Fmt.string ppf s
  | Bin (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp a (Nfl.Pretty.binop_str op) pp b
  | Not a -> Fmt.pf ppf "!(%a)" pp a
  | Neg a -> Fmt.pf ppf "-(%a)" pp a
  | Tup es -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp) es
  | Lst es -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") pp) es
  | Get (c, i) -> Fmt.pf ppf "%a[%a]" pp c pp i
  | Ufun (f, args) -> Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(any ", ") pp) args
  | Mem (d, k) -> Fmt.pf ppf "%a in %a" pp k pp_dict d
  | Dget (d, k) -> Fmt.pf ppf "%a[%a]" pp_dict d pp k

and pp_dict ppf d =
  if d.writes = [] then Fmt.string ppf d.base
  else
    Fmt.pf ppf "%s{%a}" d.base
      Fmt.(
        list ~sep:(any "; ") (fun ppf (k, v) ->
            match v with
            | Some v -> Fmt.pf ppf "+%a:%a" pp k pp v
            | None -> Fmt.pf ppf "-%a" pp k))
      d.writes

let to_string e = Fmt.str "%a" pp e

let is_const = function Const _ -> true | _ -> false
let const_of = function Const v -> Some v | _ -> None

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                 *)
(* ------------------------------------------------------------------ *)

let tru = Const (Value.Bool true)
let fls = Const (Value.Bool false)
let int n = Const (Value.Int n)

(** Can two symbolic keys be proven different / equal syntactically? *)
let key_relation a b =
  if equal a b then `Equal
  else
    match (a, b) with
    | Const va, Const vb -> if Value.equal va vb then `Equal else `Distinct
    | Tup xs, Tup ys when List.length xs = List.length ys ->
        (* Tuples are distinct if any component is provably distinct,
           equal only if all components are syntactically equal. *)
        let rec go = function
          | [], [] -> `Equal
          | x :: xs, y :: ys -> (
              match (x, y) with
              | Const vx, Const vy when not (Value.equal vx vy) -> `Distinct
              | _ -> if equal x y then go (xs, ys) else `Unknown)
          | _ -> `Unknown
        in
        go (xs, ys)
    | _ -> `Unknown

let mk_not = function
  | Const (Value.Bool b) -> Const (Value.Bool (not b))
  | Not e -> e
  | e -> Not e

let mk_neg = function Const (Value.Int n) -> Const (Value.Int (-n)) | e -> Neg e

let mk_bin op a b =
  match (a, b, op) with
  | Const va, Const vb, _ -> (
      (* Fold; fall back to the symbolic node on type errors so the
         solver reports infeasibility instead of crashing. *)
      try Const (Value.binop op va vb) with Value.Type_error _ -> Bin (op, a, b))
  | _, _, Nfl.Ast.Eq when equal a b -> tru
  | _, _, Nfl.Ast.Ne when equal a b -> fls
  | _, _, Nfl.Ast.And ->
      if equal a tru then b
      else if equal b tru then a
      else if equal a fls || equal b fls then fls
      else Bin (op, a, b)
  | _, _, Nfl.Ast.Or ->
      if equal a fls then b
      else if equal b fls then a
      else if equal a tru || equal b tru then tru
      else Bin (op, a, b)
  | _, _, Nfl.Ast.Add when equal b (int 0) -> a
  | _, _, Nfl.Ast.Add when equal a (int 0) -> b
  | _, _, Nfl.Ast.Sub when equal b (int 0) -> a
  | _, _, Nfl.Ast.Mul when equal a (int 1) -> b
  | _, _, Nfl.Ast.Mul when equal b (int 1) -> a
  | _, _, (Nfl.Ast.Eq | Nfl.Ast.Ne) -> (
      (* Tuple comparisons may fold componentwise. *)
      match key_relation a b with
      | `Equal -> if op = Nfl.Ast.Eq then tru else fls
      | `Distinct -> if op = Nfl.Ast.Eq then fls else tru
      | `Unknown -> Bin (op, a, b))
  | _ -> Bin (op, a, b)

let mk_tuple es =
  match List.for_all is_const es with
  | true -> Const (Value.Tuple (List.filter_map const_of es))
  | false -> Tup es

let mk_list es =
  match List.for_all is_const es with
  | true -> Const (Value.List (List.filter_map const_of es))
  | false -> Lst es

(** Container read. Concrete index into a known-shape container
    resolves; otherwise the read stays symbolic. *)
let mk_get c i =
  match (c, i) with
  | Const cv, Const iv -> (
      try Const (Value.index cv iv) with Value.Type_error _ -> Get (c, i))
  | Tup es, Const (Value.Int n) when n >= 0 && n < List.length es -> List.nth es n
  | Lst es, Const (Value.Int n) when n >= 0 && n < List.length es -> List.nth es n
  | _ -> Get (c, i)

let mk_ufun f args =
  (* hash of a constant folds to the concrete hash so program and model
     agree on concrete runs. *)
  match (f, args) with
  | "hash", [ Const v ] -> Const (Value.Int (Value.hash_value v))
  | "len", [ Const v ] -> (
      try Const (Value.apply_pure "len" [ v ]) with Value.Type_error _ -> Ufun (f, args))
  | "len", [ Lst es ] -> int (List.length es)
  | "len", [ Tup es ] -> int (List.length es)
  | _ -> Ufun (f, args)

(** Membership test against a dictionary snapshot. Resolves through the
    write list when the key comparison is decidable; otherwise returns
    a [Mem] atom over the *remaining* snapshot. *)
let rec mk_mem (d : dict_state) k =
  match d.writes with
  | [] -> if d.base = empty_base then fls else Mem (d, k)
  | (wk, wv) :: rest -> (
      match key_relation k wk with
      | `Equal -> ( match wv with Some _ -> tru | None -> fls)
      | `Distinct -> mk_mem { d with writes = rest } k
      | `Unknown -> Mem (d, k))

(** Dictionary read against a snapshot, same resolution discipline. *)
let rec mk_dget (d : dict_state) k =
  match d.writes with
  | [] -> Dget (d, k)
  | (wk, wv) :: rest -> (
      match key_relation k wk with
      | `Equal -> ( match wv with Some v -> v | None -> Dget (d, k) (* read of deleted key *))
      | `Distinct -> mk_dget { d with writes = rest } k
      | `Unknown -> Dget (d, k))

(* ------------------------------------------------------------------ *)
(* Queries                                                            *)
(* ------------------------------------------------------------------ *)

module Sset = Set.Make (String)

(** Free symbolic variable names (including dictionary bases). *)
let rec syms = function
  | Const _ -> Sset.empty
  | Sym s -> Sset.singleton s
  | Bin (_, a, b) -> Sset.union (syms a) (syms b)
  | Not a | Neg a -> syms a
  | Tup es | Lst es | Ufun (_, es) -> List.fold_left (fun acc e -> Sset.union acc (syms e)) Sset.empty es
  | Get (a, b) -> Sset.union (syms a) (syms b)
  | Mem (d, k) | Dget (d, k) ->
      let ws =
        List.fold_left
          (fun acc (wk, wv) ->
            let acc = Sset.union acc (syms wk) in
            match wv with Some v -> Sset.union acc (syms v) | None -> acc)
          Sset.empty d.writes
      in
      Sset.add d.base (Sset.union ws (syms k))

(** Substitute free symbolic variables via [f] (used to concretize a
    path condition into test packets, and by the model interpreter). *)
let rec subst f = function
  | Const _ as e -> e
  | Sym s as e -> ( match f s with Some v -> Const v | None -> e)
  | Bin (op, a, b) -> mk_bin op (subst f a) (subst f b)
  | Not a -> mk_not (subst f a)
  | Neg a -> mk_neg (subst f a)
  | Tup es -> mk_tuple (List.map (subst f) es)
  | Lst es -> mk_list (List.map (subst f) es)
  | Get (a, b) -> mk_get (subst f a) (subst f b)
  | Ufun (g, es) -> mk_ufun g (List.map (subst f) es)
  | Mem (d, k) -> mk_mem (subst_dict f d) (subst f k)
  | Dget (d, k) -> mk_dget (subst_dict f d) (subst f k)

and subst_dict f d =
  {
    d with
    writes = List.map (fun (k, v) -> (subst f k, Option.map (subst f) v)) d.writes;
  }

(** Symbol-for-expression substitution (used by header-space style
    reachability to thread a packet's field expressions through
    downstream match predicates). *)
let rec subst_sym f = function
  | Const _ as e -> e
  | Sym s as e -> ( match f s with Some e' -> e' | None -> e)
  | Bin (op, a, b) -> mk_bin op (subst_sym f a) (subst_sym f b)
  | Not a -> mk_not (subst_sym f a)
  | Neg a -> mk_neg (subst_sym f a)
  | Tup es -> mk_tuple (List.map (subst_sym f) es)
  | Lst es -> mk_list (List.map (subst_sym f) es)
  | Get (a, b) -> mk_get (subst_sym f a) (subst_sym f b)
  | Ufun (g, es) -> mk_ufun g (List.map (subst_sym f) es)
  | Mem (d, k) -> mk_mem (subst_sym_dict f d) (subst_sym f k)
  | Dget (d, k) -> mk_dget (subst_sym_dict f d) (subst_sym f k)

and subst_sym_dict f d =
  {
    d with
    writes = List.map (fun (k, v) -> (subst_sym f k, Option.map (subst_sym f) v)) d.writes;
  }
