(** Concrete runtime values of NFL.

    Dictionaries are association lists kept sorted by key, so
    structural equality of values is semantic equality of dictionaries
    — which differential testing relies on when comparing NF states. *)

type t =
  | Int of int
  | Bool of bool
  | Str of string
  | Tuple of t list
  | List of t list
  | Dict of (t * t) list  (** invariant: sorted by key, keys distinct *)
  | Pkt of Packet.Pkt.t

exception Type_error of string

val type_name : t -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool

val as_int : t -> int
(** @raise Type_error when not an [Int]. *)

val as_bool : t -> bool
(** Booleans, with ints truthy when non-zero.
    @raise Type_error otherwise. *)

val as_pkt : t -> Packet.Pkt.t
(** @raise Type_error when not a [Pkt]. *)

(** {1 Dictionaries} *)

val dict_empty : t
val dict_mem : (t * t) list -> t -> bool
val dict_get : (t * t) list -> t -> t option

val dict_set : (t * t) list -> t -> t -> (t * t) list
(** Strong update preserving the sorted-unique invariant. *)

val dict_remove : (t * t) list -> t -> (t * t) list

(** {1 Operators and builtins} *)

val binop : Nfl.Ast.binop -> t -> t -> t
(** Evaluate a binary operator on values.
    @raise Type_error on type mismatches and division/modulo by
    zero. *)

val unop : Nfl.Ast.unop -> t -> t

val hash_value : t -> int
(** Deterministic, non-negative hash of a value (FNV-1a over the
    canonical rendering) — the semantics of NFL's [hash] builtin. *)

val str_contains : sub:string -> string -> bool

val apply_pure : string -> t list -> t
(** Apply a builtin from {!Nfl.Builtins.pure}.
    @raise Type_error on bad arguments. *)

(** {1 Indexing and membership} *)

val index : t -> t -> t
(** Dictionary lookup / list / tuple indexing.
    @raise Type_error on missing keys, out-of-range indices, or
    non-indexable containers. *)

val mem : t -> t -> t
(** [mem key container] is [Bool _]; containers are dicts (key
    membership), lists and tuples (element membership). *)
