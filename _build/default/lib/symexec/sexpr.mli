(** Symbolic expressions: terms over concrete constants, named
    symbolic variables, uninterpreted functions, symbolic container
    reads and dictionary-membership atoms. Smart constructors
    constant-fold, so fully concrete programs symbolically evaluate to
    constants. *)

type t =
  | Const of Value.t
  | Sym of string  (** free symbolic variable, e.g. ["pkt.dport"] *)
  | Bin of Nfl.Ast.binop * t * t
  | Not of t
  | Neg of t
  | Tup of t list
  | Lst of t list
  | Get of t * t  (** container read with symbolic index *)
  | Ufun of string * t list  (** uninterpreted function, e.g. [hash] *)
  | Mem of dict_state * t  (** membership atom against a snapshot *)
  | Dget of dict_state * t  (** dictionary read against a snapshot *)

(** A symbolic dictionary: unknown contents at loop entry ([base])
    plus this path's strong updates, newest first ([Some v] insert,
    [None] delete). *)
and dict_state = { base : string; writes : (t * t option) list }

val dict_base : string -> dict_state

val empty_base : string
(** Base marking a dictionary known to start empty: membership against
    it resolves to [false] instead of producing an atom. *)

val dict_empty : dict_state

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val pp_dict : Format.formatter -> dict_state -> unit
val to_string : t -> string
val is_const : t -> bool
val const_of : t -> Value.t option

(** {1 Smart constructors} *)

val tru : t
val fls : t
val int : int -> t

val key_relation : t -> t -> [ `Equal | `Distinct | `Unknown ]
(** Syntactic decidability of key equality (used to resolve reads
    through dictionary write lists). *)

val mk_not : t -> t
val mk_neg : t -> t
val mk_bin : Nfl.Ast.binop -> t -> t -> t
val mk_tuple : t list -> t
val mk_list : t list -> t

val mk_get : t -> t -> t
(** Concrete index into a known-shape container resolves; otherwise
    the read stays symbolic. *)

val mk_ufun : string -> t list -> t
(** [hash]/[len] of constants fold. *)

val mk_mem : dict_state -> t -> t
(** Membership resolved through the write list where key comparisons
    are decidable; bottoms out in an atom (or [false] on
    {!empty_base}). *)

val mk_dget : dict_state -> t -> t

(** {1 Queries} *)

module Sset : Set.S with type elt = string

val syms : t -> Sset.t
(** Free symbolic names, dictionary bases included. *)

val subst : (string -> Value.t option) -> t -> t
(** Substitute named symbols by values and re-simplify. *)

val subst_dict : (string -> Value.t option) -> dict_state -> dict_state

val subst_sym : (string -> t option) -> t -> t
(** Substitute named symbols by expressions and re-simplify (used to
    thread packet field expressions through downstream predicates). *)

val subst_sym_dict : (string -> t option) -> dict_state -> dict_state
