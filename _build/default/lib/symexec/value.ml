(** Concrete runtime values of NFL.

    Dictionaries are kept as association lists sorted by key (canonical
    form), so structural equality of values is semantic equality of
    dictionaries — which the differential-testing experiment relies on
    when comparing final NF states. *)

type t =
  | Int of int
  | Bool of bool
  | Str of string
  | Tuple of t list
  | List of t list
  | Dict of (t * t) list  (** sorted by key *)
  | Pkt of Packet.Pkt.t

exception Type_error of string

let type_name = function
  | Int _ -> "int"
  | Bool _ -> "bool"
  | Str _ -> "string"
  | Tuple _ -> "tuple"
  | List _ -> "list"
  | Dict _ -> "dict"
  | Pkt _ -> "packet"

let rec pp ppf = function
  | Int n -> Fmt.int ppf n
  | Bool b -> Fmt.bool ppf b
  | Str s -> Fmt.pf ppf "%S" s
  | Tuple vs -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp) vs
  | List vs -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") pp) vs
  | Dict kvs ->
      Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") (pair ~sep:(any ": ") pp pp)) kvs
  | Pkt p -> Fmt.pf ppf "<%a>" Packet.Pkt.pp p

let to_string v = Fmt.str "%a" pp v

let compare (a : t) (b : t) = Stdlib.compare a b
let equal (a : t) (b : t) = Stdlib.compare a b = 0

let as_int = function Int n -> n | v -> raise (Type_error ("expected int, got " ^ type_name v))
let as_bool = function
  | Bool b -> b
  | Int n -> n <> 0
  | v -> raise (Type_error ("expected bool, got " ^ type_name v))

let as_pkt = function Pkt p -> p | v -> raise (Type_error ("expected packet, got " ^ type_name v))

(* ------------------------------------------------------------------ *)
(* Dictionaries                                                       *)
(* ------------------------------------------------------------------ *)

let dict_empty = Dict []

let dict_mem kvs k = List.exists (fun (k', _) -> equal k k') kvs

let dict_get kvs k =
  match List.find_opt (fun (k', _) -> equal k k') kvs with
  | Some (_, v) -> Some v
  | None -> None

let dict_set kvs k v =
  let rest = List.filter (fun (k', _) -> not (equal k k')) kvs in
  List.sort (fun (a, _) (b, _) -> compare a b) ((k, v) :: rest)

let dict_remove kvs k = List.filter (fun (k', _) -> not (equal k k')) kvs

(* ------------------------------------------------------------------ *)
(* Operators                                                          *)
(* ------------------------------------------------------------------ *)

let int_binop name f a b =
  match (a, b) with
  | Int x, Int y -> Int (f x y)
  | _ -> raise (Type_error (Printf.sprintf "%s: int expected (%s, %s)" name (type_name a) (type_name b)))

let cmp_binop name f a b =
  match (a, b) with
  | Int x, Int y -> Bool (f (Stdlib.compare x y) 0)
  | Str x, Str y -> Bool (f (Stdlib.compare x y) 0)
  | _ -> raise (Type_error (Printf.sprintf "%s: comparable expected (%s, %s)" name (type_name a) (type_name b)))

(** Evaluate a binary operator. [And]/[Or] are also handled here for
    already-evaluated operands; the interpreter short-circuits before
    calling when it can. Division and modulo by zero raise
    {!Type_error} — NF code treats that as a crash, which the analyses
    surface rather than hide. *)
let binop (op : Nfl.Ast.binop) a b =
  match op with
  | Nfl.Ast.Add -> (
      match (a, b) with
      | Str x, Str y -> Str (x ^ y)
      | _ -> int_binop "+" ( + ) a b)
  | Nfl.Ast.Sub -> int_binop "-" ( - ) a b
  | Nfl.Ast.Mul -> int_binop "*" ( * ) a b
  | Nfl.Ast.Div ->
      if as_int b = 0 then raise (Type_error "division by zero") else int_binop "/" ( / ) a b
  | Nfl.Ast.Mod ->
      if as_int b = 0 then raise (Type_error "modulo by zero") else int_binop "%" ( mod ) a b
  | Nfl.Ast.Eq -> Bool (equal a b)
  | Nfl.Ast.Ne -> Bool (not (equal a b))
  | Nfl.Ast.Lt -> cmp_binop "<" ( < ) a b
  | Nfl.Ast.Le -> cmp_binop "<=" ( <= ) a b
  | Nfl.Ast.Gt -> cmp_binop ">" ( > ) a b
  | Nfl.Ast.Ge -> cmp_binop ">=" ( >= ) a b
  | Nfl.Ast.And -> Bool (as_bool a && as_bool b)
  | Nfl.Ast.Or -> Bool (as_bool a || as_bool b)
  | Nfl.Ast.Band -> int_binop "&" ( land ) a b
  | Nfl.Ast.Bor -> int_binop "|" ( lor ) a b
  | Nfl.Ast.Shl -> int_binop "<<" ( lsl ) a b
  | Nfl.Ast.Shr -> int_binop ">>" ( lsr ) a b

let unop (op : Nfl.Ast.unop) a =
  match op with
  | Nfl.Ast.Not -> Bool (not (as_bool a))
  | Nfl.Ast.Neg -> Int (-as_int a)

(* ------------------------------------------------------------------ *)
(* Pure builtins                                                      *)
(* ------------------------------------------------------------------ *)

(* Deterministic FNV-1a over the canonical rendering: [hash] must be a
   pure function of the value so program and model agree. *)
let hash_value v =
  let s = to_string v in
  (* FNV-1a offset basis truncated to OCaml's 63-bit int range. *)
  let h = ref 0x3bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3 land max_int)
    s;
  !h land 0x3FFFFFFF

let str_contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(** Apply a pure builtin from {!Nfl.Builtins.pure}. *)
let apply_pure name args =
  match (name, args) with
  | "hash", [ v ] -> Int (hash_value v)
  | "len", [ List vs ] -> Int (List.length vs)
  | "len", [ Tuple vs ] -> Int (List.length vs)
  | "len", [ Dict kvs ] -> Int (List.length kvs)
  | "len", [ Str s ] -> Int (String.length s)
  | "min", [ Int a; Int b ] -> Int (min a b)
  | "max", [ Int a; Int b ] -> Int (max a b)
  | "abs", [ Int a ] -> Int (abs a)
  | "tuple_get", [ Tuple vs; Int i ] when i >= 0 && i < List.length vs -> List.nth vs i
  | "str_contains", [ Str s; Str sub ] -> Bool (str_contains ~sub s)
  | "str_prefix", [ Str s; Str p ] ->
      Bool (String.length p <= String.length s && String.sub s 0 (String.length p) = p)
  | _ ->
      raise
        (Type_error
           (Printf.sprintf "builtin %s: bad arguments (%s)" name
              (String.concat ", " (List.map type_name args))))

(* ------------------------------------------------------------------ *)
(* Indexing                                                           *)
(* ------------------------------------------------------------------ *)

let index container key =
  match (container, key) with
  | Dict kvs, k -> (
      match dict_get kvs k with
      | Some v -> v
      | None -> raise (Type_error ("key not in dict: " ^ to_string k)))
  | List vs, Int i when i >= 0 && i < List.length vs -> List.nth vs i
  | Tuple vs, Int i when i >= 0 && i < List.length vs -> List.nth vs i
  | (List _ | Tuple _), Int i -> raise (Type_error ("index out of range: " ^ string_of_int i))
  | c, _ -> raise (Type_error ("not indexable: " ^ type_name c))

let mem key container =
  match container with
  | Dict kvs -> Bool (dict_mem kvs key)
  | List vs -> Bool (List.exists (equal key) vs)
  | Tuple vs -> Bool (List.exists (equal key) vs)
  | c -> raise (Type_error ("membership on " ^ type_name c))
