lib/symexec/value.mli: Format Nfl Packet
