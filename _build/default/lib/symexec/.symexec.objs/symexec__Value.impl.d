lib/symexec/value.ml: Char Fmt List Nfl Packet Printf Stdlib String
