lib/symexec/solver.ml: Fmt List Map Nfl Option Sexpr String Value
