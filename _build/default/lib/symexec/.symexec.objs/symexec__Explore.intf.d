lib/symexec/explore.mli: Format Map Nfl Sexpr Solver Value
