lib/symexec/interp.mli: Map Nfl Packet Value
