lib/symexec/explore.ml: Fmt Int List Map Nfl Option Packet Sexpr Solver String Value
