lib/symexec/interp.ml: List Map Nfl Packet Printf String Value
