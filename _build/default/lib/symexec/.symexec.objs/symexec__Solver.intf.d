lib/symexec/solver.mli: Format Map Sexpr Value
