lib/symexec/sexpr.ml: Fmt List Nfl Option Set Stdlib String Value
