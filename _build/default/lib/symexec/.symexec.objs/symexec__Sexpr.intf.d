lib/symexec/sexpr.mli: Format Nfl Set Value
