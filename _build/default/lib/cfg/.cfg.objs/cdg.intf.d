lib/cfg/cdg.mli: Cfg Format
