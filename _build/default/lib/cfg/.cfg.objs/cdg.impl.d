lib/cfg/cdg.ml: Cfg Dominance Fmt List Option
