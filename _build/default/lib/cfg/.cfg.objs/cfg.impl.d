lib/cfg/cfg.ml: Fmt List Map Nfl Set
