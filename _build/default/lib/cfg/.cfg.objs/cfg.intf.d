lib/cfg/cfg.mli: Format Map Nfl Set
