lib/cfg/dominance.ml: Cfg List
