(** Statement-level control-flow graph over NFL blocks.

    Nodes are statement ids plus virtual [Entry]/[Exit] nodes. Branch
    statements ([if]/[while]/[for]) are their own nodes, with labelled
    true/false out-edges; loop back-edges go to the branch node.

    Conditions are never constant-folded: a [while (true)] still has a
    false edge to its continuation, so [Exit] stays reachable and
    post-dominance is well defined even for the canonical infinite
    packet loop. A pseudo edge [Entry -> Exit] is added, per Ferrante et
    al., so that top-level statements come out control-dependent on
    [Entry]. *)

type node = Entry | Exit | Stmt of int

let node_compare (a : node) (b : node) =
  let rank = function Entry -> -2 | Exit -> -1 | Stmt i -> i in
  compare (rank a) (rank b)

let node_equal a b = node_compare a b = 0

let node_to_string = function
  | Entry -> "entry"
  | Exit -> "exit"
  | Stmt i -> "s" ^ string_of_int i

let pp_node ppf n = Fmt.string ppf (node_to_string n)

module Nmap = Map.Make (struct
  type t = node

  let compare = node_compare
end)

module Nset = Set.Make (struct
  type t = node

  let compare = node_compare
end)

(** Edge labels distinguish branch outcomes. *)
type label = Seq | True | False

type t = {
  succs : (node * label) list Nmap.t;
  preds : (node * label) list Nmap.t;
  stmts : Nfl.Ast.stmt Nmap.t;  (** node -> statement (branch or simple) *)
  nodes : node list;  (** all nodes, [Entry] and [Exit] included *)
}

let succs g n = try Nmap.find n g.succs with Not_found -> []
let preds g n = try Nmap.find n g.preds with Not_found -> []
let succ_nodes g n = List.map fst (succs g n)
let pred_nodes g n = List.map fst (preds g n)
let stmt_of g n = Nmap.find_opt n g.stmts
let nodes g = g.nodes

(** Number of real (statement) nodes. *)
let size g = List.length g.nodes - 2

(* Builder with mutable adjacency, sealed into the immutable record. *)
type builder = {
  mutable b_succs : (node * label) list Nmap.t;
  mutable b_preds : (node * label) list Nmap.t;
  mutable b_stmts : Nfl.Ast.stmt Nmap.t;
  mutable b_nodes : Nset.t;
}

let add_node b n = b.b_nodes <- Nset.add n b.b_nodes

let add_edge b src lbl dst =
  add_node b src;
  add_node b dst;
  let push key v m =
    Nmap.update key
      (function
        | None -> Some [ v ]
        | Some l -> if List.mem v l then Some l else Some (v :: l))
      m
  in
  b.b_succs <- push src (dst, lbl) b.b_succs;
  b.b_preds <- push dst (src, lbl) b.b_preds

(** Build the CFG of a statement block (typically a whole [main] or a
    packet-loop body). *)
let of_block (block : Nfl.Ast.block) =
  let b =
    { b_succs = Nmap.empty; b_preds = Nmap.empty; b_stmts = Nmap.empty; b_nodes = Nset.empty }
  in
  add_node b Entry;
  add_node b Exit;
  (* [stmts ins block] wires [block] after the dangling edges [ins] and
     returns the new dangling edges. *)
  let rec stmts ins block =
    List.fold_left (fun ins s -> stmt ins s) ins block
  and stmt ins (s : Nfl.Ast.stmt) =
    let n = Stmt s.Nfl.Ast.sid in
    b.b_stmts <- Nmap.add n s b.b_stmts;
    List.iter (fun (src, lbl) -> add_edge b src lbl n) ins;
    add_node b n;
    match s.Nfl.Ast.kind with
    | Nfl.Ast.Assign _ | Nfl.Ast.Expr _ | Nfl.Ast.Delete _ | Nfl.Ast.Pass -> [ (n, Seq) ]
    | Nfl.Ast.Return _ ->
        (* Ball–Horwitz pseudo-predicate treatment of jumps: the taken
           edge goes to [Exit], a (non-executable) false edge falls
           through. This makes later statements control-dependent on
           the return, so slices keep drop-path [return]s. *)
        add_edge b n True Exit;
        [ (n, False) ]
    | Nfl.Ast.If (_, b1, b2) ->
        let t_exits = stmts [ (n, True) ] b1 in
        let f_exits = stmts [ (n, False) ] b2 in
        t_exits @ f_exits
    | Nfl.Ast.While (_, body) | Nfl.Ast.For_in (_, _, body) ->
        let body_exits = stmts [ (n, True) ] body in
        List.iter (fun (src, lbl) -> add_edge b src lbl n) body_exits;
        [ (n, False) ]
  in
  let exits = stmts [ (Entry, Seq) ] block in
  List.iter (fun (src, lbl) -> add_edge b src lbl Exit) exits;
  (* Ferrante pseudo-edge (unless the block is empty and Entry already
     flows straight to Exit). *)
  let entry_to_exit =
    match Nmap.find_opt Entry b.b_succs with
    | Some l -> List.exists (fun (n, _) -> node_equal n Exit) l
    | None -> false
  in
  if not entry_to_exit then add_edge b Entry False Exit;
  {
    succs = b.b_succs;
    preds = b.b_preds;
    stmts = b.b_stmts;
    nodes = Nset.elements b.b_nodes;
  }

(** Nodes reachable from [Entry] following successor edges. *)
let reachable g =
  let rec go seen = function
    | [] -> seen
    | n :: rest ->
        if Nset.mem n seen then go seen rest
        else go (Nset.add n seen) (List.rev_append (succ_nodes g n) rest)
  in
  go Nset.empty [ Entry ]

(** Branch nodes: more than one distinct successor. *)
let branches g =
  List.filter
    (fun n ->
      match List.sort_uniq node_compare (succ_nodes g n) with _ :: _ :: _ -> true | _ -> false)
    g.nodes

let pp ppf g =
  List.iter
    (fun n ->
      let outs = succs g n in
      if outs <> [] then
        Fmt.pf ppf "%a -> %a@." pp_node n
          Fmt.(list ~sep:(any ", ") (fun ppf (m, l) ->
                   Fmt.pf ppf "%a%s" pp_node m
                     (match l with Seq -> "" | True -> "[T]" | False -> "[F]")))
          outs)
    g.nodes
