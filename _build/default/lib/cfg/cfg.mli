(** Statement-level control-flow graph over NFL blocks.

    Nodes are statement ids plus virtual [Entry]/[Exit]. Branch
    statements carry labelled true/false out-edges; [return] is
    treated as a Ball–Horwitz pseudo-predicate (taken edge to [Exit],
    non-executable fallthrough) so jumps participate in control
    dependence; a Ferrante pseudo-edge [Entry -> Exit] makes
    top-level statements control-dependent on [Entry]. Conditions are
    never constant-folded, so [Exit] stays reachable even under
    [while (true)]. *)

type node = Entry | Exit | Stmt of int

val node_compare : node -> node -> int
val node_equal : node -> node -> bool
val node_to_string : node -> string
val pp_node : Format.formatter -> node -> unit

module Nmap : Map.S with type key = node
module Nset : Set.S with type elt = node

(** Edge labels distinguish branch outcomes. *)
type label = Seq | True | False

type t

val of_block : Nfl.Ast.block -> t
(** Build the CFG of a statement block (typically a whole [main] or a
    packet-loop body). *)

val succs : t -> node -> (node * label) list
val preds : t -> node -> (node * label) list
val succ_nodes : t -> node -> node list
val pred_nodes : t -> node -> node list

val stmt_of : t -> node -> Nfl.Ast.stmt option
(** The statement at a node ([None] for [Entry]/[Exit]). *)

val nodes : t -> node list
(** All nodes, [Entry] and [Exit] included. *)

val size : t -> int
(** Number of statement nodes. *)

val reachable : t -> Nset.t
(** Nodes reachable from [Entry]. *)

val branches : t -> node list
(** Nodes with more than one distinct successor. *)

val pp : Format.formatter -> t -> unit
