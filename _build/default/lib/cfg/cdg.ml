(** Control-dependence graph (Ferrante, Ottenstein & Warren 1987).

    A node [n] is control dependent on a branch [b] when one of [b]'s
    outcomes always leads through [n] while another can avoid it.
    Computed the classic way: for each CFG edge [b -> s] with [b] a
    branch, walk the post-dominator tree upward from [s] until reaching
    the immediate post-dominator of [b]; every node visited is control
    dependent on [b]. *)

module Nmap = Cfg.Nmap
module Nset = Cfg.Nset

type t = {
  deps : Nset.t Nmap.t;  (** node -> branches it is control dependent on *)
  controls : Nset.t Nmap.t;  (** branch -> nodes it controls *)
}

let empty_set = Nset.empty

(** Branches controlling [n]. *)
let deps_of t n = Option.value ~default:empty_set (Nmap.find_opt n t.deps)

(** Nodes controlled by branch [b]. *)
let controlled_by t b = Option.value ~default:empty_set (Nmap.find_opt b t.controls)

let compute g =
  let pdom = Dominance.post_dominators g in
  let ipdom = Dominance.immediate_all pdom g in
  let deps = ref Nmap.empty and controls = ref Nmap.empty in
  let add n b =
    let push key v m =
      Nmap.update key (function None -> Some (Nset.singleton v) | Some s -> Some (Nset.add v s)) m
    in
    deps := push n b !deps;
    controls := push b n !controls
  in
  let branch_nodes = Cfg.branches g in
  List.iter
    (fun b ->
      let stop = Nmap.find_opt b ipdom in
      List.iter
        (fun s ->
          (* Walk the post-dominator tree from [s] up to (excluding)
             ipdom(b). If [b] itself is reached (loop header case) it is
             marked control dependent on itself, as in the original
             paper, but we skip self-edges for slicing purposes. *)
          let rec walk n =
            match stop with
            | Some stop_n when Cfg.node_equal n stop_n -> ()
            | _ ->
                if not (Cfg.node_equal n b) then add n b;
                (match Nmap.find_opt n ipdom with
                | Some up ->
                    if not (Cfg.node_equal up n) then walk up
                | None -> ())
          in
          walk s)
        (Cfg.succ_nodes g b))
    branch_nodes;
  { deps = !deps; controls = !controls }

let pp ppf t =
  Nmap.iter
    (fun n bs ->
      Fmt.pf ppf "%a <- {%a}@." Cfg.pp_node n
        Fmt.(list ~sep:(any ", ") Cfg.pp_node)
        (Nset.elements bs))
    t.deps
