(** Dominators and post-dominators, by iterative set intersection
    (NF loop bodies are small enough that the O(n²) formulation is
    fast and obviously correct). *)

module Nmap = Cfg.Nmap
module Nset = Cfg.Nset

val dominators : Cfg.t -> Nset.t Nmap.t
(** Each node's dominator set (itself included); unreachable nodes
    keep the universal set. *)

val post_dominators : Cfg.t -> Nset.t Nmap.t
(** Same, over the reversed graph from [Exit]. *)

val dominates : Nset.t Nmap.t -> Cfg.node -> Cfg.node -> bool
val strictly_dominates : Nset.t Nmap.t -> Cfg.node -> Cfg.node -> bool

val immediate : Nset.t Nmap.t -> Cfg.node -> Cfg.node option
(** Immediate (post-)dominator: the strict dominator closest to the
    node; [None] for the root. *)

val immediate_all : Nset.t Nmap.t -> Cfg.t -> Cfg.node Nmap.t
