(** Dominators and post-dominators.

    Straightforward iterative set-based computation: NF loop bodies are
    a few hundred statements, well inside the range where the O(n²)
    formulation is both fast and obviously correct. Immediate
    (post-)dominators are recovered from the full sets. *)

module Nmap = Cfg.Nmap
module Nset = Cfg.Nset

type dir = Forward | Backward

(* Generic dominance over the chosen direction. Unreachable nodes keep
   the universal set (standard convention). *)
let compute dir g =
  let nodes = Cfg.nodes g in
  let universe = Nset.of_list nodes in
  let root, preds =
    match dir with
    | Forward -> (Cfg.Entry, Cfg.pred_nodes g)
    | Backward -> (Cfg.Exit, Cfg.succ_nodes g)
  in
  let dom = ref Nmap.empty in
  List.iter
    (fun n ->
      let init = if Cfg.node_equal n root then Nset.singleton root else universe in
      dom := Nmap.add n init !dom)
    nodes;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        if not (Cfg.node_equal n root) then begin
          let ps = preds n in
          let meet =
            match ps with
            | [] -> universe
            | p :: rest ->
                List.fold_left
                  (fun acc q -> Nset.inter acc (Nmap.find q !dom))
                  (Nmap.find p !dom) rest
          in
          let next = Nset.add n meet in
          if not (Nset.equal next (Nmap.find n !dom)) then begin
            dom := Nmap.add n next !dom;
            changed := true
          end
        end)
      nodes
  done;
  !dom

(** [dominators g] maps each node to the set of its dominators
    (including itself). *)
let dominators g = compute Forward g

(** [post_dominators g] maps each node to the set of its
    post-dominators (including itself). *)
let post_dominators g = compute Backward g

let dominates dom a b = Nset.mem a (Nmap.find b dom)
let strictly_dominates dom a b = (not (Cfg.node_equal a b)) && dominates dom a b

(** Immediate (post-)dominator: the strict dominator closest to the
    node. [None] for the root and unreachable-in-direction nodes. *)
let immediate dom n =
  match Nmap.find_opt n dom with
  | None -> None
  | Some ds ->
      let strict = Nset.remove n ds in
      (* idom = the strict dominator dominated by every other strict
         dominator. *)
      Nset.fold
        (fun cand acc ->
          match acc with
          | Some _ -> acc
          | None ->
              if
                Nset.for_all
                  (fun other ->
                    Cfg.node_equal other cand || Nset.mem other (Nmap.find cand dom))
                  strict
              then Some cand
              else None)
        strict None

(** Immediate-dominator map for all nodes. *)
let immediate_all dom g =
  List.fold_left
    (fun acc n ->
      match immediate dom n with Some d -> Nmap.add n d acc | None -> acc)
    Nmap.empty (Cfg.nodes g)
