(** Control-dependence graph (Ferrante, Ottenstein & Warren 1987):
    node [n] is control dependent on branch [b] when one of [b]'s
    outcomes always leads through [n] while another can avoid it.
    Computed by walking the post-dominator tree from each branch
    successor up to the branch's immediate post-dominator. *)

type t

val compute : Cfg.t -> t

val deps_of : t -> Cfg.node -> Cfg.Nset.t
(** Branches controlling a node. *)

val controlled_by : t -> Cfg.node -> Cfg.Nset.t
(** Nodes a branch controls. *)

val pp : Format.formatter -> t -> unit
