(** Interprocedural analysis by bounded call-site inlining.

    NF programs have no recursion (the paper's corpus and code-structure
    taxonomy are loop-plus-helper-functions), so interprocedural slicing
    reduces to inlining every user-function call and analyzing one flat
    procedure — the same effect an SDG gives, with far simpler
    machinery.

    Calls may appear as a statement ([f(args);]) or as a whole
    right-hand side ([x = f(args);]). Early [return]s are eliminated
    with the standard live-flag transformation: the callee body runs
    under a [<pfx>_live] guard that a return clears, and enclosing
    [while] loops conjoin the flag into their condition so a return also
    exits the loop. *)

exception Recursive of string
exception Unsupported_call of string * Ast.pos

module Sset = Ast.Sset

(* Variables assigned anywhere in a block (targets of Assign/For_in/Delete). *)
let assigned_vars block =
  let acc = ref Sset.empty in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.kind with
      | Ast.Assign (Ast.L_var x, _) | Ast.Assign (Ast.L_index (x, _), _)
      | Ast.Assign (Ast.L_field (x, _), _)
      | Ast.Delete (x, _) ->
          acc := Sset.add x !acc
      | Ast.For_in (x, _, _) -> acc := Sset.add x !acc
      | Ast.If _ | Ast.While _ | Ast.Return _ | Ast.Expr _ | Ast.Pass -> ())
    block;
  !acc

let block_has_return block =
  let found = ref false in
  Ast.iter_stmts
    (fun s -> match s.Ast.kind with Ast.Return _ -> found := true | _ -> ())
    block;
  !found

(* User-function call appearing in a supported position. *)
let call_of_stmt funcs (s : Ast.stmt) =
  let user f = List.exists (fun (fn : Ast.func) -> fn.fname = f) funcs in
  match s.Ast.kind with
  | Ast.Expr (Ast.Call (f, args)) when user f -> Some (None, f, args)
  | Ast.Assign (Ast.L_var x, Ast.Call (f, args)) when user f -> Some (Some x, f, args)
  | _ ->
      (* Reject user calls buried inside expressions: they would need
         expression-level flattening that NF code doesn't require. *)
      let check e =
        List.iter
          (fun f -> if user f then raise (Unsupported_call (f, s.Ast.pos)))
          (Ast.expr_calls e)
      in
      (match s.Ast.kind with
      | Ast.Assign (lv, e) ->
          (match lv with
          | Ast.L_index (_, k) -> check k
          | Ast.L_var _ | Ast.L_field _ -> ());
          check e
      | Ast.If (c, _, _) | Ast.While (c, _) | Ast.For_in (_, c, _) -> check c
      | Ast.Return (Some e) | Ast.Expr e -> check e
      | Ast.Delete (_, k) -> check k
      | Ast.Return None | Ast.Pass -> ());
      None

(* Rewrite the callee body: rename locals, replace returns by live-flag
   updates, guard statements following a (possible) return. *)
let instantiate gen ~pfx ~globals (fn : Ast.func) args ~result =
  let locals =
    Sset.union (Sset.of_list fn.params)
      (Sset.diff (assigned_vars fn.body) (Sset.of_list globals))
  in
  let ren x = if Sset.mem x locals then pfx ^ x else x in
  let live = pfx ^ "live" in
  let retv = pfx ^ "ret" in
  let has_ret = block_has_return fn.body in
  let mk kind = Ast.mk gen kind in
  let live_test = Ast.Binop (Ast.Eq, Ast.Var live, Ast.Int 1) in
  (* [rewrite block] returns the block with returns eliminated; a
     statement list suffix following a return-containing statement gets
     wrapped in [if (live == 1)]. *)
  let rec rewrite block =
    match block with
    | [] -> []
    | s :: rest ->
        let s', may_return = rewrite_stmt s in
        let rest' = rewrite rest in
        if may_return && rest' <> [] then s' @ [ mk (Ast.If (live_test, rest', [])) ]
        else s' @ rest'
  and rewrite_stmt (s : Ast.stmt) =
    match s.Ast.kind with
    | Ast.Return e ->
        let set_ret =
          match e with
          | Some e -> [ mk (Ast.Assign (Ast.L_var retv, Ast.rename_expr ren e)) ]
          | None -> []
        in
        (set_ret @ [ mk (Ast.Assign (Ast.L_var live, Ast.Int 0)) ], true)
    | Ast.Assign (lv, e) ->
        let lv' =
          match lv with
          | Ast.L_var x -> Ast.L_var (ren x)
          | Ast.L_index (d, k) -> Ast.L_index (ren d, Ast.rename_expr ren k)
          | Ast.L_field (p, f) -> Ast.L_field (ren p, f)
        in
        ([ mk (Ast.Assign (lv', Ast.rename_expr ren e)) ], false)
    | Ast.Expr e -> ([ mk (Ast.Expr (Ast.rename_expr ren e)) ], false)
    | Ast.Delete (d, k) -> ([ mk (Ast.Delete (ren d, Ast.rename_expr ren k)) ], false)
    | Ast.Pass -> ([ mk Ast.Pass ], false)
    | Ast.If (c, b1, b2) ->
        let r1 = block_has_return b1 and r2 = block_has_return b2 in
        ([ mk (Ast.If (Ast.rename_expr ren c, rewrite b1, rewrite b2)) ], r1 || r2)
    | Ast.While (c, b) ->
        let r = block_has_return b in
        let c' = Ast.rename_expr ren c in
        let c' = if r then Ast.Binop (Ast.And, c', live_test) else c' in
        ([ mk (Ast.While (c', rewrite b)) ], r)
    | Ast.For_in (x, e, b) ->
        let r = block_has_return b in
        let b' = rewrite b in
        let b' = if r then [ mk (Ast.If (live_test, b', [])) ] else b' in
        ([ mk (Ast.For_in (ren x, Ast.rename_expr ren e, b')) ], r)
  in
  let prologue =
    (if has_ret then [ mk (Ast.Assign (Ast.L_var live, Ast.Int 1)) ] else [])
    @ List.map2 (fun p a -> mk (Ast.Assign (Ast.L_var (pfx ^ p), a))) fn.params args
  in
  let epilogue =
    match result with
    | Some x -> [ mk (Ast.Assign (Ast.L_var x, Ast.Var retv)) ]
    | None -> []
  in
  prologue @ rewrite fn.body @ epilogue

(** [program p] inlines every user-function call reachable from [main]
    and returns a function-free program. Raises {!Recursive} on
    (mutually) recursive corpora and {!Unsupported_call} when a user
    call appears nested inside an expression. *)
let program (p : Ast.program) =
  let gen = Ast.idgen ~from:p.next_sid () in
  let globals =
    List.filter_map
      (fun (s : Ast.stmt) ->
        match s.Ast.kind with
        | Ast.Assign (Ast.L_var x, _) -> Some x
        | _ -> None)
      p.globals
  in
  let counter = ref 0 in
  let rec expand depth block =
    if depth > 64 then raise (Recursive "call nesting exceeds 64 — recursion?");
    Ast.map_block
      (fun s ->
        match call_of_stmt p.funcs s with
        | None -> [ s ]
        | Some (result, f, args) ->
            let fn = Option.get (Ast.find_func p f) in
            if List.length args <> List.length fn.params then
              raise (Unsupported_call (f ^ ": arity mismatch", s.Ast.pos));
            incr counter;
            let pfx = Printf.sprintf "%s__%d_" f !counter in
            let body = instantiate gen ~pfx ~globals fn args ~result in
            expand (depth + 1) body)
      block
  in
  let main = expand 0 p.main in
  Ast.renumber { p with funcs = []; main }
