(** Static sanity checks over NFL programs: unbound variables, unknown
    functions and packet fields, arity errors. Deliberately light —
    NFL is dynamically typed like the paper's Python-level NF code. *)

type issue = { pos : Ast.pos; msg : string }

val pp_issue : Format.formatter -> issue -> unit

val program : Ast.program -> issue list
(** All issues found, in source order. *)

val assert_ok : Ast.program -> unit
(** @raise Failure with a readable report if issues exist. *)
