(** Abstract syntax of NFL, the NF source language.

    Design constraints come from the analyses that consume it: every
    statement carries a unique integer id ([sid]), expressions are
    side-effect free, and the value domain matches what middlebox code
    manipulates (paper Figure 1). *)

type pos = { line : int; col : int }

val dummy_pos : pos

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Band
  | Bor
  | Shl
  | Shr

type unop = Not | Neg

type expr =
  | Int of int
  | Bool of bool
  | Str of string
  | Var of string
  | Tuple of expr list
  | List_lit of expr list
  | Dict_lit  (** [{}] — dictionaries start empty and grow by assignment *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Index of expr * expr  (** [e[k]] *)
  | Field of expr * string  (** [e.f] — packet header access *)
  | Call of string * expr list
  | Mem of expr * expr  (** [k in d] *)

(** Assignment targets name the container variable directly so def/use
    extraction is syntactic. *)
type lvalue =
  | L_var of string
  | L_index of string * expr  (** [d[k] = e] *)
  | L_field of string * string  (** [pkt.f = e] *)

type stmt = { sid : int; pos : pos; kind : kind }

and kind =
  | Assign of lvalue * expr
  | If of expr * block * block
  | While of expr * block
  | For_in of string * expr * block  (** bounded iteration over a list *)
  | Return of expr option
  | Expr of expr  (** call for effect: [send(p)], [drop()], [log(...)] *)
  | Delete of string * expr  (** [del d[k]] *)
  | Pass

and block = stmt list

type func = { fname : string; params : string list; body : block }

type program = {
  globals : stmt list;  (** top-level assignments: the persistent variables *)
  funcs : func list;
  main : block;
  next_sid : int;  (** first unused id; transforms allocate from here *)
}

(** {1 Construction} *)

(** Statement-id generator used by the parser and transforms. *)
type idgen = { mutable next : int }

val idgen : ?from:int -> unit -> idgen
val fresh_sid : idgen -> int
val mk : ?pos:pos -> idgen -> kind -> stmt

(** {1 Traversals} *)

val iter_stmts : (stmt -> unit) -> block -> unit
(** Pre-order over a block, nested bodies included. *)

val iter_stmt : (stmt -> unit) -> stmt -> unit
val iter_program : (stmt -> unit) -> program -> unit

val all_stmts : program -> stmt list
(** All statements, pre-order. *)

val stmt_count_block : block -> int
val stmt_count : program -> int

val map_block : (stmt -> stmt list) -> block -> block
(** Bottom-up rewrite; the callback may delete, keep or expand a
    statement. *)

val map_stmt : (stmt -> stmt list) -> stmt -> stmt list

(** {1 Expression queries} *)

module Sset : Set.S with type elt = string

val expr_vars : expr -> Sset.t
(** Free variables. *)

val expr_calls : expr -> string list
(** Function names called anywhere in the expression. *)

val rename_expr : (string -> string) -> expr -> expr
val expr_equal : expr -> expr -> bool
val find_func : program -> string -> func option

val renumber : program -> program
(** Renumber statements to dense source pre-order ids in [1..n]. *)
