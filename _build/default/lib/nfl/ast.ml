(** Abstract syntax of NFL, the NF source language.

    NFL is the small imperative language the corpus NFs are written in;
    it plays the role C played in the paper. Design constraints came
    from the analyses that consume it:

    - every statement carries a unique integer id ([sid]) so that CFG
      nodes, slices, traces and model actions can all be plain sets of
      ids;
    - expressions are side-effect free (all effects — assignment, packet
      I/O, dictionary update — are statements), which keeps def/use
      extraction and symbolic evaluation one-pass;
    - the value domain (ints, bools, strings, tuples, lists, dicts,
      packets) matches what middlebox code actually manipulates, per the
      paper's Figure 1 running example. *)

type pos = { line : int; col : int }

let dummy_pos = { line = 0; col = 0 }

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Band
  | Bor
  | Shl
  | Shr

type unop = Not | Neg

type expr =
  | Int of int
  | Bool of bool
  | Str of string
  | Var of string
  | Tuple of expr list
  | List_lit of expr list
  | Dict_lit  (** [{}] — dictionaries start empty and grow by assignment *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Index of expr * expr  (** [e[k]] — dict lookup, list/tuple index, string index *)
  | Field of expr * string  (** [e.f] — packet header field access *)
  | Call of string * expr list  (** builtin or user function call *)
  | Mem of expr * expr  (** [k in d] — dictionary / list membership *)

(** Assignment targets. Container targets name the container variable
    directly (rather than an arbitrary expression) so that def/use
    extraction is syntactic. *)
type lvalue =
  | L_var of string
  | L_index of string * expr  (** [d[k] = e] *)
  | L_field of string * string  (** [pkt.f = e] *)

type stmt = { sid : int; pos : pos; kind : kind }

and kind =
  | Assign of lvalue * expr
  | If of expr * block * block
  | While of expr * block
  | For_in of string * expr * block  (** bounded iteration over a list value *)
  | Return of expr option
  | Expr of expr  (** call for effect: [send(p)], [drop()], [log(...)] *)
  | Delete of string * expr  (** [del d[k]] *)
  | Pass

and block = stmt list

type func = { fname : string; params : string list; body : block }

type program = {
  globals : stmt list;  (** top-level assignments; define the persistent variables *)
  funcs : func list;
  main : block;
  next_sid : int;  (** first id not used by any statement; transforms allocate from here *)
}

(* ------------------------------------------------------------------ *)
(* Construction helpers                                               *)
(* ------------------------------------------------------------------ *)

(** Statement-id generator used by the parser and by transforms that
    synthesize new statements. *)
type idgen = { mutable next : int }

let idgen ?(from = 1) () = { next = from }

let fresh_sid g =
  let i = g.next in
  g.next <- i + 1;
  i

let mk ?(pos = dummy_pos) g kind = { sid = fresh_sid g; pos; kind }

(* ------------------------------------------------------------------ *)
(* Traversals                                                         *)
(* ------------------------------------------------------------------ *)

(** [iter_stmts f block] applies [f] to every statement in [block],
    including statements nested in [If]/[While]/[For_in] bodies,
    pre-order. *)
let rec iter_stmts f block = List.iter (iter_stmt f) block

and iter_stmt f s =
  f s;
  match s.kind with
  | If (_, b1, b2) ->
      iter_stmts f b1;
      iter_stmts f b2
  | While (_, b) | For_in (_, _, b) -> iter_stmts f b
  | Assign _ | Return _ | Expr _ | Delete _ | Pass -> ()

let iter_program f (p : program) =
  iter_stmts f p.globals;
  List.iter (fun fn -> iter_stmts f fn.body) p.funcs;
  iter_stmts f p.main

(** All statements of a program, pre-order. *)
let all_stmts p =
  let acc = ref [] in
  iter_program (fun s -> acc := s :: !acc) p;
  List.rev !acc

(** Number of statements — the LoC metric used in the Table-2
    reproduction (comments and braces excluded by construction). *)
let stmt_count_block b =
  let n = ref 0 in
  iter_stmts (fun _ -> incr n) b;
  !n

let stmt_count p = List.length (all_stmts p)

(** [map_block f b] rebuilds [b] bottom-up, applying [f] to each
    statement after its children have been rewritten. [f] returns a
    list, so it can delete ([[]]), keep ([[s]]) or expand a statement. *)
let rec map_block f b = List.concat_map (map_stmt f) b

and map_stmt f s =
  let s' =
    match s.kind with
    | If (c, b1, b2) -> { s with kind = If (c, map_block f b1, map_block f b2) }
    | While (c, b) -> { s with kind = While (c, map_block f b) }
    | For_in (x, e, b) -> { s with kind = For_in (x, e, map_block f b) }
    | Assign _ | Return _ | Expr _ | Delete _ | Pass -> s
  in
  f s'

(* ------------------------------------------------------------------ *)
(* Expression queries                                                 *)
(* ------------------------------------------------------------------ *)

module Sset = Set.Make (String)

(** Free variables of an expression. *)
let rec expr_vars = function
  | Int _ | Bool _ | Str _ | Dict_lit -> Sset.empty
  | Var x -> Sset.singleton x
  | Tuple es | List_lit es -> List.fold_left (fun a e -> Sset.union a (expr_vars e)) Sset.empty es
  | Binop (_, a, b) | Index (a, b) | Mem (a, b) -> Sset.union (expr_vars a) (expr_vars b)
  | Unop (_, e) | Field (e, _) -> expr_vars e
  | Call (_, es) -> List.fold_left (fun a e -> Sset.union a (expr_vars e)) Sset.empty es

(** Function names called anywhere in an expression. *)
let rec expr_calls = function
  | Int _ | Bool _ | Str _ | Dict_lit | Var _ -> []
  | Tuple es | List_lit es -> List.concat_map expr_calls es
  | Binop (_, a, b) | Index (a, b) | Mem (a, b) -> expr_calls a @ expr_calls b
  | Unop (_, e) | Field (e, _) -> expr_calls e
  | Call (f, es) -> f :: List.concat_map expr_calls es

(** [rename_expr ren e] substitutes variables by name via [ren]. *)
let rec rename_expr ren = function
  | (Int _ | Bool _ | Str _ | Dict_lit) as e -> e
  | Var x -> Var (ren x)
  | Tuple es -> Tuple (List.map (rename_expr ren) es)
  | List_lit es -> List_lit (List.map (rename_expr ren) es)
  | Binop (op, a, b) -> Binop (op, rename_expr ren a, rename_expr ren b)
  | Unop (op, e) -> Unop (op, rename_expr ren e)
  | Index (a, b) -> Index (rename_expr ren a, rename_expr ren b)
  | Field (e, f) -> Field (rename_expr ren e, f)
  | Call (f, es) -> Call (f, List.map (rename_expr ren) es)
  | Mem (a, b) -> Mem (rename_expr ren a, rename_expr ren b)

(** Structural equality of expressions (ids don't appear in exprs, so
    this is plain equality; named for call-site readability). *)
let expr_equal (a : expr) (b : expr) = a = b

let find_func p name = List.find_opt (fun f -> f.fname = name) p.funcs

(** Renumber every statement so ids are dense in [1..n] and follow
    source pre-order (a compound statement numbers before its body).
    Used by the parser and after transformations that drop statements. *)
let renumber (p : program) =
  let g = idgen () in
  let rec stmt s =
    let sid = fresh_sid g in
    let kind =
      match s.kind with
      | If (c, b1, b2) ->
          (* Explicit sequencing: argument evaluation order must not
             decide which branch numbers first. *)
          let b1' = block b1 in
          let b2' = block b2 in
          If (c, b1', b2')
      | While (c, b) -> While (c, block b)
      | For_in (x, e, b) -> For_in (x, e, block b)
      | (Assign _ | Return _ | Expr _ | Delete _ | Pass) as k -> k
    in
    { s with sid; kind }
  and block b = List.map stmt b in
  let globals = block p.globals in
  let funcs = List.map (fun f -> { f with body = block f.body }) p.funcs in
  let main = block p.main in
  { globals; funcs; main; next_sid = g.next }
