(** Recursive-descent parser for NFL.

    Precedence (low to high): [or] < [and] < [not] < comparison /
    membership < [|] < [&] < shifts < additive < multiplicative < unary
    < postfix (call, index, field).

    Python-style multiple assignment ([a, b = e1, e2;]) desugars to a
    sequence of simple assignments, matching the paper's Figure-1
    idiom; targets must therefore not appear in later right-hand
    sides. *)

exception Error of string * Ast.pos

type state = { toks : (Lexer.token * Ast.pos) array; mutable idx : int; gen : Ast.idgen }

let make toks = { toks; idx = 0; gen = Ast.idgen () }
let peek st = fst st.toks.(st.idx)
let peek_pos st = snd st.toks.(st.idx)

let peek2 st =
  if st.idx + 1 < Array.length st.toks then fst st.toks.(st.idx + 1) else Lexer.EOF

let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let fail st msg =
  raise (Error (Printf.sprintf "%s (got %s)" msg (Lexer.token_to_string (peek st)), peek_pos st))

let expect st tok msg =
  if peek st = tok then advance st else fail st ("expected " ^ msg)

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if accept st Lexer.PIPEPIPE || accept st Lexer.KW_or then
    Ast.Binop (Ast.Or, lhs, parse_or st)
  else lhs

and parse_and st =
  let lhs = parse_not st in
  if accept st Lexer.AMPAMP || accept st Lexer.KW_and then
    Ast.Binop (Ast.And, lhs, parse_and st)
  else lhs

and parse_not st =
  if accept st Lexer.KW_not then Ast.Unop (Ast.Not, parse_not st) else parse_cmp st

and parse_cmp st =
  let lhs = parse_bitor st in
  let op =
    match peek st with
    | Lexer.EQ -> Some Ast.Eq
    | Lexer.NE -> Some Ast.Ne
    | Lexer.LT -> Some Ast.Lt
    | Lexer.LE -> Some Ast.Le
    | Lexer.GT -> Some Ast.Gt
    | Lexer.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | Some op ->
      advance st;
      Ast.Binop (op, lhs, parse_bitor st)
  | None -> (
      match peek st with
      | Lexer.KW_in ->
          advance st;
          Ast.Mem (lhs, parse_bitor st)
      | Lexer.KW_not when peek2 st = Lexer.KW_in ->
          advance st;
          advance st;
          Ast.Unop (Ast.Not, Ast.Mem (lhs, parse_bitor st))
      | _ -> lhs)

and parse_bitor st =
  let rec go lhs =
    if peek st = Lexer.PIPE then begin
      advance st;
      go (Ast.Binop (Ast.Bor, lhs, parse_bitand st))
    end
    else lhs
  in
  go (parse_bitand st)

and parse_bitand st =
  let rec go lhs =
    if peek st = Lexer.AMP then begin
      advance st;
      go (Ast.Binop (Ast.Band, lhs, parse_shift st))
    end
    else lhs
  in
  go (parse_shift st)

and parse_shift st =
  let rec go lhs =
    match peek st with
    | Lexer.SHL ->
        advance st;
        go (Ast.Binop (Ast.Shl, lhs, parse_add st))
    | Lexer.SHR ->
        advance st;
        go (Ast.Binop (Ast.Shr, lhs, parse_add st))
    | _ -> lhs
  in
  go (parse_add st)

and parse_add st =
  let rec go lhs =
    match peek st with
    | Lexer.PLUS ->
        advance st;
        go (Ast.Binop (Ast.Add, lhs, parse_mul st))
    | Lexer.MINUS ->
        advance st;
        go (Ast.Binop (Ast.Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match peek st with
    | Lexer.STAR ->
        advance st;
        go (Ast.Binop (Ast.Mul, lhs, parse_unary st))
    | Lexer.SLASH ->
        advance st;
        go (Ast.Binop (Ast.Div, lhs, parse_unary st))
    | Lexer.PERCENT ->
        advance st;
        go (Ast.Binop (Ast.Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.MINUS ->
      advance st;
      Ast.Unop (Ast.Neg, parse_unary st)
  | Lexer.BANG ->
      advance st;
      Ast.Unop (Ast.Not, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec go e =
    match peek st with
    | Lexer.LBRACKET ->
        advance st;
        let k = parse_expr st in
        expect st Lexer.RBRACKET "']'";
        go (Ast.Index (e, k))
    | Lexer.DOT -> (
        advance st;
        match peek st with
        | Lexer.ID f ->
            advance st;
            go (Ast.Field (e, f))
        | _ -> fail st "expected field name after '.'")
    | _ -> e
  in
  go (parse_atom st)

and parse_atom st =
  match peek st with
  | Lexer.INT n ->
      advance st;
      Ast.Int n
  | Lexer.STR s ->
      advance st;
      Ast.Str s
  | Lexer.KW_true ->
      advance st;
      Ast.Bool true
  | Lexer.KW_false ->
      advance st;
      Ast.Bool false
  | Lexer.ID name ->
      advance st;
      if peek st = Lexer.LPAREN then begin
        advance st;
        let args = if peek st = Lexer.RPAREN then [] else parse_expr_list st in
        expect st Lexer.RPAREN "')'";
        Ast.Call (name, args)
      end
      else Ast.Var name
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr st in
      if accept st Lexer.COMMA then begin
        let rest = if peek st = Lexer.RPAREN then [] else parse_expr_list st in
        expect st Lexer.RPAREN "')'";
        Ast.Tuple (e :: rest)
      end
      else begin
        expect st Lexer.RPAREN "')'";
        e
      end
  | Lexer.LBRACKET ->
      advance st;
      let es = if peek st = Lexer.RBRACKET then [] else parse_expr_list st in
      expect st Lexer.RBRACKET "']'";
      Ast.List_lit es
  | Lexer.LBRACE ->
      advance st;
      expect st Lexer.RBRACE "'}' (only empty dict literals exist)";
      Ast.Dict_lit
  | _ -> fail st "expected expression"

and parse_expr_list st =
  let e = parse_expr st in
  if accept st Lexer.COMMA then e :: parse_expr_list st else [ e ]

(* ------------------------------------------------------------------ *)
(* Statements                                                         *)
(* ------------------------------------------------------------------ *)

let lvalue_of_expr st = function
  | Ast.Var x -> Ast.L_var x
  | Ast.Index (Ast.Var d, k) -> Ast.L_index (d, k)
  | Ast.Field (Ast.Var p, f) -> Ast.L_field (p, f)
  | _ -> fail st "invalid assignment target"

let mk st pos kind : Ast.stmt = { sid = Ast.fresh_sid st.gen; pos; kind }

let rec parse_stmt st : Ast.stmt list =
  let pos = peek_pos st in
  match peek st with
  | Lexer.KW_if -> [ parse_if st pos ]
  | Lexer.KW_while ->
      advance st;
      expect st Lexer.LPAREN "'('";
      let cond = parse_expr st in
      expect st Lexer.RPAREN "')'";
      let body = parse_block st in
      [ mk st pos (Ast.While (cond, body)) ]
  | Lexer.KW_for -> (
      advance st;
      match peek st with
      | Lexer.ID x ->
          advance st;
          expect st Lexer.KW_in "'in'";
          let e = parse_expr st in
          let body = parse_block st in
          [ mk st pos (Ast.For_in (x, e, body)) ]
      | _ -> fail st "expected loop variable")
  | Lexer.KW_return ->
      advance st;
      let e = if peek st = Lexer.SEMI then None else Some (parse_expr st) in
      expect st Lexer.SEMI "';'";
      [ mk st pos (Ast.Return e) ]
  | Lexer.KW_del -> (
      advance st;
      match peek st with
      | Lexer.ID d ->
          advance st;
          expect st Lexer.LBRACKET "'['";
          let k = parse_expr st in
          expect st Lexer.RBRACKET "']'";
          expect st Lexer.SEMI "';'";
          [ mk st pos (Ast.Delete (d, k)) ]
      | _ -> fail st "expected dictionary name after 'del'")
  | Lexer.KW_pass ->
      advance st;
      expect st Lexer.SEMI "';'";
      [ mk st pos Ast.Pass ]
  | _ -> parse_simple_stmt st pos

and parse_if st pos =
  expect st Lexer.KW_if "'if'";
  expect st Lexer.LPAREN "'('";
  let cond = parse_expr st in
  expect st Lexer.RPAREN "')'";
  let then_b = parse_block st in
  let else_b =
    if accept st Lexer.KW_else then
      if peek st = Lexer.KW_if then [ parse_if st (peek_pos st) ] else parse_block st
    else []
  in
  mk st pos (Ast.If (cond, then_b, else_b))

and parse_simple_stmt st pos =
  let first = parse_expr st in
  match peek st with
  | Lexer.ASSIGN | Lexer.COMMA ->
      (* One or more targets. *)
      let rec targets acc =
        if accept st Lexer.COMMA then targets (parse_expr st :: acc) else List.rev acc
      in
      let tgt_exprs = targets [ first ] in
      expect st Lexer.ASSIGN "'='";
      let rhs = parse_expr_list st in
      expect st Lexer.SEMI "';'";
      if List.length tgt_exprs <> List.length rhs then
        fail st "assignment arity mismatch";
      List.map2
        (fun t e -> mk st pos (Ast.Assign (lvalue_of_expr st t, e)))
        tgt_exprs rhs
  | Lexer.PLUS_EQ ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.SEMI "';'";
      let lv = lvalue_of_expr st first in
      [ mk st pos (Ast.Assign (lv, Ast.Binop (Ast.Add, first, e))) ]
  | Lexer.MINUS_EQ ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.SEMI "';'";
      let lv = lvalue_of_expr st first in
      [ mk st pos (Ast.Assign (lv, Ast.Binop (Ast.Sub, first, e))) ]
  | _ ->
      expect st Lexer.SEMI "';'";
      [ mk st pos (Ast.Expr first) ]

and parse_block st : Ast.block =
  expect st Lexer.LBRACE "'{'";
  let rec go acc =
    if peek st = Lexer.RBRACE then begin
      advance st;
      List.rev acc
    end
    else go (List.rev_append (parse_stmt st) acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Top level                                                          *)
(* ------------------------------------------------------------------ *)

let parse_params st =
  expect st Lexer.LPAREN "'('";
  let rec go acc =
    match peek st with
    | Lexer.RPAREN ->
        advance st;
        List.rev acc
    | Lexer.ID x ->
        advance st;
        if accept st Lexer.COMMA then go (x :: acc)
        else begin
          expect st Lexer.RPAREN "')'";
          List.rev (x :: acc)
        end
    | _ -> fail st "expected parameter name"
  in
  go []

(** Parse a complete NFL program from source text. *)
let program src : Ast.program =
  let toks = Array.of_list (Lexer.tokens src) in
  let st = make toks in
  let globals = ref [] in
  let funcs = ref [] in
  let main = ref None in
  let rec go () =
    match peek st with
    | Lexer.EOF -> ()
    | Lexer.KW_def -> (
        advance st;
        match peek st with
        | Lexer.ID fname ->
            advance st;
            let params = parse_params st in
            let body = parse_block st in
            funcs := { Ast.fname; params; body } :: !funcs;
            go ()
        | _ -> fail st "expected function name")
    | Lexer.KW_main ->
        advance st;
        let body = parse_block st in
        (match !main with
        | None -> main := Some body
        | Some _ -> fail st "duplicate main block");
        go ()
    | _ ->
        let ss = parse_stmt st in
        List.iter
          (fun (s : Ast.stmt) ->
            match s.kind with
            | Ast.Assign _ -> globals := s :: !globals
            | _ -> raise (Error ("only assignments allowed at top level", s.pos)))
          ss;
        go ()
  in
  go ();
  let main =
    match !main with Some m -> m | None -> raise (Error ("program has no main block", Ast.dummy_pos))
  in
  (* Renumber to dense source pre-order: the parser builds children
     before their enclosing compound statement, so raw ids are
     bottom-up. *)
  Ast.renumber
    { globals = List.rev !globals; funcs = List.rev !funcs; main; next_sid = st.gen.next }
