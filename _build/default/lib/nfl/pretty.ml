(** Pretty-printer: renders AST back to parseable NFL source.

    Used to display slices (the paper highlights slice statements in the
    original listing — [program ~slice] renders non-slice statements as
    dimmed comments instead), to round-trip programs in tests, and to
    show synthesized programs produced by the structure transforms. *)

let binop_str = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.And -> "&&"
  | Ast.Or -> "||"
  | Ast.Band -> "&"
  | Ast.Bor -> "|"
  | Ast.Shl -> "<<"
  | Ast.Shr -> ">>"

let prec = function
  | Ast.Or -> 1
  | Ast.And -> 2
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 4
  | Ast.Bor -> 5
  | Ast.Band -> 6
  | Ast.Shl | Ast.Shr -> 7
  | Ast.Add | Ast.Sub -> 8
  | Ast.Mul | Ast.Div | Ast.Mod -> 9

let rec expr ?(ctx = 0) e =
  let atom s = s in
  let paren p s = if p < ctx then "(" ^ s ^ ")" else s in
  match e with
  | Ast.Int n -> atom (string_of_int n)
  | Ast.Bool true -> atom "true"
  | Ast.Bool false -> atom "false"
  | Ast.Str s -> atom (Printf.sprintf "%S" s)
  | Ast.Var x -> atom x
  | Ast.Tuple es -> atom ("(" ^ String.concat ", " (List.map (expr ~ctx:0) es) ^ ")")
  | Ast.List_lit es -> atom ("[" ^ String.concat ", " (List.map (expr ~ctx:0) es) ^ "]")
  | Ast.Dict_lit -> atom "{}"
  | Ast.Binop (op, a, b) ->
      (* Match the parser's associativity: [&&]/[||] are right-
         associative, comparisons don't chain, everything else is
         left-associative. *)
      let p = prec op in
      let lctx, rctx =
        match op with
        | Ast.And | Ast.Or -> (p + 1, p)
        | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (p + 1, p + 1)
        | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Band | Ast.Bor | Ast.Shl
        | Ast.Shr ->
            (p, p + 1)
      in
      paren p (expr ~ctx:lctx a ^ " " ^ binop_str op ^ " " ^ expr ~ctx:rctx b)
  | Ast.Unop (Ast.Not, e) -> paren 3 ("not " ^ expr ~ctx:5 e)
  | Ast.Unop (Ast.Neg, e) -> paren 10 ("-" ^ expr ~ctx:10 e)
  | Ast.Index (a, k) -> atom (expr ~ctx:11 a ^ "[" ^ expr ~ctx:0 k ^ "]")
  | Ast.Field (a, f) -> atom (expr ~ctx:11 a ^ "." ^ f)
  | Ast.Call (f, args) -> atom (f ^ "(" ^ String.concat ", " (List.map (expr ~ctx:0) args) ^ ")")
  | Ast.Mem (k, d) -> paren 4 (expr ~ctx:5 k ^ " in " ^ expr ~ctx:5 d)

let lvalue = function
  | Ast.L_var x -> x
  | Ast.L_index (d, k) -> d ^ "[" ^ expr k ^ "]"
  | Ast.L_field (p, f) -> p ^ "." ^ f

(** [stmt ~keep buf indent s]: when [keep s.sid] is false the statement
    is rendered as a comment line (slice display). *)
let rec stmt ~keep buf indent s =
  let pad = String.make indent ' ' in
  let line fmt = Printf.ksprintf (fun str -> Buffer.add_string buf (pad ^ str ^ "\n")) fmt in
  let kept = keep s.Ast.sid in
  let mark str = if kept then str else "# [pruned] " ^ str in
  match s.Ast.kind with
  | Ast.Assign (lv, e) -> line "%s" (mark (lvalue lv ^ " = " ^ expr e ^ ";"))
  | Ast.Expr e -> line "%s" (mark (expr e ^ ";"))
  | Ast.Return None -> line "%s" (mark "return;")
  | Ast.Return (Some e) -> line "%s" (mark ("return " ^ expr e ^ ";"))
  | Ast.Delete (d, k) -> line "%s" (mark ("del " ^ d ^ "[" ^ expr k ^ "];"))
  | Ast.Pass -> line "%s" (mark "pass;")
  | Ast.If (c, b1, b2) ->
      line "%s" (mark ("if (" ^ expr c ^ ") {"));
      block ~keep buf (indent + 2) b1;
      if b2 <> [] then begin
        line "} else {";
        block ~keep buf (indent + 2) b2
      end;
      line "}"
  | Ast.While (c, b) ->
      line "%s" (mark ("while (" ^ expr c ^ ") {"));
      block ~keep buf (indent + 2) b;
      line "}"
  | Ast.For_in (x, e, b) ->
      line "%s" (mark ("for " ^ x ^ " in " ^ expr e ^ " {"));
      block ~keep buf (indent + 2) b;
      line "}"

and block ~keep buf indent b = List.iter (stmt ~keep buf indent) b

(** Render a whole program. [slice], when given, is the set of statement
    ids to keep; everything else prints as a pruned comment. *)
let program ?slice (p : Ast.program) =
  let keep =
    match slice with None -> fun _ -> true | Some ids -> fun sid -> List.mem sid ids
  in
  let buf = Buffer.create 1024 in
  List.iter (stmt ~keep buf 0) p.globals;
  List.iter
    (fun (f : Ast.func) ->
      Buffer.add_string buf
        (Printf.sprintf "\ndef %s(%s) {\n" f.fname (String.concat ", " f.params));
      block ~keep buf 2 f.body;
      Buffer.add_string buf "}\n")
    p.funcs;
  Buffer.add_string buf "\nmain {\n";
  block ~keep buf 2 p.main;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let stmt_to_string (s : Ast.stmt) =
  let buf = Buffer.create 64 in
  stmt ~keep:(fun _ -> true) buf 0 s;
  String.trim (Buffer.contents buf)
