(** Recursive-descent parser for NFL.

    Precedence (low to high): [or] < [and] < [not] < comparison /
    membership < [|] < [&] < shifts < additive < multiplicative <
    unary < postfix. Python-style multiple assignment
    ([a, b = e1, e2;]) desugars to a sequence of simple assignments. *)

exception Error of string * Ast.pos

val program : string -> Ast.program
(** Parse a complete program. Statement ids come out dense, in source
    pre-order.
    @raise Error on syntax errors (with position).
    @raise Lexer.Error on lexical errors. *)
