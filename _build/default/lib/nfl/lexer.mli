(** Hand-written lexer for NFL. Dotted-quad IPv4 literals ([3.3.3.3])
    lex to their integer value; [#] starts a line comment. *)

type token =
  | INT of int
  | STR of string
  | ID of string
  | KW_true
  | KW_false
  | KW_def
  | KW_main
  | KW_if
  | KW_else
  | KW_while
  | KW_for
  | KW_in
  | KW_not
  | KW_and
  | KW_or
  | KW_return
  | KW_del
  | KW_pass
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | DOT
  | ASSIGN
  | PLUS_EQ
  | MINUS_EQ
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | AMPAMP
  | PIPEPIPE
  | SHL
  | SHR
  | BANG
  | EOF

val token_to_string : token -> string

exception Error of string * Ast.pos

val tokens : string -> (token * Ast.pos) list
(** Lex a whole source string (the final element is [EOF]).
    @raise Error with position on malformed input. *)
