(** Code-structure normalization (paper Section 3.2, Figures 4 and 5).

    NFactor's analyses want the canonical Figure-4a shape:

    {v
    main { while (true) { pkt = recv(); <process>; } }
    v}

    Real NFs come in three other shapes, which this module rewrites:

    - {b Callback} (Fig. 4b): [sniff(cb)] becomes an explicit receive
      loop calling [cb] (the later inlining pass flattens the call).
    - {b Consumer-producer} (Fig. 4c): two [spawn]ed loops coupled by a
      queue are fused into one loop, with [queue_push]/[queue_pop]
      replaced by a direct binding.
    - {b Nested accept/fork loop} (Fig. 4d, the [balance] shape): socket
      calls are *unfolded* into packet-level operations plus an explicit
      TCP state table, producing the Figure-5 program. The unfolding is
      template-directed: the accept-time statements, the backend-
      selection expression and the per-data-segment statements are
      extracted from the source and spliced into a handshake/relay
      skeleton that encodes the OS's hidden TCP state transitions. *)

exception Not_applicable of string

type structure =
  | Single_loop  (** Fig. 4a — already canonical *)
  | Callback  (** Fig. 4b *)
  | Consumer_producer  (** Fig. 4c *)
  | Nested_loop  (** Fig. 4d *)

let structure_to_string = function
  | Single_loop -> "single-loop"
  | Callback -> "callback"
  | Consumer_producer -> "consumer-producer"
  | Nested_loop -> "nested-loop"

(* ------------------------------------------------------------------ *)
(* Detection                                                          *)
(* ------------------------------------------------------------------ *)

let block_calls block =
  let acc = ref [] in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.kind with
      | Ast.Expr (Ast.Call (f, _)) | Ast.Assign (_, Ast.Call (f, _)) -> acc := f :: !acc
      | Ast.Assign _ | Ast.If _ | Ast.While _ | Ast.For_in _ | Ast.Return _ | Ast.Expr _
      | Ast.Delete _ | Ast.Pass ->
          ())
    block;
  !acc

(** Classify the code structure of [p]'s main block. *)
let detect (p : Ast.program) =
  let calls = block_calls p.main in
  if List.mem Builtins.sniff calls then Callback
  else if List.mem Builtins.spawn calls then Consumer_producer
  else if List.mem Builtins.sock_accept calls && List.mem Builtins.fork calls then Nested_loop
  else if List.mem Builtins.pkt_input calls then Single_loop
  else raise (Not_applicable "main block matches no known NF code structure")

(* ------------------------------------------------------------------ *)
(* Fig. 4b: callback -> loop                                          *)
(* ------------------------------------------------------------------ *)

(** Rewrite [sniff(cb);] into [while (true) { pkt = recv(); cb(pkt); }].
    Any statements around the [sniff] call in main are preserved. *)
let callback_to_loop (p : Ast.program) =
  let gen = Ast.idgen ~from:p.next_sid () in
  let rewritten = ref false in
  let main =
    Ast.map_block
      (fun s ->
        match s.Ast.kind with
        | Ast.Expr (Ast.Call (f, [ Ast.Var cb ])) when f = Builtins.sniff ->
            rewritten := true;
            let pkt = "pkt" in
            let body =
              [
                Ast.mk gen (Ast.Assign (Ast.L_var pkt, Ast.Call (Builtins.pkt_input, [])));
                Ast.mk gen (Ast.Expr (Ast.Call (cb, [ Ast.Var pkt ])));
              ]
            in
            [ Ast.mk gen (Ast.While (Ast.Bool true, body)) ]
        | _ -> [ s ])
      p.main
  in
  if not !rewritten then raise (Not_applicable "no sniff(callback) call in main");
  Ast.renumber { p with main; next_sid = gen.next }

(* ------------------------------------------------------------------ *)
(* Fig. 4c: consumer-producer -> loop                                 *)
(* ------------------------------------------------------------------ *)

(** Fuse [spawn(read_loop); spawn(proc_loop);] into one loop. Each
    spawned function is taken to run repeatedly; the loop body calls
    producer then consumer (the later inlining pass flattens the calls
    and gives [return] its skip-this-iteration meaning). The queue
    coupling them is eliminated inside the function bodies by
    substituting [queue_push(q, e)] with [__q_head = e;] and
    [x = queue_pop(q)] with [x = __q_head;]. *)
let fuse_consumer_producer (p : Ast.program) =
  let gen = Ast.idgen ~from:p.next_sid () in
  let spawned =
    List.filter_map
      (fun (s : Ast.stmt) ->
        match s.Ast.kind with
        | Ast.Expr (Ast.Call (f, [ Ast.Var fn ])) when f = Builtins.spawn -> Some fn
        | _ -> None)
      p.main
  in
  match spawned with
  | [ producer; consumer ] ->
      List.iter
        (fun name ->
          if Ast.find_func p name = None then
            raise (Not_applicable ("spawned function not defined: " ^ name)))
        [ producer; consumer ];
      let head = "__q_head" in
      let elim block =
        Ast.map_block
          (fun s ->
            match s.Ast.kind with
            | Ast.Expr (Ast.Call (f, [ _q; e ])) when f = Builtins.queue_push ->
                [ Ast.mk gen (Ast.Assign (Ast.L_var head, e)) ]
            | Ast.Assign (lv, Ast.Call (f, [ _q ])) when f = Builtins.queue_pop ->
                [ Ast.mk gen (Ast.Assign (lv, Ast.Var head)) ]
            | _ -> [ s ])
          block
      in
      let funcs =
        List.map
          (fun (f : Ast.func) ->
            if f.fname = producer || f.fname = consumer then { f with body = elim f.body }
            else f)
          p.funcs
      in
      let body =
        [
          Ast.mk gen (Ast.Expr (Ast.Call (producer, [])));
          Ast.mk gen (Ast.Expr (Ast.Call (consumer, [])));
        ]
      in
      let main = [ Ast.mk gen (Ast.While (Ast.Bool true, body)) ] in
      (* [__q_head] must be a global so both inlined bodies share it. *)
      let globals = p.globals @ [ Ast.mk gen (Ast.Assign (Ast.L_var head, Ast.Int 0)) ] in
      Ast.renumber { Ast.globals; main; funcs; next_sid = gen.next }
  | _ -> raise (Not_applicable "expected exactly two spawn() calls (producer, consumer)")

(* ------------------------------------------------------------------ *)
(* Fig. 4d -> Fig. 5: socket unfolding                                *)
(* ------------------------------------------------------------------ *)

(** Components extracted from an accept/fork nested loop. *)
type accept_fork = {
  listen_port : Ast.expr;  (** port bound by [listen] *)
  conn_var : string;  (** variable [accept] bound; becomes the client 4-tuple *)
  accept_stmts : Ast.block;  (** run once per accepted connection (backend selection) *)
  backend : Ast.expr;  (** argument of [connect] — [(ip, port)] tuple *)
  data_stmts : Ast.block;  (** per-data-segment statements, with [buf] bound *)
  buf_var : string;  (** variable [sock_recv] bound in the inner loop *)
  out_expr : Ast.expr;  (** payload expression passed to [sock_send] *)
}

let match_accept_fork (p : Ast.program) =
  (* Expected shape (Figure 3 / Figure 4d):
       ls = listen(PORT);
       while (...) {
         c = accept(ls);
         <accept_stmts>
         child = fork();
         if (child == 0) {
           srv = connect(BACKEND);
           while (...) { buf = sock_recv(c); <data_stmts> sock_send(srv, OUT); }
         }
       } *)
  let fail msg = raise (Not_applicable ("accept/fork pattern: " ^ msg)) in
  let listen_port =
    List.find_map
      (fun (s : Ast.stmt) ->
        match s.Ast.kind with
        | Ast.Assign (_, Ast.Call (f, [ port ])) when f = Builtins.sock_listen -> Some port
        | _ -> None)
      p.main
  in
  let listen_port = match listen_port with Some e -> e | None -> fail "no listen()" in
  let outer_body =
    List.find_map
      (fun (s : Ast.stmt) ->
        match s.Ast.kind with Ast.While (_, b) -> Some b | _ -> None)
      p.main
  in
  let outer_body = match outer_body with Some b -> b | None -> fail "no outer loop" in
  (* Split the outer body at accept() and fork(). *)
  let rec split_accept acc = function
    | [] -> fail "no accept() in outer loop"
    | ({ Ast.kind = Ast.Assign (Ast.L_var c, Ast.Call (f, _)); _ } : Ast.stmt) :: rest
      when f = Builtins.sock_accept ->
        (List.rev acc, c, rest)
    | s :: rest -> split_accept (s :: acc) rest
  in
  let _before_accept, conn_var, after_accept = split_accept [] outer_body in
  let rec split_fork acc = function
    | [] -> fail "no fork() in outer loop"
    | ({ Ast.kind = Ast.Assign (_, Ast.Call (f, _)); _ } : Ast.stmt) :: rest
      when f = Builtins.fork ->
        (List.rev acc, rest)
    | s :: rest -> split_fork (s :: acc) rest
  in
  let accept_stmts, after_fork = split_fork [] after_accept in
  let child_block =
    List.find_map
      (fun (s : Ast.stmt) ->
        match s.Ast.kind with Ast.If (_, b, _) -> Some b | _ -> None)
      after_fork
  in
  let child_block = match child_block with Some b -> b | None -> fail "no fork child branch" in
  let backend =
    List.find_map
      (fun (s : Ast.stmt) ->
        match s.Ast.kind with
        | Ast.Assign (_, Ast.Call (f, [ b ])) when f = Builtins.sock_connect -> Some b
        | _ -> None)
      child_block
  in
  let backend = match backend with Some b -> b | None -> fail "no connect() in child" in
  let inner_body =
    List.find_map
      (fun (s : Ast.stmt) ->
        match s.Ast.kind with Ast.While (_, b) -> Some b | _ -> None)
      child_block
  in
  let inner_body = match inner_body with Some b -> b | None -> fail "no inner relay loop" in
  let buf_var, after_recv =
    match inner_body with
    | { Ast.kind = Ast.Assign (Ast.L_var b, Ast.Call (f, _)); _ } :: rest
      when f = Builtins.sock_recv ->
        (b, rest)
    | _ -> fail "inner loop must start with buf = sock_recv(..)"
  in
  let rec split_send acc = function
    | [] -> fail "no sock_send() in inner loop"
    | ({ Ast.kind = Ast.Expr (Ast.Call (f, [ _; out ])); _ } : Ast.stmt) :: _
      when f = Builtins.sock_send ->
        (List.rev acc, out)
    | s :: rest -> split_send (s :: acc) rest
  in
  let data_stmts, out_expr = split_send [] after_recv in
  { listen_port; conn_var; accept_stmts; backend; data_stmts; buf_var; out_expr }

(** Unfold an accept/fork program into the Figure-5 single-loop form.

    The emitted program makes the OS's hidden per-connection state
    explicit: a [_tcp] dictionary maps the client 4-tuple to an integer
    {!Packet.Tcp_fsm} state, a [_backend] dictionary records the backend
    chosen at accept time, and the relay rewrites addresses in both
    directions. Control segments (handshake, teardown) drive the state
    machine; data segments are only relayed in ESTABLISHED — exactly the
    "data packets without 3-way handshake established would be dropped"
    behaviour the paper attributes to hidden state. *)
let unfold_accept_fork (p : Ast.program) =
  let af = match_accept_fork p in
  let globals_src =
    String.concat "\n" (List.map Pretty.stmt_to_string p.globals)
  in
  let splice block = String.concat "\n      " (List.map Pretty.stmt_to_string block) in
  let e = Pretty.expr in
  (* The skeleton is NFL source; holes are filled with pretty-printed
     fragments of the matched program, then the result is re-parsed. *)
  let src =
    Printf.sprintf
      {|
# Generated by Transform.unfold_accept_fork (Figure 3 -> Figure 5).
%s
_tcp = {};
_backend = {};
_lb_port = %s;

main {
  while (true) {
    pkt = recv();
    if (pkt.dport == _lb_port) {
      fl = (pkt.ip_src, pkt.sport, pkt.ip_dst, pkt.dport);
      if (not (fl in _tcp)) {
        # ProcessCtrlMsg: passive open. Only a SYN creates state.
        if ((pkt.tcp_flags & 2) != 0) {
          %s = fl;             # connection identity = client 4-tuple
          %s
          _backend[fl] = %s;
          _tcp[fl] = 3;            # SYN_RCVD
          # SYN/ACK back to the client on behalf of the listener.
          t_ip = pkt.ip_src; pkt.ip_src = pkt.ip_dst; pkt.ip_dst = t_ip;
          t_pt = pkt.sport; pkt.sport = pkt.dport; pkt.dport = t_pt;
          pkt.tcp_flags = 18;      # SYN|ACK
          send(pkt);
        }
      } else {
        st = _tcp[fl];
        if (st == 3) {             # SYN_RCVD
          if ((pkt.tcp_flags & 16) != 0) {
            _tcp[fl] = 4;          # ESTABLISHED
          }
        } else {
          if (st == 4) {           # ESTABLISHED
            if ((pkt.tcp_flags & 1) != 0) {
              _tcp[fl] = 7;        # CLOSE_WAIT on FIN
            } else {
              if ((pkt.tcp_flags & 4) != 0) {
                del _tcp[fl];      # RST tears down
                del _backend[fl];
              } else {
                # ProcessDataMsg: relay to the chosen backend.
                %s = pkt.payload;
                %s
                b = _backend[fl];
                pkt.ip_src = pkt.ip_dst;
                pkt.ip_dst = b[0];
                pkt.sport = pkt.dport;
                pkt.dport = b[1];
                pkt.payload = %s;
                send(pkt);
              }
            }
          } else {
            if (st == 7) {         # CLOSE_WAIT: final teardown
              del _tcp[fl];
              del _backend[fl];
            }
          }
        }
      }
    }
  }
}
|}
      globals_src (e af.listen_port) af.conn_var (splice af.accept_stmts) (e af.backend)
      af.buf_var (splice af.data_stmts) (e af.out_expr)
  in
  Parser.program src

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

(** Normalize any recognized structure to canonical single-loop form and
    inline user functions. This is the front door used by the NFactor
    pipeline. *)
let canonicalize (p : Ast.program) =
  let p =
    match detect p with
    | Single_loop -> p
    | Callback -> callback_to_loop p
    | Consumer_producer -> fuse_consumer_producer p
    | Nested_loop -> unfold_accept_fork p
  in
  Inline.program p

(** The canonical packet loop of a normalized program: the loop
    statement, its body and the packet variable bound by [recv()]. *)
let packet_loop (p : Ast.program) =
  let found = ref None in
  Ast.iter_stmts
    (fun s ->
      match (s.Ast.kind, !found) with
      | Ast.While (_, body), None -> (
          match List.find_map Builtins.pkt_input_var body with
          | Some pkt_var -> found := Some (s, body, pkt_var)
          | None -> ())
      | _ -> ())
    p.main;
  match !found with
  | Some r -> r
  | None -> raise (Not_applicable "no packet-processing loop (while containing pkt = recv())")
