(** Pretty-printer: renders AST back to parseable NFL source. Also
    renders slices (non-slice statements become comments, mirroring
    the paper's highlighted Figure-1 listing). *)

val binop_str : Ast.binop -> string

val expr : ?ctx:int -> Ast.expr -> string
(** Parseable rendering; [ctx] is the ambient precedence (used
    internally for minimal parenthesization, matching the parser's
    associativity). *)

val lvalue : Ast.lvalue -> string

val program : ?slice:int list -> Ast.program -> string
(** Render a whole program. With [slice], statements whose id is not
    listed print as ["# [pruned] ..."] comments. *)

val stmt_to_string : Ast.stmt -> string
(** One statement (compound statements include their bodies). *)
