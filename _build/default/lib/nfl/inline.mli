(** Interprocedural analysis by bounded call-site inlining: NF code has
    no recursion, so inlining every user-function call reduces
    interprocedural slicing to one flat procedure. Early returns are
    eliminated with the standard live-flag transformation. *)

exception Recursive of string
(** Call nesting exceeded the bound — (mutual) recursion. *)

exception Unsupported_call of string * Ast.pos
(** A user-function call nested inside an expression (calls are
    supported as statements and as whole right-hand sides). *)

val program : Ast.program -> Ast.program
(** Inline every user-function call reachable from [main]; the result
    has no functions and dense pre-order statement ids. *)
