(** Static sanity checks over NFL programs.

    These are deliberately lightweight — NFL is dynamically typed like
    the Python-level NF code in the paper — but they catch the mistakes
    that would otherwise surface as confusing analysis results:
    references to variables that are never defined, calls to unknown
    functions, and user calls in positions the inliner rejects. *)

type issue = { pos : Ast.pos; msg : string }

let pp_issue ppf i = Fmt.pf ppf "%d:%d: %s" i.pos.Ast.line i.pos.Ast.col i.msg

module Sset = Ast.Sset

let defined_names (p : Ast.program) =
  let names = ref Sset.empty in
  let add x = names := Sset.add x !names in
  Ast.iter_program
    (fun s ->
      match s.Ast.kind with
      | Ast.Assign (Ast.L_var x, _) -> add x
      | Ast.For_in (x, _, _) -> add x
      | Ast.Assign _ | Ast.If _ | Ast.While _ | Ast.Return _ | Ast.Expr _ | Ast.Delete _
      | Ast.Pass ->
          ())
    p;
  List.iter
    (fun (f : Ast.func) ->
      List.iter add f.params;
      (* Function names are valid variable references: callback-style
         builtins take them as arguments (sniff(cb), spawn(loop)). *)
      add f.fname)
    p.funcs;
  !names

(** All issues found in [p]: unknown functions, unbound variables
    (modulo dynamic definition order, which we do not model), arity
    errors against user functions. *)
let program (p : Ast.program) =
  let issues = ref [] in
  let report pos msg = issues := { pos; msg } :: !issues in
  let defined = defined_names p in
  let user_funcs = List.map (fun (f : Ast.func) -> (f.Ast.fname, List.length f.Ast.params)) p.funcs in
  let check_expr pos e =
    Sset.iter
      (fun x -> if not (Sset.mem x defined) then report pos ("unbound variable: " ^ x))
      (Ast.expr_vars e);
    List.iter
      (fun f ->
        match List.assoc_opt f user_funcs with
        | Some _ -> ()
        | None -> if not (Builtins.is_builtin f) then report pos ("unknown function: " ^ f))
      (Ast.expr_calls e)
  in
  let check_arity pos e =
    match e with
    | Ast.Call (f, args) -> (
        match List.assoc_opt f user_funcs with
        | Some n when n <> List.length args ->
            report pos
              (Printf.sprintf "%s expects %d argument(s), got %d" f n (List.length args))
        | Some _ | None -> ())
    | _ -> ()
  in
  Ast.iter_program
    (fun s ->
      let pos = s.Ast.pos in
      match s.Ast.kind with
      | Ast.Assign (lv, e) ->
          (match lv with
          | Ast.L_index (d, k) ->
              if not (Sset.mem d defined) then report pos ("unbound variable: " ^ d);
              check_expr pos k
          | Ast.L_field (v, f) ->
              if not (Sset.mem v defined) then report pos ("unbound variable: " ^ v);
              if not (Packet.Headers.is_field f) then report pos ("unknown packet field: " ^ f)
          | Ast.L_var _ -> ());
          check_expr pos e;
          check_arity pos e
      | Ast.If (c, _, _) | Ast.While (c, _) | Ast.For_in (_, c, _) -> check_expr pos c
      | Ast.Return (Some e) -> check_expr pos e
      | Ast.Expr e ->
          check_expr pos e;
          check_arity pos e
      | Ast.Delete (d, k) ->
          if not (Sset.mem d defined) then report pos ("unbound variable: " ^ d);
          check_expr pos k
      | Ast.Return None | Ast.Pass -> ())
    p;
  List.rev !issues

(** Raise [Failure] with a readable report if [p] has issues. *)
let assert_ok p =
  match program p with
  | [] -> ()
  | issues ->
      let msg = String.concat "\n" (List.map (Fmt.str "%a" pp_issue) issues) in
      failwith ("NFL check failed:\n" ^ msg)
