lib/nfl/parser.ml: Array Ast Lexer List Printf
