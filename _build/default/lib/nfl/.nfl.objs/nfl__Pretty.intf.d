lib/nfl/pretty.mli: Ast
