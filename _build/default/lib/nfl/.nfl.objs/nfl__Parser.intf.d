lib/nfl/parser.mli: Ast
