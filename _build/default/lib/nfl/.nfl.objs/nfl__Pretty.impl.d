lib/nfl/pretty.ml: Ast Buffer List Printf String
