lib/nfl/lexer.mli: Ast
