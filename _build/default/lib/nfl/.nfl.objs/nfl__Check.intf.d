lib/nfl/check.mli: Ast Format
