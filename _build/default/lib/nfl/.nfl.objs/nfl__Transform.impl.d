lib/nfl/transform.ml: Ast Builtins Inline List Parser Pretty Printf String
