lib/nfl/check.ml: Ast Builtins Fmt List Packet Printf String
