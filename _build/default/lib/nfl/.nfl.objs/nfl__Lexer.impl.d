lib/nfl/lexer.ml: Ast Buffer List Packet Printf String
