lib/nfl/inline.mli: Ast
