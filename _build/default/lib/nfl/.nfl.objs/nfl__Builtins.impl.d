lib/nfl/builtins.ml: Ast List
