lib/nfl/ast.ml: List Set String
