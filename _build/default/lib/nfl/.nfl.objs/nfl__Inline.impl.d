lib/nfl/inline.ml: Ast List Option Printf
