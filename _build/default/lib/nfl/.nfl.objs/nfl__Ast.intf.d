lib/nfl/ast.mli: Set
