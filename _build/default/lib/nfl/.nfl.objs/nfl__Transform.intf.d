lib/nfl/transform.mli: Ast
