lib/nfl/builtins.mli: Ast
