(** Code-structure normalization (paper Section 3.2, Figures 4-5):
    rewrites the callback, consumer-producer and nested accept/fork
    structures into the canonical single packet loop, including the
    template-directed TCP unfolding that makes the OS's hidden
    per-connection state explicit. *)

exception Not_applicable of string

type structure =
  | Single_loop  (** Fig. 4a — already canonical *)
  | Callback  (** Fig. 4b *)
  | Consumer_producer  (** Fig. 4c *)
  | Nested_loop  (** Fig. 4d *)

val structure_to_string : structure -> string

val detect : Ast.program -> structure
(** Classify [main]'s code structure.
    @raise Not_applicable when no known structure matches. *)

val callback_to_loop : Ast.program -> Ast.program
(** [sniff(cb);] becomes [while (true) { pkt = recv(); cb(pkt); }]. *)

val fuse_consumer_producer : Ast.program -> Ast.program
(** Fuse the two [spawn]ed loops into one, eliminating the queue; the
    spawned functions remain for the inliner to flatten. *)

(** Components matched in an accept/fork nested loop. *)
type accept_fork = {
  listen_port : Ast.expr;
  conn_var : string;  (** [accept]'s target; becomes the client 4-tuple *)
  accept_stmts : Ast.block;  (** per-connection setup (backend selection) *)
  backend : Ast.expr;  (** argument of [connect] *)
  data_stmts : Ast.block;  (** per-data-segment statements *)
  buf_var : string;  (** variable bound by [sock_recv] *)
  out_expr : Ast.expr;  (** payload passed to [sock_send] *)
}

val match_accept_fork : Ast.program -> accept_fork
(** @raise Not_applicable when the Figure-3 shape is absent. *)

val unfold_accept_fork : Ast.program -> Ast.program
(** Figure 3 → Figure 5: socket calls become packet-level operations
    plus an explicit [_tcp] state table and [_backend] map; control
    segments drive the TCP machine, data relays only in
    ESTABLISHED. *)

val canonicalize : Ast.program -> Ast.program
(** Normalize any recognized structure and inline user functions — the
    front door of the NFactor pipeline. *)

val packet_loop : Ast.program -> Ast.stmt * Ast.block * string
(** The canonical packet loop: the loop statement, its body, and the
    packet variable bound by [recv()].
    @raise Not_applicable when absent. *)
