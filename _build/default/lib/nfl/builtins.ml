(** Builtin functions of the NFL runtime.

    The paper's Algorithm 1 keys on two facts about NF code: packets
    enter through a known input function and leave through a known
    output function ("NF programs usually use standard library or system
    functions to exchange packets with the OS kernel"). This module is
    that knowledge base: it names the packet I/O functions, the socket
    functions the TCP-unfolding transform rewrites, and the pure
    builtins ([hash], [len], ...) the interpreter and symbolic executor
    implement directly. *)

(* Packet I/O — the anchors of Algorithm 1. *)
let pkt_input = "recv" (* pkt = recv(); *)
let pkt_output = "send" (* send(pkt); *)
let pkt_drop = "drop" (* drop(); explicit drop, same as falling off the path *)

(* Callback-style input (Figure 4b): sniff(callback_name). *)
let sniff = "sniff"

(* Consumer-producer builtins (Figure 4c). *)
let queue_push = "queue_push"
let queue_pop = "queue_pop"
let spawn = "spawn"

(* Socket layer (Figure 4d / Figure 3) — removed by Transform.unfold_sockets. *)
let sock_listen = "listen"
let sock_accept = "accept"
let sock_connect = "connect"
let sock_recv = "sock_recv"
let sock_send = "sock_send"
let sock_close = "sock_close"
let fork = "fork"

let socket_funcs = [ sock_listen; sock_accept; sock_connect; sock_recv; sock_send; sock_close; fork ]

(* Pure builtins, available to the interpreter and symbolic executor. *)
let pure = [ "hash"; "len"; "min"; "max"; "abs"; "tuple_get"; "str_contains"; "str_prefix" ]

(* Effectful-but-ignorable builtins: logging and alerting sinks. They
   take any arguments, return nothing, and never touch a packet — so
   they are exactly the statements slicing prunes. *)
let log_sinks = [ "log"; "alert"; "log_pkt"; "perf_counter" ]

let is_pure f = List.mem f pure
let is_log_sink f = List.mem f log_sinks
let is_socket f = List.mem f socket_funcs

let is_builtin f =
  f = pkt_input || f = pkt_output || f = pkt_drop || f = sniff || f = queue_push || f = queue_pop
  || f = spawn || is_socket f || is_pure f || is_log_sink f

(** Does this statement emit a packet? (Algorithm 1, line 2.) *)
let is_pkt_output_stmt (s : Ast.stmt) =
  match s.Ast.kind with
  | Ast.Expr (Ast.Call (f, _)) -> f = pkt_output
  | Ast.Assign _ | Ast.If _ | Ast.While _ | Ast.For_in _ | Ast.Return _ | Ast.Expr _
  | Ast.Delete _ | Ast.Pass ->
      false

(** Does this statement bind the incoming packet? ([x = recv();]) *)
let is_pkt_input_stmt (s : Ast.stmt) =
  match s.Ast.kind with
  | Ast.Assign (Ast.L_var _, Ast.Call (f, [])) -> f = pkt_input
  | Ast.Assign _ | Ast.If _ | Ast.While _ | Ast.For_in _ | Ast.Return _ | Ast.Expr _
  | Ast.Delete _ | Ast.Pass ->
      false

let pkt_input_var (s : Ast.stmt) =
  match s.Ast.kind with
  | Ast.Assign (Ast.L_var x, Ast.Call (f, [])) when f = pkt_input -> Some x
  | Ast.Assign _ | Ast.If _ | Ast.While _ | Ast.For_in _ | Ast.Return _ | Ast.Expr _
  | Ast.Delete _ | Ast.Pass ->
      None
