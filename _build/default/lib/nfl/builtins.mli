(** Builtin functions of the NFL runtime — the knowledge base
    Algorithm 1 keys on: packet I/O anchors, socket functions the TCP
    unfolding rewrites, pure builtins, and log sinks. *)

(** {1 Packet I/O (the anchors of Algorithm 1)} *)

val pkt_input : string
(** ["recv"]: [pkt = recv();]. *)

val pkt_output : string
(** ["send"]: [send(pkt);]. *)

val pkt_drop : string
(** ["drop"]: explicit drop (same semantics as no send). *)

val sniff : string
(** Callback-style input (Figure 4b): [sniff(callback)]. *)

(** {1 Consumer-producer builtins (Figure 4c)} *)

val queue_push : string
val queue_pop : string
val spawn : string

(** {1 Socket layer (Figure 4d; removed by socket unfolding)} *)

val sock_listen : string
val sock_accept : string
val sock_connect : string
val sock_recv : string
val sock_send : string
val sock_close : string
val fork : string
val socket_funcs : string list

(** {1 Pure builtins and log sinks} *)

val pure : string list
(** [hash], [len], [min], [max], [abs], [tuple_get], [str_contains],
    [str_prefix] — implemented by the interpreter and symbolic
    executor. *)

val log_sinks : string list
(** Effectful-but-ignorable: logging and alerting, never touch a
    packet — exactly what slicing prunes. *)

val is_pure : string -> bool
val is_log_sink : string -> bool
val is_socket : string -> bool
val is_builtin : string -> bool

(** {1 Statement recognizers} *)

val is_pkt_output_stmt : Ast.stmt -> bool
(** Does this statement emit a packet? (Algorithm 1, line 2.) *)

val is_pkt_input_stmt : Ast.stmt -> bool
(** Is this [x = recv();]? *)

val pkt_input_var : Ast.stmt -> string option
(** The variable bound by [x = recv();], if any. *)
