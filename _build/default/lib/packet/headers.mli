(** Protocol numbers, TCP flag bits and the packet field-name
    vocabulary shared by the NFL runtime and the model interpreter. *)

(** {1 IANA protocol numbers} *)

val proto_icmp : int
val proto_tcp : int
val proto_udp : int
val proto_to_string : int -> string

(** {1 TCP flag bits (wire encoding)} *)

val fin : int
val syn : int
val rst : int
val psh : int
val ack : int
val urg : int

val has : int -> int -> bool
(** [has flags bit] tests whether [bit] is set in [flags]. *)

val flags_to_string : int -> string
(** ["SYN|ACK"]-style rendering; ["-"] when no flag is set. *)

(** {1 Packet fields visible to NFL programs} *)

val int_fields : string list
(** Integer-valued fields accessible as [pkt.<field>]. *)

val str_fields : string list
(** String-valued fields ([payload]). *)

val is_int_field : string -> bool
val is_str_field : string -> bool
val is_field : string -> bool
