(** Text codec for packet traces: one packet per line
    ([proto src sport dst dport flags ttl len seq ack "payload"]),
    [#] comments and blank lines ignored. Interchange format for
    replaying captured or hand-written traffic through an NF and its
    model. *)

val to_line : Pkt.t -> string

val of_line : string -> Pkt.t
(** @raise Invalid_argument on malformed lines. *)

val to_string : Pkt.t list -> string
val of_string : string -> Pkt.t list

val save : file:string -> Pkt.t list -> unit
val load : file:string -> Pkt.t list
