(** TCP connection state machine — the "hidden state" of socket-level
    NFs (paper Section 3.2).

    Tracks the RFC-793 diagram closely enough that a 3-way handshake is
    required before data flows and FIN/RST teardown is observed;
    sequence-number validation is out of scope, as in the paper. *)

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Last_ack
  | Closing
  | Time_wait

val state_to_string : state -> string
val pp : Format.formatter -> state -> unit
val equal : state -> state -> bool

(** Direction of an observed segment relative to the tracked
    endpoint. *)
type dir = From_peer | To_peer

type event = { dir : dir; flags : int }

val ev : dir -> int -> event

val step : state -> event -> state
(** [step st e] is the successor state; segments invalid for [st]
    leave it unchanged; RST always resets to [Closed]. *)

val valid_data : state -> bool
(** Whether a data segment arriving from the peer is deliverable to
    the application — the behaviour socket NFs inherit from the OS. *)

val to_int : state -> int
(** Stable integer encoding used when the state lives in an NFL
    dictionary (the Figure-5 transformation). *)

val of_int : int -> state
(** @raise Invalid_argument outside [0, 10]. *)

val all_states : state list
