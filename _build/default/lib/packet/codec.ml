(** Text codec for packet traces.

    One packet per line, whitespace-separated:

    {v
    <proto> <src> <sport> <dst> <dport> <flags> <ttl> <len> <seq> <ack> <payload>
    v}

    where [proto] is [tcp]/[udp]/[icmp] or a number, addresses are
    dotted quads, flags render like [SYN|ACK] (or [-]), and the payload
    is an OCaml-escaped quoted string. Lines starting with [#] and
    blank lines are ignored. The format is the interchange for replay
    experiments: captured or hand-written traces driven through an NF
    and its model. *)

let proto_of_string = function
  | "tcp" -> Headers.proto_tcp
  | "udp" -> Headers.proto_udp
  | "icmp" -> Headers.proto_icmp
  | s -> (
      match int_of_string_opt s with
      | Some n -> n
      | None -> invalid_arg ("Codec: bad protocol " ^ s))

let flags_of_string s =
  if s = "-" then 0
  else
    String.split_on_char '|' s
    |> List.fold_left
         (fun acc part ->
           let bit =
             match part with
             | "SYN" -> Headers.syn
             | "ACK" -> Headers.ack
             | "FIN" -> Headers.fin
             | "RST" -> Headers.rst
             | "PSH" -> Headers.psh
             | "URG" -> Headers.urg
             | p -> (
                 match int_of_string_opt p with
                 | Some n -> n
                 | None -> invalid_arg ("Codec: bad flag " ^ p))
           in
           acc lor bit)
         0

(** Render one packet as a trace line. *)
let to_line (p : Pkt.t) =
  Printf.sprintf "%s %s %d %s %d %s %d %d %d %d %S"
    (Headers.proto_to_string p.Pkt.ip_proto)
    (Addr.to_string p.Pkt.ip_src) p.Pkt.sport (Addr.to_string p.Pkt.ip_dst) p.Pkt.dport
    (Headers.flags_to_string p.Pkt.tcp_flags)
    p.Pkt.ip_ttl p.Pkt.ip_len p.Pkt.seq p.Pkt.ack p.Pkt.payload

(** Parse one trace line.
    @raise Invalid_argument on malformed lines. *)
let of_line line =
  (* The payload is a quoted suffix; split the head fields first. *)
  let line = String.trim line in
  match String.index_opt line '"' with
  | None -> invalid_arg "Codec: missing payload field"
  | Some qpos ->
      let head = String.trim (String.sub line 0 qpos) in
      let quoted = String.sub line qpos (String.length line - qpos) in
      let payload = Scanf.sscanf quoted "%S" (fun s -> s) in
      (match String.split_on_char ' ' head |> List.filter (fun s -> s <> "") with
      | [ proto; src; sport; dst; dport; flags; ttl; len; seq; ack ] ->
          Pkt.make ~ip_proto:(proto_of_string proto) ~ip_src:(Addr.of_string src)
            ~sport:(int_of_string sport) ~ip_dst:(Addr.of_string dst)
            ~dport:(int_of_string dport) ~tcp_flags:(flags_of_string flags)
            ~ip_ttl:(int_of_string ttl) ~ip_len:(int_of_string len) ~seq:(int_of_string seq)
            ~ack:(int_of_string ack) ~payload ()
      | _ -> invalid_arg ("Codec: malformed line: " ^ line))

(** Render a whole trace (with a header comment). *)
let to_string pkts =
  let b = Buffer.create 1024 in
  Buffer.add_string b "# nfactor packet trace: proto src sport dst dport flags ttl len seq ack payload\n";
  List.iter
    (fun p ->
      Buffer.add_string b (to_line p);
      Buffer.add_char b '\n')
    pkts;
  Buffer.contents b

(** Parse a whole trace; [#] comments and blank lines are skipped. *)
let of_string text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let t = String.trim line in
         if t = "" || t.[0] = '#' then None else Some (of_line t))

let save ~file pkts =
  let oc = open_out file in
  output_string oc (to_string pkts);
  close_out oc

let load ~file =
  let ic = open_in file in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  of_string text
