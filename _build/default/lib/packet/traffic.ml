(** Synthetic workload generation.

    Stands in for the paper's live traffic: the accuracy experiment
    (Section 5) feeds 1000 random packets to both the original program
    and the extracted model; the corpus NFs additionally need realistic
    *flow-structured* traffic (handshakes followed by data) to exercise
    their stateful paths. All generators are deterministic given the
    seed. *)

type profile = {
  client_ips : Addr.ip list;  (** source pool for inbound packets *)
  server_ips : Addr.ip list;  (** destination pool / virtual IPs *)
  server_ports : Addr.port list;
  payloads : string list;  (** payload pool (some may match IDS rules) *)
}

let default_profile =
  {
    client_ips = List.init 8 (fun i -> Addr.ip 10 0 0 (i + 1));
    server_ips = [ Addr.ip 3 3 3 3 ];
    server_ports = [ 80; 443; 8080 ];
    payloads = [ ""; "GET / HTTP/1.0"; "USER root"; "hello"; "\x90\x90\x90"; "SELECT * FROM" ];
  }

(** Fully random packet: uniform fields from the profile pools, random
    flags and ports. This is the "random inputs" generator used by the
    accuracy experiment. *)
let random_pkt rng profile =
  let flags =
    Rng.pick rng
      [ Headers.syn; Headers.syn lor Headers.ack; Headers.ack; Headers.ack lor Headers.psh; Headers.fin lor Headers.ack; Headers.rst; 0 ]
  in
  let inbound = Rng.bool rng in
  let client = Rng.pick rng profile.client_ips in
  let server = Rng.pick rng profile.server_ips in
  let sport = 1024 + Rng.int rng 60000 in
  let dport = Rng.pick rng profile.server_ports in
  if inbound then
    Pkt.make ~ip_src:client ~ip_dst:server ~sport ~dport ~tcp_flags:flags
      ~payload:(Rng.pick rng profile.payloads) ()
  else
    Pkt.make ~ip_src:server ~ip_dst:client ~sport:dport ~dport:sport ~tcp_flags:flags
      ~payload:(Rng.pick rng profile.payloads) ()

(** [random_stream ~seed ~n profile] is [n] independent random packets. *)
let random_stream ?(profile = default_profile) ~seed ~n () =
  let rng = Rng.create seed in
  List.init n (fun _ -> random_pkt rng profile)

(** One complete client->server conversation: SYN, SYN/ACK (reverse
    direction), ACK, then [data_pkts] PSH/ACK data segments, then
    FIN/ACK exchange. Useful for driving stateful NFs through their
    "existing connection" entries. *)
let conversation ~client ~cport ~server ~sport ~data_pkts ~payload =
  let fwd ?(flags = Headers.ack) ?(pl = "") () =
    Pkt.make ~ip_src:client ~ip_dst:server ~sport:cport ~dport:sport ~tcp_flags:flags ~payload:pl ()
  in
  let rev ?(flags = Headers.ack) ?(pl = "") () =
    Pkt.make ~ip_src:server ~ip_dst:client ~sport ~dport:cport ~tcp_flags:flags ~payload:pl ()
  in
  let handshake = [ fwd ~flags:Headers.syn (); rev ~flags:(Headers.syn lor Headers.ack) (); fwd () ] in
  let data =
    List.concat
      (List.init data_pkts (fun _ ->
           [ fwd ~flags:(Headers.ack lor Headers.psh) ~pl:payload (); rev () ]))
  in
  let teardown = [ fwd ~flags:(Headers.fin lor Headers.ack) (); rev ~flags:(Headers.fin lor Headers.ack) (); fwd () ] in
  handshake @ data @ teardown

(** Interleaved flow-structured workload: [flows] conversations whose
    packets are emitted round-robin, mimicking concurrent clients. *)
let flow_stream ?(profile = default_profile) ~seed ~flows ~data_pkts () =
  let rng = Rng.create seed in
  let convs =
    List.init flows (fun _ ->
        conversation
          ~client:(Rng.pick rng profile.client_ips)
          ~cport:(1024 + Rng.int rng 60000)
          ~server:(Rng.pick rng profile.server_ips)
          ~sport:(Rng.pick rng profile.server_ports)
          ~data_pkts
          ~payload:(Rng.pick rng profile.payloads))
  in
  (* Round-robin interleave until all conversations are drained. *)
  let rec interleave acc convs =
    let heads, tails =
      List.fold_right
        (fun conv (hs, ts) ->
          match conv with [] -> (hs, ts) | p :: rest -> (p :: hs, rest :: ts))
        convs ([], [])
    in
    match heads with [] -> List.rev acc | _ -> interleave (List.rev_append heads acc) tails
  in
  interleave [] convs
