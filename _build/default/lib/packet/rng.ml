(** Deterministic pseudo-random number generator (SplitMix64).

    Library code must be reproducible, so every randomized component
    (workload generation, differential testing) threads an explicit
    generator seeded by the caller instead of touching global state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* SplitMix64 step: Stafford's mix13 finalizer over a golden-gamma
   counter. Public-domain reference constants. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
let int t bound =
  assert (bound > 0);
  (* Drop two high bits so the value fits OCaml's 63-bit native int as a
     non-negative number. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** [pick t xs] chooses a uniform element of the non-empty list [xs]. *)
let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

(** Independent child generator; lets callers fan out reproducible
    sub-streams. *)
let split t = create (Int64.to_int (next_int64 t))
