(** Transport-level flows: 4-tuples and direction handling. NF state
    tables (NAT mappings, pinholes, LB translations) are keyed by
    values of this type. *)

type four_tuple = { src : Addr.ip; sport : Addr.port; dst : Addr.ip; dport : Addr.port }

val make : src:Addr.ip -> sport:Addr.port -> dst:Addr.ip -> dport:Addr.port -> four_tuple

val of_pkt : Pkt.t -> four_tuple
(** The 4-tuple of a packet as seen on the wire. *)

val reverse : four_tuple -> four_tuple
(** The 4-tuple of the opposite direction of the same conversation. *)

val canonical : four_tuple -> four_tuple
(** Direction-independent key: the smaller of a tuple and its reverse,
    so both directions map to one connection-table entry. *)

val equal : four_tuple -> four_tuple -> bool
val compare : four_tuple -> four_tuple -> int
val pp : Format.formatter -> four_tuple -> unit
val to_string : four_tuple -> string

module Map : Map.S with type key = four_tuple
module Set : Set.S with type elt = four_tuple
