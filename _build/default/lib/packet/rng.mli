(** Deterministic pseudo-random number generator (SplitMix64).

    Every randomized component (workload generation, differential
    testing) threads an explicit generator seeded by the caller, so
    experiments are reproducible by construction. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds yield equal
    streams. *)

val next_int64 : t -> int64
(** Raw 64-bit step (SplitMix64 with Stafford's mix13 finalizer). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** [pick t xs] chooses a uniform element of [xs].
    @raise Invalid_argument on the empty list. *)

val split : t -> t
(** Independent child generator, for reproducible sub-streams. *)
