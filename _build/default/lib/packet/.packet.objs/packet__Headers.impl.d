lib/packet/headers.ml: List String
