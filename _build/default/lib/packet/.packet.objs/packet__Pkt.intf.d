lib/packet/pkt.mli: Addr Format
