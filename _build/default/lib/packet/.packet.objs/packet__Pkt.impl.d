lib/packet/pkt.ml: Addr Fmt Headers Printf Stdlib
