lib/packet/headers.mli:
