lib/packet/traffic.mli: Addr Pkt Rng
