lib/packet/codec.ml: Addr Buffer Headers List Pkt Printf Scanf String
