lib/packet/tcp_fsm.ml: Fmt Headers
