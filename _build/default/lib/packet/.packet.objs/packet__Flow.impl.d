lib/packet/flow.ml: Addr Fmt Map Pkt Set Stdlib
