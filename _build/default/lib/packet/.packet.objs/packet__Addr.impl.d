lib/packet/addr.ml: Fmt Printf String
