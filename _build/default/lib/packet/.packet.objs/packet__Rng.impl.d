lib/packet/rng.ml: Int64 List
