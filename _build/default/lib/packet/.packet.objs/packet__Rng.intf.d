lib/packet/rng.mli:
