lib/packet/traffic.ml: Addr Headers List Pkt Rng
