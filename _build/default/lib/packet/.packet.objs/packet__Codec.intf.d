lib/packet/codec.mli: Pkt
