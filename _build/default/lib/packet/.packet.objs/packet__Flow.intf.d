lib/packet/flow.mli: Addr Format Map Pkt Set
