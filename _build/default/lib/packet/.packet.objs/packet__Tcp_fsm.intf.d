lib/packet/tcp_fsm.mli: Format
