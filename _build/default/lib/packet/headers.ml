(** Protocol numbers, TCP flag bits and well-known field names shared by
    the packet representation, the NFL interpreter and the model
    interpreter. *)

(* IANA protocol numbers for the protocols the corpus cares about. *)
let proto_icmp = 1
let proto_tcp = 6
let proto_udp = 17

let proto_to_string p =
  if p = proto_icmp then "icmp"
  else if p = proto_tcp then "tcp"
  else if p = proto_udp then "udp"
  else string_of_int p

(* TCP flag bits, standard wire encoding. *)
let fin = 0x01
let syn = 0x02
let rst = 0x04
let psh = 0x08
let ack = 0x10
let urg = 0x20

let has flags bit = flags land bit <> 0

let flags_to_string flags =
  let parts =
    List.filter_map
      (fun (bit, name) -> if has flags bit then Some name else None)
      [ (syn, "SYN"); (ack, "ACK"); (fin, "FIN"); (rst, "RST"); (psh, "PSH"); (urg, "URG") ]
  in
  match parts with [] -> "-" | _ -> String.concat "|" parts

(** Field names exposed to NFL programs via [pkt.<field>]. Integer-valued
    except [payload], which is a string. *)
let int_fields =
  [ "ip_src"; "ip_dst"; "ip_proto"; "ip_ttl"; "ip_len"; "sport"; "dport"; "tcp_flags"; "seq"; "ack" ]

let str_fields = [ "payload" ]

let is_int_field f = List.mem f int_fields
let is_str_field f = List.mem f str_fields
let is_field f = is_int_field f || is_str_field f
