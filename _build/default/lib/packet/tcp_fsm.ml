(** TCP connection state machine.

    Section 3.2 of the paper ("Hidden States") observes that socket-level
    NFs such as [balance] rely on state the OS keeps for them: each TCP
    connection walks the LISTEN / SYN_RCVD / ESTABLISHED / ... diagram,
    and data segments without an established handshake never reach the
    application. NFactor handles these NFs by *unfolding* the socket
    calls into packet-level operations plus this state machine.

    The machine here is the passive-open + active-open subset sufficient
    for middlebox modelling: we track enough of RFC 793's diagram that a
    3-way handshake is required before data flows and FIN/RST teardown is
    observed. Sequence-number validation is deliberately out of scope, as
    in the paper. *)

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Last_ack
  | Closing
  | Time_wait

let state_to_string = function
  | Closed -> "CLOSED"
  | Listen -> "LISTEN"
  | Syn_sent -> "SYN_SENT"
  | Syn_rcvd -> "SYN_RCVD"
  | Established -> "ESTABLISHED"
  | Fin_wait_1 -> "FIN_WAIT_1"
  | Fin_wait_2 -> "FIN_WAIT_2"
  | Close_wait -> "CLOSE_WAIT"
  | Last_ack -> "LAST_ACK"
  | Closing -> "CLOSING"
  | Time_wait -> "TIME_WAIT"

let pp ppf s = Fmt.string ppf (state_to_string s)
let equal (a : state) (b : state) = a = b

(** Events are observed segments, tagged with the direction relative to
    the endpoint whose state we track: [`From_peer] segments arrive at
    the endpoint, [`To_peer] segments are emitted by it. *)
type dir = From_peer | To_peer

type event = { dir : dir; flags : int }

let ev dir flags = { dir; flags }

(* Flag predicates on an event. *)
let is_syn e = Headers.has e.flags Headers.syn && not (Headers.has e.flags Headers.ack)
let is_syn_ack e = Headers.has e.flags Headers.syn && Headers.has e.flags Headers.ack
let is_ack e = Headers.has e.flags Headers.ack && not (Headers.has e.flags Headers.syn)
let is_fin e = Headers.has e.flags Headers.fin
let is_rst e = Headers.has e.flags Headers.rst

(** [step st e] is the successor state after observing [e] in [st].
    Segments that are invalid for the current state leave it unchanged
    (a real stack would drop or RST them; [valid_data] below is how NFs
    ask whether a data segment would be accepted). *)
let step st e =
  if is_rst e then Closed
  else
    match (st, e.dir) with
    | Closed, To_peer when is_syn e -> Syn_sent
    | Listen, From_peer when is_syn e -> Syn_rcvd
    | Syn_sent, From_peer when is_syn_ack e -> Established
    | Syn_sent, From_peer when is_syn e -> Syn_rcvd (* simultaneous open *)
    | Syn_rcvd, From_peer when is_ack e -> Established
    | Established, To_peer when is_fin e -> Fin_wait_1
    | Established, From_peer when is_fin e -> Close_wait
    | Fin_wait_1, From_peer when is_fin e && is_ack e -> Time_wait
    | Fin_wait_1, From_peer when is_fin e -> Closing
    | Fin_wait_1, From_peer when is_ack e -> Fin_wait_2
    | Fin_wait_2, From_peer when is_fin e -> Time_wait
    | Close_wait, To_peer when is_fin e -> Last_ack
    | Last_ack, From_peer when is_ack e -> Closed
    | Closing, From_peer when is_ack e -> Time_wait
    | ( ( Closed | Listen | Syn_sent | Syn_rcvd | Established | Fin_wait_1 | Fin_wait_2
        | Close_wait | Last_ack | Closing | Time_wait ),
        _ ) ->
        st

(** Whether a plain data segment arriving from the peer is deliverable to
    the application in state [st] — the "hidden state" behaviour that
    socket-level NFs inherit from the OS. *)
let valid_data = function
  | Established | Fin_wait_1 | Fin_wait_2 | Close_wait -> true
  | Closed | Listen | Syn_sent | Syn_rcvd | Last_ack | Closing | Time_wait -> false

(** Integer encoding used when the state lives inside an NFL dictionary
    (the Figure-5 transformation stores TCP state per 4-tuple). *)
let to_int = function
  | Closed -> 0
  | Listen -> 1
  | Syn_sent -> 2
  | Syn_rcvd -> 3
  | Established -> 4
  | Fin_wait_1 -> 5
  | Fin_wait_2 -> 6
  | Close_wait -> 7
  | Last_ack -> 8
  | Closing -> 9
  | Time_wait -> 10

let of_int = function
  | 0 -> Closed
  | 1 -> Listen
  | 2 -> Syn_sent
  | 3 -> Syn_rcvd
  | 4 -> Established
  | 5 -> Fin_wait_1
  | 6 -> Fin_wait_2
  | 7 -> Close_wait
  | 8 -> Last_ack
  | 9 -> Closing
  | 10 -> Time_wait
  | n -> invalid_arg ("Tcp_fsm.of_int: " ^ string_of_int n)

let all_states =
  [ Closed; Listen; Syn_sent; Syn_rcvd; Established; Fin_wait_1; Fin_wait_2; Close_wait; Last_ack; Closing; Time_wait ]
