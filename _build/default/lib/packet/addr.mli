(** IPv4 addresses and ports.

    Addresses are non-negative integers in host order; the analyses
    only need equality, ordering and prefix matching, so a plain [int]
    keeps client code simple and allocation-free. *)

type ip = int

val ip_max : int
(** Largest representable address, [255.255.255.255]. *)

val ip : int -> int -> int -> int -> ip
(** [ip a b c d] is the address [a.b.c.d]. Octets must be in
    [0, 255]. *)

val of_string : string -> ip
(** [of_string "1.2.3.4"] parses a dotted quad.
    @raise Invalid_argument on malformed input. *)

val octet : ip -> int -> int
(** [octet addr i] is the [i]-th octet, most significant first
    ([0 <= i <= 3]). *)

val to_string : ip -> string
val pp : Format.formatter -> ip -> unit

val mask_of_prefix : int -> ip
(** [mask_of_prefix n] is the netmask with [n] leading one bits,
    [0 <= n <= 32]. *)

val in_prefix : ip -> network:ip -> prefix:int -> bool
(** [in_prefix addr ~network ~prefix] tests membership of [addr] in
    [network/prefix]. *)

type port = int

val valid_port : port -> bool
(** [valid_port p] is [true] iff [0 <= p < 65536]. *)
