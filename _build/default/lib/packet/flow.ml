(** Transport-level flows: 4-tuples and direction handling.

    The NFactor model matches flows by their 4-tuple; NF state tables in
    the corpus (NAT mappings, firewall pinholes, load-balancer
    translations) are keyed by values of this type. *)

type four_tuple = { src : Addr.ip; sport : Addr.port; dst : Addr.ip; dport : Addr.port }

let make ~src ~sport ~dst ~dport = { src; sport; dst; dport }

(** 4-tuple of a packet as seen on the wire. *)
let of_pkt (p : Pkt.t) = { src = p.ip_src; sport = p.sport; dst = p.ip_dst; dport = p.dport }

(** The 4-tuple of the reverse direction of the same conversation. *)
let reverse t = { src = t.dst; sport = t.dport; dst = t.src; dport = t.sport }

let equal (a : four_tuple) (b : four_tuple) = a = b
let compare (a : four_tuple) (b : four_tuple) = Stdlib.compare a b

(** Direction-independent key: the lexicographically smaller of a tuple
    and its reverse, so both directions of a conversation map to the same
    entry (useful for connection tables). *)
let canonical t =
  let r = reverse t in
  if compare t r <= 0 then t else r

let pp ppf t = Fmt.pf ppf "%a:%d>%a:%d" Addr.pp t.src t.sport Addr.pp t.dst t.dport
let to_string t = Fmt.str "%a" pp t

module Map = Map.Make (struct
  type t = four_tuple

  let compare = compare
end)

module Set = Set.Make (struct
  type t = four_tuple

  let compare = compare
end)
