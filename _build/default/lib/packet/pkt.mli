(** Concrete network packets: a flat record of the header fields NF
    programs inspect. Field access is by name, using the vocabulary in
    {!Headers}. *)

type t = {
  ip_src : Addr.ip;
  ip_dst : Addr.ip;
  ip_proto : int;
  ip_ttl : int;
  ip_len : int;
  sport : Addr.port;
  dport : Addr.port;
  tcp_flags : int;
  seq : int;
  ack : int;
  payload : string;
}

val make :
  ?ip_proto:int ->
  ?ip_ttl:int ->
  ?ip_len:int ->
  ?tcp_flags:int ->
  ?seq:int ->
  ?ack:int ->
  ?payload:string ->
  ip_src:Addr.ip ->
  ip_dst:Addr.ip ->
  sport:Addr.port ->
  dport:Addr.port ->
  unit ->
  t
(** Defaults: TCP, TTL 64, length 60, no flags, empty payload. *)

val get_int : t -> string -> int
(** [get_int p field] reads an integer field by name.
    @raise Invalid_argument on unknown or non-integer fields. *)

val set_int : t -> string -> int -> t
val get_str : t -> string -> string
val set_str : t -> string -> string -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
