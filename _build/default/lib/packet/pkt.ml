(** Concrete network packets.

    A packet is a flat record of the header fields NF programs inspect:
    the IP header, the transport ports, TCP flags/sequence numbers and an
    opaque payload string. NFL programs read and write fields by name
    ([get_int], [set_int]); the field-name vocabulary lives in
    {!Headers}. *)

type t = {
  ip_src : Addr.ip;
  ip_dst : Addr.ip;
  ip_proto : int;
  ip_ttl : int;
  ip_len : int;
  sport : Addr.port;
  dport : Addr.port;
  tcp_flags : int;
  seq : int;
  ack : int;
  payload : string;
}

let make ?(ip_proto = Headers.proto_tcp) ?(ip_ttl = 64) ?(ip_len = 60) ?(tcp_flags = 0) ?(seq = 0)
    ?(ack = 0) ?(payload = "") ~ip_src ~ip_dst ~sport ~dport () =
  { ip_src; ip_dst; ip_proto; ip_ttl; ip_len; sport; dport; tcp_flags; seq; ack; payload }

let get_int p = function
  | "ip_src" -> p.ip_src
  | "ip_dst" -> p.ip_dst
  | "ip_proto" -> p.ip_proto
  | "ip_ttl" -> p.ip_ttl
  | "ip_len" -> p.ip_len
  | "sport" -> p.sport
  | "dport" -> p.dport
  | "tcp_flags" -> p.tcp_flags
  | "seq" -> p.seq
  | "ack" -> p.ack
  | f -> invalid_arg ("Pkt.get_int: not an int field: " ^ f)

let set_int p field v =
  match field with
  | "ip_src" -> { p with ip_src = v }
  | "ip_dst" -> { p with ip_dst = v }
  | "ip_proto" -> { p with ip_proto = v }
  | "ip_ttl" -> { p with ip_ttl = v }
  | "ip_len" -> { p with ip_len = v }
  | "sport" -> { p with sport = v }
  | "dport" -> { p with dport = v }
  | "tcp_flags" -> { p with tcp_flags = v }
  | "seq" -> { p with seq = v }
  | "ack" -> { p with ack = v }
  | f -> invalid_arg ("Pkt.set_int: not an int field: " ^ f)

let get_str p = function
  | "payload" -> p.payload
  | f -> invalid_arg ("Pkt.get_str: not a string field: " ^ f)

let set_str p field v =
  match field with
  | "payload" -> { p with payload = v }
  | f -> invalid_arg ("Pkt.set_str: not a string field: " ^ f)

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let pp ppf p =
  Fmt.pf ppf "%s %a:%d > %a:%d [%s] len=%d ttl=%d%s" (Headers.proto_to_string p.ip_proto) Addr.pp
    p.ip_src p.sport Addr.pp p.ip_dst p.dport
    (Headers.flags_to_string p.tcp_flags)
    p.ip_len p.ip_ttl
    (if p.payload = "" then "" else Printf.sprintf " %S" p.payload)

let to_string p = Fmt.str "%a" pp p
