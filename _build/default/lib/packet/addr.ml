(** IPv4 addresses and ports.

    Addresses are stored as non-negative integers in host order; the
    library never needs wire representation, only equality, ordering and
    prefix matching, so a plain [int] keeps the rest of the code simple. *)

type ip = int

let ip_max = 0xFFFFFFFF

(** [ip a b c d] builds the address [a.b.c.d]. Octets must be in
    [0, 255]. *)
let ip a b c d =
  assert (a >= 0 && a < 256 && b >= 0 && b < 256);
  assert (c >= 0 && c < 256 && d >= 0 && d < 256);
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

(** [of_string "1.2.3.4"] parses a dotted quad. Raises [Invalid_argument]
    on malformed input. *)
let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d) with
      | Some a, Some b, Some c, Some d
        when a >= 0 && a < 256 && b >= 0 && b < 256 && c >= 0 && c < 256 && d >= 0 && d < 256 ->
          ip a b c d
      | _ -> invalid_arg ("Addr.of_string: " ^ s))
  | _ -> invalid_arg ("Addr.of_string: " ^ s)

let octet addr i = (addr lsr ((3 - i) * 8)) land 0xFF

let to_string addr =
  Printf.sprintf "%d.%d.%d.%d" (octet addr 0) (octet addr 1) (octet addr 2) (octet addr 3)

let pp ppf addr = Fmt.string ppf (to_string addr)

(** [mask_of_prefix n] is the netmask with [n] leading one bits,
    [0 <= n <= 32]. *)
let mask_of_prefix n =
  assert (n >= 0 && n <= 32);
  if n = 0 then 0 else (ip_max lsl (32 - n)) land ip_max

(** [in_prefix addr ~network ~prefix] tests membership of [addr] in
    [network/prefix]. *)
let in_prefix addr ~network ~prefix =
  let m = mask_of_prefix prefix in
  addr land m = network land m

type port = int

let valid_port p = p >= 0 && p < 65536
