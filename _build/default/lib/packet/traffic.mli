(** Synthetic workload generation — the stand-in for the paper's live
    traffic. All generators are deterministic given their seed. *)

type profile = {
  client_ips : Addr.ip list;  (** source pool for inbound packets *)
  server_ips : Addr.ip list;  (** destination pool / virtual IPs *)
  server_ports : Addr.port list;
  payloads : string list;  (** payload pool (some match IDS rules) *)
}

val default_profile : profile

val random_pkt : Rng.t -> profile -> Pkt.t
(** One fully random packet (uniform fields from the profile pools,
    random direction and flags) — the Section-5 accuracy workload. *)

val random_stream : ?profile:profile -> seed:int -> n:int -> unit -> Pkt.t list
(** [n] independent random packets. *)

val conversation :
  client:Addr.ip ->
  cport:Addr.port ->
  server:Addr.ip ->
  sport:Addr.port ->
  data_pkts:int ->
  payload:string ->
  Pkt.t list
(** One complete TCP conversation: handshake, [data_pkts] data/ack
    exchanges, FIN teardown — drives stateful NF paths. *)

val flow_stream :
  ?profile:profile -> seed:int -> flows:int -> data_pkts:int -> unit -> Pkt.t list
(** [flows] conversations interleaved round-robin, mimicking
    concurrent clients. *)
