(** [snort_lite] — stands in for the snort 1.0 the paper evaluates.

    Snort 1.0 is a passive IDS: its rule engine decides what to *log*
    and *alert on*, while its forwarding behaviour (run as a tap /
    inline passthrough) is decided only by packet decoding — malformed
    traffic is not forwarded, everything decodable is. That asymmetry
    is exactly what makes it a good slicing subject: thousands of lines
    of rule matching, counters and logging sit on top of a tiny
    forwarding core, and Table 2 shows the slice collapsing.

    This reproduction keeps that architecture:

    - a decode/sanity stage whose outcome controls [send] — the
      forwarding slice;
    - a rule engine over a generated ruleset ([rule_count] rules in the
      snort rule shape: action, protocol, source/destination prefixes
      and port ranges, TCP flag tests, payload content match) that only
      updates alert/log counters;
    - a SYN portscan detector that, like snort's preprocessor, only
      raises alerts;
    - per-protocol statistics and verbose logging.

    Symbolically executing the whole program explodes (every rule
    forks on header fields and payload contents — the paper reports
    ">1000" paths and ">1hr"); the packet/state slice leaves only the
    decode branches. *)

let name = "snort"

let rule_count = 300

(* Deterministic ruleset in snort-1.0 style, rendered as NFL tuples:
   (action, proto, src_net, src_mask, sp_lo, sp_hi,
    dst_net, dst_mask, dp_lo, dp_hi, flags_mask, flags_val, content, msg).
   action: 1 = alert, 2 = log. Masks of 0 match any address; port range
   (0, 65535) matches any port; flags_mask 0 skips the flag test;
   content "" skips the payload test. *)
let rules_nfl ?(n = rule_count) () =
  let rng = ref 0x5EED in
  let next n =
    rng := (!rng * 1103515245) + 12345;
    (!rng lsr 16) mod n
  in
  let contents =
    [| ""; "USER root"; "GET /etc/passwd"; "SELECT * FROM"; "\\x90\\x90\\x90"; "cmd.exe"; "/bin/sh"; "%n%n"; "OPTIONS *" |]
  in
  let nets = [| (0, 0); (0x0A000000, 0xFF000000); (0xC0A80000, 0xFFFF0000); (0x03030303, 0xFFFFFFFF) |]
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "rules = [\n";
  for i = 0 to n - 1 do
    let action = 1 + next 2 in
    let proto = [| 6; 6; 6; 17; 1 |].(next 5) in
    let snet, smask = nets.(next 4) in
    let dnet, dmask = nets.(next 4) in
    let dp_lo, dp_hi =
      match next 4 with
      | 0 -> (0, 65535)
      | 1 -> (80, 80)
      | 2 -> (0, 1023)
      | _ ->
          let p = 1 + next 60000 in
          (p, p)
    in
    let fmask, fval = if proto = 6 && next 3 = 0 then (2, 2) else (0, 0) in
    let content = if proto = 6 then contents.(next (Array.length contents)) else "" in
    Buffer.add_string buf
      (Printf.sprintf "  (%d, %d, %d, %d, 0, 65535, %d, %d, %d, %d, %d, %d, \"%s\", \"rule-%d\")%s\n"
         action proto snet smask dnet dmask dp_lo dp_hi fmask fval content i
         (if i = n - 1 then "" else ","))
  done;
  Buffer.add_string buf "];";
  Buffer.contents buf

let source_with ~rules () =
  Printf.sprintf
    {|# snort_lite: rule-driven IDS in the snort 1.0 architecture.
# Configuration
home_net = 10.0.0.0;
home_mask = 255.0.0.0;
scan_threshold = 16;
verbose = 0;
checksum_mode = 1;

# Generated ruleset (snort-rule shaped tuples).
%s

# Log/alert state — none of it is output-impacting.
pkts_seen = 0;
bytes_seen = 0;
malformed_cnt = 0;
tcp_cnt = 0;
udp_cnt = 0;
icmp_cnt = 0;
alert_cnt = 0;
log_cnt = 0;
scan_cnt = {};
alerted_scanners = {};
rule_hits = {};

def rule_match(r, pkt) {
  # Protocol.
  if (r[1] != pkt.ip_proto) { return 0; }
  # Source address/ports.
  if ((pkt.ip_src & r[3]) != r[2]) { return 0; }
  if (pkt.sport < r[4]) { return 0; }
  if (pkt.sport > r[5]) { return 0; }
  # Destination address/ports.
  if ((pkt.ip_dst & r[7]) != r[6]) { return 0; }
  if (pkt.dport < r[8]) { return 0; }
  if (pkt.dport > r[9]) { return 0; }
  # TCP flag test.
  if (r[10] != 0) {
    if ((pkt.tcp_flags & r[10]) != r[11]) { return 0; }
  }
  # Payload content.
  if (r[12] != "") {
    if (not str_contains(pkt.payload, r[12])) { return 0; }
  }
  return 1;
}

def run_rules(pkt) {
  for r in rules {
    m = rule_match(r, pkt);
    if (m == 1) {
      if (r[0] == 1) {
        alert_cnt = alert_cnt + 1;
        alert("alert", r[13]);
      } else {
        log_cnt = log_cnt + 1;
        log_pkt(pkt);
      }
      rule_hits[r[13]] = 1;
    }
  }
  return 0;
}

def scan_detector(pkt) {
  # SYN-only segments feed the portscan preprocessor.
  if ((pkt.tcp_flags & 2) != 0) {
    if ((pkt.tcp_flags & 16) == 0) {
      src = pkt.ip_src;
      if (not (src in scan_cnt)) {
        scan_cnt[src] = 0;
      }
      scan_cnt[src] = scan_cnt[src] + 1;
      if (scan_cnt[src] > scan_threshold) {
        if (not (src in alerted_scanners)) {
          alerted_scanners[src] = 1;
          alert_cnt = alert_cnt + 1;
          alert("portscan", src);
        }
      }
    }
  }
  return 0;
}

def pkt_callback(pkt) {
  pkts_seen = pkts_seen + 1;
  bytes_seen = bytes_seen + pkt.ip_len;
  # --- Decode / sanity stage: this is the forwarding logic. ---
  if (pkt.ip_ttl <= 0) {
    malformed_cnt = malformed_cnt + 1;
    return;
  }
  if (pkt.ip_len < 20) {
    malformed_cnt = malformed_cnt + 1;
    return;
  }
  if (pkt.ip_proto != 6) {
    if (pkt.ip_proto != 17) {
      if (pkt.ip_proto != 1) {
        malformed_cnt = malformed_cnt + 1;
        return;
      }
    }
  }
  # --- Statistics (log-only). ---
  if (pkt.ip_proto == 6) {
    tcp_cnt = tcp_cnt + 1;
  } else {
    if (pkt.ip_proto == 17) {
      udp_cnt = udp_cnt + 1;
    } else {
      icmp_cnt = icmp_cnt + 1;
    }
  }
  # --- Detection engine (log-only). ---
  z1 = run_rules(pkt);
  z2 = scan_detector(pkt);
  if (verbose > 0) {
    log("pkt", pkts_seen);
  }
  # --- Tap behaviour: forward everything decodable. ---
  send(pkt);
}

main {
  sniff(pkt_callback);
}
|}
    (rules_nfl ~n:rules ())

let source () = source_with ~rules:rule_count ()

(** Parsed (but not yet canonicalized) program. *)
let program () = Nfl.Parser.program (source ())

(** Variant with a custom ruleset size — the scaling-ablation knob:
    original-program path explosion grows with the ruleset while the
    forwarding slice stays constant. *)
let program_with ~rules () = Nfl.Parser.program (source_with ~rules ())
