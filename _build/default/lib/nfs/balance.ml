(** [balance] — the inlab.de TCP relay load balancer the paper
    evaluates (its Figure 3), reproduced in NFL with the same
    accept/fork nested-loop structure over socket builtins.

    The program cannot be analyzed at packet level as written: its
    per-connection TCP state lives in the OS ("hidden states",
    Section 3.2). {!Nfl.Transform.unfold_accept_fork} rewrites it into
    the Figure-5 single-loop form with an explicit TCP state table
    before NFactor runs.

    Beyond the Figure-3 core, the listing carries the surrounding
    machinery the real balance 3.5 has — channel bookkeeping, failure
    counters, verbose logging — so that slicing has realistic material
    to discard. *)

let name = "balance"

let source =
  {|# balance 3.5 (accept/fork relay, Fig. 4d structure).
# Configuration
lport = 80;
servers = [(1.1.1.1, 80), (2.2.2.2, 80)];
sel_mode = 1;                 # 1 = round robin, 2 = hash
max_channels = 64;
stats_interval = 100;
dbg_level = 1;
# Output-impacting state
idx = 0;
# Channel bookkeeping and failure counters (log-only, like the real
# balance's channel table and -v output)
conn_total = 0;
conn_active = 0;
conn_peak = 0;
bytes_relayed = 0;
pkts_relayed = 0;
err_accept = 0;
err_overflow = 0;
backend_conns = {};
backend_bytes = {};
size_hist_small = 0;
size_hist_large = 0;

main {
  ls = listen(lport);
  while (true) {
    c = accept(ls);
    # -- channel accounting (log-only) --
    conn_total = conn_total + 1;
    conn_active = conn_active + 1;
    if (conn_active > conn_peak) {
      conn_peak = conn_active;
    }
    if (conn_active > max_channels) {
      err_overflow = err_overflow + 1;
      log("channel table overflow", conn_active);
    }
    if (conn_total % stats_interval == 0) {
      log("stats", conn_total);
      log("peak", conn_peak);
      log("bytes", bytes_relayed);
    }
    if (dbg_level > 0) {
      log("accepted connection", conn_total);
    }
    # -- backend selection (output-impacting) --
    if (sel_mode == 1) {
      server = servers[idx];
      idx = (idx + 1) % len(servers);
    } else {
      server = servers[hash(c) % len(servers)];
    }
    # -- per-backend accounting (log-only) --
    if (not (server in backend_conns)) {
      backend_conns[server] = 0;
      backend_bytes[server] = 0;
    }
    backend_conns[server] = backend_conns[server] + 1;
    if (dbg_level > 1) {
      log("selected backend", server);
      log("backend conns", backend_conns[server]);
    }
    child = fork();
    if (child == 0) {
      s = connect(server);
      while (true) {
        buf = sock_recv(c);
        # -- relay statistics (log-only) --
        nbytes = len(buf);
        bytes_relayed = bytes_relayed + nbytes;
        pkts_relayed = pkts_relayed + 1;
        backend_bytes[server] = backend_bytes[server] + nbytes;
        if (nbytes < 512) {
          size_hist_small = size_hist_small + 1;
        } else {
          size_hist_large = size_hist_large + 1;
        }
        if (dbg_level > 2) {
          log("relaying", buf);
          log("total", bytes_relayed);
        }
        out = buf;
        sock_send(s, out);
      }
    }
  }
}
|}

(** Parsed (but not yet canonicalized) program. *)
let program () = Nfl.Parser.program source
