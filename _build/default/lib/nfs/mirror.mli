(** Corpus NF: SPAN-style traffic mirror — the multi-send subject (its
    mirrored paths emit two packets per input). *)

val name : string
val source : string
val program : unit -> Nfl.Ast.program
