(** Inline intrusion-prevention system — the IPS counterpart to
    [snort_lite]'s passive tap.

    Where the IDS only logs, this NF's detection results are
    output-impacting: a signature hit drops the packet and blocklists
    the source, and subsequent traffic from a blocklisted source is
    dropped outright. The contrast shows in the extracted artifacts —
    here the rule checks and the [blocked] table survive slicing and
    appear in the model, whereas the IDS's rule engine is pruned
    entirely. *)

let name = "ips"

let source =
  {|# Inline IPS: signature matches drop and blocklist the source.
# Configuration
guard_port = 80;
sig_sql = "SELECT * FROM";
sig_shell = "/bin/sh";
sig_traversal = "GET /etc/passwd";
# Output-impacting state
blocked = {};
# Log state
dropped_blocked = 0;
dropped_sig = 0;
passed = 0;
sig_hits_sql = 0;
sig_hits_shell = 0;
sig_hits_traversal = 0;

def ips_callback(pkt) {
  src = pkt.ip_src;
  # Blocklisted sources are dropped outright.
  if (src in blocked) {
    dropped_blocked = dropped_blocked + 1;
    return;
  }
  # Only guard the protected port; everything else flows.
  if (pkt.dport == guard_port) {
    hit = 0;
    if (str_contains(pkt.payload, sig_sql)) {
      hit = 1;
      sig_hits_sql = sig_hits_sql + 1;
    }
    if (str_contains(pkt.payload, sig_shell)) {
      hit = 1;
      sig_hits_shell = sig_hits_shell + 1;
    }
    if (str_contains(pkt.payload, sig_traversal)) {
      hit = 1;
      sig_hits_traversal = sig_hits_traversal + 1;
    }
    if (hit == 1) {
      blocked[src] = 1;
      dropped_sig = dropped_sig + 1;
      alert("signature", src);
      return;
    }
  }
  passed = passed + 1;
  send(pkt);
}

main {
  sniff(ips_callback);
}
|}

let program () = Nfl.Parser.program source
