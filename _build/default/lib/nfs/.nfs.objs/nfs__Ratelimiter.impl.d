lib/nfs/ratelimiter.ml: Nfl
