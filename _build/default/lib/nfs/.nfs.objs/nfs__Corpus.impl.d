lib/nfs/corpus.ml: Acl Balance Firewall Ips Lb List Mirror Nat Nfl Portknock Ratelimiter Snort_lite String Synguard
