lib/nfs/synguard.mli: Nfl
