lib/nfs/firewall.mli: Nfl
