lib/nfs/portknock.mli: Nfl
