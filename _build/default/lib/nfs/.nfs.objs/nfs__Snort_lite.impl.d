lib/nfs/snort_lite.ml: Array Buffer Nfl Printf
