lib/nfs/balance.ml: Nfl
