lib/nfs/nat.mli: Nfl
