lib/nfs/mirror.ml: Nfl
