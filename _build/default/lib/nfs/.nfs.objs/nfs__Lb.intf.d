lib/nfs/lb.mli: Nfl
