lib/nfs/firewall.ml: Nfl
