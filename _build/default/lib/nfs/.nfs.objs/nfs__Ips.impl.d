lib/nfs/ips.ml: Nfl
