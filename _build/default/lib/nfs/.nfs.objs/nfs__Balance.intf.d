lib/nfs/balance.mli: Nfl
