lib/nfs/corpus.mli: Nfl
