lib/nfs/snort_lite.mli: Nfl
