lib/nfs/nat.ml: Nfl
