lib/nfs/ips.mli: Nfl
