lib/nfs/acl.ml: Nfl
