lib/nfs/lb.ml: Nfl
