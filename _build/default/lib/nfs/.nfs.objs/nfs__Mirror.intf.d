lib/nfs/mirror.mli: Nfl
