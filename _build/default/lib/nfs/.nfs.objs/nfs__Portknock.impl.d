lib/nfs/portknock.ml: Nfl
