lib/nfs/synguard.ml: Nfl
