lib/nfs/acl.mli: Nfl
