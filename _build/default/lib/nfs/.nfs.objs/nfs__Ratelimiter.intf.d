lib/nfs/ratelimiter.mli: Nfl
