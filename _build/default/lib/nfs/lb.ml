(** The paper's running example: the Figure-1 layer-4 load balancer,
    transliterated from scapy-Python to NFL.

    Structure and variable names follow the listing in the paper so
    that analysis results can be compared line-for-line: [mode] is the
    configuration knob (round-robin vs hash), [f2b_nat]/[b2f_nat] the
    output-impacting translation state, [rr_idx]/[cur_port] the
    allocation state, and [pass_stat]/[drop_stat] the log-only
    counters that slicing must prune. *)

let name = "lb"

let source =
  {|# Figure-1 layer-4 load balancer (callback structure, Fig. 4b).
# Constants
ROUND_ROBIN = 1;
HASH_MODE = 2;
MTU = 1500;
# Configurations
mode = 1;
lb_ip = 3.3.3.3;
lb_port = 80;
servers = [(1.1.1.1, 80), (2.2.2.2, 80)];
# Output-impacting states
f2b_nat = {};
b2f_nat = {};
rr_idx = 0;
cur_port = 10000;
# Log states
pass_stat = 0;
drop_stat = 0;

def pkt_callback(pkt) {
  si = pkt.ip_src;
  di = pkt.ip_dst;
  sp = pkt.sport;
  dp = pkt.dport;
  if (dp == lb_port) {           # pkt from client to server
    cs_ftpl = (si, sp, di, dp);
    sc_ftpl = (di, dp, si, sp);
    if (not (cs_ftpl in f2b_nat)) {   # new connection
      if (mode == ROUND_ROBIN) {
        server = servers[rr_idx];
        rr_idx = (rr_idx + 1) % len(servers);
      } else {                   # hash to a backend server
        server = servers[hash(si) % len(servers)];
      }
      n_port = cur_port;
      cur_port = cur_port + 1;
      cs_btpl = (lb_ip, n_port, server[0], server[1]);
      sc_btpl = (server[0], server[1], lb_ip, n_port);
      f2b_nat[cs_ftpl] = cs_btpl;
      b2f_nat[sc_btpl] = sc_ftpl;
      nat_tpl = cs_btpl;
    } else {                     # existing connection
      nat_tpl = f2b_nat[cs_ftpl];
    }
  } else {                       # pkt from server to client
    sc_btpl = (si, sp, di, dp);
    if (sc_btpl in b2f_nat) {
      nat_tpl = b2f_nat[sc_btpl];
    } else {                     # no initial outbound traffic allowed
      drop_stat = drop_stat + 1;
      return;
    }
  }
  pass_stat = pass_stat + 1;
  pkt.ip_src = nat_tpl[0];
  pkt.sport = nat_tpl[1];
  pkt.ip_dst = nat_tpl[2];
  pkt.dport = nat_tpl[3];
  send(pkt);
}

main {
  sniff(pkt_callback);
}
|}

(** Parsed (but not yet canonicalized) program. *)
let program () = Nfl.Parser.program source
