(** Corpus NF: first-match ACL filter — the subject whose rule loop is
    itself forwarding logic (a [for]-loop inside the slice). *)

val name : string
val source : string
val program : unit -> Nfl.Ast.program
