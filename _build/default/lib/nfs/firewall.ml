(** Stateful firewall — corpus NF in the callback structure (Fig. 4b).

    Outbound traffic from the protected network opens a pinhole in the
    connection table; inbound traffic is admitted only through a
    pinhole or to an explicitly opened service port. The service
    policy ([open_ports], [strict_mode]) is configuration; the
    connection table is output-impacting state. *)

let name = "firewall"

let source =
  {|# Stateful firewall (callback structure).
# Configuration
inside_net = 192.168.0.0;
inside_mask = 255.255.0.0;
open_ports = [80, 443];
strict_mode = 1;
# Output-impacting state
conn_table = {};
# Log state
allowed = 0;
blocked = 0;

def fw_callback(pkt) {
  si = pkt.ip_src;
  di = pkt.ip_dst;
  sp = pkt.sport;
  dp = pkt.dport;
  if ((si & inside_mask) == inside_net) {
    # Outbound: open/refresh the pinhole and pass.
    conn_table[(si, sp, di, dp)] = 1;
    allowed = allowed + 1;
    send(pkt);
  } else {
    # Inbound: reverse pinhole?
    rkey = (di, dp, si, sp);
    if (rkey in conn_table) {
      allowed = allowed + 1;
      send(pkt);
    } else {
      # Service ports are open unless strict mode also requires TCP.
      if (dp in open_ports) {
        if (strict_mode == 1) {
          if (pkt.ip_proto == 6) {
            allowed = allowed + 1;
            send(pkt);
          } else {
            blocked = blocked + 1;
          }
        } else {
          allowed = allowed + 1;
          send(pkt);
        }
      } else {
        blocked = blocked + 1;
      }
    }
  }
}

main {
  sniff(fw_callback);
}
|}

let program () = Nfl.Parser.program source
