(** Source NAT (masquerade) — corpus NF beyond the paper's two, in the
    single-loop structure (Fig. 4a).

    Internal hosts ([inside_net]) going out get their source address
    and port rewritten to the NAT's external address and an allocated
    port; return traffic is translated back through the reverse
    mapping; unsolicited external traffic is dropped. Classic
    output-impacting state ([fwd_map]/[rev_map]/[next_port]) plus log
    counters, making it a second good subject for StateAlyzer. *)

let name = "nat"

let source =
  {|# Source NAT, single-loop structure (Fig. 4a).
# Configuration
nat_ip = 5.5.5.5;
inside_net = 10.0.0.0;
inside_mask = 255.0.0.0;
port_base = 20000;
# Output-impacting state
fwd_map = {};
rev_map = {};
next_port = 0;
# Log state
translated = 0;
dropped = 0;

main {
  while (true) {
    pkt = recv();
    si = pkt.ip_src;
    di = pkt.ip_dst;
    sp = pkt.sport;
    dp = pkt.dport;
    if ((si & inside_mask) == inside_net) {
      # Outbound: allocate or reuse a translation.
      key = (si, sp, di, dp);
      if (not (key in fwd_map)) {
        xport = port_base + next_port;
        next_port = next_port + 1;
        fwd_map[key] = xport;
        rev_map[(di, dp, xport)] = (si, sp);
      }
      xp = fwd_map[key];
      pkt.ip_src = nat_ip;
      pkt.sport = xp;
      translated = translated + 1;
      send(pkt);
    } else {
      # Inbound: must match an existing translation to the NAT address.
      if (di == nat_ip) {
        rkey = (si, sp, dp);
        if (rkey in rev_map) {
          orig = rev_map[rkey];
          pkt.ip_dst = orig[0];
          pkt.dport = orig[1];
          translated = translated + 1;
          send(pkt);
        } else {
          dropped = dropped + 1;
        }
      } else {
        dropped = dropped + 1;
      }
    }
  }
}
|}

let program () = Nfl.Parser.program source
