(** Registry of the NF corpus: the paper's two evaluation subjects
    ([snort], [balance]), the Figure-1 running example ([lb]), and
    additional NFs covering the remaining Figure-4 code structures. *)

type entry = {
  name : string;
  description : string;
  structure : string;  (** code structure per Figure 4 *)
  in_paper : bool;  (** appears in the paper's evaluation *)
  source : unit -> string;  (** NFL source text *)
  program : unit -> Nfl.Ast.program;  (** parsed, not canonicalized *)
}

val all : entry list
val find : string -> entry option
val names : string list

val loc_of_source : string -> int
(** Non-comment, non-blank source lines — the paper's "LoC" metric. *)
