(** SPAN-style traffic mirror: forwards packets unchanged and sends a
    copy of selected traffic to a collector.

    The only corpus NF whose paths emit {e two} packets — its model
    entries carry multi-snapshot [Forward] actions, exercising the
    action machinery end to end (extraction, model interpretation,
    differential testing, serialization). *)

let name = "mirror"

let source =
  {|# Traffic mirror (single-loop structure).
# Configuration
collector_ip = 7.7.7.7;
collector_port = 9000;
mirror_port = 80;
mirror_all = 0;
# Log state
mirrored = 0;
passed = 0;

main {
  while (true) {
    pkt = recv();
    want_copy = 0;
    if (mirror_all == 1) {
      want_copy = 1;
    } else {
      if (pkt.dport == mirror_port) {
        want_copy = 1;
      }
    }
    if (want_copy == 1) {
      # Copy to the collector goes out first (as a monitor port would),
      # re-addressed but otherwise intact.
      orig_dst = pkt.ip_dst;
      orig_dport = pkt.dport;
      pkt.ip_dst = collector_ip;
      pkt.dport = collector_port;
      send(pkt);
      # Restore and forward the original.
      pkt.ip_dst = orig_dst;
      pkt.dport = orig_dport;
      mirrored = mirrored + 1;
    }
    passed = passed + 1;
    send(pkt);
  }
}
|}

let program () = Nfl.Parser.program source
