(** Corpus NF standing in for snort 1.0: a rule-driven IDS run as a
    tap. See the implementation's module comment for the architecture
    argument. *)

val name : string

val rule_count : int
(** Default generated ruleset size. *)

val rules_nfl : ?n:int -> unit -> string
(** The generated ruleset as NFL source (a list of snort-rule shaped
    tuples). *)

val source_with : rules:int -> unit -> string
(** Source with a custom ruleset size (the scaling-ablation knob). *)

val source : unit -> string

val program : unit -> Nfl.Ast.program

val program_with : rules:int -> unit -> Nfl.Ast.program
