(** First-match ACL filter: a configured rule list evaluated in order,
    first matching prefix decides allow/deny; TTL is decremented on
    forward (router-style).

    Unlike the IDS, this rule loop {e is} forwarding logic, so slicing
    must keep it and symbolic execution unrolls it — the extracted
    model expands the first-match semantics into one entry per
    rule-decision prefix. The only corpus NF with a [for]-loop inside
    the forwarding slice. *)

let name = "acl"

let source =
  {|# First-match ACL filter (single-loop structure).
# Configuration: (network, mask, action) with action 1=allow 2=deny.
acl = [
  (10.0.0.0, 255.0.0.0, 1),
  (192.168.0.0, 255.255.0.0, 2),
  (8.8.8.8, 255.255.255.255, 1)
];
default_action = 2;
# Log state
allowed = 0;
denied = 0;

main {
  while (true) {
    pkt = recv();
    decision = 0;
    for r in acl {
      if (decision == 0) {
        if ((pkt.ip_src & r[1]) == r[0]) {
          decision = r[2];
        }
      }
    }
    if (decision == 0) {
      decision = default_action;
    }
    if (decision == 1) {
      allowed = allowed + 1;
      pkt.ip_ttl = pkt.ip_ttl - 1;
      send(pkt);
    } else {
      denied = denied + 1;
    }
  }
}
|}

let program () = Nfl.Parser.program source
