(** Port-knocking gate: a source unlocks the protected port by hitting
    three knock ports in order; wrong order resets the sequence.

    The per-source knock stage is a genuine multi-step state machine
    (unknown → K1 → K2 → unlocked), which makes this NF the best
    subject for the {!Nfactor.Fsm} derivation: the extracted model's
    state predicates enumerate the stages and its transitions recover
    the knock protocol. *)

let name = "portknock"

let source =
  {|# Port-knocking gate (single-loop structure).
# Configuration
knock1 = 7000;
knock2 = 8000;
knock3 = 9000;
protected_port = 22;
# Output-impacting state
stage = {};
# Log state
unlocked_total = 0;
reset_total = 0;
denied = 0;

main {
  while (true) {
    pkt = recv();
    src = pkt.ip_src;
    dp = pkt.dport;
    if (dp == knock1) {
      # First knock (re)starts the sequence; knocks are absorbed.
      stage[src] = 1;
    } else {
      if (dp == knock2) {
        if (src in stage) {
          if (stage[src] == 1) {
            stage[src] = 2;
          } else {
            del stage[src];
            reset_total = reset_total + 1;
          }
        }
      } else {
        if (dp == knock3) {
          if (src in stage) {
            if (stage[src] == 2) {
              stage[src] = 3;
              unlocked_total = unlocked_total + 1;
            } else {
              del stage[src];
              reset_total = reset_total + 1;
            }
          }
        } else {
          if (dp == protected_port) {
            if (src in stage) {
              if (stage[src] == 3) {
                send(pkt);
              } else {
                denied = denied + 1;
              }
            } else {
              denied = denied + 1;
            }
          } else {
            # Unrelated traffic flows freely.
            send(pkt);
          }
        }
      }
    }
  }
}
|}

let program () = Nfl.Parser.program source
