(** Per-source rate limiter — corpus NF in the consumer-producer
    structure (Fig. 4c), exercising the loop-fusion transform.

    Counts packets per source; once a source exceeds its budget its
    traffic is dropped (count-based limiter: NFL programs are
    clockless, so the budget is per run rather than per second — the
    state machinery is identical). *)

let name = "ratelimiter"

let source =
  {|# Per-source packet-count limiter (consumer-producer structure).
# Configuration
limit = 100;
exempt_net = 10.9.0.0;
exempt_mask = 255.255.0.0;
# Output-impacting state
counts = {};
# Log state
passed = 0;
limited = 0;
q = 0;

def read_loop() {
  pkt = recv();
  queue_push(q, pkt);
}

def proc_loop() {
  p = queue_pop(q);
  src = p.ip_src;
  if ((src & exempt_mask) == exempt_net) {
    passed = passed + 1;
    send(p);
    return;
  }
  if (not (src in counts)) {
    counts[src] = 0;
  }
  c = counts[src];
  if (c < limit) {
    counts[src] = c + 1;
    passed = passed + 1;
    send(p);
  } else {
    limited = limited + 1;
  }
}

main {
  spawn(read_loop);
  spawn(proc_loop);
}
|}

let program () = Nfl.Parser.program source
