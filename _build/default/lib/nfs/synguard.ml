(** SYN-flood guard: tracks half-open handshakes per source and stops
    admitting new SYNs from sources that exceed the budget.

    State machinery: [half_open] counts SYNs-without-ACK per source
    (decremented when the handshake completes), and both the counter
    reads and the threshold comparison are output-impacting — a
    corpus member whose state transition includes a decrement, which
    the other NFs lack. *)

let name = "synguard"

let source =
  {|# SYN-flood guard (single-loop structure).
# Configuration
syn_budget = 3;
protected_port = 80;
# Output-impacting state
half_open = {};
# Log state
admitted = 0;
completed = 0;
rejected = 0;

main {
  while (true) {
    pkt = recv();
    src = pkt.ip_src;
    if (pkt.dport == protected_port) {
      is_syn = pkt.tcp_flags & 2;
      is_ack = pkt.tcp_flags & 16;
      if (is_syn != 0) {
        if (is_ack == 0) {
          # Client SYN: admit while under budget.
          if (not (src in half_open)) {
            half_open[src] = 0;
          }
          if (half_open[src] < syn_budget) {
            half_open[src] = half_open[src] + 1;
            admitted = admitted + 1;
            send(pkt);
          } else {
            rejected = rejected + 1;
          }
        } else {
          # SYN/ACK from the server side: pass through.
          send(pkt);
        }
      } else {
        if (is_ack != 0) {
          # Handshake completion releases a half-open slot.
          if (src in half_open) {
            if (half_open[src] > 0) {
              half_open[src] = half_open[src] - 1;
              completed = completed + 1;
            }
          }
          send(pkt);
        } else {
          send(pkt);
        }
      }
    } else {
      send(pkt);
    }
  }
}
|}

let program () = Nfl.Parser.program source
