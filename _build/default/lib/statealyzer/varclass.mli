(** StateAlyzer-style variable classification (paper Table 1).

    Computes the four features of Section 2.1 — {e persistent},
    {e top-level}, {e updateable}, {e output-impacting} — plus a
    loop-carried refinement, and derives the categories Algorithm 1
    consumes. {e Output-impacting} is decided exactly as in the paper:
    the variable is mentioned by the packet slice (the union of
    backward slices from every packet output). *)

type features = {
  persistent : bool;  (** defined at top level, outlives the packet loop *)
  top_level : bool;  (** mentioned during packet processing *)
  updateable : bool;  (** assigned during packet processing *)
  output_impacting : bool;  (** mentioned by the packet slice *)
  loop_carried : bool;
      (** live at loop entry: the carried value can matter. A
          top-level variable redefined before every read is a shared
          temporary, not state. *)
}

type category =
  | Pkt_var  (** bound by [recv()] *)
  | Cfg_var  (** persistent, top-level, not updateable *)
  | Ois_var  (** output-impacting state: what the model tracks *)
  | Log_var  (** updated but with no path to the packet output *)
  | Unused_cfg  (** persistent but untouched by the packet loop *)
  | Local  (** per-iteration scratch *)

val category_to_string : category -> string
val pp_category : Format.formatter -> category -> unit

type t = {
  pkt_var : string;  (** the receive-bound packet variable *)
  features : (string * features) list;  (** per variable, sorted *)
  categories : (string * category) list;
  pkt_slice : int list;  (** statement ids of the packet slice over main *)
  loop_body : Nfl.Ast.block;  (** canonical loop body *)
}

val vars_of_category : t -> category -> string list
val category_of : t -> string -> category option

val analyze : Nfl.Ast.program -> t
(** Analyze a canonical (function-free, single packet loop) program.
    @raise Nfl.Transform.Not_applicable when no packet loop exists. *)

val pp : Format.formatter -> t -> unit
