lib/statealyzer/varclass.mli: Format Nfl
