lib/statealyzer/varclass.ml: Cfg Dataflow Fmt List Nfl Slicing
