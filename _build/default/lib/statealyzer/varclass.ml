(** StateAlyzer-style variable classification (paper Table 1).

    Given a canonical NF program, computes the four variable features
    from Section 2.1 and derives the categories Algorithm 1 consumes:

    - {b pktVar}: bound by the packet input function ([x = recv()]).
    - {b cfgVar}: persistent, top-level, not updateable — the knobs.
    - {b oisVar}: persistent, top-level, updateable, output-impacting —
      the state the forwarding model must track.
    - {b logVar}: persistent, top-level, updateable, but with no path
      to the packet output — statistics and logs, pruned by slicing.

    *Output-impacting* is decided exactly as in Algorithm 1: a variable
    is output-impacting iff some statement of the packet slice (the
    union of backward slices from every [send]) mentions it. *)

module Sset = Nfl.Ast.Sset

type features = {
  persistent : bool;  (** defined at top level, outlives the packet loop *)
  top_level : bool;  (** mentioned during packet processing *)
  updateable : bool;  (** assigned during packet processing *)
  output_impacting : bool;  (** mentioned by the packet slice *)
  loop_carried : bool;
      (** live at loop-body entry: its value survives from one packet
          to the next. A top-level variable that every iteration
          redefines before reading (a shared temporary) is not state —
          "lifetime longer than the packet processing loop" is about
          the carried value, not the binding. *)
}

type category =
  | Pkt_var
  | Cfg_var
  | Ois_var
  | Log_var
  | Unused_cfg  (** persistent but never touched by the packet loop *)
  | Local  (** not persistent: scratch inside the loop *)

let category_to_string = function
  | Pkt_var -> "pktVar"
  | Cfg_var -> "cfgVar"
  | Ois_var -> "oisVar"
  | Log_var -> "logVar"
  | Unused_cfg -> "unusedCfg"
  | Local -> "local"

let pp_category ppf c = Fmt.string ppf (category_to_string c)

type t = {
  pkt_var : string;  (** the receive-bound packet variable *)
  features : (string * features) list;  (** per variable, sorted by name *)
  categories : (string * category) list;
  pkt_slice : int list;  (** statement ids of the packet slice over [main] *)
  loop_body : Nfl.Ast.block;  (** canonical loop body (with the recv statement) *)
}

let vars_of_category t cat =
  List.filter_map (fun (v, c) -> if c = cat then Some v else None) t.categories

let category_of t v = List.assoc_opt v t.categories

let classify f ~is_pkt =
  if is_pkt then Pkt_var
  else if not f.persistent then Local
  else if not f.top_level then Unused_cfg
  else if not f.updateable then Cfg_var
  else if not f.loop_carried then Local (* shared per-iteration temporary *)
  else if f.output_impacting then Ois_var
  else Log_var

(** Analyze a canonical (function-free, single packet loop) program. *)
let analyze (p : Nfl.Ast.program) =
  let _, loop_body, pkt_var = Nfl.Transform.packet_loop p in
  (* Persistent variables: top-level assignments. *)
  let persistent_vars =
    List.fold_left
      (fun acc (s : Nfl.Ast.stmt) ->
        match s.Nfl.Ast.kind with
        | Nfl.Ast.Assign (Nfl.Ast.L_var x, _) -> Sset.add x acc
        | _ -> acc)
      Sset.empty p.Nfl.Ast.globals
  in
  (* Mentions inside the packet loop. *)
  let used = ref Sset.empty and defined = ref Sset.empty in
  Nfl.Ast.iter_stmts
    (fun s ->
      used := Sset.union !used (Dataflow.Defs_uses.uses s);
      defined := Sset.union !defined (Dataflow.Defs_uses.defs s))
    loop_body;
  let mentioned = Sset.union !used !defined in
  (* Packet slice: union of backward slices from every packet output,
     over the whole main (so cross-iteration state flow is visible).
     Globals count as defined at entry. *)
  let ctx = Slicing.Slice.of_block ~entry_defs:persistent_vars p.Nfl.Ast.main in
  let send_sids = Slicing.Slice.find_stmts ctx Nfl.Builtins.is_pkt_output_stmt in
  let pkt_slice = Slicing.Slice.backward_union ctx ~criteria:send_sids in
  (* Variables mentioned by slice statements. *)
  let slice_vars = ref Sset.empty in
  Nfl.Ast.iter_stmts
    (fun s ->
      if List.mem s.Nfl.Ast.sid pkt_slice then
        slice_vars :=
          Sset.union !slice_vars
            (Sset.union (Dataflow.Defs_uses.uses s) (Dataflow.Defs_uses.defs s)))
    p.Nfl.Ast.main;
  (* Loop-carried values: live at the loop-body entry, assuming every
     persistent variable may be read by the next iteration. *)
  let body_cfg = Cfg.of_block loop_body in
  let liveness = Dataflow.Liveness.solve ~live_at_exit:persistent_vars body_cfg in
  (* Read liveness at the first real statement: [Entry]'s pseudo edge to
     [Exit] would leak the live-at-exit assumption straight through. *)
  let carried =
    match loop_body with
    | [] -> persistent_vars
    | first :: _ -> liveness.Dataflow.Liveness.live_in (Cfg.Stmt first.Nfl.Ast.sid)
  in
  let all_vars = Sset.union persistent_vars mentioned in
  let features =
    Sset.fold
      (fun v acc ->
        let f =
          {
            persistent = Sset.mem v persistent_vars;
            top_level = Sset.mem v mentioned;
            updateable = Sset.mem v !defined;
            output_impacting = Sset.mem v !slice_vars;
            loop_carried = Sset.mem v carried;
          }
        in
        (v, f) :: acc)
      all_vars []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let categories =
    List.map (fun (v, f) -> (v, classify f ~is_pkt:(v = pkt_var))) features
  in
  { pkt_var; features; categories; pkt_slice; loop_body }

let pp ppf t =
  List.iter
    (fun (v, c) -> Fmt.pf ppf "%-16s %s@." v (category_to_string c))
    t.categories
