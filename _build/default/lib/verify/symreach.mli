(** Header-space style symbolic reachability over extracted models:
    HSA's transfer-function composition extended with the state
    argument of [T(h, p, s)]. A symbolic packet (field map over free
    input-header symbols plus constraints) is pushed through a chain
    of models under concrete state snapshots, yielding the end-to-end
    header equivalence classes. Re-running under different snapshots
    answers state-dependent reachability questions stateless HSA
    cannot pose. *)

open Nfactor
open Symexec

type sym_pkt = (string * Sexpr.t) list
(** Field map over the free input-header symbols ["in.<field>"]. *)

val fresh_pkt : sym_pkt
(** The unconstrained input header. *)

type cls = {
  constraints : Solver.literal list;  (** over the input-header symbols *)
  pkt : sym_pkt;  (** symbolic output header *)
  fired : (string * int) list;  (** (node id, entry index) per hop *)
}

val through_model :
  node_id:string -> Model.t -> Model_interp.store -> cls -> cls list
(** All feasible refinements of a class through one model; dropping
    entries and table misses produce no classes. *)

val through_chain : (string * Model.t * Model_interp.store) list -> cls -> cls list

val classes : (string * Model.t * Model_interp.store) list -> cls list
(** End-to-end classes for unconstrained input headers. *)

val reachable :
  (string * Model.t * Model_interp.store) list ->
  property:(sym_pkt -> Solver.literal list) ->
  cls list
(** Classes whose output can satisfy [property]; empty means the
    property is unreachable under these state snapshots. *)

val pp_cls : Format.formatter -> cls -> unit
