(** Service-chain composition analysis (paper Section 4, "Service
    Policy Composition").

    PGA-style reasoning over extracted models: NF A {e interferes} with
    a downstream NF B when A rewrites a header field B matches on — B
    then classifies rewritten traffic, which is usually not the
    operator's intent (the paper's {FW, IDS} x {LB} example: should the
    IDS see original or load-balanced addresses?).

    The models give exactly the two field sets PGA needs —
    {!Nfactor.Model.matched_fields} (input space constraints) and
    {!Nfactor.Model.modified_fields} (output space transformations) —
    so conflicts are computed instead of declared. *)

open Nfactor

type conflict = {
  upstream : string;  (** NF that rewrites *)
  downstream : string;  (** NF whose match is affected *)
  fields : string list;  (** the overlapping header fields *)
}

let pp_conflict ppf c =
  Fmt.pf ppf "%s rewrites %a which %s matches on" c.upstream
    Fmt.(list ~sep:(any ", ") string)
    c.fields c.downstream

let intersect a b = List.filter (fun x -> List.mem x b) a

(** Conflicts of a specific order: for each pair (A before B), fields A
    modifies that B matches. *)
let conflicts_of_order (order : (string * Model.t) list) =
  let rec go acc = function
    | [] -> List.rev acc
    | (a_name, a_model) :: rest ->
        let acc =
          List.fold_left
            (fun acc (b_name, b_model) ->
              let overlap =
                intersect (Model.modified_fields a_model) (Model.matched_fields b_model)
              in
              if overlap = [] then acc
              else { upstream = a_name; downstream = b_name; fields = overlap } :: acc)
            acc rest
        in
        go acc rest
  in
  go [] order

(** All permutations of a chain with their conflict counts, best
    (fewest conflicts) first. This is the composition question from
    the paper: [{FW, IDS}] + [{LB}] — which interleavings are safe? *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> fst y <> fst x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

type ranking = { order : string list; conflicts : conflict list }

let rank_orders (nfs : (string * Model.t) list) =
  permutations nfs
  |> List.map (fun order ->
         { order = List.map fst order; conflicts = conflicts_of_order order })
  |> List.stable_sort (fun a b -> compare (List.length a.conflicts) (List.length b.conflicts))

(** Orders with no interference at all. *)
let safe_orders nfs = List.filter (fun r -> r.conflicts = []) (rank_orders nfs)

(** Compose two policy chains preserving each chain's internal order
    (the PGA composition question). Returns rankings over all valid
    interleavings. *)
let compose_chains (a : (string * Model.t) list) (b : (string * Model.t) list) =
  (* All interleavings of a and b that keep relative orders. *)
  let rec interleavings xs ys =
    match (xs, ys) with
    | [], l | l, [] -> [ l ]
    | x :: xs', y :: ys' ->
        List.map (fun r -> x :: r) (interleavings xs' ys)
        @ List.map (fun r -> y :: r) (interleavings xs ys')
  in
  interleavings a b
  |> List.map (fun order ->
         { order = List.map fst order; conflicts = conflicts_of_order order })
  |> List.stable_sort (fun x y -> compare (List.length x.conflicts) (List.length y.conflicts))

let pp_ranking ppf r =
  Fmt.pf ppf "[%a] — %d conflict(s)%a"
    Fmt.(list ~sep:(any " -> ") string)
    r.order (List.length r.conflicts)
    (fun ppf cs -> if cs <> [] then Fmt.pf ppf ": %a" Fmt.(list ~sep:(any "; ") pp_conflict) cs)
    r.conflicts
