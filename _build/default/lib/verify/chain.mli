(** Service-chain composition analysis (paper Section 4): PGA-style
    interference reasoning with model-derived field footprints —
    NF A conflicts with a downstream B when A rewrites a header field
    B matches on. *)

open Nfactor

type conflict = {
  upstream : string;  (** NF that rewrites *)
  downstream : string;  (** NF whose match is affected *)
  fields : string list;
}

val pp_conflict : Format.formatter -> conflict -> unit

val conflicts_of_order : (string * Model.t) list -> conflict list
(** Interference pairs of one specific order. *)

type ranking = { order : string list; conflicts : conflict list }

val permutations : (string * Model.t) list -> (string * Model.t) list list

val rank_orders : (string * Model.t) list -> ranking list
(** All permutations, fewest conflicts first (stable). *)

val safe_orders : (string * Model.t) list -> ranking list
(** Orders with no interference at all. *)

val compose_chains :
  (string * Model.t) list -> (string * Model.t) list -> ranking list
(** The PGA composition question: all interleavings preserving each
    chain's internal order, ranked. *)

val pp_ranking : Format.formatter -> ranking -> unit
