lib/verify/network.mli: Extract Format Model Model_interp Nfactor Packet
