lib/verify/symreach.mli: Format Model Model_interp Nfactor Sexpr Solver Symexec
