lib/verify/chain.mli: Format Model Nfactor
