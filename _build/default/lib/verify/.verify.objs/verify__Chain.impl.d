lib/verify/chain.ml: Fmt List Model Nfactor
