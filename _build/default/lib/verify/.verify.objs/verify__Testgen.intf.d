lib/verify/testgen.mli: Equiv Extract Format Model Model_interp Nfactor Packet Solver Symexec Value
