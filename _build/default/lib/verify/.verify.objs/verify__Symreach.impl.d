lib/verify/symreach.ml: Fmt List Model Model_interp Nfactor Nfl Packet Sexpr Solver String Symexec Value
