lib/verify/testgen.ml: Equiv Extract Fmt Fun List Model Model_interp Nfactor Packet Sexpr Solver String Symexec Value
