lib/verify/network.ml: Extract Fmt List Model Model_interp Nfactor Packet
