(** Stateful network verification over extracted models (paper
    Section 4, "Network Verification", way 2: extending stateless
    verification).

    Each model becomes a network transfer function [T(h, p, s)]: given
    a packet at a port and the NF's current state, it yields the
    packets at the next hop and the successor state. A network is a
    chain/DAG of NF instances; reachability questions ("can a packet
    from A ever reach B?", "only after state s was established?") are
    answered by executing packet sequences through the composed
    transfer functions — stateful by construction, which is exactly
    what HSA-style stateless tools cannot express. *)

open Nfactor

type node = {
  id : string;
  model : Model.t;
  mutable store : Model_interp.store;
}

(** A unidirectional service chain of NF instances. *)
type chain = { nodes : node list }

let node_of_extraction id (ex : Extract.result) =
  { id; model = ex.Extract.model; store = Model_interp.initial_store ex }

let chain nodes = { nodes }

let reset_chain c ~stores =
  List.iter2 (fun n s -> n.store <- s) c.nodes stores

(** One packet through the chain: each NF transforms (possibly into
    several packets, or none = dropped); state updates stick. Returns
    the packets emerging from the last NF and the per-hop trace. *)
type hop = { node_id : string; entered : Packet.Pkt.t list; left : Packet.Pkt.t list }

let push c pkt =
  let rec go pkts nodes trace =
    match nodes with
    | [] -> (pkts, List.rev trace)
    | n :: rest ->
        let outs =
          List.concat_map
            (fun p ->
              let r = Model_interp.step n.model n.store p in
              n.store <- r.Model_interp.store;
              r.Model_interp.outputs)
            pkts
        in
        go outs rest ({ node_id = n.id; entered = pkts; left = outs } :: trace)
  in
  go [ pkt ] c.nodes []

(** Drive a packet sequence; returns per-packet chain outputs. *)
let run c pkts = List.map (fun p -> push c p) pkts

(* ------------------------------------------------------------------ *)
(* Reachability queries                                               *)
(* ------------------------------------------------------------------ *)

type reach_result = {
  delivered : Packet.Pkt.t list;  (** packets that traversed the whole chain *)
  trace : hop list;  (** last packet's per-hop record *)
}

(** [reaches c pkt ~dst]: does [pkt], injected now (with the chain's
    current state), emerge from the chain destined to [dst]? *)
let reaches c pkt ~dst =
  let outs, trace = push c pkt in
  let delivered = List.filter (fun (p : Packet.Pkt.t) -> p.Packet.Pkt.ip_dst = dst) outs in
  { delivered; trace }

(** Exhaustive small-space reachability: inject every packet the
    generator produces and report which are delivered anywhere.
    Useful for "no external packet can reach the internal net unless a
    pinhole exists" style invariants. *)
let survey c ~pkts ~violates =
  List.filter_map
    (fun pkt ->
      let outs, trace = push c pkt in
      match List.find_opt (fun out -> violates ~input:pkt ~output:out) outs with
      | Some out -> Some (pkt, out, trace)
      | None -> None)
    pkts

let pp_hop ppf h =
  Fmt.pf ppf "%s: %d in -> %d out" h.node_id (List.length h.entered) (List.length h.left)

let pp_trace ppf t = Fmt.(list ~sep:(any " | ") pp_hop) ppf t
