lib/core/model_io.mli: Model Sexpr Solver Symexec Value
