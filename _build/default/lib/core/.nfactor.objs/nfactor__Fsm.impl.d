lib/core/fsm.ml: Buffer Extract Fmt List Model Model_interp Option Packet Printf Sexpr Solver String Symexec Value
