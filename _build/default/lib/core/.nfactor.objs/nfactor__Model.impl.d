lib/core/model.ml: Fmt List Sexpr Solver String Symexec
