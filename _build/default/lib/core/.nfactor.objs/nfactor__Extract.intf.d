lib/core/extract.mli: Explore Interp Model Nfl Solver Statealyzer Symexec Value
