lib/core/extract.ml: Dataflow Explore Interp List Model Nfl Sexpr Slicing Solver Statealyzer String Symexec Value
