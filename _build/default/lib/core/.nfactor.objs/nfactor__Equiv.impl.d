lib/core/equiv.ml: Explore Extract Fmt Interp List Model Model_interp Nfl Packet Printf Sexpr Solver String Symexec
