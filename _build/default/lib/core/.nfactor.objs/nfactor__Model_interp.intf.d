lib/core/model_interp.mli: Extract Map Model Packet Sexpr Solver Symexec Value
