lib/core/model_io.ml: Buffer Char List Model Nfl Printf Sexpr Solver String Symexec Value
