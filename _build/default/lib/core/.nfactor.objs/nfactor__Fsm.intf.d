lib/core/fsm.mli: Extract Format Symexec
