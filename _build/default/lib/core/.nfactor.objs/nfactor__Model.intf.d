lib/core/model.mli: Format Sexpr Solver Symexec
