lib/core/equiv.mli: Explore Extract Format Model Packet Symexec
