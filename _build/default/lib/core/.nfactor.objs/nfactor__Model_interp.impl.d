lib/core/model_interp.ml: Extract Interp List Map Model Nfl Packet Sexpr Solver String Symexec Value
