lib/core/report.mli: Explore Extract Format Nfl Symexec
