lib/core/report.ml: Explore Extract Fmt Interp List Nfl Printf Statealyzer String Symexec Unix
