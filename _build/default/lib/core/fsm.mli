(** Per-flow finite state machine derived from a model (paper
    Section 2.4: the state-transition logic "can be used to build a
    finite state machine", as BUZZ-style testing consumes).

    Abstract states are the distinct state-match signatures of the
    model's entries (the situations the NF distinguishes for one
    flow); transitions are entries, with successors computed
    semantically by applying the entry's update to a witness flow and
    asking which entry matches afterwards. *)

type state_id = int

type state = {
  id : state_id;
  label : string;  (** rendered state-match signature *)
  literals : Symexec.Solver.literal list;
}

type transition = {
  from_state : state_id;
  to_state : state_id option;  (** [None]: flow forgotten afterwards *)
  entry_index : int;  (** index into the model's entry list *)
  guard : string;  (** rendered flow-match *)
  action : string;  (** rendered packet action *)
}

type t = {
  states : state list;
  transitions : transition list;
  initial : state_id option;  (** state of a never-seen flow *)
}

val of_extraction : Extract.result -> t
val state_count : t -> int
val transition_count : t -> int

val reachable_states : t -> state_id list
(** States one flow can traverse from [initial]. *)

val pp : Format.formatter -> t -> unit

val to_dot : ?name:string -> t -> string
(** Graphviz rendering. *)
