(** Live-variable analysis; used by StateAlyzer's loop-carried
    refinement (is a persistent variable's value consumed before being
    redefined?). *)

module Sset = Nfl.Ast.Sset

type solution = { live_in : Cfg.node -> Sset.t; live_out : Cfg.node -> Sset.t }

val solve : ?live_at_exit:Sset.t -> Cfg.t -> solution
(** [live_at_exit] names variables considered live after [Exit]
    (persistent state read by the next loop iteration). *)
