(** Reaching definitions. A definition is (variable, statement id);
    the pseudo-id 0 denotes "defined before this region". Weak updates
    generate but do not kill. *)

module Def : sig
  type t = { var : string; sid : int }

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module Dset : Set.S with type elt = Def.t

type solution = { reach_in : Cfg.node -> Dset.t; reach_out : Cfg.node -> Dset.t }

val solve : ?entry_defs:Nfl.Ast.Sset.t -> Cfg.t -> solution
(** [entry_defs] are considered defined at [Entry] with id 0. *)

val defs_reaching : solution -> Cfg.node -> string -> Dset.t
(** Definitions of one variable reaching a node's entry. *)
