(** Generic monotone-framework worklist solver.

    Parameterized over the fact lattice; clients instantiate it for
    reaching definitions and liveness. Termination relies on the usual
    contract: [join] is monotone w.r.t. [equal]-stability and the
    lattice has finite height (all our facts are finite sets over the
    program's variables and statement ids). *)

type direction = Forward | Backward

type 'fact problem = {
  direction : direction;
  init : 'fact;  (** fact at the boundary (entry or exit) *)
  bottom : 'fact;  (** initial value for all interior program points *)
  transfer : Cfg.node -> 'fact -> 'fact;
  join : 'fact -> 'fact -> 'fact;
  equal : 'fact -> 'fact -> bool;
}

type 'fact solution = { inf : Cfg.node -> 'fact; outf : Cfg.node -> 'fact }

let solve g (p : 'fact problem) : 'fact solution =
  let module Nmap = Cfg.Nmap in
  let nodes = Cfg.nodes g in
  let boundary, preds_of, succs_of =
    match p.direction with
    | Forward -> (Cfg.Entry, Cfg.pred_nodes g, Cfg.succ_nodes g)
    | Backward -> (Cfg.Exit, Cfg.succ_nodes g, Cfg.pred_nodes g)
  in
  let inputs = ref Nmap.empty and outputs = ref Nmap.empty in
  List.iter
    (fun n ->
      inputs := Nmap.add n p.bottom !inputs;
      outputs := Nmap.add n p.bottom !outputs)
    nodes;
  inputs := Nmap.add boundary p.init !inputs;
  outputs := Nmap.add boundary (p.transfer boundary p.init) !outputs;
  (* Simple round-robin worklist; node counts are small. *)
  let work = Queue.create () in
  List.iter (fun n -> Queue.push n work) nodes;
  while not (Queue.is_empty work) do
    let n = Queue.pop work in
    let in_fact =
      if Cfg.node_equal n boundary then p.init
      else
        match preds_of n with
        | [] -> p.bottom
        | ps ->
            List.fold_left (fun acc q -> p.join acc (Nmap.find q !outputs)) p.bottom ps
    in
    let out_fact = p.transfer n in_fact in
    inputs := Nmap.add n in_fact !inputs;
    if not (p.equal out_fact (Nmap.find n !outputs)) then begin
      outputs := Nmap.add n out_fact !outputs;
      List.iter (fun s -> Queue.push s work) (succs_of n)
    end
  done;
  let inputs = !inputs and outputs = !outputs in
  (* In forward problems "in" is the flow into the node; in backward
     problems callers still ask with the same orientation, so swap. *)
  match p.direction with
  | Forward -> { inf = (fun n -> Nmap.find n inputs); outf = (fun n -> Nmap.find n outputs) }
  | Backward -> { inf = (fun n -> Nmap.find n outputs); outf = (fun n -> Nmap.find n inputs) }
