(** Live-variable analysis.

    Used by StateAlyzer's *top-level* feature (is a persistent variable
    actually consumed during packet processing?) and as a second client
    of the worklist framework to keep it honest. *)

module Sset = Nfl.Ast.Sset

type solution = { live_in : Cfg.node -> Sset.t; live_out : Cfg.node -> Sset.t }

(** [solve ?live_at_exit g]: variables in [live_at_exit] are considered
    live after [Exit] (e.g. persistent state read by the next loop
    iteration when analyzing one iteration in isolation). *)
let solve ?(live_at_exit = Sset.empty) g =
  let transfer n fact =
    match Cfg.stmt_of g n with
    | None -> if Cfg.node_equal n Cfg.Exit then Sset.union fact live_at_exit else fact
    | Some s ->
        let kills =
          if Defs_uses.is_strong_def s then Defs_uses.defs s else Sset.empty
        in
        Sset.union (Defs_uses.uses s) (Sset.diff fact kills)
  in
  let sol =
    Worklist.solve g
      {
        Worklist.direction = Worklist.Backward;
        init = live_at_exit;
        bottom = Sset.empty;
        transfer;
        join = Sset.union;
        equal = Sset.equal;
      }
  in
  { live_in = sol.Worklist.inf; live_out = sol.Worklist.outf }
