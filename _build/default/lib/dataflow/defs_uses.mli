(** Per-statement definitions and uses, encoding NFL's value
    semantics: container writes ([d[k] = e], [p.f = e], [del]) are
    weak updates that also use the container, so dependency chains
    through dictionary history arise naturally. *)

module Sset = Nfl.Ast.Sset

val uses : Nfl.Ast.stmt -> Sset.t
val defs : Nfl.Ast.stmt -> Sset.t

val is_strong_def : Nfl.Ast.stmt -> bool
(** True when the definition completely replaces the previous value
    ([x = e], [for]-binders); weak updates must not kill. *)

val node_uses : Cfg.t -> Cfg.node -> Sset.t
val node_defs : Cfg.t -> Cfg.node -> Sset.t
