(** Generic monotone-framework worklist solver, parameterized over the
    fact lattice. Termination needs [join] monotone and finite lattice
    height (all client facts are finite sets). *)

type direction = Forward | Backward

type 'fact problem = {
  direction : direction;
  init : 'fact;  (** fact at the boundary (entry or exit) *)
  bottom : 'fact;  (** initial value for interior points *)
  transfer : Cfg.node -> 'fact -> 'fact;
  join : 'fact -> 'fact -> 'fact;
  equal : 'fact -> 'fact -> bool;
}

type 'fact solution = {
  inf : Cfg.node -> 'fact;  (** fact flowing into the node (execution order) *)
  outf : Cfg.node -> 'fact;  (** fact flowing out of the node *)
}

val solve : Cfg.t -> 'fact problem -> 'fact solution
