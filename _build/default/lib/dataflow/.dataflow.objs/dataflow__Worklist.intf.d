lib/dataflow/worklist.mli: Cfg
