lib/dataflow/defs_uses.ml: Cfg Nfl
