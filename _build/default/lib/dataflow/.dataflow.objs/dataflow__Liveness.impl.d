lib/dataflow/liveness.ml: Cfg Defs_uses Nfl Worklist
