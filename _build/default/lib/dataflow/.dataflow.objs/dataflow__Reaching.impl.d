lib/dataflow/reaching.ml: Cfg Defs_uses Fmt Nfl Set Worklist
