lib/dataflow/worklist.ml: Cfg List Queue
