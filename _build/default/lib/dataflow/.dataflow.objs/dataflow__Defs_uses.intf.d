lib/dataflow/defs_uses.mli: Cfg Nfl
