lib/dataflow/liveness.mli: Cfg Nfl
