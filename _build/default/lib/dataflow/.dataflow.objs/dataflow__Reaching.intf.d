lib/dataflow/reaching.mli: Cfg Format Nfl Set
