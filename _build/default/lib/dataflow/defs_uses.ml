(** Per-statement definitions and uses.

    The def/use conventions encode NFL's aliasing-free value semantics:

    - [d[k] = e] and [del d[k]] are *weak* updates: they define the
      container [d] but also use it (the rest of the dictionary flows
      through), plus the key and value expressions.
    - [p.f = e] likewise defines and uses the packet variable [p].
    - branch statements use their condition; [for x in e] additionally
      defines the loop variable.

    These are exactly the dependencies backward slicing follows, so
    getting them conservative-but-tight controls slice quality. *)

module Sset = Nfl.Ast.Sset

let uses (s : Nfl.Ast.stmt) =
  let ev = Nfl.Ast.expr_vars in
  match s.Nfl.Ast.kind with
  | Nfl.Ast.Assign (lv, e) ->
      let lv_uses =
        match lv with
        | Nfl.Ast.L_var _ -> Sset.empty
        | Nfl.Ast.L_index (d, k) -> Sset.add d (ev k)
        | Nfl.Ast.L_field (p, _) -> Sset.singleton p
      in
      Sset.union lv_uses (ev e)
  | Nfl.Ast.If (c, _, _) | Nfl.Ast.While (c, _) | Nfl.Ast.For_in (_, c, _) -> ev c
  | Nfl.Ast.Return (Some e) | Nfl.Ast.Expr e -> ev e
  | Nfl.Ast.Delete (d, k) -> Sset.add d (ev k)
  | Nfl.Ast.Return None | Nfl.Ast.Pass -> Sset.empty

let defs (s : Nfl.Ast.stmt) =
  match s.Nfl.Ast.kind with
  | Nfl.Ast.Assign (lv, _) -> (
      match lv with
      | Nfl.Ast.L_var x | Nfl.Ast.L_index (x, _) | Nfl.Ast.L_field (x, _) -> Sset.singleton x)
  | Nfl.Ast.For_in (x, _, _) -> Sset.singleton x
  | Nfl.Ast.Delete (d, _) -> Sset.singleton d
  | Nfl.Ast.If _ | Nfl.Ast.While _ | Nfl.Ast.Return _ | Nfl.Ast.Expr _ | Nfl.Ast.Pass ->
      Sset.empty

(** A definition is *strong* when it completely replaces the previous
    value ([x = e]); weak updates ([d[k] = e], [p.f = e], [del]) must
    not kill earlier reaching definitions of the same variable. *)
let is_strong_def (s : Nfl.Ast.stmt) =
  match s.Nfl.Ast.kind with
  | Nfl.Ast.Assign (Nfl.Ast.L_var _, _) -> true
  | Nfl.Ast.For_in _ -> true
  | Nfl.Ast.Assign (Nfl.Ast.L_index _, _) | Nfl.Ast.Assign (Nfl.Ast.L_field _, _)
  | Nfl.Ast.Delete _ | Nfl.Ast.If _ | Nfl.Ast.While _ | Nfl.Ast.Return _ | Nfl.Ast.Expr _
  | Nfl.Ast.Pass ->
      false

let node_uses g n = match Cfg.stmt_of g n with Some s -> uses s | None -> Sset.empty
let node_defs g n = match Cfg.stmt_of g n with Some s -> defs s | None -> Sset.empty
