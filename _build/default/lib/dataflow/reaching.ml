(** Reaching definitions.

    A definition is a pair (variable, defining statement id); the
    special id [0] denotes "defined before this region" (a global
    initializer or loop-carried state when analyzing a loop body in
    isolation). Weak updates (dictionary and packet-field writes)
    generate but do not kill, per {!Defs_uses.is_strong_def}. *)

module Def = struct
  type t = { var : string; sid : int }

  let compare (a : t) (b : t) = compare (a.var, a.sid) (b.var, b.sid)
  let pp ppf d = Fmt.pf ppf "%s@s%d" d.var d.sid
end

module Dset = Set.Make (Def)
module Sset = Nfl.Ast.Sset

type solution = { reach_in : Cfg.node -> Dset.t; reach_out : Cfg.node -> Dset.t }

(** [solve ?entry_defs g] computes reaching definitions over [g].
    [entry_defs] are variables considered defined at [Entry] with the
    pseudo-id 0. *)
let solve ?(entry_defs = Sset.empty) g =
  let transfer n fact =
    match Cfg.stmt_of g n with
    | None ->
        if Cfg.node_equal n Cfg.Entry then
          Sset.fold (fun v acc -> Dset.add { Def.var = v; sid = 0 } acc) entry_defs fact
        else fact
    | Some s ->
        let ds = Defs_uses.defs s in
        let killed =
          if Defs_uses.is_strong_def s then
            Dset.filter (fun d -> not (Sset.mem d.Def.var ds)) fact
          else fact
        in
        Sset.fold (fun v acc -> Dset.add { Def.var = v; sid = s.Nfl.Ast.sid } acc) ds killed
  in
  let sol =
    Worklist.solve g
      {
        Worklist.direction = Worklist.Forward;
        init = Dset.empty;
        bottom = Dset.empty;
        transfer;
        join = Dset.union;
        equal = Dset.equal;
      }
  in
  { reach_in = sol.Worklist.inf; reach_out = sol.Worklist.outf }

(** Definitions of [var] reaching the entry of [n]. *)
let defs_reaching sol n var =
  Dset.filter (fun d -> d.Def.var = var) (sol.reach_in n)
