(** Dynamic program slicing (Agrawal & Horgan 1990).

    Works over an execution trace — the sequence of statement ids the
    interpreter actually executed. Each executed instance is linked to

    - the most recent instance defining each variable it uses (weak
      container updates use the container themselves, so chains through
      dictionary history arise naturally), and
    - the most recent instance of a statement it is statically
      control-dependent on (dynamic control dependence).

    The dynamic slice of a criterion instance is the backward closure
    over these links, projected to statement ids. This is the
    "statements that *really* lead to the final behaviour" notion the
    paper contrasts with static slices. *)

module Imap = Map.Make (Int)
module Iset = Set.Make (Int)
module Sset = Nfl.Ast.Sset
module Smap = Map.Make (String)

type trace = int list
(** Executed statement ids, in execution order. *)

type ctx = {
  defs : Sset.t Imap.t;  (** sid -> variables it defines *)
  uses : Sset.t Imap.t;  (** sid -> variables it uses *)
  cd_parents : Iset.t Imap.t;  (** sid -> sids it is control dependent on *)
}

(** Build the static context a dynamic slice needs from a block. *)
let ctx_of_block (block : Nfl.Ast.block) =
  let cfg = Cfg.of_block block in
  let cdg = Cdg.compute cfg in
  let defs = ref Imap.empty and uses = ref Imap.empty and cds = ref Imap.empty in
  Nfl.Ast.iter_stmts
    (fun s ->
      let sid = s.Nfl.Ast.sid in
      defs := Imap.add sid (Dataflow.Defs_uses.defs s) !defs;
      uses := Imap.add sid (Dataflow.Defs_uses.uses s) !uses;
      let parents =
        Cfg.Nset.fold
          (fun n acc -> match n with Cfg.Stmt p -> Iset.add p acc | _ -> acc)
          (Cdg.deps_of cdg (Cfg.Stmt sid))
          Iset.empty
      in
      cds := Imap.add sid parents !cds)
    block;
  { defs = !defs; uses = !uses; cd_parents = !cds }

let lookup m sid ~default = Option.value ~default (Imap.find_opt sid m)

(** [slice ctx trace ~criterion] is the dynamic slice (set of statement
    ids) for the *last* execution of [criterion] in [trace]; empty when
    the criterion never executed. *)
let slice ctx (trace : trace) ~criterion =
  let arr = Array.of_list trace in
  let n = Array.length arr in
  (* Pass 1: per-instance parent links. *)
  let parents = Array.make n Iset.empty in
  let last_def : int Smap.t ref = ref Smap.empty in
  let last_exec : int Imap.t ref = ref Imap.empty in
  for i = 0 to n - 1 do
    let sid = arr.(i) in
    let links = ref Iset.empty in
    Sset.iter
      (fun v ->
        match Smap.find_opt v !last_def with
        | Some j -> links := Iset.add j !links
        | None -> ())
      (lookup ctx.uses sid ~default:Sset.empty);
    (* Dynamic control parent: latest execution of any static CD parent. *)
    let cd = lookup ctx.cd_parents sid ~default:Iset.empty in
    let ctl =
      Iset.fold
        (fun p acc ->
          match (Imap.find_opt p !last_exec, acc) with
          | Some j, Some k -> Some (max j k)
          | Some j, None -> Some j
          | None, acc -> acc)
        cd None
    in
    (match ctl with Some j -> links := Iset.add j !links | None -> ());
    parents.(i) <- !links;
    Sset.iter
      (fun v -> last_def := Smap.add v i !last_def)
      (lookup ctx.defs sid ~default:Sset.empty);
    last_exec := Imap.add sid i !last_exec
  done;
  (* Criterion: last instance of the criterion statement. *)
  match Imap.find_opt criterion !last_exec with
  | None -> Iset.empty
  | Some start ->
      let rec close seen frontier =
        match frontier with
        | [] -> seen
        | i :: rest ->
            if Iset.mem i seen then close seen rest
            else close (Iset.add i seen) (Iset.elements parents.(i) @ rest)
      in
      let instances = close Iset.empty [ start ] in
      Iset.map (fun i -> arr.(i)) instances

(** Union of dynamic slices over every execution of [criterion]. *)
let slice_all ctx trace ~criterion =
  (* Equivalent to slicing from each instance; we reuse [slice] per
     suffix cheaply by slicing the whole trace from each occurrence. *)
  let occurrences =
    List.filteri (fun _ sid -> sid = criterion) trace |> List.length
  in
  if occurrences = 0 then Iset.empty
  else
    (* Closure from all instances at once: run the same link pass but
       seed with every instance of the criterion. *)
    let arr = Array.of_list trace in
    let n = Array.length arr in
    let parents = Array.make n Iset.empty in
    let last_def : int Smap.t ref = ref Smap.empty in
    let last_exec : int Imap.t ref = ref Imap.empty in
    let seeds = ref [] in
    for i = 0 to n - 1 do
      let sid = arr.(i) in
      if sid = criterion then seeds := i :: !seeds;
      let links = ref Iset.empty in
      Sset.iter
        (fun v ->
          match Smap.find_opt v !last_def with Some j -> links := Iset.add j !links | None -> ())
        (lookup ctx.uses sid ~default:Sset.empty);
      let cd = lookup ctx.cd_parents sid ~default:Iset.empty in
      (Iset.fold
         (fun p acc -> match Imap.find_opt p !last_exec with Some j -> max j acc | None -> acc)
         cd (-1)
      |> fun j -> if j >= 0 then links := Iset.add j !links);
      parents.(i) <- !links;
      Sset.iter (fun v -> last_def := Smap.add v i !last_def) (lookup ctx.defs sid ~default:Sset.empty);
      last_exec := Imap.add sid i !last_exec
    done;
    let rec close seen frontier =
      match frontier with
      | [] -> seen
      | i :: rest ->
          if Iset.mem i seen then close seen rest
          else close (Iset.add i seen) (Iset.elements parents.(i) @ rest)
    in
    let instances = close Iset.empty !seeds in
    Iset.map (fun i -> arr.(i)) instances
