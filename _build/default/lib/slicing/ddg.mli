(** Data-dependence graph: [n] depends on [m] when [m] defines a
    variable [n] uses and the definition reaches [n]. *)

type t

val compute : ?entry_defs:Nfl.Ast.Sset.t -> Cfg.t -> t
(** [entry_defs] marks variables defined before the region. *)

val deps_of : t -> Cfg.node -> Cfg.Nset.t
(** Nodes [n] data-depends on. *)

val pp : Format.formatter -> t -> unit
