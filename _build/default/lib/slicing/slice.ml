(** Static backward program slicing (Weiser, via PDG reachability).

    A slice is the set of statements that might affect a criterion
    statement — here always taken with respect to all the variables the
    criterion uses, which is exactly how Algorithm 1 invokes
    [BackwardSlice] (from a packet-output call on its argument
    variables, or from a state assignment on its left-hand side). *)

module Nset = Cfg.Nset
module Sset = Nfl.Ast.Sset

type ctx = { block : Nfl.Ast.block; cfg : Cfg.t; pdg : Pdg.t }

(** Prepare a block for slicing. [entry_defs] names variables defined
    before the block (globals / loop-carried state). *)
let of_block ?(entry_defs = Sset.empty) block =
  let cfg = Cfg.of_block block in
  { block; cfg; pdg = Pdg.build ~entry_defs cfg }

(** [backward ctx ~criteria] is the backward slice from the given
    statement ids: the criteria plus every statement they transitively
    data- or control-depend on. Result is sorted statement ids. *)
let backward ctx ~criteria =
  let seeds = List.map (fun sid -> Cfg.Stmt sid) criteria in
  let closure = Pdg.backward_closure ctx.pdg seeds in
  Nset.fold
    (fun n acc -> match n with Cfg.Stmt sid -> sid :: acc | Cfg.Entry | Cfg.Exit -> acc)
    closure []
  |> List.sort compare

(** Statements in [ctx] whose ids satisfy [pred]; used to find slicing
    criteria (e.g. all packet-output statements). *)
let find_stmts ctx pred =
  let acc = ref [] in
  Nfl.Ast.iter_stmts (fun s -> if pred s then acc := s.Nfl.Ast.sid :: !acc) ctx.block;
  List.rev !acc

(** Union of backward slices from each criterion — Algorithm 1 lines
    1-4 and 6-9 both have this shape. *)
let backward_union ctx ~criteria =
  (* PDG closure is already a union when seeded with all criteria. *)
  backward ctx ~criteria

(** Restrict a block to the statements in [keep] (plus enclosing branch
    statements, which [keep] must already contain if the closure came
    from {!backward}). Produces a runnable residual program block. *)
let rec restrict_block keep (block : Nfl.Ast.block) =
  List.filter_map
    (fun (s : Nfl.Ast.stmt) ->
      let kept = List.mem s.Nfl.Ast.sid keep in
      match s.Nfl.Ast.kind with
      | Nfl.Ast.If (c, b1, b2) ->
          let b1' = restrict_block keep b1 and b2' = restrict_block keep b2 in
          if kept || b1' <> [] || b2' <> [] then
            Some { s with Nfl.Ast.kind = Nfl.Ast.If (c, b1', b2') }
          else None
      | Nfl.Ast.While (c, b) ->
          let b' = restrict_block keep b in
          if kept || b' <> [] then Some { s with Nfl.Ast.kind = Nfl.Ast.While (c, b') } else None
      | Nfl.Ast.For_in (x, e, b) ->
          let b' = restrict_block keep b in
          if kept || b' <> [] then Some { s with Nfl.Ast.kind = Nfl.Ast.For_in (x, e, b') }
          else None
      | Nfl.Ast.Assign _ | Nfl.Ast.Return _ | Nfl.Ast.Expr _ | Nfl.Ast.Delete _ | Nfl.Ast.Pass
        ->
          if kept then Some s else None)
    block
