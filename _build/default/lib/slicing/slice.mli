(** Static backward program slicing (Weiser, via PDG reachability).

    A slice is the set of statements that might affect a criterion,
    taken with respect to all variables the criterion uses — exactly
    how Algorithm 1 invokes [BackwardSlice]. *)

type ctx = { block : Nfl.Ast.block; cfg : Cfg.t; pdg : Pdg.t }

val of_block : ?entry_defs:Nfl.Ast.Sset.t -> Nfl.Ast.block -> ctx
(** Prepare a block; [entry_defs] names variables defined before it
    (globals / loop-carried state). *)

val backward : ctx -> criteria:int list -> int list
(** Backward slice from the given statement ids: the criteria plus
    everything they transitively data- or control-depend on; sorted. *)

val find_stmts : ctx -> (Nfl.Ast.stmt -> bool) -> int list
(** Statement ids in the block satisfying a predicate (used to locate
    slicing criteria such as packet outputs). *)

val backward_union : ctx -> criteria:int list -> int list
(** Union of the backward slices of all criteria. *)

val restrict_block : int list -> Nfl.Ast.block -> Nfl.Ast.block
(** Residual runnable block containing only the kept statements
    (compound statements survive whenever their bodies do). *)
