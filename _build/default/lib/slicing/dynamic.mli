(** Dynamic program slicing (Agrawal & Horgan 1990): the statements
    that {e really} led to a criterion in one concrete execution,
    computed from an interpreter trace plus static def/use and
    control-dependence information. *)

module Imap : Map.S with type key = int
module Iset : Set.S with type elt = int

type trace = int list
(** Executed statement ids, in execution order (as recorded by
    {!Symexec.Interp}). *)

type ctx
(** Static context: per-statement defs/uses and control-dependence
    parents. *)

val ctx_of_block : Nfl.Ast.block -> ctx

val slice : ctx -> trace -> criterion:int -> Iset.t
(** Dynamic slice (statement ids) for the {e last} execution of
    [criterion]; empty when it never executed. *)

val slice_all : ctx -> trace -> criterion:int -> Iset.t
(** Union over every execution of [criterion]. *)
