(** Data-dependence graph.

    Edge [m -> n] (recorded as [n] depends on [m]) when statement [m]
    defines a variable that statement [n] uses and the definition
    reaches [n]. Built directly from reaching definitions. *)

module Nmap = Cfg.Nmap
module Nset = Cfg.Nset
module Sset = Nfl.Ast.Sset

type t = { deps : Nset.t Nmap.t  (** node -> nodes it data-depends on *) }

let deps_of t n = Option.value ~default:Nset.empty (Nmap.find_opt n t.deps)

(** [compute ?entry_defs g]: [entry_defs] marks variables defined before
    the region (their uses depend on no in-region statement). *)
let compute ?(entry_defs = Sset.empty) g =
  let reaching = Dataflow.Reaching.solve ~entry_defs g in
  let deps = ref Nmap.empty in
  List.iter
    (fun n ->
      match Cfg.stmt_of g n with
      | None -> ()
      | Some s ->
          let used = Dataflow.Defs_uses.uses s in
          let srcs =
            Sset.fold
              (fun v acc ->
                Dataflow.Reaching.Dset.fold
                  (fun d acc ->
                    if d.Dataflow.Reaching.Def.sid = 0 then acc
                    else Nset.add (Cfg.Stmt d.Dataflow.Reaching.Def.sid) acc)
                  (Dataflow.Reaching.defs_reaching reaching n v)
                  acc)
              used Nset.empty
          in
          if not (Nset.is_empty srcs) then deps := Nmap.add n srcs !deps)
    (Cfg.nodes g);
  { deps = !deps }

let pp ppf t =
  Nmap.iter
    (fun n srcs ->
      Fmt.pf ppf "%a <-data- {%a}@." Cfg.pp_node n
        Fmt.(list ~sep:(any ", ") Cfg.pp_node)
        (Nset.elements srcs))
    t.deps
