(** Program-dependence graph: union of data and control dependence
    over one CFG — the representation backward slicing traverses. *)

type t = { cfg : Cfg.t; data : Ddg.t; control : Cdg.t }

val build : ?entry_defs:Nfl.Ast.Sset.t -> Cfg.t -> t

val preds : t -> Cfg.node -> Cfg.Nset.t
(** All PDG predecessors: data sources plus controlling branches
    (virtual nodes filtered out). *)

val backward_closure : t -> Cfg.node list -> Cfg.Nset.t
(** Backward reachability from a seed set. *)
