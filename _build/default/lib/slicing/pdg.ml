(** Program-dependence graph: union of data and control dependences
    over one CFG (Ferrante et al.; the representation program slicing
    traverses). *)

module Nmap = Cfg.Nmap
module Nset = Cfg.Nset
module Sset = Nfl.Ast.Sset

type t = {
  cfg : Cfg.t;
  data : Ddg.t;
  control : Cdg.t;
}

let build ?(entry_defs = Sset.empty) cfg =
  { cfg; data = Ddg.compute ~entry_defs cfg; control = Cdg.compute cfg }

(** All PDG predecessors of [n]: data sources plus controlling
    branches. [Entry] is filtered out (it is not a statement). *)
let preds t n =
  let ctrl = Cdg.deps_of t.control n in
  let data = Ddg.deps_of t.data n in
  Nset.filter
    (fun m -> match m with Cfg.Stmt _ -> true | Cfg.Entry | Cfg.Exit -> false)
    (Nset.union ctrl data)

(** Backward reachability in the PDG from a seed set of nodes. *)
let backward_closure t seeds =
  let rec go seen frontier =
    match frontier with
    | [] -> seen
    | n :: rest ->
        if Nset.mem n seen then go seen rest
        else
          let seen = Nset.add n seen in
          let ps = preds t n in
          go seen (Nset.elements ps @ rest)
  in
  go Nset.empty seeds
