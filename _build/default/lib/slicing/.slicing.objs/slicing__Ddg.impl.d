lib/slicing/ddg.ml: Cfg Dataflow Fmt List Nfl Option
