lib/slicing/slice.ml: Cfg List Nfl Pdg
