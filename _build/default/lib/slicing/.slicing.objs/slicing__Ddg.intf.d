lib/slicing/ddg.mli: Cfg Format Nfl
