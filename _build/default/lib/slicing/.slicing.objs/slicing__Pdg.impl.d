lib/slicing/pdg.ml: Cdg Cfg Ddg Nfl
