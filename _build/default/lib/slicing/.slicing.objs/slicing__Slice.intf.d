lib/slicing/slice.mli: Cfg Nfl Pdg
