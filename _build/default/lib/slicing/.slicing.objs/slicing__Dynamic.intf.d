lib/slicing/dynamic.mli: Map Nfl Set
