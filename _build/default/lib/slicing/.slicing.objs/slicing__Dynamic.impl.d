lib/slicing/dynamic.ml: Array Cdg Cfg Dataflow Int List Map Nfl Option Set String
