lib/slicing/pdg.mli: Cdg Cfg Ddg Nfl
