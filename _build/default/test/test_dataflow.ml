open Nfl
module Sset = Ast.Sset

let parse_main src = (Parser.program src).Ast.main

let test_defs_uses () =
  let b = parse_main "main { x = y + z; d[k] = v; pkt.ip_src = a; del d[k2]; send(p); }" in
  let s = List.nth b in
  let check_du i defs uses =
    let st = s i in
    Alcotest.(check (slist string compare)) "defs" defs (Sset.elements (Dataflow.Defs_uses.defs st));
    Alcotest.(check (slist string compare)) "uses" uses (Sset.elements (Dataflow.Defs_uses.uses st))
  in
  check_du 0 [ "x" ] [ "y"; "z" ];
  check_du 1 [ "d" ] [ "d"; "k"; "v" ];
  check_du 2 [ "pkt" ] [ "a"; "pkt" ];
  check_du 3 [ "d" ] [ "d"; "k2" ];
  check_du 4 [] [ "p" ]

let test_strong_vs_weak () =
  let b = parse_main "main { x = 1; d[k] = 1; pkt.f = 1; del d[k]; }" in
  let strong i = Dataflow.Defs_uses.is_strong_def (List.nth b i) in
  Alcotest.(check bool) "x=1 strong" true (strong 0);
  Alcotest.(check bool) "d[k]=1 weak" false (strong 1);
  Alcotest.(check bool) "pkt.f=1 weak" false (strong 2);
  Alcotest.(check bool) "del weak" false (strong 3)

(* ids: 1: x=1; 2: x=2; 3: y=x; — only def 2 reaches s3. *)
let test_reaching_kill () =
  let b = parse_main "main { x = 1; x = 2; y = x; }" in
  let g = Cfg.of_block b in
  let sol = Dataflow.Reaching.solve g in
  let defs = Dataflow.Reaching.defs_reaching sol (Cfg.Stmt 3) "x" in
  Alcotest.(check (list int)) "only s2"
    [ 2 ]
    (List.map
       (fun d -> d.Dataflow.Reaching.Def.sid)
       (Dataflow.Reaching.Dset.elements defs))

(* ids: 1: if(c){2: x=1;}else{3: x=2;} 4: y=x; — both defs reach. *)
let test_reaching_join () =
  let b = parse_main "main { if (c) { x = 1; } else { x = 2; } y = x; }" in
  let g = Cfg.of_block b in
  let sol = Dataflow.Reaching.solve g in
  let defs = Dataflow.Reaching.defs_reaching sol (Cfg.Stmt 4) "x" in
  Alcotest.(check (list int)) "both defs"
    [ 2; 3 ]
    (List.sort compare
       (List.map
          (fun d -> d.Dataflow.Reaching.Def.sid)
          (Dataflow.Reaching.Dset.elements defs)))

(* Weak updates accumulate: 1: d[a]=1; 2: d[b]=2; 3: y=d[k]; *)
let test_reaching_weak_updates_accumulate () =
  let b = parse_main "main { d[a] = 1; d[b] = 2; y = d[k]; }" in
  let g = Cfg.of_block b in
  let sol = Dataflow.Reaching.solve g in
  let defs = Dataflow.Reaching.defs_reaching sol (Cfg.Stmt 3) "d" in
  Alcotest.(check (list int)) "both container writes reach"
    [ 1; 2 ]
    (List.sort compare
       (List.map
          (fun d -> d.Dataflow.Reaching.Def.sid)
          (Dataflow.Reaching.Dset.elements defs)))

(* Loop-carried: 1: while(c){ 2: x=x+1; } — def at s2 reaches s2 again. *)
let test_reaching_loop_carried () =
  let b = parse_main "main { while (c) { x = x + 1; } }" in
  let g = Cfg.of_block b in
  let sol = Dataflow.Reaching.solve g in
  let defs = Dataflow.Reaching.defs_reaching sol (Cfg.Stmt 2) "x" in
  let sids =
    List.sort compare
      (List.map (fun d -> d.Dataflow.Reaching.Def.sid) (Dataflow.Reaching.Dset.elements defs))
  in
  Alcotest.(check (list int)) "loop carried" [ 2 ] sids

let test_reaching_entry_defs () =
  let b = parse_main "main { y = x; }" in
  let g = Cfg.of_block b in
  let sol = Dataflow.Reaching.solve ~entry_defs:(Sset.singleton "x") g in
  let defs = Dataflow.Reaching.defs_reaching sol (Cfg.Stmt 1) "x" in
  Alcotest.(check (list int)) "pseudo-def id 0"
    [ 0 ]
    (List.map (fun d -> d.Dataflow.Reaching.Def.sid) (Dataflow.Reaching.Dset.elements defs))

(* ids: 1: x=1; 2: y=x; 3: z=y; — liveness. *)
let test_liveness_chain () =
  let b = parse_main "main { x = 1; y = x; z = y; }" in
  let g = Cfg.of_block b in
  let sol = Dataflow.Liveness.solve g in
  Alcotest.(check (slist string compare)) "x live into s2" [ "x" ]
    (Sset.elements (sol.Dataflow.Liveness.live_in (Cfg.Stmt 2)));
  Alcotest.(check (slist string compare)) "nothing live out of s3" []
    (Sset.elements (sol.Dataflow.Liveness.live_out (Cfg.Stmt 3)));
  Alcotest.(check (slist string compare)) "nothing live into s1" []
    (Sset.elements (sol.Dataflow.Liveness.live_in (Cfg.Stmt 1)))

let test_liveness_branch () =
  (* 1: if(c){2: y=a;}else{3: y=b;} 4: send(y); *)
  let b = parse_main "main { if (c) { y = a; } else { y = b; } send(y); }" in
  let g = Cfg.of_block b in
  let sol = Dataflow.Liveness.solve g in
  let live1 = sol.Dataflow.Liveness.live_in (Cfg.Stmt 1) in
  Alcotest.(check (slist string compare)) "a b c live at branch" [ "a"; "b"; "c" ]
    (Sset.elements live1)

let test_liveness_at_exit () =
  let b = parse_main "main { x = 1; }" in
  let g = Cfg.of_block b in
  let sol = Dataflow.Liveness.solve ~live_at_exit:(Sset.singleton "x") g in
  Alcotest.(check bool) "x live out of s1" true
    (Sset.mem "x" (sol.Dataflow.Liveness.live_out (Cfg.Stmt 1)))

let test_liveness_loop () =
  (* 1: while(c){ 2: x=x+1; } — x live at loop entry (loop-carried use). *)
  let b = parse_main "main { while (c) { x = x + 1; } }" in
  let g = Cfg.of_block b in
  let sol = Dataflow.Liveness.solve g in
  Alcotest.(check bool) "x live into header" true
    (Sset.mem "x" (sol.Dataflow.Liveness.live_in (Cfg.Stmt 1)))

let suite =
  [
    Alcotest.test_case "defs/uses" `Quick test_defs_uses;
    Alcotest.test_case "strong vs weak defs" `Quick test_strong_vs_weak;
    Alcotest.test_case "reaching: kill" `Quick test_reaching_kill;
    Alcotest.test_case "reaching: join" `Quick test_reaching_join;
    Alcotest.test_case "reaching: weak updates accumulate" `Quick test_reaching_weak_updates_accumulate;
    Alcotest.test_case "reaching: loop carried" `Quick test_reaching_loop_carried;
    Alcotest.test_case "reaching: entry defs" `Quick test_reaching_entry_defs;
    Alcotest.test_case "liveness: chain" `Quick test_liveness_chain;
    Alcotest.test_case "liveness: branch" `Quick test_liveness_branch;
    Alcotest.test_case "liveness: live at exit" `Quick test_liveness_at_exit;
    Alcotest.test_case "liveness: loop" `Quick test_liveness_loop;
  ]
