open Statealyzer

let canon program = Nfl.Transform.canonicalize program

let cat = Alcotest.testable Varclass.pp_category ( = )

let analyze_lb () = Varclass.analyze (canon (Nfs.Lb.program ()))

(* The paper's Table 1, on the paper's own example. *)
let test_lb_table1 () =
  let t = analyze_lb () in
  let check v expected =
    match Varclass.category_of t v with
    | Some c -> Alcotest.check cat v expected c
    | None -> Alcotest.failf "%s not classified" v
  in
  check "mode" Varclass.Cfg_var;
  check "lb_ip" Varclass.Cfg_var;
  check "lb_port" Varclass.Cfg_var;
  check "servers" Varclass.Cfg_var;
  check "f2b_nat" Varclass.Ois_var;
  check "b2f_nat" Varclass.Ois_var;
  check "rr_idx" Varclass.Ois_var;
  check "cur_port" Varclass.Ois_var;
  check "pass_stat" Varclass.Log_var;
  check "drop_stat" Varclass.Log_var

let test_lb_pkt_var () =
  let t = analyze_lb () in
  (* The callback's parameter was inlined; the receive variable is the
     loop's recv target. *)
  Alcotest.(check bool) "pkt var classified" true
    (Varclass.category_of t t.Varclass.pkt_var = Some Varclass.Pkt_var)

let test_lb_locals () =
  let t = analyze_lb () in
  (* Scratch variables inside the callback are locals (inlined and
     renamed, so look them up by suffix). *)
  let locals = Varclass.vars_of_category t Varclass.Local in
  Alcotest.(check bool) "has locals" true (List.length locals > 3);
  Alcotest.(check bool) "nat tuple is local" true
    (List.exists (fun v -> Filename.check_suffix v "nat_tpl") locals)

let test_lb_features () =
  let t = analyze_lb () in
  let f v = List.assoc v t.Varclass.features in
  let mode = f "mode" in
  Alcotest.(check bool) "mode persistent" true mode.Varclass.persistent;
  Alcotest.(check bool) "mode top-level" true mode.Varclass.top_level;
  Alcotest.(check bool) "mode not updateable" false mode.Varclass.updateable;
  let rr = f "rr_idx" in
  Alcotest.(check bool) "rr_idx updateable" true rr.Varclass.updateable;
  Alcotest.(check bool) "rr_idx output-impacting" true rr.Varclass.output_impacting;
  let ps = f "pass_stat" in
  Alcotest.(check bool) "pass_stat not output-impacting" false ps.Varclass.output_impacting

let test_unused_cfg () =
  (* MTU and the HASH_MODE constant are declared but never used by the
     loop in our transliteration. *)
  let t = analyze_lb () in
  let unused = Varclass.vars_of_category t Varclass.Unused_cfg in
  Alcotest.(check bool) "MTU unused" true (List.mem "MTU" unused)

let test_nat_classification () =
  let t = Varclass.analyze (canon (Nfs.Nat.program ())) in
  let check v expected =
    Alcotest.check cat v expected (Option.get (Varclass.category_of t v))
  in
  check "nat_ip" Varclass.Cfg_var;
  check "inside_net" Varclass.Cfg_var;
  check "fwd_map" Varclass.Ois_var;
  check "rev_map" Varclass.Ois_var;
  check "next_port" Varclass.Ois_var;
  check "translated" Varclass.Log_var;
  check "dropped" Varclass.Log_var

let test_firewall_classification () =
  let t = Varclass.analyze (canon (Nfs.Firewall.program ())) in
  let check v expected =
    Alcotest.check cat v expected (Option.get (Varclass.category_of t v))
  in
  check "open_ports" Varclass.Cfg_var;
  check "strict_mode" Varclass.Cfg_var;
  check "conn_table" Varclass.Ois_var;
  check "allowed" Varclass.Log_var;
  check "blocked" Varclass.Log_var

let test_snort_no_ois () =
  (* snort as a tap: all its mutable state is log-only. *)
  let t = Varclass.analyze (canon (Nfs.Snort_lite.program ())) in
  Alcotest.(check (list string)) "no output-impacting state" []
    (Varclass.vars_of_category t Varclass.Ois_var);
  (* ... but there is plenty of log state. *)
  Alcotest.(check bool) "log vars present" true
    (List.length (Varclass.vars_of_category t Varclass.Log_var) >= 5)

let test_balance_ois () =
  let t = Varclass.analyze (canon (Nfs.Balance.program ())) in
  let ois = Varclass.vars_of_category t Varclass.Ois_var in
  (* After TCP unfolding: connection state, backend choice and the
     round-robin index all impact output. *)
  List.iter
    (fun v -> Alcotest.(check bool) (v ^ " is ois") true (List.mem v ois))
    [ "_tcp"; "_backend"; "idx" ];
  let logs = Varclass.vars_of_category t Varclass.Log_var in
  Alcotest.(check bool) "relay counters are log vars" true (List.mem "bytes_relayed" logs)

let test_pkt_slice_excludes_logs () =
  let t = analyze_lb () in
  (* No statement assigning pass_stat/drop_stat may be in the packet
     slice. *)
  let p = canon (Nfs.Lb.program ()) in
  Nfl.Ast.iter_program
    (fun s ->
      match s.Nfl.Ast.kind with
      | Nfl.Ast.Assign (Nfl.Ast.L_var v, _) when v = "pass_stat" || v = "drop_stat" ->
          Alcotest.(check bool) (v ^ " assignment outside slice") false
            (List.mem s.Nfl.Ast.sid t.Varclass.pkt_slice)
      | _ -> ())
    p

let suite =
  [
    Alcotest.test_case "LB Table 1" `Quick test_lb_table1;
    Alcotest.test_case "LB pkt var" `Quick test_lb_pkt_var;
    Alcotest.test_case "LB locals" `Quick test_lb_locals;
    Alcotest.test_case "LB features" `Quick test_lb_features;
    Alcotest.test_case "unused config" `Quick test_unused_cfg;
    Alcotest.test_case "NAT classification" `Quick test_nat_classification;
    Alcotest.test_case "firewall classification" `Quick test_firewall_classification;
    Alcotest.test_case "snort has no ois state" `Quick test_snort_no_ois;
    Alcotest.test_case "balance ois after unfolding" `Quick test_balance_ois;
    Alcotest.test_case "packet slice excludes log updates" `Quick test_pkt_slice_excludes_logs;
  ]
