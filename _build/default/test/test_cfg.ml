open Nfl

let parse_main src = (Parser.program src).Ast.main

(* main with ids: 1: x=1; 2: if(c){3: y=1;}else{4: y=2;} 5: z=y; *)
let diamond = "main { x = 1; if (c) { y = 1; } else { y = 2; } z = y; }"

let node = Alcotest.testable Cfg.pp_node Cfg.node_equal

let sorted_succs g n = List.sort Cfg.node_compare (Cfg.succ_nodes g n)

let test_diamond_edges () =
  let g = Cfg.of_block (parse_main diamond) in
  Alcotest.(check (list node)) "entry -> s1, exit(pseudo)"
    [ Cfg.Exit; Cfg.Stmt 1 ]
    (sorted_succs g Cfg.Entry);
  Alcotest.(check (list node)) "s1 -> s2" [ Cfg.Stmt 2 ] (sorted_succs g (Cfg.Stmt 1));
  Alcotest.(check (list node)) "branch" [ Cfg.Stmt 3; Cfg.Stmt 4 ] (sorted_succs g (Cfg.Stmt 2));
  Alcotest.(check (list node)) "join at s5" [ Cfg.Stmt 5 ] (sorted_succs g (Cfg.Stmt 3));
  Alcotest.(check (list node)) "join at s5'" [ Cfg.Stmt 5 ] (sorted_succs g (Cfg.Stmt 4));
  Alcotest.(check (list node)) "s5 -> exit" [ Cfg.Exit ] (sorted_succs g (Cfg.Stmt 5))

let test_branch_labels () =
  let g = Cfg.of_block (parse_main diamond) in
  let labels = Cfg.succs g (Cfg.Stmt 2) in
  let lbl_of n = List.assoc n (List.map (fun (m, l) -> (m, l)) labels) in
  Alcotest.(check bool) "then edge true" true (lbl_of (Cfg.Stmt 3) = Cfg.True);
  Alcotest.(check bool) "else edge false" true (lbl_of (Cfg.Stmt 4) = Cfg.False)

(* 1: while(c) { 2: x=x+1; } 3: y=x; *)
let loop = "main { while (c) { x = x + 1; } y = x; }"

let test_loop_edges () =
  let g = Cfg.of_block (parse_main loop) in
  Alcotest.(check (list node)) "while -> body,cont"
    [ Cfg.Stmt 2; Cfg.Stmt 3 ]
    (sorted_succs g (Cfg.Stmt 1));
  Alcotest.(check (list node)) "back edge" [ Cfg.Stmt 1 ] (sorted_succs g (Cfg.Stmt 2))

let test_while_true_exit_reachable () =
  (* No constant folding: exit must stay reachable even for while(true). *)
  let g = Cfg.of_block (parse_main "main { while (true) { p = recv(); send(p); } }") in
  let r = Cfg.reachable g in
  Alcotest.(check bool) "exit reachable" true (Cfg.Nset.mem Cfg.Exit r)

let test_return_edges () =
  (* 1: if(c){ 2: return; } 3: x=1; — return is a pseudo-predicate:
     taken edge to exit, non-executable fallthrough to s3. *)
  let g = Cfg.of_block (parse_main "main { if (c) { return; } x = 1; }") in
  Alcotest.(check (list node)) "return -> exit + fallthrough"
    [ Cfg.Exit; Cfg.Stmt 3 ]
    (sorted_succs g (Cfg.Stmt 2));
  Alcotest.(check (list node)) "branch -> s2, s3"
    [ Cfg.Stmt 2; Cfg.Stmt 3 ]
    (sorted_succs g (Cfg.Stmt 1))

let test_branches () =
  let g = Cfg.of_block (parse_main diamond) in
  let bs = List.sort Cfg.node_compare (Cfg.branches g) in
  Alcotest.(check (list node)) "branch nodes" [ Cfg.Entry; Cfg.Stmt 2 ] bs

let test_size () =
  let g = Cfg.of_block (parse_main diamond) in
  Alcotest.(check int) "5 statements" 5 (Cfg.size g)

let test_stmt_of () =
  let g = Cfg.of_block (parse_main diamond) in
  (match Cfg.stmt_of g (Cfg.Stmt 1) with
  | Some { Ast.kind = Ast.Assign (Ast.L_var "x", Ast.Int 1); _ } -> ()
  | _ -> Alcotest.fail "stmt_of s1");
  Alcotest.(check bool) "no stmt for entry" true (Cfg.stmt_of g Cfg.Entry = None)

let test_empty_block () =
  let g = Cfg.of_block [] in
  Alcotest.(check (list node)) "entry -> exit only" [ Cfg.Exit ] (sorted_succs g Cfg.Entry)

let test_for_in_edges () =
  (* 1: for s in xs { 2: send(s); } 3: y=1; *)
  let g = Cfg.of_block (parse_main "main { for s in xs { send(s); } y = 1; }") in
  Alcotest.(check (list node)) "for -> body,cont"
    [ Cfg.Stmt 2; Cfg.Stmt 3 ]
    (sorted_succs g (Cfg.Stmt 1));
  Alcotest.(check (list node)) "body -> for" [ Cfg.Stmt 1 ] (sorted_succs g (Cfg.Stmt 2))

let suite =
  [
    Alcotest.test_case "diamond edges" `Quick test_diamond_edges;
    Alcotest.test_case "branch labels" `Quick test_branch_labels;
    Alcotest.test_case "loop edges" `Quick test_loop_edges;
    Alcotest.test_case "while(true) exit reachable" `Quick test_while_true_exit_reachable;
    Alcotest.test_case "return edges" `Quick test_return_edges;
    Alcotest.test_case "branch nodes" `Quick test_branches;
    Alcotest.test_case "size" `Quick test_size;
    Alcotest.test_case "stmt_of" `Quick test_stmt_of;
    Alcotest.test_case "empty block" `Quick test_empty_block;
    Alcotest.test_case "for-in edges" `Quick test_for_in_edges;
  ]
