open Nfl

let parse_main src = (Parser.program src).Ast.main

(* ids: 1: x=1; 2: if(c){3: y=1;}else{4: y=2;} 5: z=y; *)
let diamond = "main { x = 1; if (c) { y = 1; } else { y = 2; } z = y; }"

let test_dominators_diamond () =
  let g = Cfg.of_block (parse_main diamond) in
  let dom = Dominance.dominators g in
  let check_dom a b expected =
    Alcotest.(check bool)
      (Cfg.node_to_string a ^ " dom " ^ Cfg.node_to_string b)
      expected
      (Dominance.dominates dom a b)
  in
  check_dom (Cfg.Stmt 1) (Cfg.Stmt 5) true;
  check_dom (Cfg.Stmt 2) (Cfg.Stmt 5) true;
  check_dom (Cfg.Stmt 3) (Cfg.Stmt 5) false;
  check_dom (Cfg.Stmt 4) (Cfg.Stmt 5) false;
  check_dom Cfg.Entry (Cfg.Stmt 3) true;
  check_dom (Cfg.Stmt 5) (Cfg.Stmt 5) true

let test_postdominators_diamond () =
  let g = Cfg.of_block (parse_main diamond) in
  let pdom = Dominance.post_dominators g in
  let check_pdom a b expected =
    Alcotest.(check bool)
      (Cfg.node_to_string a ^ " pdom " ^ Cfg.node_to_string b)
      expected
      (Dominance.dominates pdom a b)
  in
  check_pdom (Cfg.Stmt 5) (Cfg.Stmt 1) true;
  check_pdom (Cfg.Stmt 5) (Cfg.Stmt 3) true;
  check_pdom (Cfg.Stmt 3) (Cfg.Stmt 2) false;
  check_pdom Cfg.Exit (Cfg.Stmt 1) true

let test_immediate_dominators () =
  let g = Cfg.of_block (parse_main diamond) in
  let dom = Dominance.dominators g in
  let idom = Dominance.immediate_all dom g in
  let get n = Cfg.Nmap.find n idom in
  Alcotest.(check bool) "idom s5 = s2" true (Cfg.node_equal (get (Cfg.Stmt 5)) (Cfg.Stmt 2));
  Alcotest.(check bool) "idom s3 = s2" true (Cfg.node_equal (get (Cfg.Stmt 3)) (Cfg.Stmt 2));
  Alcotest.(check bool) "idom s2 = s1" true (Cfg.node_equal (get (Cfg.Stmt 2)) (Cfg.Stmt 1));
  Alcotest.(check bool) "idom s1 = entry" true (Cfg.node_equal (get (Cfg.Stmt 1)) Cfg.Entry)

let test_loop_postdominance () =
  (* 1: while(c) { 2: x=x+1; } 3: y=x; — s3 postdominates the loop. *)
  let g = Cfg.of_block (parse_main "main { while (c) { x = x + 1; } y = x; }") in
  let pdom = Dominance.post_dominators g in
  Alcotest.(check bool) "s3 pdom s1" true (Dominance.dominates pdom (Cfg.Stmt 3) (Cfg.Stmt 1));
  Alcotest.(check bool) "s3 pdom s2" true (Dominance.dominates pdom (Cfg.Stmt 3) (Cfg.Stmt 2));
  Alcotest.(check bool) "s2 !pdom s1" false (Dominance.dominates pdom (Cfg.Stmt 2) (Cfg.Stmt 1))

(* ids: 1: if(c) { 2: x=1; } 3: y=1; *)
let test_cdg_if () =
  let g = Cfg.of_block (parse_main "main { if (c) { x = 1; } y = 1; }") in
  let cdg = Cdg.compute g in
  let dep_of n = Cdg.deps_of cdg n in
  Alcotest.(check bool) "s2 CD on s1" true (Cfg.Nset.mem (Cfg.Stmt 1) (dep_of (Cfg.Stmt 2)));
  Alcotest.(check bool) "s3 not CD on s1" false (Cfg.Nset.mem (Cfg.Stmt 1) (dep_of (Cfg.Stmt 3)));
  Alcotest.(check bool) "s3 CD on entry" true (Cfg.Nset.mem Cfg.Entry (dep_of (Cfg.Stmt 3)))

let test_cdg_nested () =
  (* 1: if(a){ 2: if(b){ 3: x=1; } } 4: y=1; *)
  let g = Cfg.of_block (parse_main "main { if (a) { if (b) { x = 1; } } y = 1; }") in
  let cdg = Cdg.compute g in
  let dep_of n = Cdg.deps_of cdg n in
  Alcotest.(check bool) "s3 CD on s2" true (Cfg.Nset.mem (Cfg.Stmt 2) (dep_of (Cfg.Stmt 3)));
  Alcotest.(check bool) "s3 not directly CD on s1... (it is transitive via s2)" true
    (not (Cfg.Nset.mem (Cfg.Stmt 1) (dep_of (Cfg.Stmt 3))));
  Alcotest.(check bool) "s2 CD on s1" true (Cfg.Nset.mem (Cfg.Stmt 1) (dep_of (Cfg.Stmt 2)))

let test_cdg_loop_body () =
  (* 1: while(c){ 2: x=1; } 3: y=1; — body CD on loop header; s3 not. *)
  let g = Cfg.of_block (parse_main "main { while (c) { x = 1; } y = 1; }") in
  let cdg = Cdg.compute g in
  Alcotest.(check bool) "body CD on header" true
    (Cfg.Nset.mem (Cfg.Stmt 1) (Cdg.deps_of cdg (Cfg.Stmt 2)));
  Alcotest.(check bool) "continuation not CD on header" false
    (Cfg.Nset.mem (Cfg.Stmt 1) (Cdg.deps_of cdg (Cfg.Stmt 3)))

let test_cdg_else_branch () =
  (* 1: if(c){2: x=1;} else {3: x=2;} — both arms CD on s1. *)
  let g = Cfg.of_block (parse_main "main { if (c) { x = 1; } else { x = 2; } }") in
  let cdg = Cdg.compute g in
  Alcotest.(check bool) "then CD" true (Cfg.Nset.mem (Cfg.Stmt 1) (Cdg.deps_of cdg (Cfg.Stmt 2)));
  Alcotest.(check bool) "else CD" true (Cfg.Nset.mem (Cfg.Stmt 1) (Cdg.deps_of cdg (Cfg.Stmt 3)));
  (* controls view agrees *)
  let c = Cdg.controlled_by cdg (Cfg.Stmt 1) in
  Alcotest.(check int) "controls both arms" 2 (Cfg.Nset.cardinal c)

let test_cdg_early_return () =
  (* 1: if(c){ 2: return; } 3: x=1; — s3 IS control dependent on s1
     (taking the branch skips it). *)
  let g = Cfg.of_block (parse_main "main { if (c) { return; } x = 1; }") in
  let cdg = Cdg.compute g in
  Alcotest.(check bool) "s3 CD on s1" true
    (Cfg.Nset.mem (Cfg.Stmt 1) (Cdg.deps_of cdg (Cfg.Stmt 3)))

let suite =
  [
    Alcotest.test_case "dominators (diamond)" `Quick test_dominators_diamond;
    Alcotest.test_case "postdominators (diamond)" `Quick test_postdominators_diamond;
    Alcotest.test_case "immediate dominators" `Quick test_immediate_dominators;
    Alcotest.test_case "loop postdominance" `Quick test_loop_postdominance;
    Alcotest.test_case "cdg: if" `Quick test_cdg_if;
    Alcotest.test_case "cdg: nested if" `Quick test_cdg_nested;
    Alcotest.test_case "cdg: loop body" `Quick test_cdg_loop_body;
    Alcotest.test_case "cdg: else branch" `Quick test_cdg_else_branch;
    Alcotest.test_case "cdg: early return" `Quick test_cdg_early_return;
  ]
