open Nfl

let parse = Parser.program

let test_expr_strings () =
  let cases =
    [
      (Ast.Binop (Ast.Add, Ast.Int 1, Ast.Binop (Ast.Mul, Ast.Int 2, Ast.Int 3)), "1 + 2 * 3");
      (Ast.Binop (Ast.Mul, Ast.Binop (Ast.Add, Ast.Int 1, Ast.Int 2), Ast.Int 3), "(1 + 2) * 3");
      (Ast.Tuple [ Ast.Var "a"; Ast.Int 2 ], "(a, 2)");
      (Ast.Index (Ast.Var "d", Ast.Var "k"), "d[k]");
      (Ast.Field (Ast.Var "pkt", "ip_src"), "pkt.ip_src");
      (Ast.Mem (Ast.Var "k", Ast.Var "d"), "k in d");
      (Ast.Unop (Ast.Not, Ast.Mem (Ast.Var "k", Ast.Var "d")), "not (k in d)");
      (Ast.Call ("len", [ Ast.Var "servers" ]), "len(servers)");
      (Ast.List_lit [], "[]");
      (Ast.Dict_lit, "{}");
      (Ast.Str "a\"b", {|"a\"b"|});
    ]
  in
  List.iter (fun (e, s) -> Alcotest.(check string) s s (Pretty.expr e)) cases

let test_sub_precedence_parenthesized () =
  (* 1 - (2 - 3) must not print as 1 - 2 - 3. *)
  let e = Ast.Binop (Ast.Sub, Ast.Int 1, Ast.Binop (Ast.Sub, Ast.Int 2, Ast.Int 3)) in
  let p = parse ("main { x = " ^ Pretty.expr e ^ "; }") in
  match (List.hd p.Ast.main).Ast.kind with
  | Ast.Assign (_, e') -> Alcotest.(check bool) "same tree" true (Ast.expr_equal e e')
  | _ -> Alcotest.fail "parse"

let test_slice_rendering () =
  let p = parse "x = 0;\nmain { while (true) { p = recv(); x = x + 1; send(p); } }" in
  let send_sid =
    List.find_map
      (fun s -> if Builtins.is_pkt_output_stmt s then Some s.Ast.sid else None)
      (Ast.all_stmts p)
  in
  let send_sid = Option.get send_sid in
  let rendered = Pretty.program ~slice:[ send_sid ] p in
  let lines = String.split_on_char '\n' rendered in
  let pruned = List.filter (fun l -> String.length (String.trim l) > 0 &&
                                     String.length l >= 2 &&
                                     String.trim l |> fun t -> String.length t > 10 &&
                                     String.sub (String.trim t) 0 10 = "# [pruned]") lines in
  Alcotest.(check bool) "some lines pruned" true (List.length pruned >= 2);
  Alcotest.(check bool) "send kept" true
    (List.exists (fun l -> String.trim l = "send(p);") lines)

let test_stmt_to_string () =
  let p = parse "main { d[k] = v + 1; }" in
  Alcotest.(check string) "stmt" "d[k] = v + 1;" (Pretty.stmt_to_string (List.hd p.Ast.main))

let suite =
  [
    Alcotest.test_case "expr strings" `Quick test_expr_strings;
    Alcotest.test_case "sub-precedence parens" `Quick test_sub_precedence_parenthesized;
    Alcotest.test_case "slice rendering" `Quick test_slice_rendering;
    Alcotest.test_case "stmt to string" `Quick test_stmt_to_string;
  ]
