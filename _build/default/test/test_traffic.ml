open Packet

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 100 (fun _ -> Rng.int a 1000) in
  let ys = List.init 100 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 50 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 50 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "different seeds differ" true (xs <> ys)

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_rng_pick () =
  let rng = Rng.create 3 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "picks member" true (List.mem (Rng.pick rng [ 1; 2; 3 ]) [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty list" (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Rng.pick rng []))

let test_random_stream_deterministic () =
  let a = Traffic.random_stream ~seed:99 ~n:50 () in
  let b = Traffic.random_stream ~seed:99 ~n:50 () in
  Alcotest.(check int) "length" 50 (List.length a);
  Alcotest.(check bool) "identical" true (List.for_all2 Pkt.equal a b)

let test_random_stream_fields_from_profile () =
  let profile = Traffic.default_profile in
  let pkts = Traffic.random_stream ~seed:5 ~n:200 () in
  List.iter
    (fun p ->
      let inbound = List.mem p.Pkt.ip_dst profile.Traffic.server_ips in
      let outbound = List.mem p.Pkt.ip_src profile.Traffic.server_ips in
      Alcotest.(check bool) "inbound or outbound" true (inbound || outbound))
    pkts

let test_conversation_shape () =
  let client = Addr.of_string "10.0.0.1" and server = Addr.of_string "3.3.3.3" in
  let pkts =
    Traffic.conversation ~client ~cport:5555 ~server ~sport:80 ~data_pkts:2 ~payload:"x"
  in
  (* SYN, SYN/ACK, ACK, 2*(data, ack), FIN, FIN, ACK = 10 *)
  Alcotest.(check int) "packet count" 10 (List.length pkts);
  let first = List.hd pkts in
  Alcotest.(check bool) "starts with SYN" true (Headers.has first.Pkt.tcp_flags Headers.syn);
  Alcotest.(check bool)
    "SYN has no ACK" false
    (Headers.has first.Pkt.tcp_flags Headers.ack)

let test_conversation_drives_fsm_to_established () =
  (* Feed the server-side FSM the client's segments: it must reach
     ESTABLISHED before any data flows. *)
  let client = Addr.of_string "10.0.0.1" and server = Addr.of_string "3.3.3.3" in
  let pkts =
    Traffic.conversation ~client ~cport:5555 ~server ~sport:80 ~data_pkts:1 ~payload:"hi"
  in
  let st = ref Tcp_fsm.Listen in
  let seen_data_in_established = ref false in
  List.iter
    (fun p ->
      if p.Pkt.ip_src = client then begin
        if p.Pkt.payload <> "" then
          seen_data_in_established := !seen_data_in_established || Tcp_fsm.valid_data !st;
        st := Tcp_fsm.step !st (Tcp_fsm.ev Tcp_fsm.From_peer p.Pkt.tcp_flags)
      end)
    pkts;
  Alcotest.(check bool) "data only after handshake" true !seen_data_in_established

let test_flow_stream_interleaves () =
  let pkts = Traffic.flow_stream ~seed:11 ~flows:3 ~data_pkts:1 () in
  (* 3 flows x (3 handshake + 2 data + 3 teardown) = 24 *)
  Alcotest.(check int) "total" 24 (List.length pkts);
  (* Round-robin: the first three packets are the three SYNs. *)
  let syns = List.filteri (fun i _ -> i < 3) pkts in
  List.iter
    (fun p ->
      Alcotest.(check bool) "leading SYNs" true (Headers.has p.Pkt.tcp_flags Headers.syn))
    syns

let qcheck_stream_length =
  QCheck.Test.make ~name:"traffic: stream length is n" ~count:50
    QCheck.(pair (int_bound 1000) (int_bound 200))
    (fun (seed, n) ->
      let n = max 1 n in
      List.length (Traffic.random_stream ~seed ~n ()) = n)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng pick" `Quick test_rng_pick;
    Alcotest.test_case "random stream deterministic" `Quick test_random_stream_deterministic;
    Alcotest.test_case "random stream profile fields" `Quick test_random_stream_fields_from_profile;
    Alcotest.test_case "conversation shape" `Quick test_conversation_shape;
    Alcotest.test_case "conversation satisfies TCP FSM" `Quick test_conversation_drives_fsm_to_established;
    Alcotest.test_case "flow stream interleaves" `Quick test_flow_stream_interleaves;
    QCheck_alcotest.to_alcotest qcheck_stream_length;
  ]
