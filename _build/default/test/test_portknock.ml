open Nfactor
open Symexec

let program () =
  Nfl.Transform.canonicalize ((Option.get (Nfs.Corpus.find "portknock")).Nfs.Corpus.program ())

let extract () =
  Extract.run ~name:"portknock" ((Option.get (Nfs.Corpus.find "portknock")).Nfs.Corpus.program ())

let pkt ~src ~dport =
  Packet.Pkt.make ~ip_src:(Packet.Addr.of_string src) ~ip_dst:(Packet.Addr.of_string "3.3.3.3")
    ~sport:4242 ~dport ()

let per_input inputs =
  let r = Interp.run (program ()) ~inputs in
  List.map List.length r.Interp.per_input

let test_correct_sequence_unlocks () =
  Alcotest.(check (list int)) "knocks absorbed, ssh passes"
    [ 0; 0; 0; 1 ]
    (per_input [ pkt ~src:"1.1.1.1" ~dport:7000; pkt ~src:"1.1.1.1" ~dport:8000;
                 pkt ~src:"1.1.1.1" ~dport:9000; pkt ~src:"1.1.1.1" ~dport:22 ])

let test_wrong_order_resets () =
  Alcotest.(check (list int)) "out-of-order knock resets"
    [ 0; 0; 0; 0 ]
    (per_input [ pkt ~src:"1.1.1.1" ~dport:7000; pkt ~src:"1.1.1.1" ~dport:9000;
                 pkt ~src:"1.1.1.1" ~dport:9000; pkt ~src:"1.1.1.1" ~dport:22 ])

let test_no_knock_denied () =
  Alcotest.(check (list int)) "protected denied" [ 0 ] (per_input [ pkt ~src:"1.1.1.1" ~dport:22 ]);
  Alcotest.(check (list int)) "other traffic passes" [ 1 ] (per_input [ pkt ~src:"1.1.1.1" ~dport:80 ])

let test_per_source_isolation () =
  (* One source knocking does not unlock another. *)
  Alcotest.(check (list int)) "isolation"
    [ 0; 0; 0; 0 ]
    (per_input [ pkt ~src:"1.1.1.1" ~dport:7000; pkt ~src:"1.1.1.1" ~dport:8000;
                 pkt ~src:"1.1.1.1" ~dport:9000; pkt ~src:"2.2.2.2" ~dport:22 ])

let test_model_and_differential () =
  let ex = extract () in
  Alcotest.(check (list string)) "stage is the state" [ "stage" ]
    ex.Extract.model.Model.ois_vars;
  let v = Equiv.random_testing ~seed:5150 ~trials:1000 ex in
  Alcotest.(check int) "no mismatches" 0 (List.length v.Equiv.mismatches);
  Alcotest.(check bool) "path sets match" true (Equiv.paths_match ex)

let test_knock_protocol_via_model () =
  (* Drive the model interpreter through the protocol. *)
  let ex = extract () in
  let m = ex.Extract.model in
  let store = ref (Model_interp.initial_store ex) in
  let step p =
    let r = Model_interp.step m !store p in
    store := r.Model_interp.store;
    List.length r.Model_interp.outputs
  in
  Alcotest.(check (list int)) "model follows protocol"
    [ 0; 0; 0; 1 ]
    (List.map step
       [ pkt ~src:"5.5.5.5" ~dport:7000; pkt ~src:"5.5.5.5" ~dport:8000;
         pkt ~src:"5.5.5.5" ~dport:9000; pkt ~src:"5.5.5.5" ~dport:22 ])

let test_fsm_recovers_stages () =
  let ex = extract () in
  let fsm = Fsm.of_extraction ex in
  (* unknown, stage1, stage2, unlocked (and negative variants) — the
     machine must expose at least 4 abstract states with transitions
     between distinct states. *)
  Alcotest.(check bool) "at least 4 states" true (Fsm.state_count fsm >= 4);
  let changing =
    List.filter
      (fun (tr : Fsm.transition) ->
        match tr.Fsm.to_state with Some t -> t <> tr.Fsm.from_state | None -> true)
      fsm.Fsm.transitions
  in
  Alcotest.(check bool) "protocol transitions present" true (List.length changing >= 2)

let suite =
  [
    Alcotest.test_case "correct sequence unlocks" `Quick test_correct_sequence_unlocks;
    Alcotest.test_case "wrong order resets" `Quick test_wrong_order_resets;
    Alcotest.test_case "no knock denied / others pass" `Quick test_no_knock_denied;
    Alcotest.test_case "per-source isolation" `Quick test_per_source_isolation;
    Alcotest.test_case "model + differential" `Quick test_model_and_differential;
    Alcotest.test_case "knock protocol via model" `Quick test_knock_protocol_via_model;
    Alcotest.test_case "FSM recovers stages" `Quick test_fsm_recovers_stages;
  ]
