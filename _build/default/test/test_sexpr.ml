open Symexec

let se = Alcotest.testable Sexpr.pp Sexpr.equal

let test_constant_folding () =
  Alcotest.check se "add folds" (Sexpr.int 5)
    (Sexpr.mk_bin Nfl.Ast.Add (Sexpr.int 2) (Sexpr.int 3));
  Alcotest.check se "cmp folds" Sexpr.tru (Sexpr.mk_bin Nfl.Ast.Lt (Sexpr.int 1) (Sexpr.int 2));
  Alcotest.check se "band folds" (Sexpr.int 2)
    (Sexpr.mk_bin Nfl.Ast.Band (Sexpr.int 6) (Sexpr.int 3))

let test_identity_simplifications () =
  let x = Sexpr.Sym "x" in
  Alcotest.check se "x+0" x (Sexpr.mk_bin Nfl.Ast.Add x (Sexpr.int 0));
  Alcotest.check se "0+x" x (Sexpr.mk_bin Nfl.Ast.Add (Sexpr.int 0) x);
  Alcotest.check se "x*1" x (Sexpr.mk_bin Nfl.Ast.Mul x (Sexpr.int 1));
  Alcotest.check se "x==x" Sexpr.tru (Sexpr.mk_bin Nfl.Ast.Eq x x);
  Alcotest.check se "x!=x" Sexpr.fls (Sexpr.mk_bin Nfl.Ast.Ne x x);
  Alcotest.check se "true&&x" x (Sexpr.mk_bin Nfl.Ast.And Sexpr.tru x);
  Alcotest.check se "x||false" x (Sexpr.mk_bin Nfl.Ast.Or x Sexpr.fls);
  Alcotest.check se "false&&x" Sexpr.fls (Sexpr.mk_bin Nfl.Ast.And Sexpr.fls x);
  Alcotest.check se "not not x" x (Sexpr.mk_not (Sexpr.mk_not x))

let test_tuple_key_relation () =
  let t1 = Sexpr.Tup [ Sexpr.Sym "a"; Sexpr.int 1 ] in
  let t2 = Sexpr.Tup [ Sexpr.Sym "a"; Sexpr.int 2 ] in
  let t3 = Sexpr.Tup [ Sexpr.Sym "a"; Sexpr.int 1 ] in
  Alcotest.check se "distinct component -> Ne" Sexpr.tru (Sexpr.mk_bin Nfl.Ast.Ne t1 t2);
  Alcotest.check se "identical -> Eq" Sexpr.tru (Sexpr.mk_bin Nfl.Ast.Eq t1 t3)

let test_get_resolution () =
  let lst = Sexpr.Lst [ Sexpr.int 10; Sexpr.Sym "y" ] in
  Alcotest.check se "concrete index" (Sexpr.int 10) (Sexpr.mk_get lst (Sexpr.int 0));
  Alcotest.check se "symbolic element" (Sexpr.Sym "y") (Sexpr.mk_get lst (Sexpr.int 1));
  (match Sexpr.mk_get lst (Sexpr.Sym "i") with
  | Sexpr.Get _ -> ()
  | e -> Alcotest.failf "symbolic index stays: %s" (Sexpr.to_string e));
  Alcotest.check se "tuple of consts folds whole"
    (Sexpr.Const (Value.Int 7))
    (Sexpr.mk_get (Sexpr.Const (Value.List [ Value.Int 7 ])) (Sexpr.int 0))

let test_dict_membership_resolution () =
  let d0 = Sexpr.dict_base "tbl" in
  let k = Sexpr.Sym "k" in
  (* Unknown base: atom. *)
  (match Sexpr.mk_mem d0 k with Sexpr.Mem _ -> () | e -> Alcotest.failf "atom expected: %s" (Sexpr.to_string e));
  (* After inserting k: true. *)
  let d1 = { d0 with Sexpr.writes = [ (k, Some (Sexpr.int 1)) ] } in
  Alcotest.check se "inserted" Sexpr.tru (Sexpr.mk_mem d1 k);
  (* After deleting k: false. *)
  let d2 = { d0 with Sexpr.writes = [ (k, None) ] } in
  Alcotest.check se "deleted" Sexpr.fls (Sexpr.mk_mem d2 k);
  (* Distinct concrete key skips the write. *)
  let d3 = { d0 with Sexpr.writes = [ (Sexpr.int 5, Some (Sexpr.int 1)) ] } in
  (match Sexpr.mk_mem d3 (Sexpr.int 6) with
  | Sexpr.Mem (d, _) -> Alcotest.(check int) "write skipped" 0 (List.length d.Sexpr.writes)
  | e -> Alcotest.failf "atom expected: %s" (Sexpr.to_string e));
  (* Empty-base dict bottoms out at false. *)
  Alcotest.check se "empty dict" Sexpr.fls (Sexpr.mk_mem Sexpr.dict_empty (Sexpr.int 1))

let test_dict_get_resolution () =
  let d0 = Sexpr.dict_base "tbl" in
  let k = Sexpr.Sym "k" in
  let d1 = { d0 with Sexpr.writes = [ (k, Some (Sexpr.int 42)) ] } in
  Alcotest.check se "read back" (Sexpr.int 42) (Sexpr.mk_dget d1 k);
  (match Sexpr.mk_dget d0 k with
  | Sexpr.Dget _ -> ()
  | e -> Alcotest.failf "unresolved read expected: %s" (Sexpr.to_string e))

let test_hash_folds_on_const () =
  let v = Value.Tuple [ Value.Int 1 ] in
  Alcotest.check se "hash folds"
    (Sexpr.Const (Value.Int (Value.hash_value v)))
    (Sexpr.mk_ufun "hash" [ Sexpr.Const v ])

let test_subst () =
  let e = Sexpr.mk_bin Nfl.Ast.Add (Sexpr.Sym "a") (Sexpr.Sym "b") in
  let f = function "a" -> Some (Value.Int 1) | "b" -> Some (Value.Int 2) | _ -> None in
  Alcotest.check se "substitution folds" (Sexpr.int 3) (Sexpr.subst f e)

let test_syms () =
  let d = { Sexpr.base = "tbl"; writes = [ (Sexpr.Sym "k", Some (Sexpr.Sym "v")) ] } in
  let e = Sexpr.mk_bin Nfl.Ast.And (Sexpr.Mem (d, Sexpr.Sym "q")) (Sexpr.Sym "b") in
  let names = Sexpr.Sset.elements (Sexpr.syms e) in
  Alcotest.(check (slist string compare)) "all syms" [ "b"; "k"; "q"; "tbl"; "v" ] names

let suite =
  [
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "identity simplifications" `Quick test_identity_simplifications;
    Alcotest.test_case "tuple key relations" `Quick test_tuple_key_relation;
    Alcotest.test_case "get resolution" `Quick test_get_resolution;
    Alcotest.test_case "dict membership resolution" `Quick test_dict_membership_resolution;
    Alcotest.test_case "dict get resolution" `Quick test_dict_get_resolution;
    Alcotest.test_case "hash folds on constants" `Quick test_hash_folds_on_const;
    Alcotest.test_case "substitution" `Quick test_subst;
    Alcotest.test_case "free symbols" `Quick test_syms;
  ]
