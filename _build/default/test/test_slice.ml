open Nfl
module Sset = Ast.Sset

let parse_main src = (Parser.program src).Ast.main

(* The paper's core claim in miniature: slicing from send() discards
   log statements. ids:
   1: x = p.dport;  2: logc = logc + 1;  3: q = x + 1;  4: send(q); *)
let test_log_pruned () =
  let b = parse_main "main { x = p.dport; logc = logc + 1; q = x + 1; send(q); }" in
  let ctx = Slicing.Slice.of_block ~entry_defs:(Sset.of_list [ "p"; "logc" ]) b in
  let slice = Slicing.Slice.backward ctx ~criteria:[ 4 ] in
  Alcotest.(check (list int)) "log statement pruned" [ 1; 3; 4 ] slice

let test_control_dependence_included () =
  (* 1: if (c) { 2: x = 1; } 3: send(x); — the branch must be in the slice. *)
  let b = parse_main "main { if (c) { x = 1; } send(x); }" in
  let ctx = Slicing.Slice.of_block ~entry_defs:(Sset.of_list [ "c"; "x" ]) b in
  let slice = Slicing.Slice.backward ctx ~criteria:[ 3 ] in
  Alcotest.(check (list int)) "branch included" [ 1; 2; 3 ] slice

let test_transitive_data_deps () =
  (* 1: a=in0; 2: b=a; 3: c=b; 4: d=unrelated; 5: send(c); *)
  let b = parse_main "main { a = in0; b = a; c = b; d = unrelated; send(c); }" in
  let ctx = Slicing.Slice.of_block ~entry_defs:(Sset.of_list [ "in0"; "unrelated" ]) b in
  let slice = Slicing.Slice.backward ctx ~criteria:[ 5 ] in
  Alcotest.(check (list int)) "chain kept, unrelated dropped" [ 1; 2; 3; 5 ] slice

let test_dict_weak_update_chain () =
  (* 1: d[k1] = v1; 2: d[k2] = v2; 3: out = d[k]; 4: send(out); —
     both container writes may affect the read. *)
  let b = parse_main "main { d[k1] = v1; d[k2] = v2; out = d[k]; send(out); }" in
  let entry = Sset.of_list [ "d"; "k1"; "k2"; "k"; "v1"; "v2" ] in
  let ctx = Slicing.Slice.of_block ~entry_defs:entry b in
  let slice = Slicing.Slice.backward ctx ~criteria:[ 4 ] in
  Alcotest.(check (list int)) "both dict writes kept" [ 1; 2; 3; 4 ] slice

let test_loop_in_slice () =
  (* 1: i=0; 2: while (i<n) { 3: acc=acc+i; 4: i=i+1; } 5: send(acc); *)
  let b = parse_main "main { i = 0; while (i < n) { acc = acc + i; i = i + 1; } send(acc); }" in
  let ctx = Slicing.Slice.of_block ~entry_defs:(Sset.of_list [ "n"; "acc" ]) b in
  let slice = Slicing.Slice.backward ctx ~criteria:[ 5 ] in
  Alcotest.(check (list int)) "whole loop kept" [ 1; 2; 3; 4; 5 ] slice

let test_multiple_criteria_union () =
  (* 1: a=x; 2: b=y; 3: send(a); 4: send(b); *)
  let b = parse_main "main { a = x; b = y; send(a); send(b); }" in
  let ctx = Slicing.Slice.of_block ~entry_defs:(Sset.of_list [ "x"; "y" ]) b in
  Alcotest.(check (list int)) "slice of send(a)" [ 1; 3 ]
    (Slicing.Slice.backward ctx ~criteria:[ 3 ]);
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ]
    (Slicing.Slice.backward_union ctx ~criteria:[ 3; 4 ])

let test_early_return_guard_in_slice () =
  (* Drop path: 1: if(bad){2: return;} 3: send(p); — the guard controls
     whether send executes. *)
  let b = parse_main "main { if (bad) { return; } send(p); }" in
  let ctx = Slicing.Slice.of_block ~entry_defs:(Sset.of_list [ "bad"; "p" ]) b in
  let slice = Slicing.Slice.backward ctx ~criteria:[ 3 ] in
  Alcotest.(check (list int)) "guard + return + send" [ 1; 2; 3 ] slice

let test_find_stmts () =
  let b = parse_main "main { x = 1; send(x); log(x); send(x); }" in
  let ctx = Slicing.Slice.of_block b in
  let sends = Slicing.Slice.find_stmts ctx Builtins.is_pkt_output_stmt in
  Alcotest.(check (list int)) "both sends" [ 2; 4 ] sends

let test_restrict_block () =
  let b = parse_main "main { x = p; logc = logc + 1; if (c) { y = x; } send(y); }" in
  let entry = Sset.of_list [ "p"; "logc"; "c"; "y" ] in
  let ctx = Slicing.Slice.of_block ~entry_defs:entry b in
  let slice = Slicing.Slice.backward ctx ~criteria:[ 5 ] in
  let restricted = Slicing.Slice.restrict_block slice b in
  (* log statement gone, everything else preserved in structure *)
  let count = Ast.stmt_count_block restricted in
  Alcotest.(check int) "4 stmts kept" 4 count;
  (* restricted block still contains the if with its body *)
  let has_if =
    List.exists
      (fun (s : Ast.stmt) -> match s.Ast.kind with Ast.If (_, [ _ ], _) -> true | _ -> false)
      restricted
  in
  Alcotest.(check bool) "if kept with body" true has_if

(* ------------------------------------------------------------------ *)
(* Dynamic slicing                                                    *)
(* ------------------------------------------------------------------ *)

let test_dynamic_smaller_than_static () =
  (* 1: if(c){2: x=1;}else{3: x=2;} 4: send(x);
     In an execution where c is true, the dynamic slice excludes s3. *)
  let b = parse_main "main { if (c) { x = 1; } else { x = 2; } send(x); }" in
  let ctx = Slicing.Dynamic.ctx_of_block b in
  let trace = [ 1; 2; 4 ] in
  let dyn = Slicing.Dynamic.slice ctx trace ~criterion:4 in
  Alcotest.(check (list int)) "dynamic slice" [ 1; 2; 4 ]
    (List.sort compare (Slicing.Dynamic.Iset.elements dyn))

let test_dynamic_last_write_wins () =
  (* 1: x=1; 2: x=2; 3: send(x); executed in order: only s2 matters. *)
  let b = parse_main "main { x = 1; x = 2; send(x); }" in
  let ctx = Slicing.Dynamic.ctx_of_block b in
  let dyn = Slicing.Dynamic.slice ctx [ 1; 2; 3 ] ~criterion:3 in
  Alcotest.(check (list int)) "only last def" [ 2; 3 ]
    (List.sort compare (Slicing.Dynamic.Iset.elements dyn))

let test_dynamic_criterion_not_executed () =
  let b = parse_main "main { x = 1; send(x); }" in
  let ctx = Slicing.Dynamic.ctx_of_block b in
  let dyn = Slicing.Dynamic.slice ctx [ 1 ] ~criterion:2 in
  Alcotest.(check int) "empty" 0 (Slicing.Dynamic.Iset.cardinal dyn)

let test_dynamic_loop_iterations () =
  (* 1: while(c){ 2: x=x+1; } 3: send(x); trace with two iterations:
     both instances of s2 contribute (x accumulates). *)
  let b = parse_main "main { while (c) { x = x + 1; } send(x); }" in
  let ctx = Slicing.Dynamic.ctx_of_block b in
  let dyn = Slicing.Dynamic.slice ctx [ 1; 2; 1; 2; 1; 3 ] ~criterion:3 in
  Alcotest.(check (list int)) "loop + body + send" [ 1; 2; 3 ]
    (List.sort compare (Slicing.Dynamic.Iset.elements dyn))

let test_dynamic_slice_all () =
  (* Two sends; union covers both data sources.
     1: a=u; 2: b=v; 3: send(a); 4: send(b); *)
  let b = parse_main "main { a = u; b = v; send(a); send(b); }" in
  let ctx = Slicing.Dynamic.ctx_of_block b in
  let dyn3 = Slicing.Dynamic.slice ctx [ 1; 2; 3; 4 ] ~criterion:3 in
  Alcotest.(check (list int)) "send(a) slice" [ 1; 3 ]
    (List.sort compare (Slicing.Dynamic.Iset.elements dyn3));
  let all4 = Slicing.Dynamic.slice_all ctx [ 1; 2; 3; 4 ] ~criterion:4 in
  Alcotest.(check (list int)) "send(b) slice" [ 2; 4 ]
    (List.sort compare (Slicing.Dynamic.Iset.elements all4))

let qcheck_dynamic_subset_of_static =
  (* On straight-line programs the dynamic slice of the final send is a
     subset of the static slice. *)
  QCheck.Test.make ~name:"slicing: dynamic ⊆ static (straight line)" ~count:100
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Packet.Rng.create seed in
      let vars = [ "a"; "b"; "c"; "d" ] in
      let n = 3 + Packet.Rng.int rng 6 in
      let stmts =
        List.init n (fun _ ->
            let tgt = Packet.Rng.pick rng vars in
            let src = Packet.Rng.pick rng vars in
            Printf.sprintf "%s = %s + 1;" tgt src)
      in
      let src = "main { " ^ String.concat " " stmts ^ " send(a); }" in
      let b = parse_main src in
      let entry = Sset.of_list vars in
      let sctx = Slicing.Slice.of_block ~entry_defs:entry b in
      let send_sid = n + 1 in
      let static = Slicing.Slice.backward sctx ~criteria:[ send_sid ] in
      let dctx = Slicing.Dynamic.ctx_of_block b in
      let trace = List.init (n + 1) (fun i -> i + 1) in
      let dyn = Slicing.Dynamic.slice dctx trace ~criterion:send_sid in
      Slicing.Dynamic.Iset.for_all (fun sid -> List.mem sid static) dyn)

let suite =
  [
    Alcotest.test_case "log statements pruned" `Quick test_log_pruned;
    Alcotest.test_case "control dependence included" `Quick test_control_dependence_included;
    Alcotest.test_case "transitive data deps" `Quick test_transitive_data_deps;
    Alcotest.test_case "dict weak-update chain" `Quick test_dict_weak_update_chain;
    Alcotest.test_case "loop in slice" `Quick test_loop_in_slice;
    Alcotest.test_case "multiple criteria union" `Quick test_multiple_criteria_union;
    Alcotest.test_case "early-return guard in slice" `Quick test_early_return_guard_in_slice;
    Alcotest.test_case "find_stmts" `Quick test_find_stmts;
    Alcotest.test_case "restrict_block" `Quick test_restrict_block;
    Alcotest.test_case "dynamic < static on one path" `Quick test_dynamic_smaller_than_static;
    Alcotest.test_case "dynamic: last write wins" `Quick test_dynamic_last_write_wins;
    Alcotest.test_case "dynamic: criterion not executed" `Quick test_dynamic_criterion_not_executed;
    Alcotest.test_case "dynamic: loop iterations" `Quick test_dynamic_loop_iterations;
    Alcotest.test_case "dynamic: slice_all" `Quick test_dynamic_slice_all;
    QCheck_alcotest.to_alcotest qcheck_dynamic_subset_of_static;
  ]
