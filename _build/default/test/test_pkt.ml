open Packet

let sample () =
  Pkt.make
    ~ip_src:(Addr.of_string "10.0.0.1")
    ~ip_dst:(Addr.of_string "3.3.3.3")
    ~sport:12345 ~dport:80 ~tcp_flags:Headers.syn ()

let test_get_int () =
  let p = sample () in
  Alcotest.(check int) "ip_src" (Addr.of_string "10.0.0.1") (Pkt.get_int p "ip_src");
  Alcotest.(check int) "dport" 80 (Pkt.get_int p "dport");
  Alcotest.(check int) "tcp_flags" Headers.syn (Pkt.get_int p "tcp_flags");
  Alcotest.(check int) "default ttl" 64 (Pkt.get_int p "ip_ttl");
  Alcotest.(check int) "default proto is tcp" Headers.proto_tcp (Pkt.get_int p "ip_proto")

let test_set_int () =
  let p = sample () in
  let p = Pkt.set_int p "ip_dst" (Addr.of_string "1.1.1.1") in
  let p = Pkt.set_int p "dport" 8080 in
  Alcotest.(check int) "updated dst" (Addr.of_string "1.1.1.1") (Pkt.get_int p "ip_dst");
  Alcotest.(check int) "updated dport" 8080 (Pkt.get_int p "dport");
  Alcotest.(check int) "src untouched" (Addr.of_string "10.0.0.1") (Pkt.get_int p "ip_src")

let test_payload () =
  let p = Pkt.set_str (sample ()) "payload" "GET /" in
  Alcotest.(check string) "payload" "GET /" (Pkt.get_str p "payload")

let test_bad_field () =
  let p = sample () in
  Alcotest.check_raises "get bad" (Invalid_argument "Pkt.get_int: not an int field: nope")
    (fun () -> ignore (Pkt.get_int p "nope"));
  Alcotest.check_raises "set bad" (Invalid_argument "Pkt.set_int: not an int field: payload")
    (fun () -> ignore (Pkt.set_int p "payload" 1))

let test_all_int_fields_roundtrip () =
  let p = ref (sample ()) in
  List.iteri
    (fun i f ->
      p := Pkt.set_int !p f (i + 1000);
      Alcotest.(check int) f (i + 1000) (Pkt.get_int !p f))
    Headers.int_fields

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_pp () =
  let s = Pkt.to_string (sample ()) in
  Alcotest.(check bool) "mentions src" true (contains ~sub:"10.0.0.1" s);
  Alcotest.(check bool) "mentions SYN" true (contains ~sub:"SYN" s);
  Alcotest.(check bool) "mentions dport" true (contains ~sub:":80" s)

let suite =
  [
    Alcotest.test_case "get int fields" `Quick test_get_int;
    Alcotest.test_case "set int fields" `Quick test_set_int;
    Alcotest.test_case "payload" `Quick test_payload;
    Alcotest.test_case "bad fields raise" `Quick test_bad_field;
    Alcotest.test_case "all int fields roundtrip" `Quick test_all_int_fields_roundtrip;
    Alcotest.test_case "pretty-printing" `Quick test_pp;
  ]
