(* Unit tests for the Model module's query/rendering functions, the
   Check static checker, and structural invariants of extraction noted
   in DESIGN.md. *)

open Nfactor
open Symexec

let extract_nf name =
  let entry = Option.get (Nfs.Corpus.find name) in
  Extract.run ~name (entry.Nfs.Corpus.program ())

(* --------------------------------------------------------------- *)
(* Model queries                                                    *)
(* --------------------------------------------------------------- *)

let test_config_groups_partition_entries () =
  let m = (extract_nf "lb").Extract.model in
  let groups = Model.config_groups m in
  let total =
    List.fold_left (fun acc (key, _) -> acc + List.length (Model.entries_for_config m key)) 0 groups
  in
  Alcotest.(check int) "groups partition entries" (Model.entry_count m) total

let test_matched_fields_lb () =
  let m = (extract_nf "lb").Extract.model in
  let matched = Model.matched_fields m in
  List.iter
    (fun f -> Alcotest.(check bool) (f ^ " matched") true (List.mem f matched))
    [ "ip_src"; "ip_dst"; "sport"; "dport" ];
  Alcotest.(check bool) "payload not matched" false (List.mem "payload" matched)

let test_modified_fields_snort_empty () =
  let m = (extract_nf "snort").Extract.model in
  Alcotest.(check (list string)) "tap modifies nothing" [] (Model.modified_fields m)

let test_is_stateful () =
  Alcotest.(check bool) "lb stateful" true (Model.is_stateful (extract_nf "lb").Extract.model);
  Alcotest.(check bool) "snort stateless" false
    (Model.is_stateful (extract_nf "snort").Extract.model)

let test_rendering_mentions_key_parts () =
  let s = Model.to_string (extract_nf "lb").Extract.model in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (Value.str_contains ~sub:needle s))
    [ "NFactor model for lb"; "config"; "match flow"; "match state"; "action pkt"; "rr_idx" ]

let test_entries_have_consistent_literals () =
  (* Flow literals only mention pkt/cfg symbols; state literals mention
     at least one ois symbol. *)
  List.iter
    (fun name ->
      let m = (extract_nf name).Extract.model in
      List.iter
        (fun (e : Model.entry) ->
          List.iter
            (fun (l : Solver.literal) ->
              let syms = Sexpr.syms l.Solver.atom in
              Alcotest.(check bool) "state literal mentions ois" true
                (List.exists (fun v -> Sexpr.Sset.mem v syms) m.Model.ois_vars))
            e.Model.state_match;
          List.iter
            (fun (l : Solver.literal) ->
              let syms = Sexpr.syms l.Solver.atom in
              Alcotest.(check bool) "flow literal avoids ois" false
                (List.exists (fun v -> Sexpr.Sset.mem v syms) m.Model.ois_vars))
            e.Model.flow_match)
        m.Model.entries)
    [ "lb"; "nat"; "firewall"; "portknock" ]

(* --------------------------------------------------------------- *)
(* DESIGN.md invariant: state slice ⊆ packet slice                  *)
(* --------------------------------------------------------------- *)

let test_state_slice_contained () =
  List.iter
    (fun name ->
      let ex = extract_nf name in
      Alcotest.(check bool)
        (name ^ ": state slice ⊆ pkt slice")
        true
        (List.for_all (fun sid -> List.mem sid ex.Extract.pkt_slice) ex.Extract.state_slice);
      Alcotest.(check (list int)) (name ^ ": union = pkt slice") ex.Extract.pkt_slice
        ex.Extract.union_slice)
    Nfs.Corpus.names

(* --------------------------------------------------------------- *)
(* Check (static checker)                                           *)
(* --------------------------------------------------------------- *)

let test_check_clean_corpus () =
  List.iter
    (fun (e : Nfs.Corpus.entry) ->
      Alcotest.(check (list string)) (e.Nfs.Corpus.name ^ " clean") []
        (List.map (fun i -> Fmt.str "%a" Nfl.Check.pp_issue i)
           (Nfl.Check.program (e.Nfs.Corpus.program ()))))
    Nfs.Corpus.all

let test_check_unbound_variable () =
  let p = Nfl.Parser.program "main { x = undefined_var + 1; }" in
  let issues = Nfl.Check.program p in
  Alcotest.(check bool) "reports unbound" true
    (List.exists
       (fun (i : Nfl.Check.issue) -> Value.str_contains ~sub:"undefined_var" i.Nfl.Check.msg)
       issues)

let test_check_unknown_function () =
  let p = Nfl.Parser.program "main { frobnicate(1); }" in
  Alcotest.(check bool) "reports unknown function" true
    (List.exists
       (fun (i : Nfl.Check.issue) -> Value.str_contains ~sub:"frobnicate" i.Nfl.Check.msg)
       (Nfl.Check.program p))

let test_check_bad_field () =
  let p = Nfl.Parser.program "pkt0 = 0; main { pkt0.bogus_field = 1; }" in
  Alcotest.(check bool) "reports unknown packet field" true
    (List.exists
       (fun (i : Nfl.Check.issue) -> Value.str_contains ~sub:"bogus_field" i.Nfl.Check.msg)
       (Nfl.Check.program p))

let test_check_arity () =
  let p = Nfl.Parser.program "def f(a, b) { return a; } main { x = f(1); }" in
  Alcotest.(check bool) "reports arity" true
    (List.exists
       (fun (i : Nfl.Check.issue) -> Value.str_contains ~sub:"2 argument" i.Nfl.Check.msg)
       (Nfl.Check.program p));
  Alcotest.check_raises "assert_ok raises" (Failure "dummy") (fun () ->
      try Nfl.Check.assert_ok p with Failure _ -> raise (Failure "dummy"))

(* --------------------------------------------------------------- *)
(* Report                                                           *)
(* --------------------------------------------------------------- *)

let test_report_measure_sanity () =
  let e = Option.get (Nfs.Corpus.find "firewall") in
  let _, row =
    Report.measure ~name:"firewall" ~source:(e.Nfs.Corpus.source ()) (e.Nfs.Corpus.program ())
  in
  Alcotest.(check bool) "slice <= stmts" true (row.Report.loc_slice <= row.Report.stmts_orig);
  Alcotest.(check bool) "path <= slice" true (row.Report.loc_path_max <= row.Report.loc_slice);
  Alcotest.(check bool) "positive loc" true (row.Report.loc_orig > 0);
  (match (row.Report.ep_orig, row.Report.ep_slice) with
  | Report.Exact o, Report.Exact s -> Alcotest.(check bool) "ep slice <= orig" true (s <= o)
  | _ -> ());
  (* row renders without exceptions and aligns with the header. *)
  Alcotest.(check bool) "renders" true (String.length (Report.row_to_string row) > 40)

let test_bound_int_pp () =
  Alcotest.(check string) "exact" "42" (Fmt.str "%a" Report.pp_bound_int (Report.Exact 42));
  Alcotest.(check string) "more" ">1000" (Fmt.str "%a" Report.pp_bound_int (Report.More_than 1000))

let suite =
  [
    Alcotest.test_case "config groups partition" `Quick test_config_groups_partition_entries;
    Alcotest.test_case "matched fields (lb)" `Quick test_matched_fields_lb;
    Alcotest.test_case "modified fields (snort)" `Quick test_modified_fields_snort_empty;
    Alcotest.test_case "is_stateful" `Quick test_is_stateful;
    Alcotest.test_case "rendering" `Quick test_rendering_mentions_key_parts;
    Alcotest.test_case "literal classification invariants" `Quick test_entries_have_consistent_literals;
    Alcotest.test_case "state slice ⊆ pkt slice" `Quick test_state_slice_contained;
    Alcotest.test_case "check: corpus clean" `Quick test_check_clean_corpus;
    Alcotest.test_case "check: unbound variable" `Quick test_check_unbound_variable;
    Alcotest.test_case "check: unknown function" `Quick test_check_unknown_function;
    Alcotest.test_case "check: bad packet field" `Quick test_check_bad_field;
    Alcotest.test_case "check: arity" `Quick test_check_arity;
    Alcotest.test_case "report: measure sanity" `Quick test_report_measure_sanity;
    Alcotest.test_case "report: bound pp" `Quick test_bound_int_pp;
  ]
