open Nfactor

let extract_nf name =
  let entry = Option.get (Nfs.Corpus.find name) in
  Extract.run ~name (entry.Nfs.Corpus.program ())

let test_firewall_fsm () =
  let ex = extract_nf "firewall" in
  let fsm = Fsm.of_extraction ex in
  (* Distinct per-flow situations: no-state, pinhole-present,
     no-pinhole variants. *)
  Alcotest.(check bool) "at least 2 states" true (Fsm.state_count fsm >= 2);
  Alcotest.(check bool) "has transitions" true (Fsm.transition_count fsm >= 2);
  Alcotest.(check bool) "initial state identified" true (fsm.Fsm.initial <> None);
  (* The outbound entry installs the pinhole: some transition changes
     state (from != to). *)
  let changing =
    List.filter
      (fun (tr : Fsm.transition) ->
        match tr.Fsm.to_state with Some t -> t <> tr.Fsm.from_state | None -> false)
      fsm.Fsm.transitions
  in
  Alcotest.(check bool) "state-changing transition" true (changing <> [])

let test_lb_fsm_two_states () =
  let ex = extract_nf "lb" in
  let fsm = Fsm.of_extraction ex in
  (* A flow is either unmapped or mapped: the signatures partition into
     a handful of abstract states, all reachable. *)
  let reach = Fsm.reachable_states fsm in
  Alcotest.(check bool) "multiple reachable states" true (List.length reach >= 2)

let test_balance_fsm_connection_lifecycle () =
  let ex = extract_nf "balance" in
  let fsm = Fsm.of_extraction ex in
  (* The unfolded TCP machine: unknown -> SYN_RCVD -> ESTABLISHED ->
     CLOSE_WAIT -> gone; at least 4 abstract states. *)
  Alcotest.(check bool) "TCP lifecycle states" true (Fsm.state_count fsm >= 4);
  (* Teardown transitions forget the flow (to_state resolves to the
     no-state abstract state or None). *)
  Alcotest.(check bool) "has transitions" true (Fsm.transition_count fsm >= 6)

let test_dot_rendering () =
  let ex = extract_nf "firewall" in
  let fsm = Fsm.of_extraction ex in
  let dot = Fsm.to_dot ~name:"firewall" fsm in
  Alcotest.(check bool) "digraph header" true
    (Symexec.Value.str_contains ~sub:"digraph firewall" dot);
  Alcotest.(check bool) "edges rendered" true (Symexec.Value.str_contains ~sub:"->" dot);
  (* Every state appears. *)
  List.iter
    (fun (s : Fsm.state) ->
      Alcotest.(check bool)
        (Printf.sprintf "S%d in dot" s.Fsm.id)
        true
        (Symexec.Value.str_contains ~sub:(Printf.sprintf "S%d" s.Fsm.id) dot))
    fsm.Fsm.states

let test_fsm_deterministic () =
  let ex = extract_nf "nat" in
  let a = Fsm.of_extraction ex and b = Fsm.of_extraction ex in
  Alcotest.(check string) "stable rendering" (Fmt.str "%a" Fsm.pp a) (Fmt.str "%a" Fsm.pp b)

let suite =
  [
    Alcotest.test_case "firewall FSM" `Quick test_firewall_fsm;
    Alcotest.test_case "LB FSM states" `Quick test_lb_fsm_two_states;
    Alcotest.test_case "balance TCP lifecycle" `Quick test_balance_fsm_connection_lifecycle;
    Alcotest.test_case "DOT rendering" `Quick test_dot_rendering;
    Alcotest.test_case "deterministic" `Quick test_fsm_deterministic;
  ]
