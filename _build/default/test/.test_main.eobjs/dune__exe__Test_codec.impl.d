test/test_codec.ml: Addr Alcotest Codec Filename Headers List Packet Pkt QCheck QCheck_alcotest Sys Traffic
