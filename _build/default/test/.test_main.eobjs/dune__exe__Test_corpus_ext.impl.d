test/test_corpus_ext.ml: Alcotest Equiv Extract Interp List Model Nfactor Nfl Nfs Option Packet Sexpr Slicing Solver Symexec
