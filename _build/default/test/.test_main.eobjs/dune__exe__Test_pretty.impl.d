test/test_pretty.ml: Alcotest Ast Builtins List Nfl Option Parser Pretty String
