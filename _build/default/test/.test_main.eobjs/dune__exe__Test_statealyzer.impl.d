test/test_statealyzer.ml: Alcotest Filename List Nfl Nfs Option Statealyzer Varclass
