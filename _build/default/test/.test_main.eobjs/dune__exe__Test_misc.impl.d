test/test_misc.ml: Alcotest Explore Extract Fsm Interp List Nfactor Nfl Nfs Option Packet Printf Sexpr Symexec Value Verify
