test/test_inline.ml: Alcotest Ast Builtins Check Inline List Nfl Parser String
