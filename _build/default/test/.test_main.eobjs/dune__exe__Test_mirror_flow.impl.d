test/test_mirror_flow.ml: Alcotest Equiv Extract Interp List Model Model_io Nfactor Nfl Nfs Option Packet QCheck QCheck_alcotest Sexpr Symexec
