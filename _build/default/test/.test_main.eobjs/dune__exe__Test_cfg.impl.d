test/test_cfg.ml: Alcotest Ast Cfg List Nfl Parser
