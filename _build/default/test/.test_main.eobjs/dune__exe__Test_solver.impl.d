test/test_solver.ml: Alcotest Nfl QCheck QCheck_alcotest Sexpr Solver Symexec Value
