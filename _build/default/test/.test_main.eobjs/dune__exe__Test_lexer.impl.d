test/test_lexer.ml: Alcotest Ast Fmt Lexer List Nfl Packet
