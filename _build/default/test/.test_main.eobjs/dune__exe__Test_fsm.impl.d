test/test_fsm.ml: Alcotest Extract Fmt Fsm List Nfactor Nfs Option Printf Symexec
