test/test_dominance.ml: Alcotest Ast Cdg Cfg Dominance Nfl Parser
