test/test_dataflow.ml: Alcotest Ast Cfg Dataflow List Nfl Parser
