test/test_equiv.ml: Alcotest Equiv Extract Fmt List Nfactor Nfl Nfs Option Packet Str
