test/test_value.ml: Alcotest List Nfl Option QCheck QCheck_alcotest Symexec Value
