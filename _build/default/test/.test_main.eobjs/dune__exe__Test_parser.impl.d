test/test_parser.ml: Alcotest Ast Lexer List Nfl Packet Parser Pretty QCheck QCheck_alcotest
