test/test_traffic.ml: Addr Alcotest Headers List Packet Pkt QCheck QCheck_alcotest Rng Tcp_fsm Traffic
