test/test_addr.ml: Addr Alcotest List Packet QCheck QCheck_alcotest
