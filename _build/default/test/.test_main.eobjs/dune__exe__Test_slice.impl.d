test/test_slice.ml: Alcotest Ast Builtins List Nfl Packet Parser Printf QCheck QCheck_alcotest Slicing String
