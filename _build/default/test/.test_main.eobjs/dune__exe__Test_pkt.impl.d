test/test_pkt.ml: Addr Alcotest Headers List Packet Pkt String
