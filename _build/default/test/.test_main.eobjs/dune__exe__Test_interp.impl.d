test/test_interp.ml: Alcotest Headers Interp List Nfl Nfs Option Packet Symexec Value
