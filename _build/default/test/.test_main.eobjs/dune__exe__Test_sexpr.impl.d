test/test_sexpr.ml: Alcotest List Nfl Sexpr Symexec Value
