test/test_acl.ml: Alcotest Equiv Extract Interp List Model Nfactor Nfl Nfs Option Packet Symexec
