test/test_model.ml: Alcotest Extract Fmt List Model Nfactor Nfl Nfs Option Report Sexpr Solver String Symexec Value
