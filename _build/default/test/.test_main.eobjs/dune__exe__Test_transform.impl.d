test/test_transform.ml: Alcotest Ast Builtins Check Inline List Nfl Parser Transform
