test/test_model_io.ml: Alcotest Extract List Model Model_interp Model_io Nfactor Nfl Nfs Option Packet QCheck QCheck_alcotest Sexpr Symexec Value
