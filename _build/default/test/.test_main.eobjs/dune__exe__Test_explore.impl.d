test/test_explore.ml: Alcotest Explore Interp List Nfl Nfs Packet Printf Sexpr Solver String Symexec
