test/test_verify.ml: Alcotest Chain Equiv Extract List Model Model_interp Network Nfactor Nfs Option Packet Sexpr Solver Symexec Testgen Value Verify
