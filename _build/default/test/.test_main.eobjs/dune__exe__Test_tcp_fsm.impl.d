test/test_tcp_fsm.ml: Alcotest Headers List Packet QCheck QCheck_alcotest Tcp_fsm
