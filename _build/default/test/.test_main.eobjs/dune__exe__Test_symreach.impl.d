test/test_symreach.ml: Alcotest Extract List Model_interp Nfactor Nfl Nfs Option Packet Sexpr Solver Symexec Symreach Value Verify
