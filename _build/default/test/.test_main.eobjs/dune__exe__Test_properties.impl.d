test/test_properties.ml: Explore Gen Interp List Nfactor Nfl Nfs Packet Printf QCheck QCheck_alcotest Sexpr Slicing Solver String Symexec Value
