test/test_portknock.ml: Alcotest Equiv Extract Fsm Interp List Model Model_interp Nfactor Nfl Nfs Option Packet Symexec
