test/test_extract.ml: Alcotest Explore Extract Fmt List Model Nfactor Nfl Nfs Option Sexpr Solver Symexec Value
