open Nfactor
open Symexec

let extract () = Extract.run ~name:"acl" ((Option.get (Nfs.Corpus.find "acl")).Nfs.Corpus.program ())

let pkt ~src =
  Packet.Pkt.make ~ip_src:(Packet.Addr.of_string src) ~ip_dst:(Packet.Addr.of_string "1.2.3.4")
    ~sport:1111 ~dport:80 ()

let test_first_match_semantics () =
  let p = Nfl.Transform.canonicalize ((Option.get (Nfs.Corpus.find "acl")).Nfs.Corpus.program ()) in
  let inputs =
    [ pkt ~src:"10.1.2.3" (* rule 1: allow *);
      pkt ~src:"192.168.9.9" (* rule 2: deny *);
      pkt ~src:"8.8.8.8" (* rule 3: allow *);
      pkt ~src:"44.44.44.44" (* no match: default deny *) ]
  in
  let r = Interp.run p ~inputs in
  Alcotest.(check (list int)) "allow/deny pattern" [ 1; 0; 1; 0 ]
    (List.map List.length r.Interp.per_input);
  (* The forwarded packets had their TTL decremented. *)
  List.iter
    (fun (o : Packet.Pkt.t) -> Alcotest.(check int) "ttl decremented" 63 o.Packet.Pkt.ip_ttl)
    r.Interp.outputs

let test_model_expands_first_match () =
  let ex = extract () in
  let m = ex.Extract.model in
  (* 3 rules + default(x2 configs) = 5 entries, stateless. *)
  Alcotest.(check int) "five entries" 5 (Model.entry_count m);
  Alcotest.(check (list string)) "stateless" [] m.Model.ois_vars;
  (* Later entries carry the negations of earlier prefixes (first-match
     expansion). *)
  let lens = List.map (fun (e : Model.entry) -> List.length e.Model.flow_match) m.Model.entries in
  Alcotest.(check (list int)) "monotone match depth" [ 1; 2; 3; 3; 3 ] (List.sort compare lens)

let test_acl_loop_in_slice () =
  let ex = extract () in
  (* The For_in rule loop must be inside the forwarding slice. *)
  let has_for_in_slice = ref false in
  Nfl.Ast.iter_program
    (fun s ->
      match s.Nfl.Ast.kind with
      | Nfl.Ast.For_in _ when List.mem s.Nfl.Ast.sid ex.Extract.union_slice ->
          has_for_in_slice := true
      | _ -> ())
    ex.Extract.program;
  Alcotest.(check bool) "rule loop kept by slicing" true !has_for_in_slice

let test_acl_differential () =
  let v = Equiv.random_testing ~seed:4242 ~trials:1000 (extract ()) in
  Alcotest.(check int) "no mismatches" 0 (List.length v.Equiv.mismatches)

let suite =
  [
    Alcotest.test_case "first-match semantics" `Quick test_first_match_semantics;
    Alcotest.test_case "model expands first-match" `Quick test_model_expands_first_match;
    Alcotest.test_case "rule loop in slice" `Quick test_acl_loop_in_slice;
    Alcotest.test_case "differential 1000" `Quick test_acl_differential;
  ]
