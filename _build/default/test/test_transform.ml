open Nfl

let parse = Parser.program

let callback_src =
  {|
  cnt = 0;
  def cb(pkt) { cnt = cnt + 1; send(pkt); }
  main { sniff(cb); }
  |}

let consumer_producer_src =
  {|
  q = 0;
  def read_loop() { pkt = recv(); queue_push(q, pkt); }
  def proc_loop() { p2 = queue_pop(q); send(p2); }
  main { spawn(read_loop); spawn(proc_loop); }
  |}

let balance_src =
  {|
  # Figure-3 balance: accept/fork relay.
  servers = [(1.1.1.1, 80), (2.2.2.2, 80)];
  idx = 0;
  lport = 80;
  main {
    ls = listen(lport);
    while (true) {
      c = accept(ls);
      server = servers[idx];
      idx = (idx + 1) % len(servers);
      child = fork();
      if (child == 0) {
        s = connect(server);
        while (true) {
          buf = sock_recv(c);
          out = buf;
          sock_send(s, out);
        }
      }
    }
  }
  |}

let single_loop_src = "main { while (true) { pkt = recv(); send(pkt); } }"

let test_detect () =
  let check name src expected =
    Alcotest.(check string)
      name
      (Transform.structure_to_string expected)
      (Transform.structure_to_string (Transform.detect (parse src)))
  in
  check "callback" callback_src Transform.Callback;
  check "consumer-producer" consumer_producer_src Transform.Consumer_producer;
  check "nested" balance_src Transform.Nested_loop;
  check "single" single_loop_src Transform.Single_loop

let test_detect_unknown () =
  match Transform.detect (parse "main { x = 1; }") with
  | exception Transform.Not_applicable _ -> ()
  | _ -> Alcotest.fail "unknown structure must be rejected"

let has_packet_loop p =
  match Transform.packet_loop p with _, _, _ -> true | exception Transform.Not_applicable _ -> false

let test_callback_to_loop () =
  let p' = Transform.callback_to_loop (parse callback_src) in
  Alcotest.(check bool) "has packet loop" true (has_packet_loop p');
  (* cb is now called inside the loop. *)
  let calls_cb = ref false in
  Ast.iter_program
    (fun s ->
      match s.Ast.kind with
      | Ast.Expr (Ast.Call ("cb", [ Ast.Var "pkt" ])) -> calls_cb := true
      | _ -> ())
    p';
  Alcotest.(check bool) "callback invoked" true !calls_cb

let test_fuse_consumer_producer () =
  let p' = Transform.fuse_consumer_producer (parse consumer_producer_src) in
  (* queue builtins gone. *)
  Ast.iter_program
    (fun s ->
      match s.Ast.kind with
      | Ast.Expr (Ast.Call (f, _)) | Ast.Assign (_, Ast.Call (f, _)) ->
          Alcotest.(check bool) ("no queue op: " ^ f) false
            (f = Builtins.queue_push || f = Builtins.queue_pop)
      | _ -> ())
    p';
  (* the spawned functions survive until inlining flattens them *)
  Alcotest.(check int) "funcs kept for inlining" 2 (List.length p'.Ast.funcs);
  (* after full canonicalization the packet loop exists *)
  let pc = Inline.program p' in
  Alcotest.(check bool) "canonical has packet loop" true (has_packet_loop pc)

let test_unfold_accept_fork () =
  let p' = Transform.unfold_accept_fork (parse balance_src) in
  Check.assert_ok p';
  Alcotest.(check bool) "has packet loop" true (has_packet_loop p');
  (* No socket builtins survive unfolding. *)
  Ast.iter_program
    (fun s ->
      match s.Ast.kind with
      | Ast.Expr (Ast.Call (f, _)) | Ast.Assign (_, Ast.Call (f, _)) ->
          Alcotest.(check bool) ("no socket op: " ^ f) false (Builtins.is_socket f)
      | _ -> ())
    p';
  (* The hidden TCP state became an explicit dictionary. *)
  let has_tcp_dict =
    List.exists
      (fun (s : Ast.stmt) ->
        match s.Ast.kind with
        | Ast.Assign (Ast.L_var "_tcp", Ast.Dict_lit) -> true
        | _ -> false)
      p'.Ast.globals
  in
  Alcotest.(check bool) "_tcp dictionary" true has_tcp_dict;
  (* Backend-selection statements were spliced in. *)
  let has_selection = ref false in
  Ast.iter_program
    (fun s ->
      match s.Ast.kind with
      | Ast.Assign (Ast.L_var "server", Ast.Index (Ast.Var "servers", _)) -> has_selection := true
      | _ -> ())
    p';
  Alcotest.(check bool) "selection spliced" true !has_selection

let test_canonicalize_all_structures () =
  List.iter
    (fun (name, src) ->
      let p = Transform.canonicalize (parse src) in
      Alcotest.(check bool) (name ^ ": canonical") true (has_packet_loop p);
      Alcotest.(check int) (name ^ ": no funcs") 0 (List.length p.Ast.funcs))
    [
      ("callback", callback_src);
      ("consumer-producer", consumer_producer_src);
      ("nested", balance_src);
      ("single", single_loop_src);
    ]

let test_not_applicable_errors () =
  (match Transform.callback_to_loop (parse single_loop_src) with
  | exception Transform.Not_applicable _ -> ()
  | _ -> Alcotest.fail "callback_to_loop on single loop");
  (match Transform.fuse_consumer_producer (parse callback_src) with
  | exception Transform.Not_applicable _ -> ()
  | _ -> Alcotest.fail "fuse on callback");
  match Transform.unfold_accept_fork (parse single_loop_src) with
  | exception Transform.Not_applicable _ -> ()
  | _ -> Alcotest.fail "unfold on single loop"

let suite =
  [
    Alcotest.test_case "detect structures" `Quick test_detect;
    Alcotest.test_case "detect unknown" `Quick test_detect_unknown;
    Alcotest.test_case "callback -> loop" `Quick test_callback_to_loop;
    Alcotest.test_case "consumer-producer fusion" `Quick test_fuse_consumer_producer;
    Alcotest.test_case "accept/fork unfolding" `Quick test_unfold_accept_fork;
    Alcotest.test_case "canonicalize all structures" `Quick test_canonicalize_all_structures;
    Alcotest.test_case "not-applicable errors" `Quick test_not_applicable_errors;
  ]
