open Nfactor

let extract_nf name =
  let entry = Option.get (Nfs.Corpus.find name) in
  Extract.run ~name (entry.Nfs.Corpus.program ())

let check_verdict name v =
  if not (Equiv.ok v) then
    Alcotest.failf "%s: %d/%d mismatches, first:@.%s" name
      (List.length v.Equiv.mismatches) v.Equiv.trials
      (Fmt.str "%a" Equiv.pp_mismatch (List.hd v.Equiv.mismatches))

(* Path-set equality (paper: "the two sets of paths are the same"). *)
let test_paths_match_all () =
  List.iter
    (fun name ->
      let ex = extract_nf name in
      Alcotest.(check bool) (name ^ ": path sets equal") true (Equiv.paths_match ex))
    Nfs.Corpus.names

(* The paper's 1000-random-packet experiment, per NF. *)
let test_random_1000 name () =
  let ex = extract_nf name in
  let v = Equiv.random_testing ~seed:2016 ~trials:1000 ex in
  Alcotest.(check int) "1000 trials" 1000 v.Equiv.trials;
  check_verdict name v

(* Flow-structured traffic drives the stateful entries (handshakes,
   data on existing connections, teardown). *)
let test_flows name () =
  let ex = extract_nf name in
  let v = Equiv.flow_testing ~seed:7 ~flows:40 ~data_pkts:3 ex in
  check_verdict name v

(* Model and program must also agree on *state*, observable as
   divergence later: interleave random and flow traffic. *)
let test_mixed name () =
  let ex = extract_nf name in
  let flows = Packet.Traffic.flow_stream ~seed:11 ~flows:10 ~data_pkts:2 () in
  let random = Packet.Traffic.random_stream ~seed:12 ~n:200 () in
  let rec interleave a b =
    match (a, b) with
    | [], r -> r
    | r, [] -> r
    | x :: xs, y :: ys -> x :: y :: interleave xs ys
  in
  let v = Equiv.differential ex ~pkts:(interleave flows random) in
  check_verdict name v

let test_lb_hash_config () =
  (* Re-extract with mode = 2 (hash): the other Figure-6 table drives
     forwarding. *)
  let src = Nfs.Lb.source in
  let src = Str.global_replace (Str.regexp_string "mode = 1;") "mode = 2;" src in
  let ex = Extract.run ~name:"lb-hash" (Nfl.Parser.program src) in
  let v = Equiv.random_testing ~seed:5 ~trials:500 ex in
  check_verdict "lb-hash" v

let test_firewall_permissive_config () =
  let src = Nfs.Firewall.source in
  let src = Str.global_replace (Str.regexp_string "strict_mode = 1;") "strict_mode = 0;" src in
  let ex = Extract.run ~name:"firewall-permissive" (Nfl.Parser.program src) in
  let v = Equiv.random_testing ~seed:6 ~trials:500 ex in
  check_verdict "firewall-permissive" v

let suite =
  [
    Alcotest.test_case "path sets: program slice vs model" `Quick test_paths_match_all;
    Alcotest.test_case "random 1000: lb" `Quick (test_random_1000 "lb");
    Alcotest.test_case "random 1000: balance" `Quick (test_random_1000 "balance");
    Alcotest.test_case "random 1000: snort" `Slow (test_random_1000 "snort");
    Alcotest.test_case "random 1000: nat" `Quick (test_random_1000 "nat");
    Alcotest.test_case "random 1000: firewall" `Quick (test_random_1000 "firewall");
    Alcotest.test_case "random 1000: ratelimiter" `Quick (test_random_1000 "ratelimiter");
    Alcotest.test_case "flows: lb" `Quick (test_flows "lb");
    Alcotest.test_case "flows: balance" `Quick (test_flows "balance");
    Alcotest.test_case "flows: nat" `Quick (test_flows "nat");
    Alcotest.test_case "flows: firewall" `Quick (test_flows "firewall");
    Alcotest.test_case "mixed traffic: lb" `Quick (test_mixed "lb");
    Alcotest.test_case "mixed traffic: nat" `Quick (test_mixed "nat");
    Alcotest.test_case "LB hash config" `Quick test_lb_hash_config;
    Alcotest.test_case "firewall permissive config" `Quick test_firewall_permissive_config;
  ]
