open Nfl

let parse = Parser.program

let test_simple_call_inlined () =
  let p =
    parse
      {|
      y = 0;
      def double(x) { return x + x; }
      main { while (true) { p = recv(); y = double(p.dport); send(p); } }
      |}
  in
  let p' = Inline.program p in
  Alcotest.(check int) "no funcs left" 0 (List.length p'.Ast.funcs);
  (* No user calls remain anywhere. *)
  Ast.iter_program
    (fun s ->
      match s.Ast.kind with
      | Ast.Assign (_, Ast.Call (f, _)) | Ast.Expr (Ast.Call (f, _)) ->
          Alcotest.(check bool) ("builtin: " ^ f) true (Builtins.is_builtin f)
      | _ -> ())
    p'

let test_early_return_guards () =
  (* Statements after an early return inside the callee must be guarded. *)
  let p =
    parse
      {|
      hits = 0;
      def f(a) {
        if (a == 1) { return 10; }
        hits = hits + 1;
        return 20;
      }
      main { while (true) { p = recv(); r = f(p.dport); send(p); } }
      |}
  in
  let p' = Inline.program p in
  (* There must be an if over a _live variable guarding the hits update. *)
  let found_guard = ref false in
  Ast.iter_program
    (fun s ->
      match s.Ast.kind with
      | Ast.If (Ast.Binop (Ast.Eq, Ast.Var v, Ast.Int 1), _, _)
        when String.length v > 4 && String.sub v (String.length v - 4) 4 = "live" ->
          found_guard := true
      | _ -> ())
    p';
  Alcotest.(check bool) "live guard present" true !found_guard

let run_inlined_manually src =
  (* Poor-man's check: pretty-print the inlined program and re-parse. *)
  let p = Inline.program (parse src) in
  Check.assert_ok p;
  p

let test_inlined_program_checks () =
  let p =
    run_inlined_manually
      {|
      n = 0;
      def bump(k) { n = n + k; return n; }
      def twice(k) { a = bump(k); b = bump(k); return b; }
      main { while (true) { p = recv(); x = twice(2); send(p); } }
      |}
  in
  Alcotest.(check bool) "nested calls expanded" true (List.length (Ast.all_stmts p) > 10)

let test_locals_renamed_globals_shared () =
  let p =
    parse
      {|
      g = 0;
      def f(x) { t = x + 1; g = g + t; return t; }
      main { while (true) { p = recv(); t = 99; r = f(1); send(p); } }
      |}
  in
  let p' = Inline.program p in
  (* Global g is still assigned under its own name; local t is renamed. *)
  let g_assigned = ref false and renamed_t = ref false and plain_t_in_callee = ref false in
  Ast.iter_program
    (fun s ->
      match s.Ast.kind with
      | Ast.Assign (Ast.L_var "g", _) -> g_assigned := true
      | Ast.Assign (Ast.L_var v, Ast.Binop (Ast.Add, Ast.Var v', Ast.Int 1)) ->
          if v <> "t" then renamed_t := true
          else if v' <> "x" then plain_t_in_callee := true
      | _ -> ())
    p';
  Alcotest.(check bool) "global kept" true !g_assigned;
  Alcotest.(check bool) "local renamed" true !renamed_t

let test_return_in_while_exits_loop () =
  let p =
    parse
      {|
      def find(lst) {
        i = 0;
        while (i < len(lst)) {
          if (lst[i] == 7) { return i; }
          i = i + 1;
        }
        return 0 - 1;
      }
      main { while (true) { p = recv(); r = find([1, 7, 3]); send(p); } }
      |}
  in
  let p' = Inline.program p in
  (* The while condition must now mention the live flag. *)
  let found = ref false in
  Ast.iter_program
    (fun s ->
      match s.Ast.kind with
      | Ast.While (Ast.Binop (Ast.And, _, _), _) -> found := true
      | _ -> ())
    p';
  Alcotest.(check bool) "loop condition guarded" true !found

let test_recursion_rejected () =
  let p =
    parse
      {|
      def f(x) { return f(x); }
      main { while (true) { p = recv(); y = f(1); send(p); } }
      |}
  in
  match Inline.program p with
  | exception Inline.Recursive _ -> ()
  | exception Inline.Unsupported_call _ -> ()
  | _ -> Alcotest.fail "recursion must be rejected"

let test_call_in_expression_rejected () =
  let p =
    parse
      {|
      def f(x) { return x; }
      main { while (true) { p = recv(); y = 1 + f(2); send(p); } }
      |}
  in
  match Inline.program p with
  | exception Inline.Unsupported_call ("f", _) -> ()
  | _ -> Alcotest.fail "nested user call must be rejected"

let test_ids_dense_after_inline () =
  let p =
    run_inlined_manually
      {|
      def f(x) { return x + 1; }
      main { while (true) { p = recv(); y = f(1); send(p); } }
      |}
  in
  let sids = List.sort compare (List.map (fun s -> s.Ast.sid) (Ast.all_stmts p)) in
  Alcotest.(check (list int)) "dense ids" (List.init (List.length sids) (fun i -> i + 1)) sids

let suite =
  [
    Alcotest.test_case "simple call inlined" `Quick test_simple_call_inlined;
    Alcotest.test_case "early return guarded" `Quick test_early_return_guards;
    Alcotest.test_case "nested calls expand" `Quick test_inlined_program_checks;
    Alcotest.test_case "locals renamed, globals shared" `Quick test_locals_renamed_globals_shared;
    Alcotest.test_case "return exits while" `Quick test_return_in_while_exits_loop;
    Alcotest.test_case "recursion rejected" `Quick test_recursion_rejected;
    Alcotest.test_case "nested user call rejected" `Quick test_call_in_expression_rejected;
    Alcotest.test_case "ids dense after inline" `Quick test_ids_dense_after_inline;
  ]
