open Symexec
module Smap = Interp.Smap

let canon src = Nfl.Transform.canonicalize (Nfl.Parser.program src)

let pkt ?(flags = Packet.Headers.ack) ?(payload = "") ~src ~sport ~dst ~dport () =
  Packet.Pkt.make ~ip_src:(Packet.Addr.of_string src) ~ip_dst:(Packet.Addr.of_string dst) ~sport
    ~dport ~tcp_flags:flags ~payload ()

let test_echo () =
  let p = canon "main { while (true) { pkt = recv(); send(pkt); } }" in
  let input = [ pkt ~src:"1.1.1.1" ~sport:1 ~dst:"2.2.2.2" ~dport:2 () ] in
  let r = Interp.run p ~inputs:input in
  Alcotest.(check int) "one output" 1 (List.length r.Interp.outputs);
  Alcotest.(check bool) "unchanged" true (Packet.Pkt.equal (List.hd input) (List.hd r.Interp.outputs));
  Alcotest.(check bool) "clean end" true (r.Interp.outcome = Interp.Input_exhausted)

let test_rewrite () =
  let p =
    canon
      {|target = 9.9.9.9;
        main { while (true) { pkt = recv(); pkt.ip_dst = target; pkt.ip_ttl = pkt.ip_ttl - 1; send(pkt); } }|}
  in
  let r = Interp.run p ~inputs:[ pkt ~src:"1.1.1.1" ~sport:1 ~dst:"2.2.2.2" ~dport:2 () ] in
  let out = List.hd r.Interp.outputs in
  Alcotest.(check int) "dst rewritten" (Packet.Addr.of_string "9.9.9.9") out.Packet.Pkt.ip_dst;
  Alcotest.(check int) "ttl decremented" 63 out.Packet.Pkt.ip_ttl

let test_conditional_drop () =
  let p =
    canon
      {|main { while (true) { pkt = recv(); if (pkt.dport == 80) { send(pkt); } } }|}
  in
  let inputs =
    [
      pkt ~src:"1.1.1.1" ~sport:5 ~dst:"2.2.2.2" ~dport:80 ();
      pkt ~src:"1.1.1.1" ~sport:5 ~dst:"2.2.2.2" ~dport:22 ();
      pkt ~src:"1.1.1.1" ~sport:6 ~dst:"2.2.2.2" ~dport:80 ();
    ]
  in
  let r = Interp.run p ~inputs in
  Alcotest.(check int) "two pass" 2 (List.length r.Interp.outputs);
  Alcotest.(check (list int)) "per-input grouping" [ 1; 0; 1 ]
    (List.map List.length r.Interp.per_input)

let test_state_accumulates () =
  let p =
    canon
      {|seen = {};
        cnt = 0;
        main { while (true) { pkt = recv();
          key = pkt.ip_src;
          if (not (key in seen)) { seen[key] = 1; cnt = cnt + 1; }
          send(pkt); } }|}
  in
  let a = pkt ~src:"1.1.1.1" ~sport:1 ~dst:"2.2.2.2" ~dport:2 () in
  let b = pkt ~src:"3.3.3.3" ~sport:1 ~dst:"2.2.2.2" ~dport:2 () in
  let r = Interp.run p ~inputs:[ a; a; b; a; b ] in
  Alcotest.(check bool) "cnt = 2" true
    (Value.equal (Smap.find "cnt" r.Interp.state) (Value.Int 2))

let test_runtime_error_position () =
  let p = canon "main { while (true) { pkt = recv(); x = 1 / 0; send(pkt); } }" in
  match Interp.run p ~inputs:[ pkt ~src:"1.1.1.1" ~sport:1 ~dst:"2.2.2.2" ~dport:2 () ] with
  | exception Interp.Runtime_error (msg, pos) ->
      Alcotest.(check string) "message" "division by zero" msg;
      Alcotest.(check bool) "position recorded" true (pos.Nfl.Ast.line > 0)
  | _ -> Alcotest.fail "expected runtime error"

let test_step_limit () =
  (* A loop that burns cycles before ever reaching recv() must be
     stopped by the step budget, not hang. *)
  let p =
    Nfl.Parser.program
      "x = 0; main { while (x < 100000000) { x = x + 1; } pkt = recv(); send(pkt); }"
  in
  let r = Interp.run ~max_steps:5000 p ~inputs:[] in
  Alcotest.(check bool) "stopped by limit" true (r.Interp.outcome = Interp.Step_limit)

let test_trace_records_loop () =
  let p = canon "main { while (true) { pkt = recv(); send(pkt); } }" in
  let r =
    Interp.run p
      ~inputs:[ pkt ~src:"1.1.1.1" ~sport:1 ~dst:"2.2.2.2" ~dport:2 ();
                pkt ~src:"1.1.1.1" ~sport:2 ~dst:"2.2.2.2" ~dport:2 () ]
  in
  (* send sid appears twice in the trace. *)
  let send_sid =
    List.find_map
      (fun s -> if Nfl.Builtins.is_pkt_output_stmt s then Some s.Nfl.Ast.sid else None)
      (Nfl.Ast.all_stmts p)
  in
  let send_sid = Option.get send_sid in
  Alcotest.(check int) "send executed twice" 2
    (List.length (List.filter (( = ) send_sid) r.Interp.trace))

(* --------------------------------------------------------------- *)
(* Corpus programs under the interpreter                            *)
(* --------------------------------------------------------------- *)

let lb_canon () = Nfl.Transform.canonicalize (Nfs.Lb.program ())

let test_lb_round_robin () =
  let p = lb_canon () in
  let mk_client i = pkt ~src:"10.0.0.9" ~sport:(4000 + i) ~dst:"3.3.3.3" ~dport:80 () in
  let r = Interp.run p ~inputs:[ mk_client 1; mk_client 2; mk_client 3 ] in
  let dsts = List.map (fun (o : Packet.Pkt.t) -> Packet.Addr.to_string o.Packet.Pkt.ip_dst) r.Interp.outputs in
  Alcotest.(check (list string)) "round robin across backends"
    [ "1.1.1.1"; "2.2.2.2"; "1.1.1.1" ]
    dsts;
  (* Source rewritten to the LB with allocated ports. *)
  let sports = List.map (fun (o : Packet.Pkt.t) -> o.Packet.Pkt.sport) r.Interp.outputs in
  Alcotest.(check (list int)) "allocated ports" [ 10000; 10001; 10002 ] sports

let test_lb_existing_flow_reuses_mapping () =
  let p = lb_canon () in
  let c = pkt ~src:"10.0.0.9" ~sport:4000 ~dst:"3.3.3.3" ~dport:80 () in
  let r = Interp.run p ~inputs:[ c; c; c ] in
  let dsts = List.map (fun (o : Packet.Pkt.t) -> Packet.Addr.to_string o.Packet.Pkt.ip_dst) r.Interp.outputs in
  Alcotest.(check (list string)) "same backend" [ "1.1.1.1"; "1.1.1.1"; "1.1.1.1" ] dsts

let test_lb_outbound_translated_back () =
  let p = lb_canon () in
  let c = pkt ~src:"10.0.0.9" ~sport:4000 ~dst:"3.3.3.3" ~dport:80 () in
  (* Server reply to the allocated port 10000. *)
  let reply = pkt ~src:"1.1.1.1" ~sport:80 ~dst:"3.3.3.3" ~dport:10000 () in
  let r = Interp.run p ~inputs:[ c; reply ] in
  Alcotest.(check int) "both forwarded" 2 (List.length r.Interp.outputs);
  let back = List.nth r.Interp.outputs 1 in
  Alcotest.(check string) "reply to client" "10.0.0.9" (Packet.Addr.to_string back.Packet.Pkt.ip_dst);
  Alcotest.(check int) "client port restored" 4000 back.Packet.Pkt.dport;
  Alcotest.(check string) "source is LB" "3.3.3.3" (Packet.Addr.to_string back.Packet.Pkt.ip_src)

let test_lb_unsolicited_outbound_dropped () =
  let p = lb_canon () in
  let reply = pkt ~src:"1.1.1.1" ~sport:80 ~dst:"3.3.3.3" ~dport:10000 () in
  let r = Interp.run p ~inputs:[ reply ] in
  Alcotest.(check int) "dropped" 0 (List.length r.Interp.outputs);
  Alcotest.(check bool) "drop_stat = 1" true
    (Value.equal (Smap.find "drop_stat" r.Interp.state) (Value.Int 1))

let test_nat_translation () =
  let p = Nfl.Transform.canonicalize (Nfs.Nat.program ()) in
  let out_pkt = pkt ~src:"10.1.2.3" ~sport:5555 ~dst:"8.8.8.8" ~dport:53 () in
  let r1 = Interp.run p ~inputs:[ out_pkt ] in
  let o = List.hd r1.Interp.outputs in
  Alcotest.(check string) "src rewritten" "5.5.5.5" (Packet.Addr.to_string o.Packet.Pkt.ip_src);
  Alcotest.(check int) "port allocated" 20000 o.Packet.Pkt.sport;
  (* Return traffic flows back through. *)
  let ret = pkt ~src:"8.8.8.8" ~sport:53 ~dst:"5.5.5.5" ~dport:20000 () in
  let r2 = Interp.run p ~inputs:[ out_pkt; ret ] in
  let back = List.nth r2.Interp.outputs 1 in
  Alcotest.(check string) "back to inside host" "10.1.2.3" (Packet.Addr.to_string back.Packet.Pkt.ip_dst);
  Alcotest.(check int) "inside port" 5555 back.Packet.Pkt.dport;
  (* Unsolicited inbound dropped. *)
  let r3 = Interp.run p ~inputs:[ ret ] in
  Alcotest.(check int) "unsolicited dropped" 0 (List.length r3.Interp.outputs)

let test_firewall_pinhole () =
  let p = Nfl.Transform.canonicalize (Nfs.Firewall.program ()) in
  let inside = pkt ~src:"192.168.1.5" ~sport:1234 ~dst:"8.8.8.8" ~dport:9999 () in
  let reply = pkt ~src:"8.8.8.8" ~sport:9999 ~dst:"192.168.1.5" ~dport:1234 () in
  (* Reply without pinhole: blocked (9999 not an open port). *)
  let r1 = Interp.run p ~inputs:[ reply ] in
  Alcotest.(check int) "no pinhole" 0 (List.length r1.Interp.outputs);
  (* After outbound, reply passes. *)
  let r2 = Interp.run p ~inputs:[ inside; reply ] in
  Alcotest.(check int) "pinhole opened" 2 (List.length r2.Interp.outputs);
  (* Open service port 80 admits TCP inbound without pinhole. *)
  let web = pkt ~src:"8.8.8.8" ~sport:1000 ~dst:"192.168.1.5" ~dport:80 () in
  let r3 = Interp.run p ~inputs:[ web ] in
  Alcotest.(check int) "service port open" 1 (List.length r3.Interp.outputs)

let test_ratelimiter_blocks_after_limit () =
  let p = Nfl.Transform.canonicalize (Nfs.Ratelimiter.program ()) in
  let flood = List.init 120 (fun i -> pkt ~src:"7.7.7.7" ~sport:(1000 + i) ~dst:"2.2.2.2" ~dport:80 ()) in
  let r = Interp.run p ~inputs:flood in
  Alcotest.(check int) "limit 100 enforced" 100 (List.length r.Interp.outputs);
  (* Exempt sources are never limited. *)
  let exempt = List.init 120 (fun i -> pkt ~src:"10.9.1.1" ~sport:(1000 + i) ~dst:"2.2.2.2" ~dport:80 ()) in
  let r2 = Interp.run p ~inputs:exempt in
  Alcotest.(check int) "exempt passes all" 120 (List.length r2.Interp.outputs)

let test_snort_forwards_decodable () =
  let p = Nfl.Transform.canonicalize (Nfs.Snort_lite.program ()) in
  let ok = pkt ~src:"10.0.0.1" ~sport:1234 ~dst:"3.3.3.3" ~dport:80 ~payload:"GET /etc/passwd" () in
  let bad = Packet.Pkt.make ~ip_src:1 ~ip_dst:2 ~sport:1 ~dport:2 ~ip_proto:99 () in
  let r = Interp.run ~max_steps:10_000_000 p ~inputs:[ ok; bad; ok ] in
  Alcotest.(check int) "decodable forwarded, bad proto dropped" 2 (List.length r.Interp.outputs);
  (* The rule engine alerted on the suspicious payload. *)
  let alerts = Value.as_int (Smap.find "alert_cnt" r.Interp.state) in
  Alcotest.(check bool) "alerts raised" true (alerts > 0)

let test_balance_relays_after_handshake () =
  let p = Nfl.Transform.canonicalize (Nfs.Balance.program ()) in
  let syn = pkt ~flags:Packet.Headers.syn ~src:"10.0.0.5" ~sport:4444 ~dst:"9.9.9.9" ~dport:80 () in
  let ack = pkt ~flags:Packet.Headers.ack ~src:"10.0.0.5" ~sport:4444 ~dst:"9.9.9.9" ~dport:80 () in
  let data =
    pkt ~flags:Packet.(Headers.ack lor Headers.psh) ~payload:"hello" ~src:"10.0.0.5" ~sport:4444
      ~dst:"9.9.9.9" ~dport:80 ()
  in
  (* Data before handshake: dropped (hidden TCP state). *)
  let r1 = Interp.run p ~inputs:[ data ] in
  Alcotest.(check int) "no handshake, no relay" 0 (List.length r1.Interp.outputs);
  (* SYN -> SYN/ACK reply; ACK establishes; data relayed to backend. *)
  let r2 = Interp.run p ~inputs:[ syn; ack; data ] in
  Alcotest.(check int) "synack + relayed data" 2 (List.length r2.Interp.outputs);
  let synack = List.hd r2.Interp.outputs in
  Alcotest.(check int) "SYN/ACK flags" (Packet.Headers.syn lor Packet.Headers.ack)
    synack.Packet.Pkt.tcp_flags;
  let relayed = List.nth r2.Interp.outputs 1 in
  Alcotest.(check string) "to backend" "1.1.1.1" (Packet.Addr.to_string relayed.Packet.Pkt.ip_dst);
  Alcotest.(check string) "payload relayed" "hello" relayed.Packet.Pkt.payload

let test_initial_state () =
  let p = lb_canon () in
  let st = Interp.initial_state p in
  Alcotest.(check bool) "mode = 1" true (Value.equal (Smap.find "mode" st) (Value.Int 1));
  Alcotest.(check bool) "f2b_nat empty" true (Value.equal (Smap.find "f2b_nat" st) Value.dict_empty)

let suite =
  [
    Alcotest.test_case "echo" `Quick test_echo;
    Alcotest.test_case "header rewrite" `Quick test_rewrite;
    Alcotest.test_case "conditional drop + per-input grouping" `Quick test_conditional_drop;
    Alcotest.test_case "state accumulates" `Quick test_state_accumulates;
    Alcotest.test_case "runtime error with position" `Quick test_runtime_error_position;
    Alcotest.test_case "step limit" `Quick test_step_limit;
    Alcotest.test_case "trace records loop" `Quick test_trace_records_loop;
    Alcotest.test_case "LB: round robin" `Quick test_lb_round_robin;
    Alcotest.test_case "LB: existing flow reuses mapping" `Quick test_lb_existing_flow_reuses_mapping;
    Alcotest.test_case "LB: reverse translation" `Quick test_lb_outbound_translated_back;
    Alcotest.test_case "LB: unsolicited outbound dropped" `Quick test_lb_unsolicited_outbound_dropped;
    Alcotest.test_case "NAT: translation + return + unsolicited" `Quick test_nat_translation;
    Alcotest.test_case "firewall: pinholes" `Quick test_firewall_pinhole;
    Alcotest.test_case "rate limiter" `Quick test_ratelimiter_blocks_after_limit;
    Alcotest.test_case "snort: tap forwarding + alerts" `Quick test_snort_forwards_decodable;
    Alcotest.test_case "balance: TCP unfolding semantics" `Quick test_balance_relays_after_handshake;
    Alcotest.test_case "initial state" `Quick test_initial_state;
  ]
