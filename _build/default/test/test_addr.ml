open Packet

let test_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Addr.to_string (Addr.of_string s)))
    [ "0.0.0.0"; "1.2.3.4"; "10.0.0.1"; "192.168.255.254"; "255.255.255.255" ]

let test_ip_value () =
  Alcotest.(check int) "1.0.0.0" 0x01000000 (Addr.ip 1 0 0 0);
  Alcotest.(check int) "0.0.0.255" 255 (Addr.ip 0 0 0 255);
  Alcotest.(check int) "1.2.3.4" 0x01020304 (Addr.ip 1 2 3 4)

let test_of_string_invalid () =
  List.iter
    (fun s ->
      Alcotest.check_raises s (Invalid_argument ("Addr.of_string: " ^ s)) (fun () ->
          ignore (Addr.of_string s)))
    [ "1.2.3"; "1.2.3.4.5"; "256.0.0.1"; "a.b.c.d"; ""; "1..2.3" ]

let test_octet () =
  let a = Addr.ip 10 20 30 40 in
  Alcotest.(check (list int)) "octets" [ 10; 20; 30; 40 ] (List.init 4 (Addr.octet a))

let test_mask () =
  Alcotest.(check int) "/0" 0 (Addr.mask_of_prefix 0);
  Alcotest.(check int) "/32" 0xFFFFFFFF (Addr.mask_of_prefix 32);
  Alcotest.(check int) "/24" 0xFFFFFF00 (Addr.mask_of_prefix 24);
  Alcotest.(check int) "/8" 0xFF000000 (Addr.mask_of_prefix 8)

let test_in_prefix () =
  let network = Addr.of_string "10.1.0.0" in
  Alcotest.(check bool) "member" true (Addr.in_prefix (Addr.of_string "10.1.2.3") ~network ~prefix:16);
  Alcotest.(check bool)
    "non-member" false
    (Addr.in_prefix (Addr.of_string "10.2.2.3") ~network ~prefix:16);
  Alcotest.(check bool) "/0 matches all" true (Addr.in_prefix 12345 ~network:0 ~prefix:0);
  Alcotest.(check bool)
    "/32 exact" true
    (Addr.in_prefix network ~network ~prefix:32)

let test_ports () =
  Alcotest.(check bool) "0 valid" true (Addr.valid_port 0);
  Alcotest.(check bool) "65535 valid" true (Addr.valid_port 65535);
  Alcotest.(check bool) "65536 invalid" false (Addr.valid_port 65536);
  Alcotest.(check bool) "-1 invalid" false (Addr.valid_port (-1))

let qcheck_roundtrip =
  QCheck.Test.make ~name:"addr: to_string/of_string roundtrip" ~count:500
    QCheck.(quad (int_bound 255) (int_bound 255) (int_bound 255) (int_bound 255))
    (fun (a, b, c, d) ->
      let addr = Addr.ip a b c d in
      Addr.of_string (Addr.to_string addr) = addr)

let qcheck_prefix_reflexive =
  QCheck.Test.make ~name:"addr: every address is in its own /32" ~count:500
    QCheck.(int_bound 0xFFFFFFF)
    (fun a -> Addr.in_prefix a ~network:a ~prefix:32)

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "ip value" `Quick test_ip_value;
    Alcotest.test_case "of_string invalid" `Quick test_of_string_invalid;
    Alcotest.test_case "octet" `Quick test_octet;
    Alcotest.test_case "mask_of_prefix" `Quick test_mask;
    Alcotest.test_case "in_prefix" `Quick test_in_prefix;
    Alcotest.test_case "ports" `Quick test_ports;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_prefix_reflexive;
  ]
