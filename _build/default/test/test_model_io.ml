open Nfactor
open Symexec

let extract_nf name =
  let entry = Option.get (Nfs.Corpus.find name) in
  Extract.run ~name (entry.Nfs.Corpus.program ())

(* Round trip: serialized + reparsed model renders identically. *)
let test_roundtrip_all_nfs () =
  List.iter
    (fun name ->
      let m = (extract_nf name).Extract.model in
      let m' = Model_io.of_string (Model_io.to_string m) in
      Alcotest.(check string) (name ^ " roundtrips") (Model.to_string m) (Model.to_string m'))
    Nfs.Corpus.names

(* The reparsed model is behaviourally identical, not just textually:
   drive both through the model interpreter. *)
let test_roundtrip_behaviour () =
  let ex = extract_nf "lb" in
  let m = ex.Extract.model in
  let m' = Model_io.of_string (Model_io.to_string m) in
  let store = Model_interp.initial_store ex in
  let pkts = Packet.Traffic.random_stream ~seed:31337 ~n:300 () in
  let _, out1 = Model_interp.run m ~store ~pkts in
  let _, out2 = Model_interp.run m' ~store ~pkts in
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "same outputs" true
        (List.length a = List.length b && List.for_all2 Packet.Pkt.equal a b))
    out1 out2

let test_sexp_atom_quoting () =
  (* Strings with spaces/specials survive. *)
  let v = Value.Str "GET /etc/passwd \"x\"\nend" in
  let s = Model_io.sexp_to_string (Model_io.sexp_of_value v) in
  let v' = Model_io.value_of_sexp (Model_io.parse_sexp s) in
  Alcotest.(check bool) "string roundtrip" true (Value.equal v v')

let test_value_roundtrip () =
  let cases =
    [
      Value.Int 42;
      Value.Int (-7);
      Value.Bool true;
      Value.Str "";
      Value.Tuple [ Value.Int 1; Value.Str "a" ];
      Value.List [ Value.Tuple [ Value.Int 1; Value.Int 2 ] ];
      Value.Dict [ (Value.Int 1, Value.Str "x"); (Value.Int 2, Value.Str "y") ];
    ]
  in
  List.iter
    (fun v ->
      let v' = Model_io.value_of_sexp (Model_io.parse_sexp (Model_io.sexp_to_string (Model_io.sexp_of_value v))) in
      Alcotest.(check bool) (Value.to_string v) true (Value.equal v v'))
    cases

let test_expr_roundtrip () =
  let d = { Sexpr.base = "tbl"; writes = [ (Sexpr.Sym "k", Some (Sexpr.int 1)); (Sexpr.Sym "q", None) ] } in
  let cases =
    [
      Sexpr.Sym "pkt.dport";
      Sexpr.mk_bin Nfl.Ast.Add (Sexpr.Sym "x") (Sexpr.int 3);
      Sexpr.Not (Sexpr.Sym "b");
      Sexpr.Tup [ Sexpr.Sym "a"; Sexpr.int 2 ];
      Sexpr.Get (Sexpr.Lst [ Sexpr.int 1; Sexpr.int 2 ], Sexpr.Sym "i");
      Sexpr.Ufun ("hash", [ Sexpr.Sym "x" ]);
      Sexpr.Mem (d, Sexpr.Sym "key");
      Sexpr.Dget (d, Sexpr.Tup [ Sexpr.Sym "a"; Sexpr.Sym "b" ]);
    ]
  in
  List.iter
    (fun e ->
      let e' = Model_io.expr_of_sexp (Model_io.parse_sexp (Model_io.sexp_to_string (Model_io.sexp_of_expr e))) in
      Alcotest.(check bool) (Sexpr.to_string e) true (Sexpr.equal e e'))
    cases

let test_parse_errors () =
  let fails s =
    match Model_io.parse_sexp s with
    | exception Model_io.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error on %S" s
  in
  fails "";
  fails "(";
  fails "(a))";
  fails "\"open";
  (match Model_io.of_string "(something-else)" with
  | exception Model_io.Parse_error _ -> ()
  | _ -> Alcotest.fail "wrong document type accepted");
  match
    Model_io.of_string
      "(nfactor-model (version 99) (name x) (pkt-var p) (cfg-vars) (ois-vars) (entries))"
  with
  | exception Model_io.Parse_error _ -> ()
  | _ -> Alcotest.fail "wrong version accepted"

let qcheck_sexp_roundtrip =
  (* Random nested sexps survive print/parse. *)
  let rec gen depth rng =
    if depth = 0 || Packet.Rng.int rng 3 = 0 then
      Model_io.Atom
        (Packet.Rng.pick rng [ "a"; "x1"; "with space"; "sym.bol"; ""; "\"q\""; "end\n" ])
    else
      Model_io.List (List.init (Packet.Rng.int rng 4) (fun _ -> gen (depth - 1) rng))
  in
  QCheck.Test.make ~name:"model_io: sexp print/parse roundtrip" ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Packet.Rng.create seed in
      let s = gen 4 rng in
      Model_io.parse_sexp (Model_io.sexp_to_string s) = s)

let suite =
  [
    Alcotest.test_case "model roundtrip (all NFs)" `Quick test_roundtrip_all_nfs;
    Alcotest.test_case "behavioural roundtrip" `Quick test_roundtrip_behaviour;
    Alcotest.test_case "atom quoting" `Quick test_sexp_atom_quoting;
    Alcotest.test_case "value roundtrip" `Quick test_value_roundtrip;
    Alcotest.test_case "expr roundtrip" `Quick test_expr_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    QCheck_alcotest.to_alcotest qcheck_sexp_roundtrip;
  ]
