(* Coverage for remaining corners: Network chain helpers, exploration
   error/truncation reporting, interpreter loop semantics, and the
   transform pattern-matcher's diagnostics. *)

open Nfactor
open Symexec

let extract_nf name =
  let entry = Option.get (Nfs.Corpus.find name) in
  Extract.run ~name (entry.Nfs.Corpus.program ())

let pkt ~src ~sport ~dst ~dport =
  Packet.Pkt.make ~ip_src:(Packet.Addr.of_string src) ~ip_dst:(Packet.Addr.of_string dst) ~sport
    ~dport ()

(* --------------------------------------------------------------- *)
(* Network                                                          *)
(* --------------------------------------------------------------- *)

let test_network_run_and_reset () =
  let ex = extract_nf "firewall" in
  let node = Verify.Network.node_of_extraction "fw" ex in
  let c = Verify.Network.chain [ node ] in
  let initial = node.Verify.Network.store in
  let opener = pkt ~src:"192.168.1.10" ~sport:1 ~dst:"8.8.8.8" ~dport:2 in
  let probe = pkt ~src:"8.8.8.8" ~sport:2 ~dst:"192.168.1.10" ~dport:1 in
  let results = Verify.Network.run c [ opener; probe ] in
  Alcotest.(check (list int)) "stateful run" [ 1; 1 ]
    (List.map (fun (outs, _) -> List.length outs) results);
  (* Reset wipes the pinhole. *)
  Verify.Network.reset_chain c ~stores:[ initial ];
  let outs, _ = Verify.Network.push c probe in
  Alcotest.(check int) "after reset the pinhole is gone" 0 (List.length outs)

let test_network_two_hop_rewrite () =
  (* mirror then snort: the mirrored copy and the original both pass
     the tap, so one input yields two chain outputs. *)
  let c =
    Verify.Network.chain
      [
        Verify.Network.node_of_extraction "mirror" (extract_nf "mirror");
        Verify.Network.node_of_extraction "snort" (extract_nf "snort");
      ]
  in
  let outs, trace = Verify.Network.push c (pkt ~src:"10.0.0.1" ~sport:5 ~dst:"3.3.3.3" ~dport:80) in
  Alcotest.(check int) "two packets delivered" 2 (List.length outs);
  Alcotest.(check int) "two hops recorded" 2 (List.length trace);
  Alcotest.(check string) "hop order" "mirror"
    (List.hd trace).Verify.Network.node_id

(* --------------------------------------------------------------- *)
(* Exploration corner cases                                         *)
(* --------------------------------------------------------------- *)

let parse_main src = (Nfl.Parser.program src).Nfl.Ast.main

let sym_env = Explore.Smap.singleton "pkt" (Explore.sym_pkt "pkt")

let test_unsupported_constructs_raise () =
  let cases =
    [
      (* write through a symbolic list index *)
      ( "main { xs = [1, 2]; xs[pkt.dport] = 3; send(pkt); }",
        "symbolic list write" );
      (* user call that survived (no inlining applied here) *)
      ("main { frob(pkt); send(pkt); }", "call");
    ]
  in
  List.iter
    (fun (src, label) ->
      match Explore.block ~env:sym_env (parse_main src) with
      | exception Explore.Unsupported _ -> ()
      | _ -> Alcotest.failf "expected Unsupported for %s" label)
    cases

let test_step_budget_truncates () =
  let b = parse_main "main { i = 0; while (i < 1000000) { i = i + 1; } send(pkt); }" in
  let paths, stats =
    Explore.block
      ~config:{ Explore.default_config with Explore.max_steps = 100; Explore.loop_bound = 1000 }
      ~env:sym_env b
  in
  Alcotest.(check bool) "truncated recorded" true (stats.Explore.truncated_paths >= 1);
  Alcotest.(check bool) "truncated paths flagged" true
    (List.exists (fun (p : Explore.path) -> p.Explore.truncated) paths)

let test_nested_dict_forks_consistent () =
  (* The same membership atom appearing twice cannot fork into four
     paths: the second test is decided by the path condition. *)
  let b =
    parse_main
      {|main { k = pkt.ip_src;
              a = 0; b = 0;
              if (k in tbl) { a = 1; }
              if (k in tbl) { b = 1; }
              send(pkt); }|}
  in
  let env = Explore.Smap.add "tbl" (Explore.Dictv (Sexpr.dict_base "tbl")) sym_env in
  let paths, _ = Explore.block ~env b in
  Alcotest.(check int) "two consistent paths" 2 (List.length paths);
  List.iter
    (fun (p : Explore.path) ->
      let a = Explore.Smap.find "a" p.Explore.env and b = Explore.Smap.find "b" p.Explore.env in
      match (a, b) with
      | Explore.Scalar ea, Explore.Scalar eb ->
          Alcotest.(check bool) "a = b on every path" true (Sexpr.equal ea eb)
      | _ -> Alcotest.fail "scalars expected")
    paths

(* --------------------------------------------------------------- *)
(* Interpreter loop semantics                                       *)
(* --------------------------------------------------------------- *)

let test_while_loop_iterates () =
  let p =
    Nfl.Parser.program
      "acc = 0; main { i = 0; while (i < 5) { acc = acc + i; i = i + 1; } pkt = recv(); send(pkt); }"
  in
  let r = Interp.run p ~inputs:[] in
  Alcotest.(check bool) "acc = 0+1+2+3+4" true
    (Value.equal (Interp.Smap.find "acc" r.Interp.state) (Value.Int 10))

let test_for_in_over_tuple_and_list () =
  let p =
    Nfl.Parser.program
      "acc = 0; main { for x in [10, 20] { acc = acc + x; } for y in (1, 2) { acc = acc + y; } pkt = recv(); }"
  in
  let r = Interp.run p ~inputs:[] in
  Alcotest.(check bool) "sum" true (Value.equal (Interp.Smap.find "acc" r.Interp.state) (Value.Int 33))

let test_interp_del_semantics () =
  let p =
    Nfl.Parser.program
      {|d = {};
        main { d[1] = 10; del d[1]; hit = 1 in d; pkt = recv(); }|}
  in
  let r = Interp.run p ~inputs:[] in
  Alcotest.(check bool) "deleted" true
    (Value.equal (Interp.Smap.find "hit" r.Interp.state) (Value.Bool false))

(* --------------------------------------------------------------- *)
(* Transform diagnostics                                            *)
(* --------------------------------------------------------------- *)

let test_accept_fork_diagnostics () =
  let cases =
    [
      ("main { while (true) { c = accept(ls); child = fork(); } }", "no listen()");
      ("main { ls = listen(80); c = accept(ls); }", "no outer loop");
      ("main { ls = listen(80); while (true) { x = 1; } }", "no accept()");
    ]
  in
  List.iter
    (fun (src, fragment) ->
      match Nfl.Transform.match_accept_fork (Nfl.Parser.program src) with
      | exception Nfl.Transform.Not_applicable msg ->
          Alcotest.(check bool)
            (Printf.sprintf "mentions %S" fragment)
            true
            (Value.str_contains ~sub:fragment msg)
      | _ -> Alcotest.failf "pattern should not match: %s" src)
    cases

let test_fsm_reachability_portknock () =
  let fsm = Fsm.of_extraction (extract_nf "portknock") in
  let reach = Fsm.reachable_states fsm in
  Alcotest.(check bool) "multiple stages reachable" true (List.length reach >= 2)

let suite =
  [
    Alcotest.test_case "network run/reset" `Quick test_network_run_and_reset;
    Alcotest.test_case "network two-hop" `Quick test_network_two_hop_rewrite;
    Alcotest.test_case "explore: unsupported constructs" `Quick test_unsupported_constructs_raise;
    Alcotest.test_case "explore: step budget truncates" `Quick test_step_budget_truncates;
    Alcotest.test_case "explore: repeated atoms consistent" `Quick test_nested_dict_forks_consistent;
    Alcotest.test_case "interp: while iterates" `Quick test_while_loop_iterates;
    Alcotest.test_case "interp: for-in over containers" `Quick test_for_in_over_tuple_and_list;
    Alcotest.test_case "interp: del semantics" `Quick test_interp_del_semantics;
    Alcotest.test_case "transform diagnostics" `Quick test_accept_fork_diagnostics;
    Alcotest.test_case "fsm reachability (portknock)" `Quick test_fsm_reachability_portknock;
  ]
