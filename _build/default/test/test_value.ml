open Symexec

let v = Alcotest.testable Value.pp Value.equal

let test_binop_arith () =
  let check name op a b expected =
    Alcotest.check v name expected (Value.binop op (Value.Int a) (Value.Int b))
  in
  check "add" Nfl.Ast.Add 2 3 (Value.Int 5);
  check "sub" Nfl.Ast.Sub 2 3 (Value.Int (-1));
  check "mul" Nfl.Ast.Mul 4 3 (Value.Int 12);
  check "div" Nfl.Ast.Div 7 2 (Value.Int 3);
  check "mod" Nfl.Ast.Mod 7 3 (Value.Int 1);
  check "band" Nfl.Ast.Band 6 3 (Value.Int 2);
  check "bor" Nfl.Ast.Bor 6 3 (Value.Int 7);
  check "shl" Nfl.Ast.Shl 1 4 (Value.Int 16);
  check "shr" Nfl.Ast.Shr 16 4 (Value.Int 1)

let test_binop_cmp () =
  Alcotest.check v "lt" (Value.Bool true) (Value.binop Nfl.Ast.Lt (Value.Int 1) (Value.Int 2));
  Alcotest.check v "ge" (Value.Bool false) (Value.binop Nfl.Ast.Ge (Value.Int 1) (Value.Int 2));
  Alcotest.check v "str lt" (Value.Bool true) (Value.binop Nfl.Ast.Lt (Value.Str "a") (Value.Str "b"));
  Alcotest.check v "tuple eq" (Value.Bool true)
    (Value.binop Nfl.Ast.Eq
       (Value.Tuple [ Value.Int 1; Value.Str "x" ])
       (Value.Tuple [ Value.Int 1; Value.Str "x" ]))

let test_div_by_zero () =
  Alcotest.check_raises "div" (Value.Type_error "division by zero") (fun () ->
      ignore (Value.binop Nfl.Ast.Div (Value.Int 1) (Value.Int 0)));
  Alcotest.check_raises "mod" (Value.Type_error "modulo by zero") (fun () ->
      ignore (Value.binop Nfl.Ast.Mod (Value.Int 1) (Value.Int 0)))

let test_str_concat () =
  Alcotest.check v "concat" (Value.Str "ab") (Value.binop Nfl.Ast.Add (Value.Str "a") (Value.Str "b"))

let test_dict_ops () =
  let d = Value.dict_set [] (Value.Int 1) (Value.Str "a") in
  let d = Value.dict_set d (Value.Int 2) (Value.Str "b") in
  Alcotest.(check bool) "mem 1" true (Value.dict_mem d (Value.Int 1));
  Alcotest.(check bool) "mem 3" false (Value.dict_mem d (Value.Int 3));
  Alcotest.check v "get" (Value.Str "b") (Option.get (Value.dict_get d (Value.Int 2)));
  let d = Value.dict_set d (Value.Int 1) (Value.Str "c") in
  Alcotest.check v "overwrite" (Value.Str "c") (Option.get (Value.dict_get d (Value.Int 1)));
  Alcotest.(check int) "size stable on overwrite" 2 (List.length d);
  let d = Value.dict_remove d (Value.Int 1) in
  Alcotest.(check bool) "removed" false (Value.dict_mem d (Value.Int 1))

let test_dict_canonical_equality () =
  (* Same content inserted in different order compares equal. *)
  let d1 = Value.dict_set (Value.dict_set [] (Value.Int 1) (Value.Int 10)) (Value.Int 2) (Value.Int 20) in
  let d2 = Value.dict_set (Value.dict_set [] (Value.Int 2) (Value.Int 20)) (Value.Int 1) (Value.Int 10) in
  Alcotest.check v "order independent" (Value.Dict d1) (Value.Dict d2)

let test_index () =
  Alcotest.check v "list" (Value.Int 20)
    (Value.index (Value.List [ Value.Int 10; Value.Int 20 ]) (Value.Int 1));
  Alcotest.check v "tuple" (Value.Int 10)
    (Value.index (Value.Tuple [ Value.Int 10; Value.Int 20 ]) (Value.Int 0));
  Alcotest.check_raises "oob" (Value.Type_error "index out of range: 5") (fun () ->
      ignore (Value.index (Value.List [ Value.Int 1 ]) (Value.Int 5)))

let test_mem () =
  Alcotest.check v "list mem" (Value.Bool true)
    (Value.mem (Value.Int 2) (Value.List [ Value.Int 1; Value.Int 2 ]));
  Alcotest.check v "dict mem" (Value.Bool false) (Value.mem (Value.Int 9) Value.dict_empty)

let test_pure_builtins () =
  Alcotest.check v "len list" (Value.Int 3)
    (Value.apply_pure "len" [ Value.List [ Value.Int 1; Value.Int 2; Value.Int 3 ] ]);
  Alcotest.check v "len str" (Value.Int 5) (Value.apply_pure "len" [ Value.Str "hello" ]);
  Alcotest.check v "min" (Value.Int 1) (Value.apply_pure "min" [ Value.Int 4; Value.Int 1 ]);
  Alcotest.check v "max" (Value.Int 4) (Value.apply_pure "max" [ Value.Int 4; Value.Int 1 ]);
  Alcotest.check v "abs" (Value.Int 4) (Value.apply_pure "abs" [ Value.Int (-4) ]);
  Alcotest.check v "tuple_get" (Value.Int 7)
    (Value.apply_pure "tuple_get" [ Value.Tuple [ Value.Int 7 ]; Value.Int 0 ]);
  Alcotest.check v "str_contains" (Value.Bool true)
    (Value.apply_pure "str_contains" [ Value.Str "GET / HTTP"; Value.Str "GET" ]);
  Alcotest.check v "str_prefix" (Value.Bool false)
    (Value.apply_pure "str_prefix" [ Value.Str "abc"; Value.Str "bc" ])

let test_hash_deterministic () =
  let h1 = Value.hash_value (Value.Tuple [ Value.Int 1; Value.Str "x" ]) in
  let h2 = Value.hash_value (Value.Tuple [ Value.Int 1; Value.Str "x" ]) in
  Alcotest.(check int) "same value same hash" h1 h2;
  Alcotest.(check bool) "non-negative" true (h1 >= 0)

let qcheck_hash_spread =
  QCheck.Test.make ~name:"value: hash differs on different ints (mostly)" ~count:200
    QCheck.(pair small_int small_int)
    (fun (a, b) -> a = b || Value.hash_value (Value.Int a) <> Value.hash_value (Value.Int b))

let qcheck_dict_set_get =
  QCheck.Test.make ~name:"value: dict set/get roundtrip" ~count:300
    QCheck.(pair small_int small_int)
    (fun (k, x) ->
      let d = Value.dict_set [] (Value.Int k) (Value.Int x) in
      Value.dict_get d (Value.Int k) = Some (Value.Int x))

let suite =
  [
    Alcotest.test_case "arith binops" `Quick test_binop_arith;
    Alcotest.test_case "comparisons" `Quick test_binop_cmp;
    Alcotest.test_case "div/mod by zero" `Quick test_div_by_zero;
    Alcotest.test_case "string concat" `Quick test_str_concat;
    Alcotest.test_case "dict ops" `Quick test_dict_ops;
    Alcotest.test_case "dict canonical equality" `Quick test_dict_canonical_equality;
    Alcotest.test_case "indexing" `Quick test_index;
    Alcotest.test_case "membership" `Quick test_mem;
    Alcotest.test_case "pure builtins" `Quick test_pure_builtins;
    Alcotest.test_case "hash deterministic" `Quick test_hash_deterministic;
    QCheck_alcotest.to_alcotest qcheck_hash_spread;
    QCheck_alcotest.to_alcotest qcheck_dict_set_get;
  ]
