open Packet
open Tcp_fsm

let st = Alcotest.testable Tcp_fsm.pp Tcp_fsm.equal

let test_passive_open () =
  (* Server-side: LISTEN -> SYN_RCVD -> ESTABLISHED on SYN, ACK. *)
  let s = step Listen (ev From_peer Headers.syn) in
  Alcotest.check st "SYN" Syn_rcvd s;
  let s = step s (ev From_peer Headers.ack) in
  Alcotest.check st "ACK completes" Established s

let test_active_open () =
  let s = step Closed (ev To_peer Headers.syn) in
  Alcotest.check st "SYN sent" Syn_sent s;
  let s = step s (ev From_peer (Headers.syn lor Headers.ack)) in
  Alcotest.check st "SYN/ACK establishes" Established s

let test_simultaneous_open () =
  let s = step Syn_sent (ev From_peer Headers.syn) in
  Alcotest.check st "crossing SYNs" Syn_rcvd s

let test_rst_resets_everything () =
  List.iter
    (fun s0 ->
      Alcotest.check st (state_to_string s0 ^ " + RST") Closed (step s0 (ev From_peer Headers.rst)))
    all_states

let test_active_close () =
  let s = step Established (ev To_peer (Headers.fin lor Headers.ack)) in
  Alcotest.check st "our FIN" Fin_wait_1 s;
  let s = step s (ev From_peer Headers.ack) in
  Alcotest.check st "peer ACK" Fin_wait_2 s;
  let s = step s (ev From_peer (Headers.fin lor Headers.ack)) in
  Alcotest.check st "peer FIN" Time_wait s

let test_passive_close () =
  let s = step Established (ev From_peer (Headers.fin lor Headers.ack)) in
  Alcotest.check st "peer FIN" Close_wait s;
  let s = step s (ev To_peer (Headers.fin lor Headers.ack)) in
  Alcotest.check st "our FIN" Last_ack s;
  let s = step s (ev From_peer Headers.ack) in
  Alcotest.check st "final ACK" Closed s

let test_data_before_handshake_invalid () =
  Alcotest.(check bool) "LISTEN" false (valid_data Listen);
  Alcotest.(check bool) "SYN_RCVD" false (valid_data Syn_rcvd);
  Alcotest.(check bool) "ESTABLISHED" true (valid_data Established);
  Alcotest.(check bool) "CLOSE_WAIT" true (valid_data Close_wait);
  Alcotest.(check bool) "TIME_WAIT" false (valid_data Time_wait)

let test_invalid_events_keep_state () =
  (* A bare ACK out of nowhere in LISTEN is ignored, not a transition. *)
  Alcotest.check st "ACK in LISTEN" Listen (step Listen (ev From_peer Headers.ack));
  Alcotest.check st "FIN in LISTEN" Listen (step Listen (ev From_peer Headers.fin))

let test_int_encoding_roundtrip () =
  List.iter
    (fun s -> Alcotest.check st (state_to_string s) s (of_int (to_int s)))
    all_states

let test_int_encoding_distinct () =
  let codes = List.map to_int all_states in
  Alcotest.(check int) "all distinct" (List.length codes) (List.length (List.sort_uniq compare codes))

let qcheck_step_total =
  (* step never raises, whatever the flag combination. *)
  QCheck.Test.make ~name:"tcp_fsm: step is total" ~count:1000
    QCheck.(pair (int_bound 10) (pair bool (int_bound 63)))
    (fun (si, (dir, flags)) ->
      let s = of_int si in
      let d = if dir then From_peer else To_peer in
      ignore (step s (ev d flags));
      true)

let suite =
  [
    Alcotest.test_case "passive open" `Quick test_passive_open;
    Alcotest.test_case "active open" `Quick test_active_open;
    Alcotest.test_case "simultaneous open" `Quick test_simultaneous_open;
    Alcotest.test_case "RST resets" `Quick test_rst_resets_everything;
    Alcotest.test_case "active close" `Quick test_active_close;
    Alcotest.test_case "passive close" `Quick test_passive_close;
    Alcotest.test_case "hidden-state data validity" `Quick test_data_before_handshake_invalid;
    Alcotest.test_case "invalid events ignored" `Quick test_invalid_events_keep_state;
    Alcotest.test_case "int encoding roundtrip" `Quick test_int_encoding_roundtrip;
    Alcotest.test_case "int encoding distinct" `Quick test_int_encoding_distinct;
    QCheck_alcotest.to_alcotest qcheck_step_total;
  ]
