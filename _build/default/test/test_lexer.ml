open Nfl

let toks src = List.map fst (Lexer.tokens src)

let tok = Alcotest.testable (fun ppf t -> Fmt.string ppf (Lexer.token_to_string t)) ( = )

let test_simple () =
  Alcotest.(check (list tok))
    "assignment"
    [ Lexer.ID "x"; Lexer.ASSIGN; Lexer.INT 1; Lexer.SEMI; Lexer.EOF ]
    (toks "x = 1;")

let test_keywords_vs_idents () =
  Alcotest.(check (list tok))
    "if/else are keywords, iff is an ident"
    [ Lexer.KW_if; Lexer.KW_else; Lexer.ID "iff"; Lexer.ID "elsex"; Lexer.EOF ]
    (toks "if else iff elsex")

let test_ip_literal () =
  Alcotest.(check (list tok))
    "dotted quad lexes to int"
    [ Lexer.INT (Packet.Addr.of_string "3.3.3.3"); Lexer.EOF ]
    (toks "3.3.3.3");
  Alcotest.(check (list tok))
    "ip in expression"
    [ Lexer.ID "a"; Lexer.EQ; Lexer.INT (Packet.Addr.of_string "10.0.0.1"); Lexer.EOF ]
    (toks "a == 10.0.0.1")

let test_hex_literal () =
  Alcotest.(check (list tok)) "hex" [ Lexer.INT 0x1F; Lexer.EOF ] (toks "0x1F");
  Alcotest.(check (list tok)) "hex lower" [ Lexer.INT 255; Lexer.EOF ] (toks "0xff")

let test_operators () =
  Alcotest.(check (list tok))
    "two-char operators"
    [
      Lexer.EQ; Lexer.NE; Lexer.LE; Lexer.GE; Lexer.SHL; Lexer.SHR; Lexer.AMPAMP;
      Lexer.PIPEPIPE; Lexer.PLUS_EQ; Lexer.MINUS_EQ; Lexer.EOF;
    ]
    (toks "== != <= >= << >> && || += -=");
  Alcotest.(check (list tok))
    "one-char operators"
    [ Lexer.LT; Lexer.GT; Lexer.AMP; Lexer.PIPE; Lexer.BANG; Lexer.ASSIGN; Lexer.EOF ]
    (toks "< > & | ! =")

let test_string_literal () =
  Alcotest.(check (list tok)) "plain" [ Lexer.STR "abc"; Lexer.EOF ] (toks {|"abc"|});
  Alcotest.(check (list tok))
    "escapes" [ Lexer.STR "a\nb\"c"; Lexer.EOF ]
    (toks {|"a\nb\"c"|})

let test_comments () =
  Alcotest.(check (list tok))
    "comment to eol"
    [ Lexer.ID "x"; Lexer.SEMI; Lexer.ID "y"; Lexer.EOF ]
    (toks "x; # comment with stuff == != \"\ny")

let test_positions () =
  let all = Lexer.tokens "x;\n  y;" in
  match all with
  | [ (_, p1); _; (_, p2); _; (Lexer.EOF, _) ] ->
      Alcotest.(check int) "x line" 1 p1.Ast.line;
      Alcotest.(check int) "y line" 2 p2.Ast.line;
      Alcotest.(check int) "y col" 3 p2.Ast.col
  | _ -> Alcotest.fail "unexpected token stream"

let test_errors () =
  let fails s =
    match Lexer.tokens s with
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.failf "expected lexer error on %S" s
  in
  fails "\"unterminated";
  fails "@";
  fails "1.2.3";
  fails "300.1.1.1";
  fails "0x"

let test_figure1_fragment () =
  (* A line straight out of the paper's Figure-1 style. *)
  let ts = toks "f2b_nat[cs_ftpl] = cs_btpl; rr_idx = (rr_idx + 1) % len(servers);" in
  Alcotest.(check int) "token count" 21 (List.length ts)

let suite =
  [
    Alcotest.test_case "simple" `Quick test_simple;
    Alcotest.test_case "keywords vs idents" `Quick test_keywords_vs_idents;
    Alcotest.test_case "ip literals" `Quick test_ip_literal;
    Alcotest.test_case "hex literals" `Quick test_hex_literal;
    Alcotest.test_case "operators" `Quick test_operators;
    Alcotest.test_case "string literals" `Quick test_string_literal;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "positions" `Quick test_positions;
    Alcotest.test_case "lex errors" `Quick test_errors;
    Alcotest.test_case "figure-1 fragment" `Quick test_figure1_fragment;
  ]
