open Packet

let pkt ?(flags = 0) ?(payload = "") () =
  Pkt.make ~ip_src:(Addr.of_string "10.0.0.1") ~ip_dst:(Addr.of_string "3.3.3.3") ~sport:1234
    ~dport:80 ~tcp_flags:flags ~payload ()

let test_line_roundtrip () =
  let p = pkt ~flags:(Headers.syn lor Headers.ack) ~payload:"GET / HTTP\n\"quoted\"" () in
  let p' = Codec.of_line (Codec.to_line p) in
  Alcotest.(check bool) "roundtrip" true (Pkt.equal p p')

let test_trace_roundtrip () =
  let pkts = Traffic.random_stream ~seed:99 ~n:100 () in
  let pkts' = Codec.of_string (Codec.to_string pkts) in
  Alcotest.(check int) "count" (List.length pkts) (List.length pkts');
  Alcotest.(check bool) "all equal" true (List.for_all2 Pkt.equal pkts pkts')

let test_comments_and_blanks_skipped () =
  let text = "# header\n\n" ^ Codec.to_line (pkt ()) ^ "\n\n# trailing\n" in
  Alcotest.(check int) "one packet" 1 (List.length (Codec.of_string text))

let test_flag_names () =
  let p = Codec.of_line "tcp 1.1.1.1 1 2.2.2.2 2 SYN|ACK 64 60 0 0 \"\"" in
  Alcotest.(check int) "flags" (Headers.syn lor Headers.ack) p.Pkt.tcp_flags;
  let p2 = Codec.of_line "udp 1.1.1.1 1 2.2.2.2 2 - 64 60 0 0 \"\"" in
  Alcotest.(check int) "no flags" 0 p2.Pkt.tcp_flags;
  Alcotest.(check int) "udp proto" Headers.proto_udp p2.Pkt.ip_proto

let test_numeric_proto () =
  let p = Codec.of_line "47 1.1.1.1 1 2.2.2.2 2 - 64 60 0 0 \"\"" in
  Alcotest.(check int) "gre" 47 p.Pkt.ip_proto

let test_malformed () =
  List.iter
    (fun line ->
      match Codec.of_line line with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted %S" line)
    [ ""; "tcp 1.1.1.1"; "tcp 1.1.1.1 1 2.2.2.2 2 - 64 60 0 0"; "xyz 1.1.1.1 1 2.2.2.2 2 - 64 60 0 0 \"\"" ]

let test_file_io () =
  let file = Filename.temp_file "nfactor" ".trace" in
  let pkts = Traffic.flow_stream ~seed:5 ~flows:3 ~data_pkts:1 () in
  Codec.save ~file pkts;
  let pkts' = Codec.load ~file in
  Sys.remove file;
  Alcotest.(check bool) "file roundtrip" true
    (List.length pkts = List.length pkts' && List.for_all2 Pkt.equal pkts pkts')

let qcheck_roundtrip =
  QCheck.Test.make ~name:"codec: line roundtrip on random packets" ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let p = List.hd (Traffic.random_stream ~seed ~n:1 ()) in
      Pkt.equal p (Codec.of_line (Codec.to_line p)))

let suite =
  [
    Alcotest.test_case "line roundtrip" `Quick test_line_roundtrip;
    Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip;
    Alcotest.test_case "comments skipped" `Quick test_comments_and_blanks_skipped;
    Alcotest.test_case "flag names" `Quick test_flag_names;
    Alcotest.test_case "numeric proto" `Quick test_numeric_proto;
    Alcotest.test_case "malformed rejected" `Quick test_malformed;
    Alcotest.test_case "file io" `Quick test_file_io;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
  ]
