open Nfl

let parse = Parser.program

let lb_mini =
  {|
# miniature Figure-1 load balancer
mode = 1;
lb_port = 80;
servers = [(1.1.1.1, 80), (2.2.2.2, 80)];
f2b_nat = {};
rr_idx = 0;
pass_stat = 0;

def pkt_callback(pkt) {
  dp = pkt.dport;
  if (dp == lb_port) {
    cs = (pkt.ip_src, pkt.sport, pkt.ip_dst, dp);
    if (not (cs in f2b_nat)) {
      server = servers[rr_idx];
      rr_idx = (rr_idx + 1) % len(servers);
      f2b_nat[cs] = server;
    }
    nat = f2b_nat[cs];
    pkt.ip_dst = nat[0];
    pkt.dport = nat[1];
    pass_stat += 1;
    send(pkt);
  } else {
    return;
  }
}

main {
  sniff(pkt_callback);
}
|}

let test_lb_mini_shape () =
  let p = parse lb_mini in
  Alcotest.(check int) "globals" 6 (List.length p.Ast.globals);
  Alcotest.(check int) "funcs" 1 (List.length p.Ast.funcs);
  Alcotest.(check int) "main stmts" 1 (List.length p.Ast.main);
  let f = List.hd p.Ast.funcs in
  Alcotest.(check string) "func name" "pkt_callback" f.Ast.fname;
  Alcotest.(check (list string)) "params" [ "pkt" ] f.Ast.params

let test_sids_unique () =
  let p = parse lb_mini in
  let sids = List.map (fun s -> s.Ast.sid) (Ast.all_stmts p) in
  Alcotest.(check int) "unique sids" (List.length sids) (List.length (List.sort_uniq compare sids))

let test_precedence () =
  let expr_of src =
    let p = parse ("main { x = " ^ src ^ "; }") in
    match (List.hd p.Ast.main).Ast.kind with
    | Ast.Assign (_, e) -> e
    | _ -> Alcotest.fail "expected assignment"
  in
  (match expr_of "1 + 2 * 3" with
  | Ast.Binop (Ast.Add, Ast.Int 1, Ast.Binop (Ast.Mul, Ast.Int 2, Ast.Int 3)) -> ()
  | e -> Alcotest.failf "mul binds tighter: %s" (Pretty.expr e));
  (match expr_of "a == 1 && b == 2" with
  | Ast.Binop (Ast.And, Ast.Binop (Ast.Eq, _, _), Ast.Binop (Ast.Eq, _, _)) -> ()
  | e -> Alcotest.failf "cmp binds tighter than and: %s" (Pretty.expr e));
  (match expr_of "a || b && c" with
  | Ast.Binop (Ast.Or, Ast.Var "a", Ast.Binop (Ast.And, _, _)) -> ()
  | e -> Alcotest.failf "and binds tighter than or: %s" (Pretty.expr e));
  (match expr_of "x & 2 != 0" with
  | Ast.Binop (Ast.Ne, Ast.Binop (Ast.Band, _, _), Ast.Int 0) -> ()
  | e -> Alcotest.failf "cmp binds looser than band: %s" (Pretty.expr e));
  match expr_of "(x + 1) % 4" with
  | Ast.Binop (Ast.Mod, Ast.Binop (Ast.Add, _, _), Ast.Int 4) -> ()
  | e -> Alcotest.failf "parens: %s" (Pretty.expr e)

let test_membership () =
  let p = parse "d = {}; main { if (k in d) { pass; } if (k not in d) { pass; } }" in
  match List.map (fun s -> s.Ast.kind) p.Ast.main with
  | [ Ast.If (Ast.Mem (Ast.Var "k", Ast.Var "d"), _, _);
      Ast.If (Ast.Unop (Ast.Not, Ast.Mem (Ast.Var "k", Ast.Var "d")), _, _) ] ->
      ()
  | _ -> Alcotest.fail "membership parse"

let test_multi_assign_desugars () =
  let p = parse "main { a, b = 1, 2; }" in
  match List.map (fun s -> s.Ast.kind) p.Ast.main with
  | [ Ast.Assign (Ast.L_var "a", Ast.Int 1); Ast.Assign (Ast.L_var "b", Ast.Int 2) ] -> ()
  | _ -> Alcotest.fail "multi-assign should desugar to two assignments"

let test_augmented_assign () =
  let p = parse "main { x += 2; d[k] -= 1; }" in
  match List.map (fun s -> s.Ast.kind) p.Ast.main with
  | [ Ast.Assign (Ast.L_var "x", Ast.Binop (Ast.Add, Ast.Var "x", Ast.Int 2));
      Ast.Assign (Ast.L_index ("d", Ast.Var "k"),
                  Ast.Binop (Ast.Sub, Ast.Index (Ast.Var "d", Ast.Var "k"), Ast.Int 1)) ] ->
      ()
  | _ -> Alcotest.fail "augmented assignment desugar"

let test_lvalues () =
  let p = parse "main { x = 1; d[(a, b)] = 2; pkt.ip_src = 3; }" in
  match List.map (fun s -> s.Ast.kind) p.Ast.main with
  | [ Ast.Assign (Ast.L_var "x", _);
      Ast.Assign (Ast.L_index ("d", Ast.Tuple [ Ast.Var "a"; Ast.Var "b" ]), _);
      Ast.Assign (Ast.L_field ("pkt", "ip_src"), _) ] ->
      ()
  | _ -> Alcotest.fail "lvalue forms"

let test_else_if_chain () =
  let p = parse "main { if (a) { pass; } else if (b) { pass; } else { x = 1; } }" in
  match (List.hd p.Ast.main).Ast.kind with
  | Ast.If (_, _, [ { Ast.kind = Ast.If (_, _, [ _ ]); _ } ]) -> ()
  | _ -> Alcotest.fail "else-if nesting"

let test_tuple_vs_group () =
  let p = parse "main { x = (1); y = (1, 2); z = (1,); }" in
  match List.map (fun s -> s.Ast.kind) p.Ast.main with
  | [ Ast.Assign (_, Ast.Int 1);
      Ast.Assign (_, Ast.Tuple [ Ast.Int 1; Ast.Int 2 ]);
      Ast.Assign (_, Ast.Tuple [ Ast.Int 1 ]) ] ->
      ()
  | _ -> Alcotest.fail "tuple vs grouping"

let test_while_for () =
  let p = parse "main { while (x < 3) { x += 1; } for s in servers { send(s); } }" in
  match List.map (fun s -> s.Ast.kind) p.Ast.main with
  | [ Ast.While (Ast.Binop (Ast.Lt, _, _), [ _ ]); Ast.For_in ("s", Ast.Var "servers", [ _ ]) ] ->
      ()
  | _ -> Alcotest.fail "loop forms"

let test_del_and_return () =
  let p = parse "def f(x) { if (x) { return 1; } del d[x]; return; } d = {}; main { f(1); }" in
  let f = List.hd p.Ast.funcs in
  (match List.map (fun s -> s.Ast.kind) f.Ast.body with
  | [ Ast.If (_, [ { Ast.kind = Ast.Return (Some (Ast.Int 1)); _ } ], []);
      Ast.Delete ("d", Ast.Var "x"); Ast.Return None ] ->
      ()
  | _ -> Alcotest.fail "del/return forms")

let test_parse_errors () =
  let fails s =
    match parse s with
    | exception Parser.Error _ -> ()
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.failf "expected parse error on %S" s
  in
  fails "main { x = ; }";
  fails "main { 1 + 2 = x; }";
  fails "main { if x { } }";
  fails "x = 1;";
  (* no main *)
  fails "main { a, b = 1; }";
  (* arity mismatch *)
  fails "def f() { } def f() { }  main { while (true) { recv(); } } extra";
  fails "main { d = { 1: 2 }; }" (* only empty dict literals *)

let test_roundtrip_through_pretty () =
  let p1 = parse lb_mini in
  let src2 = Pretty.program p1 in
  let p2 = parse src2 in
  (* Same statement count and same pretty form once re-printed. *)
  Alcotest.(check int) "stmt count" (Ast.stmt_count p1) (Ast.stmt_count p2);
  Alcotest.(check string) "fixpoint" src2 (Pretty.program p2)

let qcheck_int_expr_roundtrip =
  (* Random arithmetic expressions survive print -> parse -> print. *)
  let rec gen_expr depth rng =
    if depth = 0 then
      match Packet.Rng.int rng 3 with
      | 0 -> Ast.Int (Packet.Rng.int rng 100)
      | 1 -> Ast.Var (Packet.Rng.pick rng [ "a"; "b"; "c" ])
      | _ -> Ast.Bool (Packet.Rng.bool rng)
    else
      let op =
        Packet.Rng.pick rng
          [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Mod; Ast.Eq; Ast.Lt; Ast.And; Ast.Or; Ast.Band; Ast.Shl ]
      in
      Ast.Binop (op, gen_expr (depth - 1) rng, gen_expr (depth - 1) rng)
  in
  QCheck.Test.make ~name:"parser: expr print/parse roundtrip" ~count:200 QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Packet.Rng.create seed in
      let e = gen_expr 4 rng in
      let src = "main { x = " ^ Pretty.expr e ^ "; }" in
      let p = parse src in
      match (List.hd p.Ast.main).Ast.kind with
      | Ast.Assign (_, e') -> Ast.expr_equal e e'
      | _ -> false)

let suite =
  [
    Alcotest.test_case "figure-1 mini LB shape" `Quick test_lb_mini_shape;
    Alcotest.test_case "statement ids unique" `Quick test_sids_unique;
    Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "membership" `Quick test_membership;
    Alcotest.test_case "multi-assign desugar" `Quick test_multi_assign_desugars;
    Alcotest.test_case "augmented assign desugar" `Quick test_augmented_assign;
    Alcotest.test_case "lvalue forms" `Quick test_lvalues;
    Alcotest.test_case "else-if chain" `Quick test_else_if_chain;
    Alcotest.test_case "tuple vs grouping" `Quick test_tuple_vs_group;
    Alcotest.test_case "while/for" `Quick test_while_for;
    Alcotest.test_case "del/return" `Quick test_del_and_return;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "pretty roundtrip" `Quick test_roundtrip_through_pretty;
    QCheck_alcotest.to_alcotest qcheck_int_expr_roundtrip;
  ]
