examples/symbolic_reachability.mli:
