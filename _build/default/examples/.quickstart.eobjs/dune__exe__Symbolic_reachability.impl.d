examples/symbolic_reachability.ml: Extract Fmt List Model_interp Nfactor Nfl Nfs Option Packet Sexpr Solver Symexec Symreach Value Verify
