examples/chain_composition.mli:
