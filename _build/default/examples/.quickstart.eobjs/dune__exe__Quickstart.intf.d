examples/quickstart.mli:
