examples/test_generation.mli:
