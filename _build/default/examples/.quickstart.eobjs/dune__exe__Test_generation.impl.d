examples/test_generation.ml: Equiv Extract Fmt List Model Nfactor Nfs Option Packet Printf Testgen Verify
