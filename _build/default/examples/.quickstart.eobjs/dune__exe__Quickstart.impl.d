examples/quickstart.ml: Equiv Extract Fmt List Model Nfactor Nfl Nfs Statealyzer Symexec
