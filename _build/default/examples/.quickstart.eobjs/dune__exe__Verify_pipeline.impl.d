examples/verify_pipeline.ml: Extract Fmt List Model Network Nfactor Nfs Option Packet Verify
