examples/chain_composition.ml: Chain Extract Fmt List Model Network Nfactor Nfs Option Packet Verify
