(** Synthetic workload generation.

    Stands in for the paper's live traffic: the accuracy experiment
    (Section 5) feeds 1000 random packets to both the original program
    and the extracted model; the corpus NFs additionally need realistic
    *flow-structured* traffic (handshakes followed by data) to exercise
    their stateful paths. All generators are deterministic given the
    seed. *)

type profile = {
  client_ips : Addr.ip list;  (** source pool for inbound packets *)
  server_ips : Addr.ip list;  (** destination pool / virtual IPs *)
  server_ports : Addr.port list;
  payloads : string list;  (** payload pool (some may match IDS rules) *)
}

let default_profile =
  {
    client_ips = List.init 8 (fun i -> Addr.ip 10 0 0 (i + 1));
    server_ips = [ Addr.ip 3 3 3 3 ];
    server_ports = [ 80; 443; 8080 ];
    payloads = [ ""; "GET / HTTP/1.0"; "USER root"; "hello"; "\x90\x90\x90"; "SELECT * FROM" ];
  }

(** Fully random packet: uniform fields from the profile pools, random
    flags and ports. This is the "random inputs" generator used by the
    accuracy experiment. *)
let random_pkt rng profile =
  let flags =
    Rng.pick rng
      [ Headers.syn; Headers.syn lor Headers.ack; Headers.ack; Headers.ack lor Headers.psh; Headers.fin lor Headers.ack; Headers.rst; 0 ]
  in
  let inbound = Rng.bool rng in
  let client = Rng.pick rng profile.client_ips in
  let server = Rng.pick rng profile.server_ips in
  let sport = 1024 + Rng.int rng 60000 in
  let dport = Rng.pick rng profile.server_ports in
  if inbound then
    Pkt.make ~ip_src:client ~ip_dst:server ~sport ~dport ~tcp_flags:flags
      ~payload:(Rng.pick rng profile.payloads) ()
  else
    Pkt.make ~ip_src:server ~ip_dst:client ~sport:dport ~dport:sport ~tcp_flags:flags
      ~payload:(Rng.pick rng profile.payloads) ()

(** [random_stream ~seed ~n profile] is [n] independent random packets. *)
let random_stream ?(profile = default_profile) ~seed ~n () =
  let rng = Rng.create seed in
  List.init n (fun _ -> random_pkt rng profile)

(** A conversation addressed by position, so a flow in flight needs
    only its endpoint tuple and a cursor — no materialized packet
    list. Script: SYN, SYN/ACK (reverse direction), ACK, [data_pkts]
    PSH/ACK data segments each answered by an ACK, then the FIN/ACK
    exchange. *)
let conv_len ~data_pkts = 6 + (2 * data_pkts)

let conv_pkt ~client ~cport ~server ~sport ~data_pkts ~payload k =
  let fwd flags pl =
    Pkt.make ~ip_src:client ~ip_dst:server ~sport:cport ~dport:sport ~tcp_flags:flags ~payload:pl ()
  in
  let rev flags pl =
    Pkt.make ~ip_src:server ~ip_dst:client ~sport ~dport:cport ~tcp_flags:flags ~payload:pl ()
  in
  let n = conv_len ~data_pkts in
  if k = 0 then fwd Headers.syn ""
  else if k = 1 then rev (Headers.syn lor Headers.ack) ""
  else if k = 2 then fwd Headers.ack ""
  else if k < n - 3 then
    if (k - 3) land 1 = 0 then fwd (Headers.ack lor Headers.psh) payload
    else rev Headers.ack ""
  else if k = n - 3 then fwd (Headers.fin lor Headers.ack) ""
  else if k = n - 2 then rev (Headers.fin lor Headers.ack) ""
  else fwd Headers.ack ""

(** One complete client->server conversation as a packet list — the
    positional script above, materialized. Useful for driving stateful
    NFs through their "existing connection" entries. *)
let conversation ~client ~cport ~server ~sport ~data_pkts ~payload =
  List.init (conv_len ~data_pkts)
    (conv_pkt ~client ~cport ~server ~sport ~data_pkts ~payload)

(** Interleaved flow-structured workload: [flows] conversations whose
    packets are emitted round-robin, mimicking concurrent clients. *)
let flow_stream ?(profile = default_profile) ~seed ~flows ~data_pkts () =
  let rng = Rng.create seed in
  let convs =
    List.init flows (fun _ ->
        conversation
          ~client:(Rng.pick rng profile.client_ips)
          ~cport:(1024 + Rng.int rng 60000)
          ~server:(Rng.pick rng profile.server_ips)
          ~sport:(Rng.pick rng profile.server_ports)
          ~data_pkts
          ~payload:(Rng.pick rng profile.payloads))
  in
  (* Round-robin interleave until all conversations are drained. *)
  let rec interleave acc convs =
    let heads, tails =
      List.fold_right
        (fun conv (hs, ts) ->
          match conv with [] -> (hs, ts) | p :: rest -> (p :: hs, rest :: ts))
        convs ([], [])
    in
    match heads with [] -> List.rev acc | _ -> interleave (List.rev_append heads acc) tails
  in
  interleave [] convs

(* ------------------------------------------------------------------ *)
(* Churn workload                                                      *)
(* ------------------------------------------------------------------ *)

(* A pool of [concurrent] conversations in flight. Each emitted packet
   advances a uniformly chosen flow one script position; a finished
   flow is replaced in place by a fresh client drawn from the whole
   10.0.0.0/8 space (inside the corpus NAT's inside network), so the
   live-flow count stays constant while the flow population turns
   over without bound. Per-flow storage is the endpoint tuple plus a
   cursor — a few machine words — so pools of millions of concurrent
   flows are cheap. Deterministic given the seed, and independent of
   how the consumer batches packets. *)
type churn = {
  ch_rng : Rng.t;
  ch_profile : profile;
  ch_data_pkts : int;
  cl_ip : int array;
  cl_port : int array;
  sv_ip : int array;
  sv_port : int array;
  pay : string array;
  pos : int array;
  mutable ch_started : int;
}

let spawn_flow c i =
  let rng = c.ch_rng in
  c.cl_ip.(i) <- Addr.ip 10 (Rng.int rng 256) (Rng.int rng 256) (1 + Rng.int rng 254);
  c.cl_port.(i) <- 1024 + Rng.int rng 60000;
  c.sv_ip.(i) <- Rng.pick rng c.ch_profile.server_ips;
  c.sv_port.(i) <- Rng.pick rng c.ch_profile.server_ports;
  c.pay.(i) <- Rng.pick rng c.ch_profile.payloads;
  c.pos.(i) <- 0;
  c.ch_started <- c.ch_started + 1

let churn_gen ?(profile = default_profile) ?(data_pkts = 4) ~concurrent ~seed () =
  if concurrent <= 0 then invalid_arg "Traffic.churn_gen: concurrent must be positive";
  let c =
    {
      ch_rng = Rng.create seed;
      ch_profile = profile;
      ch_data_pkts = data_pkts;
      cl_ip = Array.make concurrent 0;
      cl_port = Array.make concurrent 0;
      sv_ip = Array.make concurrent 0;
      sv_port = Array.make concurrent 0;
      pay = Array.make concurrent "";
      pos = Array.make concurrent 0;
      ch_started = 0;
    }
  in
  for i = 0 to concurrent - 1 do
    spawn_flow c i
  done;
  c

let churn_next c =
  let i = Rng.int c.ch_rng (Array.length c.pos) in
  let k = c.pos.(i) in
  let p =
    conv_pkt ~client:c.cl_ip.(i) ~cport:c.cl_port.(i) ~server:c.sv_ip.(i)
      ~sport:c.sv_port.(i) ~data_pkts:c.ch_data_pkts ~payload:c.pay.(i) k
  in
  if k + 1 >= conv_len ~data_pkts:c.ch_data_pkts then spawn_flow c i
  else c.pos.(i) <- k + 1;
  p

let churn_fill c arr =
  for j = 0 to Array.length arr - 1 do
    arr.(j) <- churn_next c
  done

let churn_started c = c.ch_started
let churn_concurrent c = Array.length c.pos
