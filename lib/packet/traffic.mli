(** Synthetic workload generation — the stand-in for the paper's live
    traffic. All generators are deterministic given their seed. *)

type profile = {
  client_ips : Addr.ip list;  (** source pool for inbound packets *)
  server_ips : Addr.ip list;  (** destination pool / virtual IPs *)
  server_ports : Addr.port list;
  payloads : string list;  (** payload pool (some match IDS rules) *)
}

val default_profile : profile

val random_pkt : Rng.t -> profile -> Pkt.t
(** One fully random packet (uniform fields from the profile pools,
    random direction and flags) — the Section-5 accuracy workload. *)

val random_stream : ?profile:profile -> seed:int -> n:int -> unit -> Pkt.t list
(** [n] independent random packets. *)

val conversation :
  client:Addr.ip ->
  cport:Addr.port ->
  server:Addr.ip ->
  sport:Addr.port ->
  data_pkts:int ->
  payload:string ->
  Pkt.t list
(** One complete TCP conversation: handshake, [data_pkts] data/ack
    exchanges, FIN teardown — drives stateful NF paths. *)

val flow_stream :
  ?profile:profile -> seed:int -> flows:int -> data_pkts:int -> unit -> Pkt.t list
(** [flows] conversations interleaved round-robin, mimicking
    concurrent clients. *)

(** {1 Churn workload}

    A constant-size pool of conversations in flight with unbounded
    flow turnover: each packet advances a uniformly chosen live flow
    one script position; finished flows are replaced in place by a
    fresh client drawn from the whole 10.0.0.0/8 space (the profile's
    [client_ips] pool is not used for churn clients). Per-flow storage
    is a few machine words, so millions of concurrent flows are cheap.
    Deterministic given the seed and independent of consumer
    batching. *)

type churn

val churn_gen :
  ?profile:profile -> ?data_pkts:int -> concurrent:int -> seed:int -> unit -> churn
(** Pool of [concurrent] flows, all started (and counted). *)

val churn_next : churn -> Pkt.t

val churn_fill : churn -> Pkt.t array -> unit
(** Fill [arr] in place with the next packets — batch generation
    without list allocation. *)

val churn_started : churn -> int
(** Flows spawned so far, including the initial pool. *)

val churn_concurrent : churn -> int
