(** Content-addressed pass fingerprints.

    A fingerprint is the hex digest of everything that can influence a
    pass's output: the canonical text of its primary input, the pass
    name and implementation version, its parameters, and the
    fingerprints of its upstream artifacts. Two pipeline runs compute
    the same fingerprint for a stage iff the stage is guaranteed to
    produce the same artifact, so fingerprints double as cache keys for
    both the in-memory memo and the on-disk artifact store. *)

type t = string
(** 32-character lowercase hex digest. *)

val of_text : string -> t
(** Digest of raw content (e.g. the pretty-printed canonical AST). *)

val combine :
  pass:string -> version:int -> ?params:(string * string) list -> t list -> t
(** Fingerprint of a pass application: pass identity, implementation
    [version] (bump to invalidate cached artifacts when a stage's
    semantics change), stage [params], and the upstream fingerprints in
    order. *)

val pp : Format.formatter -> t -> unit
(** Short (8-char) rendering for traces. *)

val short : t -> string
