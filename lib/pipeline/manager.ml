open Symexec

let passes =
  [ "canonicalize"; "classify"; "slice"; "explore"; "refine"; "compile"; "analyze" ]

(* Implementation version folded into every pass fingerprint: bump when
   any stage's semantics or artifact encoding changes, so persisted
   caches from older builds read as stale instead of wrong. *)
let stage_version = 3
(* 2: match compiler v2 — FSM/decision-tree dispatch plans
   3: worklist explorer — merge/prune stats fields, ite terms in
      artifacts, join-point merging behind the "merge" param *)

type artifact =
  | A_canon of (Nfl.Ast.program * string)
      (* the canonical program together with its canonical text, so the
         content fingerprint never needs a fresh pretty-print *)
  | A_classes of Statealyzer.Varclass.t
  | A_slices of Nfactor.Extract.slices
  | A_paths of (Explore.path list * Explore.stats)
  | A_model of Nfactor.Model.t
  | A_plan of Nfactor_runtime.Compile.t
  | A_analysis of (Analysis.Lint.report * Analysis.Minimize.outcome * Analysis.Lint.report)

type t = {
  dir : string option;
  mem : (string, artifact) Hashtbl.t;
  memo : Solver.memo;  (** shared by every exploration this manager runs *)
  mutable trace_log : Trace.t list;  (* newest first *)
}

let create ?cache_dir () =
  { dir = cache_dir; mem = Hashtbl.create 64; memo = Solver.memo_create (); trace_log = [] }

let cache_dir t = t.dir
let solver_memo t = t.memo
let traces t = List.rev t.trace_log

(* One pass application: in-memory table, then (when persistable and a
   cache dir is set) the on-disk store, then compute-and-fill. A decode
   failure of any kind — from bit rot the header digest missed to an
   encoding from an incompatible build — demotes the entry to a miss;
   the cache must never be able to crash or corrupt a synthesis. *)
let run_pass (type a) t ~nf ~pass ~(fp : Fingerprint.t)
    ?(persist : ((a -> string) * (string -> a)) option)
    ~(wrap : a -> artifact) ~(unwrap : artifact -> a option) (compute : unit -> a) : a =
  let key = pass ^ ":" ^ fp in
  let t0 = Unix.gettimeofday () in
  let record status v =
    t.trace_log <-
      { Trace.nf; pass; fingerprint = fp; status; wall_s = Unix.gettimeofday () -. t0 }
      :: t.trace_log;
    v
  in
  match Option.bind (Hashtbl.find_opt t.mem key) unwrap with
  | Some v -> record Trace.Mem_hit v
  | None -> (
      let from_disk =
        match (t.dir, persist) with
        | Some dir, Some (_, decode) -> (
            match Store.load ~dir ~pass ~fp with
            | Some payload -> ( try Some (decode payload) with _ -> None)
            | None -> None)
        | _ -> None
      in
      match from_disk with
      | Some v ->
          Hashtbl.replace t.mem key (wrap v);
          record Trace.Disk_hit v
      | None ->
          let v = compute () in
          Hashtbl.replace t.mem key (wrap v);
          (match (t.dir, persist) with
          | Some dir, Some (encode, _) -> (
              try Store.save ~dir ~pass ~fp (encode v)
              with Sys_error msg -> Fmt.epr "warning: artifact cache write failed: %s@." msg)
          | _ -> ());
          record Trace.Miss v)

let extract_keyed ?(config = Explore.default_config) ?(merge = true) t ~name ~src_fp
    (parse_input : unit -> Nfl.Ast.program) =
  let wall = ref [] in
  let timed pass f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    wall := (pass, Unix.gettimeofday () -. t0) :: !wall;
    r
  in
  let canon_fp = Fingerprint.combine ~pass:"canonicalize" ~version:stage_version [ src_fp ] in
  let canon, canon_text =
    timed "canonicalize" (fun () ->
        run_pass t ~nf:name ~pass:"canonicalize" ~fp:canon_fp
          ~persist:((fun (_, text) -> text), fun text -> (Artifact.program_of_string text, text))
          ~wrap:(fun c -> A_canon c)
          ~unwrap:(function A_canon c -> Some c | _ -> None)
          (fun () ->
            (* [canonical_stage], decomposed so the canonical text is
               produced as a by-product: pretty-parse is a fixpoint, so
               this text is also what the reparsed program prints as. *)
            let text =
              Nfl.Pretty.program (Nfactor.Extract.ensure_canonical (parse_input ()))
            in
            (Artifact.program_of_string text, text)))
  in
  (* Downstream keys chain from the canonical *content*: cosmetically
     different sources that canonicalize identically share every
     artifact from classify on. *)
  let content_fp = Fingerprint.of_text canon_text in
  let classes_fp = Fingerprint.combine ~pass:"classify" ~version:stage_version [ content_fp ] in
  let classes =
    timed "classify" (fun () ->
        run_pass t ~nf:name ~pass:"classify" ~fp:classes_fp
          ~persist:(Artifact.classes_to_string, Artifact.classes_of_string ~canon)
          ~wrap:(fun c -> A_classes c)
          ~unwrap:(function A_classes c -> Some c | _ -> None)
          (fun () -> Nfactor.Extract.classify_stage canon))
  in
  let slices_fp =
    Fingerprint.combine ~pass:"slice" ~version:stage_version [ content_fp; classes_fp ]
  in
  let slices =
    timed "slice" (fun () ->
        run_pass t ~nf:name ~pass:"slice" ~fp:slices_fp
          ~persist:(Artifact.slices_to_string, Artifact.slices_of_string ~canon)
          ~wrap:(fun sl -> A_slices sl)
          ~unwrap:(function A_slices sl -> Some sl | _ -> None)
          (fun () -> Nfactor.Extract.slice_stage canon classes))
  in
  let explore_fp =
    Fingerprint.combine ~pass:"explore" ~version:stage_version
      ~params:
        [
          ("loop_bound", string_of_int config.Explore.loop_bound);
          ("max_paths", string_of_int config.Explore.max_paths);
          ("max_steps", string_of_int config.Explore.max_steps);
          ("merge", if merge then "on" else "off");
        ]
      [ content_fp; slices_fp ]
  in
  let paths, stats =
    timed "explore" (fun () ->
        run_pass t ~nf:name ~pass:"explore" ~fp:explore_fp
          ~persist:(Artifact.paths_to_string, Artifact.paths_of_string)
          ~wrap:(fun ps -> A_paths ps)
          ~unwrap:(function A_paths ps -> Some ps | _ -> None)
          (fun () ->
            Nfactor.Extract.explore_stage ~config ~merge ~memo:t.memo canon classes slices))
  in
  let refine_fp =
    Fingerprint.combine ~pass:"refine" ~version:stage_version
      ~params:[ ("name", name) ]
      [ explore_fp ]
  in
  let model =
    timed "refine" (fun () ->
        run_pass t ~nf:name ~pass:"refine" ~fp:refine_fp
          ~persist:(Nfactor.Model_io.to_string, Nfactor.Model_io.of_string)
          ~wrap:(fun m -> A_model m)
          ~unwrap:(function A_model m -> Some m | _ -> None)
          (fun () -> Nfactor.Extract.refine_stage ~name classes paths))
  in
  Nfactor.Extract.assemble ~model ~classes ~program:canon ~slices ~paths ~stats
    ~stage_times:(List.rev !wall) ~solver_memo:t.memo

let extract ?config ?merge t ~name p =
  extract_keyed ?config ?merge t ~name
    ~src_fp:(Fingerprint.of_text (Nfl.Pretty.program p))
    (fun () -> p)

(* Keying on the raw source text means a warm run never parses the
   source at all: the canonical program comes back from the cache. The
   trade-off is that comment/whitespace edits re-run canonicalize
   (which then content-hits everything downstream), whereas [extract]
   fingerprints the parsed AST and absorbs them one stage earlier. *)
let extract_source ?config ?merge t ~name source =
  extract_keyed ?config ?merge t ~name
    ~src_fp:(Fingerprint.of_text source)
    (fun () -> Nfl.Parser.program source)

let plan t (ex : Nfactor.Extract.result) =
  let model = ex.Nfactor.Extract.model in
  let model_fp = Fingerprint.of_text (Nfactor.Model_io.to_string model) in
  let prog_fp = Fingerprint.of_text (Nfl.Pretty.program ex.Nfactor.Extract.program) in
  let fp =
    Fingerprint.combine ~pass:"compile" ~version:stage_version [ model_fp; prog_fp ]
  in
  (* Plans contain compiled closures, so this pass is memoized
     in-memory only; across sessions it re-derives from the cached
     model, which is the expensive part to reproduce. *)
  run_pass t ~nf:model.Nfactor.Model.nf_name ~pass:"compile" ~fp
    ~wrap:(fun pl -> A_plan pl)
    ~unwrap:(function A_plan pl -> Some pl | _ -> None)
    (fun () ->
      let store = Nfactor.Model_interp.initial_store ex in
      Nfactor_runtime.Compile.compile model ~config:store)

let analyze t (ex : Nfactor.Extract.result) =
  let model = ex.Nfactor.Extract.model in
  let model_fp = Fingerprint.of_text (Nfactor.Model_io.to_string model) in
  let prog_fp = Fingerprint.of_text (Nfl.Pretty.program ex.Nfactor.Extract.program) in
  let fp =
    Fingerprint.combine ~pass:"analyze" ~version:stage_version [ model_fp; prog_fp ]
  in
  run_pass t ~nf:model.Nfactor.Model.nf_name ~pass:"analyze" ~fp
    ~persist:(Artifact.analysis_to_string, Artifact.analysis_of_string)
    ~wrap:(fun a -> A_analysis a)
    ~unwrap:(function A_analysis a -> Some a | _ -> None)
    (fun () ->
      let store = Nfactor.Model_interp.initial_store ex in
      let pre = Analysis.Lint.run ex in
      let outcome = Analysis.Minimize.run ~store model in
      let post =
        Analysis.Lint.model_lint ~ordered:true ~store outcome.Analysis.Minimize.minimized
      in
      (pre, outcome, post))
