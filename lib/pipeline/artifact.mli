(** Serialization of intermediate pipeline artifacts.

    {!Nfactor.Model_io} already defines the interchange encoding for
    models (the refine artifact); this module adds the same-style
    s-expression serializers for the remaining persistable stage
    artifacts: the canonical program, the StateAlyzer classification,
    the slice sets, and the exploration result (paths + stats).

    Statement-id bearing artifacts (slices, path traces) are only
    meaningful relative to a specific canonical program text;
    {!Manager} guarantees this by keying every artifact on the
    fingerprint chain rooted at the canonical text, and
    [Extract.canonical_stage] makes statement numbering a pure function
    of that text. Decoders raise {!Nfactor.Model_io.Parse_error} on
    malformed input; the manager treats any decoder exception as a
    cache miss. *)

open Symexec

val program_to_string : Nfl.Ast.program -> string
(** Canonical text (pretty-printed source). *)

val program_of_string : string -> Nfl.Ast.program
(** Re-parse; statement ids are deterministic in the text. *)

val classes_to_string : Statealyzer.Varclass.t -> string

val classes_of_string : canon:Nfl.Ast.program -> string -> Statealyzer.Varclass.t
(** [canon] rebuilds the (unserialized) canonical loop body. *)

val slices_to_string : Nfactor.Extract.slices -> string

val slices_of_string : canon:Nfl.Ast.program -> string -> Nfactor.Extract.slices
(** [canon] rebuilds the sliced loop body from the union ids. *)

val paths_to_string : Explore.path list * Explore.stats -> string

val paths_of_string : string -> Explore.path list * Explore.stats
(** Terms re-intern through the smart constructors, exactly like model
    deserialization; the stats are the recorded exploration's. *)

val analysis_to_string :
  Analysis.Lint.report * Analysis.Minimize.outcome * Analysis.Lint.report -> string
(** The analyze-pass artifact: pre-minimization lint report, the
    minimization outcome (original + minimized models and rewrite
    counters), and the lint report of the minimized table. *)

val analysis_of_string :
  string -> Analysis.Lint.report * Analysis.Minimize.outcome * Analysis.Lint.report
(** Models re-intern through {!Nfactor.Model_io}; witness packets
    rebuild field-by-field. *)
