(** The pass manager: Algorithm 1 (plus runtime compilation) as a
    content-addressed pipeline of cacheable passes.

    Six passes — canonicalize, classify, slice, explore, refine,
    compile — each keyed by a {!Fingerprint.t} over the canonical
    input text, the pass version and parameters, and the upstream
    fingerprints. Artifacts are memoized in-memory for the manager's
    lifetime and, when [cache_dir] is set, persisted through {!Store},
    so a second synthesis of an unchanged NF is a pure cache hit (in
    this or any later session) and an edited NF recomputes only from
    the first dirty stage. The compile pass produces closures and is
    memoized in-memory only; across sessions it is re-derived from the
    cached model.

    A single {!Symexec.Solver.memo} is threaded through every
    exploration the manager runs, so slice↔original and cross-stage
    explorations reuse path-condition verdicts by construction. *)

val passes : string list
(** Pass names, in pipeline order. *)

type t

val create : ?cache_dir:string -> unit -> t
(** A fresh manager (empty in-memory table). [cache_dir] enables the
    persistent artifact store (created on first write). *)

val cache_dir : t -> string option
val solver_memo : t -> Symexec.Solver.memo

val traces : t -> Trace.t list
(** Every pass application so far, in chronological order. *)

val extract :
  ?config:Symexec.Explore.config -> ?merge:bool -> t -> name:string -> Nfl.Ast.program ->
  Nfactor.Extract.result
(** Run (or replay from cache) canonicalize → classify → slice →
    explore → refine and assemble the classic {!Nfactor.Extract.result}
    view. [result.stage_times] carries this invocation's per-pass
    wall-clock (load time on hits); [result.stats] is the recorded
    exploration's statistics whether computed or cached;
    [result.solver_memo] is the manager's shared memo. [merge]
    (default on) enables join-point path merging during exploration
    and participates in the explore-pass fingerprint. *)

val extract_source :
  ?config:Symexec.Explore.config -> ?merge:bool -> t -> name:string -> string ->
  Nfactor.Extract.result
(** Like {!extract} but from NFL source text, keyed on the raw text: a
    warm run replays the canonical program from the cache without even
    parsing the source. Comment-only edits re-run canonicalize (they
    change the raw text) and then hit every downstream stage, since the
    canonical content is unchanged. *)

val plan : t -> Nfactor.Extract.result -> Nfactor_runtime.Compile.t
(** The sixth pass: compile the model against its extraction-time
    initial store. Keyed on the content fingerprints of the model and
    the canonical program (which determines the store), so it accepts
    any extraction result, including one assembled by {!extract} from
    cached artifacts. *)

val analyze :
  t ->
  Nfactor.Extract.result ->
  Analysis.Lint.report * Analysis.Minimize.outcome * Analysis.Lint.report
(** The seventh pass: lint the synthesized model, minimize its entry
    table ({!Analysis.Minimize}), and lint the minimized table again.
    Keyed like [plan] on the model + canonical-program fingerprints;
    the whole triple (reports, original and minimized models, rewrite
    counters) persists through {!Store} like any other artifact. *)
