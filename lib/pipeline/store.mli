(** On-disk artifact store backing [--cache-dir].

    One file per artifact, named by pass and fingerprint. Every file
    carries a self-validating header (magic, pass, fingerprint, payload
    digest): {!load} returns [None] — never garbage — for entries that
    are missing, truncated, bit-rotted, renamed, or written by an
    incompatible store version, so corrupted or stale cache entries are
    recomputed rather than trusted. Writes go through a temp file and
    rename, so a crashed writer cannot leave a half-written artifact
    under a valid name. *)

val file : dir:string -> pass:string -> fp:Fingerprint.t -> string
(** Path an artifact is stored at. *)

val save : dir:string -> pass:string -> fp:Fingerprint.t -> string -> unit
(** Persist a payload (creates [dir] as needed).
    @raise Sys_error when the directory or file cannot be written. *)

val load : dir:string -> pass:string -> fp:Fingerprint.t -> string option
(** The validated payload, or [None] on absence or any integrity
    failure. *)
