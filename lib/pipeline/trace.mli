(** Per-pass trace records: the unified stage telemetry the pass
    manager emits for every pass application (replacing ad-hoc
    [stage_times] plumbing as the source of truth for [--stats] /
    [--json] surfaces). *)

type status =
  | Miss  (** computed (and persisted when a cache dir is set) *)
  | Mem_hit  (** served from the manager's in-memory artifact table *)
  | Disk_hit  (** deserialized from the on-disk artifact store *)

type t = {
  nf : string;  (** NF the pass ran for *)
  pass : string;
  fingerprint : Fingerprint.t;
  status : status;
  wall_s : float;  (** wall-clock of the pass application (incl. load) *)
}

val status_to_string : status -> string
val is_hit : t -> bool

val hit_rate : t list -> float
(** Percentage of hits (memory or disk); 0 on an empty list. *)

val total_wall_s : t list -> float
val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** One JSON object, no trailing newline. *)
