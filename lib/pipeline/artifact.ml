open Symexec
open Nfactor.Model_io

(* All serializers reuse Model_io's s-expression layer (and its term /
   literal encoders), so artifacts inherit the same totality and
   re-interning behavior as model files. *)

let program_to_string (p : Nfl.Ast.program) = Nfl.Pretty.program p
let program_of_string src = Nfl.Parser.program src

let err what s = raise (Parse_error (what ^ ": " ^ sexp_to_string s))

let atom = function Atom s -> s | s -> err "expected atom" s
let int_atom s = int_of_string (atom s)
let bool_atom s = bool_of_string (atom s)

(* Floats round-trip exactly through the hexadecimal literal notation
   (%h), which stays inside the unquoted atom alphabet. *)
let float_atom s = float_of_string (atom s)
let float_to_atom f = Atom (Printf.sprintf "%h" f)

(* ------------------------------------------------------------------ *)
(* StateAlyzer classification                                         *)
(* ------------------------------------------------------------------ *)

let category_tag = function
  | Statealyzer.Varclass.Pkt_var -> "pkt"
  | Statealyzer.Varclass.Cfg_var -> "cfg"
  | Statealyzer.Varclass.Ois_var -> "ois"
  | Statealyzer.Varclass.Log_var -> "log"
  | Statealyzer.Varclass.Unused_cfg -> "unused-cfg"
  | Statealyzer.Varclass.Local -> "local"

let category_of_tag = function
  | "pkt" -> Statealyzer.Varclass.Pkt_var
  | "cfg" -> Statealyzer.Varclass.Cfg_var
  | "ois" -> Statealyzer.Varclass.Ois_var
  | "log" -> Statealyzer.Varclass.Log_var
  | "unused-cfg" -> Statealyzer.Varclass.Unused_cfg
  | "local" -> Statealyzer.Varclass.Local
  | s -> raise (Parse_error ("unknown category " ^ s))

let classes_to_string (t : Statealyzer.Varclass.t) =
  let feature (v, (f : Statealyzer.Varclass.features)) =
    List
      [
        Atom v;
        Atom (string_of_bool f.Statealyzer.Varclass.persistent);
        Atom (string_of_bool f.Statealyzer.Varclass.top_level);
        Atom (string_of_bool f.Statealyzer.Varclass.updateable);
        Atom (string_of_bool f.Statealyzer.Varclass.output_impacting);
        Atom (string_of_bool f.Statealyzer.Varclass.loop_carried);
      ]
  in
  sexp_to_string
    (List
       [
         Atom "nfactor-classes";
         List [ Atom "pkt-var"; Atom t.Statealyzer.Varclass.pkt_var ];
         List (Atom "features" :: List.map feature t.Statealyzer.Varclass.features);
         List
           (Atom "categories"
           :: List.map
                (fun (v, c) -> List [ Atom v; Atom (category_tag c) ])
                t.Statealyzer.Varclass.categories);
         List
           (Atom "pkt-slice"
           :: List.map (fun sid -> Atom (string_of_int sid)) t.Statealyzer.Varclass.pkt_slice);
       ])

let classes_of_string ~canon input =
  match parse_sexp input with
  | List
      [
        Atom "nfactor-classes";
        List [ Atom "pkt-var"; Atom pkt_var ];
        List (Atom "features" :: features);
        List (Atom "categories" :: categories);
        List (Atom "pkt-slice" :: pkt_slice);
      ] ->
      let feature = function
        | List [ Atom v; p; tl; u; oi; lc ] ->
            ( v,
              {
                Statealyzer.Varclass.persistent = bool_atom p;
                top_level = bool_atom tl;
                updateable = bool_atom u;
                output_impacting = bool_atom oi;
                loop_carried = bool_atom lc;
              } )
        | s -> err "bad feature" s
      in
      let category = function
        | List [ Atom v; Atom c ] -> (v, category_of_tag c)
        | s -> err "bad category" s
      in
      let _, loop_body, _ = Nfl.Transform.packet_loop canon in
      {
        Statealyzer.Varclass.pkt_var;
        features = List.map feature features;
        categories = List.map category categories;
        pkt_slice = List.map int_atom pkt_slice;
        loop_body;
      }
  | s -> err "not an nfactor-classes document" s

(* ------------------------------------------------------------------ *)
(* Slices                                                             *)
(* ------------------------------------------------------------------ *)

let sids l = List.map (fun sid -> Atom (string_of_int sid)) l

let slices_to_string (sl : Nfactor.Extract.slices) =
  sexp_to_string
    (List
       [
         Atom "nfactor-slices";
         List (Atom "pkt" :: sids sl.Nfactor.Extract.sl_pkt);
         List (Atom "state" :: sids sl.Nfactor.Extract.sl_state);
         List (Atom "union" :: sids sl.Nfactor.Extract.sl_union);
       ])

let slices_of_string ~canon input =
  match parse_sexp input with
  | List
      [
        Atom "nfactor-slices";
        List (Atom "pkt" :: pkt);
        List (Atom "state" :: state);
        List (Atom "union" :: union);
      ] ->
      let union = List.map int_atom union in
      {
        Nfactor.Extract.sl_pkt = List.map int_atom pkt;
        sl_state = List.map int_atom state;
        sl_union = union;
        sl_body = Nfactor.Extract.sliced_body_of_union canon union;
      }
  | s -> err "not an nfactor-slices document" s

(* ------------------------------------------------------------------ *)
(* Exploration result (paths + stats)                                 *)
(* ------------------------------------------------------------------ *)

(* The term layer is hash-consed, and path environments replicate the
   same configuration/state terms across every path (snort's rule
   table alone dwarfs the rest of the artifact). Exprs are therefore
   serialized as a DAG: one topologically ordered definition table in
   which each distinct term appears exactly once, and every expression
   position elsewhere in the document is an index into it. This turns
   the dominant O(paths x term-size) payload into
   O(paths + distinct terms) and makes warm loads cheap. *)

type term_enc = {
  mutable defs_rev : sexp list;
  mutable next : int;
  enc_index : (int, int) Hashtbl.t;  (* Sexpr.id -> definition index *)
}

let term_enc () = { defs_rev = []; next = 0; enc_index = Hashtbl.create 256 }

let rec eref enc e =
  match Hashtbl.find_opt enc.enc_index (Sexpr.id e) with
  | Some i -> Atom (string_of_int i)
  | None ->
      (* Children first: definitions only reference smaller indices. *)
      let def =
        match Sexpr.view e with
        | Sexpr.Const v -> List [ Atom "c"; sexp_of_value v ]
        | Sexpr.Sym s -> List [ Atom "y"; Atom s ]
        | Sexpr.Bin (op, a, b) -> List [ Atom "b"; Atom (binop_name op); eref enc a; eref enc b ]
        | Sexpr.Not a -> List [ Atom "n"; eref enc a ]
        | Sexpr.Neg a -> List [ Atom "e"; eref enc a ]
        | Sexpr.Tup es -> List (Atom "t" :: List.map (eref enc) es)
        | Sexpr.Lst es -> List (Atom "l" :: List.map (eref enc) es)
        | Sexpr.Get (a, b) -> List [ Atom "g"; eref enc a; eref enc b ]
        | Sexpr.Ufun (f, args) -> List (Atom "u" :: Atom f :: List.map (eref enc) args)
        | Sexpr.Mem (d, k) -> List [ Atom "m"; dref enc d; eref enc k ]
        | Sexpr.Dget (d, k) -> List [ Atom "d"; dref enc d; eref enc k ]
        | Sexpr.Ite (g, a, b) -> List [ Atom "i"; eref enc g; eref enc a; eref enc b ]
      in
      let i = enc.next in
      enc.next <- i + 1;
      enc.defs_rev <- def :: enc.defs_rev;
      Hashtbl.replace enc.enc_index (Sexpr.id e) i;
      Atom (string_of_int i)

and dref enc (d : Sexpr.dict_state) =
  List
    (Atom d.Sexpr.base
    :: List.map
         (fun (k, v) ->
           match v with
           | Some value -> List [ Atom "s"; eref enc k; eref enc value ]
           | None -> List [ Atom "x"; eref enc k ])
         d.Sexpr.writes)

(* Decoding folds the definition table left to right through the smart
   constructors (re-interning, exactly like model deserialization);
   references resolve against the already-rebuilt prefix. *)
type term_dec = { terms : Sexpr.t array; mutable filled : int }

let tref dec s =
  let i = int_atom s in
  if i < 0 || i >= dec.filled then err "forward term reference" s else dec.terms.(i)

let dict_of_def dec = function
  | List (Atom base :: writes) ->
      {
        Sexpr.base;
        writes =
          List.map
            (function
              | List [ Atom "s"; k; v ] -> (tref dec k, Some (tref dec v))
              | List [ Atom "x"; k ] -> (tref dec k, None)
              | s -> err "bad dict write" s)
            writes;
      }
  | s -> err "bad dict state" s

let term_dec defs =
  let dec = { terms = Array.make (List.length defs) Sexpr.tru; filled = 0 } in
  List.iter
    (fun def ->
      let e =
        match def with
        | List [ Atom "c"; v ] -> Sexpr.const (value_of_sexp v)
        | List [ Atom "y"; Atom s ] -> Sexpr.sym s
        | List [ Atom "b"; Atom op; a; b ] ->
            Sexpr.mk_bin (binop_of_name op) (tref dec a) (tref dec b)
        | List [ Atom "n"; a ] -> Sexpr.mk_not (tref dec a)
        | List [ Atom "e"; a ] -> Sexpr.mk_neg (tref dec a)
        | List (Atom "t" :: es) -> Sexpr.mk_tuple (List.map (tref dec) es)
        | List (Atom "l" :: es) -> Sexpr.mk_list (List.map (tref dec) es)
        | List [ Atom "g"; a; b ] -> Sexpr.mk_get (tref dec a) (tref dec b)
        | List (Atom "u" :: Atom f :: args) -> Sexpr.mk_ufun f (List.map (tref dec) args)
        | List [ Atom "m"; d; k ] -> Sexpr.mk_mem (dict_of_def dec d) (tref dec k)
        | List [ Atom "d"; d; k ] -> Sexpr.mk_dget (dict_of_def dec d) (tref dec k)
        | List [ Atom "i"; g; a; b ] -> Sexpr.mk_ite (tref dec g) (tref dec a) (tref dec b)
        | s -> err "bad term definition" s
      in
      dec.terms.(dec.filled) <- e;
      dec.filled <- dec.filled + 1)
    defs;
  dec

let rec sval_to_sexp enc = function
  | Explore.Scalar e -> List [ Atom "scalar"; eref enc e ]
  | Explore.Pktv fields ->
      List (Atom "pkt" :: List.map (fun (f, e) -> List [ Atom f; eref enc e ]) fields)
  | Explore.Dictv d -> List [ Atom "dict"; dref enc d ]
  | Explore.Listv vs -> List (Atom "vals" :: List.map (sval_to_sexp enc) vs)

let rec sval_of_sexp dec = function
  | List [ Atom "scalar"; e ] -> Explore.Scalar (tref dec e)
  | List (Atom "pkt" :: fields) ->
      Explore.Pktv
        (List.map
           (function
             | List [ Atom f; e ] -> (f, tref dec e)
             | s -> err "bad packet field" s)
           fields)
  | List [ Atom "dict"; d ] -> Explore.Dictv (dict_of_def dec d)
  | List (Atom "vals" :: vs) -> Explore.Listv (List.map (sval_of_sexp dec) vs)
  | s -> err "bad sval" s

let sexp_of_lit enc (l : Solver.literal) =
  List [ Atom (if l.Solver.positive then "+" else "-"); eref enc l.Solver.atom ]

let lit_of_sexp dec = function
  | List [ Atom "+"; a ] -> Solver.lit (tref dec a) true
  | List [ Atom "-"; a ] -> Solver.lit (tref dec a) false
  | s -> err "bad literal" s

let sexp_of_path enc (p : Explore.path) =
  List
    [
      Atom "path";
      List (Atom "pc" :: List.map (sexp_of_lit enc) p.Explore.pc);
      List (Atom "trace" :: sids p.Explore.trace);
      List
        (Atom "sends"
        :: List.map
             (fun snap ->
               List (List.map (fun (f, e) -> List [ Atom f; eref enc e ]) snap))
             p.Explore.sends);
      List
        (Atom "env"
        :: List.map
             (fun (v, sv) -> List [ Atom v; sval_to_sexp enc sv ])
             (Explore.Smap.bindings p.Explore.env));
      List [ Atom "truncated"; Atom (string_of_bool p.Explore.truncated) ];
    ]

let path_of_sexp dec = function
  | List
      [
        Atom "path";
        List (Atom "pc" :: pc);
        List (Atom "trace" :: trace);
        List (Atom "sends" :: sends);
        List (Atom "env" :: env);
        List [ Atom "truncated"; trunc ];
      ] ->
      {
        Explore.pc = List.map (lit_of_sexp dec) pc;
        trace = List.map int_atom trace;
        sends =
          List.map
            (function
              | List fields ->
                  List.map
                    (function
                      | List [ Atom f; e ] -> (f, tref dec e)
                      | s -> err "bad send field" s)
                    fields
              | s -> err "bad send" s)
            sends;
        env =
          List.fold_left
            (fun acc binding ->
              match binding with
              | List [ Atom v; sv ] -> Explore.Smap.add v (sval_of_sexp dec sv) acc
              | s -> err "bad env binding" s)
            Explore.Smap.empty env;
        truncated = bool_atom trunc;
      }
  | s -> err "bad path" s

let sexp_of_stats (s : Explore.stats) =
  List
    [
      Atom "stats";
      List [ Atom "paths"; Atom (string_of_int s.Explore.paths) ];
      List [ Atom "truncated-paths"; Atom (string_of_int s.Explore.truncated_paths) ];
      List [ Atom "decides"; Atom (string_of_int s.Explore.decides) ];
      List [ Atom "solver-calls"; Atom (string_of_int s.Explore.solver_calls) ];
      List [ Atom "cache-hits"; Atom (string_of_int s.Explore.solver_cache_hits) ];
      List [ Atom "cache-misses"; Atom (string_of_int s.Explore.solver_cache_misses) ];
      List [ Atom "solver-time"; float_to_atom s.Explore.solver_time_s ];
      List [ Atom "forks"; Atom (string_of_int s.Explore.forks) ];
      List [ Atom "max-fork-depth"; Atom (string_of_int s.Explore.max_fork_depth) ];
      List
        (Atom "fork-depths"
        :: List.map
             (fun (d, n) -> List [ Atom (string_of_int d); Atom (string_of_int n) ])
             (Explore.Imap.bindings s.Explore.fork_depths));
      List [ Atom "overflowed"; Atom (string_of_bool s.Explore.overflowed) ];
      List [ Atom "merges"; Atom (string_of_int s.Explore.merges) ];
      List [ Atom "prunes"; Atom (string_of_int s.Explore.prunes) ];
    ]

let stats_of_sexp = function
  | List
      [
        Atom "stats";
        List [ Atom "paths"; paths ];
        List [ Atom "truncated-paths"; truncated_paths ];
        List [ Atom "decides"; decides ];
        List [ Atom "solver-calls"; solver_calls ];
        List [ Atom "cache-hits"; cache_hits ];
        List [ Atom "cache-misses"; cache_misses ];
        List [ Atom "solver-time"; solver_time ];
        List [ Atom "forks"; forks ];
        List [ Atom "max-fork-depth"; max_fork_depth ];
        List (Atom "fork-depths" :: fork_depths);
        List [ Atom "overflowed"; overflowed ];
        List [ Atom "merges"; merges ];
        List [ Atom "prunes"; prunes ];
      ] ->
      {
        Explore.paths = int_atom paths;
        truncated_paths = int_atom truncated_paths;
        decides = int_atom decides;
        solver_calls = int_atom solver_calls;
        solver_cache_hits = int_atom cache_hits;
        solver_cache_misses = int_atom cache_misses;
        solver_time_s = float_atom solver_time;
        forks = int_atom forks;
        max_fork_depth = int_atom max_fork_depth;
        fork_depths =
          List.fold_left
            (fun acc b ->
              match b with
              | List [ d; n ] -> Explore.Imap.add (int_atom d) (int_atom n) acc
              | s -> err "bad fork-depth bucket" s)
            Explore.Imap.empty fork_depths;
        overflowed = bool_atom overflowed;
        merges = int_atom merges;
        prunes = int_atom prunes;
      }
  | s -> err "bad stats" s

let paths_to_string ((paths, stats) : Explore.path list * Explore.stats) =
  let enc = term_enc () in
  (* Encode the paths first so the term table they reference is
     complete, then emit the table up front for one-pass decoding. *)
  let path_sexps = List.map (sexp_of_path enc) paths in
  sexp_to_string
    (List
       (Atom "nfactor-paths"
       :: List (Atom "terms" :: List.rev enc.defs_rev)
       :: sexp_of_stats stats :: path_sexps))

let paths_of_string input =
  match parse_sexp input with
  | List (Atom "nfactor-paths" :: List (Atom "terms" :: defs) :: stats :: paths) ->
      let dec = term_dec defs in
      (List.map (path_of_sexp dec) paths, stats_of_sexp stats)
  | s -> err "not an nfactor-paths document" s

(* ------------------------------------------------------------------ *)
(* Analyzer results (lint reports + minimization outcome)             *)
(* ------------------------------------------------------------------ *)

let analysis_version = 1

let analysis_to_string
    ((pre, outcome, post) :
      Analysis.Lint.report * Analysis.Minimize.outcome * Analysis.Lint.report) =
  let o = outcome in
  sexp_to_string
    (List
       [
         Atom "nfactor-analysis";
         Atom (string_of_int analysis_version);
         List [ Atom "pre"; Atom (Analysis.Lint.report_to_string pre) ];
         List [ Atom "original"; Atom (Nfactor.Model_io.to_string o.Analysis.Minimize.original) ];
         List [ Atom "minimized"; Atom (Nfactor.Model_io.to_string o.Analysis.Minimize.minimized) ];
         List
           [
             Atom "stats";
             Atom (string_of_int o.Analysis.Minimize.deleted_dead);
             Atom (string_of_int o.Analysis.Minimize.deleted_shadowed);
             Atom (string_of_int o.Analysis.Minimize.merged);
             Atom (string_of_int o.Analysis.Minimize.widened_literals);
             Atom (string_of_int o.Analysis.Minimize.iterations);
             Atom (string_of_bool o.Analysis.Minimize.verified);
             Atom (string_of_int o.Analysis.Minimize.trials);
           ];
         List [ Atom "post"; Atom (Analysis.Lint.report_to_string post) ];
       ])

let analysis_of_string input =
  match parse_sexp input with
  | List
      [
        Atom "nfactor-analysis";
        v;
        List [ Atom "pre"; Atom pre ];
        List [ Atom "original"; Atom original ];
        List [ Atom "minimized"; Atom minimized ];
        List [ Atom "stats"; dead; shadowed; merged; widened; iters; verified; trials ];
        List [ Atom "post"; Atom post ];
      ]
    when int_atom v = analysis_version ->
      ( Analysis.Lint.report_of_string pre,
        {
          Analysis.Minimize.original = Nfactor.Model_io.of_string original;
          minimized = Nfactor.Model_io.of_string minimized;
          deleted_dead = int_atom dead;
          deleted_shadowed = int_atom shadowed;
          merged = int_atom merged;
          widened_literals = int_atom widened;
          iterations = int_atom iters;
          verified = bool_atom verified;
          trials = int_atom trials;
        },
        Analysis.Lint.report_of_string post )
  | s -> err "not an nfactor-analysis document" s
