let magic = "nfactor-artifact-v1"

let file ~dir ~pass ~fp = Filename.concat dir (Printf.sprintf "%s-%s.nfart" pass fp)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~dir ~pass ~fp payload =
  mkdir_p dir;
  let path = file ~dir ~pass ~fp in
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  Printf.fprintf oc "%s %s %s %s\n" magic pass fp (Digest.to_hex (Digest.string payload));
  output_string oc payload;
  close_out oc;
  Sys.rename tmp path

let load ~dir ~pass ~fp =
  let path = file ~dir ~pass ~fp in
  if not (Sys.file_exists path) then None
  else
    try
      let ic = open_in_bin path in
      let finish r = close_in ic; r in
      match input_line ic with
      | header -> (
          match String.split_on_char ' ' header with
          | [ m; p; f; digest ] when m = magic && p = pass && f = fp ->
              let len = in_channel_length ic - pos_in ic in
              let payload = really_input_string ic len in
              if Digest.to_hex (Digest.string payload) = digest then finish (Some payload)
              else finish None
          | _ -> finish None)
      | exception End_of_file -> finish None
    with Sys_error _ | End_of_file -> None
