type status = Miss | Mem_hit | Disk_hit

type t = {
  nf : string;
  pass : string;
  fingerprint : Fingerprint.t;
  status : status;
  wall_s : float;
}

let status_to_string = function
  | Miss -> "miss"
  | Mem_hit -> "mem-hit"
  | Disk_hit -> "disk-hit"

let is_hit t = t.status <> Miss

let hit_rate traces =
  match traces with
  | [] -> 0.
  | _ ->
      let hits = List.length (List.filter is_hit traces) in
      100. *. float_of_int hits /. float_of_int (List.length traces)

let total_wall_s traces = List.fold_left (fun acc t -> acc +. t.wall_s) 0. traces

let pp ppf t =
  Fmt.pf ppf "%-12s %-12s %a %-8s %8.3fms" t.nf t.pass Fingerprint.pp t.fingerprint
    (status_to_string t.status) (t.wall_s *. 1e3)

let to_json t =
  Printf.sprintf
    "{ \"nf\": %S, \"pass\": %S, \"fingerprint\": %S, \"status\": %S, \"wall_ms\": %.3f }"
    t.nf t.pass t.fingerprint (status_to_string t.status) (t.wall_s *. 1e3)
