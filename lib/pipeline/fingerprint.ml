type t = string

let of_text s = Digest.to_hex (Digest.string s)

let combine ~pass ~version ?(params = []) upstream =
  let buf = Buffer.create 128 in
  Buffer.add_string buf pass;
  Buffer.add_char buf '\000';
  Buffer.add_string buf (string_of_int version);
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf '\000';
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf v)
    params;
  List.iter
    (fun fp ->
      Buffer.add_char buf '\000';
      Buffer.add_string buf fp)
    upstream;
  of_text (Buffer.contents buf)

let short fp = if String.length fp > 8 then String.sub fp 0 8 else fp
let pp ppf fp = Fmt.string ppf (short fp)
