(** Model-driven test-packet generation (paper Section 4, BUZZ-style):
    computes a packet sequence that makes every reachable model entry
    fire. Flow predicates are concretized by the solver over a palette
    of base packets; state predicates are satisfied by sequencing —
    earlier packets install the state later entries match on. Every
    candidate is validated by stepping the model, so incomplete solver
    answers cannot produce a wrong sequence. *)

open Nfactor
open Symexec

type coverage = {
  pkts : Packet.Pkt.t list;  (** generated sequence, in order *)
  covered : int list;  (** entry indices fired, in firing order *)
  uncovered : int list;  (** entries never fired (other-config tables,
                             or state deeper than the round budget) *)
}

val base_palette : Packet.Pkt.t list
(** Diverse base packets the generator overlays solver assignments on;
    useful as candidate seeds for other concretization loops. *)

val packet_of_assignment :
  ?pkt_var:string -> ?defaults:Packet.Pkt.t -> Value.t Solver.Smap.t -> Packet.Pkt.t
(** Build a packet from a solver assignment over
    ["<pkt_var>.<field>"] symbols (default ["pkt"]), over [defaults]. *)

val resolve_config : Model_interp.store -> Solver.literal -> Solver.literal
(** Substitute config symbols with their concrete values. *)

val attempt_entry :
  Model.t -> Model_interp.store -> int -> (Packet.Pkt.t * Model_interp.store) option
(** Try to make entry [idx] fire now; on success returns the packet
    and the successor store. *)

val cover : ?max_rounds:int -> Extract.result -> coverage
(** Generate a covering sequence ([max_rounds] bounds the depth of
    state-installation chains; default 8). *)

val compliance : Extract.result -> coverage -> Equiv.verdict
(** Replay the generated packets against the original program. *)

val pp_coverage : Format.formatter -> coverage -> unit
