(* Chain invariants decided over Symreach classes, with every Violated
   verdict validated by replaying a concrete probe through the
   reference chain. Unsat is trusted; Sat never issues a verdict on
   its own. *)

open Nfactor
open Symexec

type nodes = (string * Model.t * Model_interp.store) list

(* ------------------------------------------------------------------ *)
(* Property language                                                  *)
(* ------------------------------------------------------------------ *)

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type pred = { p_field : string; p_cmp : cmp; p_value : Value.t }

type prop = pred list

let cmp_string = function
  | Ceq -> "="
  | Cne -> "!="
  | Clt -> "<"
  | Cle -> "<="
  | Cgt -> ">"
  | Cge -> ">="

let ops = [ ("<=", Cle); (">=", Cge); ("!=", Cne); ("=", Ceq); ("<", Clt); (">", Cgt) ]

let split_on_op s =
  let rec scan = function
    | [] -> None
    | (tok, cmp) :: rest -> (
        let tl = String.length tok in
        let rec at i =
          if i + tl > String.length s then None
          else if String.sub s i tl = tok then
            Some (String.trim (String.sub s 0 i), cmp,
                  String.trim (String.sub s (i + tl) (String.length s - i - tl)))
          else at (i + 1)
        in
        match at 0 with Some r -> Some r | None -> scan rest)
  in
  scan ops

let parse_value ~field s =
  if List.mem field Packet.Headers.int_fields then
    match int_of_string_opt s with
    | Some i -> Ok (Value.Int i)
    | None -> (
        match Packet.Addr.of_string s with
        | ip -> Ok (Value.Int ip)
        | exception _ -> Error (Printf.sprintf "%S is not an integer or dotted quad" s))
  else Ok (Value.Str s)

let parse_pred s =
  match split_on_op s with
  | None -> Error (Printf.sprintf "no comparison operator in %S (expected = != < <= > >=)" s)
  | Some (field, cmp, value) ->
      if not (List.mem field (Packet.Headers.int_fields @ Packet.Headers.str_fields))
      then Error (Printf.sprintf "unknown header field %S" field)
      else
        Result.map
          (fun v -> { p_field = field; p_cmp = cmp; p_value = v })
          (parse_value ~field value)

let parse_prop s =
  let parts = String.split_on_char '&' s |> List.map String.trim in
  if parts = [] || List.exists (fun p -> p = "") parts then
    Error (Printf.sprintf "empty conjunct in property %S" s)
  else
    List.fold_left
      (fun acc p ->
        match (acc, parse_pred p) with
        | Error e, _ -> Error e
        | _, Error e -> Error e
        | Ok ps, Ok pr -> Ok (ps @ [ pr ]))
      (Ok []) parts

let pp_prop ppf prop =
  Fmt.pf ppf "%a"
    Fmt.(
      list ~sep:(any " & ") (fun ppf p ->
          Fmt.pf ppf "%s%s%a" p.p_field (cmp_string p.p_cmp) Value.pp p.p_value))
    prop

let prop_string prop = Fmt.str "%a" pp_prop prop

let holds_pred p pkt =
  let v =
    if List.mem p.p_field Packet.Headers.int_fields then
      Value.Int (Packet.Pkt.get_int pkt p.p_field)
    else Value.Str (Packet.Pkt.get_str pkt p.p_field)
  in
  let c = Value.compare v p.p_value in
  match p.p_cmp with
  | Ceq -> c = 0
  | Cne -> c <> 0
  | Clt -> c < 0
  | Cle -> c <= 0
  | Cgt -> c > 0
  | Cge -> c >= 0

let holds_on prop pkt = List.for_all (fun p -> holds_pred p pkt) prop

let ast_op = function
  | Ceq | Cne -> Nfl.Ast.Eq
  | Clt -> Nfl.Ast.Lt
  | Cle -> Nfl.Ast.Le
  | Cgt -> Nfl.Ast.Gt
  | Cge -> Nfl.Ast.Ge

let sym_lits prop (pkt : Symreach.sym_pkt) =
  List.map
    (fun p ->
      let fe =
        match List.assoc_opt p.p_field pkt with
        | Some e -> e
        | None -> Sexpr.sym ("in." ^ p.p_field)
      in
      Solver.lit (Sexpr.mk_bin (ast_op p.p_cmp) fe (Sexpr.const p.p_value)) (p.p_cmp <> Cne))
    prop

(* ------------------------------------------------------------------ *)
(* Verdicts                                                           *)
(* ------------------------------------------------------------------ *)

type status = Proven | Violated | Unknown

type outcome = {
  status : status;
  counterexample : Packet.Pkt.t option;
  outputs : Packet.Pkt.t list;
  classes_checked : int;
  detail : string;
}

let status_string = function
  | Proven -> "proven"
  | Violated -> "violated"
  | Unknown -> "unknown"

(* Candidate probes for a feasible literal set: the raw solver
   assignment over null defaults, plus the assignment overlaid on
   every palette base (the palette diversifies fields the assignment
   left unconstrained). *)
let probes lits =
  match Solver.concretize lits with
  | None -> []
  | Some asg ->
      Testgen.packet_of_assignment ~pkt_var:"in" asg
      :: List.map
           (fun base -> Testgen.packet_of_assignment ~pkt_var:"in" ~defaults:base asg)
           Testgen.base_palette
      |> List.sort_uniq Packet.Pkt.compare

(* Replay a probe through a fresh interpreter chain seeded with the
   given snapshots (stores are immutable maps, so the nodes' snapshots
   are untouched). *)
let push_fresh (nodes : nodes) pkt =
  let chain = Network.chain (List.map (fun (id, m, s) -> Network.node id m s) nodes) in
  fst (Network.push chain pkt)

let never_reaches (nodes : nodes) prop =
  let cls = Symreach.classes nodes in
  let checked = List.length cls in
  let feasible =
    List.filter
      (fun (c : Symreach.cls) ->
        Solver.check (c.Symreach.constraints @ sym_lits prop c.Symreach.pkt)
        <> Solver.Unsat)
      cls
  in
  if feasible = [] then
    {
      status = Proven;
      counterexample = None;
      outputs = [];
      classes_checked = checked;
      detail =
        Printf.sprintf "all %d end-to-end classes refute [%s]" checked
          (prop_string prop);
    }
  else
    let confirm (c : Symreach.cls) =
      let lits = c.Symreach.constraints @ sym_lits prop c.Symreach.pkt in
      List.find_map
        (fun p ->
          let outs = push_fresh nodes p in
          match List.find_opt (holds_on prop) outs with
          | Some _ -> Some (p, outs)
          | None -> None)
        (probes lits)
    in
    match List.find_map confirm feasible with
    | Some (p, outs) ->
        {
          status = Violated;
          counterexample = Some p;
          outputs = outs;
          classes_checked = checked;
          detail =
            Printf.sprintf
              "%d of %d classes can emerge matching [%s]; replayed counterexample \
               emitted %d packet(s)"
              (List.length feasible) checked (prop_string prop) (List.length outs);
        }
    | None ->
        {
          status = Unknown;
          counterexample = None;
          outputs = [];
          classes_checked = checked;
          detail =
            Printf.sprintf
              "%d of %d classes look feasible for [%s] but no concrete probe \
               validated (solver Sat is over-approximate)"
              (List.length feasible) checked (prop_string prop);
        }

let subchain (nodes : nodes) ~from_ ~to_ =
  let ids = List.map (fun (id, _, _) -> id) nodes in
  let idx name =
    match List.find_index (String.equal name) ids with
    | Some i -> i
    | None ->
        invalid_arg
          (Printf.sprintf "Invariant.state_implies_drop: no node %S in chain [%s]"
             name (String.concat ", " ids))
  in
  let i = idx from_ and j = idx to_ in
  if i > j then
    invalid_arg
      (Printf.sprintf
         "Invariant.state_implies_drop: %S comes after %S in chain [%s]" from_ to_
         (String.concat ", " ids));
  List.filteri (fun k _ -> k >= i && k <= j) nodes

let state_implies_drop (nodes : nodes) ~from_ ~to_ ~cls:prop =
  let sub = subchain nodes ~from_ ~to_ in
  let in_lits = sym_lits prop Symreach.fresh_pkt in
  let classes = Symreach.classes ~drops:true sub in
  let checked = List.length classes in
  let escaping =
    List.filter
      (fun (c : Symreach.cls) ->
        c.Symreach.alive
        && Solver.check (c.Symreach.constraints @ in_lits) <> Solver.Unsat)
      classes
  in
  if escaping = [] then
    {
      status = Proven;
      counterexample = None;
      outputs = [];
      classes_checked = checked;
      detail =
        Printf.sprintf "every class matching [%s] at %s is dropped by %s (%d classes)"
          (prop_string prop) from_ to_ checked;
    }
  else
    let confirm (c : Symreach.cls) =
      List.find_map
        (fun p ->
          if not (holds_on prop p) then None
          else
            match push_fresh sub p with
            | [] -> None
            | outs -> Some (p, outs))
        (probes (c.Symreach.constraints @ in_lits))
    in
    match List.find_map confirm escaping with
    | Some (p, outs) ->
        {
          status = Violated;
          counterexample = Some p;
          outputs = outs;
          classes_checked = checked;
          detail =
            Printf.sprintf
              "a packet matching [%s] at %s survives to %s (%d packet(s) emitted)"
              (prop_string prop) from_ to_ (List.length outs);
        }
    | None ->
        {
          status = Unknown;
          counterexample = None;
          outputs = [];
          classes_checked = checked;
          detail =
            Printf.sprintf
              "%d of %d classes look like escapes for [%s] but no concrete probe \
               validated"
              (List.length escaping) checked (prop_string prop);
        }

let order_equiv (a : nodes) (b : nodes) =
  let witness_probes =
    List.concat_map
      (fun (c : Symreach.cls) -> probes c.Symreach.constraints)
      (Symreach.classes a @ Symreach.classes b)
    |> List.sort_uniq Packet.Pkt.compare
  in
  let checked = List.length (Symreach.classes a) + List.length (Symreach.classes b) in
  let sort = List.sort Packet.Pkt.compare in
  let mismatch p =
    let oa = sort (push_fresh a p) and ob = sort (push_fresh b p) in
    if List.equal Packet.Pkt.equal oa ob then None else Some (p, oa, ob)
  in
  match witness_probes with
  | [] ->
      {
        status = Unknown;
        counterexample = None;
        outputs = [];
        classes_checked = checked;
        detail = "no class could be concretized into a witness probe";
      }
  | _ -> (
      match List.find_map mismatch witness_probes with
      | Some (p, oa, ob) ->
          {
            status = Violated;
            counterexample = Some p;
            outputs = oa;
            classes_checked = checked;
            detail =
              Printf.sprintf
                "orders disagree on a witness: %d vs %d packet(s) emitted"
                (List.length oa) (List.length ob);
          }
      | None ->
          {
            status = Proven;
            counterexample = None;
            outputs = [];
            classes_checked = checked;
            detail =
              Printf.sprintf "%d witness probes over %d classes, identical outputs"
                (List.length witness_probes) checked;
          })

let json_of_outcome o =
  let b = Buffer.create 256 in
  Printf.bprintf b "{\"status\": %S, " (status_string o.status);
  Printf.bprintf b "\"classes_checked\": %d, " o.classes_checked;
  (match o.counterexample with
  | Some p -> Printf.bprintf b "\"counterexample\": %S, " (Packet.Pkt.to_string p)
  | None -> Buffer.add_string b "\"counterexample\": null, ");
  Printf.bprintf b "\"outputs\": [%s], "
    (String.concat ", "
       (List.map (fun p -> Printf.sprintf "%S" (Packet.Pkt.to_string p)) o.outputs));
  Printf.bprintf b "\"detail\": %S}" o.detail;
  Buffer.contents b

let pp_outcome ppf o =
  Fmt.pf ppf "%s (%d classes): %s"
    (String.uppercase_ascii (status_string o.status))
    o.classes_checked o.detail;
  match o.counterexample with
  | Some p ->
      Fmt.pf ppf "@.counterexample: %a" Packet.Pkt.pp p;
      if o.outputs <> [] then
        Fmt.pf ppf "@.emitted       : %a"
          Fmt.(list ~sep:(any ", ") Packet.Pkt.pp)
          o.outputs
  | None -> ()
