(** Stateful network verification over extracted models (paper
    Section 4, "Network Verification", way 2: extending stateless
    verification).

    Each model becomes a network transfer function [T(h, p, s)]: given
    a packet at a port and the NF's current state, it yields the
    packets at the next hop and the successor state. A network is a
    chain/DAG of NF instances; reachability questions ("can a packet
    from A ever reach B?", "only after state s was established?") are
    answered by executing packet sequences through the composed
    transfer functions — stateful by construction, which is exactly
    what HSA-style stateless tools cannot express. *)

open Nfactor

type node = {
  id : string;
  model : Model.t;
  mutable store : Model_interp.store;
  mutable actives : Model_interp.active list option;
      (** config-entry prefilter, computed once per store generation —
          config literals only read cfgVars, so the verdict list stays
          valid until a step rewrites a config binding *)
}

(** A unidirectional service chain of NF instances. *)
type chain = { nodes : node list }

let node id model store = { id; model; store; actives = None }

let node_of_extraction id (ex : Extract.result) =
  node id ex.Extract.model (Model_interp.initial_store ex)

let chain nodes = { nodes }

let reset_chain c ~stores =
  let n_nodes = List.length c.nodes and n_stores = List.length stores in
  if n_nodes <> n_stores then
    invalid_arg
      (Printf.sprintf
         "Network.reset_chain: chain [%s] has %d node(s) but %d store(s) were supplied"
         (String.concat " -> " (List.map (fun n -> n.id) c.nodes))
         n_nodes n_stores);
  List.iter2
    (fun n s ->
      n.store <- s;
      n.actives <- None)
    c.nodes stores

(** One packet through the chain: each NF transforms (possibly into
    several packets, or none = dropped); state updates stick. Returns
    the packets emerging from the last NF and the per-hop trace. *)
type hop = { node_id : string; entered : Packet.Pkt.t list; left : Packet.Pkt.t list }

(* State transitions normally write oisVars only, so a node's actives
   list survives across steps; a step that does rewrite a config
   binding (nothing in the corpus does, but models are data) drops the
   cached list and the next packet recomputes it. *)
let config_changed (m : Model.t) before after =
  before != after
  && List.exists
       (fun v ->
         match (Model_interp.Smap.find_opt v before, Model_interp.Smap.find_opt v after) with
         | Some a, Some b -> not (Symexec.Value.equal a b)
         | None, None -> false
         | _ -> true)
       m.Model.cfg_vars

let node_actives n =
  match n.actives with
  | Some a -> a
  | None ->
      let a = Model_interp.actives n.model n.store in
      n.actives <- Some a;
      a

let push c pkt =
  let rec go pkts nodes trace =
    match nodes with
    | [] -> (pkts, List.rev trace)
    | n :: rest ->
        let outs =
          List.concat_map
            (fun p ->
              let before = n.store in
              let r = Model_interp.step ~actives:(node_actives n) n.model before p in
              n.store <- r.Model_interp.store;
              if config_changed n.model before r.Model_interp.store then
                n.actives <- None;
              r.Model_interp.outputs)
            pkts
        in
        go outs rest ({ node_id = n.id; entered = pkts; left = outs } :: trace)
  in
  go [ pkt ] c.nodes []

(** Drive a packet sequence; returns per-packet chain outputs. *)
let run c pkts = List.map (fun p -> push c p) pkts

(* ------------------------------------------------------------------ *)
(* Reachability queries                                               *)
(* ------------------------------------------------------------------ *)

type reach_result = {
  delivered : Packet.Pkt.t list;  (** packets that traversed the whole chain *)
  trace : hop list;  (** last packet's per-hop record *)
}

(** [reaches c pkt ~dst]: does [pkt], injected now (with the chain's
    current state), emerge from the chain destined to [dst]? *)
let reaches c pkt ~dst =
  let outs, trace = push c pkt in
  let delivered = List.filter (fun (p : Packet.Pkt.t) -> p.Packet.Pkt.ip_dst = dst) outs in
  { delivered; trace }

(** Exhaustive small-space reachability: inject every packet the
    generator produces and report which are delivered anywhere.
    Useful for "no external packet can reach the internal net unless a
    pinhole exists" style invariants. *)
let survey c ~pkts ~violates =
  List.filter_map
    (fun pkt ->
      let outs, trace = push c pkt in
      match List.find_opt (fun out -> violates ~input:pkt ~output:out) outs with
      | Some out -> Some (pkt, out, trace)
      | None -> None)
    pkts

let pp_hop ppf h =
  Fmt.pf ppf "%s: %d in -> %d out" h.node_id (List.length h.entered) (List.length h.left)

let pp_trace ppf t = Fmt.(list ~sep:(any " | ") pp_hop) ppf t
