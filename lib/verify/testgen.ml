(** Model-driven test-packet generation (paper Section 4, "Testing").

    BUZZ generates test traffic from NF models; the paper's point is
    that NFactor supplies those models automatically instead of from
    hand-written domain knowledge. Given an extracted model, this
    module computes a packet sequence that makes every reachable model
    entry fire at least once:

    - the flow-match predicates of an entry are concretized into a
      packet by the constraint solver;
    - state-match predicates are satisfied by {e sequencing}: entries
      that need existing state (an installed NAT mapping, an open
      pinhole, a half-open handshake) become reachable after earlier
      packets installed it, so generation runs in rounds against the
      model's own state. *)

open Nfactor
open Symexec

type coverage = {
  pkts : Packet.Pkt.t list;  (** generated sequence, in order *)
  covered : int list;  (** entry indices fired, in firing order *)
  uncovered : int list;  (** entries never fired *)
}

(* Build a packet from a solver assignment over "<pkt_var>.<field>"
   syms. *)
let packet_of_assignment ?(pkt_var = "pkt") ?(defaults : Packet.Pkt.t option) assignment =
  let prefix = pkt_var ^ "." in
  let plen = String.length prefix in
  let base =
    match defaults with
    | Some p -> p
    | None ->
        Packet.Pkt.make ~ip_src:(Packet.Addr.ip 10 0 0 1) ~ip_dst:(Packet.Addr.ip 3 3 3 3)
          ~sport:40000 ~dport:80 ()
  in
  Solver.Smap.fold
    (fun name v pkt ->
      if String.length name > plen && String.sub name 0 plen = prefix then
        let f = String.sub name plen (String.length name - plen) in
        match v with
        | Value.Int n when Packet.Headers.is_int_field f ->
            (* Clamp into field-plausible ranges. *)
            let n = if f = "sport" || f = "dport" then ((n mod 65536) + 65536) mod 65536 else n land 0xFFFFFFFF in
            Packet.Pkt.set_int pkt f n
        | Value.Str s when Packet.Headers.is_str_field f -> Packet.Pkt.set_str pkt f s
        | _ -> pkt
      else pkt)
    assignment base

(* Substitute config-variable symbols with their concrete extraction-
   time values so the solver works over packet fields only. *)
let resolve_config store (l : Solver.literal) =
  let subst name =
    match Model_interp.Smap.find_opt name store with
    | Some v -> Some v
    | None -> None
  in
  { l with Solver.atom = Sexpr.subst subst l.Solver.atom }

(* Base-packet palette: the solver concretizes the linear atoms
   exactly, but prefix tests ([src & mask == net]) and port-list
   membership are opaque to it — those are satisfied by trying bases
   drawn from the address/port families NF configs use. *)
let base_palette =
  let addrs =
    [
      Packet.Addr.ip 10 0 0 1;
      Packet.Addr.ip 192 168 1 5;
      Packet.Addr.ip 8 8 8 8;
      Packet.Addr.ip 5 5 5 5;
      Packet.Addr.ip 3 3 3 3;
      Packet.Addr.ip 1 1 1 1;
      Packet.Addr.ip 10 9 1 1;
    ]
  in
  let ports = [ 80; 443; 40000; 53; 20000; 10000 ] in
  let flags = [ Packet.Headers.ack; Packet.Headers.syn; Packet.Headers.ack lor Packet.Headers.psh ] in
  (* Payload pool covering common IDS/IPS signature families. *)
  let payloads = [ ""; "SELECT * FROM"; "/bin/sh"; "GET /etc/passwd"; "USER root" ] in
  List.concat_map
    (fun src ->
      List.concat_map
        (fun dst ->
          if src = dst then []
          else
            List.concat_map
              (fun dport ->
                List.concat_map
                  (fun fl ->
                    List.map
                      (fun payload ->
                        Packet.Pkt.make ~ip_src:src ~ip_dst:dst ~sport:40001 ~dport
                          ~tcp_flags:fl ~payload ())
                      payloads)
                  flags)
              ports)
        addrs)
    addrs

(* State-derived candidates (the BUZZ insight): entries guarded by
   state membership want packets matching — or reversing — flow keys
   already installed in the model's state tables. 4-tuple keys yield
   the flow and its reverse; 3-tuple keys (peer, peer-port, local-port,
   as NAT reverse maps use) are completed with destination addresses
   drawn from the store's address-valued configuration. *)
let state_candidates (store : Model_interp.store) =
  let store_addrs =
    Model_interp.Smap.fold
      (fun _ v acc -> match v with Value.Int n when n > 0xFFFF -> n :: acc | _ -> acc)
      store []
  in
  let flag_variants =
    [
      Packet.Headers.ack;
      Packet.Headers.syn;
      Packet.Headers.ack lor Packet.Headers.psh;
      Packet.Headers.fin lor Packet.Headers.ack;
      Packet.Headers.rst;
      0;
    ]
  in
  let with_flags mk = List.map (fun fl -> mk fl) flag_variants in
  Model_interp.Smap.fold
    (fun _name v acc ->
      match v with
      | Value.Dict kvs ->
          List.fold_left
            (fun acc (k, _) ->
              match k with
              | Value.Tuple [ Value.Int a; Value.Int b; Value.Int c; Value.Int d ]
                when Packet.Addr.valid_port b && Packet.Addr.valid_port d ->
                  with_flags (fun fl ->
                      Packet.Pkt.make ~ip_src:a ~sport:b ~ip_dst:c ~dport:d ~tcp_flags:fl ())
                  @ with_flags (fun fl ->
                        Packet.Pkt.make ~ip_src:c ~sport:d ~ip_dst:a ~dport:b ~tcp_flags:fl ())
                  @ acc
              | Value.Tuple [ Value.Int a; Value.Int b; Value.Int c ]
                when Packet.Addr.valid_port b && Packet.Addr.valid_port c ->
                  List.fold_left
                    (fun acc dst ->
                      Packet.Pkt.make ~ip_src:a ~sport:b ~ip_dst:dst ~dport:c () :: acc)
                    acc store_addrs
              | Value.Int a when a > 0xFFFF ->
                  (* Address-keyed state (per-source counters). *)
                  List.fold_left
                    (fun acc dst ->
                      if dst = a then acc
                      else Packet.Pkt.make ~ip_src:a ~sport:40002 ~ip_dst:dst ~dport:80 () :: acc)
                    acc store_addrs
              | _ -> acc)
            acc kvs
      | _ -> acc)
    store []

(** Try to build a packet that makes entry [idx] fire given the current
    [store]. The solver concretizes the entry's linear flow atoms over
    a palette of base packets (covering the opaque prefix/port-set
    atoms) plus packets derived from installed state (for entries
    guarded by membership); every candidate is checked by actually
    stepping the model — generation never trusts the solver's
    incomplete positive answers. *)
let attempt_entry (m : Model.t) store idx =
  let e = List.nth m.Model.entries idx in
  let lits = List.map (resolve_config store) (e.Model.config @ e.Model.flow_match) in
  match Solver.concretize ~default:1 lits with
  | None -> None
  | Some assignment ->
      (* The assignment covers only solver-constrained fields, so it
         overlays safely onto state-derived and palette bases; raw
         variants are kept for entries whose constraints live entirely
         in the opaque atoms. *)
      let try_candidate pkt =
        let r = Model_interp.step m store pkt in
        if r.Model_interp.matched = Some idx then Some (pkt, r.Model_interp.store) else None
      in
      let pkt_var = m.Model.pkt_var in
      let overlay base = packet_of_assignment ~pkt_var ~defaults:base assignment in
      let from_state = state_candidates store in
      let candidates =
        (packet_of_assignment ~pkt_var assignment :: from_state)
        @ List.map overlay from_state @ List.map overlay base_palette @ base_palette
      in
      List.find_map try_candidate candidates

(** Generate a covering packet sequence. [max_rounds] bounds the
    state-installation chains (a round covers every entry currently
    reachable; deeper state needs more rounds). *)
let cover ?(max_rounds = 8) (ex : Extract.result) =
  let m = ex.Extract.model in
  let n = List.length m.Model.entries in
  let store = ref (Model_interp.initial_store ex) in
  let pkts = ref [] and covered = ref [] in
  let uncovered () = List.filter (fun i -> not (List.mem i !covered)) (List.init n Fun.id) in
  let progress = ref true in
  let rounds = ref 0 in
  while !progress && uncovered () <> [] && !rounds < max_rounds do
    progress := false;
    incr rounds;
    List.iter
      (fun idx ->
        match attempt_entry m !store idx with
        | Some (pkt, store') ->
            store := store';
            pkts := pkt :: !pkts;
            covered := !covered @ [ idx ];
            progress := true
        | None -> ())
      (uncovered ())
  done;
  { pkts = List.rev !pkts; covered = !covered; uncovered = uncovered () }

(** Replay generated packets against the original program and check
    every packet produces identical output — compliance testing with
    model-derived traffic. *)
let compliance (ex : Extract.result) (c : coverage) = Equiv.differential ex ~pkts:c.pkts

let pp_coverage ppf c =
  Fmt.pf ppf "%d packet(s) covering entries [%a]; uncovered [%a]" (List.length c.pkts)
    Fmt.(list ~sep:(any "; ") int)
    c.covered
    Fmt.(list ~sep:(any "; ") int)
    c.uncovered
