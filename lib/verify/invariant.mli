(** Named, checkable chain invariants over {!Symreach} classes.

    Each invariant is decided symbolically — the chain's end-to-end
    header classes are intersected with the property — and every
    [Violated] verdict is {e witnessed}: the offending class is
    concretized through the solver ({!Testgen} palette overlays), and
    the candidate packet is replayed through a fresh reference chain
    ({!Network.push}) before the verdict is issued. [Unsat] answers
    from the solver are trusted (sound [Proven]); feasible-looking
    classes that no concrete probe confirms come back [Unknown], never
    [Violated] — the solver's [Sat] is an over-approximation and is
    not allowed to fabricate counterexamples. *)

open Nfactor
open Symexec

type nodes = (string * Model.t * Model_interp.store) list
(** A chain as (id, model, state snapshot), in traversal order — the
    same shape {!Symreach} and {!Chainplan.link} take. *)

(** {1 The property language}

    A property is a conjunction of field comparisons over one packet
    header, e.g. [dport=80 & ip_proto=6]. Values parse as integers,
    dotted quads (for address fields), or bare strings. *)

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type pred = { p_field : string; p_cmp : cmp; p_value : Value.t }

type prop = pred list  (** conjunction *)

val parse_prop : string -> (prop, string) result
(** Parse ["field OP value [& ...]"] with OP one of [= != < <= > >=].
    Fields are validated against the header schema. *)

val pp_prop : Format.formatter -> prop -> unit

val holds_on : prop -> Packet.Pkt.t -> bool
(** Concrete evaluation on a packet. *)

val sym_lits : prop -> Symreach.sym_pkt -> Solver.literal list
(** The property over a symbolic header (input vocabulary). *)

(** {1 Verdicts} *)

type status = Proven | Violated | Unknown

type outcome = {
  status : status;
  counterexample : Packet.Pkt.t option;
      (** validated probe packet, on [Violated] *)
  outputs : Packet.Pkt.t list;
      (** what the reference chain emitted for the counterexample *)
  classes_checked : int;
  detail : string;  (** one-line human explanation *)
}

val never_reaches : nodes -> prop -> outcome
(** No input may emerge from the chain with [prop] holding on the
    output header. [Violated] ships an input packet whose replay
    through the chain emits a matching packet. *)

val state_implies_drop : nodes -> from_:string -> to_:string -> cls:prop -> outcome
(** Under the store snapshots in [nodes], every input entering node
    [from_] that satisfies [cls] dies (is dropped) by the time it
    would leave node [to_]. Checked on the [from_..to_] subchain with
    drop classes tracked.
    @raise Invalid_argument if the ids do not name a forward subchain. *)

val order_equiv : nodes -> nodes -> outcome
(** The two chain orders produce identical end-to-end behavior,
    witness-checked: every symbolic class of either order is
    concretized and the probes replayed through both orders; any
    output mismatch is a counterexample. [Proven] here means every
    witness agreed (classes of both orders covered). *)

val status_string : status -> string
val json_of_outcome : outcome -> string
val pp_outcome : Format.formatter -> outcome -> unit
