(** Header-space style symbolic reachability over extracted models:
    HSA's transfer-function composition extended with the state
    argument of [T(h, p, s)]. A symbolic packet (field map over free
    input-header symbols plus constraints) is pushed through a chain
    of models under concrete state snapshots, yielding the end-to-end
    header equivalence classes. Re-running under different snapshots
    answers state-dependent reachability questions stateless HSA
    cannot pose. *)

open Nfactor
open Symexec

type sym_pkt = (string * Sexpr.t) list
(** Field map over the free input-header symbols ["in.<field>"]. *)

val fresh_pkt : sym_pkt
(** The unconstrained input header. *)

type cls = {
  constraints : Solver.literal list;  (** over the input-header symbols *)
  pkt : sym_pkt;  (** symbolic output header *)
  fired : (string * int) list;  (** (node id, entry index) per hop *)
  alive : bool;  (** [false]: the class died in a dropping entry *)
}

val unconstrained : cls
(** The unconstrained, alive input class. *)

val through_model :
  ?drops:bool ->
  node_id:string ->
  Model.t ->
  Model_interp.store ->
  cls ->
  cls list
(** All feasible refinements of a class through one model. By default
    dropping entries and table misses produce no classes; with
    [~drops:true] dropping entries yield dead ([alive = false])
    classes, so the feasible classes partition the model's covered
    input space. *)

val through_chain :
  ?drops:bool ->
  (string * Model.t * Model_interp.store) list ->
  cls ->
  cls list
(** Dead classes exit the pipeline where they died and ride to the
    result untouched. *)

val classes : ?drops:bool -> (string * Model.t * Model_interp.store) list -> cls list
(** End-to-end classes for unconstrained input headers. *)

val reachable :
  (string * Model.t * Model_interp.store) list ->
  property:(sym_pkt -> Solver.literal list) ->
  cls list
(** Classes whose output can satisfy [property]; empty means the
    property is unreachable under these state snapshots. *)

val concrete_holds : Solver.literal list -> Packet.Pkt.t -> bool
(** Concrete evaluation of instantiated literals (vocabulary
    ["in.<field>"]) on a probe packet; leftover opaque atoms evaluate
    to [false]. *)

val satisfies : cls -> Packet.Pkt.t -> bool
(** Does the probe packet lie in the class ([concrete_holds] on its
    constraints)? *)

val pp_cls : Format.formatter -> cls -> unit
