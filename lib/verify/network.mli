(** Stateful network verification over extracted models (paper
    Section 4): each model is a transfer function [T(h, p, s)];
    a chain composes them; reachability questions are answered by
    executing packet sequences through the composition — stateful by
    construction. *)

open Nfactor

type node = {
  id : string;
  model : Model.t;
  mutable store : Model_interp.store;  (** evolves as packets flow *)
  mutable actives : Model_interp.active list option;
      (** cached {!Model_interp.actives} of [(model, store)]; [None] =
          recompute on next use. Managed by {!push}/{!reset_chain} —
          callers who assign [store] directly must also clear it. *)
}

type chain = { nodes : node list }

val node : string -> Model.t -> Model_interp.store -> node
val node_of_extraction : string -> Extract.result -> node
val chain : node list -> chain

val reset_chain : chain -> stores:Model_interp.store list -> unit
(** Restore per-node state (e.g. between experiments) and invalidate
    the cached config prefilters.
    @raise Invalid_argument (naming the chain's nodes and both counts)
    when [stores] does not match the chain length. *)

type hop = { node_id : string; entered : Packet.Pkt.t list; left : Packet.Pkt.t list }

val push : chain -> Packet.Pkt.t -> Packet.Pkt.t list * hop list
(** One packet through the chain; state updates stick. Returns the
    packets emerging from the last NF and the per-hop trace. *)

val run : chain -> Packet.Pkt.t list -> (Packet.Pkt.t list * hop list) list

type reach_result = { delivered : Packet.Pkt.t list; trace : hop list }

val reaches : chain -> Packet.Pkt.t -> dst:Packet.Addr.ip -> reach_result
(** Does the packet emerge destined to [dst], given current state? *)

val survey :
  chain ->
  pkts:Packet.Pkt.t list ->
  violates:(input:Packet.Pkt.t -> output:Packet.Pkt.t -> bool) ->
  (Packet.Pkt.t * Packet.Pkt.t * hop list) list
(** Inject every probe; report (input, offending output, trace) for
    each that violates the invariant. *)

val pp_hop : Format.formatter -> hop -> unit
val pp_trace : Format.formatter -> hop list -> unit
