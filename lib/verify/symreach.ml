(** Header-space style symbolic reachability over extracted models
    (paper Section 4, "Extending stateless verification": "each rule is
    modeled as a network transfer function T(h, p, s)").

    Where {!Network} executes concrete packets, this module pushes a
    {e symbolic} packet — a field map over free header symbols plus a
    constraint — through a chain of models under {e concrete state
    snapshots}. The result is the set of end-to-end equivalence
    classes: for each feasible combination of entries along the chain,
    the constraint on input headers that selects it and the symbolic
    output header. This is exactly HSA's transfer-function composition
    extended with the state argument: re-running it against different
    state snapshots answers "which packets reach X {e before} vs
    {e after} this state was installed?" — questions stateless HSA
    cannot pose. *)

open Nfactor
open Symexec

type sym_pkt = (string * Sexpr.t) list
(** Field map over the free input-header symbols ["in.<field>"]. *)

let fresh_pkt : sym_pkt =
  List.map
    (fun f -> (f, Sexpr.sym ("in." ^ f)))
    (Packet.Headers.int_fields @ Packet.Headers.str_fields)

type cls = {
  constraints : Solver.literal list;  (** over the input-header symbols *)
  pkt : sym_pkt;  (** symbolic output header *)
  fired : (string * int) list;  (** (node id, entry index) along the chain *)
  alive : bool;  (** [false]: the class died in a dropping entry *)
}

(* Rewrite an entry literal into the input-symbol vocabulary: packet
   symbols become the current field expressions; config and state
   symbols become their concrete store values; membership/read atoms
   against state dictionaries are expanded over the store's (finite)
   concrete contents. *)
let instantiate_expr ?(pkt_var = "pkt") (store : Model_interp.store) (pkt : sym_pkt)
    (e : Sexpr.t) =
  let prefix = pkt_var ^ "." in
  let plen = String.length prefix in
  let lookup name =
    if String.length name > plen && String.sub name 0 plen = prefix then
      List.assoc_opt (String.sub name plen (String.length name - plen)) pkt
    else
      match Model_interp.Smap.find_opt name store with
      | Some (Value.Dict _) | None -> None
      | Some v -> Some (Sexpr.const v)
  in
  let rec expand e =
    let e = Sexpr.subst_sym lookup e in
    match Sexpr.view e with
    | Sexpr.Mem (d, k) -> (
        (* Base dictionary contents are concrete in the store: expand
           membership into a finite disjunction over its keys, after
           replaying the snapshot's writes symbolically. *)
        match concrete_base d with
        | Some kvs ->
            let k = expand k in
            let eqs =
              List.map (fun (key, _) -> Sexpr.mk_bin Nfl.Ast.Eq k (Sexpr.const key)) kvs
            in
            let base_mem =
              List.fold_left (fun acc e -> Sexpr.mk_bin Nfl.Ast.Or acc e) Sexpr.fls eqs
            in
            (* Writes in the snapshot shadow the base. *)
            List.fold_left
              (fun acc (wk, wv) ->
                let hit = Sexpr.mk_bin Nfl.Ast.Eq k (expand wk) in
                match wv with
                | Some _ -> Sexpr.mk_bin Nfl.Ast.Or hit acc
                | None ->
                    Sexpr.mk_bin Nfl.Ast.And (Sexpr.mk_not hit) acc)
              base_mem (List.rev d.Sexpr.writes)
        | None -> Sexpr.mk_mem d (expand k))
    | Sexpr.Dget (d, k) -> Sexpr.mk_dget d (expand k) (* left opaque; solver treats as term *)
    | Sexpr.Bin (op, a, b) -> Sexpr.mk_bin op (expand a) (expand b)
    | Sexpr.Not a -> Sexpr.mk_not (expand a)
    | Sexpr.Neg a -> Sexpr.mk_neg (expand a)
    | Sexpr.Tup es -> Sexpr.mk_tuple (List.map expand es)
    | Sexpr.Lst es -> Sexpr.mk_list (List.map expand es)
    | Sexpr.Get (a, b) -> Sexpr.mk_get (expand a) (expand b)
    | Sexpr.Ufun (f, es) -> Sexpr.mk_ufun f (List.map expand es)
    | Sexpr.Ite (g, a, b) -> Sexpr.mk_ite (expand g) (expand a) (expand b)
    | Sexpr.Const _ | Sexpr.Sym _ -> e
  and concrete_base (d : Sexpr.dict_state) =
    if d.Sexpr.base = Sexpr.empty_base then Some []
    else
      match Model_interp.Smap.find_opt d.Sexpr.base store with
      | Some (Value.Dict kvs) -> Some kvs
      | _ -> None
  in
  expand e

let instantiate_literal ?pkt_var store pkt (l : Solver.literal) =
  Solver.lit (instantiate_expr ?pkt_var store pkt l.Solver.atom) l.Solver.positive

(* Apply a forward snapshot: each output field expression, instantiated
   into the input vocabulary. *)
let apply_snapshot ?pkt_var store pkt snapshot : sym_pkt =
  List.map (fun (f, e) -> (f, instantiate_expr ?pkt_var store pkt e)) snapshot

(** Push a symbolic packet through one model under a concrete state
    snapshot: all feasible (entry, refined class) pairs. By default
    dropping entries and the table-miss default yield no output
    classes; [drops] keeps dropping-entry classes as dead ([alive =
    false]) classes, so the result partitions the model's entry table
    (entries are mutually exclusive path conditions covering every
    program execution). *)
let through_model ?(drops = false) ~node_id (m : Model.t) (store : Model_interp.store) (c : cls) : cls list =
  (* Entries are mutually exclusive path conditions, so each feasible
     one refines the class independently. *)
  List.concat
    (List.mapi
       (fun idx (e : Model.entry) ->
         let lits =
           List.map
             (instantiate_literal ~pkt_var:m.Model.pkt_var store c.pkt)
             (e.Model.config @ e.Model.flow_match @ e.Model.state_match
            @ e.Model.residual_match)
           (* trivially-true literals (satisfied config predicates,
              vacuous state expansions) only add noise *)
           |> List.filter (fun (l : Solver.literal) ->
                  match Sexpr.view l.Solver.atom with
                  | Sexpr.Const (Value.Bool b) -> b <> l.Solver.positive
                  | _ -> true)
         in
         let combined = c.constraints @ lits in
         if Solver.check combined = Solver.Unsat then []
         else
           match e.Model.pkt_action with
           | Model.Drop ->
               if drops then
                 [
                   {
                     constraints = combined;
                     pkt = c.pkt;
                     fired = c.fired @ [ (node_id, idx) ];
                     alive = false;
                   };
                 ]
               else []
           | Model.Forward snaps ->
               List.map
                 (fun snap ->
                   {
                     constraints = combined;
                     pkt = apply_snapshot ~pkt_var:m.Model.pkt_var store c.pkt snap;
                     fired = c.fired @ [ (node_id, idx) ];
                     alive = c.alive;
                   })
                 snaps)
       m.Model.entries)

(** Push through a chain of (id, model, state snapshot). Dead classes
    (kept by [drops]) exit the pipeline where they died and ride to
    the result untouched. *)
let through_chain ?drops nodes (c : cls) =
  List.fold_left
    (fun classes (node_id, m, store) ->
      List.concat_map
        (fun c ->
          if c.alive then through_model ?drops ~node_id m store c else [ c ])
        classes)
    [ c ] nodes

let unconstrained = { constraints = []; pkt = fresh_pkt; fired = []; alive = true }

(** All end-to-end classes for unconstrained input headers. *)
let classes ?drops nodes = through_chain ?drops nodes unconstrained

(** Can any input reach the end of the chain with [property] holding
    on the output header? Returns the witnessing classes. *)
let reachable nodes ~property =
  List.filter
    (fun c ->
      let prop_lits = property c.pkt in
      Solver.check (c.constraints @ prop_lits) <> Solver.Unsat)
    (classes nodes)

(** Concrete evaluation of instantiated literals (vocabulary
    ["in.<field>"]) on a probe packet. Leftover opaque atoms (state
    reads the expansion could not discharge) evaluate to [false] like
    the reference interpreter's unresolved reads. *)
let concrete_holds lits pkt =
  List.for_all
    (fun l -> Model_interp.literal_holds ~pkt_var:"in" Model_interp.Smap.empty pkt l)
    lits

let satisfies (c : cls) pkt = concrete_holds c.constraints pkt

let pp_cls ppf c =
  Fmt.pf ppf "fired: %a%s@."
    Fmt.(list ~sep:(any " -> ") (fun ppf (n, i) -> Fmt.pf ppf "%s#%d" n i))
    c.fired
    (if c.alive then "" else " (dropped)");
  Fmt.pf ppf "when : %a@." Model.pp_literals c.constraints;
  let rewrites =
    List.filter (fun (f, e) -> not (Sexpr.equal e (Sexpr.sym ("in." ^ f)))) c.pkt
  in
  Fmt.pf ppf "out  : %a@."
    Fmt.(list ~sep:(any ", ") (fun ppf (f, e) -> Fmt.pf ppf "%s:=%a" f Sexpr.pp e))
    rewrites
