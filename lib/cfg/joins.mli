(** Join-point identification on a (sliced) block: where may the
    worklist explorer merge the two arms of a branch back into one
    state? *)

type t

val of_block : Nfl.Ast.block -> t
(** Analyze a block (typically the sliced packet-loop body). *)

val join_of : t -> int -> Cfg.node option
(** For the sid of an [If] statement: the control location where its
    arms rejoin — the branch node's immediate post-dominator — when
    that is a real statement. [None] when the sid is not a two-way
    [If] branch in the block, or when the arms never rejoin before
    [Exit] (an arm returns, or the branch ends the block). *)

val in_loop : t -> int -> bool
(** Whether the statement sits (at any depth) inside a [while] or
    [for] body. The explorer unrolls loops, so occurrences of such a
    branch in different iterations are distinct control locations and
    must not be merged. *)

val mergeable : t -> int -> bool
(** [join_of t sid <> None && not (in_loop t sid)] — the structural
    gate the explorer applies before scheduling a fork's arms into a
    merge region. *)

val chain_len : t -> int -> int
(** Length of the maximal {e diamond chain} through this branch:
    diamond A is followed by diamond B when A's join point is B itself,
    the exact shape whose naive path count doubles per link. Nested
    branches (elif ladders) share a join point and therefore sit on
    separate short chains, matching their linear path count. [0] when
    the sid is not a mergeable diamond. Merging only pays where it
    changes asymptotics, so extraction's policy requires a minimum
    chain length. *)
