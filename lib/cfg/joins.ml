(* Join-point identification for the worklist explorer's path merging.

   A branch statement has a *join point* when both arms rejoin at a
   real program point: the branch node's immediate post-dominator is a
   [Stmt] node. When the immediate post-dominator is [Exit] (an arm
   returns, or the branch is the last statement), the arms never meet
   again inside the block and the explorer keeps them as separate
   paths. Branches nested inside loop bodies are additionally reported
   through [in_loop]: the explorer unrolls loops, so states at the
   "same" branch in different unroll iterations are *not* at the same
   control location, and merging there would conflate first-match
   table semantics (see the acl corpus member) with straight-line
   classifier chains. *)

type t = {
  ipdom : Cfg.node Cfg.Nmap.t;
  branch_sids : (int, unit) Hashtbl.t;
  loop_sids : (int, unit) Hashtbl.t;
  mutable chains : (int, int) Hashtbl.t option;  (** sid -> diamond-chain length (lazy) *)
}

let rec mark_loop_body ~in_loop t (b : Nfl.Ast.block) =
  List.iter
    (fun (s : Nfl.Ast.stmt) ->
      if in_loop then Hashtbl.replace t.loop_sids s.Nfl.Ast.sid ();
      match s.Nfl.Ast.kind with
      | Nfl.Ast.If (_, bt, bf) ->
          mark_loop_body ~in_loop t bt;
          mark_loop_body ~in_loop t bf
      | Nfl.Ast.While (_, body) | Nfl.Ast.For_in (_, _, body) ->
          mark_loop_body ~in_loop:true t body
      | _ -> ())
    b

let of_block (b : Nfl.Ast.block) =
  let g = Cfg.of_block b in
  let pdom = Dominance.post_dominators g in
  let ipdom = Dominance.immediate_all pdom g in
  let t =
    {
      ipdom;
      branch_sids = Hashtbl.create 32;
      loop_sids = Hashtbl.create 32;
      chains = None;
    }
  in
  List.iter
    (fun n ->
      match (n, Cfg.stmt_of g n) with
      | Cfg.Stmt sid, Some { Nfl.Ast.kind = Nfl.Ast.If _; _ } ->
          Hashtbl.replace t.branch_sids sid ()
      | _ -> ())
    (Cfg.branches g);
  mark_loop_body ~in_loop:false t b;
  t

let in_loop t sid = Hashtbl.mem t.loop_sids sid

let join_of t sid =
  if not (Hashtbl.mem t.branch_sids sid) then None
  else
    match Cfg.Nmap.find_opt (Cfg.Stmt sid) t.ipdom with
    | Some (Cfg.Stmt j) -> Some (Cfg.Stmt j)
    | Some (Cfg.Entry | Cfg.Exit) | None -> None

let mergeable t sid = in_loop t sid = false && join_of t sid <> None

(* Diamond chains: diamond A is followed by diamond B when A's join
   point IS B — the exact shape whose path count doubles per link
   (sequential two-way branches). Chain length of a diamond is the
   number of diamonds on its maximal such chain; nested diamonds
   (elif ladders) share a join and so sit on separate short chains,
   matching their linear path count. *)
let compute_chains t =
  let nexts = Hashtbl.create 16 in
  Hashtbl.iter
    (fun sid () ->
      if not (in_loop t sid) then
        match join_of t sid with
        | Some (Cfg.Stmt j) when mergeable t j -> Hashtbl.replace nexts sid j
        | _ -> ())
    t.branch_sids;
  (* forward count: this diamond plus the diamonds after it *)
  let fwd = Hashtbl.create 16 in
  let rec f sid =
    match Hashtbl.find_opt fwd sid with
    | Some v -> v
    | None ->
        let v = 1 + (match Hashtbl.find_opt nexts sid with Some j -> f j | None -> 0) in
        Hashtbl.replace fwd sid v;
        v
  in
  (* backward count: diamonds strictly before this one on its chain *)
  let bwd = Hashtbl.create 16 in
  let pred_of = Hashtbl.create 16 in
  Hashtbl.iter (fun sid j -> Hashtbl.add pred_of j sid) nexts;
  let rec b sid =
    match Hashtbl.find_opt bwd sid with
    | Some v -> v
    | None ->
        let v =
          List.fold_left
            (fun acc p -> max acc (1 + b p))
            0 (Hashtbl.find_all pred_of sid)
        in
        Hashtbl.replace bwd sid v;
        v
  in
  let chains = Hashtbl.create 16 in
  Hashtbl.iter
    (fun sid () -> if mergeable t sid then Hashtbl.replace chains sid (b sid + f sid))
    t.branch_sids;
  chains

let chain_len t sid =
  let chains =
    match t.chains with
    | Some c -> c
    | None ->
        let c = compute_chains t in
        t.chains <- Some c;
        c
  in
  Option.value ~default:0 (Hashtbl.find_opt chains sid)
