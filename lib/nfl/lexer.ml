(** Hand-written lexer for NFL.

    Notable conveniences for NF source: dotted-quad IPv4 literals
    ([3.3.3.3]) lex directly to their integer value (the language has no
    floats, so the syntax is unambiguous), and [#] starts a line
    comment, as in the paper's Figure-1 listing. *)

type token =
  | INT of int
  | STR of string
  | ID of string
  | KW_true
  | KW_false
  | KW_def
  | KW_main
  | KW_if
  | KW_else
  | KW_while
  | KW_for
  | KW_in
  | KW_not
  | KW_and
  | KW_or
  | KW_return
  | KW_del
  | KW_pass
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | DOT
  | ASSIGN
  | PLUS_EQ
  | MINUS_EQ
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | AMPAMP
  | PIPEPIPE
  | SHL
  | SHR
  | BANG
  | EOF

let token_to_string = function
  | INT n -> string_of_int n
  | STR s -> Printf.sprintf "%S" s
  | ID s -> s
  | KW_true -> "true"
  | KW_false -> "false"
  | KW_def -> "def"
  | KW_main -> "main"
  | KW_if -> "if"
  | KW_else -> "else"
  | KW_while -> "while"
  | KW_for -> "for"
  | KW_in -> "in"
  | KW_not -> "not"
  | KW_and -> "and"
  | KW_or -> "or"
  | KW_return -> "return"
  | KW_del -> "del"
  | KW_pass -> "pass"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | COMMA -> ","
  | SEMI -> ";"
  | DOT -> "."
  | ASSIGN -> "="
  | PLUS_EQ -> "+="
  | MINUS_EQ -> "-="
  | EQ -> "=="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | PIPE -> "|"
  | AMPAMP -> "&&"
  | PIPEPIPE -> "||"
  | SHL -> "<<"
  | SHR -> ">>"
  | BANG -> "!"
  | EOF -> "<eof>"

exception Error of string * Ast.pos

type state = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let make src = { src; pos = 0; line = 1; col = 1 }
let cur_pos st : Ast.pos = { line = st.line; col = st.col }
let at_end st = st.pos >= String.length st.src
let peek st = if at_end st then '\000' else st.src.[st.pos]
let peek2 st = if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  if not (at_end st) then begin
    if st.src.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.col <- 1
    end
    else st.col <- st.col + 1;
    st.pos <- st.pos + 1
  end

let is_digit c = c >= '0' && c <= '9'
let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_id_char c = is_id_start c || is_digit c

let rec skip_ws st =
  match peek st with
  | ' ' | '\t' | '\r' | '\n' ->
      advance st;
      skip_ws st
  | '#' ->
      while (not (at_end st)) && peek st <> '\n' do
        advance st
      done;
      skip_ws st
  | _ -> ()

let lex_number st =
  let read_digits () =
    let n = ref 0 in
    while is_digit (peek st) do
      n := (!n * 10) + (Char.code (peek st) - Char.code '0');
      advance st
    done;
    !n
  in
  let n1 = read_digits () in
  (* Dotted quad: number '.' digit can only be an IP literal. *)
  if peek st = '.' && is_digit (peek2 st) then begin
    advance st;
    let n2 = read_digits () in
    if not (peek st = '.' && is_digit (peek2 st)) then
      raise (Error ("malformed IP literal", cur_pos st));
    advance st;
    let n3 = read_digits () in
    if not (peek st = '.' && is_digit (peek2 st)) then
      raise (Error ("malformed IP literal", cur_pos st));
    advance st;
    let n4 = read_digits () in
    if n1 > 255 || n2 > 255 || n3 > 255 || n4 > 255 then
      raise (Error ("IP octet out of range", cur_pos st));
    INT (Packet.Addr.ip n1 n2 n3 n4)
  end
  else INT n1

let lex_hex st =
  (* Called after "0x" has been recognized; leading 0 consumed. *)
  advance st;
  (* consume 'x' *)
  let b = Buffer.create 8 in
  let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') in
  if not (is_hex (peek st)) then raise (Error ("malformed hex literal", cur_pos st));
  while is_hex (peek st) do
    Buffer.add_char b (peek st);
    advance st
  done;
  INT (int_of_string ("0x" ^ Buffer.contents b))

let lex_string st =
  advance st;
  (* opening quote *)
  let b = Buffer.create 16 in
  let rec go () =
    if at_end st then raise (Error ("unterminated string", cur_pos st))
    else
      match peek st with
      | '"' -> advance st
      | '\\' ->
          advance st;
          let c =
            match peek st with
            | 'n' -> '\n'
            | 't' -> '\t'
            | '\\' -> '\\'
            | '"' -> '"'
            | '0' -> '\000'
            | c -> c
          in
          Buffer.add_char b c;
          advance st;
          go ()
      | c ->
          Buffer.add_char b c;
          advance st;
          go ()
  in
  go ();
  STR (Buffer.contents b)

(* Identifiers are the most common token, so this is the lexer's hot
   path: slice the source directly (no per-char buffering) and resolve
   keywords through a compiled string match instead of an assoc scan. *)
let lex_ident st =
  let start = st.pos in
  while is_id_char (peek st) do
    advance st
  done;
  match String.sub st.src start (st.pos - start) with
  | "true" -> KW_true
  | "false" -> KW_false
  | "def" -> KW_def
  | "main" -> KW_main
  | "if" -> KW_if
  | "else" -> KW_else
  | "while" -> KW_while
  | "for" -> KW_for
  | "in" -> KW_in
  | "not" -> KW_not
  | "and" -> KW_and
  | "or" -> KW_or
  | "return" -> KW_return
  | "del" -> KW_del
  | "pass" -> KW_pass
  | s -> ID s

(** Next token plus its start position. *)
let next st =
  skip_ws st;
  let pos = cur_pos st in
  let two t =
    advance st;
    advance st;
    t
  in
  let one t =
    advance st;
    t
  in
  let tok =
    if at_end st then EOF
    else
      match peek st with
      | '0' when peek2 st = 'x' || peek2 st = 'X' ->
          advance st;
          lex_hex st
      | c when is_digit c -> lex_number st
      | c when is_id_start c -> lex_ident st
      | '"' -> lex_string st
      | '(' -> one LPAREN
      | ')' -> one RPAREN
      | '[' -> one LBRACKET
      | ']' -> one RBRACKET
      | '{' -> one LBRACE
      | '}' -> one RBRACE
      | ',' -> one COMMA
      | ';' -> one SEMI
      | '.' -> one DOT
      | '+' -> if peek2 st = '=' then two PLUS_EQ else one PLUS
      | '-' -> if peek2 st = '=' then two MINUS_EQ else one MINUS
      | '*' -> one STAR
      | '/' -> one SLASH
      | '%' -> one PERCENT
      | '=' -> if peek2 st = '=' then two EQ else one ASSIGN
      | '!' -> if peek2 st = '=' then two NE else one BANG
      | '<' -> if peek2 st = '=' then two LE else if peek2 st = '<' then two SHL else one LT
      | '>' -> if peek2 st = '=' then two GE else if peek2 st = '>' then two SHR else one GT
      | '&' -> if peek2 st = '&' then two AMPAMP else one AMP
      | '|' -> if peek2 st = '|' then two PIPEPIPE else one PIPE
      | c -> raise (Error (Printf.sprintf "unexpected character %C" c, pos))
  in
  (tok, pos)

(** Lex a whole source string. *)
let tokens src =
  let st = make src in
  let rec go acc =
    let t, p = next st in
    if t = EOF then List.rev ((t, p) :: acc) else go ((t, p) :: acc)
  in
  go []
