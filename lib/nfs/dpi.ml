(** DPI-style sequential signature matcher — corpus NF in the callback
    structure (Fig. 4b), added as the worklist explorer's exponential
    stress subject.

    Each signature is an independent header/flag heuristic that adds
    its weight to a per-packet suspicion score; the packet is dropped
    when the accumulated score reaches the configured threshold,
    mirroring the score-based detection of payload-inspection engines.
    Because every test is a one-sided diamond that rejoins at the next
    test, the naive path count is [2^12] before the final threshold
    branch — a recursive path enumerator must walk all of them (and
    overflows the default path budget), while join-point merging folds
    the score into nested [ite] terms and visits the chain in a linear
    number of states. *)

let name = "dpi"

let source =
  {|# DPI-lite: per-packet signature scorecard (callback structure).
# Configuration
threshold = 8;
# Log state
flagged = 0;
passed = 0;

def dpi_callback(pkt) {
  score = 0;
  # Signature chain: twelve pairwise-independent tests (distinct
  # fields or distinct bits), so every combination is feasible and the
  # naive path count is exactly 2^12 before the verdict.
  if (pkt.ip_proto == 6) { score = score + 1; }
  if (pkt.ip_len > 1200) { score = score + 2; }
  if (pkt.ip_ttl < 16) { score = score + 2; }
  if (pkt.sport > 49151) { score = score + 1; }
  if (pkt.dport == 445) { score = score + 4; }
  if ((pkt.tcp_flags & 2) != 0) { score = score + 1; }
  if ((pkt.tcp_flags & 16) != 0) { score = score + 3; }
  if ((pkt.seq & 1) != 0) { score = score + 2; }
  if ((pkt.seq & 4096) != 0) { score = score + 1; }
  if (pkt.ack == 0) { score = score + 2; }
  if ((pkt.ip_src & 255.0.0.0) == 10.0.0.0) { score = score + 3; }
  if ((pkt.ip_dst & 255.255.0.0) == 192.168.0.0) { score = score + 4; }
  if (score >= threshold) {
    flagged = flagged + 1;
  } else {
    passed = passed + 1;
    send(pkt);
  }
}

main {
  sniff(dpi_callback);
}
|}

let program () = Nfl.Parser.program source
