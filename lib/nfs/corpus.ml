(** Registry of the NF corpus.

    [snort] and [balance] are the paper's two evaluation subjects;
    [lb] is the Figure-1 running example; the rest extend the corpus
    across the remaining code structures and NF types (the paper's
    future work: "test it on more open source NFs"). *)

type entry = {
  name : string;
  description : string;
  structure : string;  (** code structure per Figure 4 *)
  in_paper : bool;  (** evaluated in the paper's Table 2 *)
  source : unit -> string;
  program : unit -> Nfl.Ast.program;
}

let all =
  [
    {
      name = Lb.name;
      description = "Figure-1 layer-4 load balancer (running example)";
      structure = "callback";
      in_paper = true (* as the running example *);
      source = (fun () -> Lb.source);
      program = Lb.program;
    };
    {
      name = Balance.name;
      description = "balance 3.5: accept/fork TCP relay load balancer";
      structure = "nested-loop";
      in_paper = true;
      source = (fun () -> Balance.source);
      program = Balance.program;
    };
    {
      name = Snort_lite.name;
      description = "snort 1.0: rule-driven IDS run as a tap";
      structure = "callback";
      in_paper = true;
      source = Snort_lite.source;
      program = Snort_lite.program;
    };
    {
      name = Nat.name;
      description = "source NAT (masquerade)";
      structure = "single-loop";
      in_paper = false;
      source = (fun () -> Nat.source);
      program = Nat.program;
    };
    {
      name = Firewall.name;
      description = "stateful firewall with pinholes and service ports";
      structure = "callback";
      in_paper = false;
      source = (fun () -> Firewall.source);
      program = Firewall.program;
    };
    {
      name = Firewall_redundant.name;
      description =
        "deliberately-redundant firewall variant (dead, widenable and \
         mergeable rules) — the analyzer's minimization target";
      structure = "callback";
      in_paper = false;
      source = (fun () -> Firewall_redundant.source);
      program = Firewall_redundant.program;
    };
    {
      name = Ratelimiter.name;
      description = "per-source packet-count rate limiter";
      structure = "consumer-producer";
      in_paper = false;
      source = (fun () -> Ratelimiter.source);
      program = Ratelimiter.program;
    };
    {
      name = Ips.name;
      description = "inline IPS: signature hits drop and blocklist the source";
      structure = "callback";
      in_paper = false;
      source = (fun () -> Ips.source);
      program = Ips.program;
    };
    {
      name = Synguard.name;
      description = "SYN-flood guard with per-source half-open budget";
      structure = "single-loop";
      in_paper = false;
      source = (fun () -> Synguard.source);
      program = Synguard.program;
    };
    {
      name = Acl.name;
      description = "first-match ACL filter (rule loop is forwarding logic)";
      structure = "single-loop";
      in_paper = false;
      source = (fun () -> Acl.source);
      program = Acl.program;
    };
    {
      name = Mirror.name;
      description = "SPAN-style mirror: duplicates selected traffic to a collector";
      structure = "single-loop";
      in_paper = false;
      source = (fun () -> Mirror.source);
      program = Mirror.program;
    };
    {
      name = Portknock.name;
      description = "port-knocking gate (multi-step per-source state machine)";
      structure = "single-loop";
      in_paper = false;
      source = (fun () -> Portknock.source);
      program = Portknock.program;
    };
    {
      name = Rangefw.name;
      description = "range/prefix classifier firewall (six-diamond scoring chain)";
      structure = "callback";
      in_paper = false;
      source = (fun () -> Rangefw.source);
      program = Rangefw.program;
    };
    {
      name = Dpi.name;
      description =
        "DPI-lite signature scorecard: twelve sequential diamonds, 2^12 \
         naive paths — the path-merging stress subject";
      structure = "callback";
      in_paper = false;
      source = (fun () -> Dpi.source);
      program = Dpi.program;
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let names = List.map (fun e -> e.name) all

(** Non-comment, non-blank source lines — the paper's "LoC" metric. *)
let loc_of_source src =
  String.split_on_char '\n' src
  |> List.filter (fun line ->
         let t = String.trim line in
         t <> "" && t.[0] <> '#')
  |> List.length
