(** Corpus NF: see the implementation's module comment for what this
    network function does and why it is in the corpus. *)

val name : string

val source : string
(** NFL source text. *)

val program : unit -> Nfl.Ast.program
(** Parsed (but not canonicalized) program. *)
