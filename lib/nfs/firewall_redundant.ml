(** Deliberately-redundant stateful firewall variant — the analyzer's
    non-trivial minimization target.

    A vendor-patched cousin of {!Firewall} that accumulated cruft: an
    even/odd port split whose branches act identically (mergeable), a
    DMZ port test duplicated at two bit-mask widths (widenable into
    one union match), and a leftover audit branch under a mask test
    that contradicts the path that reaches it (statically dead — but
    only visible to bit-level reasoning, since the solver treats [&]
    atoms as opaque booleans). Synthesizes to 8 entries; the analyzer
    proves 2 dead and shrinks the rest to 4. *)

let name = "firewall_redundant"

let source =
  {|# Redundant stateful firewall (callback structure).
# Configuration
inside_net = 192.168.0.0;
inside_mask = 255.255.0.0;
# Output-impacting state
conn_table = {};

def fwr_callback(pkt) {
  si = pkt.ip_src;
  di = pkt.ip_dst;
  sp = pkt.sport;
  dp = pkt.dport;
  low = dp & 7;
  if ((si & inside_mask) == inside_net) {
    # Outbound: open the pinhole and pass.
    conn_table[(si, sp, di, dp)] = 1;
    # Leftover even/odd split from a withdrawn rate-limit patch:
    # both arms forward identically.
    if ((dp & 1) == 0) {
      send(pkt);
    } else {
      send(pkt);
    }
  } else {
    rkey = (di, dp, si, sp);
    if (rkey in conn_table) {
      send(pkt);
    } else {
      # DMZ service test, duplicated at two mask widths by a merge
      # gone wrong: low == 2 and (dp & 3) == 2 overlap heavily.
      if (low == 2) {
        send(pkt);
      } else {
        if ((dp & 3) == 2) {
          send(pkt);
        } else {
          # Dead audit branch: (dp & 15) == 2 forces (dp & 7) == 2,
          # which the path already ruled out.
          if ((dp & 15) == 2) {
            if ((si, sp) in conn_table) {
              send(pkt);
            }
          }
        }
      }
    }
  }
}

main {
  sniff(fwr_callback);
}
|}

let program () = Nfl.Parser.program source
