(** Range/prefix-classifier firewall — corpus NF in the callback
    structure (Fig. 4b).

    A straight-line chain of range and prefix tests scores each packet
    into a trust class; packets that clear the configured class floor
    are forwarded, the rest are dropped. The classifier chain is six
    sequential one-sided diamonds over literal ranges and prefixes —
    the shape the worklist explorer merges at join points — while the
    final verdict splits on configuration ([min_class]) and therefore
    stays a separate model entry per configuration region. *)

let name = "rangefw"

let source =
  {|# Range/prefix classifier firewall (callback structure).
# Configuration
min_class = 4;
# Log state
passed = 0;
dropped = 0;

def rangefw_callback(pkt) {
  cls = 0;
  # Classifier chain: literal ranges and prefixes only, one class
  # point each; the diamonds rejoin immediately so the explorer can
  # fold the class into ite terms instead of enumerating 2^6 paths.
  if ((pkt.ip_src & 255.0.0.0) == 10.0.0.0) { cls = cls + 1; }
  if ((pkt.ip_dst & 255.255.0.0) == 192.168.0.0) { cls = cls + 1; }
  if (pkt.ip_ttl >= 32) { cls = cls + 1; }
  if (pkt.ip_len <= 1500) { cls = cls + 1; }
  if (pkt.sport >= 1024) { cls = cls + 1; }
  if (pkt.dport < 1024) { cls = cls + 1; }
  if (cls >= min_class) {
    passed = passed + 1;
    send(pkt);
  } else {
    dropped = dropped + 1;
  }
}

main {
  sniff(rangefw_callback);
}
|}

let program () = Nfl.Parser.program source
