(** The static implication lattice: a solver-free, sound entailment
    check over the classified literals model entries are made of.

    The solver ({!Symexec.Solver}) decides linear-arithmetic shapes but
    treats bit-masks, list membership and dictionary atoms as opaque
    free booleans, so exploration keeps paths whose conditions relate
    only through those shapes — exactly the entries a table-minimizer
    cares about. This module closes that gap with a small fixed rule
    set, every rule a valid implication, so [Unsat]-style answers here
    are {e proofs}:

    - per-term intervals and disequality sets for comparisons of a
      (hash-consed) term against integer constants, with small
      intervals refuted when their disequalities cover them;
    - intrinsic ranges and subset propagation for bit-mask terms:
      [x & m] lies in [[0, m]] for constant [m >= 0] (sound for every
      OCaml int, negatives included), a fixed [x & m1 = r] forces
      [x & m2 = r land m2] whenever [m2]'s bits are a subset of
      [m1]'s, and a fixed value with bits outside its own mask is
      absurd;
    - opaque atoms as free booleans with per-conjunction consistency
      (the solver's own discipline);
    - bounded case-splitting over [Or]/[And] shapes (list-membership
      literals are [Or]-trees of equalities).

    Anything not covered stays opaque: the lattice can fail to prove,
    never prove wrongly. *)

open Symexec

val negate : Solver.literal -> Solver.literal
(** Same atom, flipped polarity. *)

val unsat : ?depth:int -> Solver.literal list -> bool
(** [true] only when the conjunction is {e proven} unsatisfiable by
    the rules above. [depth] (default 2) bounds disjunction splitting. *)

val implies : ?depth:int -> Solver.literal list -> Solver.literal -> bool
(** [implies a l]: every assignment satisfying the conjunction [a]
    satisfies [l] — decided as [unsat (a @ [negate l])]. *)

val subsumes : Solver.literal list -> Solver.literal list -> bool
(** [subsumes a b]: conjunction [a] implies conjunction [b], i.e. the
    match set of [a] is contained in the match set of [b]. *)

val proven_unsat : Solver.literal list -> bool
(** The lattice, then the solver: [unsat lits] or
    [Solver.check lits = Unsat]. Both sides trust only refutations, so
    this is still a proof. *)
