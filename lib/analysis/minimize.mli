(** Layer-2 table minimization: a superoptimizing rewriter over model
    entry tables.

    Four rewrite rules, each individually {e proof-validated} by the
    {!Imply} lattice (with the solver as fallback — refutations only)
    before it is applied:

    - delete entries whose match is unsatisfiable;
    - delete entries fully shadowed by an earlier entry;
    - widen matches by dropping literals implied by the rest of the
      entry, or whose excluded packets are proven to fire at an
      earlier entry anyway;
    - merge adjacent entries with identical actions whose matches
      differ in a single literal, replacing the pair with one entry
      whose match is the exact union (wildcard when the union covers
      the common region, otherwise one interval/disjunction literal).

    Rewrites compose — each preserves the table's exact semantics at
    the step it is applied — and the loop runs to a fixpoint. Widening
    is speculative: it is kept only when it buys strictly fewer
    entries (the fixpoint runs with and without the rule and the
    smaller table wins), because a dropped literal is usually the
    cheap early-exit check and losing it slows entry evaluation. The
    result is then gated end-to-end by
    {!Nfactor.Equiv.model_differential} over a palette + random +
    flow-churn packet corpus: when the replay diverges (it never
    should), the {e original} model is returned with
    [verified = false] rather than an unproven rewrite. *)

open Nfactor

type outcome = {
  original : Model.t;
  minimized : Model.t;
  deleted_dead : int;  (** entries removed as unsatisfiable *)
  deleted_shadowed : int;  (** entries removed as fully shadowed *)
  merged : int;  (** adjacent-pair merges applied *)
  widened_literals : int;  (** match literals dropped by widening *)
  iterations : int;  (** fixpoint rounds until quiescence *)
  verified : bool;  (** the differential gate passed *)
  trials : int;  (** packets replayed by the gate *)
}

val default_pkts : unit -> Packet.Pkt.t list
(** The gate corpus: testgen palette + 2000 random packets + flow
    churn streams. *)

val run :
  ?pkts:Packet.Pkt.t list -> store:Model_interp.store -> Model.t -> outcome
(** Minimize under the given initial store (used only by the final
    differential gate — every rewrite is proven symbolically). The
    output never has more entries than the input. *)

val reduction : outcome -> float
(** Fractional entry-count reduction, [0.0] when the input was empty. *)
