open Symexec

let negate (l : Solver.literal) = { l with Solver.positive = not l.Solver.positive }

(* ------------------------------------------------------------------ *)
(* Literal normalization                                              *)
(* ------------------------------------------------------------------ *)

type rel = Req | Rne | Rlt | Rle | Rgt | Rge

let rel_of_binop = function
  | Nfl.Ast.Eq -> Req
  | Nfl.Ast.Ne -> Rne
  | Nfl.Ast.Lt -> Rlt
  | Nfl.Ast.Le -> Rle
  | Nfl.Ast.Gt -> Rgt
  | Nfl.Ast.Ge -> Rge
  | _ -> invalid_arg "rel_of_binop"

let negate_rel = function
  | Req -> Rne
  | Rne -> Req
  | Rlt -> Rge
  | Rge -> Rlt
  | Rle -> Rgt
  | Rgt -> Rle

(* [c REL t]  ≡  [t (mirror REL) c] *)
let mirror_rel = function
  | Req -> Req
  | Rne -> Rne
  | Rlt -> Rgt
  | Rgt -> Rlt
  | Rle -> Rge
  | Rge -> Rle

(* One conjunct of a normalized literal. *)
type clit =
  | Ccmp of Sexpr.t * rel * int  (** term REL integer constant *)
  | Cbool of int * bool  (** opaque atom id, forced truth value *)
  | Cdisj of Solver.literal list  (** at least one branch must hold *)
  | Cfalse
  | Ctrue

let const_int (e : Sexpr.t) =
  match Sexpr.view e with Sexpr.Const (Value.Int n) -> Some n | _ -> None

let rec flatten_or (e : Sexpr.t) acc =
  match Sexpr.view e with
  | Sexpr.Bin (Nfl.Ast.Or, a, b) -> flatten_or a (flatten_or b acc)
  | Sexpr.Const (Value.Bool false) | Sexpr.Const (Value.Int 0) -> acc
  | _ -> e :: acc

let rec flatten_and (e : Sexpr.t) acc =
  match Sexpr.view e with
  | Sexpr.Bin (Nfl.Ast.And, a, b) -> flatten_and a (flatten_and b acc)
  | Sexpr.Const (Value.Bool true) -> acc
  | _ -> e :: acc

let rec norm (l : Solver.literal) : clit list =
  let atom = l.Solver.atom and pos = l.Solver.positive in
  match Sexpr.view atom with
  | Sexpr.Const v -> (
      match v with
      | Value.Bool b -> if b = pos then [ Ctrue ] else [ Cfalse ]
      | Value.Int n -> if (n <> 0) = pos then [ Ctrue ] else [ Cfalse ]
      | _ -> [ Cbool (Sexpr.id atom, pos) ])
  | Sexpr.Not t -> norm (Solver.lit t (not pos))
  | Sexpr.Bin (((Nfl.Ast.Eq | Nfl.Ast.Ne | Nfl.Ast.Lt | Nfl.Ast.Le | Nfl.Ast.Gt | Nfl.Ast.Ge) as op), a, b)
    -> (
      let r = rel_of_binop op in
      let r = if pos then r else negate_rel r in
      match (const_int b, const_int a) with
      | Some c, None -> [ Ccmp (a, r, c) ]
      | None, Some c -> [ Ccmp (b, mirror_rel r, c) ]
      | Some ca, Some cb ->
          (* Fully concrete comparisons normally constant-fold away at
             interning; decide them here anyway. *)
          let holds =
            match r with
            | Req -> cb = ca
            | Rne -> cb <> ca
            | Rlt -> cb < ca
            | Rle -> cb <= ca
            | Rgt -> cb > ca
            | Rge -> cb >= ca
          in
          if holds then [ Ctrue ] else [ Cfalse ]
      | None, None ->
          if Sexpr.equal a b then
            match r with
            | Req | Rle | Rge -> [ Ctrue ]
            | Rne | Rlt | Rgt -> [ Cfalse ]
          else [ Cbool (Sexpr.id atom, pos) ])
  | Sexpr.Bin (Nfl.Ast.Or, _, _) ->
      let ds = flatten_or atom [] in
      if ds = [] then if pos then [ Cfalse ] else [ Ctrue ]
      else if pos then [ Cdisj (List.map (fun d -> Solver.lit d true) ds) ]
      else List.concat_map (fun d -> norm (Solver.lit d false)) ds
  | Sexpr.Bin (Nfl.Ast.And, _, _) ->
      let cs = flatten_and atom [] in
      if cs = [] then if pos then [ Ctrue ] else [ Cfalse ]
      else if pos then List.concat_map (fun c -> norm (Solver.lit c true)) cs
      else [ Cdisj (List.map (fun c -> Solver.lit c false) cs) ]
  | _ -> [ Cbool (Sexpr.id atom, pos) ]

(* ------------------------------------------------------------------ *)
(* Per-term interval state                                            *)
(* ------------------------------------------------------------------ *)

(* [x & m] for constant [m >= 0]: bits of the result are a subset of
   [m]'s whatever the sign of [x], so the value lies in [0, m]. *)
let band_of (t : Sexpr.t) =
  match Sexpr.view t with
  | Sexpr.Bin (Nfl.Ast.Band, a, b) -> (
      match (const_int a, const_int b) with
      | None, Some m when m >= 0 -> Some (Sexpr.id a, m)
      | Some m, None when m >= 0 -> Some (Sexpr.id b, m)
      | _ -> None)
  | _ -> None

type tinfo = {
  mutable lo : int option;
  mutable hi : int option;
  mutable ne : int list;
  band : (int * int) option;  (** masked base term id, constant mask *)
}

exception Conflict

let tighten_lo info c =
  match info.lo with Some l when l >= c -> () | _ -> info.lo <- Some c

let tighten_hi info c =
  match info.hi with Some h when h <= c -> () | _ -> info.hi <- Some c

let assert_cmp info r c =
  match r with
  | Req ->
      tighten_lo info c;
      tighten_hi info c
  | Rne -> if not (List.mem c info.ne) then info.ne <- c :: info.ne
  | Rlt -> tighten_hi info (c - 1)
  | Rle -> tighten_hi info c
  | Rgt -> tighten_lo info (c + 1)
  | Rge -> tighten_lo info c

let fixed info =
  match (info.lo, info.hi) with Some l, Some h when l = h -> Some l | _ -> None

(* Disequalities refute an interval they fully cover (small ones only;
   the bound keeps this linear in practice). *)
let interval_dead info =
  match (info.lo, info.hi) with
  | Some l, Some h ->
      if l > h then true
      else if h - l <= 64 then (
        let all = ref true in
        for v = l to h do
          if not (List.mem v info.ne) then all := false
        done;
        !all)
      else false
  | _ -> false

let check_info info =
  if interval_dead info then raise Conflict;
  match (fixed info, info.band) with
  | Some r, Some (_, m) -> if r land m <> r then raise Conflict
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* The engine                                                         *)
(* ------------------------------------------------------------------ *)

let rec unsat_clits ~depth (lits : Solver.literal list) : bool =
  let clits = List.concat_map norm lits in
  if List.mem Cfalse clits then true
  else
    let terms : (int, tinfo) Hashtbl.t = Hashtbl.create 16 in
    let bools : (int, bool) Hashtbl.t = Hashtbl.create 16 in
    let info_of (t : Sexpr.t) =
      match Hashtbl.find_opt terms (Sexpr.id t) with
      | Some i -> i
      | None ->
          let band = band_of t in
          let i =
            match band with
            | Some (_, m) -> { lo = Some 0; hi = Some m; ne = []; band }
            | None -> { lo = None; hi = None; ne = []; band }
          in
          Hashtbl.add terms (Sexpr.id t) i;
          i
    in
    try
      let disjs = ref [] in
      List.iter
        (function
          | Ctrue | Cfalse -> ()
          | Ccmp (t, r, c) -> assert_cmp (info_of t) r c
          | Cbool (id, b) -> (
              match Hashtbl.find_opt bools id with
              | Some b' -> if b <> b' then raise Conflict
              | None -> Hashtbl.add bools id b)
          | Cdisj ds -> disjs := ds :: !disjs)
        clits;
      (* Bit-mask subset propagation to fixpoint: a fixed [x & m1 = r]
         pins every coarser mask of the same base. *)
      let changed = ref true in
      let rounds = ref 0 in
      while !changed && !rounds < 8 do
        changed := false;
        incr rounds;
        Hashtbl.iter
          (fun _ (i1 : tinfo) ->
            match (fixed i1, i1.band) with
            | Some r1, Some (x1, m1) ->
                Hashtbl.iter
                  (fun _ (i2 : tinfo) ->
                    match i2.band with
                    | Some (x2, m2) when x2 = x1 && m2 land m1 = m2 && i1 != i2 ->
                        let forced = r1 land m2 in
                        if fixed i2 <> Some forced then begin
                          assert_cmp i2 Req forced;
                          changed := true
                        end
                    | _ -> ())
                  terms
            | _ -> ())
          terms
      done;
      Hashtbl.iter (fun _ i -> check_info i) terms;
      (* Bounded case split: a disjunction whose every branch is
         refuted under the remaining conjunction refutes the whole. *)
      depth > 0
      && List.exists
           (fun ds ->
             List.length ds <= 8
             && List.for_all (fun d -> unsat_clits ~depth:(depth - 1) (d :: lits)) ds)
           !disjs
    with Conflict -> true

let unsat ?(depth = 2) lits = unsat_clits ~depth lits
let implies ?depth a l = unsat ?depth (a @ [ negate l ])
let subsumes a b = List.for_all (fun l -> implies a l) b
let proven_unsat lits = unsat lits || Solver.check lits = Solver.Unsat
