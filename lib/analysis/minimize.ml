open Nfactor
open Symexec

type outcome = {
  original : Model.t;
  minimized : Model.t;
  deleted_dead : int;
  deleted_shadowed : int;
  merged : int;
  widened_literals : int;
  iterations : int;
  verified : bool;
  trials : int;
}

let default_pkts () =
  Verify.Testgen.base_palette
  @ Packet.Traffic.random_stream ~seed:911 ~n:2000 ()
  @ Packet.Traffic.flow_stream ~seed:912 ~flows:50 ~data_pkts:3 ()

let all_lits (e : Model.entry) =
  e.Model.config @ e.Model.flow_match @ e.Model.state_match @ e.Model.residual_match

(* Every proof obligation is a conjunction-unsat question; canonical
   literal-key vectors memoize them across the whole fixpoint run. *)
let make_prover () =
  let memo : (int list, bool) Hashtbl.t = Hashtbl.create 256 in
  fun lits ->
    let key = List.map Solver.lit_key lits |> List.sort_uniq compare in
    match Hashtbl.find_opt memo key with
    | Some v -> v
    | None ->
        let v = Imply.proven_unsat lits in
        Hashtbl.add memo key v;
        v

(* ------------------------------------------------------------------ *)
(* Rewrite rules over the working entry list                          *)
(* ------------------------------------------------------------------ *)

type stats = {
  mutable s_dead : int;
  mutable s_shadowed : int;
  mutable s_merged : int;
  mutable s_widened : int;
}

let delete_dead prove st entries =
  List.filter
    (fun e ->
      if prove (all_lits e) then begin
        st.s_dead <- st.s_dead + 1;
        false
      end
      else true)
    entries

(* Entry [j] is removable when some earlier entry's whole match
   (residuals included) is implied by [j]'s: the earlier entry fires
   first on every packet [j] could claim. *)
let delete_shadowed prove st entries =
  let rec go kept = function
    | [] -> List.rev kept
    | e :: rest ->
        let lits_e = all_lits e in
        let shadowed =
          List.exists
            (fun earlier ->
              List.for_all
                (fun l -> prove (lits_e @ [ Imply.negate l ]))
                (all_lits earlier))
            kept
        in
        if shadowed then begin
          st.s_shadowed <- st.s_shadowed + 1;
          go kept rest
        end
        else go (e :: kept) rest
  in
  go [] entries

(* Drop one literal [l] from a component list when either
   - the rest of the entry implies [l] (the literal is redundant), or
   - every packet gained by dropping it is proven to match some
     earlier entry, which fires first both before and after. *)
let widen_entry prove st earlier (e : Model.entry) =
  let widen_component lits other_lits =
    let rec go kept = function
      | [] -> List.rev kept
      | l :: rest ->
          let others = List.rev_append kept rest @ other_lits in
          let redundant = prove (others @ [ Imply.negate l ]) in
          let covered_earlier () =
            List.exists
              (fun (earlier_e : Model.entry) ->
                List.for_all
                  (fun l' -> prove (others @ [ Imply.negate l; Imply.negate l' ]))
                  (all_lits earlier_e))
              earlier
          in
          if redundant || covered_earlier () then begin
            st.s_widened <- st.s_widened + 1;
            go kept rest
          end
          else go (l :: kept) rest
    in
    go [] lits
  in
  let flow =
    widen_component e.Model.flow_match
      (e.Model.config @ e.Model.state_match @ e.Model.residual_match)
  in
  let state =
    widen_component e.Model.state_match (e.Model.config @ flow @ e.Model.residual_match)
  in
  let residual =
    widen_component e.Model.residual_match (e.Model.config @ flow @ state)
  in
  { e with Model.flow_match = flow; state_match = state; residual_match = residual }

let widen prove st entries =
  let rec go earlier = function
    | [] -> List.rev earlier
    | e :: rest -> go (widen_entry prove st (List.rev earlier) e :: earlier) rest
  in
  go [] entries

(* --- adjacent merges ---------------------------------------------- *)

let lit_atom (l : Solver.literal) =
  if l.Solver.positive then l.Solver.atom else Sexpr.mk_not l.Solver.atom

let action_repr ~pkt_var (e : Model.entry) =
  Fmt.str "%a|%a"
    (Model.pp_action ~pkt_var)
    e.Model.pkt_action
    Fmt.(list ~sep:(any ";") Model.pp_state_update)
    e.Model.state_update

let keys_of lits = List.map Solver.lit_key lits |> List.sort_uniq compare

(* Split [e]'s match into literals shared with [other] and its own. *)
let split_against other_keys lits =
  List.partition (fun l -> List.mem (Solver.lit_key l) other_keys) lits

(* Two-sided interval literal [lo <= t && t <= hi] for an
   equality-pair union, else the plain disjunction of both sides. *)
let union_literal a b =
  let atom_a = lit_atom a and atom_b = lit_atom b in
  let interval =
    match (Sexpr.view atom_a, Sexpr.view atom_b) with
    | Sexpr.Bin (Nfl.Ast.Eq, ta, ca), Sexpr.Bin (Nfl.Ast.Eq, tb, cb)
      when Sexpr.equal ta tb -> (
        match (Sexpr.const_of ca, Sexpr.const_of cb) with
        | Some (Value.Int x), Some (Value.Int y) when abs (x - y) = 1 ->
            let lo = min x y and hi = max x y in
            Some
              (Sexpr.mk_bin Nfl.Ast.And
                 (Sexpr.mk_bin Nfl.Ast.Ge ta (Sexpr.const (Value.Int lo)))
                 (Sexpr.mk_bin Nfl.Ast.Le ta (Sexpr.const (Value.Int hi))))
        | _ -> None)
    | _ -> None
  in
  match interval with
  | Some atom -> Solver.lit atom true
  | None -> Solver.lit (Sexpr.mk_bin Nfl.Ast.Or atom_a atom_b) true

(* Place a synthesized literal in the right match component. *)
let add_classified (m : Model.t) (e : Model.entry) l =
  match
    Extract.classify_literal ~pkt_var:m.Model.pkt_var ~cfg_vars:m.Model.cfg_vars
      ~ois_vars:m.Model.ois_vars l
  with
  | Extract.L_config -> { e with Model.config = e.Model.config @ [ l ] }
  | Extract.L_flow -> { e with Model.flow_match = e.Model.flow_match @ [ l ] }
  | Extract.L_state -> { e with Model.state_match = e.Model.state_match @ [ l ] }
  | Extract.L_other ->
      { e with Model.residual_match = e.Model.residual_match @ [ l ] }

(* Merge adjacent [a; b] (same action, same config, residual-free,
   single differing literal each) into one entry whose match is the
   exact union of the two. *)
let try_merge prove (m : Model.t) (a : Model.entry) (b : Model.entry) =
  let pkt_var = m.Model.pkt_var in
  if
    a.Model.residual_match <> []
    || b.Model.residual_match <> []
    || not (String.equal (action_repr ~pkt_var a) (action_repr ~pkt_var b))
    || keys_of a.Model.config <> keys_of b.Model.config
  then None
  else
    let keys_b = keys_of (all_lits b) and keys_a = keys_of (all_lits a) in
    let common_flow, a_flow = split_against keys_b a.Model.flow_match in
    let common_state, a_state = split_against keys_b a.Model.state_match in
    let _, b_flow = split_against keys_a b.Model.flow_match in
    let _, b_state = split_against keys_a b.Model.state_match in
    match (a_flow @ a_state, b_flow @ b_state) with
    | [ la ], [ lb ] ->
        let base =
          {
            a with
            Model.flow_match = common_flow;
            state_match = common_state;
            path_sids =
              List.sort_uniq compare (a.Model.path_sids @ b.Model.path_sids);
            truncated = a.Model.truncated || b.Model.truncated;
          }
        in
        let common = a.Model.config @ common_flow @ common_state in
        if prove (common @ [ Imply.negate la; Imply.negate lb ]) then
          (* the union covers the whole common region: wildcard *)
          Some base
        else
          let u = union_literal la lb in
          (* [u] must be the exact union: both sides imply it, and
             within the common region it implies one of the sides. *)
          if
            prove (common @ [ la; Imply.negate u ])
            && prove (common @ [ lb; Imply.negate u ])
            && prove (common @ [ u; Imply.negate la; Imply.negate lb ])
          then Some (add_classified m base u)
          else None
    | _ -> None

let merge_adjacent prove st (m : Model.t) entries =
  let rec go kept = function
    | a :: b :: rest -> (
        match try_merge prove m a b with
        | Some merged ->
            st.s_merged <- st.s_merged + 1;
            go kept (merged :: rest)
        | None -> go (a :: kept) (b :: rest))
    | last -> List.rev_append kept last
  in
  go [] entries

(* ------------------------------------------------------------------ *)
(* Fixpoint + differential gate                                       *)
(* ------------------------------------------------------------------ *)

let reduction o =
  let before = Model.entry_count o.original in
  if before = 0 then 0.0
  else float_of_int (before - Model.entry_count o.minimized) /. float_of_int before

let run ?pkts ~store (m : Model.t) =
  let prove = make_prover () in
  let reduce ~widening =
    let st = { s_dead = 0; s_shadowed = 0; s_merged = 0; s_widened = 0 } in
    let rec fixpoint entries iters =
      if iters >= 20 then (entries, iters)
      else
        let before = (List.length entries, st.s_widened) in
        let entries = delete_dead prove st entries in
        let entries = delete_shadowed prove st entries in
        let entries = if widening then widen prove st entries else entries in
        let entries = merge_adjacent prove st m entries in
        if (List.length entries, st.s_widened) = before then (entries, iters + 1)
        else fixpoint entries (iters + 1)
    in
    let entries, iterations = fixpoint m.Model.entries 0 in
    (entries, iterations, st)
  in
  (* Widening is speculative: dropping a match literal can only help
     when it unlocks a merge or a shadow deletion — kept for its own
     sake it makes entries *slower* to evaluate (the dropped literal
     is usually the cheap early-exit one, leaving membership/payload
     checks to run on more packets). So reduce twice, with and without
     the widening rule, and keep widenings only when they bought
     strictly fewer entries. *)
  let lean_entries, lean_iters, lean_st = reduce ~widening:false in
  let full_entries, full_iters, full_st = reduce ~widening:true in
  let entries, iterations, st =
    if List.length full_entries < List.length lean_entries then
      (full_entries, full_iters, full_st)
    else (lean_entries, lean_iters, lean_st)
  in
  let candidate = { m with Model.entries } in
  let pkts = match pkts with Some p -> p | None -> default_pkts () in
  let verdict, stores_equal = Equiv.model_differential ~store ~pkts m candidate in
  let ok = Equiv.ok verdict && stores_equal in
  {
    original = m;
    minimized = (if ok then candidate else m);
    deleted_dead = st.s_dead;
    deleted_shadowed = st.s_shadowed;
    merged = st.s_merged;
    widened_literals = st.s_widened;
    iterations;
    verified = ok;
    trials = verdict.Equiv.trials;
  }
