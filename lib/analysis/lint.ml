open Nfactor
open Symexec
module Sset = Sexpr.Sset
module Lset = Nfl.Ast.Sset

type severity = Info | Warning | Error

type kind =
  | Dead
  | Shadowed of int
  | Config_dead
  | Overlap of int
  | Unreachable_state of int
  | Unwritable_state of string
  | Dead_write of string
  | Chain_dead_write of string * string

type finding = {
  f_entry : int option;
  f_kind : kind;
  f_severity : severity;
  f_proven : bool;
  f_witness : Packet.Pkt.t option;
  f_message : string;
}

type report = { r_nf : string; r_findings : finding list }

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let kind_label = function
  | Dead -> "dead"
  | Shadowed _ -> "shadowed"
  | Config_dead -> "config-dead"
  | Overlap _ -> "overlap"
  | Unreachable_state _ -> "unreachable-state"
  | Unwritable_state _ -> "unwritable-state"
  | Dead_write _ -> "dead-write"
  | Chain_dead_write _ -> "chain-dead-write"

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                     *)
(* ------------------------------------------------------------------ *)

let all_lits (e : Model.entry) =
  e.Model.config @ e.Model.flow_match @ e.Model.state_match @ e.Model.residual_match

let classified_lits (e : Model.entry) =
  e.Model.config @ e.Model.flow_match @ e.Model.state_match

let const_int (e : Sexpr.t) =
  match Sexpr.view e with Sexpr.Const (Value.Int n) -> Some n | _ -> None

let lits_syms lits =
  List.fold_left
    (fun acc (l : Solver.literal) -> Sset.union acc (Sexpr.syms l.Solver.atom))
    Sset.empty lits

(* Every symbol an entry's behavior depends on: match literals, action
   field expressions, and the expressions inside state updates (a write
   whose value mentions a variable reads that variable). *)
let entry_read_syms (e : Model.entry) =
  let s = lits_syms (all_lits e) in
  let s =
    match e.Model.pkt_action with
    | Model.Drop -> s
    | Model.Forward snaps ->
        List.fold_left
          (fun acc snap ->
            List.fold_left (fun acc (_, ex) -> Sset.union acc (Sexpr.syms ex)) acc snap)
          s snaps
  in
  List.fold_left
    (fun acc (_, upd) ->
      match upd with
      | Model.Set_scalar ex -> Sset.union acc (Sexpr.syms ex)
      | Model.Dict_ops ops ->
          List.fold_left
            (fun acc (k, vo) ->
              let acc = Sset.union acc (Sexpr.syms k) in
              match vo with Some v -> Sset.union acc (Sexpr.syms v) | None -> acc)
            acc ops)
    s e.Model.state_update

(* Identity rewrites elide under the model's own packet variable, so
   two entries render equal exactly when they behave equally. *)
let action_repr ~pkt_var (e : Model.entry) =
  Fmt.str "%a|%a"
    (Model.pp_action ~pkt_var)
    e.Model.pkt_action
    Fmt.(list ~sep:(any ";") Model.pp_state_update)
    e.Model.state_update

(* The value a positive equality guard pins a state slot to, when that
   value is a constant: per-flow table reads via {!Fsm}, plus plain
   scalar oisVar comparisons. *)
let state_eq_guard (m : Model.t) (l : Solver.literal) =
  let effective_eq op =
    match (op, l.Solver.positive) with
    | Nfl.Ast.Eq, true | Nfl.Ast.Ne, false -> true
    | _ -> false
  in
  match Fsm.state_key_of_literal l with
  | Some (sk, `Value (op, rhs)) when effective_eq op -> (
      match const_int rhs with
      | Some v -> Some (sk.Fsm.sk_base, v)
      | None -> None)
  | Some _ -> None
  | None -> (
      match Sexpr.view l.Solver.atom with
      | Sexpr.Bin (op, a, b) when Fsm.is_cmp op -> (
          let scalar s c op =
            match Sexpr.view s with
            | Sexpr.Sym name when List.mem name m.Model.ois_vars && effective_eq op ->
                Option.map (fun v -> (name, v)) (const_int c)
            | _ -> None
          in
          match scalar a b op with
          | Some r -> Some r
          | None -> scalar b a (Fsm.flip_cmp op))
      | _ -> None)

(* All constant values any entry ever stores into [base]; [None] when
   some write is non-constant (then anything could be stored). *)
let const_writes_to base (entries : Model.entry list) =
  let ok = ref true and acc = ref [] in
  List.iter
    (fun (e : Model.entry) ->
      List.iter
        (fun (v, upd) ->
          if String.equal v base then
            match upd with
            | Model.Set_scalar ex -> (
                match const_int ex with
                | Some c -> acc := c :: !acc
                | None -> ok := false)
            | Model.Dict_ops ops ->
                List.iter
                  (fun (_k, vo) ->
                    match vo with
                    | Some ve -> (
                        match const_int ve with
                        | Some c -> acc := c :: !acc
                        | None -> ok := false)
                    | None -> ())
                  ops)
        e.Model.state_update)
    entries;
  if !ok then Some !acc else None

(* Could [base] already hold [v] in the initial store? Unknown shapes
   answer [true] (no finding). *)
let initial_may_hold store base v =
  match Model_interp.Smap.find_opt base store with
  | None -> false
  | Some (Value.Int n) -> n = v
  | Some (Value.Dict kvs) -> List.exists (fun (_, x) -> Value.equal x (Value.Int v)) kvs
  | Some _ -> true

(* ------------------------------------------------------------------ *)
(* Table lints                                                        *)
(* ------------------------------------------------------------------ *)

let model_lint ?(ordered = false) ?store (m : Model.t) =
  let entries = Array.of_list m.Model.entries in
  let n = Array.length entries in
  let pkt_var = m.Model.pkt_var in
  let resolve lits =
    match store with
    | Some st -> List.map (Verify.Testgen.resolve_config st) lits
    | None -> lits
  in
  let all = Array.map all_lits entries in
  let resolved = Array.map resolve all in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  (* --- statically-false matches --------------------------------- *)
  let dead = Array.make n false in
  Array.iteri
    (fun j lits ->
      if Imply.proven_unsat lits then begin
        dead.(j) <- true;
        add
          {
            f_entry = Some j;
            f_kind = Dead;
            f_severity = Error;
            f_proven = true;
            f_witness = None;
            f_message = "match condition is unsatisfiable: the entry can never fire";
          }
      end)
    all;
  (* --- config conditions false under the extraction store ------- *)
  (match store with
  | None -> ()
  | Some st ->
      Array.iteri
        (fun j (e : Model.entry) ->
          if
            (not dead.(j))
            && e.Model.config <> []
            && Imply.proven_unsat (List.map (Verify.Testgen.resolve_config st) e.Model.config)
          then
            add
              {
                f_entry = Some j;
                f_kind = Config_dead;
                f_severity = Info;
                f_proven = true;
                f_witness = None;
                f_message =
                  "config condition is false under the extraction-time \
                   configuration (the entry belongs to another deployment)";
              })
        entries);
  (* --- shadowing ------------------------------------------------ *)
  let covered_by lits_j l = Imply.proven_unsat (lits_j @ [ Imply.negate l ]) in
  let shadowed = Array.make n false in
  for j = 1 to n - 1 do
    if (not dead.(j)) && not entries.(j).Model.truncated then begin
      let lits_j = all.(j) in
      let verdict = ref None in
      let i = ref 0 in
      while !verdict = None && !i < j do
        let k = !i in
        if (not dead.(k)) && not entries.(k).Model.truncated then begin
          let e_i = entries.(k) in
          if List.for_all (covered_by lits_j) (classified_lits e_i) then
            if List.for_all (covered_by lits_j) e_i.Model.residual_match then
              verdict := Some (k, true)
            else verdict := Some (k, false)
        end;
        incr i
      done;
      match !verdict with
      | None -> ()
      | Some (i, full) ->
          let witness =
            match store with
            | None -> None
            | Some st -> (
                let cands =
                  (match Solver.concretize resolved.(j) with
                  | Some asn -> [ Verify.Testgen.packet_of_assignment ~pkt_var asn ]
                  | None -> [])
                  @ Verify.Testgen.base_palette
                in
                match
                  List.find_opt
                    (fun p -> Model_interp.entry_matches ~pkt_var st p entries.(j))
                    cands
                with
                | None -> None
                | Some p -> (
                    let s = Model_interp.step m st p in
                    match s.Model_interp.matched with
                    | Some k when k < j -> Some p
                    | _ -> None))
          in
          if full then begin
            shadowed.(j) <- true;
            add
              {
                f_entry = Some j;
                f_kind = Shadowed i;
                f_severity = Warning;
                f_proven = true;
                f_witness = witness;
                f_message =
                  Fmt.str
                    "every packet matching this entry also matches earlier entry \
                     %d, which fires first"
                    i;
              }
          end
          else
            add
              {
                f_entry = Some j;
                f_kind = Shadowed i;
                f_severity = Info;
                f_proven = false;
                f_witness = witness;
                f_message =
                  Fmt.str
                    "classified match is covered by earlier entry %d, but that \
                     entry carries residual_match atoms opaque to implication; \
                     downgraded to info"
                    i;
              }
    end
  done;
  (* --- overlaps with disagreeing actions ------------------------ *)
  let repr = Array.map (action_repr ~pkt_var) entries in
  for j = 1 to n - 1 do
    if (not dead.(j)) && (not shadowed.(j)) && not entries.(j).Model.truncated then
      for i = 0 to j - 1 do
        if
          (not dead.(i))
          && (not entries.(i).Model.truncated)
          && not (String.equal repr.(i) repr.(j))
        then
          if Imply.subsumes all.(i) all.(j) then
            add
              {
                f_entry = Some j;
                f_kind = Overlap i;
                f_severity = Info;
                f_proven = true;
                f_witness = None;
                f_message =
                  Fmt.str
                    "matches a superset of earlier entry %d with a different \
                     action (priority overlap: entry %d carves the exception)"
                    i i;
              }
          else
            match store with
            | None -> ()
            | Some st -> (
                let cands =
                  (match Solver.concretize (resolved.(i) @ resolved.(j)) with
                  | Some asn -> [ Verify.Testgen.packet_of_assignment ~pkt_var asn ]
                  | None -> [])
                  @ Verify.Testgen.base_palette
                in
                match
                  List.find_opt
                    (fun p ->
                      Model_interp.entry_matches ~pkt_var st p entries.(i)
                      && Model_interp.entry_matches ~pkt_var st p entries.(j))
                    cands
                with
                | None -> ()
                | Some p ->
                    (* A synthesized table is disjoint by construction, so
                       a both-match witness is an anomaly; a table declared
                       [ordered] (e.g. the minimizer's output, whose
                       widening rule relies on first-match priority) makes
                       the same evidence advisory. *)
                    add
                      {
                        f_entry = Some j;
                        f_kind = Overlap i;
                        f_severity = (if ordered then Info else Warning);
                        f_proven = false;
                        f_witness = Some p;
                        f_message =
                          (if ordered then
                             Fmt.str
                               "can match the same packet as earlier entry %d \
                                with a different action; resolved by \
                                first-match priority (witness attached)"
                               i
                           else
                             Fmt.str
                               "can match the same packet as earlier entry %d \
                                while disagreeing on the action (witness \
                                attached)"
                               i);
                      })
      done
  done;
  (* --- unwritable state guards ---------------------------------- *)
  (match store with
  | None -> ()
  | Some st ->
      Array.iteri
        (fun j (e : Model.entry) ->
          if not dead.(j) then
            List.iter
              (fun l ->
                match state_eq_guard m l with
                | None -> ()
                | Some (base, v) -> (
                    match const_writes_to base m.Model.entries with
                    | None -> ()
                    | Some stored ->
                        if (not (List.mem v stored)) && not (initial_may_hold st base v)
                        then
                          add
                            {
                              f_entry = Some j;
                              f_kind = Unwritable_state base;
                              f_severity = Warning;
                              f_proven = true;
                              f_witness = None;
                              f_message =
                                Fmt.str
                                  "state guard requires %s = %d, but no \
                                   transition ever stores %d and the initial \
                                   store does not hold it"
                                  base v v;
                            }))
              e.Model.state_match)
        entries);
  (* --- dead stores ---------------------------------------------- *)
  let reads =
    List.fold_left
      (fun acc e -> Sset.union acc (entry_read_syms e))
      Sset.empty m.Model.entries
  in
  let writes =
    List.fold_left
      (fun acc (e : Model.entry) ->
        List.fold_left (fun acc (v, _) -> Sset.add v acc) acc e.Model.state_update)
      Sset.empty m.Model.entries
  in
  Sset.iter
    (fun b ->
      if not (Sset.mem b reads) then
        add
          {
            f_entry = None;
            f_kind = Dead_write b;
            f_severity = Warning;
            f_proven = true;
            f_witness = None;
            f_message =
              Fmt.str "state %s is written but never read by any match or action" b;
          })
    writes;
  { r_nf = m.Model.nf_name; r_findings = List.rev !findings }

(* ------------------------------------------------------------------ *)
(* Extraction-level lints                                             *)
(* ------------------------------------------------------------------ *)

let reachable_nodes cfg =
  let seen = Hashtbl.create 16 in
  let rec go n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      List.iter go (Cfg.succ_nodes cfg n)
    end
  in
  go Cfg.Entry;
  Hashtbl.fold (fun n () acc -> n :: acc) seen []

let run (ex : Extract.result) =
  let m = ex.Extract.model in
  let store = Model_interp.initial_store ex in
  let base = model_lint ~store m in
  let fsm = Fsm.of_extraction ex in
  let reach = Fsm.reachable_states fsm in
  let fsm_findings =
    List.filter_map
      (fun (s : Fsm.state) ->
        if List.mem s.Fsm.id reach then None
        else
          Some
            {
              f_entry = None;
              f_kind = Unreachable_state s.Fsm.id;
              f_severity = Info;
              f_proven = true;
              f_witness = None;
              f_message =
                Fmt.str "FSM state %d (%s) is unreachable from the initial state"
                  s.Fsm.id s.Fsm.label;
            })
      fsm.Fsm.states
  in
  (* Dead writes the program body itself never consumes are certain
     (Warning); writes some non-sliced statement still reads degrade
     to model-only observations (Info). *)
  let cfg = Cfg.of_block ex.Extract.classes.Statealyzer.Varclass.loop_body in
  let sol = Dataflow.Liveness.solve ~live_at_exit:Lset.empty cfg in
  let nodes = reachable_nodes cfg in
  let refined =
    List.map
      (fun f ->
        match f.f_kind with
        | Dead_write b ->
            let read_somewhere =
              List.exists (fun nd -> Lset.mem b (sol.Dataflow.Liveness.live_in nd)) nodes
            in
            if read_somewhere then
              {
                f with
                f_severity = Info;
                f_message =
                  f.f_message ^ " (the program body still reads it elsewhere)";
              }
            else
              {
                f with
                f_message =
                  f.f_message
                  ^ "; loop-body liveness confirms no statement consumes it";
              }
        | _ -> f)
      base.r_findings
  in
  { base with r_findings = refined @ fsm_findings }

(* ------------------------------------------------------------------ *)
(* Chain-level dead stores                                            *)
(* ------------------------------------------------------------------ *)

let chain_dead_writes (hops : (string * Model.t) list) =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  List.concat_map
    (fun ((an, a), (bn, (b : Model.t))) ->
      let pv = b.Model.pkt_var in
      let reads =
        List.fold_left
          (fun acc e -> Sset.union acc (entry_read_syms e))
          Sset.empty b.Model.entries
      in
      let mentions f = Sset.mem (pv ^ "." ^ f) reads in
      let masks f =
        List.for_all
          (fun (e : Model.entry) ->
            match e.Model.pkt_action with
            | Model.Drop -> true
            | Model.Forward snaps -> List.for_all (List.mem_assoc f) snaps)
          b.Model.entries
      in
      Model.modified_fields a
      |> List.filter (fun f -> (not (mentions f)) && masks f)
      |> List.map (fun f ->
             {
               f_entry = None;
               f_kind = Chain_dead_write (bn, f);
               f_severity = Warning;
               f_proven = true;
               f_witness = None;
               f_message =
                 Fmt.str
                   "%s rewrites %s, but next hop %s never reads it and \
                    re-binds it in every forwarded packet"
                   an f bn;
             }))
    (pairs hops)

(* ------------------------------------------------------------------ *)
(* Reporting                                                          *)
(* ------------------------------------------------------------------ *)

let counts r =
  List.fold_left
    (fun (e, w, i) f ->
      match f.f_severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) r.r_findings

let is_clean r =
  List.for_all (fun f -> f.f_severity = Info) r.r_findings

let pp_finding ppf f =
  let entry = match f.f_entry with Some j -> Fmt.str "entry %d: " j | None -> "" in
  Fmt.pf ppf "[%s] %s%s%s%s"
    (severity_to_string f.f_severity)
    entry f.f_message
    (if f.f_proven then " (proven)" else "")
    (match f.f_witness with
    | Some p -> Fmt.str " [witness %a]" Packet.Pkt.pp p
    | None -> "")

let pp_report ppf r =
  let e, w, i = counts r in
  Fmt.pf ppf "%s: %d error%s, %d warning%s, %d info@." r.r_nf e
    (if e = 1 then "" else "s")
    w
    (if w = 1 then "" else "s")
    i;
  List.iter (fun f -> Fmt.pf ppf "  %a@." pp_finding f) r.r_findings

(* --- JSON ------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let kind_detail = function
  | Dead | Config_dead -> []
  | Shadowed i -> [ ("by", string_of_int i) ]
  | Overlap i -> [ ("with", string_of_int i) ]
  | Unreachable_state s -> [ ("state", string_of_int s) ]
  | Unwritable_state v | Dead_write v -> [ ("var", Printf.sprintf "%S" (json_escape v)) ]
  | Chain_dead_write (hop, f) ->
      [ ("hop", Printf.sprintf "\"%s\"" (json_escape hop));
        ("field", Printf.sprintf "\"%s\"" (json_escape f)) ]

let witness_json p =
  let fields =
    List.map
      (fun f -> Printf.sprintf "\"%s\": %d" f (Packet.Pkt.get_int p f))
      Packet.Headers.int_fields
  in
  "{" ^ String.concat ", " fields ^ "}"

let finding_to_json f =
  let parts =
    [ ("entry", match f.f_entry with Some j -> string_of_int j | None -> "null");
      ("kind", Printf.sprintf "\"%s\"" (kind_label f.f_kind)) ]
    @ kind_detail f.f_kind
    @ [ ("severity", Printf.sprintf "\"%s\"" (severity_to_string f.f_severity));
        ("proven", string_of_bool f.f_proven);
        ("witness", match f.f_witness with Some p -> witness_json p | None -> "null");
        ("message", Printf.sprintf "\"%s\"" (json_escape f.f_message)) ]
  in
  "{" ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v) parts) ^ "}"

let report_to_json r =
  let e, w, i = counts r in
  Printf.sprintf
    "{\"nf\": \"%s\", \"errors\": %d, \"warnings\": %d, \"infos\": %d, \
     \"clean\": %b, \"findings\": [%s]}"
    (json_escape r.r_nf) e w i (is_clean r)
    (String.concat ", " (List.map finding_to_json r.r_findings))

(* --- cache-stable serialization --------------------------------- *)

let report_version = 1

open Model_io

let sexp_of_pkt p =
  List
    (List.map
       (fun f -> List [ Atom f; Atom (string_of_int (Packet.Pkt.get_int p f)) ])
       Packet.Headers.int_fields
    @ [ List [ Atom "payload"; Atom (Packet.Pkt.get_str p "payload") ] ])

let pkt_of_sexp = function
  | List fields ->
      List.fold_left
        (fun p -> function
          | List [ Atom "payload"; Atom s ] -> Packet.Pkt.set_str p "payload" s
          | List [ Atom f; Atom n ] -> (
              match int_of_string_opt n with
              | Some n -> Packet.Pkt.set_int p f n
              | None -> raise (Parse_error ("witness field " ^ f)))
          | _ -> raise (Parse_error "witness field"))
        Model_interp.null_pkt fields
  | _ -> raise (Parse_error "witness")

let sexp_of_kind = function
  | Dead -> List [ Atom "dead" ]
  | Shadowed i -> List [ Atom "shadowed"; Atom (string_of_int i) ]
  | Config_dead -> List [ Atom "config-dead" ]
  | Overlap i -> List [ Atom "overlap"; Atom (string_of_int i) ]
  | Unreachable_state s -> List [ Atom "unreachable-state"; Atom (string_of_int s) ]
  | Unwritable_state v -> List [ Atom "unwritable-state"; Atom v ]
  | Dead_write v -> List [ Atom "dead-write"; Atom v ]
  | Chain_dead_write (h, f) -> List [ Atom "chain-dead-write"; Atom h; Atom f ]

let kind_of_sexp = function
  | List [ Atom "dead" ] -> Dead
  | List [ Atom "shadowed"; Atom i ] -> Shadowed (int_of_string i)
  | List [ Atom "config-dead" ] -> Config_dead
  | List [ Atom "overlap"; Atom i ] -> Overlap (int_of_string i)
  | List [ Atom "unreachable-state"; Atom s ] -> Unreachable_state (int_of_string s)
  | List [ Atom "unwritable-state"; Atom v ] -> Unwritable_state v
  | List [ Atom "dead-write"; Atom v ] -> Dead_write v
  | List [ Atom "chain-dead-write"; Atom h; Atom f ] -> Chain_dead_write (h, f)
  | _ -> raise (Parse_error "finding kind")

let sexp_of_finding f =
  List
    [
      List [ Atom "entry"; (match f.f_entry with Some j -> Atom (string_of_int j) | None -> List []) ];
      List [ Atom "kind"; sexp_of_kind f.f_kind ];
      List [ Atom "severity"; Atom (severity_to_string f.f_severity) ];
      List [ Atom "proven"; Atom (string_of_bool f.f_proven) ];
      List [ Atom "witness"; (match f.f_witness with Some p -> sexp_of_pkt p | None -> List []) ];
      List [ Atom "message"; Atom f.f_message ];
    ]

let finding_of_sexp = function
  | List
      [
        List [ Atom "entry"; entry ];
        List [ Atom "kind"; kind ];
        List [ Atom "severity"; Atom sev ];
        List [ Atom "proven"; Atom proven ];
        List [ Atom "witness"; witness ];
        List [ Atom "message"; Atom msg ];
      ] ->
      {
        f_entry =
          (match entry with
          | Atom n -> Some (int_of_string n)
          | List [] -> None
          | _ -> raise (Parse_error "finding entry"));
        f_kind = kind_of_sexp kind;
        f_severity =
          (match sev with
          | "info" -> Info
          | "warning" -> Warning
          | "error" -> Error
          | _ -> raise (Parse_error "finding severity"));
        f_proven = bool_of_string proven;
        f_witness = (match witness with List [] -> None | s -> Some (pkt_of_sexp s));
        f_message = msg;
      }
  | _ -> raise (Parse_error "finding")

let report_to_string r =
  sexp_to_string
    (List
       [
         Atom "lint-report";
         Atom (string_of_int report_version);
         List [ Atom "nf"; Atom r.r_nf ];
         List (Atom "findings" :: List.map sexp_of_finding r.r_findings);
       ])

let report_of_string s =
  match parse_sexp s with
  | List
      [
        Atom "lint-report";
        Atom v;
        List [ Atom "nf"; Atom nf ];
        List (Atom "findings" :: fs);
      ]
    when int_of_string_opt v = Some report_version ->
      { r_nf = nf; r_findings = List.map finding_of_sexp fs }
  | _ -> raise (Parse_error "lint-report")

(* ------------------------------------------------------------------ *)
(* Witness validation                                                 *)
(* ------------------------------------------------------------------ *)

let witness_replays (m : Model.t) store f =
  let entries = Array.of_list m.Model.entries in
  let pkt_var = m.Model.pkt_var in
  match f.f_witness with
  | None -> f.f_proven
  | Some p -> (
      match (f.f_kind, f.f_entry) with
      | Shadowed _, Some j ->
          j < Array.length entries
          && Model_interp.entry_matches ~pkt_var store p entries.(j)
          &&
          let s = Model_interp.step m store p in
          (match s.Model_interp.matched with Some k -> k < j | None -> false)
      | Overlap i, Some j ->
          i < Array.length entries
          && j < Array.length entries
          && Model_interp.entry_matches ~pkt_var store p entries.(i)
          && Model_interp.entry_matches ~pkt_var store p entries.(j)
      | _ -> true)
