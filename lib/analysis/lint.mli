(** Layer-1 static analysis of synthesized models: reachability,
    shadowing, overlap, state-machine and dead-store lints.

    Findings follow a strict evidence discipline: a [Dead] or
    [Shadowed] finding is emitted only when the static implication
    lattice ({!Imply}) {e proves} it, and where a concrete witness
    packet can be built (via the {!Verify.Testgen} palette) it is
    attached and pre-validated against {!Nfactor.Model_interp} —
    a witness that does not replay is discarded, never shipped.
    Anything the lattice cannot decide — in particular entries whose
    [residual_match] carries solver-opaque atoms — degrades to [Info],
    not to a false [Warning]. *)

open Nfactor

type severity = Info | Warning | Error

type kind =
  | Dead  (** the entry's own match is statically unsatisfiable *)
  | Shadowed of int  (** fully covered by the given earlier entry *)
  | Config_dead  (** config condition false under the extraction-time store *)
  | Overlap of int
      (** can match the same packet as the given earlier entry while
          disagreeing on the action *)
  | Unreachable_state of int  (** {!Fsm} state id no flow can reach *)
  | Unwritable_state of string
      (** a state guard requires a value no transition ever stores *)
  | Dead_write of string  (** state written but never read back *)
  | Chain_dead_write of string * string
      (** (downstream hop, field): a field rewrite the next hop
          provably masks *)

type finding = {
  f_entry : int option;  (** index into the model's entry list *)
  f_kind : kind;
  f_severity : severity;
  f_proven : bool;  (** established by static implication *)
  f_witness : Packet.Pkt.t option;  (** validated demonstrating packet *)
  f_message : string;
}

type report = { r_nf : string; r_findings : finding list }

val model_lint : ?ordered:bool -> ?store:Model_interp.store -> Model.t -> report
(** Table-level lints (dead, shadowed, overlap, config, unwritable
    state, dead writes). [store] enables config resolution, witness
    construction and initial-value reasoning; without it only the
    purely symbolic lints run.

    [ordered] (default [false]) declares the table intentionally
    priority-resolved. Synthesized tables are disjoint by
    construction, so a witness packet matching two entries with
    different actions is a genuine anomaly there ([Warning]); a
    minimized table deliberately relies on first-match order (widening
    drops literals whose excluded packets fire earlier), so the same
    finding degrades to advisory [Info]. *)

val run : Extract.result -> report
(** {!model_lint} under the extraction-time store, plus FSM
    reachability ({!Fsm.reachable_states}) and dead-write severity
    refinement through {!Dataflow.Liveness} over the canonical loop
    body. *)

val chain_dead_writes : (string * Model.t) list -> finding list
(** Cross-hop dead stores in a service chain: hop [i] rewrites a
    header field the immediate next hop neither reads nor lets
    through (every entry drops or re-binds the field). *)

val counts : report -> int * int * int
(** (errors, warnings, infos). *)

val is_clean : report -> bool
(** No [Error] or [Warning] findings ([Info] is advisory). *)

val severity_to_string : severity -> string
val kind_label : kind -> string
val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> string
val finding_to_json : finding -> string

val report_to_string : report -> string
(** Cache-stable serialization (s-expression), for the pipeline's
    artifact store. *)

val report_of_string : string -> report
(** @raise Model_io.Parse_error on malformed input. *)

val witness_replays : Model.t -> Model_interp.store -> finding -> bool
(** Re-validate a finding's witness: the packet must demonstrate the
    claimed defect when stepped through the model (e.g. for
    [Shadowed j], it matches entry [j] yet an earlier entry fires).
    Findings without witnesses are vacuously [true] only when
    [f_proven]. *)
