(** Path-condition feasibility checking.

    A deliberately small decision procedure for the fragment NFL
    programs generate (the paper's Section 3.2 argues NF code is
    written to keep symbolic execution in exactly such a fragment):

    - linear integer arithmetic atoms over symbolic terms, decided by
      interval propagation plus equality union-find;
    - (dis)equalities over tuples, decomposed componentwise;
    - dictionary-membership and other opaque atoms, treated as free
      booleans with per-path consistency (same atom cannot be both
      true and false);
    - boolean structure: [not] flips polarity, conjunctions (positive
      [&&], negated [||]) decompose into literals; top-level
      disjunctions are case-split DPLL-style up to a bounded depth,
      beyond which they are treated as opaque atoms (conservative
      towards [Sat]).

    Terms are hash-consed ({!Sexpr}), so every internal table is keyed
    by term {e id} — union-find, interval bounds, opaque-term
    definitions, free-boolean atoms and the verdict memo all use O(1)
    integer keys instead of rendered strings; no operation here costs
    more than the width of the term it inspects.

    [Unsat] answers are trusted (used to prune paths); anything the
    procedure cannot refute is reported [Sat], a sound
    over-approximation for path enumeration — the same posture as a
    static slice ("might lead to the behaviour"). *)

type literal = { atom : Sexpr.t; positive : bool }

(* Negations fold into the polarity so literals are canonical: equal
   (atom id, polarity) pairs denote the same constraint. *)
let rec lit atom positive =
  match Sexpr.view atom with Sexpr.Not e -> lit e (not positive) | _ -> { atom; positive }

let pp_literal ppf l = Fmt.pf ppf "%s%a" (if l.positive then "" else "¬") Sexpr.pp l.atom

type verdict = Sat | Unsat

(* String-keyed map: the public [concretize] assignment is keyed by
   symbol name, which is the vocabulary callers (test generation,
   witness search) speak. *)
module Smap = Map.Make (String)
module Imap = Map.Make (Int)

(* ------------------------------------------------------------------ *)
(* Terms and linear forms                                             *)
(* ------------------------------------------------------------------ *)

type linear = { coeffs : (Sexpr.t * int) list; const : int }
(** sum coeffs + const; coeffs keyed by interned term, sorted by id. *)

let lin_const c = { coeffs = []; const = c }
let lin_term t = { coeffs = [ (t, 1) ]; const = 0 }

let lin_add a b =
  (* Merge of id-sorted coefficient lists; cancelling terms drop. *)
  let rec merge xs ys =
    match (xs, ys) with
    | [], l | l, [] -> l
    | ((tx, cx) :: xs') , ((ty, cy) :: ys') ->
        let ix = Sexpr.id tx and iy = Sexpr.id ty in
        if ix = iy then
          let c = cx + cy in
          if c = 0 then merge xs' ys' else (tx, c) :: merge xs' ys'
        else if ix < iy then (tx, cx) :: merge xs' ys
        else (ty, cy) :: merge xs ys'
  in
  { coeffs = merge a.coeffs b.coeffs; const = a.const + b.const }

let lin_scale k a =
  if k = 0 then lin_const 0
  else { coeffs = List.map (fun (t, c) -> (t, k * c)) a.coeffs; const = k * a.const }

let lin_sub a b = lin_add a (lin_scale (-1) b)

(** Linearize an int-valued symbolic expression; opaque operations
    collapse their subtree into a single term — the subtree itself,
    interned — whose definition is reported through [record] so the
    theory can evaluate it once its free symbols become fixed. *)
let rec linearize ~record (e : Sexpr.t) : linear =
  match Sexpr.view e with
  | Sexpr.Const (Value.Int n) -> lin_const n
  | Sexpr.Const (Value.Bool b) -> lin_const (if b then 1 else 0)
  | Sexpr.Sym _ -> lin_term e
  | Sexpr.Bin (Nfl.Ast.Add, a, b) -> lin_add (linearize ~record a) (linearize ~record b)
  | Sexpr.Bin (Nfl.Ast.Sub, a, b) -> lin_sub (linearize ~record a) (linearize ~record b)
  | Sexpr.Bin (Nfl.Ast.Mul, { Sexpr.node = Sexpr.Const (Value.Int k); _ }, b) ->
      lin_scale k (linearize ~record b)
  | Sexpr.Bin (Nfl.Ast.Mul, a, { Sexpr.node = Sexpr.Const (Value.Int k); _ }) ->
      lin_scale k (linearize ~record a)
  | Sexpr.Neg a -> lin_scale (-1) (linearize ~record a)
  | _ ->
      record e;
      lin_term e

(* ------------------------------------------------------------------ *)
(* Theory state                                                       *)
(* ------------------------------------------------------------------ *)

type bound = { lo : int option; hi : int option }

let full = { lo = None; hi = None }

let inter a b =
  let lo =
    match (a.lo, b.lo) with Some x, Some y -> Some (max x y) | x, None -> x | None, y -> y
  in
  let hi =
    match (a.hi, b.hi) with Some x, Some y -> Some (min x y) | x, None -> x | None, y -> y
  in
  { lo; hi }

let bound_empty b = match (b.lo, b.hi) with Some l, Some h -> l > h | _ -> false
let fixed b = match (b.lo, b.hi) with Some l, Some h when l = h -> Some l | _ -> None

exception Contradiction

(* Every map is keyed by term id. All fields hold immutable values so
   a state snapshot is an O(1) record copy (the incremental context
   relies on that). *)
type state = {
  mutable parent : int Imap.t;  (** union-find over term ids *)
  mutable bounds : bound Imap.t;  (** per representative id *)
  mutable disequal : (int * int) list;  (** representative id <> constant *)
  mutable bools : bool Imap.t;  (** opaque atom id -> forced truth *)
  mutable pending : (linear * [ `Eq | `Ne | `Ge ]) list;  (** multi-term, re-checked at fixpoint *)
  mutable opaque : Sexpr.t Imap.t;  (** opaque term definitions, by id *)
}

let find st i =
  let rec go i = match Imap.find_opt i st.parent with Some p when p <> i -> go p | _ -> i in
  go i

let bound_of st i = Option.value ~default:full (Imap.find_opt (find st i) st.bounds)

let set_bound st i b =
  let r = find st i in
  let nb = inter (bound_of st r) b in
  if bound_empty nb then raise Contradiction;
  (match fixed nb with
  | Some v ->
      if List.exists (fun (r', c) -> r' = r && c = v) st.disequal then raise Contradiction
  | None -> ());
  st.bounds <- Imap.add r nb st.bounds

let union st a b =
  let ra = find st a and rb = find st b in
  if ra <> rb then begin
    let merged = inter (bound_of st ra) (bound_of st rb) in
    if bound_empty merged then raise Contradiction;
    st.parent <- Imap.add ra rb st.parent;
    st.bounds <- Imap.add rb merged st.bounds;
    st.disequal <-
      List.map (fun (r, c) -> ((if r = ra then rb else r), c)) st.disequal;
    match fixed merged with
    | Some v -> if List.mem (rb, v) st.disequal then raise Contradiction
    | None -> ()
  end

let add_disequal st i c =
  let r = find st i in
  (match fixed (bound_of st r) with Some v when v = c -> raise Contradiction | _ -> ());
  (* Tighten adjacent bounds: t <> c with lo = c bumps lo. *)
  let b = bound_of st r in
  let b =
    match b.lo with Some l when l = c -> { b with lo = Some (c + 1) } | _ -> b
  in
  let b =
    match b.hi with Some h when h = c -> { b with hi = Some (c - 1) } | _ -> b
  in
  if bound_empty b then raise Contradiction;
  st.bounds <- Imap.add r b st.bounds;
  st.disequal <- (r, c) :: st.disequal

(* Evaluate a linear form if every term is fixed. *)
let lin_value st l =
  List.fold_left
    (fun acc (t, c) ->
      match acc with
      | None -> None
      | Some sum -> (
          match fixed (bound_of st (Sexpr.id t)) with
          | Some v -> Some (sum + (c * v))
          | None -> None))
    (Some l.const) l.coeffs

(* Assert [l ⋈ 0]. *)
let assert_linear st l rel =
  match (l.coeffs, rel) with
  | [], `Eq -> if l.const <> 0 then raise Contradiction
  | [], `Ne -> if l.const = 0 then raise Contradiction
  | [], `Ge -> if l.const < 0 then raise Contradiction
  | [ (t, c) ], `Eq ->
      if l.const mod c <> 0 then raise Contradiction
      else
        let v = -l.const / c in
        set_bound st (Sexpr.id t) { lo = Some v; hi = Some v }
  | [ (t, c) ], `Ne ->
      if l.const mod c = 0 then add_disequal st (Sexpr.id t) (-l.const / c)
  | [ (t, c) ], `Ge ->
      (* c*t + k >= 0 *)
      if c > 0 then
        (* t >= ceil(-k / c) *)
        let v = -l.const in
        let q = if v >= 0 then (v + c - 1) / c else -(-v / c) in
        set_bound st (Sexpr.id t) { lo = Some q; hi = None }
      else
        let c = -c in
        (* t <= floor(k / c) *)
        let v = l.const in
        let q = if v >= 0 then v / c else -((-v + c - 1) / c) in
        set_bound st (Sexpr.id t) { lo = None; hi = Some q }
  | [ (t1, 1); (t2, -1) ], `Eq | [ (t1, -1); (t2, 1) ], `Eq ->
      if l.const = 0 then union st (Sexpr.id t1) (Sexpr.id t2)
      else st.pending <- (l, rel) :: st.pending
  | _ -> st.pending <- (l, rel) :: st.pending

(* Re-check pending multi-term constraints; fully fixed ones decide. *)
let check_pending st =
  List.iter
    (fun (l, rel) ->
      match lin_value st l with
      | Some v -> (
          match rel with
          | `Eq -> if v <> 0 then raise Contradiction
          | `Ne -> if v = 0 then raise Contradiction
          | `Ge -> if v < 0 then raise Contradiction)
      | None -> ())
    st.pending

(* ------------------------------------------------------------------ *)
(* Atom assertion                                                     *)
(* ------------------------------------------------------------------ *)

let is_intish (e : Sexpr.t) =
  match Sexpr.view e with
  | Sexpr.Const (Value.Int _) | Sexpr.Sym _ | Sexpr.Bin _ | Sexpr.Neg _ | Sexpr.Get _
  | Sexpr.Dget _ | Sexpr.Ufun _ | Sexpr.Ite _ ->
      true
  | _ -> false

let record_opaque st e =
  let i = Sexpr.id e in
  if not (Imap.mem i st.opaque) then st.opaque <- Imap.add i e st.opaque

(* Evaluate opaque definitions whose free symbols are now fixed; their
   terms then get point bounds, enabling contradictions like
   [x = 8.8.8.8] vs [(x & mask) == other_net]. *)
let propagate_opaque st =
  Imap.iter
    (fun i e ->
      let fixed_value s =
        match fixed (bound_of st (Sexpr.id (Sexpr.sym s))) with
        | Some v -> Some (Value.Int v)
        | None -> None
      in
      match Sexpr.view (Sexpr.subst fixed_value e) with
      | Sexpr.Const (Value.Int v) -> set_bound st i { lo = Some v; hi = Some v }
      | Sexpr.Const (Value.Bool b) ->
          let v = if b then 1 else 0 in
          set_bound st i { lo = Some v; hi = Some v }
      | _ -> ())
    st.opaque

let rec assert_atom st (e : Sexpr.t) positive =
  let linearize e = linearize ~record:(record_opaque st) e in
  match Sexpr.view e with
  | Sexpr.Const (Value.Bool b) -> if b <> positive then raise Contradiction
  | Sexpr.Not a -> assert_atom st a (not positive)
  | Sexpr.Bin (Nfl.Ast.And, a, b) when positive ->
      assert_atom st a true;
      assert_atom st b true
  | Sexpr.Bin (Nfl.Ast.Or, a, b) when not positive ->
      assert_atom st a false;
      assert_atom st b false
  | Sexpr.Bin ((Nfl.Ast.And | Nfl.Ast.Or), _, _) ->
      (* Disjunctive shape: handled by the case-splitting wrapper; as a
         single theory atom we record it opaquely. *)
      assert_bool st e positive
  | Sexpr.Bin
      (Nfl.Ast.Eq, { Sexpr.node = Sexpr.Tup xs; _ }, { Sexpr.node = Sexpr.Tup ys; _ })
    when List.length xs = List.length ys ->
      if positive then
        List.iter2 (fun x y -> assert_atom st (Sexpr.mk_bin Nfl.Ast.Eq x y) true) xs ys
      else assert_bool st e positive
  | Sexpr.Bin
      ( Nfl.Ast.Eq,
        { Sexpr.node = Sexpr.Tup xs; _ },
        { Sexpr.node = Sexpr.Const (Value.Tuple vs); _ } )
  | Sexpr.Bin
      ( Nfl.Ast.Eq,
        { Sexpr.node = Sexpr.Const (Value.Tuple vs); _ },
        { Sexpr.node = Sexpr.Tup xs; _ } )
    when List.length xs = List.length vs ->
      if positive then
        List.iter2
          (fun x v -> assert_atom st (Sexpr.mk_bin Nfl.Ast.Eq x (Sexpr.const v)) true)
          xs vs
      else assert_bool st e positive
  | Sexpr.Bin (Nfl.Ast.Ne, a, b) -> assert_atom st (Sexpr.mk_bin Nfl.Ast.Eq a b) (not positive)
  | Sexpr.Bin (Nfl.Ast.Eq, a, b) when is_intish a && is_intish b ->
      assert_linear st (lin_sub (linearize a) (linearize b)) (if positive then `Eq else `Ne)
  | Sexpr.Bin (Nfl.Ast.Lt, a, b) ->
      (* a < b  <=>  b - a - 1 >= 0;  ¬(a<b) <=> a - b >= 0 *)
      if positive then
        assert_linear st (lin_add (lin_sub (linearize b) (linearize a)) (lin_const (-1))) `Ge
      else assert_linear st (lin_sub (linearize a) (linearize b)) `Ge
  | Sexpr.Bin (Nfl.Ast.Le, a, b) ->
      if positive then assert_linear st (lin_sub (linearize b) (linearize a)) `Ge
      else assert_linear st (lin_add (lin_sub (linearize a) (linearize b)) (lin_const (-1))) `Ge
  | Sexpr.Bin (Nfl.Ast.Gt, a, b) -> assert_atom st (Sexpr.mk_bin Nfl.Ast.Lt b a) positive
  | Sexpr.Bin (Nfl.Ast.Ge, a, b) -> assert_atom st (Sexpr.mk_bin Nfl.Ast.Le b a) positive
  | Sexpr.Bin (Nfl.Ast.Eq, _, _) -> assert_bool st e positive
  | Sexpr.Mem _ | Sexpr.Sym _ | Sexpr.Ufun _ | Sexpr.Get _ | Sexpr.Dget _ | Sexpr.Ite _ ->
      assert_bool st e positive
  | Sexpr.Bin _ | Sexpr.Const _ | Sexpr.Neg _ | Sexpr.Tup _ | Sexpr.Lst _ ->
      assert_bool st e positive

and assert_bool st atom positive =
  let key = Sexpr.id atom in
  match Imap.find_opt key st.bools with
  | Some b -> if b <> positive then raise Contradiction
  | None -> st.bools <- Imap.add key positive st.bools

(* ------------------------------------------------------------------ *)
(* Entry point                                                        *)
(* ------------------------------------------------------------------ *)

let fresh_state () =
  {
    parent = Imap.empty;
    bounds = Imap.empty;
    disequal = [];
    bools = Imap.empty;
    pending = [];
    opaque = Imap.empty;
  }

(* Direct conjunction check: every literal asserted into one theory
   state; disjunctive shapes fall back to opaque atoms. *)
let check_direct (literals : literal list) =
  let st = fresh_state () in
  match
    List.iter (fun l -> assert_atom st l.atom l.positive) literals;
    (* A few propagation rounds let union-find merges feed the pending
       multi-term constraints and opaque-term definitions. *)
    propagate_opaque st;
    check_pending st;
    propagate_opaque st;
    check_pending st
  with
  | () -> Sat
  | exception Contradiction -> Unsat

(* Find a splittable literal: a positive disjunction or a negated
   conjunction at the top level of an atom. *)
let rec find_split acc = function
  | [] -> None
  | l :: rest -> (
      match (Sexpr.view l.atom, l.positive) with
      | Sexpr.Bin (Nfl.Ast.Or, a, b), true ->
          Some (List.rev_append acc rest, lit a true, lit b true)
      | Sexpr.Bin (Nfl.Ast.And, a, b), false ->
          Some (List.rev_append acc rest, lit a false, lit b false)
      | Sexpr.Not a, p -> find_split acc ({ atom = a; positive = not p } :: rest)
      | _ -> find_split (l :: acc) rest)

(* Bounded DPLL-style case splitting over top-level disjunctions; at
   the depth cap the remaining disjunctions stay opaque (conservative
   towards Sat). *)
let rec check_split depth (literals : literal list) =
  if depth = 0 then check_direct literals
  else
    match find_split [] literals with
    | None -> check_direct literals
    | Some (rest, la, lb) -> (
        match check_split (depth - 1) (la :: rest) with
        | Sat -> Sat
        | Unsat -> check_split (depth - 1) (lb :: rest))

(** [check literals]: [Unsat] when the conjunction is refuted, [Sat]
    otherwise (possibly over-approximate, see module doc). Top-level
    disjunctions are case-split up to a bounded depth. *)
let check (literals : literal list) = check_split 12 literals

(* ------------------------------------------------------------------ *)
(* Incremental context with memoized path-condition checks            *)
(* ------------------------------------------------------------------ *)

(* Polarity-signed term id of a literal: positive literals map to
   [id+1], negative to [-(id+1)] (the shift keeps id 0 signable).
   [lit] folds negations into the polarity, so two literals denoting
   the same constraint always produce the same key — in O(1), with no
   term rendering. *)
let lit_key l = if l.positive then Sexpr.id l.atom + 1 else -(Sexpr.id l.atom + 1)

let negate_key k = -k

type memo = {
  table : (int list, verdict) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}
(** Verdict cache keyed on the canonicalized conjunction: the sorted,
    deduplicated vector of polarity-signed literal ids. Keys are
    order-insensitive and idempotent, so the table is sound to share
    across explorations in one session — equal ids mean equal terms,
    hence equal keys mean equal formulas. *)

let memo_create () = { table = Hashtbl.create 256; hits = 0; misses = 0 }
let memo_hits m = m.hits
let memo_misses m = m.misses
let memo_size m = Hashtbl.length m.table

(* Snapshot/restore of the theory state: every field holds an immutable
   value, so a snapshot is an O(1) record copy. *)
let state_snapshot (st : state) =
  {
    parent = st.parent;
    bounds = st.bounds;
    disequal = st.disequal;
    bools = st.bools;
    pending = st.pending;
    opaque = st.opaque;
  }

let state_restore (st : state) (s : state) =
  st.parent <- s.parent;
  st.bounds <- s.bounds;
  st.disequal <- s.disequal;
  st.bools <- s.bools;
  st.pending <- s.pending;
  st.opaque <- s.opaque

(* A literal whose refutation may need DPLL case splitting: the
   incremental direct-assertion path would be weaker than [check] on
   these, so they force a fallback to the full procedure. [lit] folds
   [Not] into the polarity, but stay conservative on a raw [Not]. *)
let splittable l =
  match (Sexpr.view l.atom, l.positive) with
  | Sexpr.Bin (Nfl.Ast.Or, _, _), true | Sexpr.Bin (Nfl.Ast.And, _, _), false -> true
  | Sexpr.Not _, _ -> true
  | _ -> false

module Ctx = struct
  type frame = {
    f_key : int;
    f_snap : state;  (** theory state before this literal was asserted *)
    f_splittable : bool;
    f_broken_before : bool;
  }

  type t = {
    st : state;  (** theory state with every pushed literal asserted *)
    mutable frames : frame list;
    mutable keys : int list;  (** signed literal ids of the stack, sorted *)
    mutable lits_rev : literal list;  (** pushed literals, newest first *)
    mutable splittables : int;  (** splittable literals on the stack *)
    mutable broken : bool;  (** a push refuted the stack directly *)
    memo : memo;
    mutable checks : int;  (** decision-procedure invocations (= misses) *)
    mutable time : float;  (** cumulative seconds inside the procedure *)
  }

  let create ?memo () =
    let memo = match memo with Some m -> m | None -> memo_create () in
    {
      st = fresh_state ();
      frames = [];
      keys = [];
      lits_rev = [];
      splittables = 0;
      broken = false;
      memo;
      checks = 0;
      time = 0.;
    }

  let depth c = List.length c.frames
  let path_condition c = List.rev c.lits_rev
  let memo c = c.memo
  let checks c = c.checks
  let solver_time c = c.time

  let rec insert_sorted (k : int) = function
    | [] -> [ k ]
    | k' :: rest as l -> if k <= k' then k :: l else k' :: insert_sorted k rest

  let rec remove_first (k : int) = function
    | [] -> []
    | k' :: rest -> if k = k' then rest else k' :: remove_first k rest

  let push c l =
    let key = lit_key l in
    c.frames <-
      { f_key = key; f_snap = state_snapshot c.st; f_splittable = splittable l;
        f_broken_before = c.broken }
      :: c.frames;
    c.keys <- insert_sorted key c.keys;
    c.lits_rev <- l :: c.lits_rev;
    if splittable l then c.splittables <- c.splittables + 1;
    if not c.broken then
      try assert_atom c.st l.atom l.positive with Contradiction -> c.broken <- true

  let pop c =
    match c.frames with
    | [] -> invalid_arg "Solver.Ctx.pop: empty context"
    | f :: rest ->
        c.frames <- rest;
        state_restore c.st f.f_snap;
        c.keys <- remove_first f.f_key c.keys;
        c.lits_rev <- List.tl c.lits_rev;
        if f.f_splittable then c.splittables <- c.splittables - 1;
        c.broken <- f.f_broken_before

  (* Sorted + deduplicated conjunction key: idempotent, so re-testing a
     literal already on the stack maps to an already-cached key. *)
  let conj_key c (k : int) =
    let rec dedup = function
      | a :: (b :: _ as rest) -> if a = b then dedup rest else a :: dedup rest
      | l -> l
    in
    dedup (insert_sorted k c.keys)

  (* Direct incremental check of [stack ∧ l]: assert the one new
     literal against the accumulated theory state, run the same
     propagation rounds as [check_direct], restore. Equivalent to
     [check_direct (stack @ [l])] because assertions are independent of
     the propagation rounds that follow them. *)
  let check_incremental c l =
    let snap = state_snapshot c.st in
    let v =
      match
        assert_atom c.st l.atom l.positive;
        propagate_opaque c.st;
        check_pending c.st;
        propagate_opaque c.st;
        check_pending c.st
      with
      | () -> Sat
      | exception Contradiction -> Unsat
    in
    state_restore c.st snap;
    v

  let check_extended c l =
    let k = lit_key l in
    if c.broken then begin
      (* The stack itself is refuted: every extension is Unsat. *)
      c.memo.hits <- c.memo.hits + 1;
      Unsat
    end
    else if List.exists (fun k' -> k' = k) c.keys then begin
      (* Subsumed: stack ∧ l = stack, and the stack is not refuted. *)
      c.memo.hits <- c.memo.hits + 1;
      Sat
    end
    else if List.exists (fun k' -> k' = negate_key k) c.keys then begin
      (* The stack contains the canonical negation: genuinely Unsat. *)
      c.memo.hits <- c.memo.hits + 1;
      Unsat
    end
    else
      let key = conj_key c k in
      match Hashtbl.find_opt c.memo.table key with
      | Some v ->
          c.memo.hits <- c.memo.hits + 1;
          v
      | None ->
          c.memo.misses <- c.memo.misses + 1;
          c.checks <- c.checks + 1;
          let t0 = Sys.time () in
          let v =
            if c.splittables = 0 && not (splittable l) then check_incremental c l
            else check (List.rev (l :: c.lits_rev))
          in
          c.time <- c.time +. (Sys.time () -. t0);
          Hashtbl.add c.memo.table key v;
          v
end

(** Best-effort satisfying assignment for the *constrained* named
    symbolic variables in [literals]: fixed terms get their value,
    bounded terms a bound endpoint, terms carrying disequalities the
    smallest allowed value at or above [default]. Variables the solver
    saw only inside opaque atoms are deliberately absent — callers
    (e.g. the test generator) supply those from domain-specific
    candidate pools without this function clobbering them. Returns
    [None] when the conjunction is refutable. *)
let concretize ?(default = 0) (literals : literal list) =
  let st = fresh_state () in
  match
    List.iter (fun l -> assert_atom st l.atom l.positive) literals;
    propagate_opaque st;
    check_pending st
  with
  | exception Contradiction -> None
  | () ->
      let names =
        List.fold_left
          (fun acc l -> Sexpr.Sset.union acc (Sexpr.syms l.atom))
          Sexpr.Sset.empty literals
      in
      let assign name =
        let i = Sexpr.id (Sexpr.sym name) in
        let b = bound_of st i in
        let r = find st i in
        let avoid = List.filter_map (fun (r', c) -> if r' = r then Some c else None) st.disequal in
        let merged = r <> i in
        if b = full && avoid = [] && not merged then None
        else
          (* Walk away from disequalities in a direction that cannot
             leave the interval: up from a lower bound, down from an
             upper bound. *)
          let rec pick_up v = if List.mem v avoid then pick_up (v + 1) else v in
          let rec pick_down v = if List.mem v avoid then pick_down (v - 1) else v in
          let v =
            match fixed b with
            | Some v -> v
            | None -> (
                match (b.lo, b.hi) with
                | Some l, _ -> pick_up l
                | None, Some h -> pick_down h
                | None, None -> pick_up default)
          in
          Some v
      in
      Some
        (Sexpr.Sset.fold
           (fun name acc ->
             match assign name with
             | Some v -> Smap.add name (Value.Int v) acc
             | None -> acc)
           names Smap.empty)
