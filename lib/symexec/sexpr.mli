(** Hash-consed symbolic expressions.

    Terms over concrete constants, named symbolic variables,
    uninterpreted functions, symbolic container reads and
    dictionary-membership atoms. Every term is {e interned}: all
    construction goes through the smart constructors below, which
    guarantee that structurally equal terms are physically equal and
    carry the same unique {!id}. Equality, hashing and map/set
    membership over terms are therefore O(1) — independent of term
    depth — which is what the solver, the exploration memo and every
    substitution walk above them key on.

    Smart constructors also constant-fold, so fully concrete programs
    symbolically evaluate to constants — the property the path/model
    equivalence tests rely on. *)

type t = private { id : int; node : node }
(** A unique interned term. [id] is session-local: it identifies the
    term within the current intern table only, so persisted artifacts
    must serialize terms structurally and re-intern on read
    (see {!Nfactor.Model_io}). The [id] field is declared first so any
    residual polymorphic comparison short-circuits on it. *)

and node =
  | Const of Value.t
  | Sym of string  (** free symbolic variable, e.g. ["pkt.dport"] *)
  | Bin of Nfl.Ast.binop * t * t
  | Not of t
  | Neg of t
  | Tup of t list
  | Lst of t list
  | Get of t * t  (** container read with symbolic index *)
  | Ufun of string * t list  (** uninterpreted function, e.g. [hash] *)
  | Mem of dict_state * t  (** membership atom against a snapshot *)
  | Dget of dict_state * t  (** dictionary read against a snapshot *)
  | Ite of t * t * t  (** guarded value summary: [if g then a else b] *)

(** A symbolic dictionary: unknown contents at loop entry ([base])
    plus this path's strong updates, newest first ([Some v] insert,
    [None] delete). Snapshots are plain records (not interned); the
    [Mem]/[Dget] atoms wrapping them are. *)
and dict_state = { base : string; writes : (t * t option) list }

val view : t -> node
(** Shallow view for pattern matching; [view e = e.node]. *)

val id : t -> int
(** Unique session-local id; [id a = id b <=> a == b]. *)

val dict_base : string -> dict_state

val empty_base : string
(** Base marking a dictionary known to start empty: membership against
    it resolves to [false] instead of producing an atom. *)

val dict_empty : dict_state

val equal : t -> t -> bool
(** O(1): physical equality of interned terms. *)

val compare : t -> t -> int
(** O(1): compares ids. Total order within a session; {e not} a
    structural order, so do not use it to produce output that must be
    stable across processes. *)

val hash : t -> int
(** O(1): hash of the id. *)

val equal_structural : t -> t -> bool
(** Deep structural equality, insensitive to interning generation.
    Only needed when comparing terms across intern tables (e.g. in
    serialization tests); within one session it coincides with
    {!equal}. *)

val pp : Format.formatter -> t -> unit
val pp_dict : Format.formatter -> dict_state -> unit
val to_string : t -> string
val is_const : t -> bool
val const_of : t -> Value.t option

(** {1 Smart constructors}

    The only way to build terms. Each returns the unique interned
    representative of its (folded) result. *)

val const : Value.t -> t
val sym : string -> t
(** Symbols are interned through a dedicated string-keyed table, so
    repeated [sym "pkt.dport"] lookups never allocate a probe node. *)

val tru : t
val fls : t
val int : int -> t

val key_relation : t -> t -> [ `Equal | `Distinct | `Unknown ]
(** Syntactic decidability of key equality (used to resolve reads
    through dictionary write lists). *)

val mk_not : t -> t
val mk_neg : t -> t
val mk_bin : Nfl.Ast.binop -> t -> t -> t
val mk_tuple : t list -> t
val mk_list : t list -> t

val mk_get : t -> t -> t
(** Concrete index into a known-shape container resolves; otherwise
    the read stays symbolic. *)

val mk_ufun : string -> t list -> t
(** [hash]/[len] of constants fold. *)

val mk_mem : dict_state -> t -> t
(** Membership resolved through the write list where key comparisons
    are decidable; bottoms out in an atom (or [false] on
    {!empty_base}). *)

val mk_dget : dict_state -> t -> t

val mk_ite : t -> t -> t -> t
(** [mk_ite g a b] is the guarded value summary [if g then a else b]
    used by join-point path merging. Folds: constant guard selects an
    arm, equal arms collapse ([mk_ite g a a = a]), a negated guard
    swaps arms, boolean-constant arms reduce to the guard or its
    negation, and a directly nested ite under the same guard prunes to
    its reachable arm. *)

(** {1 Queries} *)

module Sset : Set.S with type elt = string

val syms : t -> Sset.t
(** Free symbolic names, dictionary bases included. *)

val subst : (string -> Value.t option) -> t -> t
(** Substitute named symbols by values and re-simplify. *)

val subst_dict : (string -> Value.t option) -> dict_state -> dict_state

val subst_sym : (string -> t option) -> t -> t
(** Substitute named symbols by expressions and re-simplify (used to
    thread packet field expressions through downstream predicates). *)

val subst_sym_dict : (string -> t option) -> dict_state -> dict_state

(** {1 Intern table} *)

val intern_count : unit -> int
(** Number of distinct terms interned so far (= the next fresh id). *)

val unsafe_reset_intern : unit -> unit
(** Clear the intern table and restart ids from 0. {b Test-only}:
    terms created before the reset must never be compared or combined
    with terms created after it (the uniqueness invariant no longer
    relates them). Used to simulate a fresh process in serialization
    round-trip tests. *)
