(** Bounded symbolic execution of NFL blocks, as a worklist engine.

    Explores every feasible execution path of a block under a symbolic
    environment: packet fields and designated state variables start as
    free symbols, branches fork when the {!Solver} cannot decide them,
    loops unroll up to a bound (Section 3.2: NF code is written so that
    loops are bounded; paths that exceed the bound are kept but marked
    truncated). Each completed path carries its path condition,
    executed statements, emitted packets and final symbolic store —
    everything Algorithm 1's refinement step (lines 11-16) needs.

    Pending states live on an explicit LIFO worklist rather than the
    native call stack: a fork schedules its false arm as a task
    (carrying the state's hash-consed path condition) and continues
    inline on the true arm, so with merging off the engine replays the
    old depth-first enumeration literally. Both arms are discharged
    against the incremental {!Solver.Ctx} {e before} being scheduled —
    an UNSAT side is pruned eagerly and never interpreted. When a
    [merge_policy] is supplied, forks at branches with a CFG join point
    open a {e merge region}: arms that reach the join with compatible
    stores are folded into one state whose differing values become
    guarded {!Sexpr.mk_ite} summaries (MultiSE-style), so k sequential
    branches cost O(k) scheduled states instead of O(2^k) paths. *)

module Smap = Map.Make (String)
module Imap = Map.Make (Int)

exception Unsupported of string

(** Symbolic runtime values. *)
type sval =
  | Scalar of Sexpr.t
  | Pktv of (string * Sexpr.t) list  (** packet as a field map *)
  | Dictv of Sexpr.dict_state
  | Listv of sval list

let rec pp_sval ppf = function
  | Scalar e -> Sexpr.pp ppf e
  | Pktv fields ->
      Fmt.pf ppf "pkt{%a}" Fmt.(list ~sep:(any "; ") (pair ~sep:(any "=") string Sexpr.pp)) fields
  | Dictv d -> Sexpr.pp_dict ppf d
  | Listv vs -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") pp_sval) vs

(** Lift a concrete value into the symbolic domain. *)
let rec sval_of_value (v : Value.t) =
  match v with
  | Value.Int _ | Value.Bool _ | Value.Str _ | Value.Tuple _ -> Scalar (Sexpr.const v)
  | Value.List vs -> Listv (List.map sval_of_value vs)
  | Value.Dict kvs ->
      (* Writes are read newest-first, and concrete dict lookups take
         the first binding, so the lift must preserve source order —
         reversing would flip precedence between duplicate keys. *)
      Dictv
        {
          Sexpr.base = Sexpr.empty_base;
          writes = List.map (fun (k, v) -> (Sexpr.const k, Some (Sexpr.const v))) kvs;
        }
  | Value.Pkt p ->
      Pktv
        (List.map (fun f -> (f, Sexpr.int (Packet.Pkt.get_int p f))) Packet.Headers.int_fields
        @ List.map
            (fun f -> (f, Sexpr.const (Value.Str (Packet.Pkt.get_str p f))))
            Packet.Headers.str_fields)

(** Fully symbolic packet named [name]: field [f] is the symbol
    ["name.f"]. *)
let sym_pkt name =
  Pktv (List.map (fun f -> (f, Sexpr.sym (name ^ "." ^ f))) (Packet.Headers.int_fields @ Packet.Headers.str_fields))

type config = {
  loop_bound : int;  (** max iterations per loop statement per path *)
  max_paths : int;  (** exploration budget; hitting it sets [overflowed] *)
  max_steps : int;  (** per-path statement budget *)
}

let default_config = { loop_bound = 2; max_paths = 4096; max_steps = 20_000 }

type merge_policy = {
  mergeable_if : int -> bool;
      (** May a fork at this [If] sid open a merge region? Typically
          [Joins.mergeable]: the branch has a statement join point
          and does not sit inside a loop body. *)
  admit_guard : Sexpr.t -> bool;
      (** May this branch atom be folded into a guard? Extraction
          rejects atoms over config/state symbols so that entry tables
          keep per-path concrete verdicts for them. *)
}

type path = {
  pc : Solver.literal list;  (** path condition, in decision order *)
  trace : int list;  (** executed statement ids, in order *)
  sends : (string * Sexpr.t) list list;  (** snapshots of packets sent *)
  env : sval Smap.t;  (** final symbolic store *)
  truncated : bool;  (** loop bound or step budget hit *)
}

type stats = {
  mutable paths : int;
  mutable truncated_paths : int;
  mutable decides : int;  (** branch decisions that consulted the solver *)
  mutable solver_calls : int;  (** actual decision-procedure invocations *)
  mutable solver_cache_hits : int;
  mutable solver_cache_misses : int;
  mutable solver_time_s : float;  (** CPU time inside the decision procedure *)
  mutable forks : int;
  mutable max_fork_depth : int;  (** deepest path condition at a fork *)
  mutable fork_depths : int Imap.t;  (** pc depth at fork -> fork count *)
  mutable overflowed : bool;  (** [max_paths] reached; enumeration incomplete *)
  mutable merges : int;  (** states folded away at join points *)
  mutable prunes : int;  (** branch sides discharged UNSAT before scheduling *)
}

(* Mutable per-path state, copied on fork (all fields are immutable
   values, so copying is O(1) record copy), plus the innermost merge
   region the state belongs to. *)
type pstate = {
  mutable env : sval Smap.t;
  mutable pc_rev : Solver.literal list;
  mutable trace_rev : int list;
  mutable sends_rev : (string * Sexpr.t) list list;
  mutable iters : int Imap.t;  (** loop sid -> iterations on this path *)
  mutable steps : int;
  mutable truncated : bool;
  mutable region : join option;
}

(* A merge region: opened by a fork at a mergeable branch. [expected]
   counts the control threads that will eventually either arrive at the
   join ([parked]) or die (finish their path early); when everyone is
   accounted for the region releases its parked states — merged where
   compatible — into the continuation [jcont]. *)
and join = {
  jcont : cont;
  jouter : join option;
  mutable expected : int;
  mutable parked : pstate list;
}

(* Defunctionalized continuations: what remains of the program after
   the current statement. Tasks pair a state with one of these, so a
   pending fork arm is a first-class value on the worklist instead of a
   stack frame. *)
and cont =
  | Kfinish
  | Kseq of Nfl.Ast.block * cont
  | Kloop of Nfl.Ast.stmt * cont  (** re-test a [While] condition *)
  | Kfor of string * sval list * Nfl.Ast.block * cont
  | Kjoin of join

let copy ps =
  {
    env = ps.env;
    pc_rev = ps.pc_rev;
    trace_rev = ps.trace_rev;
    sends_rev = ps.sends_rev;
    iters = ps.iters;
    steps = ps.steps;
    truncated = ps.truncated;
    region = ps.region;
  }

exception Cut  (* abandon this path (infeasible or per-path budget) *)

exception Overflow
(* [max_paths] spent: unlike [Cut], this is not caught per task, so it
   unwinds the whole exploration promptly instead of letting queued
   states keep exploring a dead budget. *)

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                              *)
(* ------------------------------------------------------------------ *)

let scalar = function
  | Scalar e -> e
  | Pktv _ -> raise (Unsupported "packet used as scalar")
  | Dictv _ -> raise (Unsupported "dict used as scalar")
  | Listv vs ->
      (* Lists of scalars may appear in scalar position (indexing with a
         symbolic index); embed as a list term. *)
      Sexpr.mk_list
        (List.map
           (function Scalar e -> e | _ -> raise (Unsupported "nested container in scalar list"))
           vs)

let rec eval ps (e : Nfl.Ast.expr) : sval =
  match e with
  | Nfl.Ast.Int n -> Scalar (Sexpr.int n)
  | Nfl.Ast.Bool b -> Scalar (Sexpr.const (Value.Bool b))
  | Nfl.Ast.Str s -> Scalar (Sexpr.const (Value.Str s))
  | Nfl.Ast.Var x -> (
      match Smap.find_opt x ps.env with
      | Some v -> v
      | None ->
          (* A read of a local never assigned on this path (e.g. log
             code peeking at another iteration's scratch): a fresh
             symbolic scalar, as KLEE treats uninitialized memory. *)
          Scalar (Sexpr.sym x))
  | Nfl.Ast.Tuple es -> Scalar (Sexpr.mk_tuple (List.map (fun e -> scalar (eval ps e)) es))
  | Nfl.Ast.List_lit es -> Listv (List.map (eval ps) es)
  | Nfl.Ast.Dict_lit -> Dictv Sexpr.dict_empty
  | Nfl.Ast.Binop (op, a, b) -> Scalar (Sexpr.mk_bin op (scalar (eval ps a)) (scalar (eval ps b)))
  | Nfl.Ast.Unop (Nfl.Ast.Not, a) -> Scalar (Sexpr.mk_not (scalar (eval ps a)))
  | Nfl.Ast.Unop (Nfl.Ast.Neg, a) -> Scalar (Sexpr.mk_neg (scalar (eval ps a)))
  | Nfl.Ast.Index (c, k) -> (
      let kv = scalar (eval ps k) in
      match eval ps c with
      | Dictv d -> Scalar (Sexpr.mk_dget d kv)
      | Listv vs -> (
          match Sexpr.view kv with
          | Sexpr.Const (Value.Int i) when i >= 0 && i < List.length vs -> List.nth vs i
          | Sexpr.Const (Value.Int _) -> raise (Unsupported "list index out of range")
          | _ ->
              (* Symbolic index: selection term over a scalar list. *)
              Scalar
                (Sexpr.mk_get
                   (Sexpr.mk_list
                      (List.map
                         (function
                           | Scalar e -> e
                           | _ -> raise (Unsupported "symbolic index into non-scalar list"))
                         vs))
                   kv))
      | Scalar t -> Scalar (Sexpr.mk_get t kv)
      | Pktv _ -> raise (Unsupported "indexing a packet"))
  | Nfl.Ast.Field (pe, f) -> (
      match eval ps pe with
      | Pktv fields -> (
          match List.assoc_opt f fields with
          | Some v -> Scalar v
          | None -> raise (Unsupported ("unknown packet field " ^ f)))
      | Scalar t -> Scalar (Sexpr.mk_get t (Sexpr.const (Value.Str f)))
      | Dictv _ | Listv _ -> raise (Unsupported "field access on container"))
  | Nfl.Ast.Mem (k, d) -> (
      let kv = scalar (eval ps k) in
      match eval ps d with
      | Dictv ds -> Scalar (Sexpr.mk_mem ds kv)
      | Listv vs ->
          (* Membership in a (config) list: decidable componentwise when
             comparisons fold; otherwise a disjunction. *)
          let eqs = List.map (fun v -> Sexpr.mk_bin Nfl.Ast.Eq kv (scalar v)) vs in
          Scalar (List.fold_left (fun acc e -> Sexpr.mk_bin Nfl.Ast.Or acc e) Sexpr.fls eqs)
      | Scalar _ | Pktv _ -> raise (Unsupported "membership on non-container"))
  | Nfl.Ast.Call (f, args) ->
      if Nfl.Builtins.is_pure f then
        let vs = List.map (eval ps) args in
        match (f, vs) with
        | "len", [ Listv l ] -> Scalar (Sexpr.int (List.length l))
        | "len", [ Dictv _ ] -> raise (Unsupported "len of symbolic dict")
        | _, _ -> Scalar (Sexpr.mk_ufun f (List.map scalar vs))
      else raise (Unsupported ("call in expression: " ^ f))

(* ------------------------------------------------------------------ *)
(* State merging                                                      *)
(* ------------------------------------------------------------------ *)

exception Incompatible

let lit_eq (a : Solver.literal) (b : Solver.literal) =
  Sexpr.equal a.Solver.atom b.Solver.atom && a.Solver.positive = b.Solver.positive

let lit_expr (l : Solver.literal) =
  if l.Solver.positive then l.Solver.atom else Sexpr.mk_not l.Solver.atom

let conj = function
  | [] -> Sexpr.tru
  | l :: rest ->
      List.fold_left (fun acc l -> Sexpr.mk_bin Nfl.Ast.And acc (lit_expr l)) (lit_expr l) rest

let dict_state_equal (a : Sexpr.dict_state) (b : Sexpr.dict_state) =
  String.equal a.Sexpr.base b.Sexpr.base
  && List.equal
       (fun (k1, v1) (k2, v2) -> Sexpr.equal k1 k2 && Option.equal Sexpr.equal v1 v2)
       a.Sexpr.writes b.Sexpr.writes

(* Fold two values into one guarded summary: [g] selects the first.
   Scalars become [ite] terms (hash-consing collapses equal arms);
   containers merge structurally. Dictionaries must agree physically —
   folding divergent write logs under a guard would need guarded
   writes, which the refinement step cannot split back apart. *)
let rec merge_sval g a b =
  match (a, b) with
  | Scalar ea, Scalar eb -> Scalar (Sexpr.mk_ite g ea eb)
  | Pktv fa, Pktv fb ->
      if List.length fa <> List.length fb then raise Incompatible;
      Pktv
        (List.map
           (fun (f, ea) ->
             match List.assoc_opt f fb with
             | Some eb -> (f, Sexpr.mk_ite g ea eb)
             | None -> raise Incompatible)
           fa)
  | Dictv da, Dictv db -> if dict_state_equal da db then a else raise Incompatible
  | Listv la, Listv lb ->
      if List.length la <> List.length lb then raise Incompatible;
      Listv (List.map2 (merge_sval g) la lb)
  | (Scalar _ | Pktv _ | Dictv _ | Listv _), _ -> raise Incompatible

(* Merged trace: [a]'s statements plus whichever of [b]'s the first arm
   did not execute (order-stable within [b]). The trace feeds coverage
   and slicing, where the set of executed sids is what matters. *)
let merge_trace a_rev b_rev =
  let module Iset = Set.Make (Int) in
  let seen = Iset.of_list a_rev in
  let extras = List.filter (fun sid -> not (Iset.mem sid seen)) b_rev in
  extras @ a_rev

(* Try to fold state [b] into state [a]. The two path conditions must
   share a common prefix and then diverge on {e complementary} head
   literals (same atom, opposite polarity) — this keeps merged path
   conditions mutually disjoint, which the extracted entry table relies
   on. Every diverging atom must pass [admit_guard]; then [a]'s suffix
   conjunction [ga] guards its values in the folded summaries and the
   merged path condition is the prefix plus [ga ∨ gb] (which the
   {!Sexpr} annihilator collapses to true when the suffixes are a
   complementary pair, i.e. straight-line diamonds merge for free). *)
let merge2 (pol : merge_policy) (a : pstate) (b : pstate) : pstate option =
  try
    if a.truncated <> b.truncated then raise Incompatible;
    if not (Imap.equal ( = ) a.iters b.iters) then raise Incompatible;
    if List.length a.sends_rev <> List.length b.sends_rev then raise Incompatible;
    let rec split pre_rev pa pb =
      match (pa, pb) with
      | x :: xs, y :: ys when lit_eq x y -> split (x :: pre_rev) xs ys
      | _ -> (pre_rev, pa, pb)
    in
    let pre_rev, sa, sb = split [] (List.rev a.pc_rev) (List.rev b.pc_rev) in
    (match (sa, sb) with
    | x :: _, y :: _
      when Sexpr.equal x.Solver.atom y.Solver.atom
           && x.Solver.positive = not y.Solver.positive ->
        ()
    | _ -> raise Incompatible);
    let admit (l : Solver.literal) =
      if not (pol.admit_guard l.Solver.atom) then raise Incompatible
    in
    List.iter admit sa;
    List.iter admit sb;
    let ga = conj sa and gb = conj sb in
    let env =
      Smap.merge
        (fun _ va vb ->
          match (va, vb) with
          | Some va, Some vb -> Some (merge_sval ga va vb)
          | _ -> raise Incompatible)
        a.env b.env
    in
    let sends_rev =
      List.map2
        (fun fa fb ->
          if List.length fa <> List.length fb then raise Incompatible;
          List.map
            (fun (f, ea) ->
              match List.assoc_opt f fb with
              | Some eb -> (f, Sexpr.mk_ite ga ea eb)
              | None -> raise Incompatible)
            fa)
        a.sends_rev b.sends_rev
    in
    let guard = Sexpr.mk_bin Nfl.Ast.Or ga gb in
    let pc_rev =
      if Sexpr.equal guard Sexpr.tru then pre_rev else Solver.lit guard true :: pre_rev
    in
    Some
      {
        env;
        pc_rev;
        trace_rev = merge_trace a.trace_rev b.trace_rev;
        sends_rev;
        iters = a.iters;
        steps = max a.steps b.steps;
        truncated = a.truncated;
        region = a.region;
      }
  with Incompatible -> None

(* ------------------------------------------------------------------ *)
(* Path exploration                                                   *)
(* ------------------------------------------------------------------ *)

(* A schedulable unit: resume [tps] at continuation [tcont]. The task's
   path condition travels with the state; the solver context is synced
   to it at dequeue. *)
type task = { tps : pstate; tcont : cont }

type t = {
  cfgc : config;
  merge : merge_policy option;
  stats : stats;
  ctx : Solver.Ctx.t;  (** incremental solver; stack mirrors [ctx_rev] *)
  mutable ctx_rev : Solver.literal list;  (** what the context holds, newest first *)
  mutable work : task list;  (** LIFO: preserves depth-first path order *)
  mutable done_paths : path list;
}

let push_lit t ps l =
  ps.pc_rev <- l :: ps.pc_rev;
  Solver.Ctx.push t.ctx l;
  t.ctx_rev <- l :: t.ctx_rev

(* Re-point the solver context at a task's path condition: pop to the
   longest common prefix, push the remainder. Pushes assert
   incrementally and perform no solver checks, so switching tasks costs
   no decision-procedure calls; with LIFO scheduling the pop/push
   sequence is exactly the old recursive engine's backtracking. *)
let sync_ctx t (target_rev : Solver.literal list) =
  if t.ctx_rev != target_rev then begin
    let rec go cur tgt =
      match (cur, tgt) with
      | c :: cs, g :: gs when lit_eq c g -> go cs gs
      | cur, tgt ->
          List.iter (fun _ -> Solver.Ctx.pop t.ctx) cur;
          List.iter (fun l -> Solver.Ctx.push t.ctx l) tgt
    in
    go (List.rev t.ctx_rev) (List.rev target_rev);
    t.ctx_rev <- target_rev
  end

let bump_expected = function None -> () | Some j -> j.expected <- j.expected + 1

let tick t ps (s : Nfl.Ast.stmt) on_finish =
  ps.trace_rev <- s.Nfl.Ast.sid :: ps.trace_rev;
  ps.steps <- ps.steps + 1;
  if ps.steps > t.cfgc.max_steps then begin
    (* Record the partial path as truncated rather than dropping it
       silently — callers inspect [truncated_paths] for budget hits. *)
    ps.truncated <- true;
    on_finish t ps;
    raise Cut
  end

(* Decide a branch condition under the current path condition, which
   the solver context holds asserted incrementally. The exploration
   invariant — the current pc is Sat (every pushed literal extended an
   unrefuted conjunction) — lets an Unsat on one side answer the other
   side for free: ¬sat_t ⇒ sat_f. This is the engine's eager pruning:
   an infeasible side is discharged here, before any state for it is
   built or scheduled, and [stats.prunes] counts those discharges.
   Constant conditions and cache hits cost no solver calls;
   [stats.solver_calls] counts actual decision-procedure invocations
   only. *)
let decide t (cond : Sexpr.t) =
  match Sexpr.view cond with
  | Sexpr.Const (Value.Bool b) -> if b then `True else `False
  | Sexpr.Const (Value.Int n) -> if n <> 0 then `True else `False
  | _ ->
      t.stats.decides <- t.stats.decides + 1;
      if Solver.Ctx.check_extended t.ctx (Solver.lit cond true) = Solver.Unsat then begin
        t.stats.prunes <- t.stats.prunes + 1;
        `False
      end
      else if Solver.Ctx.check_extended t.ctx (Solver.lit cond false) = Solver.Unsat then begin
        t.stats.prunes <- t.stats.prunes + 1;
        `True
      end
      else `Fork

let record_fork t =
  let d = Solver.Ctx.depth t.ctx in
  t.stats.forks <- t.stats.forks + 1;
  t.stats.max_fork_depth <- max t.stats.max_fork_depth d;
  t.stats.fork_depths <-
    Imap.update d (function None -> Some 1 | Some n -> Some (n + 1)) t.stats.fork_depths

(* --- Region accounting --------------------------------------------- *)

(* [finish] records a completed path and notifies the state's region
   that one expected control thread will never arrive; [arrive] parks a
   state at its region's join. Either event may complete the region's
   roster, triggering [release]: parked states are greedily merged into
   groups, each group is charged to the outer region and scheduled on
   the continuation. Releasing an empty roster (every arm finished
   early, e.g. both returned) cascades the death outward. *)

let rec finish t ps =
  t.stats.paths <- t.stats.paths + 1;
  if ps.truncated then t.stats.truncated_paths <- t.stats.truncated_paths + 1;
  t.done_paths <-
    {
      pc = List.rev ps.pc_rev;
      trace = List.rev ps.trace_rev;
      sends = List.rev ps.sends_rev;
      env = ps.env;
      truncated = ps.truncated;
    }
    :: t.done_paths;
  on_death t ps.region

and on_death t = function
  | None -> ()
  | Some j ->
      j.expected <- j.expected - 1;
      if j.expected >= 0 && List.length j.parked >= j.expected then release t j

and arrive t ps j =
  j.parked <- j.parked @ [ ps ];
  if List.length j.parked >= j.expected then release t j

and release t j =
  let states = j.parked in
  j.parked <- [];
  j.expected <- -1;
  match states with
  | [] -> on_death t j.jouter
  | _ ->
      let groups =
        match t.merge with
        | None -> states
        | Some pol ->
            (* Greedy pairwise folding in arrival order: each state
               joins the first compatible group or opens its own. *)
            List.fold_left
              (fun groups s ->
                let rec insert = function
                  | [] -> [ s ]
                  | g :: rest -> (
                      match merge2 pol g s with
                      | Some m -> m :: rest
                      | None -> g :: insert rest)
                in
                insert groups)
              [] states
      in
      t.stats.merges <- t.stats.merges + (List.length states - List.length groups);
      (* The region was opened in place of ONE expected arrival at the
         outer region; it hands back [groups] arrivals instead. *)
      (match j.jouter with
      | Some outer -> outer.expected <- outer.expected + List.length groups - 1
      | None -> ());
      List.iter (fun ps -> ps.region <- j.jouter) groups;
      (* Head-consed LIFO worklist: listing groups in arrival order
         makes them pop in arrival order, preserving the depth-first
         order completed paths are recorded in. *)
      t.work <- List.map (fun ps -> { tps = ps; tcont = j.jcont }) groups @ t.work

(* --- Interpreter --------------------------------------------------- *)

let rec apply t ps (k : cont) =
  match k with
  | Kfinish -> finish t ps
  | Kseq ([], k) -> apply t ps k
  | Kseq (s :: rest, k) -> exec_stmt t ps s (Kseq (rest, k))
  | Kloop (s, k) -> loop_step t ps s k
  | Kfor (_, [], _, k) -> apply t ps k
  | Kfor (x, v :: vs, body, k) ->
      ps.env <- Smap.add x v ps.env;
      apply t ps (Kseq (body, Kfor (x, vs, body, k)))
  | Kjoin j -> arrive t ps j

and exec_stmt t ps (s : Nfl.Ast.stmt) (k : cont) =
  if t.stats.paths + 1 >= t.cfgc.max_paths then begin
    (* The in-flight path is the last one the budget admits: record it
       as truncated rather than dropping it, then unwind the whole
       enumeration — [Overflow] is not caught per task. *)
    t.stats.overflowed <- true;
    if t.stats.paths < t.cfgc.max_paths then begin
      ps.truncated <- true;
      finish t ps
    end;
    raise Overflow
  end;
  tick t ps s finish;
  match s.Nfl.Ast.kind with
  | Nfl.Ast.Pass -> apply t ps k
  | Nfl.Ast.Assign (lv, e) ->
      let v = eval ps e in
      (match lv with
      | Nfl.Ast.L_var x -> ps.env <- Smap.add x v ps.env
      | Nfl.Ast.L_index (d, ke) -> (
          let kv = scalar (eval ps ke) in
          match Smap.find_opt d ps.env with
          | Some (Dictv ds) ->
              let vv = scalar v in
              ps.env <- Smap.add d (Dictv { ds with Sexpr.writes = (kv, Some vv) :: ds.Sexpr.writes }) ps.env
          | Some (Listv vs) -> (
              match Sexpr.view kv with
              | Sexpr.Const (Value.Int i) when i >= 0 && i < List.length vs ->
                  ps.env <-
                    Smap.add d (Listv (List.mapi (fun j x -> if j = i then v else x) vs)) ps.env
              | _ -> raise (Unsupported "symbolic list write"))
          | _ -> raise (Unsupported ("index write to non-container " ^ d)))
      | Nfl.Ast.L_field (pv, f) -> (
          match Smap.find_opt pv ps.env with
          | Some (Pktv fields) ->
              let vv = scalar v in
              ps.env <- Smap.add pv (Pktv ((f, vv) :: List.remove_assoc f fields)) ps.env
          | _ -> raise (Unsupported ("field write to non-packet " ^ pv))));
      apply t ps k
  | Nfl.Ast.Delete (d, ke) ->
      let kv = scalar (eval ps ke) in
      (match Smap.find_opt d ps.env with
      | Some (Dictv ds) ->
          ps.env <- Smap.add d (Dictv { ds with Sexpr.writes = (kv, None) :: ds.Sexpr.writes }) ps.env
      | _ -> raise (Unsupported ("del on non-dict " ^ d)));
      apply t ps k
  | Nfl.Ast.Expr (Nfl.Ast.Call (f, args)) ->
      if f = Nfl.Builtins.pkt_output then begin
        (match List.map (eval ps) args with
        | [ Pktv fields ] -> ps.sends_rev <- fields :: ps.sends_rev
        | _ -> raise (Unsupported "send() expects a packet"));
        apply t ps k
      end
      else if f = Nfl.Builtins.pkt_drop || Nfl.Builtins.is_log_sink f || Nfl.Builtins.is_pure f
      then apply t ps k
      else if f = Nfl.Builtins.pkt_input then
        raise (Unsupported "recv() inside the analyzed region")
      else raise (Unsupported ("call to " ^ f))
  | Nfl.Ast.Expr _ -> apply t ps k
  | Nfl.Ast.Return _ ->
      (* End of this packet's processing. *)
      finish t ps
  | Nfl.Ast.If (c, b1, b2) -> (
      let cv = scalar (eval ps c) in
      match decide t cv with
      | `True -> apply t ps (Kseq (b1, k))
      | `False -> apply t ps (Kseq (b2, k))
      | `Fork ->
          record_fork t;
          let ps' = copy ps in
          let kt, kf =
            match t.merge with
            | Some pol when pol.mergeable_if s.Nfl.Ast.sid ->
                (* Open a merge region in place of this control thread:
                   the outer region's roster is unchanged — the region
                   itself will report back however many groups survive
                   the join. *)
                let j = { jcont = k; jouter = ps.region; expected = 2; parked = [] } in
                ps.region <- Some j;
                ps'.region <- Some j;
                (Kseq (b1, Kjoin j), Kseq (b2, Kjoin j))
            | _ ->
                bump_expected ps.region;
                (Kseq (b1, k), Kseq (b2, k))
          in
          (* Schedule the false arm; continue inline on the true arm.
             LIFO pop resumes the false arm exactly when the old
             recursive engine would have backtracked to it. *)
          ps'.pc_rev <- Solver.lit cv false :: ps'.pc_rev;
          t.work <- { tps = ps'; tcont = kf } :: t.work;
          push_lit t ps (Solver.lit cv true);
          apply t ps kt)
  | Nfl.Ast.While _ -> loop_step t ps s k
  | Nfl.Ast.For_in (x, e, body) -> (
      match eval ps e with
      | Listv vs -> apply t ps (Kfor (x, vs, body, k))
      | Scalar { Sexpr.node = Sexpr.Const (Value.List vs); _ } ->
          apply t ps (Kfor (x, List.map sval_of_value vs, body, k))
      | _ -> raise (Unsupported "for-in over symbolic container"))

and loop_step t ps (s : Nfl.Ast.stmt) (k : cont) =
  match s.Nfl.Ast.kind with
  | Nfl.Ast.While (c, body) -> (
      let sid = s.Nfl.Ast.sid in
      let count = Option.value ~default:0 (Imap.find_opt sid ps.iters) in
      let cv = scalar (eval ps c) in
      match decide t cv with
      | `False -> apply t ps k
      | `True when count >= t.cfgc.loop_bound ->
          (* Bound hit and the loop cannot exit: record the path as
             truncated. *)
          ps.truncated <- true;
          finish t ps
      | `Fork when count >= t.cfgc.loop_bound ->
          (* Bound hit: cut the continuing side, keep the feasible
             exiting side, mark the path truncated. *)
          ps.truncated <- true;
          push_lit t ps (Solver.lit cv false);
          apply t ps k
      | `True ->
          ps.iters <- Imap.add sid (count + 1) ps.iters;
          apply t ps (Kseq (body, Kloop (s, k)))
      | `Fork ->
          (* Loop forks never open merge regions: iterations are
             distinct control locations once unrolled, and folding them
             would conflate first-match semantics (see acl). *)
          record_fork t;
          let ps' = copy ps in
          bump_expected ps.region;
          ps'.pc_rev <- Solver.lit cv false :: ps'.pc_rev;
          t.work <- { tps = ps'; tcont = k } :: t.work;
          ps.iters <- Imap.add sid (count + 1) ps.iters;
          push_lit t ps (Solver.lit cv true);
          apply t ps (Kseq (body, Kloop (s, k))))
  | _ -> invalid_arg "loop_step: not a While"

(* The scheduler: pop, re-point the solver at the task's path
   condition, run it to its next finish/park/fork. [Cut] abandons only
   the current task. *)
let rec drain t =
  match t.work with
  | [] -> ()
  | { tps; tcont } :: rest ->
      t.work <- rest;
      sync_ctx t tps.pc_rev;
      (try apply t tps tcont with Cut -> ());
      drain t

(* ------------------------------------------------------------------ *)
(* Entry point                                                        *)
(* ------------------------------------------------------------------ *)

(** [block cfg ~env b] explores [b] from symbolic store [env], returning
    all completed paths and exploration statistics. [memo] shares a
    solver verdict cache across explorations (cache hit/miss stats
    report this exploration's deltas). [merge] enables join-point path
    merging; omitted, the engine enumerates exactly the old recursive
    explorer's paths in the same order. *)
let block ?(config = default_config) ?merge ?memo ~env (b : Nfl.Ast.block) =
  let memo = match memo with Some m -> m | None -> Solver.memo_create () in
  let hits0 = Solver.memo_hits memo and misses0 = Solver.memo_misses memo in
  let t =
    {
      cfgc = config;
      merge;
      stats =
        {
          paths = 0;
          truncated_paths = 0;
          decides = 0;
          solver_calls = 0;
          solver_cache_hits = 0;
          solver_cache_misses = 0;
          solver_time_s = 0.;
          forks = 0;
          max_fork_depth = 0;
          fork_depths = Imap.empty;
          overflowed = false;
          merges = 0;
          prunes = 0;
        };
      ctx = Solver.Ctx.create ~memo ();
      ctx_rev = [];
      work = [];
      done_paths = [];
    }
  in
  let ps =
    {
      env;
      pc_rev = [];
      trace_rev = [];
      sends_rev = [];
      iters = Imap.empty;
      steps = 0;
      truncated = false;
      region = None;
    }
  in
  t.work <- [ { tps = ps; tcont = Kseq (b, Kfinish) } ];
  (try drain t with Overflow -> ());
  t.stats.solver_calls <- Solver.Ctx.checks t.ctx;
  t.stats.solver_cache_hits <- Solver.memo_hits memo - hits0;
  t.stats.solver_cache_misses <- Solver.memo_misses memo - misses0;
  t.stats.solver_time_s <- Solver.Ctx.solver_time t.ctx;
  (List.rev t.done_paths, t.stats)
