(** Bounded symbolic execution of NFL blocks.

    Explores every feasible execution path of a block under a symbolic
    environment: packet fields and designated state variables start as
    free symbols, branches fork when the {!Solver} cannot decide them,
    loops unroll up to a bound (Section 3.2: NF code is written so that
    loops are bounded; paths that exceed the bound are kept but marked
    truncated). Each completed path carries its path condition,
    executed statements, emitted packets and final symbolic store —
    everything Algorithm 1's refinement step (lines 11-16) needs. *)

module Smap = Map.Make (String)
module Imap = Map.Make (Int)

exception Unsupported of string

(** Symbolic runtime values. *)
type sval =
  | Scalar of Sexpr.t
  | Pktv of (string * Sexpr.t) list  (** packet as a field map *)
  | Dictv of Sexpr.dict_state
  | Listv of sval list

let rec pp_sval ppf = function
  | Scalar e -> Sexpr.pp ppf e
  | Pktv fields ->
      Fmt.pf ppf "pkt{%a}" Fmt.(list ~sep:(any "; ") (pair ~sep:(any "=") string Sexpr.pp)) fields
  | Dictv d -> Sexpr.pp_dict ppf d
  | Listv vs -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") pp_sval) vs

(** Lift a concrete value into the symbolic domain. *)
let rec sval_of_value (v : Value.t) =
  match v with
  | Value.Int _ | Value.Bool _ | Value.Str _ | Value.Tuple _ -> Scalar (Sexpr.const v)
  | Value.List vs -> Listv (List.map sval_of_value vs)
  | Value.Dict kvs ->
      (* Writes are read newest-first, and concrete dict lookups take
         the first binding, so the lift must preserve source order —
         reversing would flip precedence between duplicate keys. *)
      Dictv
        {
          Sexpr.base = Sexpr.empty_base;
          writes = List.map (fun (k, v) -> (Sexpr.const k, Some (Sexpr.const v))) kvs;
        }
  | Value.Pkt p ->
      Pktv
        (List.map (fun f -> (f, Sexpr.int (Packet.Pkt.get_int p f))) Packet.Headers.int_fields
        @ List.map
            (fun f -> (f, Sexpr.const (Value.Str (Packet.Pkt.get_str p f))))
            Packet.Headers.str_fields)

(** Fully symbolic packet named [name]: field [f] is the symbol
    ["name.f"]. *)
let sym_pkt name =
  Pktv (List.map (fun f -> (f, Sexpr.sym (name ^ "." ^ f))) (Packet.Headers.int_fields @ Packet.Headers.str_fields))

type config = {
  loop_bound : int;  (** max iterations per loop statement per path *)
  max_paths : int;  (** exploration budget; hitting it sets [overflowed] *)
  max_steps : int;  (** per-path statement budget *)
}

let default_config = { loop_bound = 2; max_paths = 4096; max_steps = 20_000 }

type path = {
  pc : Solver.literal list;  (** path condition, in decision order *)
  trace : int list;  (** executed statement ids, in order *)
  sends : (string * Sexpr.t) list list;  (** snapshots of packets sent *)
  env : sval Smap.t;  (** final symbolic store *)
  truncated : bool;  (** loop bound or step budget hit *)
}

type stats = {
  mutable paths : int;
  mutable truncated_paths : int;
  mutable decides : int;  (** branch decisions that consulted the solver *)
  mutable solver_calls : int;  (** actual decision-procedure invocations *)
  mutable solver_cache_hits : int;
  mutable solver_cache_misses : int;
  mutable solver_time_s : float;  (** CPU time inside the decision procedure *)
  mutable forks : int;
  mutable max_fork_depth : int;  (** deepest path condition at a fork *)
  mutable fork_depths : int Imap.t;  (** pc depth at fork -> fork count *)
  mutable overflowed : bool;  (** [max_paths] reached; enumeration incomplete *)
}

(* Mutable per-path state, copied on fork (all fields are immutable
   values, so copying is O(1) record copy). *)
type pstate = {
  mutable env : sval Smap.t;
  mutable pc_rev : Solver.literal list;
  mutable trace_rev : int list;
  mutable sends_rev : (string * Sexpr.t) list list;
  mutable iters : int Imap.t;  (** loop sid -> iterations on this path *)
  mutable steps : int;
  mutable truncated : bool;
}

let copy ps =
  {
    env = ps.env;
    pc_rev = ps.pc_rev;
    trace_rev = ps.trace_rev;
    sends_rev = ps.sends_rev;
    iters = ps.iters;
    steps = ps.steps;
    truncated = ps.truncated;
  }

exception Cut  (* abandon this path (infeasible or per-path budget) *)

exception Overflow
(* [max_paths] spent: unlike [Cut], this is not caught by fork
   handlers, so it unwinds the whole exploration promptly instead of
   letting sibling branches keep exploring a dead budget. *)

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                              *)
(* ------------------------------------------------------------------ *)

let scalar = function
  | Scalar e -> e
  | Pktv _ -> raise (Unsupported "packet used as scalar")
  | Dictv _ -> raise (Unsupported "dict used as scalar")
  | Listv vs ->
      (* Lists of scalars may appear in scalar position (indexing with a
         symbolic index); embed as a list term. *)
      Sexpr.mk_list
        (List.map
           (function Scalar e -> e | _ -> raise (Unsupported "nested container in scalar list"))
           vs)

let rec eval ps (e : Nfl.Ast.expr) : sval =
  match e with
  | Nfl.Ast.Int n -> Scalar (Sexpr.int n)
  | Nfl.Ast.Bool b -> Scalar (Sexpr.const (Value.Bool b))
  | Nfl.Ast.Str s -> Scalar (Sexpr.const (Value.Str s))
  | Nfl.Ast.Var x -> (
      match Smap.find_opt x ps.env with
      | Some v -> v
      | None ->
          (* A read of a local never assigned on this path (e.g. log
             code peeking at another iteration's scratch): a fresh
             symbolic scalar, as KLEE treats uninitialized memory. *)
          Scalar (Sexpr.sym x))
  | Nfl.Ast.Tuple es -> Scalar (Sexpr.mk_tuple (List.map (fun e -> scalar (eval ps e)) es))
  | Nfl.Ast.List_lit es -> Listv (List.map (eval ps) es)
  | Nfl.Ast.Dict_lit -> Dictv Sexpr.dict_empty
  | Nfl.Ast.Binop (op, a, b) -> Scalar (Sexpr.mk_bin op (scalar (eval ps a)) (scalar (eval ps b)))
  | Nfl.Ast.Unop (Nfl.Ast.Not, a) -> Scalar (Sexpr.mk_not (scalar (eval ps a)))
  | Nfl.Ast.Unop (Nfl.Ast.Neg, a) -> Scalar (Sexpr.mk_neg (scalar (eval ps a)))
  | Nfl.Ast.Index (c, k) -> (
      let kv = scalar (eval ps k) in
      match eval ps c with
      | Dictv d -> Scalar (Sexpr.mk_dget d kv)
      | Listv vs -> (
          match Sexpr.view kv with
          | Sexpr.Const (Value.Int i) when i >= 0 && i < List.length vs -> List.nth vs i
          | Sexpr.Const (Value.Int _) -> raise (Unsupported "list index out of range")
          | _ ->
              (* Symbolic index: selection term over a scalar list. *)
              Scalar
                (Sexpr.mk_get
                   (Sexpr.mk_list
                      (List.map
                         (function
                           | Scalar e -> e
                           | _ -> raise (Unsupported "symbolic index into non-scalar list"))
                         vs))
                   kv))
      | Scalar t -> Scalar (Sexpr.mk_get t kv)
      | Pktv _ -> raise (Unsupported "indexing a packet"))
  | Nfl.Ast.Field (pe, f) -> (
      match eval ps pe with
      | Pktv fields -> (
          match List.assoc_opt f fields with
          | Some v -> Scalar v
          | None -> raise (Unsupported ("unknown packet field " ^ f)))
      | Scalar t -> Scalar (Sexpr.mk_get t (Sexpr.const (Value.Str f)))
      | Dictv _ | Listv _ -> raise (Unsupported "field access on container"))
  | Nfl.Ast.Mem (k, d) -> (
      let kv = scalar (eval ps k) in
      match eval ps d with
      | Dictv ds -> Scalar (Sexpr.mk_mem ds kv)
      | Listv vs ->
          (* Membership in a (config) list: decidable componentwise when
             comparisons fold; otherwise a disjunction. *)
          let eqs = List.map (fun v -> Sexpr.mk_bin Nfl.Ast.Eq kv (scalar v)) vs in
          Scalar (List.fold_left (fun acc e -> Sexpr.mk_bin Nfl.Ast.Or acc e) Sexpr.fls eqs)
      | Scalar _ | Pktv _ -> raise (Unsupported "membership on non-container"))
  | Nfl.Ast.Call (f, args) ->
      if Nfl.Builtins.is_pure f then
        let vs = List.map (eval ps) args in
        match (f, vs) with
        | "len", [ Listv l ] -> Scalar (Sexpr.int (List.length l))
        | "len", [ Dictv _ ] -> raise (Unsupported "len of symbolic dict")
        | _, _ -> Scalar (Sexpr.mk_ufun f (List.map scalar vs))
      else raise (Unsupported ("call in expression: " ^ f))

(* ------------------------------------------------------------------ *)
(* Path exploration                                                   *)
(* ------------------------------------------------------------------ *)

type t = {
  cfgc : config;
  stats : stats;
  ctx : Solver.Ctx.t;  (** incremental solver; stack mirrors the pc *)
  mutable done_paths : path list;
}

let finish t ps =
  t.stats.paths <- t.stats.paths + 1;
  if ps.truncated then t.stats.truncated_paths <- t.stats.truncated_paths + 1;
  t.done_paths <-
    {
      pc = List.rev ps.pc_rev;
      trace = List.rev ps.trace_rev;
      sends = List.rev ps.sends_rev;
      env = ps.env;
      truncated = ps.truncated;
    }
    :: t.done_paths

let tick t ps (s : Nfl.Ast.stmt) =
  ps.trace_rev <- s.Nfl.Ast.sid :: ps.trace_rev;
  ps.steps <- ps.steps + 1;
  if ps.steps > t.cfgc.max_steps then begin
    (* Record the partial path as truncated rather than dropping it
       silently — callers inspect [truncated_paths] for budget hits. *)
    ps.truncated <- true;
    finish t ps;
    raise Cut
  end

(* Decide a branch condition under the current path condition, which
   the solver context holds asserted incrementally. The exploration
   invariant — the current pc is Sat (every pushed literal extended an
   unrefuted conjunction) — lets an Unsat on one side answer the other
   side for free: ¬sat_t ⇒ sat_f. Constant conditions and cache hits
   cost no solver calls; [stats.solver_calls] counts actual
   decision-procedure invocations only. *)
let decide t (cond : Sexpr.t) =
  match Sexpr.view cond with
  | Sexpr.Const (Value.Bool b) -> if b then `True else `False
  | Sexpr.Const (Value.Int n) -> if n <> 0 then `True else `False
  | _ ->
      t.stats.decides <- t.stats.decides + 1;
      if Solver.Ctx.check_extended t.ctx (Solver.lit cond true) = Solver.Unsat then `False
      else if Solver.Ctx.check_extended t.ctx (Solver.lit cond false) = Solver.Unsat then `True
      else `Fork

(* Extend the path condition for the dynamic extent of [f]: the solver
   context must mirror [ps.pc_rev] at every [decide], including through
   [Cut]/[Overflow] unwinding. *)
let with_lit t ps l f =
  ps.pc_rev <- l :: ps.pc_rev;
  Solver.Ctx.push t.ctx l;
  Fun.protect ~finally:(fun () -> Solver.Ctx.pop t.ctx) f

let record_fork t =
  let d = Solver.Ctx.depth t.ctx in
  t.stats.forks <- t.stats.forks + 1;
  t.stats.max_fork_depth <- max t.stats.max_fork_depth d;
  t.stats.fork_depths <-
    Imap.update d (function None -> Some 1 | Some n -> Some (n + 1)) t.stats.fork_depths

let rec exec_block t ps (block : Nfl.Ast.block) (k : pstate -> unit) =
  match block with
  | [] -> k ps
  | s :: rest -> exec_stmt t ps s (fun ps -> exec_block t ps rest k)

and exec_stmt t ps (s : Nfl.Ast.stmt) (k : pstate -> unit) =
  if t.stats.paths + 1 >= t.cfgc.max_paths then begin
    (* The in-flight path is the last one the budget admits: record it
       as truncated rather than dropping it, then unwind the whole
       enumeration — [Overflow] is not caught by fork handlers. *)
    t.stats.overflowed <- true;
    if t.stats.paths < t.cfgc.max_paths then begin
      ps.truncated <- true;
      finish t ps
    end;
    raise Overflow
  end;
  tick t ps s;
  match s.Nfl.Ast.kind with
  | Nfl.Ast.Pass -> k ps
  | Nfl.Ast.Assign (lv, e) ->
      let v = eval ps e in
      (match lv with
      | Nfl.Ast.L_var x -> ps.env <- Smap.add x v ps.env
      | Nfl.Ast.L_index (d, ke) -> (
          let kv = scalar (eval ps ke) in
          match Smap.find_opt d ps.env with
          | Some (Dictv ds) ->
              let vv = scalar v in
              ps.env <- Smap.add d (Dictv { ds with Sexpr.writes = (kv, Some vv) :: ds.Sexpr.writes }) ps.env
          | Some (Listv vs) -> (
              match Sexpr.view kv with
              | Sexpr.Const (Value.Int i) when i >= 0 && i < List.length vs ->
                  ps.env <-
                    Smap.add d (Listv (List.mapi (fun j x -> if j = i then v else x) vs)) ps.env
              | _ -> raise (Unsupported "symbolic list write"))
          | _ -> raise (Unsupported ("index write to non-container " ^ d)))
      | Nfl.Ast.L_field (pv, f) -> (
          match Smap.find_opt pv ps.env with
          | Some (Pktv fields) ->
              let vv = scalar v in
              ps.env <- Smap.add pv (Pktv ((f, vv) :: List.remove_assoc f fields)) ps.env
          | _ -> raise (Unsupported ("field write to non-packet " ^ pv))));
      k ps
  | Nfl.Ast.Delete (d, ke) ->
      let kv = scalar (eval ps ke) in
      (match Smap.find_opt d ps.env with
      | Some (Dictv ds) ->
          ps.env <- Smap.add d (Dictv { ds with Sexpr.writes = (kv, None) :: ds.Sexpr.writes }) ps.env
      | _ -> raise (Unsupported ("del on non-dict " ^ d)));
      k ps
  | Nfl.Ast.Expr (Nfl.Ast.Call (f, args)) ->
      if f = Nfl.Builtins.pkt_output then begin
        (match List.map (eval ps) args with
        | [ Pktv fields ] -> ps.sends_rev <- fields :: ps.sends_rev
        | _ -> raise (Unsupported "send() expects a packet"));
        k ps
      end
      else if f = Nfl.Builtins.pkt_drop || Nfl.Builtins.is_log_sink f || Nfl.Builtins.is_pure f
      then k ps
      else if f = Nfl.Builtins.pkt_input then
        raise (Unsupported "recv() inside the analyzed region")
      else raise (Unsupported ("call to " ^ f))
  | Nfl.Ast.Expr _ -> k ps
  | Nfl.Ast.Return _ ->
      (* End of this packet's processing. *)
      finish t ps
  | Nfl.Ast.If (c, b1, b2) -> (
      let cv = scalar (eval ps c) in
      match decide t cv with
      | `True -> exec_block t ps b1 k
      | `False -> exec_block t ps b2 k
      | `Fork ->
          record_fork t;
          let ps' = copy ps in
          (* True side. *)
          with_lit t ps (Solver.lit cv true) (fun () ->
              try exec_block t ps b1 k with Cut -> ());
          (* False side. *)
          with_lit t ps' (Solver.lit cv false) (fun () -> exec_block t ps' b2 k))
  | Nfl.Ast.While (c, body) ->
      let sid = s.Nfl.Ast.sid in
      let rec iterate ps k =
        let count = Option.value ~default:0 (Imap.find_opt sid ps.iters) in
        let cv = scalar (eval ps c) in
        match decide t cv with
        | `False -> k ps
        | `True when count >= t.cfgc.loop_bound ->
            (* Bound hit and the loop cannot exit: record the path as
               truncated. *)
            ps.truncated <- true;
            finish t ps
        | `Fork when count >= t.cfgc.loop_bound ->
            (* Bound hit: cut the continuing side, keep the feasible
               exiting side, mark the path truncated. *)
            ps.truncated <- true;
            with_lit t ps (Solver.lit cv false) (fun () -> k ps)
        | `True ->
            ps.iters <- Imap.add sid (count + 1) ps.iters;
            exec_block t ps body (fun ps -> iterate ps k)
        | `Fork ->
            record_fork t;
            let ps' = copy ps in
            ps.iters <- Imap.add sid (count + 1) ps.iters;
            with_lit t ps (Solver.lit cv true) (fun () ->
                try exec_block t ps body (fun ps -> iterate ps k) with Cut -> ());
            with_lit t ps' (Solver.lit cv false) (fun () -> k ps')
      in
      iterate ps k
  | Nfl.Ast.For_in (x, e, body) -> (
      match eval ps e with
      | Listv vs ->
          let rec iterate ps vs k =
            match vs with
            | [] -> k ps
            | v :: rest ->
                ps.env <- Smap.add x v ps.env;
                exec_block t ps body (fun ps -> iterate ps rest k)
          in
          iterate ps vs k
      | Scalar { Sexpr.node = Sexpr.Const (Value.List vs); _ } ->
          let rec iterate ps vs k =
            match vs with
            | [] -> k ps
            | v :: rest ->
                ps.env <- Smap.add x (sval_of_value v) ps.env;
                exec_block t ps body (fun ps -> iterate ps rest k)
          in
          iterate ps vs k
      | _ -> raise (Unsupported "for-in over symbolic container"))

(* ------------------------------------------------------------------ *)
(* Entry point                                                        *)
(* ------------------------------------------------------------------ *)

(** [block cfg ~env b] explores [b] from symbolic store [env], returning
    all completed paths and exploration statistics. [memo] shares a
    solver verdict cache across explorations (cache hit/miss stats
    report this exploration's deltas). *)
let block ?(config = default_config) ?memo ~env (b : Nfl.Ast.block) =
  let memo = match memo with Some m -> m | None -> Solver.memo_create () in
  let hits0 = Solver.memo_hits memo and misses0 = Solver.memo_misses memo in
  let t =
    {
      cfgc = config;
      stats =
        {
          paths = 0;
          truncated_paths = 0;
          decides = 0;
          solver_calls = 0;
          solver_cache_hits = 0;
          solver_cache_misses = 0;
          solver_time_s = 0.;
          forks = 0;
          max_fork_depth = 0;
          fork_depths = Imap.empty;
          overflowed = false;
        };
      ctx = Solver.Ctx.create ~memo ();
      done_paths = [];
    }
  in
  let ps =
    {
      env;
      pc_rev = [];
      trace_rev = [];
      sends_rev = [];
      iters = Imap.empty;
      steps = 0;
      truncated = false;
    }
  in
  (try exec_block t ps b (fun ps -> finish t ps) with Cut | Overflow -> ());
  t.stats.solver_calls <- Solver.Ctx.checks t.ctx;
  t.stats.solver_cache_hits <- Solver.memo_hits memo - hits0;
  t.stats.solver_cache_misses <- Solver.memo_misses memo - misses0;
  t.stats.solver_time_s <- Solver.Ctx.solver_time t.ctx;
  (List.rev t.done_paths, t.stats)
