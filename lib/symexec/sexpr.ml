(** Hash-consed symbolic expressions.

    Terms over concrete {!Value.t} constants, named symbolic variables
    (packet fields, state at loop entry, configuration knobs),
    uninterpreted functions ([hash]), symbolic container reads and
    dictionary-membership atoms. All construction goes through
    interning smart constructors, so structurally equal terms are
    physically equal and equality/hashing are O(1). Smart constructors
    constant-fold so that fully concrete programs symbolically evaluate
    to constants — that property is what the path/model equivalence
    tests rely on. *)

type t = { id : int; node : node }

and node =
  | Const of Value.t
  | Sym of string  (** free symbolic variable, e.g. ["pkt.dport"], ["rr_idx"] *)
  | Bin of Nfl.Ast.binop * t * t
  | Not of t
  | Neg of t
  | Tup of t list
  | Lst of t list
  | Get of t * t  (** container read with symbolic index *)
  | Ufun of string * t list  (** uninterpreted function, e.g. [hash] *)
  | Mem of dict_state * t  (** membership atom: key in dictionary snapshot *)
  | Dget of dict_state * t  (** dictionary read against a snapshot *)
  | Ite of t * t * t  (** guarded value summary: [if g then a else b] *)

(** A symbolic dictionary: the unknown contents at loop entry ([base])
    plus the strong updates performed on this path, newest first.
    [Some v] is an insert, [None] a delete. *)
and dict_state = { base : string; writes : (t * t option) list }

let view e = e.node
let id e = e.id

let dict_base name = { base = name; writes = [] }

(** Base marking a dictionary known to start empty (created by [{}]
    on the current path): membership against it resolves to [false]
    instead of producing an atom. *)
let empty_base = "<empty>"

let dict_empty = { base = empty_base; writes = [] }

(* ------------------------------------------------------------------ *)
(* Interning                                                          *)
(* ------------------------------------------------------------------ *)

(* Shallow node equality/hashing: children are already interned, so
   they compare by physical identity and hash by id — a node probe is
   O(width), never O(depth). *)
module Node = struct
  type nonrec t = node

  let equal_write (k1, v1) (k2, v2) =
    k1 == k2
    && match (v1, v2) with
       | Some a, Some b -> a == b
       | None, None -> true
       | _ -> false

  let equal_dict d1 d2 =
    String.equal d1.base d2.base && List.equal equal_write d1.writes d2.writes

  let equal n1 n2 =
    match (n1, n2) with
    | Const a, Const b -> Value.equal a b
    | Sym a, Sym b -> String.equal a b
    | Bin (o1, a1, b1), Bin (o2, a2, b2) -> o1 = o2 && a1 == a2 && b1 == b2
    | Not a, Not b | Neg a, Neg b -> a == b
    | Tup xs, Tup ys | Lst xs, Lst ys -> List.equal ( == ) xs ys
    | Get (a1, b1), Get (a2, b2) -> a1 == a2 && b1 == b2
    | Ufun (f, xs), Ufun (g, ys) -> String.equal f g && List.equal ( == ) xs ys
    | Mem (d1, k1), Mem (d2, k2) | Dget (d1, k1), Dget (d2, k2) ->
        k1 == k2 && equal_dict d1 d2
    | Ite (g1, a1, b1), Ite (g2, a2, b2) -> g1 == g2 && a1 == a2 && b1 == b2
    | _ -> false

  let comb acc h = (acc * 65599) + h
  let hash_children = List.fold_left (fun acc e -> comb acc e.id)

  let hash_dict d =
    List.fold_left
      (fun acc (k, v) ->
        comb (comb acc k.id) (match v with Some v -> v.id | None -> -1))
      (Hashtbl.hash d.base) d.writes

  let hash = function
    | Const v -> comb 1 (Hashtbl.hash v)
    | Sym s -> comb 2 (Hashtbl.hash s)
    | Bin (op, a, b) -> comb (comb (comb 3 (Hashtbl.hash op)) a.id) b.id
    | Not a -> comb 4 a.id
    | Neg a -> comb 5 a.id
    | Tup es -> hash_children 6 es
    | Lst es -> hash_children 7 es
    | Get (a, b) -> comb (comb 8 a.id) b.id
    | Ufun (f, es) -> hash_children (comb 9 (Hashtbl.hash f)) es
    | Mem (d, k) -> comb (comb 10 (hash_dict d)) k.id
    | Dget (d, k) -> comb (comb 11 (hash_dict d)) k.id
    | Ite (g, a, b) -> comb (comb (comb 12 g.id) a.id) b.id
end

module H = Hashtbl.Make (Node)

let table : t H.t = H.create 4096
let symtab : (string, t) Hashtbl.t = Hashtbl.create 256
let counter = ref 0

let intern node =
  match H.find_opt table node with
  | Some e -> e
  | None ->
      let e = { id = !counter; node } in
      incr counter;
      H.add table node e;
      e

let const v = intern (Const v)

let sym s =
  match Hashtbl.find_opt symtab s with
  | Some e -> e
  | None ->
      let e = intern (Sym s) in
      Hashtbl.add symtab s e;
      e

let intern_count () = !counter

(* ------------------------------------------------------------------ *)
(* Equality                                                           *)
(* ------------------------------------------------------------------ *)

let equal (a : t) (b : t) = a == b
let compare (a : t) (b : t) = Int.compare a.id b.id
let hash (e : t) = Hashtbl.hash e.id

let rec equal_structural a b =
  a == b
  ||
  match (a.node, b.node) with
  | Const x, Const y -> Value.equal x y
  | Sym x, Sym y -> String.equal x y
  | Bin (o1, x1, y1), Bin (o2, x2, y2) ->
      o1 = o2 && equal_structural x1 x2 && equal_structural y1 y2
  | Not x, Not y | Neg x, Neg y -> equal_structural x y
  | Tup xs, Tup ys | Lst xs, Lst ys -> List.equal equal_structural xs ys
  | Get (x1, y1), Get (x2, y2) -> equal_structural x1 x2 && equal_structural y1 y2
  | Ufun (f, xs), Ufun (g, ys) -> String.equal f g && List.equal equal_structural xs ys
  | Mem (d1, k1), Mem (d2, k2) | Dget (d1, k1), Dget (d2, k2) ->
      equal_structural k1 k2 && equal_structural_dict d1 d2
  | Ite (g1, a1, b1), Ite (g2, a2, b2) ->
      equal_structural g1 g2 && equal_structural a1 a2 && equal_structural b1 b2
  | _ -> false

and equal_structural_dict d1 d2 =
  String.equal d1.base d2.base
  && List.equal
       (fun (k1, v1) (k2, v2) ->
         equal_structural k1 k2 && Option.equal equal_structural v1 v2)
       d1.writes d2.writes

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let rec pp ppf e =
  match e.node with
  | Const v -> Value.pp ppf v
  | Sym s -> Fmt.string ppf s
  | Bin (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp a (Nfl.Pretty.binop_str op) pp b
  | Not a -> Fmt.pf ppf "!(%a)" pp a
  | Neg a -> Fmt.pf ppf "-(%a)" pp a
  | Tup es -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp) es
  | Lst es -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") pp) es
  | Get (c, i) -> Fmt.pf ppf "%a[%a]" pp c pp i
  | Ufun (f, args) -> Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(any ", ") pp) args
  | Mem (d, k) -> Fmt.pf ppf "%a in %a" pp k pp_dict d
  | Dget (d, k) -> Fmt.pf ppf "%a[%a]" pp_dict d pp k
  | Ite (g, a, b) -> Fmt.pf ppf "ite(%a, %a, %a)" pp g pp a pp b

and pp_dict ppf d =
  if d.writes = [] then Fmt.string ppf d.base
  else
    Fmt.pf ppf "%s{%a}" d.base
      Fmt.(
        list ~sep:(any "; ") (fun ppf (k, v) ->
            match v with
            | Some v -> Fmt.pf ppf "+%a:%a" pp k pp v
            | None -> Fmt.pf ppf "-%a" pp k))
      d.writes

let to_string e = Fmt.str "%a" pp e

let is_const e = match e.node with Const _ -> true | _ -> false
let const_of e = match e.node with Const v -> Some v | _ -> None

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                 *)
(* ------------------------------------------------------------------ *)

let tru = const (Value.Bool true)
let fls = const (Value.Bool false)
let int n = const (Value.Int n)
let zero = int 0
let one = int 1

(* Module-level constants survive {!unsafe_reset_intern}: the reset
   re-seeds them into the fresh table (same nodes, same ids 0..3), so
   the [==]-based folds above stay sound for terms built afterwards. *)
let pinned = [ tru; fls; zero; one ]

let unsafe_reset_intern () =
  H.reset table;
  Hashtbl.reset symtab;
  counter := 0;
  List.iter
    (fun e ->
      H.add table e.node e;
      counter := max !counter (e.id + 1))
    pinned

(** Can two symbolic keys be proven different / equal syntactically?
    Interning makes the equal case O(1); only constants and tuples need
    inspection. *)
let key_relation a b =
  if a == b then `Equal
  else
    match (a.node, b.node) with
    | Const va, Const vb -> if Value.equal va vb then `Equal else `Distinct
    | Tup xs, Tup ys when List.length xs = List.length ys ->
        (* Tuples are distinct if any component is provably distinct,
           equal only if all components are syntactically equal. *)
        let rec go = function
          | [], [] -> `Equal
          | x :: xs, y :: ys -> (
              match (x.node, y.node) with
              | Const vx, Const vy when not (Value.equal vx vy) -> `Distinct
              | _ -> if x == y then go (xs, ys) else `Unknown)
          | _ -> `Unknown
        in
        go (xs, ys)
    | _ -> `Unknown

let mk_not e =
  match e.node with
  | Const (Value.Bool b) -> const (Value.Bool (not b))
  | Not a -> a
  | _ -> intern (Not e)

let mk_neg e =
  match e.node with Const (Value.Int n) -> const (Value.Int (-n)) | _ -> intern (Neg e)

(* Interning makes complement detection O(1): [a] and [¬a] are the only
   physically-distinct pair related by a single [Not] node. *)
let is_negation a b =
  (match b.node with Not x -> x == a | _ -> false)
  || match a.node with Not x -> x == b | _ -> false

let mk_bin op a b =
  match (a.node, b.node, op) with
  | Const va, Const vb, _ -> (
      (* Fold; fall back to the symbolic node on type errors so the
         solver reports infeasibility instead of crashing. *)
      try const (Value.binop op va vb) with Value.Type_error _ -> intern (Bin (op, a, b)))
  | _, _, Nfl.Ast.Eq when a == b -> tru
  | _, _, Nfl.Ast.Ne when a == b -> fls
  | _, _, Nfl.Ast.And ->
      if a == tru then b
      else if b == tru then a
      else if a == fls || b == fls then fls
      else if is_negation a b then fls
      else intern (Bin (op, a, b))
  | _, _, Nfl.Ast.Or ->
      if a == fls then b
      else if b == fls then a
      else if a == tru || b == tru then tru
      else if is_negation a b then tru
      else intern (Bin (op, a, b))
  | _, _, Nfl.Ast.Add when b == zero -> a
  | _, _, Nfl.Ast.Add when a == zero -> b
  | _, _, Nfl.Ast.Sub when b == zero -> a
  | _, _, Nfl.Ast.Sub when a == b -> zero
  | _, _, Nfl.Ast.Mul when a == one -> b
  | _, _, Nfl.Ast.Mul when b == one -> a
  | _, _, Nfl.Ast.Mul when a == zero || b == zero -> zero
  | _, _, (Nfl.Ast.Eq | Nfl.Ast.Ne) -> (
      (* Tuple comparisons may fold componentwise. *)
      match key_relation a b with
      | `Equal -> if op = Nfl.Ast.Eq then tru else fls
      | `Distinct -> if op = Nfl.Ast.Eq then fls else tru
      | `Unknown -> intern (Bin (op, a, b)))
  | _ -> intern (Bin (op, a, b))

(** Guarded value summary [if g then a else b], the merge primitive of
    join-point path merging. Folds keep summaries small: a constant
    guard selects an arm, equal arms collapse, a negated guard swaps
    arms, boolean-constant arms reduce to the guard itself (so merged
    *conditions* stay plain atoms), and a nested ite under the same
    guard is pruned to the reachable arm. *)
let rec mk_ite g a b =
  if a == b then a
  else
    match g.node with
    | Const (Value.Bool cond) -> if cond then a else b
    | Const (Value.Int n) -> if n <> 0 then a else b
    | Not g' -> mk_ite g' b a
    | _ ->
        if a == tru && b == fls then g
        else if a == fls && b == tru then mk_not g
        else
          let a = match a.node with Ite (g2, x, _) when g2 == g -> x | _ -> a in
          let b = match b.node with Ite (g2, _, y) when g2 == g -> y | _ -> b in
          if a == b then a else intern (Ite (g, a, b))

let mk_tuple es =
  match List.for_all is_const es with
  | true -> const (Value.Tuple (List.filter_map const_of es))
  | false -> intern (Tup es)

let mk_list es =
  match List.for_all is_const es with
  | true -> const (Value.List (List.filter_map const_of es))
  | false -> intern (Lst es)

(** Container read. Concrete index into a known-shape container
    resolves; otherwise the read stays symbolic. *)
let mk_get c i =
  match (c.node, i.node) with
  | Const cv, Const iv -> (
      try const (Value.index cv iv) with Value.Type_error _ -> intern (Get (c, i)))
  | Tup es, Const (Value.Int n) when n >= 0 && n < List.length es -> List.nth es n
  | Lst es, Const (Value.Int n) when n >= 0 && n < List.length es -> List.nth es n
  | _ -> intern (Get (c, i))

let mk_ufun f args =
  (* hash of a constant folds to the concrete hash so program and model
     agree on concrete runs. *)
  match (f, args) with
  | "hash", [ { node = Const v; _ } ] -> const (Value.Int (Value.hash_value v))
  | "len", [ ({ node = Const v; _ } as a) ] -> (
      try const (Value.apply_pure "len" [ v ])
      with Value.Type_error _ -> intern (Ufun (f, [ a ])))
  | "len", [ { node = Lst es; _ } ] -> int (List.length es)
  | "len", [ { node = Tup es; _ } ] -> int (List.length es)
  | _ -> intern (Ufun (f, args))

(** Membership test against a dictionary snapshot. Resolves through the
    write list when the key comparison is decidable; otherwise returns
    a [Mem] atom over the *remaining* snapshot. *)
let rec mk_mem (d : dict_state) k =
  match d.writes with
  | [] -> if d.base = empty_base then fls else intern (Mem (d, k))
  | (wk, wv) :: rest -> (
      match key_relation k wk with
      | `Equal -> ( match wv with Some _ -> tru | None -> fls)
      | `Distinct -> mk_mem { d with writes = rest } k
      | `Unknown -> intern (Mem (d, k)))

(** Dictionary read against a snapshot, same resolution discipline. *)
let rec mk_dget (d : dict_state) k =
  match d.writes with
  | [] -> intern (Dget (d, k))
  | (wk, wv) :: rest -> (
      match key_relation k wk with
      | `Equal -> (
          match wv with Some v -> v | None -> intern (Dget (d, k)) (* read of deleted key *))
      | `Distinct -> mk_dget { d with writes = rest } k
      | `Unknown -> intern (Dget (d, k)))

(* ------------------------------------------------------------------ *)
(* Queries                                                            *)
(* ------------------------------------------------------------------ *)

module Sset = Set.Make (String)

(** Free symbolic variable names (including dictionary bases). *)
let rec syms e =
  match e.node with
  | Const _ -> Sset.empty
  | Sym s -> Sset.singleton s
  | Bin (_, a, b) -> Sset.union (syms a) (syms b)
  | Not a | Neg a -> syms a
  | Tup es | Lst es | Ufun (_, es) ->
      List.fold_left (fun acc e -> Sset.union acc (syms e)) Sset.empty es
  | Get (a, b) -> Sset.union (syms a) (syms b)
  | Mem (d, k) | Dget (d, k) ->
      let ws =
        List.fold_left
          (fun acc (wk, wv) ->
            let acc = Sset.union acc (syms wk) in
            match wv with Some v -> Sset.union acc (syms v) | None -> acc)
          Sset.empty d.writes
      in
      Sset.add d.base (Sset.union ws (syms k))
  | Ite (g, a, b) -> Sset.union (syms g) (Sset.union (syms a) (syms b))

(** Substitute free symbolic variables via [f] (used to concretize a
    path condition into test packets, and by the model interpreter). *)
let rec subst f e =
  match e.node with
  | Const _ -> e
  | Sym s -> ( match f s with Some v -> const v | None -> e)
  | Bin (op, a, b) -> mk_bin op (subst f a) (subst f b)
  | Not a -> mk_not (subst f a)
  | Neg a -> mk_neg (subst f a)
  | Tup es -> mk_tuple (List.map (subst f) es)
  | Lst es -> mk_list (List.map (subst f) es)
  | Get (a, b) -> mk_get (subst f a) (subst f b)
  | Ufun (g, es) -> mk_ufun g (List.map (subst f) es)
  | Mem (d, k) -> mk_mem (subst_dict f d) (subst f k)
  | Dget (d, k) -> mk_dget (subst_dict f d) (subst f k)
  | Ite (g, a, b) -> mk_ite (subst f g) (subst f a) (subst f b)

and subst_dict f d =
  {
    d with
    writes = List.map (fun (k, v) -> (subst f k, Option.map (subst f) v)) d.writes;
  }

(** Symbol-for-expression substitution (used by header-space style
    reachability to thread a packet's field expressions through
    downstream match predicates). *)
let rec subst_sym f e =
  match e.node with
  | Const _ -> e
  | Sym s -> ( match f s with Some e' -> e' | None -> e)
  | Bin (op, a, b) -> mk_bin op (subst_sym f a) (subst_sym f b)
  | Not a -> mk_not (subst_sym f a)
  | Neg a -> mk_neg (subst_sym f a)
  | Tup es -> mk_tuple (List.map (subst_sym f) es)
  | Lst es -> mk_list (List.map (subst_sym f) es)
  | Get (a, b) -> mk_get (subst_sym f a) (subst_sym f b)
  | Ufun (g, es) -> mk_ufun g (List.map (subst_sym f) es)
  | Mem (d, k) -> mk_mem (subst_sym_dict f d) (subst_sym f k)
  | Dget (d, k) -> mk_dget (subst_sym_dict f d) (subst_sym f k)
  | Ite (g, a, b) -> mk_ite (subst_sym f g) (subst_sym f a) (subst_sym f b)

and subst_sym_dict f d =
  {
    d with
    writes = List.map (fun (k, v) -> (subst_sym f k, Option.map (subst_sym f) v)) d.writes;
  }
