(** Bounded symbolic execution of NFL blocks, as a worklist engine.

    Explores every feasible path of a block under a symbolic
    environment: branches fork when the {!Solver} cannot decide them,
    loops unroll up to a bound, paths exceeding budgets are kept but
    marked truncated. Each completed path carries everything Algorithm
    1's refinement step needs: path condition, executed statements,
    emitted packets and the final symbolic store.

    Pending fork arms are scheduled on an explicit LIFO worklist and
    eagerly discharged against the incremental solver before being
    scheduled (infeasible sides are pruned without ever being
    interpreted). With a {!merge_policy}, states reaching a branch's
    CFG join point with compatible stores are folded into one state
    whose differing values become guarded [ite] summaries, so k
    sequential branches cost O(k) states instead of O(2^k) paths. *)

module Smap : Map.S with type key = string
module Imap : Map.S with type key = int

exception Unsupported of string
(** Raised on constructs outside the supported symbolic fragment
    (e.g. writes through symbolic list indices). *)

(** Symbolic runtime values. *)
type sval =
  | Scalar of Sexpr.t
  | Pktv of (string * Sexpr.t) list  (** packet as a field map *)
  | Dictv of Sexpr.dict_state
  | Listv of sval list

val pp_sval : Format.formatter -> sval -> unit

val sval_of_value : Value.t -> sval
(** Lift a concrete value into the symbolic domain (dictionaries become
    empty-base snapshots carrying their contents as writes). *)

val sym_pkt : string -> sval
(** Fully symbolic packet: field [f] is the symbol ["<name>.f"]. *)

type config = {
  loop_bound : int;  (** max iterations per loop statement per path *)
  max_paths : int;  (** exploration budget; hitting it sets [overflowed] *)
  max_steps : int;  (** per-path statement budget *)
}

val default_config : config
(** loop bound 2, 4096 paths, 20k steps per path. *)

type merge_policy = {
  mergeable_if : int -> bool;
      (** May a fork at this [If] statement's sid open a merge region?
          Typically [Joins.mergeable]: the branch has a statement
          join point and does not sit inside a loop body (loop
          iterations are distinct control locations once unrolled). *)
  admit_guard : Sexpr.t -> bool;
      (** May this branch atom be folded into an [ite] guard? Model
          extraction rejects atoms over config/state symbols so entry
          tables keep concrete per-path verdicts for them. *)
}
(** Policy gate for join-point path merging. Two states merge when they
    sit at the same continuation (a branch's join point), agree on
    loop-iteration counts, truncation and send count, their path
    conditions diverge on complementary head literals (keeping merged
    path conditions mutually disjoint), and every diverging atom passes
    [admit_guard]. Differing store and sent-packet values fold into
    guarded {!Sexpr.mk_ite} summaries. *)

type path = {
  pc : Solver.literal list;  (** path condition, in decision order *)
  trace : int list;  (** executed statement ids, in order *)
  sends : (string * Sexpr.t) list list;  (** snapshots of packets sent *)
  env : sval Smap.t;  (** final symbolic store *)
  truncated : bool;  (** a loop or step budget was hit *)
}

type stats = {
  mutable paths : int;
  mutable truncated_paths : int;
  mutable decides : int;  (** branch decisions that consulted the solver *)
  mutable solver_calls : int;  (** actual decision-procedure invocations *)
  mutable solver_cache_hits : int;  (** checks answered from the memo/context *)
  mutable solver_cache_misses : int;  (** checks that ran the procedure *)
  mutable solver_time_s : float;  (** CPU time inside the decision procedure *)
  mutable forks : int;
  mutable max_fork_depth : int;  (** deepest path condition at a fork *)
  mutable fork_depths : int Imap.t;  (** pc depth at fork -> fork count *)
  mutable overflowed : bool;  (** [max_paths] reached; enumeration incomplete *)
  mutable merges : int;  (** states folded away at join points *)
  mutable prunes : int;  (** branch sides discharged UNSAT before scheduling *)
}

val block :
  ?config:config ->
  ?merge:merge_policy ->
  ?memo:Solver.memo ->
  env:sval Smap.t ->
  Nfl.Ast.block ->
  path list * stats
(** [block ~env b] explores [b] from symbolic store [env]. Reads of
    variables absent from [env] yield fresh symbols (uninitialized
    locals). [memo] shares a solver verdict cache across explorations
    (e.g. slice and original of the same program); the cache stats in
    the result are this exploration's deltas. [merge] enables
    join-point path merging; omitted, the engine enumerates exactly
    the recursive depth-first explorer's paths in the same order. *)
