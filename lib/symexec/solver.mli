(** Path-condition feasibility checking.

    Decides the fragment NF programs generate: linear integer
    arithmetic (interval propagation + equality union-find),
    componentwise tuple (dis)equalities, bounded case-splitting over
    top-level disjunctions, and opaque atoms (dictionary membership,
    uninterpreted functions) as free booleans with per-path
    consistency. [Unsat] answers are trusted; anything
    not refuted is [Sat] — a sound over-approximation for path
    enumeration. *)

type literal = { atom : Sexpr.t; positive : bool }

val lit : Sexpr.t -> bool -> literal
(** Build a literal; negations fold into the polarity. *)

val pp_literal : Format.formatter -> literal -> unit

type verdict = Sat | Unsat

module Smap : Map.S with type key = string

val check : literal list -> verdict
(** Feasibility of the conjunction. *)

val concretize : ?default:int -> literal list -> Value.t Smap.t option
(** Best-effort satisfying assignment for the solver-constrained named
    symbols (fixed terms, bound endpoints, disequality-avoiding
    values). Symbols seen only inside opaque atoms are absent — callers
    supply those from domain candidate pools. [None] when refutable. *)

(** {1 Incremental checking} *)

val lit_key : literal -> int
(** Polarity-signed term id ([id+1] positive, [-(id+1)] negative).
    O(1); equal keys denote the same constraint because terms are
    hash-consed. Session-local, like the ids it builds on. *)

type memo
(** Verdict cache keyed on canonicalized (sorted, deduplicated) vectors
    of polarity-signed literal ids. Order-insensitive and idempotent,
    hence sound to share across explorations in one session — equal ids
    mean equal terms, so equal keys mean equal formulas. *)

val memo_create : unit -> memo
val memo_hits : memo -> int
val memo_misses : memo -> int
val memo_size : memo -> int

(** Incremental solver context: a push/pop stack of path-condition
    literals kept asserted in an accumulated theory state, so checking
    a branch costs one new-literal assertion instead of re-solving the
    whole conjunction. Verdicts are memoized in the (possibly shared)
    {!memo}. The caller maintains the invariant that every pushed
    literal extended a conjunction the solver had not refuted (the
    exploration invariant: the current path condition is Sat). *)
module Ctx : sig
  type t

  val create : ?memo:memo -> unit -> t
  (** Fresh context with an empty stack; [memo] defaults to a private
      cache. *)

  val push : t -> literal -> unit
  (** Assert a literal onto the path condition. *)

  val pop : t -> unit
  (** Undo the most recent {!push}. Raises [Invalid_argument] on an
      empty stack. *)

  val depth : t -> int
  (** Number of pushed literals. *)

  val path_condition : t -> literal list
  (** The pushed literals, oldest first. *)

  val check_extended : t -> literal -> verdict
  (** Feasibility of [path-condition ∧ l]. Fast paths, in order:
      stack already refuted; [l] subsumed by the stack; the stack
      carries [l]'s canonical negation; memo hit. Otherwise one
      incremental assertion against the accumulated state (falling
      back to the full case-splitting {!check} when disjunctive
      shapes are involved), memoized. *)

  val memo : t -> memo
  val checks : t -> int
  (** Decision-procedure invocations (= cache misses through this
      context). *)

  val solver_time : t -> float
  (** Cumulative CPU seconds spent inside the decision procedure. *)
end
