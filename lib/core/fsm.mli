(** Per-flow finite state machine derived from a model (paper
    Section 2.4: the state-transition logic "can be used to build a
    finite state machine", as BUZZ-style testing consumes).

    Abstract states are the distinct state-match signatures of the
    model's entries (the situations the NF distinguishes for one
    flow); transitions are entries, with successors computed
    semantically by applying the entry's update to a witness flow and
    asking which entry matches afterwards. *)

type state_id = int

type state = {
  id : state_id;
  label : string;  (** rendered state-match signature *)
  literals : Symexec.Solver.literal list;
}

type transition = {
  from_state : state_id;
  to_state : state_id option;  (** [None]: flow forgotten afterwards *)
  entry_index : int;  (** index into the model's entry list *)
  guard : string;  (** rendered flow-match *)
  action : string;  (** rendered packet action *)
}

type t = {
  states : state list;
  transitions : transition list;
  initial : state_id option;  (** state of a never-seen flow *)
}

(** {1 State-variable inference}

    Syntactic recognition of the per-flow state value a state-match
    literal constrains — shared with the runtime match compiler, whose
    per-flow FSM dispatch level partitions entries on exactly these
    keys. *)

type state_key = { sk_base : string; sk_key : Symexec.Sexpr.t }
(** One per-flow state slot: the flow-table name and the (symbolic)
    key expression that addresses this flow's entry in it. *)

val state_key_equal : state_key -> state_key -> bool

val is_cmp : Nfl.Ast.binop -> bool
(** Comparison operators ([==], [!=], [<], [<=], [>], [>=]). *)

val flip_cmp : Nfl.Ast.binop -> Nfl.Ast.binop
(** Mirror a comparison across its operands ([a < b] ≡ [b > a]). *)

val state_key_of_literal :
  Symexec.Solver.literal ->
  (state_key * [ `Mem | `Value of Nfl.Ast.binop * Symexec.Sexpr.t ]) option
(** Classify a literal as a constraint on one per-flow state value:
    [`Mem] is a membership atom on the key, [`Value (op, rhs)] a
    comparison of the stored value (normalized so the state read is on
    the left) against [rhs]. Dictionary snapshots with pending writes
    never qualify. Polarity is {e not} consulted — callers combine the
    atom's verdict with [literal.positive] themselves. *)

val state_partition : Model.t -> (state_key * int list) list
(** The state keys the model's entries dispatch on, each with the
    indices of the entries whose [state_match] constrains it, most
    constrained first. *)

val of_extraction : Extract.result -> t
val state_count : t -> int
val transition_count : t -> int

val reachable_states : t -> state_id list
(** States one flow can traverse from [initial]. *)

val pp : Format.formatter -> t -> unit

val to_dot : ?name:string -> t -> string
(** Graphviz rendering. *)
