(** The NFactor forwarding model (paper Section 2.3, Figure 2a): an
    OpenFlow-like stateful table whose entries match on flow and
    internal state under a configuration, transform-and-forward (or
    drop) the packet, and transition the state. Entries come from
    execution paths, so matches are mutually exclusive and the
    table-miss action is drop. *)

open Symexec

type pkt_action =
  | Forward of (string * Sexpr.t) list list
      (** one field-map snapshot per emitted packet *)
  | Drop

type state_update =
  | Set_scalar of Sexpr.t
  | Dict_ops of (Sexpr.t * Sexpr.t option) list
      (** chronological inserts ([Some v]) and deletes ([None]) *)

type entry = {
  config : Solver.literal list;  (** predicates over cfgVars *)
  flow_match : Solver.literal list;  (** predicates over packet fields *)
  state_match : Solver.literal list;  (** predicates over oisVars *)
  residual_match : Solver.literal list;
      (** unclassifiable path-condition literals, kept so no constraint
          is silently dropped *)
  pkt_action : pkt_action;
  state_update : (string * state_update) list;  (** absent = unchanged *)
  path_sids : int list;  (** statements of the originating path *)
  truncated : bool;
}

type t = {
  nf_name : string;
  pkt_var : string;
  cfg_vars : string list;
  ois_vars : string list;
  entries : entry list;
}

(** {1 Queries} *)

val entry_count : t -> int

val config_groups : t -> (string list * Solver.literal list) list
(** Distinct configuration condition sets in first-appearance order —
    the "tables" of Figure 2a. The key is the rendered literal list. *)

val entries_for_config : t -> string list -> entry list

val matched_fields : t -> string list
(** Packet header fields the model reads (flow and state matches). *)

val modified_fields : t -> string list
(** Fields some forwarding action rewrites. *)

val is_stateful : t -> bool

(** {1 Rendering (Figure-6 style)} *)

val pp_literals : Format.formatter -> Solver.literal list -> unit

val pp_action : ?pkt_var:string -> Format.formatter -> pkt_action -> unit
(** [pkt_var] (default ["pkt"]) names the packet variable so identity
    rewrites [f := pkt_var.f] are elided. *)

val pp_state_update : Format.formatter -> string * state_update -> unit
val pp_entry : ?pkt_var:string -> Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
