(** Per-flow finite state machine derived from a model (paper
    Section 2.4: "The state transition logic can be used to build a
    finite state machine, which is proposed and used in network
    testing solutions [BUZZ]").

    Abstraction: one flow's life at the NF. An abstract state is the
    canonical signature of a model entry's state-match predicates (the
    distinct "situations" the NF distinguishes for a flow: {e unknown},
    {e mapped}, {e established}, ...). Each model entry becomes a
    transition: from the abstract state its state-match describes, on
    the packet class its flow-match describes, to the abstract state
    implied by its update (identified by which entry would match the
    same flow afterwards).

    The successor is computed {e semantically}: the entry's state
    update is applied to a concrete witness flow, and the machine asks
    which entry's state-match the updated store satisfies. *)

open Symexec

type state_id = int

type state = {
  id : state_id;
  label : string;  (** rendered state-match signature *)
  literals : Solver.literal list;
}

type transition = {
  from_state : state_id;
  to_state : state_id option;  (** [None]: no entry matches afterwards (flow forgotten) *)
  entry_index : int;
  guard : string;  (** rendered flow-match *)
  action : string;  (** rendered packet action *)
}

type t = {
  states : state list;
  transitions : transition list;
  initial : state_id option;  (** state of a never-seen flow, if identifiable *)
}

let state_signature (e : Model.entry) =
  Fmt.str "%a" Model.pp_literals e.Model.state_match

(* ------------------------------------------------------------------ *)
(* State-variable inference                                            *)
(* ------------------------------------------------------------------ *)

type state_key = { sk_base : string; sk_key : Sexpr.t }

let state_key_equal a b = a.sk_base = b.sk_base && Sexpr.equal a.sk_key b.sk_key

let is_cmp (op : Nfl.Ast.binop) =
  match op with
  | Nfl.Ast.Eq | Nfl.Ast.Ne | Nfl.Ast.Lt | Nfl.Ast.Le | Nfl.Ast.Gt | Nfl.Ast.Ge ->
      true
  | _ -> false

let flip_cmp (op : Nfl.Ast.binop) =
  match op with
  | Nfl.Ast.Lt -> Nfl.Ast.Gt
  | Nfl.Ast.Le -> Nfl.Ast.Ge
  | Nfl.Ast.Gt -> Nfl.Ast.Lt
  | Nfl.Ast.Ge -> Nfl.Ast.Le
  | op -> op

(* A snapshot with pending writes is not "the flow's current state":
   its value depends on the path's own updates, not just the store. *)
let plain_dict (d : Sexpr.dict_state) =
  match d.Sexpr.writes with
  | [] when d.Sexpr.base <> Sexpr.empty_base -> Some d.Sexpr.base
  | _ -> None

let state_key_of_literal (l : Solver.literal) =
  let dget e =
    match Sexpr.view e with
    | Sexpr.Dget (d, k) ->
        Option.map (fun base -> { sk_base = base; sk_key = k }) (plain_dict d)
    | _ -> None
  in
  match Sexpr.view l.Solver.atom with
  | Sexpr.Mem (d, k) ->
      Option.map (fun base -> ({ sk_base = base; sk_key = k }, `Mem)) (plain_dict d)
  | Sexpr.Bin (op, a, b) when is_cmp op -> (
      match dget a with
      | Some sk -> Some (sk, `Value (op, b))
      | None -> (
          match dget b with
          | Some sk -> Some (sk, `Value (flip_cmp op, a))
          | None -> None))
  | _ -> None

let state_partition (m : Model.t) =
  let add acc idx sk =
    let rec go = function
      | [] -> [ (sk, [ idx ]) ]
      | (sk', idxs) :: rest when state_key_equal sk sk' ->
          (sk', if List.mem idx idxs then idxs else idx :: idxs) :: rest
      | kv :: rest -> kv :: go rest
    in
    go acc
  in
  List.fold_left
    (fun (i, acc) (e : Model.entry) ->
      let acc =
        List.fold_left
          (fun acc (l : Solver.literal) ->
            match state_key_of_literal l with
            | Some (sk, _) -> add acc i sk
            | None -> acc)
          acc e.Model.state_match
      in
      (i + 1, acc))
    (0, []) m.Model.entries
  |> snd
  |> List.map (fun (sk, idxs) -> (sk, List.rev idxs))
  |> List.stable_sort (fun (_, a) (_, b) ->
         compare (List.length b) (List.length a))

(* A concrete witness packet for an entry under the current store:
   solver concretization over the flow atoms, laid over a small base
   palette (the solver cannot decide opaque prefix/port-set atoms, so
   bases supply plausible address families). The witness must satisfy
   the entry's config+flow predicates concretely; the first candidate
   that does wins. *)
let witness_bases =
  let addrs =
    [ Packet.Addr.ip 10 0 0 1; Packet.Addr.ip 192 168 1 5; Packet.Addr.ip 8 8 8 8; Packet.Addr.ip 3 3 3 3 ]
  in
  let flags = [ Packet.Headers.ack; Packet.Headers.syn; 0; Packet.Headers.fin; Packet.Headers.rst ] in
  List.concat_map
    (fun src ->
      List.concat_map
        (fun dst ->
          if src = dst then []
          else
            List.concat_map
              (fun dport ->
                List.map
                  (fun fl ->
                    Packet.Pkt.make ~ip_src:src ~ip_dst:dst ~sport:40000 ~dport ~tcp_flags:fl ())
                  flags)
              [ 80; 443; 9999 ])
        addrs)
    addrs

let witness_packet ~pkt_var store (e : Model.entry) =
  let prefix = pkt_var ^ "." in
  let plen = String.length prefix in
  let resolve (l : Solver.literal) =
    { l with Solver.atom = Sexpr.subst (fun n -> Model_interp.Smap.find_opt n store) l.Solver.atom }
  in
  let lits = List.map resolve (e.Model.config @ e.Model.flow_match) in
  match Solver.concretize ~default:1 lits with
  | None -> None
  | Some assignment ->
      let overlay base =
        Solver.Smap.fold
          (fun name v pkt ->
            if String.length name > plen && String.sub name 0 plen = prefix then
              let f = String.sub name plen (String.length name - plen) in
              match v with
              | Value.Int n when Packet.Headers.is_int_field f ->
                  Packet.Pkt.set_int pkt f (((n mod 65536) + 65536) mod 65536)
              | Value.Str s when Packet.Headers.is_str_field f -> Packet.Pkt.set_str pkt f s
              | _ -> pkt
            else pkt)
          assignment base
      in
      let flow_holds pkt =
        List.for_all
          (Model_interp.literal_holds ~pkt_var store pkt)
          (e.Model.config @ e.Model.flow_match)
      in
      let candidates = List.map overlay (List.hd witness_bases :: witness_bases) in
      (match List.find_opt flow_holds candidates with
      | Some pkt -> Some pkt
      | None -> Some (List.hd candidates))

(** Build the per-flow FSM of a model, using the extraction-time
    initial store for semantic successor computation. *)
let of_extraction (ex : Extract.result) =
  let m = ex.Extract.model in
  let pkt_var = m.Model.pkt_var in
  let init_store = Model_interp.initial_store ex in
  (* Distinct abstract states, in entry order. *)
  let states =
    List.fold_left
      (fun acc (e : Model.entry) ->
        let label = state_signature e in
        if List.exists (fun s -> s.label = label) acc then acc
        else
          acc
          @ [ { id = List.length acc; label; literals = e.Model.state_match } ])
      [] m.Model.entries
  in
  let state_of_label label = List.find_opt (fun s -> s.label = label) states in
  (* For each entry: apply its updates to the initial store using a
     witness flow, then find which entry the same flow matches next —
     its state signature is the successor abstract state. *)
  let transitions =
    List.concat
      (List.mapi
         (fun idx (e : Model.entry) ->
           match witness_packet ~pkt_var init_store e with
           | None -> []
           | Some pkt -> (
               let from_label = state_signature e in
               match state_of_label from_label with
               | None -> []
               | Some from_s ->
                   (* Fire the entry if it actually matches from the
                      initial store (stateful predecessors need staged
                      state; approximate by checking matchability and
                      falling back to a syntactic self-check). *)
                   let store_after =
                     if Model_interp.entry_matches ~pkt_var init_store pkt e then
                       (Model_interp.step m init_store pkt).Model_interp.store
                     else
                       (* Apply the update list directly. *)
                       List.fold_left
                         (fun st (v, upd) ->
                           match upd with
                           | Model.Set_scalar expr -> (
                               match Model_interp.eval ~pkt_var st pkt expr with
                               | value -> Model_interp.Smap.add v value st
                               | exception _ -> st)
                           | Model.Dict_ops ops ->
                               let current =
                                 match Model_interp.Smap.find_opt v st with
                                 | Some (Value.Dict kvs) -> kvs
                                 | _ -> []
                               in
                               let updated =
                                 List.fold_left
                                   (fun acc (k, op) ->
                                     match (Model_interp.eval ~pkt_var st pkt k, op) with
                                     | kv, Some value -> (
                                         match Model_interp.eval ~pkt_var st pkt value with
                                         | vv -> Value.dict_set acc kv vv
                                         | exception _ -> acc)
                                     | kv, None -> Value.dict_remove acc kv
                                     | exception _ -> acc)
                                   current ops
                               in
                               Model_interp.Smap.add v (Value.Dict updated) st)
                         init_store e.Model.state_update
                   in
                   (* Successor abstract state: the most specific state
                      whose predicates the post-store satisfies for this
                      flow (decoupled from any particular next packet's
                      guard, so multi-step protocols progress). *)
                   let holds (s : state) =
                     List.for_all (Model_interp.literal_holds ~pkt_var store_after pkt) s.literals
                   in
                   let specificity (s : state) =
                     let positives =
                       List.length (List.filter (fun (l : Solver.literal) -> l.Solver.positive) s.literals)
                     in
                     (List.length s.literals, positives)
                   in
                   let to_state =
                     List.filter holds states
                     |> List.sort (fun a b -> compare (specificity b) (specificity a))
                     |> function
                     | s :: _ -> Some s.id
                     | [] -> None
                   in
                   [
                     {
                       from_state = from_s.id;
                       to_state;
                       entry_index = idx;
                       guard = Fmt.str "%a" Model.pp_literals e.Model.flow_match;
                       action = Fmt.str "%a" (Model.pp_action ~pkt_var) e.Model.pkt_action;
                     };
                   ]))
         m.Model.entries)
  in
  (* The initial state of a fresh flow: the entry matching a witness
     from the pristine store. *)
  let initial =
    List.find_map
      (fun (e : Model.entry) ->
        match witness_packet ~pkt_var init_store e with
        | Some pkt when Model_interp.entry_matches ~pkt_var init_store pkt e ->
            Option.map (fun s -> s.id) (state_of_label (state_signature e))
        | _ -> None)
      m.Model.entries
  in
  { states; transitions; initial }

let state_count t = List.length t.states
let transition_count t = List.length t.transitions

(** Self-loop-free reachability: which abstract states can a single
    flow traverse, starting from [initial]? *)
let reachable_states t =
  match t.initial with
  | None -> []
  | Some s0 ->
      let rec go seen frontier =
        match frontier with
        | [] -> List.rev seen
        | s :: rest ->
            if List.mem s seen then go seen rest
            else
              let nexts =
                List.filter_map
                  (fun tr -> if tr.from_state = s then tr.to_state else None)
                  t.transitions
              in
              go (s :: seen) (nexts @ rest)
      in
      go [] [ s0 ]

let pp ppf t =
  Fmt.pf ppf "states:@.";
  List.iter (fun s -> Fmt.pf ppf "  S%d: %s@." s.id s.label) t.states;
  (match t.initial with
  | Some s -> Fmt.pf ppf "initial: S%d@." s
  | None -> Fmt.pf ppf "initial: ?@.");
  Fmt.pf ppf "transitions:@.";
  List.iter
    (fun tr ->
      Fmt.pf ppf "  S%d --[e%d: %s / %s]--> %s@." tr.from_state tr.entry_index tr.guard tr.action
        (match tr.to_state with Some s -> Printf.sprintf "S%d" s | None -> "⊥"))
    t.transitions

(** Graphviz rendering for documentation and debugging. *)
let to_dot ?(name = "nf_fsm") t =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" name);
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "  S%d [label=%S%s];\n" s.id
           (Printf.sprintf "S%d: %s" s.id s.label)
           (if t.initial = Some s.id then ", shape=doublecircle" else "")))
    t.states;
  List.iter
    (fun tr ->
      match tr.to_state with
      | Some dst ->
          Buffer.add_string b
            (Printf.sprintf "  S%d -> S%d [label=%S];\n" tr.from_state dst
               (Printf.sprintf "e%d: %s" tr.entry_index tr.action))
      | None ->
          Buffer.add_string b
            (Printf.sprintf "  S%d -> bottom [label=%S, style=dashed];\n" tr.from_state
               (Printf.sprintf "e%d" tr.entry_index)))
    t.transitions;
  if List.exists (fun tr -> tr.to_state = None) t.transitions then
    Buffer.add_string b "  bottom [label=\"(forgotten)\", shape=plaintext];\n";
  Buffer.add_string b "}\n";
  Buffer.contents b
