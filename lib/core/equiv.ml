(** Equivalence checking between an NF program and its extracted model
    (paper Section 5, "Accuracy").

    Two checks, as in the paper:

    1. {b Path-set comparison} — symbolically execute both sides and
       compare the canonicalized sets of (path condition, action)
       signatures.
    2. {b Differential (random) testing} — drive the same random packet
       sequence through the original program (concrete interpreter)
       and the model (model interpreter) in lock step and compare the
       emitted packets after every input. *)

open Symexec

(* ------------------------------------------------------------------ *)
(* Path-set comparison                                                *)
(* ------------------------------------------------------------------ *)

(* Canonical signature of a path/entry: sorted literal strings plus the
   action rendering. Signatures are compared as sets. *)
let signature_of_literals (lits : Solver.literal list) =
  List.map (fun l -> Fmt.str "%a" Solver.pp_literal l) lits |> List.sort compare

let signature_of_sends (sends : (string * Sexpr.t) list list) =
  List.map
    (fun snap ->
      List.sort (fun (a, _) (b, _) -> compare a b) snap
      |> List.map (fun (f, e) -> Printf.sprintf "%s=%s" f (Sexpr.to_string e))
      |> String.concat ",")
    sends

let signature_of_path (p : Explore.path) =
  (signature_of_literals p.Explore.pc, signature_of_sends p.Explore.sends)

let signature_of_entry (e : Model.entry) =
  (* Residual literals are part of the path's condition even though the
     classifier could not attribute them; without them an entry with
     unclassifiable atoms would never match its originating path. *)
  let lits =
    e.Model.config @ e.Model.flow_match @ e.Model.state_match @ e.Model.residual_match
  in
  let sends =
    match e.Model.pkt_action with Model.Drop -> [] | Model.Forward snaps -> snaps
  in
  (signature_of_literals lits, signature_of_sends sends)

(** Do the model's entries and the slice's execution paths describe the
    same path set? (The paper's "we use symbolic execution to exercise
    all possible execution paths on both sides... the two sets of paths
    are the same".) *)
let paths_match (ex : Extract.result) =
  let path_sigs = List.map signature_of_path ex.Extract.paths |> List.sort compare in
  let entry_sigs =
    List.map signature_of_entry ex.Extract.model.Model.entries |> List.sort compare
  in
  path_sigs = entry_sigs

(* ------------------------------------------------------------------ *)
(* Differential testing                                               *)
(* ------------------------------------------------------------------ *)

type mismatch = {
  index : int;  (** which input packet *)
  input : Packet.Pkt.t;
  program_out : Packet.Pkt.t list;
  model_out : Packet.Pkt.t list;
}

type verdict = { trials : int; mismatches : mismatch list }

let ok v = v.mismatches = []

(** Lock-step differential run: for each input packet, execute one
    iteration of the program loop and one model step; compare outputs.
    Both sides carry their state across packets. *)
let differential (ex : Extract.result) ~pkts =
  let p = ex.Extract.program in
  let _, body, pkt_var = Nfl.Transform.packet_loop p in
  let prog_store = ref (Interp.initial_state p) in
  let model_store = ref (Model_interp.initial_store ex) in
  let mismatches = ref [] in
  List.iteri
    (fun index input ->
      let prog_out, prog_store', _trace =
        Interp.step_loop_body ~body ~store:!prog_store ~pkt_var ~pkt:input ()
      in
      let m = Model_interp.step ex.Extract.model !model_store input in
      prog_store := prog_store';
      model_store := m.Model_interp.store;
      if not (List.length prog_out = List.length m.Model_interp.outputs
             && List.for_all2 Packet.Pkt.equal prog_out m.Model_interp.outputs)
      then
        mismatches :=
          { index; input; program_out = prog_out; model_out = m.Model_interp.outputs }
          :: !mismatches)
    pkts;
  { trials = List.length pkts; mismatches = List.rev !mismatches }

(** Lock-step model-vs-model run from a shared initial store: per
    packet both tables step once, outputs compared; the boolean
    reports whether the final stores agree too. *)
let model_differential ~store ~pkts (a : Model.t) (b : Model.t) =
  let store_a = ref store and store_b = ref store in
  let mismatches = ref [] in
  List.iteri
    (fun index input ->
      let sa = Model_interp.step a !store_a input in
      let sb = Model_interp.step b !store_b input in
      store_a := sa.Model_interp.store;
      store_b := sb.Model_interp.store;
      let oa = sa.Model_interp.outputs and ob = sb.Model_interp.outputs in
      if not (List.length oa = List.length ob && List.for_all2 Packet.Pkt.equal oa ob)
      then
        mismatches := { index; input; program_out = oa; model_out = ob } :: !mismatches)
    pkts;
  ( { trials = List.length pkts; mismatches = List.rev !mismatches },
    Model_interp.Smap.equal Value.equal !store_a !store_b )

(** The paper's experiment: [trials] random packets (plus, more
    demanding than the paper, flow-structured traffic exercising the
    stateful entries). *)
let random_testing ?(seed = 42) ?(trials = 1000) (ex : Extract.result) =
  let pkts = Packet.Traffic.random_stream ~seed ~n:trials () in
  differential ex ~pkts

let flow_testing ?(seed = 43) ?(flows = 50) ?(data_pkts = 3) (ex : Extract.result) =
  let pkts = Packet.Traffic.flow_stream ~seed ~flows ~data_pkts () in
  differential ex ~pkts

let pp_mismatch ppf m =
  Fmt.pf ppf "packet #%d %a:@." m.index Packet.Pkt.pp m.input;
  Fmt.pf ppf "  program: %a@." Fmt.(list ~sep:(any "; ") Packet.Pkt.pp) m.program_out;
  Fmt.pf ppf "  model  : %a@." Fmt.(list ~sep:(any "; ") Packet.Pkt.pp) m.model_out
