(** Model serialization — the vendor-to-operator interchange format
    from the paper's deployment story ("run [NFactor] on their
    proprietary code and provide only the resultant models").
    S-expression based, versioned, with a total parser. *)

open Symexec

type sexp = Atom of string | List of sexp list

exception Parse_error of string

(** {1 Generic s-expressions} *)

val sexp_to_string : sexp -> string

val parse_sexp : string -> sexp
(** @raise Parse_error on malformed input. *)

(** {1 Component encoders (exposed for testing and tooling)} *)

val sexp_of_value : Value.t -> sexp
val value_of_sexp : sexp -> Value.t

val binop_name : Nfl.Ast.binop -> string
val binop_of_name : string -> Nfl.Ast.binop
(** @raise Parse_error on an unknown operator name. *)

val sexp_of_expr : Sexpr.t -> sexp

(** Rebuilds through the interning smart constructors: term ids are
    session-local, so parsing re-interns structurally in the reader's
    table. *)
val expr_of_sexp : sexp -> Sexpr.t
val sexp_of_dict_state : Sexpr.dict_state -> sexp
val dict_state_of_sexp : sexp -> Sexpr.dict_state
val sexp_of_literal : Solver.literal -> sexp
val literal_of_sexp : sexp -> Solver.literal
val sexp_of_entry : Model.entry -> sexp
val entry_of_sexp : sexp -> Model.entry

(** {1 Whole models} *)

val version : int

val to_string : Model.t -> string
(** Serialize to the interchange text. *)

val of_string : string -> Model.t
(** @raise Parse_error on malformed or wrong-version input. *)
