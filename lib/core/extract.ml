(** Algorithm 1: NF program slicing and model synthesis, end to end.

    {v
    1-4   packet slice      — backward slices from every send()
    5     StateAlyzer       — pktVar / cfgVar / oisVar classification
    6-9   state slice       — backward slices from every oisVar update
    10    execution paths   — symbolic execution of the slice union
    11-16 refinement        — path conditions -> config/flow/state match,
                              path effects    -> packet/state actions
    v}

    Scalar configuration variables are left symbolic during
    exploration, so one extraction covers every configuration (the
    paper's Figure 6 shows both [mode = RR] and [mode = HASH] tables
    from a single run); structured configuration (lists like the
    backend pool) stays concrete to keep indexing tractable, mirroring
    BUZZ's constraint on the number and scope of symbolic variables. *)

open Symexec

type result = {
  model : Model.t;
  classes : Statealyzer.Varclass.t;
  program : Nfl.Ast.program;  (** canonical program the model was extracted from *)
  pkt_slice : int list;
  state_slice : int list;
  union_slice : int list;
  sliced_body : Nfl.Ast.block;  (** loop body restricted to the slice union *)
  paths : Explore.path list;
  stats : Explore.stats;
  stage_times : (string * float) list;  (** wall-clock seconds per pipeline stage *)
  solver_memo : Solver.memo;  (** verdict cache; reusable for further explorations *)
}

(* Variables whose initial value should stay concrete even when the
   classifier calls them configuration: containers and strings are
   structural. *)
let scalar_config init name =
  match Interp.Smap.find_opt name init with
  | Some (Value.Int _) | Some (Value.Bool _) -> true
  | _ -> false

(** Symbolic environment for one loop iteration: symbolic packet,
    symbolic scalar configs, symbolic output-impacting state, concrete
    everything else. *)
let symbolic_env ~(classes : Statealyzer.Varclass.t) ~init ~pkt_var =
  let cat v = Statealyzer.Varclass.category_of classes v in
  let env =
    Interp.Smap.fold
      (fun name v acc ->
        let sval =
          match cat name with
          | Some Statealyzer.Varclass.Cfg_var when scalar_config init name ->
              Explore.Scalar (Sexpr.sym name)
          | Some Statealyzer.Varclass.Ois_var -> (
              match v with
              | Value.Dict _ -> Explore.Dictv (Sexpr.dict_base name)
              | Value.Int _ | Value.Bool _ -> Explore.Scalar (Sexpr.sym name)
              | _ -> Explore.sval_of_value v)
          | _ -> Explore.sval_of_value v
        in
        Explore.Smap.add name sval acc)
      init Explore.Smap.empty
  in
  Explore.Smap.add pkt_var (Explore.sym_pkt pkt_var) env

(* ------------------------------------------------------------------ *)
(* Literal classification (Algorithm 1 lines 12-14)                   *)
(* ------------------------------------------------------------------ *)

type lit_class = L_config | L_flow | L_state | L_other

(* Priority: state predicates may mention packet fields (membership of
   a flow key in a state table); flow predicates may mention config
   constants (dport == lb_port); only predicates purely over config
   variables go to the config field — so Figure 6's tables split on
   [mode] alone, not on every header test against a config value. The
   packet-field prefix is derived from the classified packet variable,
   so NFs that do not literally call it [pkt] classify the same way. *)
let classify_literal ~pkt_var ~cfg_vars ~ois_vars (l : Solver.literal) =
  let syms = Sexpr.syms l.Solver.atom in
  let prefix = pkt_var ^ "." in
  let plen = String.length prefix in
  let mentions_pkt =
    Sexpr.Sset.exists (fun s -> String.length s > plen && String.sub s 0 plen = prefix) syms
  in
  let mentions v = Sexpr.Sset.mem v syms in
  if List.exists mentions ois_vars then L_state
  else if mentions_pkt then L_flow
  else if List.exists mentions cfg_vars then L_config
  else L_other

(* ------------------------------------------------------------------ *)
(* State-update extraction (Algorithm 1 line 15, state side)          *)
(* ------------------------------------------------------------------ *)

let state_updates_of_path ~ois_vars (path : Explore.path) =
  List.filter_map
    (fun v ->
      match Explore.Smap.find_opt v path.Explore.env with
      | Some (Explore.Dictv d) ->
          if d.Sexpr.writes = [] then None
          else Some (v, Model.Dict_ops (List.rev d.Sexpr.writes))
      | Some (Explore.Scalar e) ->
          if Sexpr.equal e (Sexpr.sym v) then None else Some (v, Model.Set_scalar e)
      | Some (Explore.Pktv _) | Some (Explore.Listv _) | None -> None)
    ois_vars

(* ------------------------------------------------------------------ *)
(* Pipeline                                                           *)
(* ------------------------------------------------------------------ *)

let distinct_sorted l = List.sort_uniq compare l

(** Normalize to canonical single-loop form unless already there. *)
let ensure_canonical (p : Nfl.Ast.program) =
  let is_canonical =
    p.Nfl.Ast.funcs = []
    &&
    match Nfl.Transform.packet_loop p with
    | _ -> true
    | exception Nfl.Transform.Not_applicable _ -> false
  in
  if is_canonical then p else Nfl.Transform.canonicalize p

(* ------------------------------------------------------------------ *)
(* Pipeline stages                                                    *)
(* ------------------------------------------------------------------ *)

(* Each Algorithm-1 stage is a pure function of its upstream artifacts,
   so the pass pipeline (lib/pipeline) can fingerprint, memoize and
   persist them independently; [run] below composes the same functions
   without any caching. *)

let canonical_stage (p : Nfl.Ast.program) =
  (* Renumber statement ids by round-tripping the canonical program
     through the pretty-printer: sids become a pure function of the
     canonical *text*, so artifacts that mention sids (slices, path
     traces, model [path_sids]) stay valid when the canonical program
     is reloaded from a cache and re-parsed in another session. *)
  Nfl.Parser.program (Nfl.Pretty.program (ensure_canonical p))

let classify_stage (p : Nfl.Ast.program) = Statealyzer.Varclass.analyze p

type slices = {
  sl_pkt : int list;  (** packet slice (Algorithm 1 lines 1-4) *)
  sl_state : int list;  (** state slice (lines 6-9) *)
  sl_union : int list;
  sl_body : Nfl.Ast.block;  (** loop body restricted to the union *)
}

(** Recompute the sliced loop body from the canonical program and the
    slice union (used when slices are reloaded from a cache: only the
    statement-id lists are persisted). *)
let sliced_body_of_union (p : Nfl.Ast.program) union_slice =
  let sliced_main = Slicing.Slice.restrict_block union_slice p.Nfl.Ast.main in
  let _, body, _ = Nfl.Transform.packet_loop { p with Nfl.Ast.main = sliced_main } in
  body

let slice_stage (p : Nfl.Ast.program) (classes : Statealyzer.Varclass.t) =
  let ois_vars = Statealyzer.Varclass.vars_of_category classes Statealyzer.Varclass.Ois_var in
  let pkt_slice = classes.Statealyzer.Varclass.pkt_slice in
  let persistent =
    List.fold_left
      (fun acc (s : Nfl.Ast.stmt) ->
        match s.Nfl.Ast.kind with
        | Nfl.Ast.Assign (Nfl.Ast.L_var x, _) -> Nfl.Ast.Sset.add x acc
        | _ -> acc)
      Nfl.Ast.Sset.empty p.Nfl.Ast.globals
  in
  let ctx = Slicing.Slice.of_block ~entry_defs:persistent p.Nfl.Ast.main in
  let ois_update_sids =
    Slicing.Slice.find_stmts ctx (fun s ->
        Dataflow.Defs_uses.defs s
        |> Nfl.Ast.Sset.exists (fun v -> List.mem v ois_vars))
  in
  let state_slice =
    if ois_update_sids = [] then []
    else Slicing.Slice.backward_union ctx ~criteria:ois_update_sids
  in
  let union_slice = distinct_sorted (pkt_slice @ state_slice) in
  {
    sl_pkt = pkt_slice;
    sl_state = state_slice;
    sl_union = union_slice;
    sl_body = sliced_body_of_union p union_slice;
  }

(** Join-point merge policy for exploring [body]: merge at branches
    with a statement join point outside loop bodies, but only on
    diamond chains of at least [min_chain] sequential branches — the
    shape whose naive path count is 2^k. Short chains and elif ladders
    are linear already, and their per-path entries are more useful to
    downstream analyses (reachability classes, FSM derivation) than an
    [ite]-folded summary. Only branch atoms free of config/state
    symbols fold into guards — config splits must stay separate
    entries (Figure 6 shows one table per [mode]) and state predicates
    must keep per-path concrete verdicts for the refinement step. *)
let merge_policy_of ?(min_chain = 5) ~(classes : Statealyzer.Varclass.t)
    (body : Nfl.Ast.block) =
  let joins = Joins.of_block body in
  let banned =
    List.fold_left
      (fun acc v -> Sexpr.Sset.add v acc)
      Sexpr.Sset.empty
      (Statealyzer.Varclass.vars_of_category classes Statealyzer.Varclass.Cfg_var
      @ Statealyzer.Varclass.vars_of_category classes Statealyzer.Varclass.Ois_var)
  in
  {
    Explore.mergeable_if =
      (fun sid -> Joins.mergeable joins sid && Joins.chain_len joins sid >= min_chain);
    admit_guard =
      (fun atom ->
        Sexpr.Sset.is_empty (Sexpr.Sset.inter (Sexpr.syms atom) banned));
  }

let explore_stage ?(config = Explore.default_config) ?(merge = true) ~memo
    (p : Nfl.Ast.program) (classes : Statealyzer.Varclass.t) (sl : slices) =
  let body_no_recv =
    List.filter (fun s -> not (Nfl.Builtins.is_pkt_input_stmt s)) sl.sl_body
  in
  let init = Interp.initial_state p in
  let env = symbolic_env ~classes ~init ~pkt_var:classes.Statealyzer.Varclass.pkt_var in
  let merge = if merge then Some (merge_policy_of ~classes body_no_recv) else None in
  Explore.block ~config ?merge ~memo ~env body_no_recv

let refine_stage ~name (classes : Statealyzer.Varclass.t) (paths : Explore.path list) =
  let pkt_var = classes.Statealyzer.Varclass.pkt_var in
  let cfg_vars = Statealyzer.Varclass.vars_of_category classes Statealyzer.Varclass.Cfg_var in
  let ois_vars = Statealyzer.Varclass.vars_of_category classes Statealyzer.Varclass.Ois_var in
  let entries =
    List.map
      (fun (path : Explore.path) ->
        let config_l, flow_l, state_l, other_l =
          List.fold_left
            (fun (c, f, s, o) l ->
              match classify_literal ~pkt_var ~cfg_vars ~ois_vars l with
              | L_config -> (l :: c, f, s, o)
              | L_flow -> (c, l :: f, s, o)
              | L_state -> (c, f, l :: s, o)
              | L_other -> (c, f, s, l :: o))
            ([], [], [], []) path.Explore.pc
        in
        let pkt_action =
          match path.Explore.sends with
          | [] -> Model.Drop
          | snaps -> Model.Forward (List.map (List.sort (fun (a, _) (b, _) -> compare a b)) snaps)
        in
        {
          Model.config = List.rev config_l;
          flow_match = List.rev flow_l;
          state_match = List.rev state_l;
          residual_match = List.rev other_l;
          pkt_action;
          state_update = state_updates_of_path ~ois_vars path;
          path_sids = distinct_sorted path.Explore.trace;
          truncated = path.Explore.truncated;
        })
      paths
  in
  { Model.nf_name = name; pkt_var; cfg_vars; ois_vars; entries }

let assemble ~model ~classes ~program ~slices:sl ~paths ~stats ~stage_times ~solver_memo =
  {
    model;
    classes;
    program;
    pkt_slice = sl.sl_pkt;
    state_slice = sl.sl_state;
    union_slice = sl.sl_union;
    sliced_body = sl.sl_body;
    paths;
    stats;
    stage_times;
    solver_memo;
  }

(** Run Algorithm 1 on an NF program: the uncached composition of the
    stage functions above (the pass pipeline in [lib/pipeline] runs the
    same stages with fingerprinting and artifact caching). The program
    is canonicalized (structure-normalized and inlined) first, so any
    of the Figure-4 shapes is accepted. *)
let run ?(config = Explore.default_config) ?(merge = true) ~name (p : Nfl.Ast.program) =
  let stage_times = ref [] in
  let timed stage f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    stage_times := (stage, Unix.gettimeofday () -. t0) :: !stage_times;
    r
  in
  let p = timed "canonicalize" (fun () -> canonical_stage p) in
  let classes = timed "classify" (fun () -> classify_stage p) in
  let sl = timed "slice" (fun () -> slice_stage p classes) in
  let solver_memo = Solver.memo_create () in
  let paths, stats =
    timed "explore" (fun () -> explore_stage ~config ~merge ~memo:solver_memo p classes sl)
  in
  let model = timed "refine" (fun () -> refine_stage ~name classes paths) in
  assemble ~model ~classes ~program:p ~slices:sl ~paths ~stats
    ~stage_times:(List.rev !stage_times) ~solver_memo
