(** Table-2 style measurement: LoC, slicing time, execution-path counts
    and symbolic-execution time, original vs slice. Budget-capped
    results are reported as lower bounds, like the paper's ">1000". *)

open Symexec

type bound_int = Exact of int | More_than of int

val pp_bound_int : Format.formatter -> bound_int -> unit

type row = {
  name : string;
  loc_orig : int;  (** non-comment source lines *)
  stmts_orig : int;  (** canonical-program statements (the slice unit) *)
  loc_slice : int;  (** statements in the packet+state slice *)
  loc_path_max : int;  (** statements on the largest single path *)
  slicing_time_s : float;
  ep_orig : bound_int;
  ep_slice : bound_int;
  se_time_orig_s : float;
  se_time_slice_s : float;
}

val time : (unit -> 'a) -> 'a * float
(** Wall-clock timing helper. *)

val explore_original :
  ?config:Explore.config -> ?memo:Solver.memo -> Extract.result -> Explore.path list * Explore.stats
(** Symbolic execution of the {e unsliced} loop body under the
    extraction environment (the paper's "orig" columns). [memo] reuses
    path-condition verdicts, e.g. the extraction's [solver_memo]. *)

val explore_slice :
  ?config:Explore.config -> ?memo:Solver.memo -> Extract.result -> Explore.path list * Explore.stats
(** Re-exploration of the slice in isolation (the "slice" columns). *)

val measure :
  ?config:Explore.config ->
  ?se_budget:int ->
  ?ex:Extract.result ->
  name:string ->
  source:string ->
  Nfl.Ast.program ->
  Extract.result * row
(** Full measurement of one NF; [se_budget] caps the original-program
    exploration. [ex] supplies an already-synthesized extraction (e.g.
    assembled from a pass-manager cache) instead of re-running
    [Extract.run]. *)

val header : string
val row_to_string : row -> string
