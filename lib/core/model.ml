(** The NFactor forwarding model (paper Section 2.3, Figure 2a).

    An OpenFlow-like stateful table: each entry matches on the flow
    (packet header predicates) and on internal state (predicates over
    output-impacting state variables), under a configuration
    (predicates over config variables). Its action both transforms and
    forwards the packet — or drops it — and transitions the state.

    Entries come from execution paths (one entry per feasible path of
    the packet/state slice), so match conditions are mutually exclusive
    by construction and the implicit table-miss action is {e drop}
    (Section 3.2, "Drop Action"). *)

open Symexec

type pkt_action =
  | Forward of (string * Sexpr.t) list list
      (** one field-map snapshot per emitted packet (usually one) *)
  | Drop

type state_update =
  | Set_scalar of Sexpr.t  (** new value of a scalar state variable *)
  | Dict_ops of (Sexpr.t * Sexpr.t option) list
      (** chronological inserts ([Some v]) and deletes ([None]) *)

type entry = {
  config : Solver.literal list;  (** predicates over cfgVars *)
  flow_match : Solver.literal list;  (** predicates over packet fields *)
  state_match : Solver.literal list;  (** predicates over oisVars *)
  residual_match : Solver.literal list;
      (** path-condition literals the classifier could not attribute to
          config, flow or state — kept so no constraint is silently
          lost; informational for matching, but part of the path's
          signature *)
  pkt_action : pkt_action;
  state_update : (string * state_update) list;  (** per oisVar, absent = unchanged *)
  path_sids : int list;  (** distinct statement ids of the originating path *)
  truncated : bool;  (** originating path hit an exploration bound *)
}

type t = {
  nf_name : string;
  pkt_var : string;
  cfg_vars : string list;
  ois_vars : string list;
  entries : entry list;
}

(* ------------------------------------------------------------------ *)
(* Queries                                                            *)
(* ------------------------------------------------------------------ *)

let entry_count m = List.length m.entries

(** Distinct configuration condition sets, in first-appearance order —
    the "tables" of Figure 2a. *)
let config_groups m =
  List.fold_left
    (fun acc e ->
      let key = List.map (fun l -> Fmt.str "%a" Solver.pp_literal l) e.config in
      if List.mem_assoc key acc then acc else acc @ [ (key, e.config) ])
    [] m.entries

let entries_for_config m config_key =
  List.filter
    (fun e -> List.map (fun l -> Fmt.str "%a" Solver.pp_literal l) e.config = config_key)
    m.entries

(** Packet header fields the model reads (matches on) and writes. *)
let matched_fields m =
  let fields = ref [] in
  let scan_lit (l : Solver.literal) =
    Sexpr.Sset.iter
      (fun s ->
        match String.index_opt s '.' with
        | Some i when String.sub s 0 i = m.pkt_var ->
            let f = String.sub s (i + 1) (String.length s - i - 1) in
            if not (List.mem f !fields) then fields := f :: !fields
        | _ -> ())
      (Sexpr.syms l.Solver.atom)
  in
  List.iter
    (fun e ->
      List.iter scan_lit e.flow_match;
      List.iter scan_lit e.state_match)
    m.entries;
  List.sort compare !fields

let modified_fields m =
  let fields = ref [] in
  List.iter
    (fun e ->
      match e.pkt_action with
      | Drop -> ()
      | Forward snaps ->
          List.iter
            (List.iter (fun (f, v) ->
                 if
                   (not (Sexpr.equal v (Sexpr.sym (m.pkt_var ^ "." ^ f))))
                   && not (List.mem f !fields)
                 then fields := f :: !fields))
            snaps)
    m.entries;
  List.sort compare !fields

let is_stateful m = m.ois_vars <> []

(* ------------------------------------------------------------------ *)
(* Rendering (Figure 6 style)                                         *)
(* ------------------------------------------------------------------ *)

let pp_literals ppf = function
  | [] -> Fmt.string ppf "*"
  | lits -> Fmt.(list ~sep:(any " && ") Solver.pp_literal) ppf lits

let pp_action ?(pkt_var = "pkt") ppf = function
  | Drop -> Fmt.string ppf "drop"
  | Forward snaps ->
      Fmt.(list ~sep:(any "; "))
        (fun ppf snap ->
          let rewrites =
            List.filter
              (fun (f, v) -> not (Sexpr.equal v (Sexpr.sym (pkt_var ^ "." ^ f))))
              snap
          in
          if rewrites = [] then Fmt.string ppf "send(pkt)"
          else
            Fmt.pf ppf "send(pkt{%a})"
              Fmt.(list ~sep:(any ", ") (fun ppf (f, v) -> Fmt.pf ppf "%s:=%a" f Sexpr.pp v))
              rewrites)
        ppf snaps

let pp_state_update ppf (v, u) =
  match u with
  | Set_scalar e -> Fmt.pf ppf "%s := %a" v Sexpr.pp e
  | Dict_ops ops ->
      Fmt.(list ~sep:(any ", "))
        (fun ppf (k, upd) ->
          match upd with
          | Some value -> Fmt.pf ppf "%s[%a] := %a" v Sexpr.pp k Sexpr.pp value
          | None -> Fmt.pf ppf "del %s[%a]" v Sexpr.pp k)
        ppf ops

let pp_entry ?pkt_var ppf e =
  Fmt.pf ppf "match flow : %a@." pp_literals e.flow_match;
  Fmt.pf ppf "match state: %a@." pp_literals e.state_match;
  if e.residual_match <> [] then Fmt.pf ppf "residual   : %a@." pp_literals e.residual_match;
  Fmt.pf ppf "action pkt : %a@." (pp_action ?pkt_var) e.pkt_action;
  if e.state_update <> [] then
    Fmt.pf ppf "action st  : %a@." Fmt.(list ~sep:(any "; ") pp_state_update) e.state_update;
  if e.truncated then Fmt.pf ppf "(truncated path)@."

(** Figure-6 style rendering: one table per configuration group. *)
let pp ppf m =
  Fmt.pf ppf "NFactor model for %s (%d entries)@." m.nf_name (entry_count m);
  Fmt.pf ppf "cfgVars: %a | oisVars: %a@."
    Fmt.(list ~sep:(any ", ") string)
    m.cfg_vars
    Fmt.(list ~sep:(any ", ") string)
    m.ois_vars;
  List.iter
    (fun (key, config) ->
      Fmt.pf ppf "@.=== config: %a ===@." pp_literals config;
      List.iteri
        (fun i e ->
          Fmt.pf ppf "-- entry %d --@." i;
          pp_entry ~pkt_var:m.pkt_var ppf e)
        (entries_for_config m key))
    (config_groups m)

let to_string m = Fmt.str "%a" pp m
