(** Concrete execution of an extracted model: per packet, the first
    entry whose config/flow/state predicates hold under the current
    state fires; its expressions are evaluated against the pre-state
    and its state transition then commits. Table miss = drop. *)

open Symexec
module Smap : Map.S with type key = string

exception Unresolved of string
(** An expression referenced a symbol/key absent from the environment
    (indicates a malformed model or store). *)

type store = Value.t Smap.t
(** Concrete valuation of cfgVars and oisVars. *)

val initial_store : Extract.result -> store
(** Extraction-time initial values of the model's variables. *)

val eval : ?pkt_var:string -> store -> Packet.Pkt.t -> Sexpr.t -> Value.t
(** Evaluate a symbolic expression under a concrete store and packet;
    dictionary snapshots resolve against the store with their write
    lists replayed. Symbols under [pkt_var ^ "."] (default ["pkt."])
    read the packet. *)

val literal_holds : ?pkt_var:string -> store -> Packet.Pkt.t -> Solver.literal -> bool
val entry_matches : ?pkt_var:string -> store -> Packet.Pkt.t -> Model.entry -> bool

type step = {
  outputs : Packet.Pkt.t list;
  store : store;
  matched : int option;  (** entry index fired; [None] = drop by miss *)
}

val step : Model.t -> store -> Packet.Pkt.t -> step

val run : Model.t -> store:store -> pkts:Packet.Pkt.t list -> store * Packet.Pkt.t list list
(** Fold {!step} over a packet sequence; per-packet outputs. *)
