(** Concrete execution of an extracted model: per packet, the first
    entry whose config/flow/state predicates hold under the current
    state fires; its expressions are evaluated against the pre-state
    and its state transition then commits. Table miss = drop. *)

open Symexec
module Smap : Map.S with type key = string

exception Unresolved of string
(** An expression referenced a symbol/key absent from the environment
    (indicates a malformed model or store). *)

type store = Value.t Smap.t
(** Concrete valuation of cfgVars and oisVars. *)

val initial_store : Extract.result -> store
(** Extraction-time initial values of the model's variables. *)

val null_pkt : Packet.Pkt.t
(** All-zero dummy packet, for evaluating packet-free (config)
    expressions. *)

val eval : ?pkt_var:string -> store -> Packet.Pkt.t -> Sexpr.t -> Value.t
(** Evaluate a symbolic expression under a concrete store and packet;
    dictionary snapshots resolve against the store with their write
    lists replayed. Symbols under [pkt_var ^ "."] (default ["pkt."])
    read the packet. *)

val literal_holds : ?pkt_var:string -> store -> Packet.Pkt.t -> Solver.literal -> bool
val entry_matches : ?pkt_var:string -> store -> Packet.Pkt.t -> Model.entry -> bool

(** {1 Config prefiltering}

    Config literals are predicates over cfgVars and state transitions
    only write oisVars, so config verdicts are invariant across a run:
    {!actives} decides each distinct config condition set once (the
    run-time analogue of {!Model.config_groups}) instead of re-checking
    [entry.config] inside every match. *)

type active = {
  a_idx : int;  (** index of the entry in [Model.entries] *)
  a_entry : Model.entry;
  a_dyn_config : Solver.literal list;
      (** config literals mentioning the packet (degenerate; re-checked
          per packet rather than decided against a dummy) *)
}

val actives : Model.t -> store -> active list
(** Entries whose config holds under [store], in table order. *)

type miss_reason =
  | No_entries  (** the model has no entries at all *)
  | No_active_config  (** entries exist, but no config condition set holds *)
  | No_flow_state_match  (** an active config group exists, but no entry matched *)

type step = {
  outputs : Packet.Pkt.t list;
  store : store;
  matched : int option;  (** entry index fired; [None] = drop by miss *)
  miss : miss_reason option;  (** why the packet missed; [None] when an entry fired *)
}

val step : ?actives:active list -> Model.t -> store -> Packet.Pkt.t -> step
(** [actives] (= [actives m store]) hoists config evaluation out of a
    caller's per-packet loop; recomputed internally when omitted. *)

val run : Model.t -> store:store -> pkts:Packet.Pkt.t list -> store * Packet.Pkt.t list list
(** Fold {!step} over a packet sequence with config evaluated once;
    per-packet outputs. *)
