(** Table-2 style measurement: LoC, slicing time, execution-path counts
    and symbolic-execution time, original vs slice.

    The "original" symbolic execution runs the unsliced loop body under
    the same symbolic environment; for rule-heavy NFs it explodes, so
    it runs under a path budget and the result is reported as a lower
    bound (the paper reports ">1000" / ">1hr" for snort). *)

open Symexec

type bound_int = Exact of int | More_than of int

let pp_bound_int ppf = function
  | Exact n -> Fmt.int ppf n
  | More_than n -> Fmt.pf ppf ">%d" n

type row = {
  name : string;
  loc_orig : int;  (** non-comment source lines of the NF *)
  stmts_orig : int;  (** statements of the canonical program (after
                         structure normalization and inlining) — the
                         unit the slice figures are in *)
  loc_slice : int;  (** statements in the packet+state slice *)
  loc_path_max : int;  (** statements on the largest single execution path *)
  slicing_time_s : float;
  ep_orig : bound_int;  (** execution paths of the original program *)
  ep_slice : bound_int;  (** execution paths of the slice *)
  se_time_orig_s : float;
  se_time_slice_s : float;
}

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let extraction_env (ex : Extract.result) =
  let init = Interp.initial_state ex.Extract.program in
  Extract.symbolic_env ~classes:ex.Extract.classes ~init
    ~pkt_var:ex.Extract.classes.Statealyzer.Varclass.pkt_var

(** Explore the *unsliced* loop body under the extraction environment,
    with a budget. Programs whose original code cannot be symbolically
    executed within the budget report lower bounds. [memo] (e.g. the
    extraction's [solver_memo]) reuses path-condition verdicts — the
    original program re-decides the slice's branch conditions. *)
let explore_original ?(config = Explore.default_config) ?memo (ex : Extract.result) =
  let _, body, _ = Nfl.Transform.packet_loop ex.Extract.program in
  let body_no_recv = List.filter (fun s -> not (Nfl.Builtins.is_pkt_input_stmt s)) body in
  Explore.block ~config ?memo ~env:(extraction_env ex) body_no_recv

(** Re-explore the packet+state slice in isolation (the measurement the
    SE-on-slice column reports). *)
let explore_slice ?(config = Explore.default_config) ?memo (ex : Extract.result) =
  let body_no_recv =
    List.filter (fun s -> not (Nfl.Builtins.is_pkt_input_stmt s)) ex.Extract.sliced_body
  in
  Explore.block ~config ?memo ~env:(extraction_env ex) body_no_recv

(** Measure one NF end to end. [se_budget] caps the original-program
    exploration (the slice side should never need it). [ex] supplies an
    already-synthesized extraction (e.g. from a pass-manager cache) so
    the measurement layers on top of it instead of re-running
    [Extract.run]. *)
let measure ?(config = Explore.default_config) ?(se_budget = 1000) ?ex ~name ~source
    (program : Nfl.Ast.program) =
  let loc_orig =
    String.split_on_char '\n' source
    |> List.filter (fun line ->
           let t = String.trim line in
           t <> "" && t.[0] <> '#')
    |> List.length
  in
  (* Slicing time: canonicalization + classification + both slices;
     symbolic execution of original and slice are measured directly. *)
  let ex =
    match ex with Some ex -> ex | None -> Extract.run ~config ~name program
  in
  let _, slice_only_time =
    time (fun () ->
        (* Re-run the pre-exploration pipeline: canonicalize, classify,
           slice. *)
        ignore (Statealyzer.Varclass.analyze (Extract.ensure_canonical program)))
  in
  (* Both SE measurements reuse the extraction's verdict cache: the
     memoized-solver speedup is part of the measured system. *)
  let _, se_time_slice_s = time (fun () -> explore_slice ~config ~memo:ex.Extract.solver_memo ex) in
  let orig_config = { config with Explore.max_paths = se_budget } in
  let (orig_paths, orig_stats), se_time_orig_s =
    time (fun () -> explore_original ~config:orig_config ~memo:ex.Extract.solver_memo ex)
  in
  ignore orig_paths;
  let ep_orig =
    if orig_stats.Explore.overflowed then More_than orig_stats.Explore.paths
    else Exact orig_stats.Explore.paths
  in
  let ep_slice =
    if ex.Extract.stats.Explore.overflowed then More_than ex.Extract.stats.Explore.paths
    else Exact ex.Extract.stats.Explore.paths
  in
  let loc_path_max =
    List.fold_left
      (fun acc (p : Explore.path) ->
        max acc (List.length (List.sort_uniq compare p.Explore.trace)))
      0 ex.Extract.paths
  in
  ( ex,
    {
      name;
      loc_orig;
      stmts_orig = Nfl.Ast.stmt_count ex.Extract.program;
      loc_slice = List.length ex.Extract.union_slice;
      loc_path_max;
      slicing_time_s = slice_only_time;
      ep_orig;
      ep_slice;
      se_time_orig_s;
      se_time_slice_s;
    } )

let header =
  Printf.sprintf "%-11s | %5s %6s %6s %5s | %9s | %6s %6s | %11s %11s" "NF" "LoC" "stmts"
    "slice" "path" "slice(ms)" "EPorig" "EPslc" "SEorig(ms)" "SEslc(ms)"

let row_to_string r =
  Printf.sprintf "%-11s | %5d %6d %6d %5d | %9.2f | %6s %6s | %11.2f %11.2f" r.name r.loc_orig
    r.stmts_orig r.loc_slice r.loc_path_max
    (r.slicing_time_s *. 1e3)
    (Fmt.str "%a" pp_bound_int r.ep_orig)
    (Fmt.str "%a" pp_bound_int r.ep_slice)
    (r.se_time_orig_s *. 1e3)
    (r.se_time_slice_s *. 1e3)
