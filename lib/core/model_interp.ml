(** Concrete execution of an extracted model.

    Drives a {!Model.t} the way a stateful switch would: per packet,
    find the entry whose config/flow/state predicates hold under the
    current concrete state, emit its (transformed) packets and apply
    its state transition; no entry matching means the default
    low-priority {e drop}.

    This is the model half of the paper's accuracy experiment: the
    original program runs in {!Symexec.Interp}, the model runs here,
    and outputs are compared packet by packet. *)

open Symexec
module Smap = Map.Make (String)

exception Unresolved of string

type store = Value.t Smap.t
(** Concrete valuation of cfgVars and oisVars. *)

(** Initial store for a model: the extraction-time initial values of
    its config and state variables. *)
let initial_store (ex : Extract.result) =
  let init = Interp.initial_state ex.Extract.program in
  List.fold_left
    (fun acc v ->
      match Interp.Smap.find_opt v init with
      | Some value -> Smap.add v value acc
      | None -> acc)
    Smap.empty
    (ex.Extract.model.Model.cfg_vars @ ex.Extract.model.Model.ois_vars)

(* ------------------------------------------------------------------ *)
(* Symbolic-expression evaluation under a concrete environment        *)
(* ------------------------------------------------------------------ *)

(* [prefix] is the packet variable's field prefix (["pkt_var."]): a
   symbol under it reads the packet, anything else reads the store. *)
let lookup_sym ~prefix store (pkt : Packet.Pkt.t) name =
  let plen = String.length prefix in
  if String.length name > plen && String.sub name 0 plen = prefix then begin
    let f = String.sub name plen (String.length name - plen) in
    if Packet.Headers.is_int_field f then Value.Int (Packet.Pkt.get_int pkt f)
    else if Packet.Headers.is_str_field f then Value.Str (Packet.Pkt.get_str pkt f)
    else raise (Unresolved name)
  end
  else
    match Smap.find_opt name store with
    | Some v -> v
    | None -> raise (Unresolved name)

let rec eval_p ~prefix store pkt (e : Sexpr.t) : Value.t =
  let eval = eval_p ~prefix in
  match Sexpr.view e with
  | Sexpr.Const v -> v
  | Sexpr.Sym s -> lookup_sym ~prefix store pkt s
  | Sexpr.Bin (op, a, b) -> Value.binop op (eval store pkt a) (eval store pkt b)
  | Sexpr.Not a -> Value.unop Nfl.Ast.Not (eval store pkt a)
  | Sexpr.Neg a -> Value.unop Nfl.Ast.Neg (eval store pkt a)
  | Sexpr.Tup es -> Value.Tuple (List.map (eval store pkt) es)
  | Sexpr.Lst es -> Value.List (List.map (eval store pkt) es)
  | Sexpr.Get (c, i) -> Value.index (eval store pkt c) (eval store pkt i)
  | Sexpr.Ufun (f, args) -> Value.apply_pure f (List.map (eval store pkt) args)
  | Sexpr.Mem (d, k) ->
      let dict = dict_after_writes ~prefix store pkt d in
      Value.mem (eval store pkt k) (Value.Dict dict)
  | Sexpr.Dget (d, k) -> (
      let dict = dict_after_writes ~prefix store pkt d in
      match Value.dict_get dict (eval store pkt k) with
      | Some v -> v
      | None -> raise (Unresolved ("missing key in " ^ d.Sexpr.base)))
  | Sexpr.Ite (g, a, b) -> (
      (* Only the selected arm is evaluated, so a chain of k merged
         value summaries replays in O(k) despite nesting. *)
      match eval store pkt g with
      | Value.Bool c -> eval store pkt (if c then a else b)
      | Value.Int n -> eval store pkt (if n <> 0 then a else b)
      | _ -> raise (Unresolved "non-boolean ite guard"))

(* A dictionary snapshot: the store's value for the base, with the
   snapshot's (chronological) writes applied. *)
and dict_after_writes ~prefix store pkt (d : Sexpr.dict_state) =
  let eval = eval_p ~prefix in
  let base =
    if d.Sexpr.base = Sexpr.empty_base then []
    else
      match Smap.find_opt d.Sexpr.base store with
      | Some (Value.Dict kvs) -> kvs
      | Some _ | None -> raise (Unresolved ("dict " ^ d.Sexpr.base))
  in
  List.fold_left
    (fun acc (k, upd) ->
      let kv = eval store pkt k in
      match upd with
      | Some v -> Value.dict_set acc kv (eval store pkt v)
      | None -> Value.dict_remove acc kv)
    base
    (List.rev d.Sexpr.writes)

let eval ?(pkt_var = "pkt") store pkt e = eval_p ~prefix:(pkt_var ^ ".") store pkt e

let literal_holds ?(pkt_var = "pkt") store pkt (l : Solver.literal) =
  match eval ~pkt_var store pkt l.Solver.atom with
  | Value.Bool b -> b = l.Solver.positive
  | Value.Int n -> n <> 0 = l.Solver.positive
  | _ -> false
  | exception Value.Type_error _ -> false
  | exception Unresolved _ -> false

(* ------------------------------------------------------------------ *)
(* Entry matching and application                                     *)
(* ------------------------------------------------------------------ *)

let entry_matches ?(pkt_var = "pkt") store pkt (e : Model.entry) =
  List.for_all (literal_holds ~pkt_var store pkt) e.Model.config
  && List.for_all (literal_holds ~pkt_var store pkt) e.Model.flow_match
  && List.for_all (literal_holds ~pkt_var store pkt) e.Model.state_match

(* ------------------------------------------------------------------ *)
(* Config prefiltering                                                 *)
(* ------------------------------------------------------------------ *)

(* Config literals are predicates over cfgVars (the classifier sends
   anything touching the packet to flow_match), and state transitions
   only write oisVars — so config verdicts are invariant across a run
   and can be decided once instead of inside every [entry_matches].
   Evaluation uses a throwaway packet; literals that (degenerately)
   mention a packet field are kept for per-packet re-checking rather
   than decided against the dummy. *)
let null_pkt =
  Packet.Pkt.make ~ip_src:(Packet.Addr.ip 0 0 0 0) ~ip_dst:(Packet.Addr.ip 0 0 0 0)
    ~sport:0 ~dport:0 ()

let mentions_prefix ~prefix (l : Solver.literal) =
  let plen = String.length prefix in
  Sexpr.Sset.exists
    (fun s -> String.length s > plen && String.sub s 0 plen = prefix)
    (Sexpr.syms l.Solver.atom)

type active = {
  a_idx : int;  (** index of the entry in [Model.entries] *)
  a_entry : Model.entry;
  a_dyn_config : Solver.literal list;
      (** config literals that mention the packet and so could not be
          decided statically (empty for well-classified models) *)
}

(** Entries whose (packet-free) config literals hold under [store], in
    table order — the run-time analogue of {!Model.config_groups}:
    each distinct config set is decided once, keyed on its
    polarity-signed literal ids. *)
let actives (m : Model.t) store =
  let pkt_var = m.Model.pkt_var in
  let prefix = pkt_var ^ "." in
  let verdicts : (int list, bool) Hashtbl.t = Hashtbl.create 8 in
  List.mapi
    (fun i (e : Model.entry) ->
      let dyn, static = List.partition (mentions_prefix ~prefix) e.Model.config in
      let key = List.sort compare (List.map Solver.lit_key static) in
      let ok =
        match Hashtbl.find_opt verdicts key with
        | Some b -> b
        | None ->
            let b = List.for_all (literal_holds ~pkt_var store null_pkt) static in
            Hashtbl.add verdicts key b;
            b
      in
      if ok then Some { a_idx = i; a_entry = e; a_dyn_config = dyn } else None)
    m.Model.entries
  |> List.filter_map Fun.id

let active_matches ~pkt_var store pkt (a : active) =
  List.for_all (literal_holds ~pkt_var store pkt) a.a_dyn_config
  && List.for_all (literal_holds ~pkt_var store pkt) a.a_entry.Model.flow_match
  && List.for_all (literal_holds ~pkt_var store pkt) a.a_entry.Model.state_match

let build_packet ~pkt_var store pkt snapshot =
  List.fold_left
    (fun acc (f, e) ->
      let v = eval ~pkt_var store pkt e in
      if Packet.Headers.is_int_field f then Packet.Pkt.set_int acc f (Value.as_int v)
      else
        match v with
        | Value.Str s -> Packet.Pkt.set_str acc f s
        | _ -> raise (Unresolved ("payload field " ^ f)))
    pkt snapshot

(* Compute the post-value of one state variable. All expressions are
   evaluated against the pre-state [store], so updates to different
   variables cannot observe each other. *)
let computed_update ~pkt_var store pkt (v, upd) =
  let eval = eval ~pkt_var in
  match upd with
  | Model.Set_scalar e -> (v, eval store pkt e)
  | Model.Dict_ops ops ->
      let current =
        match Smap.find_opt v store with
        | Some (Value.Dict kvs) -> kvs
        | Some _ | None -> raise (Unresolved ("dict " ^ v))
      in
      let updated =
        List.fold_left
          (fun acc (k, op) ->
            let kv = eval store pkt k in
            match op with
            | Some value -> Value.dict_set acc kv (eval store pkt value)
            | None -> Value.dict_remove acc kv)
          current ops
      in
      (v, Value.Dict updated)

type miss_reason =
  | No_entries  (** the model has no entries at all *)
  | No_active_config  (** entries exist, but no config condition set holds *)
  | No_flow_state_match  (** an active config group exists, but no entry matched *)

type step = {
  outputs : Packet.Pkt.t list;
  store : store;
  matched : int option;  (** index of the entry that fired, [None] = table miss (drop) *)
  miss : miss_reason option;  (** why the packet missed; [None] when an entry fired *)
}

(** Process one packet: first matching entry fires; all expressions are
    evaluated against the pre-state, then the state transition commits
    — matching one iteration of the original loop. [actives] lets a
    caller hoist the (run-invariant) config evaluation out of its
    per-packet loop; it must be [actives m store] for this [store]'s
    config valuation. *)
let step ?actives:acts_opt (m : Model.t) store pkt =
  let pkt_var = m.Model.pkt_var in
  let acts = match acts_opt with Some a -> a | None -> actives m store in
  let rec find = function
    | [] -> None
    | a :: rest -> if active_matches ~pkt_var store pkt a then Some a else find rest
  in
  match find acts with
  | None ->
      let miss =
        if m.Model.entries = [] then No_entries
        else if acts = [] then No_active_config
        else No_flow_state_match
      in
      { outputs = []; store; matched = None; miss = Some miss }
  | Some a ->
      let e = a.a_entry in
      let outputs =
        match e.Model.pkt_action with
        | Model.Drop -> []
        | Model.Forward snaps -> List.map (build_packet ~pkt_var store pkt) snaps
      in
      let updates = List.map (computed_update ~pkt_var store pkt) e.Model.state_update in
      let store' = List.fold_left (fun st (v, value) -> Smap.add v value st) store updates in
      { outputs; store = store'; matched = Some a.a_idx; miss = None }

(** Run a packet sequence through the model, collecting per-packet
    outputs. Config literals are evaluated once for the whole run (they
    are invariant: state transitions only write oisVars), not per
    packet per entry. *)
let run (m : Model.t) ~store ~pkts =
  let acts = actives m store in
  let final_store, per_pkt_rev =
    List.fold_left
      (fun (st, acc) pkt ->
        let r = step ~actives:acts m st pkt in
        (r.store, r.outputs :: acc))
      (store, []) pkts
  in
  (final_store, List.rev per_pkt_rev)
