(** Model serialization.

    The paper's deployment story has NF vendors running NFactor on
    proprietary code and shipping {e only the model} to operators.
    This module is that interchange format: a small s-expression
    encoding of {!Model.t} with a total parser, so models round-trip
    through files and can be consumed by external verification
    tooling.

    The format is self-describing and versioned:

    Terms are hash-consed with session-local ids ({!Sexpr.id}), so the
    encoding is purely structural: writing renders term structure, and
    parsing rebuilds terms through the interning smart constructors, so
    a parsed model's terms are unique representatives in the {e
    reader's} intern table whatever process wrote the file.

    The format is self-describing and versioned:

    {v
    (nfactor-model (version 2) (name lb)
      (pkt-var pkt) (cfg-vars mode ...) (ois-vars f2b_nat ...)
      (entries (entry (config ...) (flow ...) (state ...) (residual ...)
                      (action ...) (updates ...)) ...))
    v}

    Version 1 documents (no [residual] clause) still parse. *)

open Symexec

(* ------------------------------------------------------------------ *)
(* S-expressions                                                      *)
(* ------------------------------------------------------------------ *)

type sexp = Atom of string | List of sexp list

exception Parse_error of string

(* Atom-alphabet membership is the parser's innermost loop; a 256-entry
   table beats re-scanning the punctuation string per character. *)
let atom_char_table =
  let t = Array.make 256 false in
  let ok c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || String.contains "_.:+*/%<>=!&|#~?@^-" c
  in
  for i = 0 to 255 do
    t.(i) <- ok (Char.chr i)
  done;
  t

let atom_ok_char c = Array.unsafe_get atom_char_table (Char.code c)

let atom_needs_quotes s =
  s = "" || not (String.for_all atom_ok_char s)

let rec print_sexp buf = function
  | Atom s ->
      if atom_needs_quotes s then Buffer.add_string buf (Printf.sprintf "%S" s)
      else Buffer.add_string buf s
  | List items ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ' ';
          print_sexp buf item)
        items;
      Buffer.add_char buf ')'

let sexp_to_string s =
  let buf = Buffer.create 256 in
  print_sexp buf s;
  Buffer.contents buf

let parse_sexp (input : string) =
  let pos = ref 0 in
  let n = String.length input in
  let peek () = if !pos < n then String.unsafe_get input !pos else '\000' in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      &&
      match String.unsafe_get input !pos with ' ' | '\n' | '\t' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let parse_quoted () =
    advance ();
    (* opening quote *)
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise (Parse_error "unterminated string")
      else
        match peek () with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (match peek () with
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | '\\' -> Buffer.add_char b '\\'
            | '"' -> Buffer.add_char b '"'
            | 'r' -> Buffer.add_char b '\r'
            | c when c >= '0' && c <= '9' ->
                (* OCaml-style decimal escape \DDD *)
                let d1 = Char.code (peek ()) - 48 in
                advance ();
                let d2 = Char.code (peek ()) - 48 in
                advance ();
                let d3 = Char.code (peek ()) - 48 in
                Buffer.add_char b (Char.chr ((d1 * 100) + (d2 * 10) + d3))
            | c -> Buffer.add_char b c);
            advance ();
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Atom (Buffer.contents b)
  in
  let rec parse () =
    skip_ws ();
    if !pos >= n then raise (Parse_error "unexpected end of input")
    else
      match peek () with
      | '(' ->
          advance ();
          let items = ref [] in
          let rec go () =
            skip_ws ();
            if !pos >= n then raise (Parse_error "unterminated list")
            else if peek () = ')' then advance ()
            else begin
              items := parse () :: !items;
              go ()
            end
          in
          go ();
          List (List.rev !items)
      | '"' -> parse_quoted ()
      | ')' -> raise (Parse_error "unexpected ')'")
      | _ ->
          let start = !pos in
          while !pos < n && atom_ok_char (String.unsafe_get input !pos) do
            incr pos
          done;
          if !pos = start then raise (Parse_error (Printf.sprintf "stray character %C" (peek ())));
          Atom (String.sub input start (!pos - start))
  in
  let result = parse () in
  skip_ws ();
  if !pos <> n then raise (Parse_error "trailing input");
  result

(* ------------------------------------------------------------------ *)
(* Value encoding                                                     *)
(* ------------------------------------------------------------------ *)

let rec sexp_of_value = function
  | Value.Int n -> List [ Atom "i"; Atom (string_of_int n) ]
  | Value.Bool b -> List [ Atom "b"; Atom (string_of_bool b) ]
  | Value.Str s -> List [ Atom "s"; Atom s ]
  | Value.Tuple vs -> List (Atom "tuple" :: List.map sexp_of_value vs)
  | Value.List vs -> List (Atom "list" :: List.map sexp_of_value vs)
  | Value.Dict kvs ->
      List
        (Atom "dict"
        :: List.map (fun (k, v) -> List [ sexp_of_value k; sexp_of_value v ]) kvs)
  | Value.Pkt _ -> raise (Parse_error "packets are not serializable model constants")

let rec value_of_sexp = function
  | List [ Atom "i"; Atom n ] -> Value.Int (int_of_string n)
  | List [ Atom "b"; Atom b ] -> Value.Bool (bool_of_string b)
  | List [ Atom "s"; Atom s ] -> Value.Str s
  | List (Atom "tuple" :: vs) -> Value.Tuple (List.map value_of_sexp vs)
  | List (Atom "list" :: vs) -> Value.List (List.map value_of_sexp vs)
  | List (Atom "dict" :: kvs) ->
      Value.Dict
        (List.map
           (function
             | List [ k; v ] -> (value_of_sexp k, value_of_sexp v)
             | _ -> raise (Parse_error "bad dict pair"))
           kvs)
  | s -> raise (Parse_error ("bad value: " ^ sexp_to_string s))

(* ------------------------------------------------------------------ *)
(* Symbolic expression encoding                                       *)
(* ------------------------------------------------------------------ *)

let binop_name op = Nfl.Pretty.binop_str op

let binop_of_name s =
  let table =
    [
      Nfl.Ast.Add; Nfl.Ast.Sub; Nfl.Ast.Mul; Nfl.Ast.Div; Nfl.Ast.Mod; Nfl.Ast.Eq; Nfl.Ast.Ne;
      Nfl.Ast.Lt; Nfl.Ast.Le; Nfl.Ast.Gt; Nfl.Ast.Ge; Nfl.Ast.And; Nfl.Ast.Or; Nfl.Ast.Band;
      Nfl.Ast.Bor; Nfl.Ast.Shl; Nfl.Ast.Shr;
    ]
  in
  match List.find_opt (fun op -> binop_name op = s) table with
  | Some op -> op
  | None -> raise (Parse_error ("unknown operator " ^ s))

let rec sexp_of_expr e =
  match Sexpr.view e with
  | Sexpr.Const v -> List [ Atom "const"; sexp_of_value v ]
  | Sexpr.Sym s -> List [ Atom "sym"; Atom s ]
  | Sexpr.Bin (op, a, b) -> List [ Atom "bin"; Atom (binop_name op); sexp_of_expr a; sexp_of_expr b ]
  | Sexpr.Not a -> List [ Atom "not"; sexp_of_expr a ]
  | Sexpr.Neg a -> List [ Atom "neg"; sexp_of_expr a ]
  | Sexpr.Tup es -> List (Atom "tup" :: List.map sexp_of_expr es)
  | Sexpr.Lst es -> List (Atom "lst" :: List.map sexp_of_expr es)
  | Sexpr.Get (a, b) -> List [ Atom "get"; sexp_of_expr a; sexp_of_expr b ]
  | Sexpr.Ufun (f, args) -> List (Atom "ufun" :: Atom f :: List.map sexp_of_expr args)
  | Sexpr.Mem (d, k) -> List [ Atom "mem"; sexp_of_dict d; sexp_of_expr k ]
  | Sexpr.Dget (d, k) -> List [ Atom "dget"; sexp_of_dict d; sexp_of_expr k ]
  | Sexpr.Ite (g, a, b) -> List [ Atom "ite"; sexp_of_expr g; sexp_of_expr a; sexp_of_expr b ]

and sexp_of_dict (d : Sexpr.dict_state) =
  List
    (Atom "dictstate" :: Atom d.Sexpr.base
    :: List.map
         (fun (k, v) ->
           match v with
           | Some value -> List [ Atom "set"; sexp_of_expr k; sexp_of_expr value ]
           | None -> List [ Atom "del"; sexp_of_expr k ])
         d.Sexpr.writes)

(* Parsing rebuilds terms through the smart constructors, re-interning
   (and re-folding, a no-op for terms the constructors built in the
   first place) in the current session's table. *)
let rec expr_of_sexp = function
  | List [ Atom "const"; v ] -> Sexpr.const (value_of_sexp v)
  | List [ Atom "sym"; Atom s ] -> Sexpr.sym s
  | List [ Atom "bin"; Atom op; a; b ] ->
      Sexpr.mk_bin (binop_of_name op) (expr_of_sexp a) (expr_of_sexp b)
  | List [ Atom "not"; a ] -> Sexpr.mk_not (expr_of_sexp a)
  | List [ Atom "neg"; a ] -> Sexpr.mk_neg (expr_of_sexp a)
  | List (Atom "tup" :: es) -> Sexpr.mk_tuple (List.map expr_of_sexp es)
  | List (Atom "lst" :: es) -> Sexpr.mk_list (List.map expr_of_sexp es)
  | List [ Atom "get"; a; b ] -> Sexpr.mk_get (expr_of_sexp a) (expr_of_sexp b)
  | List (Atom "ufun" :: Atom f :: args) -> Sexpr.mk_ufun f (List.map expr_of_sexp args)
  | List [ Atom "mem"; d; k ] -> Sexpr.mk_mem (dict_of_sexp d) (expr_of_sexp k)
  | List [ Atom "dget"; d; k ] -> Sexpr.mk_dget (dict_of_sexp d) (expr_of_sexp k)
  | List [ Atom "ite"; g; a; b ] ->
      Sexpr.mk_ite (expr_of_sexp g) (expr_of_sexp a) (expr_of_sexp b)
  | s -> raise (Parse_error ("bad expression: " ^ sexp_to_string s))

and dict_state_of_sexp s = dict_of_sexp s

and dict_of_sexp = function
  | List (Atom "dictstate" :: Atom base :: writes) ->
      {
        Sexpr.base;
        writes =
          List.map
            (function
              | List [ Atom "set"; k; v ] -> (expr_of_sexp k, Some (expr_of_sexp v))
              | List [ Atom "del"; k ] -> (expr_of_sexp k, None)
              | s -> raise (Parse_error ("bad write: " ^ sexp_to_string s)))
            writes;
      }
  | s -> raise (Parse_error ("bad dict state: " ^ sexp_to_string s))

let sexp_of_dict_state = sexp_of_dict

(* ------------------------------------------------------------------ *)
(* Model encoding                                                     *)
(* ------------------------------------------------------------------ *)

let sexp_of_literal (l : Solver.literal) =
  List [ Atom (if l.Solver.positive then "+" else "-"); sexp_of_expr l.Solver.atom ]

let literal_of_sexp = function
  | List [ Atom "+"; a ] -> Solver.lit (expr_of_sexp a) true
  | List [ Atom "-"; a ] -> Solver.lit (expr_of_sexp a) false
  | s -> raise (Parse_error ("bad literal: " ^ sexp_to_string s))

let sexp_of_action = function
  | Model.Drop -> List [ Atom "drop" ]
  | Model.Forward snaps ->
      List
        (Atom "forward"
        :: List.map
             (fun snap ->
               List (List.map (fun (f, e) -> List [ Atom f; sexp_of_expr e ]) snap))
             snaps)

let action_of_sexp = function
  | List [ Atom "drop" ] -> Model.Drop
  | List (Atom "forward" :: snaps) ->
      Model.Forward
        (List.map
           (function
             | List fields ->
                 List.map
                   (function
                     | List [ Atom f; e ] -> (f, expr_of_sexp e)
                     | s -> raise (Parse_error ("bad field: " ^ sexp_to_string s)))
                   fields
             | s -> raise (Parse_error ("bad snapshot: " ^ sexp_to_string s)))
           snaps)
  | s -> raise (Parse_error ("bad action: " ^ sexp_to_string s))

let sexp_of_update (v, u) =
  match u with
  | Model.Set_scalar e -> List [ Atom "set-scalar"; Atom v; sexp_of_expr e ]
  | Model.Dict_ops ops ->
      List
        (Atom "dict-ops" :: Atom v
        :: List.map
             (fun (k, op) ->
               match op with
               | Some value -> List [ Atom "set"; sexp_of_expr k; sexp_of_expr value ]
               | None -> List [ Atom "del"; sexp_of_expr k ])
             ops)

let update_of_sexp = function
  | List [ Atom "set-scalar"; Atom v; e ] -> (v, Model.Set_scalar (expr_of_sexp e))
  | List (Atom "dict-ops" :: Atom v :: ops) ->
      ( v,
        Model.Dict_ops
          (List.map
             (function
               | List [ Atom "set"; k; value ] -> (expr_of_sexp k, Some (expr_of_sexp value))
               | List [ Atom "del"; k ] -> (expr_of_sexp k, None)
               | s -> raise (Parse_error ("bad op: " ^ sexp_to_string s)))
             ops) )
  | s -> raise (Parse_error ("bad update: " ^ sexp_to_string s))

let sexp_of_entry (e : Model.entry) =
  List
    [
      Atom "entry";
      List (Atom "config" :: List.map sexp_of_literal e.Model.config);
      List (Atom "flow" :: List.map sexp_of_literal e.Model.flow_match);
      List (Atom "state" :: List.map sexp_of_literal e.Model.state_match);
      List (Atom "residual" :: List.map sexp_of_literal e.Model.residual_match);
      List [ Atom "action"; sexp_of_action e.Model.pkt_action ];
      List (Atom "updates" :: List.map sexp_of_update e.Model.state_update);
      List (Atom "path" :: List.map (fun sid -> Atom (string_of_int sid)) e.Model.path_sids);
      List [ Atom "truncated"; Atom (string_of_bool e.Model.truncated) ];
    ]

let entry_of_sexp = function
  | List
      (Atom "entry"
      :: List (Atom "config" :: config)
      :: List (Atom "flow" :: flow)
      :: List (Atom "state" :: state)
      :: rest) -> (
      (* The [residual] clause arrived in version 2; version-1 entries
         lack it and parse with an empty residual. *)
      let residual, rest =
        match rest with
        | List (Atom "residual" :: residual) :: rest -> (residual, rest)
        | _ -> ([], rest)
      in
      match rest with
      | [
       List [ Atom "action"; action ];
       List (Atom "updates" :: updates);
       List (Atom "path" :: path);
       List [ Atom "truncated"; Atom trunc ];
      ] ->
          {
            Model.config = List.map literal_of_sexp config;
            flow_match = List.map literal_of_sexp flow;
            state_match = List.map literal_of_sexp state;
            residual_match = List.map literal_of_sexp residual;
            pkt_action = action_of_sexp action;
            state_update = List.map update_of_sexp updates;
            path_sids =
              List.map
                (function Atom s -> int_of_string s | _ -> raise (Parse_error "bad sid"))
                path;
            truncated = bool_of_string trunc;
          }
      | _ -> raise (Parse_error "bad entry body"))
  | s -> raise (Parse_error ("bad entry: " ^ sexp_to_string s))

let version = 2

(** Serialize a model to its interchange text. *)
let to_string (m : Model.t) =
  sexp_to_string
    (List
       [
         Atom "nfactor-model";
         List [ Atom "version"; Atom (string_of_int version) ];
         List [ Atom "name"; Atom m.Model.nf_name ];
         List [ Atom "pkt-var"; Atom m.Model.pkt_var ];
         List (Atom "cfg-vars" :: List.map (fun v -> Atom v) m.Model.cfg_vars);
         List (Atom "ois-vars" :: List.map (fun v -> Atom v) m.Model.ois_vars);
         List (Atom "entries" :: List.map sexp_of_entry m.Model.entries);
       ])

(** Parse a model back.
    @raise Parse_error on malformed or wrong-version input. *)
let of_string input =
  match parse_sexp input with
  | List
      [
        Atom "nfactor-model";
        List [ Atom "version"; Atom v ];
        List [ Atom "name"; Atom nf_name ];
        List [ Atom "pkt-var"; Atom pkt_var ];
        List (Atom "cfg-vars" :: cfg);
        List (Atom "ois-vars" :: ois);
        List (Atom "entries" :: entries);
      ] ->
      let v = int_of_string v in
      if v < 1 || v > version then
        raise (Parse_error (Printf.sprintf "unsupported version %d" v));
      let names l =
        List.map (function Atom s -> s | _ -> raise (Parse_error "bad name")) l
      in
      {
        Model.nf_name;
        pkt_var;
        cfg_vars = names cfg;
        ois_vars = names ois;
        entries = List.map entry_of_sexp entries;
      }
  | _ -> raise (Parse_error "not an nfactor-model document")
