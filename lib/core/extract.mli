(** Algorithm 1: NF program slicing and model synthesis, end to end.

    Packet slice (lines 1-4) → StateAlyzer (5) → state slice (6-9) →
    symbolic path exploration of the slice union (10) → refinement of
    paths into model entries (11-16). Scalar configuration stays
    symbolic so one extraction covers every configuration (Figure 6);
    structured configuration (lists) stays concrete. *)

open Symexec

type result = {
  model : Model.t;
  classes : Statealyzer.Varclass.t;
  program : Nfl.Ast.program;  (** canonical program the model came from *)
  pkt_slice : int list;
  state_slice : int list;
  union_slice : int list;
  sliced_body : Nfl.Ast.block;  (** loop body restricted to the slice *)
  paths : Explore.path list;
  stats : Explore.stats;
  stage_times : (string * float) list;
      (** wall-clock seconds per pipeline stage, in pipeline order:
          canonicalize, classify, slice, explore, refine *)
  solver_memo : Solver.memo;
      (** the exploration's verdict cache; pass to further explorations
          of the same program (e.g. the unsliced original) to reuse
          path-condition verdicts *)
}

val ensure_canonical : Nfl.Ast.program -> Nfl.Ast.program
(** Normalize to canonical single-loop form unless already there. *)

val symbolic_env :
  classes:Statealyzer.Varclass.t ->
  init:Value.t Interp.Smap.t ->
  pkt_var:string ->
  Explore.sval Explore.Smap.t
(** The extraction environment: symbolic packet, symbolic scalar
    configs and output-impacting state, concrete everything else. *)

type lit_class = L_config | L_flow | L_state | L_other

val classify_literal :
  pkt_var:string ->
  cfg_vars:string list ->
  ois_vars:string list ->
  Solver.literal ->
  lit_class
(** Algorithm 1 lines 12-14: state atoms may mention packet fields
    (prefix [pkt_var ^ "."]), flow atoms may mention config constants;
    only pure-config atoms split tables. Literals classifying [L_other]
    are recorded on the entry's [residual_match]. *)

(** {1 Pipeline stages}

    Each Algorithm-1 stage as a pure function of its upstream
    artifacts. {!run} composes them without caching; the pass pipeline
    in [lib/pipeline] composes the same functions with content-
    addressed fingerprints and artifact caching. *)

val canonical_stage : Nfl.Ast.program -> Nfl.Ast.program
(** {!ensure_canonical} followed by a pretty-print/parse round trip, so
    statement ids are a pure function of the canonical text and stay
    valid for artifacts reloaded from a cache in another session. *)

val classify_stage : Nfl.Ast.program -> Statealyzer.Varclass.t

type slices = {
  sl_pkt : int list;  (** packet slice (Algorithm 1 lines 1-4) *)
  sl_state : int list;  (** state slice (lines 6-9) *)
  sl_union : int list;
  sl_body : Nfl.Ast.block;  (** loop body restricted to the union *)
}

val sliced_body_of_union : Nfl.Ast.program -> int list -> Nfl.Ast.block
(** Recompute [sl_body] from the canonical program and the slice
    union (cached slices persist only the statement-id lists). *)

val slice_stage : Nfl.Ast.program -> Statealyzer.Varclass.t -> slices

val merge_policy_of :
  ?min_chain:int ->
  classes:Statealyzer.Varclass.t ->
  Nfl.Ast.block ->
  Explore.merge_policy
(** Join-point merge policy for exploring a (sliced) loop body: merge
    at branches with a statement join point outside loop bodies, but
    only on diamond chains of at least [min_chain] (default 5)
    sequential branches — where the naive path count is exponential.
    Fold only branch atoms free of config/state symbols into [ite]
    guards (config splits stay separate entries, state predicates keep
    per-path concrete verdicts for refinement). *)

val explore_stage :
  ?config:Explore.config ->
  ?merge:bool ->
  memo:Solver.memo ->
  Nfl.Ast.program ->
  Statealyzer.Varclass.t ->
  slices ->
  Explore.path list * Explore.stats
(** [merge] (default [true]) explores under {!merge_policy_of}. *)

val refine_stage :
  name:string -> Statealyzer.Varclass.t -> Explore.path list -> Model.t

val assemble :
  model:Model.t ->
  classes:Statealyzer.Varclass.t ->
  program:Nfl.Ast.program ->
  slices:slices ->
  paths:Explore.path list ->
  stats:Explore.stats ->
  stage_times:(string * float) list ->
  solver_memo:Solver.memo ->
  result
(** Build the {!result} record from stage artifacts. *)

val run :
  ?config:Explore.config -> ?merge:bool -> name:string -> Nfl.Ast.program -> result
(** Run the whole pipeline (uncached stage composition). Accepts any
    Figure-4 structure (the program is canonicalized first). [merge]
    (default [true]) enables join-point path merging during
    exploration; disable it to reproduce the unmerged path
    enumeration. *)
