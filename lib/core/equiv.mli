(** Equivalence checking between an NF program and its extracted model
    (paper Section 5, "Accuracy"): symbolic path-set comparison and
    lock-step random differential testing. *)

open Symexec

val signature_of_path : Explore.path -> string list * string list
(** Canonical (sorted literals, action) signature. *)

val signature_of_entry : Model.entry -> string list * string list

val paths_match : Extract.result -> bool
(** Do the slice's symbolic paths and the model's entries describe the
    same path set? *)

type mismatch = {
  index : int;  (** which input packet diverged *)
  input : Packet.Pkt.t;
  program_out : Packet.Pkt.t list;
  model_out : Packet.Pkt.t list;
}

type verdict = { trials : int; mismatches : mismatch list }

val ok : verdict -> bool

val differential : Extract.result -> pkts:Packet.Pkt.t list -> verdict
(** Lock-step run: per input packet, one program-loop iteration vs one
    model step, outputs compared; both sides carry state. *)

val model_differential :
  store:Model_interp.store ->
  pkts:Packet.Pkt.t list ->
  Model.t ->
  Model.t ->
  verdict * bool
(** Lock-step run of two models from the same initial store: per input
    packet both tables step once, outputs compared. The boolean is
    whether the {e final} stores also agree — together with an empty
    mismatch list this is observational equivalence on the sequence. *)

val random_testing : ?seed:int -> ?trials:int -> Extract.result -> verdict
(** The paper's experiment: [trials] random packets (default 1000). *)

val flow_testing : ?seed:int -> ?flows:int -> ?data_pkts:int -> Extract.result -> verdict
(** Flow-structured traffic exercising the stateful entries. *)

val pp_mismatch : Format.formatter -> mismatch -> unit
