(** Model analysis for flow-key domain sharding.

    Decides, from the extracted model alone, how its state partitions
    across shards and which entries must serialize:

    - A per-flow table is {e sharded} when every key expression that
      ever touches it (match literals, emit reads, update operations)
      is the same signature of packet fields (plus identical static
      components). Equal key values then imply equal field values, so
      hashing those fields routes every access to one shard.
    - The {e flow key} is the intersection of all sharded signatures'
      field sets: two packets interacting through any sharded table
      agree on every intersection field, so they hash to the same
      shard. An empty intersection demotes everything to global.
    - A table whose keys mention scalars (NAT's reverse map: the key
      contains the port counter) or whose accesses disagree is
      {e global}: it lives in the shared store, where phase-A reads of
      it are detected by the frozen-hits counter and re-run serially.
    - An entry is {e serial} when firing it touches shared mutable
      state: a scalar write, a whole-table overwrite, an operation on
      a global table, or an emit/update expression reading a scalar
      or global table. Serial entries defer to the sequential phase;
      everything else runs fully parallel.

    Config dictionaries are read-only at run time (no entry updates a
    cfgVar), so they replicate by reference in the shared store and
    never serialize anything. The analysis is conservative: anything
    it cannot prove shard-local is global/serial, which affects only
    the parallel fraction, never correctness. *)

open Symexec

type slot = Sfield of string | Sstatic of Sexpr.t

type signature = { slots : slot list; tup : bool }

type table_class = Sharded of signature | Global | Replicated

type spec = {
  pkt_var : string;
  key_fields : string list;  (** sorted; [] = no sharded tables *)
  tables : (string * table_class) list;  (** first-appearance order *)
  serial : bool array;  (** per source-model entry index *)
  hashfn : Packet.Pkt.t -> int;
}

(* Default flow key for models with no sharded state (stateless NFs,
   or fully-global ones): any deterministic packet hash balances load
   without affecting correctness. *)
let default_fields = [ "ip_src"; "sport"; "ip_dst"; "dport" ]

let mix h v =
  let x = (h lxor v) * 0x9E3779B1 in
  (x lxor (x lsr 16)) land max_int

let seed_hash = 0x2545F491

let field_hash_readers fields =
  List.map
    (fun f ->
      if Packet.Headers.is_int_field f then fun p -> Packet.Pkt.get_int p f
      else fun p -> Hashtbl.hash (Packet.Pkt.get_str p f))
    fields

let mk_hashfn fields =
  let readers = field_hash_readers fields in
  fun p -> List.fold_left (fun h r -> mix h (r p)) seed_hash readers

(* The value-side hash of one key component must agree with the
   packet-side hash for every key a runtime access can probe: int
   fields evaluate to [Value.Int], string fields to [Value.Str]. Seed
   keys of other shapes can never collide with a runtime-probed key,
   so any consistent routing works for them. *)
let component_hash f v =
  if Packet.Headers.is_int_field f then
    match v with Value.Int n -> n | v -> Hashtbl.hash v
  else match v with Value.Str s -> Hashtbl.hash s | v -> Hashtbl.hash v

(* ------------------------------------------------------------------ *)
(* Access collection                                                   *)
(* ------------------------------------------------------------------ *)

type acc = {
  mutable syms : string list;  (** non-packet bare symbol reads *)
  mutable accesses : (string * Sexpr.t) list;  (** (table base, key expr) *)
  mutable cset : bool;  (** whole-variable overwrite present *)
}

let mk_acc () = { syms = []; accesses = []; cset = false }

let rec walk ~is_field (a : acc) e =
  match Sexpr.view e with
  | Sexpr.Const _ -> ()
  | Sexpr.Sym s -> if not (is_field s) then a.syms <- s :: a.syms
  | Sexpr.Bin (_, x, y) | Sexpr.Get (x, y) ->
      walk ~is_field a x;
      walk ~is_field a y
  | Sexpr.Not x | Sexpr.Neg x -> walk ~is_field a x
  | Sexpr.Tup es | Sexpr.Lst es | Sexpr.Ufun (_, es) ->
      List.iter (walk ~is_field a) es
  | Sexpr.Mem (d, k) | Sexpr.Dget (d, k) ->
      let live_base = d.Sexpr.base <> Sexpr.empty_base in
      if live_base then a.accesses <- (d.Sexpr.base, k) :: a.accesses;
      List.iter
        (fun (wk, u) ->
          if live_base then a.accesses <- (d.Sexpr.base, wk) :: a.accesses;
          walk ~is_field a wk;
          Option.iter (walk ~is_field a) u)
        d.Sexpr.writes;
      walk ~is_field a k
  | Sexpr.Ite (g, x, y) ->
      walk ~is_field a g;
      walk ~is_field a x;
      walk ~is_field a y

(* ------------------------------------------------------------------ *)
(* Key signatures                                                      *)
(* ------------------------------------------------------------------ *)

(* A static component mentions no packet field, no oisVar and no
   dictionary state — its value is fixed for the whole run. *)
let is_static_expr ~is_field ~is_cfg e =
  let rec go e =
    match Sexpr.view e with
    | Sexpr.Const _ -> true
    | Sexpr.Sym s -> (not (is_field s)) && is_cfg s
    | Sexpr.Bin (_, a, b) | Sexpr.Get (a, b) -> go a && go b
    | Sexpr.Not a | Sexpr.Neg a -> go a
    | Sexpr.Tup es | Sexpr.Lst es | Sexpr.Ufun (_, es) -> List.for_all go es
    | Sexpr.Ite (g, x, y) -> go g && go x && go y
    | Sexpr.Mem _ | Sexpr.Dget _ -> false
  in
  go e

let slot_of ~prefix ~is_field ~is_cfg e =
  match Sexpr.view e with
  | Sexpr.Sym s when is_field s ->
      Some (Sfield (String.sub s (String.length prefix) (String.length s - String.length prefix)))
  | _ -> if is_static_expr ~is_field ~is_cfg e then Some (Sstatic e) else None

let signature_of ~prefix ~is_field ~is_cfg k =
  let slot = slot_of ~prefix ~is_field ~is_cfg in
  let opt_all es = List.map slot es in
  let slots, tup =
    match Sexpr.view k with
    | Sexpr.Tup es -> (opt_all es, true)
    | _ -> ([ slot k ], false)
  in
  if List.for_all Option.is_some slots then
    Some { slots = List.map Option.get slots; tup }
  else None

let slot_equal a b =
  match (a, b) with
  | Sfield f, Sfield g -> String.equal f g
  | Sstatic e1, Sstatic e2 -> Sexpr.equal e1 e2
  | _ -> false

let signature_equal s1 s2 =
  s1.tup = s2.tup
  && List.length s1.slots = List.length s2.slots
  && List.for_all2 slot_equal s1.slots s2.slots

let sig_fields s =
  List.filter_map (function Sfield f -> Some f | Sstatic _ -> None) s.slots
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

module Smap = Nfactor.Model_interp.Smap

let analyze (model : Nfactor.Model.t) ~(config : Nfactor.Model_interp.store)
    ~(live : bool array) =
  let pkt_var = model.Nfactor.Model.pkt_var in
  let prefix = pkt_var ^ "." in
  let plen = String.length prefix in
  let is_field s =
    String.length s > plen
    && String.sub s 0 plen = prefix
    && Packet.Headers.is_field (String.sub s plen (String.length s - plen))
  in
  let ois = model.Nfactor.Model.ois_vars in
  let cfg = model.Nfactor.Model.cfg_vars in
  let is_ois s = List.mem s ois in
  let is_cfg s = List.mem s cfg && not (is_ois s) in
  let is_dict name =
    match Smap.find_opt name config with
    | Some (Value.Dict _) -> true
    | _ -> false
  in
  (* Collect, per live entry, what the match tests and what the fire
     touches. residual_match literals are informational — the runtime
     never evaluates them — so they do not constrain the analysis. *)
  let entries = Array.of_list model.Nfactor.Model.entries in
  let n = Array.length entries in
  let matches = Array.init n (fun _ -> mk_acc ()) in
  let fires = Array.init n (fun _ -> mk_acc ()) in
  for i = 0 to n - 1 do
    if i < Array.length live && live.(i) then begin
      let e = entries.(i) in
      let m = matches.(i) and f = fires.(i) in
      List.iter
        (fun (l : Solver.literal) -> walk ~is_field m l.Solver.atom)
        (e.Nfactor.Model.config @ e.Nfactor.Model.flow_match
       @ e.Nfactor.Model.state_match);
      (match e.Nfactor.Model.pkt_action with
      | Nfactor.Model.Drop -> ()
      | Nfactor.Model.Forward snaps ->
          List.iter (List.iter (fun (_, x) -> walk ~is_field f x)) snaps);
      List.iter
        (fun (v, u) ->
          match u with
          | Nfactor.Model.Set_scalar x ->
              f.cset <- true;
              f.syms <- v :: f.syms;  (* the overwrite names the variable *)
              walk ~is_field f x
          | Nfactor.Model.Dict_ops ops ->
              List.iter
                (fun (k, op) ->
                  f.accesses <- (v, k) :: f.accesses;
                  walk ~is_field f k;
                  Option.iter (walk ~is_field f) op)
                ops)
        e.Nfactor.Model.state_update
    end
  done;
  (* Classify every oisVar dictionary by unifying its key accesses. *)
  let order = ref [] in
  let sigs : (string, signature option) Hashtbl.t = Hashtbl.create 8 in
  let note_table name =
    if not (Hashtbl.mem sigs name) then begin
      Hashtbl.add sigs name None;
      order := name :: !order
    end
  in
  (* [sigs] entry meanings: [Some s] = consistent signature so far;
     [None] = demoted for good (tracked in [demoted] so a later
     consistent access cannot resurrect it). *)
  let demoted : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let unify name k =
    note_table name;
    if not (Hashtbl.mem demoted name) then
      match signature_of ~prefix ~is_field ~is_cfg k with
      | None ->
          Hashtbl.add demoted name ();
          Hashtbl.replace sigs name None
      | Some s -> (
          match Hashtbl.find_opt sigs name with
          | Some (Some s0) when signature_equal s0 s -> ()
          | Some (Some _) ->
              Hashtbl.add demoted name ();
              Hashtbl.replace sigs name None
          | _ -> Hashtbl.replace sigs name (Some s))
  in
  let consider (a : acc) =
    List.iter
      (fun (base, k) -> if is_ois base && is_dict base then unify base k)
      a.accesses;
    (* a bare read of a whole table (rare) pins it global *)
    List.iter
      (fun s ->
        if is_ois s && is_dict s then begin
          note_table s;
          Hashtbl.add demoted s ();
          Hashtbl.replace sigs s None
        end)
      a.syms
  in
  Array.iter consider matches;
  Array.iter consider fires;
  (* A sharded signature must contain at least one field. *)
  Hashtbl.iter
    (fun name s ->
      match s with
      | Some s when sig_fields s = [] ->
          Hashtbl.replace sigs name None;
          Hashtbl.add demoted name ()
      | _ -> ())
    (Hashtbl.copy sigs);
  (* Flow key = intersection of sharded field sets; empty ⇒ demote
     everything (two tables with disjoint keys cannot co-shard). *)
  let sharded_sigs =
    List.filter_map
      (fun name ->
        match Hashtbl.find_opt sigs name with
        | Some (Some s) -> Some (name, s)
        | _ -> None)
      (List.rev !order)
  in
  let key_fields =
    match sharded_sigs with
    | [] -> []
    | (_, s0) :: rest ->
        List.fold_left
          (fun acc (_, s) -> List.filter (fun f -> List.mem f (sig_fields s)) acc)
          (sig_fields s0) rest
  in
  let key_fields = List.sort_uniq compare key_fields in
  if key_fields = [] then
    List.iter
      (fun (name, _) ->
        Hashtbl.replace sigs name None;
        Hashtbl.add demoted name ())
      sharded_sigs;
  let tables =
    List.rev_map
      (fun name ->
        ( name,
          match Hashtbl.find_opt sigs name with
          | Some (Some s) -> Sharded s
          | _ -> Global ))
      !order
    |> List.rev
  in
  (* Config dictionaries referenced anywhere: replicated read-only. *)
  let tables =
    tables
    @ List.filter_map
        (fun name ->
          if is_cfg name && is_dict name then Some (name, Replicated) else None)
        cfg
  in
  let class_of name =
    match List.assoc_opt name tables with
    | Some c -> c
    | None -> Global  (* unknown base: be conservative *)
  in
  (* Serial entries: fire (or match) touches shared mutable state. *)
  let impure (a : acc) =
    a.cset
    || List.exists (fun s -> is_ois s || not (is_cfg s || is_field s)) a.syms
    || List.exists
         (fun (base, _) ->
           match class_of base with
           | Sharded _ | Replicated -> false
           | Global -> not (is_cfg base && is_dict base))
         a.accesses
  in
  let serial = Array.make n false in
  for i = 0 to n - 1 do
    if i < Array.length live && live.(i) then
      serial.(i) <- impure fires.(i) || impure matches.(i)
  done;
  let hash_fields = if key_fields = [] then default_fields else key_fields in
  {
    pkt_var;
    key_fields;
    tables;
    serial;
    hashfn = mk_hashfn hash_fields;
  }

let hash spec p = spec.hashfn p

let sharded_names spec =
  List.filter_map
    (fun (n, c) -> match c with Sharded _ -> Some n | _ -> None)
    spec.tables

let global_names spec =
  List.filter_map
    (fun (n, c) -> match c with Global -> Some n | _ -> None)
    spec.tables

(* Route a stored key value the way the packet hash would route the
   packet that probes it: hash the components at this signature's
   flow-key field positions, in sorted field order — identical mixing
   to [mk_hashfn]. *)
let router spec name =
  match List.assoc_opt name spec.tables with
  | Some (Sharded s) ->
      let arity = List.length s.slots in
      let fields = if spec.key_fields = [] then default_fields else spec.key_fields in
      let positions =
        List.filter_map
          (fun f ->
            let rec find i = function
              | [] -> None
              | Sfield g :: _ when String.equal f g -> Some (i, f)
              | _ :: rest -> find (i + 1) rest
            in
            find 0 s.slots)
          fields
      in
      Some
        (fun (k : Value.t) ->
          let comp i =
            if s.tup then
              match k with
              | Value.Tuple vs when List.length vs = arity -> List.nth vs i
              | v -> v
            else k
          in
          List.fold_left
            (fun h (i, f) -> mix h (component_hash f (comp i)))
            seed_hash positions)
  | _ -> None

let n_serial spec = Array.fold_left (fun a b -> if b then a + 1 else a) 0 spec.serial

let pp ppf spec =
  let cls = function
    | Sharded s ->
        Printf.sprintf "sharded(%s)"
          (String.concat ","
             (List.map
                (function Sfield f -> f | Sstatic _ -> "<static>")
                s.slots))
    | Global -> "global"
    | Replicated -> "replicated"
  in
  Fmt.pf ppf "flow key [%s]; tables: %s; %d/%d serial entries"
    (String.concat "," spec.key_fields)
    (String.concat ", "
       (List.map (fun (n, c) -> n ^ ":" ^ cls c) spec.tables))
    (n_serial spec) (Array.length spec.serial)

(* Plan-swap compatibility: the physical layout (which tables are
   split across shard-local stores, and how keys route) is fixed at
   partition time, so a replacement plan is safe iff every table that
   was split is still accessed with the same key signature — or not
   accessed at all. Tables the new analysis shards that the layout
   keeps global merely lose parallelism (their reads trip the frozen
   detector); the reverse direction would probe a split table
   unroutably, so it is rejected. *)
let compatible ~existing spec' =
  List.for_all
    (fun (name, c) ->
      match c with
      | Sharded s -> (
          match List.assoc_opt name spec'.tables with
          | None -> true
          | Some (Sharded s') -> signature_equal s s'
          | Some (Global | Replicated) -> false)
      | Global | Replicated -> true)
    existing.tables
