(** Sharded multicore dataplane: flow-key domain sharding with an
    RCU-style plan swap.

    One {!Engine.t} per OCaml domain, each owning a shard-local store
    of per-flow tables chained over one shared read/write store
    (scalars + global tables) and one pinned config store
    ({!Shardplan} decides the split). Batches run in two phases:
    a parallel phase with the shared store frozen — packets whose walk
    provably touched only shard-local and pinned state complete in
    place — and a serial phase replaying every deferred packet in
    global arrival order (dirty same-flow hashes, walks that read
    through the frozen store, and fires of serial entries).

    With unbounded stores the merged result — outputs, final store,
    merged counters — is differentially exact against a single engine
    fed the same stream. A capacity bound keeps the same reachable
    behavior but may evict in a different order (per-shard clocks;
    see DESIGN.md §13). *)

type t

val create :
  ?capacity:int ->
  nshards:int ->
  Nfactor.Model.t ->
  config:Nfactor.Model_interp.store ->
  t
(** Compile the model ([~shared:true]), analyze its sharding, split
    the initial store and spawn [nshards - 1] worker domains (shard 0
    runs on the calling thread). [capacity] bounds each per-flow table
    of the shard-local and shared stores.
    @raise Invalid_argument when [nshards < 1] or an oisVar is not
    seeded in [config]. *)

val shutdown : t -> unit
(** Stop and join the worker domains; idempotent. Further batch calls
    raise [Invalid_argument]. *)

val nshards : t -> int
val spec : t -> Shardplan.spec
val plan : t -> Compile.t

val swap_plan : t -> Compile.t -> unit
(** Publish a replacement plan (RCU): it must be compiled
    [~shared:true] over a model with the same entry count, and its
    sharding analysis must be {!Shardplan.compatible} with the layout
    fixed at {!create}. Engines adopt it at the next batch boundary —
    a quiescent point — and keep their counters. Callable between
    batches from any thread. *)

(** {1 Batch execution} *)

val run_batch : t -> Packet.Pkt.t array -> Engine.outcome array
(** Process one batch; [result.(i)] is packet [i]'s outcome, identical
    to a single engine stepping the same array in order (unbounded
    stores). Packets are routed to shards by flow-key hash inside. *)

val run_batch_count : t -> Packet.Pkt.t array -> unit
(** Allocation-free {!run_batch} for timed loops: same state effect,
    same counters, no outcome array (see {!Engine.step_count}). *)

val replay :
  ?profile:Packet.Traffic.profile ->
  ?batch:int ->
  t ->
  seed:int ->
  n:int ->
  float
(** Drive [n] random packets in [batch]-sized counted batches; returns
    wall-clock seconds spent in {!run_batch_count} only (generation is
    untimed). Stream equals {!Engine.replay}'s for the same seed. *)

val replay_churn : ?batch:int -> t -> churn:Packet.Traffic.churn -> n:int -> float
(** {!replay} over a churn generator (constant live-flow pool,
    unbounded turnover) — the workload for the scaling curve. The
    generator advances; pair against {!Engine.replay_churn} with an
    equal-seed generator for the single-engine baseline. *)

(** {1 Merged views} *)

val snapshot : t -> Nfactor.Model_interp.store
(** Deterministic merge of the config, shared and per-shard partitions
    back into one interpreter store: partitions hold disjoint names,
    shard copies of a sharded table hold disjoint keys, and sorted
    dictionaries merge by key — byte-comparable against a single
    engine's {!Engine.snapshot}. *)

val stats : t -> Engine.stats array
(** Live per-shard counters, indexed by shard. *)

val merged_stats : t -> Engine.stats
(** Field-wise sum over shards ({!Engine.merge_stats}); comparable 1:1
    against a single engine's counters. *)

val evictions : t -> int
(** Total LRU evictions across the shared and shard-local stores. *)

val deferred : t -> int
(** Packets that took the serial phase so far (telemetry: the
    complement of the parallel fraction). *)

val batches : t -> int

val stats_json : t -> nf:string -> string
(** One-line JSON: sharding summary, merged counters, then per-shard
    counter objects in shard-index order — field order deterministic. *)
