(** Model analysis for flow-key domain sharding: decides how a model's
    state partitions across shards and which entries must serialize.

    A per-flow table is {e sharded} when every key expression that
    touches it — match literals, emit reads, update operations — is one
    consistent signature of packet fields plus identical static
    components; equal keys then imply equal field values, so hashing
    those fields routes every access to one shard. The {e flow key} is
    the intersection of all sharded signatures' field sets (empty
    intersection demotes everything). A table whose keys mention
    run-time state, or whose accesses disagree, is {e global}: it stays
    in the shared store, where any parallel-phase read of it trips the
    frozen-store detector and the packet re-runs serially. Config
    dictionaries are {e replicated} (read-only, shared by reference).

    An entry is {e serial} when firing it touches shared mutable state
    (scalar write, whole-table overwrite, global-table operation, or an
    expression reading a scalar / global table). The analysis is
    conservative: anything not provably shard-local is global/serial,
    which only shrinks the parallel fraction — never correctness. *)

open Symexec

type slot = Sfield of string | Sstatic of Sexpr.t
(** One component of a table's key: a packet field (after stripping
    the packet-variable prefix) or a run-constant expression. *)

type signature = { slots : slot list; tup : bool }
(** The unified shape of every key expression probing one table;
    [tup] distinguishes a 1-tuple key from a bare value. *)

type table_class =
  | Sharded of signature  (** partitioned per shard by flow-key hash *)
  | Global  (** shared store; parallel-phase reads defer the packet *)
  | Replicated  (** read-only config dictionary, shared by reference *)

type spec = {
  pkt_var : string;
  key_fields : string list;
      (** sorted flow-key fields; [[]] when nothing is sharded (the
          hash then falls back to the 4-tuple for load balance) *)
  tables : (string * table_class) list;
  serial : bool array;  (** per source-model entry index *)
  hashfn : Packet.Pkt.t -> int;
}

val analyze :
  Nfactor.Model.t ->
  config:Nfactor.Model_interp.store ->
  live:bool array ->
  spec
(** [config] is the extraction-time initial store (table seeds tell
    dictionaries from scalars); [live] masks entries dropped by static
    config evaluation (see {!Compile.t}[.live_idx]) — dead entries
    constrain neither classification nor flow key. *)

val hash : spec -> Packet.Pkt.t -> int
(** Non-negative, deterministic flow-key hash of a packet; the caller
    reduces it [mod nshards]. Total: never raises on a well-formed
    packet (key fields are header fields, always present). *)

val router : spec -> string -> (Value.t -> int) option
(** [router spec table] hashes a {e stored key value} of a sharded
    table exactly as {!hash} routes the packets that probe it — used to
    split the table's initial seed across shards and to place merged
    entries. [None] for non-sharded tables. *)

val sharded_names : spec -> string list
val global_names : spec -> string list

val n_serial : spec -> int
val pp : Format.formatter -> spec -> unit

val compatible : existing:spec -> spec -> bool
(** Whether a store partitioned under [existing] can safely run a plan
    analyzed as the second spec: every table [existing] shards must
    keep an equal key signature (or go unaccessed). Demotions of
    still-split tables are rejected; promotions only cost
    parallelism. *)
