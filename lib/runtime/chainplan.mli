(** Static linking of N compiled plans into one service-chain plan.

    A chain of synthesized models normally executes hop-by-hop through
    the reference interpreter ({!Verify.Network}): every hop re-decides
    its config entries, re-walks its match order, and keeps its own
    store. The chain linker instead compiles every hop against its own
    initial store and links the results:

    - {b Namespacing}: hop [i]'s cfgVars and oisVars (scalar cells,
      flow tables, dictionary bases inside terms) are renamed under the
      prefix ["h<i>:"], so all hops share {e one} {!Flowstate} chain
      with no collisions — state names are per-hop by construction,
      packet fields are global by construction. The renaming is a pure
      bijection, so each hop's renamed plan is step-for-step equivalent
      to its original.
    - {b Hop fusion}: when an upstream entry's forward snapshot pins a
      packet field to a statically-known value (a config constant —
      e.g. a NAT rewriting [ip_src := nat_ip]), the downstream hop's
      dispatch tree is partially evaluated at link time: every dispatch
      node whose discriminating term reads only pinned fields and
      run-constant config resolves to the exact child the runtime walk
      would take, and the linked plan records the surviving subtree as
      the packet's {e entry node} into that hop. Adjacent exact-match
      tables fuse this way into a single pre-decided path.
    - {b Handoff fallback}: entries with dynamic rewrites (or hops
      whose dispatch reads unpinned fields) fall back to plan-to-plan
      handoff — the downstream walk starts at the hop's root — without
      re-materializing or re-parsing the packet.

    Fusion is an optimization with a soundness obligation, discharged
    conservatively: a node is only skipped when its source term's free
    symbols are all either statically-rewritten packet fields or config
    variables no entry of the chain ever writes, and the link-time
    evaluation routes evaluation failures through the same
    unresolved/non-bool classes as the runtime walk. Anything else
    stops the descent early — early stops cost speed, never
    correctness. *)

type hop = {
  h_id : string;  (** unique node id within the chain *)
  h_prefix : string;  (** state namespace, ["h<i>:"] *)
  h_model : Nfactor.Model.t;  (** renamed under [h_prefix] *)
  h_source : Nfactor.Model.t;  (** the model as given *)
  h_store : Nfactor.Model_interp.store;  (** renamed initial store *)
  h_plan : Compile.t;  (** compiled from the renamed model *)
  h_spec : Shardplan.spec;  (** sharding analysis of the renamed plan *)
}

type t = {
  hops : hop array;
  store0 : Nfactor.Model_interp.store;
      (** merged namespaced initial store — one {!Flowstate} seeds all
          hops *)
  starts : Compile.dnode array array array;
      (** [starts.(i).(e).(j)]: the node of hop [i+1]'s tree where a
          packet emitted by hop [i]'s entry [e], snapshot [j], starts
          its walk. The hop's root when nothing fused; [[||]] per
          entry that cannot emit (drop action or statically dead). *)
  sources : (string * Nfactor.Model.t * Nfactor.Model_interp.store) list;
      (** the nodes as given, for re-linking (e.g. [shared] plans) *)
  shared : bool;  (** plans compiled for cross-domain sharing *)
  fused_entries : int;
      (** (entry, snapshot) pairs entering the next hop below its root *)
  fused_nodes : int;  (** dispatch nodes pre-decided at link time, total *)
}

val link :
  ?shared:bool ->
  (string * Nfactor.Model.t * Nfactor.Model_interp.store) list ->
  t
(** Link a chain of (id, model, initial store) in traversal order.
    Duplicate ids are uniquified with [#k] suffixes. [shared] compiles
    every hop plan for read-only cross-domain sharing (see
    {!Compile.compile}); the sharded chain runtime requires it.
    @raise Invalid_argument on an empty chain. *)

val n_hops : t -> int
val hop_ids : t -> string list

val rename_model : prefix:string -> Nfactor.Model.t -> Nfactor.Model.t
(** The namespacing bijection: every cfgVar/oisVar occurrence (symbols,
    dictionary bases, update targets) prefixed. Exposed for tests. *)

val rename_store :
  prefix:string -> Nfactor.Model_interp.store -> Nfactor.Model_interp.store

val split_store :
  t -> Nfactor.Model_interp.store -> (string * Nfactor.Model_interp.store) list
(** Partition a merged chain store back into per-hop interpreter
    stores with original names, in hop order — comparable against
    {!Verify.Network} node stores. Bindings outside every hop prefix
    are dropped. *)

val shard_spec : t -> (Shardplan.spec, string) result
(** Whether the linked chain admits flow-key domain sharding, and
    under which spec. [Ok] requires every hop to pass the per-hop
    analysis with no global tables and no serial entries, all stateful
    hops to agree on one flow-key field set, and no hop to rewrite a
    key field (a rewrite would re-route the packet mid-chain away from
    its state). Stateless chains shard trivially under the first hop's
    spec. [Error] carries the first obstruction, for diagnostics. *)

val pp : Format.formatter -> t -> unit
