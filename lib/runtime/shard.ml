(** Sharded multicore dataplane: one {!Engine.t} per OCaml domain,
    packets routed by flow-key hash, exactness recovered by a
    two-phase batch protocol.

    {b Store layout.} {!Shardplan.analyze} splits the initial store
    three ways: sharded flow tables are partitioned by key into one
    store per shard; oisVar scalars and global tables go to one shared
    read/write store; config values go to a pinned (immutable) store.
    Each shard's store chains local → shared-rw → config, so any name
    an entry mentions resolves exactly as in the single store.

    {b Phase A (parallel).} The shared-rw store is frozen and every
    shard walks its packets concurrently. Three exits take a packet
    out of the fast path, all deferring it: its flow hash is already
    {e dirty} (an earlier packet of the batch deferred on the same
    flow, so this packet might read a not-yet-applied write); its walk
    {e read through the frozen store} (detected by the
    {!Flowstate.frozen_hits} delta — the verdict may be stale, so its
    counters are rolled back for a full serial re-run); or it matched
    a {e serial} entry (the match is exact — it provably read only
    shard-local and pinned state — but the fire writes shared state,
    so only the fire waits). Everything else completes in place: such
    a packet's walk touched nothing any deferred packet can write, so
    its outcome, state effect and counters equal the sequential run's.

    {b Phase B (serial).} After a barrier the store thaws and the
    driver replays the deferred packets in global arrival order on
    their owning shards' engines: saved matches just fire
    ({!Engine.fire_pending}); the rest re-step from scratch. Every
    packet is thus processed exactly once, and the merged result —
    outputs, final store, counters — is differentially exact against
    one engine fed the same stream, whenever stores are unbounded (a
    capacity bound may evict in a different order, because recency
    stamps from rolled-back walks and per-shard clocks are not
    reproduced; see DESIGN.md §13).

    {b RCU plan swap.} The current plan lives in an [Atomic.t]; a
    replacement is compiled off to the side ([~shared:true], so the
    plan is immutable and sharable) and published with one atomic
    store. Engines adopt it at the next batch boundary — a quiescent
    point, so no walk ever sees two plans. *)

module Smap = Nfactor.Model_interp.Smap

(* ------------------------------------------------------------------ *)
(* Worker plumbing                                                     *)
(* ------------------------------------------------------------------ *)

(* A deferred packet: global batch index, owning shard, and the saved
   match when only the fire was deferred ([None] = full re-step). *)
type ditem = {
  dg : int;
  dp : Packet.Pkt.t;
  dshard : int;
  dpend : Engine.pending option;
}

type jobspec = {
  j_pkts : Packet.Pkt.t array;
  j_gidx : int array;  (** global batch index per packet *)
  j_kh : int array;  (** precomputed flow-key hash per packet *)
  j_count : bool;
  j_out : Engine.outcome array;  (** shared; disjoint slots per shard *)
  j_serial : bool array;
}

type job = Run of jobspec | Quit

type latch = { lm : Mutex.t; lc : Condition.t; mutable l_pending : int }

type worker = {
  w_shard : int;
  w_eng : Engine.t;
  w_m : Mutex.t;
  w_cv : Condition.t;
  mutable w_job : job option;
  mutable w_deferred : ditem list;  (** result of the last job, in order *)
  mutable w_dom : unit Domain.t option;
}

(* Phase A over one shard's slice. The dirty set is keyed on the raw
   flow hash: collisions only defer spuriously, never unsoundly. *)
let phase_a eng shard (j : jobspec) =
  let dirty : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let defs = ref [] in
  let serial i = j.j_serial.(i) in
  let defer g p pend kh =
    Hashtbl.replace dirty kh ();
    defs := { dg = g; dp = p; dshard = shard; dpend = pend } :: !defs
  in
  for i = 0 to Array.length j.j_pkts - 1 do
    let p = j.j_pkts.(i) and g = j.j_gidx.(i) and kh = j.j_kh.(i) in
    if Hashtbl.mem dirty kh then defer g p None kh
    else
      match Engine.step_or_defer eng ~serial ~count:j.j_count p with
      | `Out o -> j.j_out.(g) <- o
      | `Counted -> ()
      | `Defer pend -> defer g p (Some pend) kh
      | `Rewalk -> defer g p None kh
  done;
  List.rev !defs

let worker_loop w latch =
  let rec loop () =
    Mutex.lock w.w_m;
    while w.w_job = None do
      Condition.wait w.w_cv w.w_m
    done;
    let job = Option.get w.w_job in
    w.w_job <- None;
    Mutex.unlock w.w_m;
    match job with
    | Quit -> ()
    | Run j ->
        w.w_deferred <- phase_a w.w_eng w.w_shard j;
        Mutex.lock latch.lm;
        latch.l_pending <- latch.l_pending - 1;
        if latch.l_pending = 0 then Condition.signal latch.lc;
        Mutex.unlock latch.lm;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* The sharded engine                                                  *)
(* ------------------------------------------------------------------ *)

type t = {
  nshards : int;
  spec : Shardplan.spec;  (** fixed: it defines the physical layout *)
  mutable serial : bool array;  (** refreshed on plan swap *)
  plan_cell : Compile.t Atomic.t;
  config : Nfactor.Model_interp.store;
  static_st : Flowstate.t;
  rw_global : Flowstate.t;
  engines : Engine.t array;  (** engines.(s) owns shard [s]'s store *)
  workers : worker array;  (** shards 1..n-1; shard 0 runs on the driver *)
  latch : latch;
  mutable n_deferred : int;
  mutable n_batches : int;
  mutable stopped : bool;
}

let nshards t = t.nshards
let spec t = t.spec
let plan t = Atomic.get t.plan_cell
let deferred t = t.n_deferred
let batches t = t.n_batches

let create ?capacity ~nshards model ~config =
  if nshards < 1 then invalid_arg "Shard.create: nshards must be >= 1";
  let plan = Compile.compile ~shared:true model ~config in
  let spec = Shardplan.analyze model ~config ~live:plan.Compile.live_idx in
  (* Every state-update target must be seeded in the initial store, so
     writes always route to an owning store (never create names at the
     chain root, where later frozen-phase reads could miss their
     staleness). The extractor seeds every oisVar, so this holds for
     the whole corpus. *)
  List.iter
    (fun v ->
      if not (Smap.mem v config) then
        invalid_arg ("Shard.create: unseeded state variable " ^ v))
    model.Nfactor.Model.ois_vars;
  let ois = model.Nfactor.Model.ois_vars in
  let static_b = ref Smap.empty and rw_b = ref Smap.empty in
  let shard_b = Array.make nshards Smap.empty in
  Smap.iter
    (fun name v ->
      if List.mem name ois then
        match (v, Shardplan.router spec name) with
        | Symexec.Value.Dict kvs, Some route ->
            let parts = Array.make nshards [] in
            List.iter
              (fun kv ->
                let s = route (fst kv) mod nshards in
                parts.(s) <- kv :: parts.(s))
              kvs;
            Array.iteri
              (fun s part ->
                shard_b.(s) <-
                  Smap.add name (Symexec.Value.Dict (List.rev part)) shard_b.(s))
              parts
        | _ -> rw_b := Smap.add name v !rw_b
      else static_b := Smap.add name v !static_b)
    config;
  let static_st = Flowstate.create !static_b in
  Flowstate.pin static_st;
  let rw_global = Flowstate.create ?capacity ~fallback:static_st !rw_b in
  let engines =
    Array.init nshards (fun s ->
        Engine.of_flowstate plan
          (Flowstate.create ?capacity ~fallback:rw_global shard_b.(s)))
  in
  let latch = { lm = Mutex.create (); lc = Condition.create (); l_pending = 0 } in
  let workers =
    Array.init (nshards - 1) (fun i ->
        {
          w_shard = i + 1;
          w_eng = engines.(i + 1);
          w_m = Mutex.create ();
          w_cv = Condition.create ();
          w_job = None;
          w_deferred = [];
          w_dom = None;
        })
  in
  Array.iter
    (fun w -> w.w_dom <- Some (Domain.spawn (fun () -> worker_loop w latch)))
    workers;
  {
    nshards;
    spec;
    serial = spec.Shardplan.serial;
    plan_cell = Atomic.make plan;
    config;
    static_st;
    rw_global;
    engines;
    workers;
    latch;
    n_deferred = 0;
    n_batches = 0;
    stopped = false;
  }

let swap_plan t plan' =
  if not plan'.Compile.shared then
    invalid_arg "Shard.swap_plan: plan must be compiled ~shared:true";
  let model' = plan'.Compile.model in
  if Nfactor.Model.entry_count model' <> Array.length t.serial then
    invalid_arg "Shard.swap_plan: different entry count";
  let spec' =
    Shardplan.analyze model' ~config:t.config ~live:plan'.Compile.live_idx
  in
  if not (Shardplan.compatible ~existing:t.spec spec') then
    invalid_arg "Shard.swap_plan: incompatible sharding (repartition required)";
  t.serial <- spec'.Shardplan.serial;
  Atomic.set t.plan_cell plan'
  (* engines adopt it at the next batch boundary *)

(* ------------------------------------------------------------------ *)
(* Batch execution                                                     *)
(* ------------------------------------------------------------------ *)

let dummy_out : Engine.outcome array = [||]

let exec t ~count pkts out =
  if t.stopped then invalid_arg "Shard: engine was shut down";
  let n = Array.length pkts in
  if n > 0 then begin
    (* Quiescent point: adopt a swapped plan on every engine. *)
    let plan = Atomic.get t.plan_cell in
    Array.iter
      (fun eng -> if eng.Engine.plan != plan then Engine.swap_plan eng plan)
      t.engines;
    (* Partition by flow-key hash, preserving arrival order per shard. *)
    let khs = Array.map (fun p -> Shardplan.hash t.spec p) pkts in
    let counts = Array.make t.nshards 0 in
    Array.iter
      (fun kh ->
        let s = kh mod t.nshards in
        counts.(s) <- counts.(s) + 1)
      khs;
    let jobs =
      Array.init t.nshards (fun s ->
          {
            j_pkts = Array.make counts.(s) pkts.(0);
            j_gidx = Array.make counts.(s) 0;
            j_kh = Array.make counts.(s) 0;
            j_count = count;
            j_out = out;
            j_serial = t.serial;
          })
    in
    let fill = Array.make t.nshards 0 in
    Array.iteri
      (fun g p ->
        let s = khs.(g) mod t.nshards in
        let j = jobs.(s) and i = fill.(s) in
        j.j_pkts.(i) <- p;
        j.j_gidx.(i) <- g;
        j.j_kh.(i) <- khs.(g);
        fill.(s) <- i + 1)
      pkts;
    (* Phase A: freeze shared state, fan out, run shard 0 inline. *)
    Flowstate.freeze t.rw_global;
    Mutex.lock t.latch.lm;
    t.latch.l_pending <- Array.length t.workers;
    Mutex.unlock t.latch.lm;
    Array.iter
      (fun w ->
        Mutex.lock w.w_m;
        w.w_job <- Some (Run jobs.(w.w_shard));
        Condition.signal w.w_cv;
        Mutex.unlock w.w_m)
      t.workers;
    let d0 = phase_a t.engines.(0) 0 jobs.(0) in
    Mutex.lock t.latch.lm;
    while t.latch.l_pending > 0 do
      Condition.wait t.latch.lc t.latch.lm
    done;
    Mutex.unlock t.latch.lm;
    Flowstate.thaw t.rw_global;
    (* Phase B: deferred packets in global arrival order. *)
    let all =
      Array.fold_left
        (fun acc w -> List.rev_append (List.rev w.w_deferred) acc)
        (List.rev d0) t.workers
      |> List.rev
      |> List.sort (fun a b -> compare a.dg b.dg)
    in
    t.n_deferred <- t.n_deferred + List.length all;
    List.iter
      (fun d ->
        let eng = t.engines.(d.dshard) in
        match d.dpend with
        | Some pend ->
            let o = Engine.fire_pending eng ~count d.dp pend in
            if not count then out.(d.dg) <- o
        | None ->
            if count then Engine.step_count eng d.dp
            else out.(d.dg) <- Engine.step eng d.dp)
      all;
    t.n_batches <- t.n_batches + 1
  end

let run_batch t pkts =
  let out =
    Array.make (Array.length pkts)
      { Engine.outputs = []; fired = None }
  in
  exec t ~count:false pkts out;
  out

let run_batch_count t pkts = exec t ~count:true pkts dummy_out

let replay ?(profile = Packet.Traffic.default_profile) ?(batch = 4096) t ~seed
    ~n =
  let rng = Packet.Rng.create seed in
  let elapsed = ref 0.0 in
  let remaining = ref n in
  while !remaining > 0 do
    let m = min !remaining batch in
    let pkts = Array.init m (fun _ -> Packet.Traffic.random_pkt rng profile) in
    let t0 = Unix.gettimeofday () in
    run_batch_count t pkts;
    elapsed := !elapsed +. (Unix.gettimeofday () -. t0);
    remaining := !remaining - m
  done;
  !elapsed

let replay_churn ?(batch = 4096) t ~churn ~n =
  let elapsed = ref 0.0 in
  let remaining = ref n in
  while !remaining > 0 do
    let m = min !remaining batch in
    let pkts = Array.init m (fun _ -> Packet.Traffic.churn_next churn) in
    let t0 = Unix.gettimeofday () in
    run_batch_count t pkts;
    elapsed := !elapsed +. (Unix.gettimeofday () -. t0);
    remaining := !remaining - m
  done;
  !elapsed

let shutdown t =
  if not t.stopped then begin
    t.stopped <- true;
    Array.iter
      (fun w ->
        Mutex.lock w.w_m;
        w.w_job <- Some Quit;
        Condition.signal w.w_cv;
        Mutex.unlock w.w_m)
      t.workers;
    Array.iter
      (fun w -> match w.w_dom with Some d -> Domain.join d | None -> ())
      t.workers
  end

(* ------------------------------------------------------------------ *)
(* Merged views                                                        *)
(* ------------------------------------------------------------------ *)

(* The three partitions hold disjoint name sets; shard-local stores
   hold the same (sharded) names with disjoint key sets, merged by
   sorted-list merge to restore the Dict invariant. *)
let snapshot t =
  let merge_cell _ a b =
    match (a, b) with
    | Symexec.Value.Dict x, Symexec.Value.Dict y ->
        Some
          (Symexec.Value.Dict
             (List.merge
                (fun (k1, _) (k2, _) -> Symexec.Value.compare k1 k2)
                x y))
    | _, b -> Some b
  in
  let base =
    Smap.union merge_cell
      (Flowstate.snapshot t.static_st)
      (Flowstate.snapshot t.rw_global)
  in
  Array.fold_left
    (fun acc eng -> Smap.union merge_cell acc (Engine.snapshot eng))
    base t.engines

let stats t = Array.map (fun eng -> eng.Engine.stats) t.engines

let merged_stats t = Engine.merge_stats (stats t)

let evictions t =
  Array.fold_left
    (fun acc eng -> acc + Engine.evictions eng)
    (Flowstate.evictions t.rw_global)
    t.engines

(* Deterministic shape: merged object first, then per-shard objects in
   shard-index order. *)
let stats_json t ~nf =
  let plan = Atomic.get t.plan_cell in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"nf\":%S,\"shards\":%d,\"flow_key\":[%s],\"serial_entries\":%d,\"deferred\":%d,\"batches\":%d,\"merged\":"
       nf t.nshards
       (String.concat ","
          (List.map
             (fun f -> Printf.sprintf "%S" f)
             t.spec.Shardplan.key_fields))
       (Array.fold_left (fun a s -> if s then a + 1 else a) 0 t.serial)
       t.n_deferred t.n_batches);
  Buffer.add_string b
    (Engine.stats_json_of ~nf ~plan ~evictions:(evictions t) (merged_stats t));
  Buffer.add_string b ",\"per_shard\":[";
  Array.iteri
    (fun s eng ->
      if s > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Engine.stats_json_of ~nf ~plan ~evictions:(Engine.evictions eng)
           eng.Engine.stats))
    t.engines;
  Buffer.add_string b "]}";
  Buffer.contents b
