(* Static linking of compiled plans into one chain plan: per-hop state
   namespacing, link-time partial evaluation of downstream dispatch
   trees (hop fusion), and the chain-level sharding gate. See the
   interface for the soundness argument. *)

open Symexec
module Smap = Nfactor.Model_interp.Smap
module Sset = Sexpr.Sset

type hop = {
  h_id : string;
  h_prefix : string;
  h_model : Nfactor.Model.t;
  h_source : Nfactor.Model.t;
  h_store : Nfactor.Model_interp.store;
  h_plan : Compile.t;
  h_spec : Shardplan.spec;
}

type t = {
  hops : hop array;
  store0 : Nfactor.Model_interp.store;
  starts : Compile.dnode array array array;
  sources : (string * Nfactor.Model.t * Nfactor.Model_interp.store) list;
  shared : bool;
  fused_entries : int;
  fused_nodes : int;
}

(* ------------------------------------------------------------------ *)
(* Namespacing                                                        *)
(* ------------------------------------------------------------------ *)

(* Rename every occurrence of a hop variable — free symbols and
   dictionary bases — under [prefix]. [subst_sym] cannot do this alone
   because dictionary bases are raw strings, not symbols, so the walk
   is by hand. Packet symbols ([<pkt_var>.<field>]) are never in
   [vars] and pass through: fields are chain-global by design. *)
let rename_term ~vars ~prefix e =
  let rn_name s = if Sset.mem s vars then prefix ^ s else s in
  let rec rn e =
    match Sexpr.view e with
    | Sexpr.Const _ -> e
    | Sexpr.Sym s -> if Sset.mem s vars then Sexpr.sym (prefix ^ s) else e
    | Sexpr.Bin (op, a, b) -> Sexpr.mk_bin op (rn a) (rn b)
    | Sexpr.Not a -> Sexpr.mk_not (rn a)
    | Sexpr.Neg a -> Sexpr.mk_neg (rn a)
    | Sexpr.Tup es -> Sexpr.mk_tuple (List.map rn es)
    | Sexpr.Lst es -> Sexpr.mk_list (List.map rn es)
    | Sexpr.Get (a, b) -> Sexpr.mk_get (rn a) (rn b)
    | Sexpr.Ufun (f, es) -> Sexpr.mk_ufun f (List.map rn es)
    | Sexpr.Mem (d, k) -> Sexpr.mk_mem (rn_dict d) (rn k)
    | Sexpr.Dget (d, k) -> Sexpr.mk_dget (rn_dict d) (rn k)
    | Sexpr.Ite (g, a, b) -> Sexpr.mk_ite (rn g) (rn a) (rn b)
  and rn_dict (d : Sexpr.dict_state) =
    {
      Sexpr.base = rn_name d.Sexpr.base;
      writes =
        List.map (fun (k, v) -> (rn k, Option.map rn v)) d.Sexpr.writes;
    }
  in
  rn e

let rename_model ~prefix (m : Nfactor.Model.t) =
  let vars =
    List.fold_left
      (fun acc v -> Sset.add v acc)
      Sset.empty
      (m.Nfactor.Model.cfg_vars @ m.Nfactor.Model.ois_vars)
  in
  let rn = rename_term ~vars ~prefix in
  let rn_name s = if Sset.mem s vars then prefix ^ s else s in
  let rn_lit (l : Solver.literal) = Solver.lit (rn l.Solver.atom) l.Solver.positive in
  let rn_lits = List.map rn_lit in
  let rn_entry (e : Nfactor.Model.entry) =
    {
      e with
      Nfactor.Model.config = rn_lits e.Nfactor.Model.config;
      flow_match = rn_lits e.Nfactor.Model.flow_match;
      state_match = rn_lits e.Nfactor.Model.state_match;
      residual_match = rn_lits e.Nfactor.Model.residual_match;
      pkt_action =
        (match e.Nfactor.Model.pkt_action with
        | Nfactor.Model.Drop -> Nfactor.Model.Drop
        | Nfactor.Model.Forward snaps ->
            Nfactor.Model.Forward
              (List.map (List.map (fun (f, x) -> (f, rn x))) snaps));
      state_update =
        List.map
          (fun (name, u) ->
            ( rn_name name,
              match u with
              | Nfactor.Model.Set_scalar x -> Nfactor.Model.Set_scalar (rn x)
              | Nfactor.Model.Dict_ops ops ->
                  Nfactor.Model.Dict_ops
                    (List.map (fun (k, v) -> (rn k, Option.map rn v)) ops) ))
          e.Nfactor.Model.state_update;
    }
  in
  {
    m with
    Nfactor.Model.cfg_vars = List.map (fun v -> prefix ^ v) m.Nfactor.Model.cfg_vars;
    ois_vars = List.map (fun v -> prefix ^ v) m.Nfactor.Model.ois_vars;
    entries = List.map rn_entry m.Nfactor.Model.entries;
  }

let rename_store ~prefix store =
  Smap.fold (fun k v acc -> Smap.add (prefix ^ k) v acc) store Smap.empty

(* ------------------------------------------------------------------ *)
(* Hop fusion                                                         *)
(* ------------------------------------------------------------------ *)

(* Names some chain entry's state transition targets (scalar sets and
   dictionary operations alike, all hops). A term mentioning any of
   them is runtime-mutable and never link-time evaluated; everything
   else in a store keeps its initial value for the whole run. *)
let written_names hops =
  Array.fold_left
    (fun acc h ->
      List.fold_left
        (fun acc (e : Nfactor.Model.entry) ->
          List.fold_left
            (fun acc (name, _) -> Sset.add name acc)
            acc e.Nfactor.Model.state_update)
        acc h.h_model.Nfactor.Model.entries)
    Sset.empty hops

(* The statically-known rewrites of one forward snapshot: fields whose
   value expression reads no packet field and nothing runtime-mutable,
   evaluated against the merged initial store. *)
let static_rewrites ~store0 ~written (up : hop) snap =
  let pkt_var = up.h_model.Nfactor.Model.pkt_var in
  let pkt_prefix = pkt_var ^ "." in
  List.filter_map
    (fun (f, e) ->
      let constant =
        Sset.for_all
          (fun s ->
            (not (String.starts_with ~prefix:pkt_prefix s))
            && not (Sset.mem s written))
          (Sexpr.syms e)
      in
      if not constant then None
      else
        match
          Nfactor.Model_interp.eval ~pkt_var store0 Nfactor.Model_interp.null_pkt e
        with
        | v -> Some (f, v)
        | exception (Value.Type_error _ | Nfactor.Model_interp.Unresolved _) ->
            None)
    snap

(* Partially evaluate [dn]'s dispatch tree under pinned packet fields:
   descend while the node's source term reads only pinned fields and
   run-constant store names, routing exactly as the engine would —
   including evaluation failures, which take the node's unresolved
   (or non-bool) class. State nodes always stop the descent: their
   branch depends on runtime flow state. *)
let advance ~store0 ~written (dn : hop) statics =
  if statics = [] then (dn.h_plan.Compile.root, 0)
  else
    let pkt_var = dn.h_model.Nfactor.Model.pkt_var in
    let pkt_prefix = pkt_var ^ "." in
    let plen = String.length pkt_prefix in
    let probe =
      try
        Some
          (List.fold_left
             (fun p (f, v) ->
               match (v : Value.t) with
               | Value.Int n -> Packet.Pkt.set_int p f n
               | Value.Str s -> Packet.Pkt.set_str p f s
               | _ -> raise Exit)
             Nfactor.Model_interp.null_pkt statics)
      with Exit | Invalid_argument _ -> None
    in
    match probe with
    | None -> (dn.h_plan.Compile.root, 0)
    | Some probe ->
        let decidable src =
          Sset.for_all
            (fun s ->
              if String.starts_with ~prefix:pkt_prefix s then
                List.mem_assoc (String.sub s plen (String.length s - plen)) statics
              else not (Sset.mem s written))
            (Sexpr.syms src)
        in
        let rec go (node : Compile.dnode) depth =
          match node with
          | Compile.Leaf _ | Compile.Dstate _ -> (node, depth)
          | Compile.Dexpr { src; vdis; unres; children; _ } ->
              if not (decidable src) then (node, depth)
              else
                let idx =
                  match Nfactor.Model_interp.eval ~pkt_var store0 probe src with
                  | v -> Engine.class_index vdis v
                  | exception
                      (Value.Type_error _ | Nfactor.Model_interp.Unresolved _) ->
                      unres
                in
                go children.(idx) (depth + 1)
          | Compile.Dbool { src; truthy; falsy; nonbool; unres; children; _ } ->
              if not (decidable src) then (node, depth)
              else
                let idx =
                  match Nfactor.Model_interp.eval ~pkt_var store0 probe src with
                  | Value.Bool true -> truthy
                  | Value.Bool false -> falsy
                  | Value.Int n -> if n <> 0 then truthy else falsy
                  | _ -> nonbool
                  | exception
                      (Value.Type_error _ | Nfactor.Model_interp.Unresolved _) ->
                      unres
                in
                go children.(idx) (depth + 1)
        in
        go dn.h_plan.Compile.root 0

let compute_starts ~store0 ~written hops =
  let n = Array.length hops in
  let fused_entries = ref 0 and fused_nodes = ref 0 in
  let starts =
    Array.init
      (max 0 (n - 1))
      (fun i ->
        let up = hops.(i) and dn = hops.(i + 1) in
        let entries = Array.of_list up.h_model.Nfactor.Model.entries in
        Array.init (Array.length entries) (fun e ->
            if not up.h_plan.Compile.live_idx.(e) then [||]
            else
              match entries.(e).Nfactor.Model.pkt_action with
              | Nfactor.Model.Drop -> [||]
              | Nfactor.Model.Forward snaps ->
                  Array.of_list
                    (List.map
                       (fun snap ->
                         let statics = static_rewrites ~store0 ~written up snap in
                         let node, depth = advance ~store0 ~written dn statics in
                         if depth > 0 then begin
                           incr fused_entries;
                           fused_nodes := !fused_nodes + depth
                         end;
                         node)
                       snaps)))
  in
  (starts, !fused_entries, !fused_nodes)

(* ------------------------------------------------------------------ *)
(* Linking                                                            *)
(* ------------------------------------------------------------------ *)

let link ?(shared = false) sources =
  if sources = [] then invalid_arg "Chainplan.link: empty chain";
  let seen = Hashtbl.create 8 in
  let uniq id =
    match Hashtbl.find_opt seen id with
    | None ->
        Hashtbl.add seen id 1;
        id
    | Some k ->
        Hashtbl.replace seen id (k + 1);
        Printf.sprintf "%s#%d" id k
  in
  let hops =
    List.mapi
      (fun i (id, m, store) ->
        let prefix = Printf.sprintf "h%d:" i in
        let h_model = rename_model ~prefix m in
        let h_store = rename_store ~prefix store in
        let h_plan = Compile.compile ~shared h_model ~config:h_store in
        let h_spec =
          Shardplan.analyze h_model ~config:h_store ~live:h_plan.Compile.live_idx
        in
        {
          h_id = uniq id;
          h_prefix = prefix;
          h_model;
          h_source = m;
          h_store;
          h_plan;
          h_spec;
        })
      sources
    |> Array.of_list
  in
  let store0 =
    Array.fold_left
      (fun acc h -> Smap.union (fun _ a _ -> Some a) acc h.h_store)
      Smap.empty hops
  in
  let written = written_names hops in
  let starts, fused_entries, fused_nodes = compute_starts ~store0 ~written hops in
  { hops; store0; starts; sources; shared; fused_entries; fused_nodes }

let n_hops t = Array.length t.hops
let hop_ids t = Array.to_list (Array.map (fun h -> h.h_id) t.hops)

let split_store t merged =
  Array.to_list t.hops
  |> List.map (fun h ->
         let plen = String.length h.h_prefix in
         let s =
           Smap.fold
             (fun k v acc ->
               if String.starts_with ~prefix:h.h_prefix k then
                 Smap.add (String.sub k plen (String.length k - plen)) v acc
               else acc)
             merged Smap.empty
         in
         (h.h_id, s))

(* ------------------------------------------------------------------ *)
(* Chain-level sharding gate                                          *)
(* ------------------------------------------------------------------ *)

let shard_spec t =
  let obstruction = ref None in
  let reject e = if !obstruction = None then obstruction := Some e in
  Array.iter
    (fun h ->
      (match Shardplan.global_names h.h_spec with
      | [] -> ()
      | g ->
          reject
            (Printf.sprintf "hop %s keeps global table(s) %s in shared state"
               h.h_id (String.concat ", " g)));
      let ns = Shardplan.n_serial h.h_spec in
      if ns > 0 then
        reject
          (Printf.sprintf "hop %s has %d serial entr%s" h.h_id ns
             (if ns = 1 then "y" else "ies")))
    t.hops;
  let stateful =
    List.filter
      (fun h -> Shardplan.sharded_names h.h_spec <> [])
      (Array.to_list t.hops)
  in
  (match stateful with
  | [] -> ()
  | h0 :: rest ->
      let key = h0.h_spec.Shardplan.key_fields in
      List.iter
        (fun h ->
          if h.h_spec.Shardplan.key_fields <> key then
            reject
              (Printf.sprintf
                 "hops %s and %s shard on different flow keys ([%s] vs [%s])"
                 h0.h_id h.h_id
                 (String.concat ", " key)
                 (String.concat ", " h.h_spec.Shardplan.key_fields)))
        rest;
      (* a hop rewriting a key field would re-route downstream accesses
         of the same flow to a different shard than its state lives on *)
      Array.iter
        (fun h ->
          match
            List.filter
              (fun f -> List.mem f key)
              (Nfactor.Model.modified_fields h.h_source)
          with
          | [] -> ()
          | bad ->
              reject
                (Printf.sprintf "hop %s rewrites flow-key field(s) %s" h.h_id
                   (String.concat ", " bad)))
        t.hops);
  match !obstruction with
  | Some e -> Error e
  | None -> (
      match stateful with
      | [] -> Ok t.hops.(0).h_spec
      | h :: _ -> Ok h.h_spec)

let pp ppf t =
  Fmt.pf ppf "chain %s: %d hop(s), %d fused entry snapshot(s) (%d node(s) pre-decided)"
    (String.concat " -> " (hop_ids t))
    (n_hops t) t.fused_entries t.fused_nodes;
  Array.iter (fun h -> Fmt.pf ppf "@.  %a" Compile.pp_plan h.h_plan) t.hops
