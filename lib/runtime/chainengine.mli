(** Batched execution of a linked chain plan ({!Chainplan}) over one
    shared {!Flowstate}.

    One engine per hop, all chained over a single namespaced store.
    Packets traverse the chain breadth-first exactly like
    {!Verify.Network.push} — every packet alive at hop [i] steps
    through it (state updates committing in packet order) before any
    moves to hop [i+1] — so outputs, per-hop traces and final stores
    are differentially comparable against the interpreter chain.

    A packet emitted by an upstream entry whose fused start node was
    pre-decided at link time enters the next hop {e below} its root
    ([fused_walks] counts these); everything else is a plan-to-plan
    handoff from the root ([handoffs]) — no packet is ever
    re-materialized between hops either way.

    {b Sharded chains.} When {!Chainplan.shard_spec} admits it, a
    chain runs as N fully independent per-domain replicas: flow-key
    sharded tables split by the chain's router, everything else
    replicated. No serial phase and no frozen-store protocol are
    needed — the spec only says [Ok] when no hop touches shared
    mutable state — so shards never synchronize between batches. *)

type t = {
  cp : Chainplan.t;
  state : Flowstate.t;  (** the one store all hop engines share *)
  engines : Engine.t array;  (** per hop, in chain order *)
  mutable injected : int;
  mutable fused_walks : int;  (** walks started below a hop root *)
  mutable handoffs : int;  (** non-fused hop-to-hop handoffs *)
}

val create : ?capacity:int -> Chainplan.t -> t
(** Fresh chain engine over the plan's merged initial store;
    [capacity] bounds each flow table (leave unset for exact
    interpreter equivalence). *)

val step : t -> Packet.Pkt.t -> Packet.Pkt.t list
(** One packet through the whole chain; returns the packets emerging
    from the last hop. State updates stick. *)

type hoprec = {
  hop_id : string;
  entered : Packet.Pkt.t list;
  left : Packet.Pkt.t list;
}
(** Mirrors {!Verify.Network.hop} for trace-level differential checks. *)

val step_trace : t -> Packet.Pkt.t -> Packet.Pkt.t list * hoprec list

val run_batch : t -> Packet.Pkt.t array -> Packet.Pkt.t list array

val replay :
  ?profile:Packet.Traffic.profile -> t -> seed:int -> n:int -> float
(** Seeded-traffic replay, timed stepping only (generation outside the
    timed sections, allocation-free final hop) — comparable 1:1 with
    timing {!Verify.Network.run} on the same stream. *)

val replay_churn :
  ?batch:int -> t -> churn:Packet.Traffic.churn -> n:int -> float

val delivered : t -> int
(** Packets that emerged from the last hop (derived from its entry-hit
    counters, so replay's allocation-free path counts too). *)

val snapshot_hops : t -> (string * Nfactor.Model_interp.store) list
(** Per-hop final stores with original variable names, in chain order
    — comparable against {!Verify.Network} node stores. *)

val hop_stats : t -> (string * Engine.stats) list
val evictions : t -> int
val pp_stats : Format.formatter -> t -> unit

val stats_json : t -> string
(** Chain counters plus per-hop engine counters as one JSON object. *)

(** {1 Sharded chain execution} *)

type sharded

val shard : ?capacity:int -> Chainplan.t -> nshards:int -> (sharded, string) result
(** Partition the chain across [nshards] domain-private replicas.
    [Error] (the first obstruction, verbatim from
    {!Chainplan.shard_spec}) when the chain does not shard. Re-links
    the plan with [shared:true] when needed, so the caller's plan is
    untouched. *)

val shard_nshards : sharded -> int
val shard_route : sharded -> Packet.Pkt.t -> int

val shard_run_batch : sharded -> Packet.Pkt.t array -> Packet.Pkt.t list array
(** In-order sequential execution (shard selected per packet) — the
    exactness side: outputs must equal {!run_batch} on a single chain
    engine packet-for-packet. *)

val shard_replay : sharded -> pkts:Packet.Pkt.t array -> float
(** Parallel execution: the stream is partitioned by the chain router
    and each shard's sub-stream runs on its own domain. Returns
    wall-clock seconds including domain spawn/join. *)

val shard_snapshot_hops : sharded -> (string * Nfactor.Model_interp.store) list
(** Per-hop final stores of the merged (sharded tables unioned,
    replicated state from shard 0) chain store. *)

val shard_hop_stats : sharded -> (string * Engine.stats) list
(** Per-hop counters summed across shards — comparable 1:1 against a
    single chain engine's on the same stream. *)

val shard_fused_walks : sharded -> int
val shard_injected : sharded -> int
