(** Managed mutable state store for the compiled dataplane.

    The reference interpreter ({!Nfactor.Model_interp}) threads a
    persistent [Value.t Smap.t] through every step and rebuilds
    dictionary values (sorted association lists) on each write — O(n)
    per flow-table insert. This store replaces that with scalar cells
    plus hash-backed per-flow tables keyed on the tested key
    expression's concrete value, with an optional capacity bound and
    LRU eviction driven by a logical packet clock.

    {b Fallback chaining.} A store may delegate to a [fallback]: a
    name missing from its own cells resolves in the fallback,
    recursively. The sharded dataplane ({!Shard}) partitions one
    interpreter store into per-shard flow-table stores chained over a
    shared store of scalars and cross-flow tables; writes route to the
    store owning the name (new names are created at the chain root).
    A store with no fallback behaves exactly as before.

    {b Freezing.} {!freeze} marks a store as shared read-only for a
    parallel phase: probes of a frozen store skip the table memo and
    the recency stamp — the two read-path mutations — so concurrent
    readers from several domains are race-free. Every read that
    resolves in (or misses through) a frozen store increments the
    {e querying} store's {!frozen_hits} counter; the sharded engine
    snapshots it around each packet to detect walks whose verdict
    depends on shared mutable state and must re-run serially.

    Missing names and non-dictionary bases raise
    {!Nfactor.Model_interp.Unresolved}, exactly like the reference
    evaluator, so compiled literal evaluation keeps its
    false-on-unresolved semantics. *)

open Symexec

type t

val create : ?capacity:int -> ?fallback:t -> Nfactor.Model_interp.store -> t
(** Load an interpreter store: [Value.Dict] values become hash tables,
    everything else a scalar cell. [capacity] bounds {e each} per-flow
    table; inserting into a full table evicts the least-recently-used
    key first (ties broken on the smaller key, so eviction is
    deterministic). Omitted = unbounded, which is required for exact
    equivalence with the reference interpreter (it never evicts).
    [fallback] chains name resolution (see module doc). *)

val capacity : t -> int option

val define : t -> string -> Value.t -> unit
(** Install a binding directly into {e this} store's cells, bypassing
    the fallback routing of {!set_scalar} — used when partitioning a
    store to seed shard-local tables. *)

(** {1 Logical packet clock} *)

val clock : t -> int

val bump_clock : t -> unit
(** Advance the clock; the engine calls this once per packet. Reads
    and writes stamp the touched table key with the current clock,
    which is the recency order eviction uses. *)

(** {1 Freezing (parallel read phases)} *)

val freeze : t -> unit
val thaw : t -> unit

val pin : t -> unit
(** Mark this store immutable for the rest of the run (the config
    partition): reads of it skip the memo and recency stamp — the same
    race-freedom as {!freeze} — but are {e not} charged to
    {!frozen_hits}, because a never-written store cannot make a
    parallel-phase verdict stale. Irreversible by design. *)

val frozen_hits : t -> int
(** Monotonic count of reads {e issued through this store} that
    resolved in (or missed through) a frozen store on its fallback
    chain. Delta ≠ 0 across a packet ⟹ the packet consulted shared
    mutable state. *)

(** {1 Reads} *)

val read : t -> string -> Value.t
(** Scalar read; a table materializes back into a (sorted)
    [Value.Dict]. Resolves through the fallback chain.
    @raise Nfactor.Model_interp.Unresolved on missing names. *)

type handle
(** A resolved per-flow table (and its owning store). Resolving
    ({!handle}) and querying are split so compiled dictionary atoms
    can mirror the reference evaluator's order: base resolution fails
    before any key is evaluated. *)

val handle : t -> string -> handle
(** @raise Nfactor.Model_interp.Unresolved when [name] is absent or
    not a table. *)

val handle_mem : t -> handle -> Value.t -> bool
val handle_find : t -> handle -> Value.t -> Value.t option

val handle_get : t -> handle -> Value.t -> Value.t
(** Like {!handle_find} but allocation-free.
    @raise Stdlib.Not_found when the key is absent. *)

val state_read :
  t -> string -> Value.t -> [ `Absent | `No_table | `Value of Value.t ]
(** One probe of per-flow state for the engine's FSM dispatch level:
    [`Value v] when [name] is a table holding [k] (stamps recency),
    [`Absent] when the table exists without the key, [`No_table] when
    [name] is missing or scalar. Never raises — the dispatch maps
    [`No_table] to the same class as an unresolved read. *)

val table_mem : t -> string -> Value.t -> bool
val table_find : t -> string -> Value.t -> Value.t option
val table_size : t -> string -> int

(** {1 Writes} *)

val set_scalar : t -> string -> Value.t -> unit
(** Assigning a [Value.Dict] (re)creates a table; its slots are
    stamped with the current clock, so keys written through a
    whole-dict overwrite are as recent as any other write. Routes to
    the store owning the name; unowned names are created at the chain
    root. *)

val table_set : t -> string -> Value.t -> Value.t -> unit
(** Insert or update; inserting into a table at capacity evicts the
    LRU key first. Capacity and eviction accounting are the {e owning}
    store's; the recency stamp is the querying store's clock. *)

val table_remove : t -> string -> Value.t -> unit

(** {1 Telemetry and snapshots} *)

val evictions : t -> int
(** Total keys evicted from tables {e owned by this store} since
    {!create}. *)

val snapshot : t -> Nfactor.Model_interp.store
(** Materialize {e this store's own cells} back into an interpreter
    store (tables become sorted [Value.Dict]s) — byte-comparable
    against {!Nfactor.Model_interp.run}'s final store for unchained
    stores; a partitioned store merges shard snapshots explicitly. *)
