(** Managed mutable state store for the compiled dataplane.

    The reference interpreter ({!Nfactor.Model_interp}) threads a
    persistent [Value.t Smap.t] through every step and rebuilds
    dictionary values (sorted association lists) on each write — O(n)
    per flow-table insert. This store replaces that with scalar cells
    plus hash-backed per-flow tables keyed on the tested key
    expression's concrete value, with an optional capacity bound and
    LRU eviction driven by a logical packet clock.

    Missing names and non-dictionary bases raise
    {!Nfactor.Model_interp.Unresolved}, exactly like the reference
    evaluator, so compiled literal evaluation keeps its
    false-on-unresolved semantics. *)

open Symexec

type t

val create : ?capacity:int -> Nfactor.Model_interp.store -> t
(** Load an interpreter store: [Value.Dict] values become hash tables,
    everything else a scalar cell. [capacity] bounds {e each} per-flow
    table; inserting into a full table evicts the least-recently-used
    key first (ties broken on the smaller key, so eviction is
    deterministic). Omitted = unbounded, which is required for exact
    equivalence with the reference interpreter (it never evicts). *)

val capacity : t -> int option

(** {1 Logical packet clock} *)

val clock : t -> int

val bump_clock : t -> unit
(** Advance the clock; the engine calls this once per packet. Reads
    and writes stamp the touched table key with the current clock,
    which is the recency order eviction uses. *)

(** {1 Reads} *)

val read : t -> string -> Value.t
(** Scalar read; a table materializes back into a (sorted)
    [Value.Dict].
    @raise Nfactor.Model_interp.Unresolved on missing names. *)

type handle
(** A resolved per-flow table. Resolving ({!handle}) and querying are
    split so compiled dictionary atoms can mirror the reference
    evaluator's order: base resolution fails before any key is
    evaluated. *)

val handle : t -> string -> handle
(** @raise Nfactor.Model_interp.Unresolved when [name] is absent or
    not a table. *)

val handle_mem : t -> handle -> Value.t -> bool
val handle_find : t -> handle -> Value.t -> Value.t option

val handle_get : t -> handle -> Value.t -> Value.t
(** Like {!handle_find} but allocation-free.
    @raise Stdlib.Not_found when the key is absent. *)

val state_read :
  t -> string -> Value.t -> [ `Absent | `No_table | `Value of Value.t ]
(** One probe of per-flow state for the engine's FSM dispatch level:
    [`Value v] when [name] is a table holding [k] (stamps recency),
    [`Absent] when the table exists without the key, [`No_table] when
    [name] is missing or scalar. Never raises — the dispatch maps
    [`No_table] to the same class as an unresolved read. *)

val table_mem : t -> string -> Value.t -> bool
val table_find : t -> string -> Value.t -> Value.t option
val table_size : t -> string -> int

(** {1 Writes} *)

val set_scalar : t -> string -> Value.t -> unit
(** Assigning a [Value.Dict] (re)creates a table; its slots are
    stamped with the current clock, so keys written through a
    whole-dict overwrite are as recent as any other write. *)

val table_set : t -> string -> Value.t -> Value.t -> unit
(** Insert or update; inserting into a table at capacity evicts the
    LRU key first. *)

val table_remove : t -> string -> Value.t -> unit

(** {1 Telemetry and snapshots} *)

val evictions : t -> int
(** Total keys evicted by the capacity bound since {!create}. *)

val snapshot : t -> Nfactor.Model_interp.store
(** Materialize back into an interpreter store (tables become sorted
    [Value.Dict]s) — byte-comparable against
    {!Nfactor.Model_interp.run}'s final store. *)
