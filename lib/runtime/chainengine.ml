(* Chain execution over a linked plan: per-hop engines sharing one
   namespaced Flowstate, breadth-first traversal matching
   Verify.Network.push, fused entry nodes from the link-time partial
   evaluation, and the domain-parallel sharded runtime. *)

open Symexec
module Smap = Nfactor.Model_interp.Smap

type t = {
  cp : Chainplan.t;
  state : Flowstate.t;
  engines : Engine.t array;
  mutable injected : int;
  mutable fused_walks : int;
  mutable handoffs : int;
}

let create_with ?capacity (cp : Chainplan.t) store =
  let state = Flowstate.create ?capacity store in
  {
    cp;
    state;
    engines =
      Array.map (fun (h : Chainplan.hop) -> Engine.of_flowstate h.Chainplan.h_plan state) cp.Chainplan.hops;
    injected = 0;
    fused_walks = 0;
    handoffs = 0;
  }

let create ?capacity cp = create_with ?capacity cp cp.Chainplan.store0

let root_of t i =
  t.cp.Chainplan.hops.(i).Chainplan.h_plan.Compile.root

(* One hop of the breadth-first traversal: step every pending packet
   through hop [i] (in order — state commits exactly like the
   interpreter chain) and pair each output with its start node in the
   next hop, fused when the link pre-decided it. *)
let hop_once t i pending =
  let eng = t.engines.(i) in
  let root = root_of t i in
  let last = i + 1 >= Array.length t.engines in
  List.concat_map
    (fun (p, start) ->
      if start != root then t.fused_walks <- t.fused_walks + 1
      else if i > 0 then t.handoffs <- t.handoffs + 1;
      let o = Engine.step_at eng ~root:start p in
      if last then List.map (fun out -> (out, root)) o.Engine.outputs
      else
        match o.Engine.fired with
        | Some e ->
            let starts = t.cp.Chainplan.starts.(i).(e) in
            let nroot = root_of t (i + 1) in
            List.mapi
              (fun j out ->
                (out, if j < Array.length starts then starts.(j) else nroot))
              o.Engine.outputs
        | None -> [])
    pending

let step t pkt =
  t.injected <- t.injected + 1;
  let pending = ref [ (pkt, root_of t 0) ] in
  for i = 0 to Array.length t.engines - 1 do
    pending := hop_once t i !pending
  done;
  List.map fst !pending

type hoprec = {
  hop_id : string;
  entered : Packet.Pkt.t list;
  left : Packet.Pkt.t list;
}

let step_trace t pkt =
  t.injected <- t.injected + 1;
  let recs = ref [] in
  let pending = ref [ (pkt, root_of t 0) ] in
  for i = 0 to Array.length t.engines - 1 do
    let entered = List.map fst !pending in
    pending := hop_once t i !pending;
    recs :=
      {
        hop_id = t.cp.Chainplan.hops.(i).Chainplan.h_id;
        entered;
        left = List.map fst !pending;
      }
      :: !recs
  done;
  (List.map fst !pending, List.rev !recs)

let run_batch t pkts = Array.map (step t) pkts

(* Timed-loop step: intermediate hops must materialize outputs (the
   next hop reads the rewritten fields), the last hop counts only. *)
let step_timed t pkt =
  t.injected <- t.injected + 1;
  let n = Array.length t.engines in
  let pending = ref [ (pkt, root_of t 0) ] in
  for i = 0 to n - 2 do
    pending := hop_once t i !pending
  done;
  let i = n - 1 in
  let eng = t.engines.(i) in
  let root = root_of t i in
  List.iter
    (fun (p, start) ->
      if start != root then t.fused_walks <- t.fused_walks + 1
      else if i > 0 then t.handoffs <- t.handoffs + 1;
      Engine.step_count_at eng ~root:start p)
    !pending

let replay ?(profile = Packet.Traffic.default_profile) t ~seed ~n =
  let rng = Packet.Rng.create seed in
  let elapsed = ref 0.0 in
  let remaining = ref n in
  while !remaining > 0 do
    let m = min !remaining 4096 in
    let buf = ref [] in
    for _ = 1 to m do
      buf := Packet.Traffic.random_pkt rng profile :: !buf
    done;
    let pkts = Array.of_list (List.rev !buf) in
    let t0 = Unix.gettimeofday () in
    for i = 0 to m - 1 do
      step_timed t pkts.(i)
    done;
    elapsed := !elapsed +. (Unix.gettimeofday () -. t0);
    remaining := !remaining - m
  done;
  !elapsed

let replay_churn ?(batch = 4096) t ~churn ~n =
  let elapsed = ref 0.0 in
  let remaining = ref n in
  while !remaining > 0 do
    let m = min !remaining batch in
    let pkts = Array.init m (fun _ -> Packet.Traffic.churn_next churn) in
    let t0 = Unix.gettimeofday () in
    for i = 0 to m - 1 do
      step_timed t pkts.(i)
    done;
    elapsed := !elapsed +. (Unix.gettimeofday () -. t0);
    remaining := !remaining - m
  done;
  !elapsed

(* Chain deliveries from the last hop's entry-hit counters: each fire
   of entry [e] emits one packet per forward snapshot — valid for both
   the allocating and the counting step paths. *)
let delivered t =
  let n = Array.length t.engines in
  let h = t.cp.Chainplan.hops.(n - 1) in
  let hits = t.engines.(n - 1).Engine.stats.Engine.entry_hits in
  List.fold_left
    (fun (acc, e) (entry : Nfactor.Model.entry) ->
      let emitted =
        match entry.Nfactor.Model.pkt_action with
        | Nfactor.Model.Drop -> 0
        | Nfactor.Model.Forward snaps -> List.length snaps
      in
      (acc + (hits.(e) * emitted), e + 1))
    (0, 0) h.Chainplan.h_model.Nfactor.Model.entries
  |> fst

let snapshot_hops t = Chainplan.split_store t.cp (Flowstate.snapshot t.state)

let hop_stats t =
  Array.to_list
    (Array.mapi
       (fun i (h : Chainplan.hop) -> (h.Chainplan.h_id, t.engines.(i).Engine.stats))
       t.cp.Chainplan.hops)

let evictions t = Flowstate.evictions t.state

let pp_stats ppf t =
  Fmt.pf ppf
    "chain %s: injected %d, delivered %d | fused walks %d, handoffs %d | evictions %d"
    (String.concat " -> " (Chainplan.hop_ids t.cp))
    t.injected (delivered t) t.fused_walks t.handoffs (evictions t);
  List.iter
    (fun (id, s) ->
      Fmt.pf ppf "@.  %-12s %a" id (Engine.pp_stats_of ~evictions:0) s)
    (hop_stats t)

let stats_json t =
  let b = Buffer.create 512 in
  Printf.bprintf b "{\"chain\": %S, " (String.concat "," (Chainplan.hop_ids t.cp));
  Printf.bprintf b "\"hops\": %d, " (Chainplan.n_hops t.cp);
  Printf.bprintf b "\"injected\": %d, " t.injected;
  Printf.bprintf b "\"delivered\": %d, " (delivered t);
  Printf.bprintf b "\"fused_walks\": %d, " t.fused_walks;
  Printf.bprintf b "\"handoffs\": %d, " t.handoffs;
  Printf.bprintf b "\"fused_entries\": %d, " t.cp.Chainplan.fused_entries;
  Printf.bprintf b "\"fused_nodes\": %d, " t.cp.Chainplan.fused_nodes;
  Printf.bprintf b "\"evictions\": %d, " (evictions t);
  Printf.bprintf b "\"per_hop\": [%s]"
    (String.concat ", "
       (List.mapi
          (fun i (id, s) ->
            Engine.stats_json_of ~nf:id
              ~plan:t.cp.Chainplan.hops.(i).Chainplan.h_plan ~evictions:0 s)
          (hop_stats t)));
  Buffer.add_string b "}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Sharded chain execution                                            *)
(* ------------------------------------------------------------------ *)

type sharded = {
  scp : Chainplan.t;  (* linked with shared plans *)
  sspec : Shardplan.spec;
  shards : t array;
}

let hop_owning (cp : Chainplan.t) name =
  Array.fold_left
    (fun acc (h : Chainplan.hop) ->
      if acc <> None then acc
      else if String.starts_with ~prefix:h.Chainplan.h_prefix name then Some h
      else acc)
    None cp.Chainplan.hops

(* A table is chain-sharded when its owning hop's analysis shards it;
   the hop routers all hash the same flow-key fields (shard_spec
   checked that), so table placement agrees with packet routing. *)
let table_router (cp : Chainplan.t) name =
  match hop_owning cp name with
  | None -> None
  | Some h -> Shardplan.router h.Chainplan.h_spec name

let partition_store (cp : Chainplan.t) ~nshards s =
  Smap.fold
    (fun name v acc ->
      match (v, table_router cp name) with
      | Value.Dict kvs, Some route ->
          List.filter (fun (k, _) -> route k mod nshards = s) kvs
          |> fun kvs -> Smap.add name (Value.Dict kvs) acc
      | _ -> Smap.add name v acc)
    cp.Chainplan.store0 Smap.empty

let shard ?capacity (cp : Chainplan.t) ~nshards =
  if nshards < 1 then invalid_arg "Chainengine.shard: nshards must be >= 1";
  match Chainplan.shard_spec cp with
  | Error e -> Error e
  | Ok _ ->
      let scp =
        if cp.Chainplan.shared then cp
        else Chainplan.link ~shared:true cp.Chainplan.sources
      in
      let sspec =
        match Chainplan.shard_spec scp with
        | Ok spec -> spec
        | Error e -> invalid_arg ("Chainengine.shard: relink changed verdict: " ^ e)
      in
      let shards =
        Array.init nshards (fun s ->
            create_with ?capacity scp (partition_store scp ~nshards s))
      in
      Ok { scp; sspec; shards }

let shard_nshards sh = Array.length sh.shards
let shard_route sh pkt = Shardplan.hash sh.sspec pkt mod Array.length sh.shards

let shard_run_batch sh pkts =
  Array.map (fun p -> step sh.shards.(shard_route sh p) p) pkts

let shard_replay sh ~pkts =
  let ns = Array.length sh.shards in
  let buckets = Array.make ns [] in
  for i = Array.length pkts - 1 downto 0 do
    let s = shard_route sh pkts.(i) in
    buckets.(s) <- pkts.(i) :: buckets.(s)
  done;
  let streams = Array.map Array.of_list buckets in
  let t0 = Unix.gettimeofday () in
  let doms =
    Array.mapi
      (fun s stream ->
        Domain.spawn (fun () -> Array.iter (step_timed sh.shards.(s)) stream))
      streams
  in
  Array.iter Domain.join doms;
  Unix.gettimeofday () -. t0

let shard_merged_store sh =
  let stores = Array.map (fun t -> Flowstate.snapshot t.state) sh.shards in
  Smap.mapi
    (fun name v0 ->
      match (v0, table_router sh.scp name) with
      | Value.Dict _, Some _ ->
          let kvs =
            Array.fold_left
              (fun acc st ->
                match Smap.find_opt name st with
                | Some (Value.Dict kvs) ->
                    List.merge (fun (a, _) (b, _) -> Value.compare a b) acc kvs
                | _ -> acc)
              [] stores
          in
          Value.Dict kvs
      | _ -> v0)
    stores.(0)

let shard_snapshot_hops sh = Chainplan.split_store sh.scp (shard_merged_store sh)

let shard_hop_stats sh =
  Array.to_list
    (Array.mapi
       (fun i (h : Chainplan.hop) ->
         ( h.Chainplan.h_id,
           Engine.merge_stats
             (Array.map (fun t -> t.engines.(i).Engine.stats) sh.shards) ))
       sh.scp.Chainplan.hops)

let shard_fused_walks sh =
  Array.fold_left (fun acc t -> acc + t.fused_walks) 0 sh.shards

let shard_injected sh = Array.fold_left (fun acc t -> acc + t.injected) 0 sh.shards
